package pdtstore

import (
	"path/filepath"
)

// Stats is a point-in-time snapshot of the store's durability state,
// replacing direct access to the internal txn/wal/storage layers.
type Stats struct {
	// Shards is the shard count (1 for an unsharded store).
	Shards int
	// Generation is the manifest generation of the last checkpoint commit.
	Generation uint64
	// Shard holds one entry per shard, in shard order.
	Shard []ShardStats
	// ZoneSkippedBlocks and IndexSkippedBlocks count stable blocks that scans
	// proved empty of matches — via zone maps and secondary indexes
	// respectively — and therefore never read. They accumulate across the
	// device's lifetime (shards share one device, so the counts are DB-wide)
	// and are the observable access-path signal: a selective Plan that probes
	// an index shows up here, a full scan does not.
	ZoneSkippedBlocks  uint64
	IndexSkippedBlocks uint64
}

// ShardStats describes one shard's commit clock, WAL stream and segment
// chain.
type ShardStats struct {
	// LSN is the shard's last committed position on the global commit clock;
	// FreezeLSN is its manifest freeze bar (records at or below it are in
	// the stable image). WALRecords is the distance between them — the
	// commit-clock length of the tail recovery would replay.
	LSN        uint64
	FreezeLSN  uint64
	WALRecords uint64
	// WALBytes and WALFiles size the shard's on-disk log stream.
	WALBytes int64
	WALFiles int
	// Generations is the shard's segment chain length; Segments lists the
	// chain oldest generation first (the last member carries the block map).
	Generations int
	Segments    []SegmentStats
	// LastDecision is the most recent checkpoint or scheduler decision for
	// this shard, with the cost-model inputs that drove it.
	LastDecision CheckpointDecision
}

// SegmentStats describes one member of a shard's segment chain.
type SegmentStats struct {
	// Name is the member's file name inside the store directory.
	Name string
	// LiveBlocks counts the (column, block) cells the chain's block map
	// still reads from this member; TotalBlocks is what the member holds.
	// Dead weight is the difference — it disappears when a later checkpoint
	// drops the member from the chain.
	LiveBlocks  int
	TotalBlocks int
}

// Stats reports the store's current durability state: per shard, the commit
// clock position, WAL tail, segment chain with live/dead block counts, and
// the last checkpoint decision's cost-model inputs.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	st := Stats{
		Shards:     len(db.mgrs),
		Generation: db.man.Generation,
		Shard:      make([]ShardStats, len(db.mgrs)),
	}
	st.ZoneSkippedBlocks, st.IndexSkippedBlocks = db.dev.SkipStats()
	for i := range db.mgrs {
		store := db.tbls[i].Store()
		ss := ShardStats{
			LSN:          db.mgrs[i].LSN(),
			FreezeLSN:    db.shardFreezeLSN(i),
			WALBytes:     db.logs[i].SizeBytes(),
			WALFiles:     db.logs[i].Files(),
			LastDecision: db.lastCost[i],
		}
		ss.WALRecords = ss.LSN - ss.FreezeLSN
		segs := store.Segments()
		refs := store.BlockRefCounts()
		ss.Generations = len(segs)
		for j, seg := range segs {
			ss.Segments = append(ss.Segments, SegmentStats{
				Name:        filepath.Base(seg.Path()),
				LiveBlocks:  refs[j],
				TotalBlocks: seg.TotalBlocks(),
			})
		}
		st.Shard[i] = ss
	}
	return st
}
