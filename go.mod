module pdtstore

go 1.24
