module pdtstore

go 1.23
