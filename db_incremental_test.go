package pdtstore

// Tests for incremental checkpoints: segment chains, block sharing across
// generations, the new crash cuts, the checkpoint policy knobs, and the
// randomized full-vs-incremental state-equivalence harness.

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"pdtstore/internal/table"
	"pdtstore/internal/types"
)

// commitUpdates commits pure in-place updates (col 2, no sort-key churn) so
// the delta is modify-only and the next checkpoint can go incremental.
func commitUpdates(t *testing.T, db *DB, m model, keys ...int64) {
	t.Helper()
	ops := make([]table.Op, 0, len(keys))
	for _, k := range keys {
		ops = append(ops, table.Op{Kind: table.OpUpdate, Key: types.Row{types.Int(k)}, Col: 2, Val: types.Int(-k)})
	}
	tx := db.Begin()
	if _, err := tx.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		m[k] = modelRow{V: m[k].V, N: -k}
	}
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "seg-") && strings.HasSuffix(e.Name(), ".seg") {
			segs = append(segs, e.Name())
		}
	}
	return segs
}

// TestIncrementalCheckpointChain: a modify-only delta checkpoints into a
// delta segment chained onto the previous generation, the live/dead block
// stats expose the sharing, and cold recovery resolves blocks through the
// chain.
func TestIncrementalCheckpointChain(t *testing.T) {
	dir := t.TempDir()
	m := model{}
	db := openTestDB(t, dir)
	commitInserts(t, db, m, 0, 640) // 10 blocks of 64
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	commitUpdates(t, db, m, 3, 70) // dirties blocks 0 and 1 of col 2 only
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	sh := st.Shard[0]
	if sh.Generations != 2 {
		t.Fatalf("chain length = %d, want 2 (segments %+v)", sh.Generations, sh.Segments)
	}
	if sh.LastDecision.Mode != "incremental" {
		t.Fatalf("decision mode = %q, want incremental (%+v)", sh.LastDecision.Mode, sh.LastDecision)
	}
	if sh.LastDecision.DirtyBlocks >= sh.LastDecision.TotalBlocks {
		t.Fatalf("incremental checkpoint wrote %d of %d cells", sh.LastDecision.DirtyBlocks, sh.LastDecision.TotalBlocks)
	}
	// The old member serves everything except the two rewritten blocks; the
	// new member holds exactly those two plus no tail.
	base, delta := sh.Segments[0], sh.Segments[1]
	if base.LiveBlocks >= base.TotalBlocks || base.LiveBlocks == 0 {
		t.Fatalf("base member live/total = %d/%d, want partial sharing", base.LiveBlocks, base.TotalBlocks)
	}
	if delta.TotalBlocks != 2 || delta.LiveBlocks != 2 {
		t.Fatalf("delta member live/total = %d/%d, want 2/2", delta.LiveBlocks, delta.TotalBlocks)
	}
	checkState(t, db, m)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold recovery opens the whole chain.
	db2 := openTestDB(t, dir)
	defer db2.Close()
	checkState(t, db2, m)
	if got := db2.Stats().Shard[0].Generations; got != 2 {
		t.Fatalf("chain length after reopen = %d, want 2", got)
	}
	// A shifting delta (delete) forces a full rewrite that collapses the
	// chain and unlinks both superseded members.
	commitMixed(t, db2, m, 0, 10)
	if err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := db2.Stats().Shard[0]; got.Generations != 1 || got.LastDecision.Mode != "full" {
		t.Fatalf("post-delete checkpoint: %d generations, mode %q", got.Generations, got.LastDecision.Mode)
	}
	if segs := segFiles(t, dir); len(segs) != 1 {
		t.Fatalf("superseded chain members not unlinked: %v", segs)
	}
	checkState(t, db2, m)
}

// TestEmptyDeltaCheckpointShares: a checkpoint with nothing to absorb writes
// no segment at all — the new generation re-references the old chain.
func TestEmptyDeltaCheckpointShares(t *testing.T) {
	dir := t.TempDir()
	m := model{}
	db := openTestDB(t, dir)
	defer db.Close()
	commitInserts(t, db, m, 0, 200)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	before := segFiles(t, dir)
	gen := db.Stats().Generation
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Shard[0].LastDecision.Mode != "shared" {
		t.Fatalf("empty-delta decision = %+v, want shared", st.Shard[0].LastDecision)
	}
	if st.Generation != gen+1 {
		t.Fatalf("generation = %d, want %d", st.Generation, gen+1)
	}
	after := segFiles(t, dir)
	if len(after) != len(before) {
		t.Fatalf("empty-delta checkpoint changed segment files: %v -> %v", before, after)
	}
	checkState(t, db, m)
}

// TestIncrementalCrashPoints kills the store at the three cuts the chained
// checkpoint added — mid block-map write, pre-swap with mixed-generation
// references, and GC after the swap — and requires recovery to reconstruct
// exactly the committed state off the old manifest (or the new one, past the
// swap).
func TestIncrementalCrashPoints(t *testing.T) {
	points := []string{faultMidBlockMapWrite, faultPreSwapMixedGen, faultPostSwapPreGC}
	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			m := model{}
			db := openTestDB(t, dir)
			commitInserts(t, db, m, 0, 640)
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			commitUpdates(t, db, m, 3, 70, 200) // modify-only: incremental path

			errBoom := errors.New("injected crash: " + point)
			fired := false
			db.fault = func(p string) error {
				if p == point {
					fired = true
					return errBoom
				}
				return nil
			}
			if err := db.Checkpoint(); !errors.Is(err, errBoom) {
				t.Fatalf("Checkpoint through the fault = %v", err)
			}
			if !fired {
				t.Fatalf("fault point %s never fired", point)
			}
			db.crash()

			db2 := openTestDB(t, dir)
			checkState(t, db2, m)
			// The interrupted attempt left no half-GC'd chain: every segment
			// the manifest names is openable, strays are gone, and the next
			// incremental checkpoint completes.
			commitUpdates(t, db2, m, 130)
			if err := db2.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := db2.Close(); err != nil {
				t.Fatal(err)
			}
			db3 := openTestDB(t, dir)
			defer db3.Close()
			checkState(t, db3, m)
		})
	}
}

// TestShardedIncrementalCheckpointCrashPoints drives the same three cuts on a
// 4-shard store, where the manifest swap commits four chains at once.
func TestShardedIncrementalCheckpointCrashPoints(t *testing.T) {
	points := []string{faultMidBlockMapWrite, faultPreSwapMixedGen, faultPostSwapPreGC}
	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			db := openShardDB(t, dir, 4)
			m := model{}
			var keys []int64
			for k := int64(0); k < 1000; k += 5 {
				keys = append(keys, k)
			}
			sCommitInserts(t, db, m, keys...)
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			commitUpdates(t, db, m, 10, 300, 550, 800) // one modify per shard

			errBoom := errors.New("injected crash: " + point)
			fired := false
			db.fault = func(p string) error {
				if p == point {
					fired = true
					return errBoom
				}
				return nil
			}
			if err := db.Checkpoint(); !errors.Is(err, errBoom) {
				t.Fatalf("Checkpoint through the fault = %v", err)
			}
			if !fired {
				t.Fatalf("fault point %s never fired", point)
			}
			db.crash()

			db = openShardDB(t, dir, 4)
			sCheckState(t, db, m)
			commitUpdates(t, db, m, 15, 305)
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db = openShardDB(t, dir, 4)
			defer db.Close()
			sCheckState(t, db, m)
		})
	}
}

// TestIncrementalFullEquivalence is the randomized long-run harness: two
// stores replay one random op stream, one restricted to full rewrites, one
// free to chain incremental checkpoints (with a tight MaxGenerations so both
// modes and forced collapses all occur), with checkpoints and kill-reopen
// cycles interleaved at random. After every reopen and at the end, both
// stores must serve the identical committed state.
func TestIncrementalFullEquivalence(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			testEquivalence(t, shards)
		})
	}
}

func testEquivalence(t *testing.T, shards int) {
	rng := rand.New(rand.NewSource(42 + int64(shards)))
	open := func(dir string, ckpt CheckpointOptions) *DB {
		t.Helper()
		opts := Options{Schema: dbSchema, BlockRows: 64, Compressed: true, Checkpoint: ckpt}
		if shards > 1 {
			opts.Shards = shards
			opts.ShardKeys = shardTestCuts[:shards-1]
		}
		db, err := Open(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	fullCkpt := CheckpointOptions{FullOnly: true}
	incCkpt := CheckpointOptions{MaxGenerations: 3}
	dirA, dirB := t.TempDir(), t.TempDir()
	dbA := open(dirA, fullCkpt)
	dbB := open(dirB, incCkpt)
	m := model{}
	var live []int64

	apply := func(db *DB, ops []table.Op) {
		t.Helper()
		tx := db.Begin()
		if _, err := tx.ApplyBatch(ops); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	compare := func() {
		t.Helper()
		gotA, gotB := readAll(t, dbA), readAll(t, dbB)
		if len(gotA) != len(m) || len(gotB) != len(m) {
			t.Fatalf("row counts diverged: full=%d incremental=%d model=%d", len(gotA), len(gotB), len(m))
		}
		for k, want := range m {
			if gotA[k] != want {
				t.Fatalf("full store: key %d = %+v, want %+v", k, gotA[k], want)
			}
			if gotB[k] != want {
				t.Fatalf("incremental store: key %d = %+v, want %+v", k, gotB[k], want)
			}
		}
	}

	const rounds = 60
	for r := 0; r < rounds; r++ {
		nops := 1 + rng.Intn(24)
		ops := make([]table.Op, 0, nops)
		touched := map[int64]bool{} // one op per key per batch
		for o := 0; o < nops; o++ {
			switch {
			case len(live) == 0 || rng.Intn(3) == 0: // insert a fresh key
				k := rng.Int63n(1000)
				if _, ok := m[k]; ok {
					continue
				}
				if touched[k] {
					continue
				}
				touched[k] = true
				ops = append(ops, table.Op{Kind: table.OpInsert,
					Row: types.Row{types.Int(k), types.Str(fmt.Sprintf("r%d-%d", r, k)), types.Int(k)}})
				m[k] = modelRow{V: fmt.Sprintf("r%d-%d", r, k), N: k}
				live = append(live, k)
			case rng.Intn(4) == 0: // delete
				i := rng.Intn(len(live))
				k := live[i]
				if touched[k] {
					continue
				}
				touched[k] = true
				ops = append(ops, table.Op{Kind: table.OpDelete, Key: types.Row{types.Int(k)}})
				delete(m, k)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			default: // in-place update
				k := live[rng.Intn(len(live))]
				if touched[k] {
					continue
				}
				touched[k] = true
				v := rng.Int63n(1 << 20)
				ops = append(ops, table.Op{Kind: table.OpUpdate, Key: types.Row{types.Int(k)}, Col: 2, Val: types.Int(v)})
				m[k] = modelRow{V: m[k].V, N: v}
			}
		}
		if len(ops) == 0 {
			continue
		}
		apply(dbA, ops)
		apply(dbB, ops)

		if rng.Intn(4) == 0 {
			if err := dbA.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if rng.Intn(3) == 0 { // checkpoint B more often: longer chains
			if err := dbB.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if rng.Intn(10) == 0 { // kill both and recover cold
			dbA.crash()
			dbB.crash()
			dbA = open(dirA, fullCkpt)
			dbB = open(dirB, incCkpt)
			compare()
		}
	}
	compare()
	if err := dbA.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dbB.Close(); err != nil {
		t.Fatal(err)
	}
	// One last cold recovery of each history.
	dbA = open(dirA, fullCkpt)
	dbB = open(dirB, incCkpt)
	compare()
	dbA.Close()
	dbB.Close()
}

// TestCheckpointOptionsValidation: nonsense knob combinations are rejected at
// Open, not when the first checkpoint trips over them.
func TestCheckpointOptionsValidation(t *testing.T) {
	bad := []CheckpointOptions{
		{MaxGenerations: -1},
		{Interval: -time.Second},
		{MaxWALRecords: -3},
		{ReplayCostUs: -1},
		{BlockWriteCostUs: -1},
		{SwapCostUs: -1},
	}
	for _, ckpt := range bad {
		dir := t.TempDir()
		if _, err := Open(dir, Options{Schema: dbSchema, Checkpoint: ckpt}); err == nil {
			t.Fatalf("Open accepted nonsense checkpoint options %+v", ckpt)
		}
	}
	// MaxGenerations: 1 is legal and pins every checkpoint to a full rewrite.
	dir := t.TempDir()
	db, err := Open(dir, Options{Schema: dbSchema, BlockRows: 64, Checkpoint: CheckpointOptions{MaxGenerations: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	m := model{}
	commitInserts(t, db, m, 0, 640)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	commitUpdates(t, db, m, 3)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats().Shard[0]
	if st.Generations != 1 || st.LastDecision.Mode != "full" {
		t.Fatalf("MaxGenerations=1 still chained: %d generations, mode %q", st.Generations, st.LastDecision.Mode)
	}
	checkState(t, db, m)
}

// TestStatsSnapshot sanity-checks the Stats surface the deprecated accessors
// were replaced with.
func TestStatsSnapshot(t *testing.T) {
	dir := t.TempDir()
	db := openTestDB(t, dir)
	defer db.Close()
	m := model{}
	commitInserts(t, db, m, 0, 640)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	commitUpdates(t, db, m, 5, 100)
	st := db.Stats()
	if st.Shards != 1 || len(st.Shard) != 1 || st.Generation < 2 {
		t.Fatalf("stats header = %+v", st)
	}
	sh := st.Shard[0]
	if sh.LSN == 0 || sh.FreezeLSN == 0 || sh.WALRecords != sh.LSN-sh.FreezeLSN || sh.WALRecords == 0 {
		t.Fatalf("clock stats = %+v", sh)
	}
	if sh.WALBytes <= 0 || sh.WALFiles < 1 {
		t.Fatalf("WAL stats = %+v", sh)
	}
	if sh.Generations != len(sh.Segments) || sh.Generations == 0 {
		t.Fatalf("segment stats = %+v", sh)
	}
	for _, seg := range sh.Segments {
		if seg.Name == "" || seg.LiveBlocks <= 0 || seg.LiveBlocks > seg.TotalBlocks {
			t.Fatalf("segment entry = %+v", seg)
		}
	}
}

// TestSchedulerAutoCheckpoint: with Auto on, the cost model absorbs a growing
// tail without any manual Checkpoint call, and the post-crash reopen replays
// only the sliver past the last auto-checkpoint.
func TestSchedulerAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{
		Schema: dbSchema, BlockRows: 64, Compressed: true,
		Checkpoint: CheckpointOptions{Auto: true, Interval: time.Millisecond, MaxWALRecords: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := model{}
	commitInserts(t, db, m, 0, 640)
	for i := 0; i < 12; i++ {
		commitUpdates(t, db, m, int64(i*7), int64(i*7+320))
	}
	// The scheduler runs on its own clock; wait until it checkpointed at
	// least once (13 commits against MaxWALRecords 8 force it). Whatever
	// tail remains after the last absorb is legitimately below the cost
	// threshold.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := db.Stats()
		if st.Generation >= 2 && st.Shard[0].FreezeLSN > 0 && st.Shard[0].WALRecords < 13 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scheduler never absorbed the tail: %+v", st.Shard[0])
		}
		time.Sleep(5 * time.Millisecond)
	}
	checkState(t, db, m)
	db.crash()
	db2 := openTestDB(t, dir)
	defer db2.Close()
	checkState(t, db2, m)
}

// TestSharedSegmentRefcount: a chain member shared between the retired and
// live images must survive the retired store's close and die only when the
// last referencing store lets go.
func TestSharedSegmentRefcount(t *testing.T) {
	dir := t.TempDir()
	m := model{}
	db := openTestDB(t, dir)
	defer db.Close()
	commitInserts(t, db, m, 0, 640)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	base := db.Table().Store().Segment() // gen-2 flat segment
	long := db.Begin()                   // pins the gen-2 store

	commitUpdates(t, db, m, 3)
	if err := db.Checkpoint(); err != nil { // incremental: chains onto base
		t.Fatal(err)
	}
	if got := db.Stats().Shard[0].Generations; got != 2 {
		t.Fatalf("chain length = %d, want 2", got)
	}
	// Releasing the pinned reader closes the retired gen-2 *store*, but the
	// segment is still the live chain's base member and must stay open.
	if err := long.Abort(); err != nil {
		t.Fatal(err)
	}
	if base.Closed() {
		t.Fatal("shared chain member closed while the live image still references it")
	}
	checkState(t, db, m)

	// A full rewrite drops the member from the chain; with no pinned readers
	// left, the last reference goes and the descriptor closes.
	commitMixed(t, db, m, 0, 20)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if !base.Closed() {
		t.Fatal("superseded chain member still open after the chain collapsed")
	}
	checkState(t, db, m)
}
