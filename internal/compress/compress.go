// Package compress implements the lightweight column-block codecs the stable
// store uses: plain, delta+zigzag varint and run-length encoding for
// integers, bit-packing for booleans, and plain/dictionary encodings for
// strings. Encoders pick the smallest applicable scheme per block (column
// stores compress per block so scans can skip and decompress independently),
// unless compression is disabled, in which case the plain scheme is forced —
// that is the paper's "non-compressed" workstation configuration.
package compress

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Scheme identifies the physical encoding of a block.
type Scheme byte

const (
	// PlainInt stores each int64 little-endian in 8 bytes.
	PlainInt Scheme = iota + 1
	// DeltaVarint stores zigzag-encoded deltas as varints; dense sorted
	// columns (keys!) compress extremely well.
	DeltaVarint
	// RLEInt stores (zigzag varint value, varint run length) pairs.
	RLEInt
	// PlainFloat stores each float64 bit pattern little-endian in 8 bytes.
	PlainFloat
	// BitBool packs eight booleans per byte.
	BitBool
	// PlainString stores uint32 offsets followed by the concatenated bytes.
	PlainString
	// DictString stores a sorted dictionary of distinct strings followed by
	// varint codes.
	DictString
)

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func putHeader(scheme Scheme, n int) []byte {
	buf := make([]byte, 0, 5+n)
	buf = append(buf, byte(scheme))
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(n))
	return append(buf, tmp[:]...)
}

func readHeader(buf []byte) (Scheme, int, []byte, error) {
	if len(buf) < 5 {
		return 0, 0, nil, fmt.Errorf("compress: truncated header (%d bytes)", len(buf))
	}
	return Scheme(buf[0]), int(binary.LittleEndian.Uint32(buf[1:5])), buf[5:], nil
}

// EncodeInt64s encodes vals, choosing the smallest of plain, delta-varint and
// RLE when compress is true, plain otherwise.
func EncodeInt64s(vals []int64, compress bool) []byte {
	if !compress {
		return encodePlainInt(vals)
	}
	plain := encodePlainInt(vals)
	delta := encodeDeltaVarint(vals)
	rle := encodeRLEInt(vals)
	best := plain
	if len(delta) < len(best) {
		best = delta
	}
	if len(rle) < len(best) {
		best = rle
	}
	return best
}

func encodePlainInt(vals []int64) []byte {
	buf := putHeader(PlainInt, len(vals))
	var tmp [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(tmp[:], uint64(v))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

func encodeDeltaVarint(vals []int64) []byte {
	buf := putHeader(DeltaVarint, len(vals))
	var tmp [binary.MaxVarintLen64]byte
	prev := int64(0)
	for _, v := range vals {
		n := binary.PutUvarint(tmp[:], zigzag(v-prev))
		buf = append(buf, tmp[:n]...)
		prev = v
	}
	return buf
}

func encodeRLEInt(vals []int64) []byte {
	buf := putHeader(RLEInt, len(vals))
	var tmp [binary.MaxVarintLen64]byte
	for i := 0; i < len(vals); {
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		n := binary.PutUvarint(tmp[:], zigzag(vals[i]))
		buf = append(buf, tmp[:n]...)
		n = binary.PutUvarint(tmp[:], uint64(j-i))
		buf = append(buf, tmp[:n]...)
		i = j
	}
	return buf
}

// DecodeInt64s decodes a block produced by EncodeInt64s, appending to out.
func DecodeInt64s(buf []byte, out []int64) ([]int64, error) {
	return DecodeInt64sFrom(buf, 0, out)
}

// DecodeInt64sFrom decodes the tail of a block starting at value index skip,
// appending to out. Point probes entering a block mid-way use it to
// materialize only the values they will read: plain blocks jump straight to
// the offset, varint blocks walk but never append the skipped prefix, and RLE
// blocks skip whole runs arithmetically. skip at or past the block length
// decodes nothing.
func DecodeInt64sFrom(buf []byte, skip int, out []int64) ([]int64, error) {
	scheme, n, body, err := readHeader(buf)
	if err != nil {
		return nil, err
	}
	if skip < 0 {
		skip = 0
	}
	if skip > n {
		skip = n
	}
	switch scheme {
	case PlainInt:
		if len(body) < 8*n {
			return nil, fmt.Errorf("compress: plain int block truncated")
		}
		for i := skip; i < n; i++ {
			out = append(out, int64(binary.LittleEndian.Uint64(body[8*i:])))
		}
		return out, nil
	case DeltaVarint:
		prev := int64(0)
		for i := 0; i < n; i++ {
			u, sz := binary.Uvarint(body)
			if sz <= 0 {
				return nil, fmt.Errorf("compress: bad varint in delta block")
			}
			body = body[sz:]
			prev += unzigzag(u)
			if i >= skip {
				out = append(out, prev)
			}
		}
		return out, nil
	case RLEInt:
		got := 0
		for got < n {
			u, sz := binary.Uvarint(body)
			if sz <= 0 {
				return nil, fmt.Errorf("compress: bad RLE value varint")
			}
			body = body[sz:]
			run, sz := binary.Uvarint(body)
			if sz <= 0 {
				return nil, fmt.Errorf("compress: bad RLE run varint")
			}
			body = body[sz:]
			if run == 0 || got+int(run) > n {
				return nil, fmt.Errorf("compress: RLE run overflows block")
			}
			end := got + int(run)
			if end > skip {
				v := unzigzag(u)
				from := got
				if from < skip {
					from = skip
				}
				for k := from; k < end; k++ {
					out = append(out, v)
				}
			}
			got = end
		}
		return out, nil
	}
	return nil, fmt.Errorf("compress: scheme %d is not an int encoding", scheme)
}

// EncodeFloat64s encodes vals; floats are stored plain (the paper's
// lightweight codecs target keys and categorical data, not measures).
func EncodeFloat64s(vals []float64) []byte {
	buf := putHeader(PlainFloat, len(vals))
	var tmp [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

// DecodeFloat64s decodes a block produced by EncodeFloat64s, appending to out.
func DecodeFloat64s(buf []byte, out []float64) ([]float64, error) {
	return DecodeFloat64sFrom(buf, 0, out)
}

// DecodeFloat64sFrom decodes the block tail starting at value index skip
// (see DecodeInt64sFrom).
func DecodeFloat64sFrom(buf []byte, skip int, out []float64) ([]float64, error) {
	scheme, n, body, err := readHeader(buf)
	if err != nil {
		return nil, err
	}
	if scheme != PlainFloat {
		return nil, fmt.Errorf("compress: scheme %d is not a float encoding", scheme)
	}
	if len(body) < 8*n {
		return nil, fmt.Errorf("compress: float block truncated")
	}
	if skip < 0 {
		skip = 0
	}
	for i := skip; i < n; i++ {
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:])))
	}
	return out, nil
}

// EncodeBools bit-packs booleans represented as 0/1 int64s (the vector
// layer's native bool representation). The compress flag is accepted for
// interface symmetry; bit-packing is always worthwhile and lossless.
func EncodeBools(vals []int64) []byte {
	buf := putHeader(BitBool, len(vals))
	nBytes := (len(vals) + 7) / 8
	bits := make([]byte, nBytes)
	for i, v := range vals {
		if v != 0 {
			bits[i/8] |= 1 << (i % 8)
		}
	}
	return append(buf, bits...)
}

// DecodeBools decodes a block produced by EncodeBools, appending 0/1 int64s.
func DecodeBools(buf []byte, out []int64) ([]int64, error) {
	return DecodeBoolsFrom(buf, 0, out)
}

// DecodeBoolsFrom decodes the block tail starting at value index skip
// (see DecodeInt64sFrom).
func DecodeBoolsFrom(buf []byte, skip int, out []int64) ([]int64, error) {
	scheme, n, body, err := readHeader(buf)
	if err != nil {
		return nil, err
	}
	if scheme != BitBool {
		return nil, fmt.Errorf("compress: scheme %d is not a bool encoding", scheme)
	}
	if len(body) < (n+7)/8 {
		return nil, fmt.Errorf("compress: bool block truncated")
	}
	if skip < 0 {
		skip = 0
	}
	for i := skip; i < n; i++ {
		out = append(out, int64(body[i/8]>>(i%8)&1))
	}
	return out, nil
}

// EncodeStrings encodes vals, choosing dictionary encoding when it is
// smaller than plain (and compress is true).
func EncodeStrings(vals []string, compress bool) []byte {
	plain := encodePlainString(vals)
	if !compress {
		return plain
	}
	if dict := encodeDictString(vals); len(dict) < len(plain) {
		return dict
	}
	return plain
}

func encodePlainString(vals []string) []byte {
	buf := putHeader(PlainString, len(vals))
	var tmp [4]byte
	off := uint32(0)
	for _, s := range vals {
		off += uint32(len(s))
		binary.LittleEndian.PutUint32(tmp[:], off)
		buf = append(buf, tmp[:]...)
	}
	for _, s := range vals {
		buf = append(buf, s...)
	}
	return buf
}

func encodeDictString(vals []string) []byte {
	distinct := make(map[string]int, 64)
	var dict []string
	for _, s := range vals {
		if _, ok := distinct[s]; !ok {
			distinct[s] = len(dict)
			dict = append(dict, s)
		}
	}
	buf := putHeader(DictString, len(vals))
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(dict)))
	buf = append(buf, tmp[:n]...)
	for _, s := range dict {
		n = binary.PutUvarint(tmp[:], uint64(len(s)))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, s...)
	}
	for _, s := range vals {
		n = binary.PutUvarint(tmp[:], uint64(distinct[s]))
		buf = append(buf, tmp[:n]...)
	}
	return buf
}

// DecodeStrings decodes a block produced by EncodeStrings, appending to out.
func DecodeStrings(buf []byte, out []string) ([]string, error) {
	return DecodeStringsFrom(buf, 0, out)
}

// DecodeStringsFrom decodes the block tail starting at value index skip (see
// DecodeInt64sFrom). Plain blocks random-access the offset array; dictionary
// blocks still parse the dictionary but skip the prefix codes without
// materializing their strings.
func DecodeStringsFrom(buf []byte, skip int, out []string) ([]string, error) {
	scheme, n, body, err := readHeader(buf)
	if err != nil {
		return nil, err
	}
	if skip < 0 {
		skip = 0
	}
	if skip > n {
		skip = n
	}
	switch scheme {
	case PlainString:
		if len(body) < 4*n {
			return nil, fmt.Errorf("compress: string offsets truncated")
		}
		data := body[4*n:]
		prev := uint32(0)
		if skip > 0 {
			prev = binary.LittleEndian.Uint32(body[4*(skip-1):])
			if int(prev) > len(data) {
				return nil, fmt.Errorf("compress: bad string offset")
			}
		}
		for i := skip; i < n; i++ {
			off := binary.LittleEndian.Uint32(body[4*i:])
			if off < prev || int(off) > len(data) {
				return nil, fmt.Errorf("compress: bad string offset")
			}
			out = append(out, string(data[prev:off]))
			prev = off
		}
		return out, nil
	case DictString:
		dictLen, sz := binary.Uvarint(body)
		if sz <= 0 {
			return nil, fmt.Errorf("compress: bad dict length")
		}
		body = body[sz:]
		if skip == 0 {
			// Full decode: materialize each dict string once, share it across
			// all its codes.
			dict := make([]string, dictLen)
			for i := range dict {
				l, sz := binary.Uvarint(body)
				if sz <= 0 || int(l) > len(body)-sz {
					return nil, fmt.Errorf("compress: bad dict entry")
				}
				body = body[sz:]
				dict[i] = string(body[:l])
				body = body[l:]
			}
			for i := 0; i < n; i++ {
				code, sz := binary.Uvarint(body)
				if sz <= 0 || code >= dictLen {
					return nil, fmt.Errorf("compress: bad dict code")
				}
				body = body[sz:]
				out = append(out, dict[code])
			}
			return out, nil
		}
		// Tail decode: index the dict entries without converting them, then
		// materialize strings only for the codes actually emitted — a probe
		// reading a handful of rows must not pay one allocation per dict entry.
		spans := make([][]byte, dictLen)
		for i := range spans {
			l, sz := binary.Uvarint(body)
			if sz <= 0 || int(l) > len(body)-sz {
				return nil, fmt.Errorf("compress: bad dict entry")
			}
			body = body[sz:]
			spans[i] = body[:l]
			body = body[l:]
		}
		for i := 0; i < n; i++ {
			code, sz := binary.Uvarint(body)
			if sz <= 0 || code >= dictLen {
				return nil, fmt.Errorf("compress: bad dict code")
			}
			body = body[sz:]
			if i >= skip {
				out = append(out, string(spans[code]))
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("compress: scheme %d is not a string encoding", scheme)
}

// DictValues returns the dictionary of a DictString block — its exact
// distinct value set, in first-appearance order — without decoding the code
// stream. ok is false for any other scheme. Index builds and encoded-block
// filters use it to see every value a block can produce at dictionary cost
// instead of row count cost.
func DictValues(buf []byte) (vals []string, ok bool, err error) {
	scheme, _, body, err := readHeader(buf)
	if err != nil {
		return nil, false, err
	}
	if scheme != DictString {
		return nil, false, nil
	}
	dictLen, sz := binary.Uvarint(body)
	if sz <= 0 {
		return nil, false, fmt.Errorf("compress: bad dict length")
	}
	body = body[sz:]
	vals = make([]string, dictLen)
	for i := range vals {
		l, sz := binary.Uvarint(body)
		if sz <= 0 || int(l) > len(body)-sz {
			return nil, false, fmt.Errorf("compress: bad dict entry")
		}
		body = body[sz:]
		vals[i] = string(body[:l])
		body = body[l:]
	}
	return vals, true, nil
}

// RLEValues returns the run values of an RLEInt block — a superset-free list
// of every value the block holds, one entry per run — without materializing
// the rows. ok is false for any other scheme.
func RLEValues(buf []byte) (vals []int64, ok bool, err error) {
	scheme, n, body, err := readHeader(buf)
	if err != nil {
		return nil, false, err
	}
	if scheme != RLEInt {
		return nil, false, nil
	}
	got := 0
	for got < n {
		u, sz := binary.Uvarint(body)
		if sz <= 0 {
			return nil, false, fmt.Errorf("compress: bad RLE value varint")
		}
		body = body[sz:]
		run, sz := binary.Uvarint(body)
		if sz <= 0 {
			return nil, false, fmt.Errorf("compress: bad RLE run varint")
		}
		body = body[sz:]
		if run == 0 || got+int(run) > n {
			return nil, false, fmt.Errorf("compress: RLE run overflows block")
		}
		vals = append(vals, unzigzag(u))
		got += int(run)
	}
	return vals, true, nil
}

// BlockScheme reports the scheme tag of an encoded block (for stats/tests).
func BlockScheme(buf []byte) Scheme {
	if len(buf) == 0 {
		return 0
	}
	return Scheme(buf[0])
}
