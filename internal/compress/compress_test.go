package compress

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestIntRoundTripPlain(t *testing.T) {
	vals := []int64{3, -1, 0, 1 << 40, -(1 << 40)}
	buf := EncodeInt64s(vals, false)
	if BlockScheme(buf) != PlainInt {
		t.Fatalf("forced plain, got scheme %d", BlockScheme(buf))
	}
	got, err := DecodeInt64s(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Errorf("got %v want %v", got, vals)
	}
}

func TestIntCompressedPicksDeltaForSorted(t *testing.T) {
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(1000000 + i)
	}
	buf := EncodeInt64s(vals, true)
	if BlockScheme(buf) != DeltaVarint {
		t.Errorf("sorted ints should pick delta-varint, got %d", BlockScheme(buf))
	}
	if len(buf) >= 8*len(vals) {
		t.Errorf("delta encoding did not shrink: %d bytes", len(buf))
	}
	got, err := DecodeInt64s(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Error("delta round trip broken")
	}
}

func TestIntCompressedPicksRLEForConstant(t *testing.T) {
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = 42
	}
	buf := EncodeInt64s(vals, true)
	if BlockScheme(buf) != RLEInt {
		t.Errorf("constant ints should pick RLE, got %d", BlockScheme(buf))
	}
	got, err := DecodeInt64s(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Error("RLE round trip broken")
	}
}

func TestIntRoundTripQuick(t *testing.T) {
	f := func(vals []int64, compress bool) bool {
		buf := EncodeInt64s(vals, compress)
		got, err := DecodeInt64s(buf, nil)
		if err != nil {
			return false
		}
		if len(vals) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatRoundTrip(t *testing.T) {
	f := func(vals []float64) bool {
		got, err := DecodeFloat64s(EncodeFloat64s(vals), nil)
		if err != nil {
			return false
		}
		if len(vals) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoolRoundTrip(t *testing.T) {
	f := func(raw []bool) bool {
		vals := make([]int64, len(raw))
		for i, b := range raw {
			if b {
				vals[i] = 1
			}
		}
		got, err := DecodeBools(EncodeBools(vals), nil)
		if err != nil {
			return false
		}
		if len(vals) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// size check: 1 bit per value plus header
	buf := EncodeBools(make([]int64, 800))
	if len(buf) != 5+100 {
		t.Errorf("bitpacked size = %d, want 105", len(buf))
	}
}

func TestStringRoundTripQuick(t *testing.T) {
	f := func(vals []string, compress bool) bool {
		buf := EncodeStrings(vals, compress)
		got, err := DecodeStrings(buf, nil)
		if err != nil {
			return false
		}
		if len(vals) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringDictChosenForLowCardinality(t *testing.T) {
	vals := make([]string, 1000)
	for i := range vals {
		vals[i] = []string{"alpha", "beta", "gamma"}[i%3]
	}
	buf := EncodeStrings(vals, true)
	if BlockScheme(buf) != DictString {
		t.Errorf("low-cardinality strings should pick dict, got %d", BlockScheme(buf))
	}
	plain := EncodeStrings(vals, false)
	if BlockScheme(plain) != PlainString {
		t.Errorf("uncompressed strings should be plain, got %d", BlockScheme(plain))
	}
	if len(buf) >= len(plain) {
		t.Error("dict encoding not smaller than plain")
	}
	got, err := DecodeStrings(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Error("dict round trip broken")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeInt64s(nil, nil); err == nil {
		t.Error("nil buffer accepted")
	}
	if _, err := DecodeInt64s([]byte{1, 2}, nil); err == nil {
		t.Error("short header accepted")
	}
	// wrong scheme routing
	ints := EncodeInt64s([]int64{1}, false)
	if _, err := DecodeFloat64s(ints, nil); err == nil {
		t.Error("float decoder accepted int block")
	}
	if _, err := DecodeStrings(ints, nil); err == nil {
		t.Error("string decoder accepted int block")
	}
	if _, err := DecodeBools(ints, nil); err == nil {
		t.Error("bool decoder accepted int block")
	}
	floats := EncodeFloat64s([]float64{1})
	if _, err := DecodeInt64s(floats, nil); err == nil {
		t.Error("int decoder accepted float block")
	}
	// truncated bodies
	long := EncodeInt64s([]int64{1, 2, 3}, false)
	if _, err := DecodeInt64s(long[:10], nil); err == nil {
		t.Error("truncated int body accepted")
	}
	fbuf := EncodeFloat64s([]float64{1, 2})
	if _, err := DecodeFloat64s(fbuf[:8], nil); err == nil {
		t.Error("truncated float body accepted")
	}
	sbuf := EncodeStrings([]string{"hello", "world"}, false)
	if _, err := DecodeStrings(sbuf[:7], nil); err == nil {
		t.Error("truncated string offsets accepted")
	}
	bbuf := EncodeBools([]int64{1, 0, 1, 1, 1, 1, 1, 1, 1})
	if _, err := DecodeBools(bbuf[:5], nil); err == nil {
		t.Error("truncated bool body accepted")
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 62, -(1 << 62)} {
		if unzigzag(zigzag(v)) != v {
			t.Errorf("zigzag round trip failed for %d", v)
		}
	}
}

// tailSkips picks skip points that exercise every boundary: start, one-in,
// mid-block, run boundaries, last value, exactly the end, and past the end.
func tailSkips(n int) []int {
	skips := []int{0, 1, n / 3, n / 2, n - 1, n, n + 7, -2}
	out := skips[:0:0]
	for _, s := range skips {
		if s >= -2 {
			out = append(out, s)
		}
	}
	return out
}

func clampSkip(skip, n int) int {
	if skip < 0 {
		return 0
	}
	if skip > n {
		return n
	}
	return skip
}

func TestDecodeInt64sFrom(t *testing.T) {
	cases := map[string][]int64{
		"sorted":   nil,
		"constant": nil,
		"mixed":    {3, -1, 0, 1 << 40, -(1 << 40), 7, 7, 7, -9, 0, 0, 2},
	}
	sorted := make([]int64, 300)
	constant := make([]int64, 300)
	for i := range sorted {
		sorted[i] = int64(1000000 + i)
		constant[i] = 42
	}
	cases["sorted"], cases["constant"] = sorted, constant
	// runs of varying length to hit RLE partial-run skips
	var runs []int64
	for i := 0; i < 20; i++ {
		for k := 0; k <= i%5; k++ {
			runs = append(runs, int64(i*i))
		}
	}
	cases["runs"] = runs

	for name, vals := range cases {
		for _, compress := range []bool{false, true} {
			buf := EncodeInt64s(vals, compress)
			full, err := DecodeInt64s(buf, nil)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for _, skip := range tailSkips(len(vals)) {
				got, err := DecodeInt64sFrom(buf, skip, nil)
				if err != nil {
					t.Fatalf("%s skip=%d: %v", name, skip, err)
				}
				want := full[clampSkip(skip, len(vals)):]
				if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
					t.Errorf("%s scheme=%d skip=%d: got %d vals, want %d", name, BlockScheme(buf), skip, len(got), len(want))
				}
			}
		}
	}
	// force each int scheme explicitly
	for _, enc := range [][]byte{encodePlainInt(sorted), encodeDeltaVarint(sorted), encodeRLEInt(constant), encodeRLEInt(runs)} {
		full, err := DecodeInt64s(enc, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, skip := range tailSkips(len(full)) {
			got, err := DecodeInt64sFrom(enc, skip, nil)
			if err != nil {
				t.Fatalf("scheme=%d skip=%d: %v", BlockScheme(enc), skip, err)
			}
			want := full[clampSkip(skip, len(full)):]
			if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
				t.Errorf("scheme=%d skip=%d mismatch", BlockScheme(enc), skip)
			}
		}
	}
}

func TestDecodeFloat64sFrom(t *testing.T) {
	vals := []float64{0, -1.5, 3.25, 1e300, -1e-300, 42}
	buf := EncodeFloat64s(vals)
	for _, skip := range tailSkips(len(vals)) {
		got, err := DecodeFloat64sFrom(buf, skip, nil)
		if err != nil {
			t.Fatalf("skip=%d: %v", skip, err)
		}
		want := vals[clampSkip(skip, len(vals)):]
		if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
			t.Errorf("skip=%d mismatch", skip)
		}
	}
}

func TestDecodeBoolsFrom(t *testing.T) {
	vals := make([]int64, 77)
	for i := range vals {
		if i%3 == 0 || i%7 == 0 {
			vals[i] = 1
		}
	}
	buf := EncodeBools(vals)
	for _, skip := range tailSkips(len(vals)) {
		got, err := DecodeBoolsFrom(buf, skip, nil)
		if err != nil {
			t.Fatalf("skip=%d: %v", skip, err)
		}
		want := vals[clampSkip(skip, len(vals)):]
		if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
			t.Errorf("skip=%d mismatch", skip)
		}
	}
}

func TestDecodeStringsFrom(t *testing.T) {
	lowCard := make([]string, 200)
	for i := range lowCard {
		lowCard[i] = []string{"alpha", "beta", "gamma"}[i%3]
	}
	cases := [][]string{
		{"", "a", "bc", "", "def", "ghij"},
		lowCard,
	}
	for _, vals := range cases {
		for _, compress := range []bool{false, true} {
			buf := EncodeStrings(vals, compress)
			for _, skip := range tailSkips(len(vals)) {
				got, err := DecodeStringsFrom(buf, skip, nil)
				if err != nil {
					t.Fatalf("scheme=%d skip=%d: %v", BlockScheme(buf), skip, err)
				}
				want := vals[clampSkip(skip, len(vals)):]
				if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
					t.Errorf("scheme=%d skip=%d mismatch", BlockScheme(buf), skip)
				}
			}
		}
	}
}
