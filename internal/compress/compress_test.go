package compress

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestIntRoundTripPlain(t *testing.T) {
	vals := []int64{3, -1, 0, 1 << 40, -(1 << 40)}
	buf := EncodeInt64s(vals, false)
	if BlockScheme(buf) != PlainInt {
		t.Fatalf("forced plain, got scheme %d", BlockScheme(buf))
	}
	got, err := DecodeInt64s(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Errorf("got %v want %v", got, vals)
	}
}

func TestIntCompressedPicksDeltaForSorted(t *testing.T) {
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(1000000 + i)
	}
	buf := EncodeInt64s(vals, true)
	if BlockScheme(buf) != DeltaVarint {
		t.Errorf("sorted ints should pick delta-varint, got %d", BlockScheme(buf))
	}
	if len(buf) >= 8*len(vals) {
		t.Errorf("delta encoding did not shrink: %d bytes", len(buf))
	}
	got, err := DecodeInt64s(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Error("delta round trip broken")
	}
}

func TestIntCompressedPicksRLEForConstant(t *testing.T) {
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = 42
	}
	buf := EncodeInt64s(vals, true)
	if BlockScheme(buf) != RLEInt {
		t.Errorf("constant ints should pick RLE, got %d", BlockScheme(buf))
	}
	got, err := DecodeInt64s(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Error("RLE round trip broken")
	}
}

func TestIntRoundTripQuick(t *testing.T) {
	f := func(vals []int64, compress bool) bool {
		buf := EncodeInt64s(vals, compress)
		got, err := DecodeInt64s(buf, nil)
		if err != nil {
			return false
		}
		if len(vals) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatRoundTrip(t *testing.T) {
	f := func(vals []float64) bool {
		got, err := DecodeFloat64s(EncodeFloat64s(vals), nil)
		if err != nil {
			return false
		}
		if len(vals) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoolRoundTrip(t *testing.T) {
	f := func(raw []bool) bool {
		vals := make([]int64, len(raw))
		for i, b := range raw {
			if b {
				vals[i] = 1
			}
		}
		got, err := DecodeBools(EncodeBools(vals), nil)
		if err != nil {
			return false
		}
		if len(vals) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// size check: 1 bit per value plus header
	buf := EncodeBools(make([]int64, 800))
	if len(buf) != 5+100 {
		t.Errorf("bitpacked size = %d, want 105", len(buf))
	}
}

func TestStringRoundTripQuick(t *testing.T) {
	f := func(vals []string, compress bool) bool {
		buf := EncodeStrings(vals, compress)
		got, err := DecodeStrings(buf, nil)
		if err != nil {
			return false
		}
		if len(vals) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringDictChosenForLowCardinality(t *testing.T) {
	vals := make([]string, 1000)
	for i := range vals {
		vals[i] = []string{"alpha", "beta", "gamma"}[i%3]
	}
	buf := EncodeStrings(vals, true)
	if BlockScheme(buf) != DictString {
		t.Errorf("low-cardinality strings should pick dict, got %d", BlockScheme(buf))
	}
	plain := EncodeStrings(vals, false)
	if BlockScheme(plain) != PlainString {
		t.Errorf("uncompressed strings should be plain, got %d", BlockScheme(plain))
	}
	if len(buf) >= len(plain) {
		t.Error("dict encoding not smaller than plain")
	}
	got, err := DecodeStrings(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Error("dict round trip broken")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeInt64s(nil, nil); err == nil {
		t.Error("nil buffer accepted")
	}
	if _, err := DecodeInt64s([]byte{1, 2}, nil); err == nil {
		t.Error("short header accepted")
	}
	// wrong scheme routing
	ints := EncodeInt64s([]int64{1}, false)
	if _, err := DecodeFloat64s(ints, nil); err == nil {
		t.Error("float decoder accepted int block")
	}
	if _, err := DecodeStrings(ints, nil); err == nil {
		t.Error("string decoder accepted int block")
	}
	if _, err := DecodeBools(ints, nil); err == nil {
		t.Error("bool decoder accepted int block")
	}
	floats := EncodeFloat64s([]float64{1})
	if _, err := DecodeInt64s(floats, nil); err == nil {
		t.Error("int decoder accepted float block")
	}
	// truncated bodies
	long := EncodeInt64s([]int64{1, 2, 3}, false)
	if _, err := DecodeInt64s(long[:10], nil); err == nil {
		t.Error("truncated int body accepted")
	}
	fbuf := EncodeFloat64s([]float64{1, 2})
	if _, err := DecodeFloat64s(fbuf[:8], nil); err == nil {
		t.Error("truncated float body accepted")
	}
	sbuf := EncodeStrings([]string{"hello", "world"}, false)
	if _, err := DecodeStrings(sbuf[:7], nil); err == nil {
		t.Error("truncated string offsets accepted")
	}
	bbuf := EncodeBools([]int64{1, 0, 1, 1, 1, 1, 1, 1, 1})
	if _, err := DecodeBools(bbuf[:5], nil); err == nil {
		t.Error("truncated bool body accepted")
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 62, -(1 << 62)} {
		if unzigzag(zigzag(v)) != v {
			t.Errorf("zigzag round trip failed for %d", v)
		}
	}
}
