package vdt

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

func intSchema() *types.Schema {
	return types.MustSchema([]types.Column{
		{Name: "k", Kind: types.Int64},
		{Name: "a", Kind: types.Int64},
		{Name: "b", Kind: types.String},
	}, []int{0})
}

func buildRows(n int) []types.Row {
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{types.Int(int64((i + 1) * 10)), types.Int(int64(i)), types.Str(fmt.Sprintf("s%d", i))}
	}
	return rows
}

// --- btree unit tests --------------------------------------------------------

func key(k int64) types.Row { return types.Row{types.Int(k)} }

func TestBTreeSetGetRemove(t *testing.T) {
	bt := newBTree()
	for i := int64(0); i < 200; i++ {
		if !bt.set(key(i*7%211), types.Row{types.Int(i)}) {
			t.Fatalf("duplicate on fresh key %d", i*7%211)
		}
	}
	if bt.Len() != 200 {
		t.Fatalf("Len = %d", bt.Len())
	}
	if v, ok := bt.get(key(14)); !ok || v[0].I != 2 {
		t.Fatalf("get(14) = %v,%v", v, ok)
	}
	// replace
	if bt.set(key(14), types.Row{types.Int(999)}) {
		t.Fatal("replace reported as insert")
	}
	if v, _ := bt.get(key(14)); v[0].I != 999 {
		t.Fatal("replace did not stick")
	}
	if !bt.remove(key(14)) || bt.remove(key(14)) {
		t.Fatal("remove misbehaved")
	}
	if _, ok := bt.get(key(14)); ok {
		t.Fatal("removed key still present")
	}
	if bt.Len() != 199 {
		t.Fatalf("Len after remove = %d", bt.Len())
	}
}

func TestBTreeIterationSorted(t *testing.T) {
	bt := newBTree()
	perm := rand.New(rand.NewSource(1)).Perm(500)
	for _, p := range perm {
		bt.set(key(int64(p)), nil)
	}
	prev := int64(-1)
	n := 0
	for it := bt.iterAll(); it.valid(); it.advance() {
		k := it.key()[0].I
		if k <= prev {
			t.Fatalf("iteration out of order: %d after %d", k, prev)
		}
		prev = k
		n++
	}
	if n != 500 {
		t.Fatalf("iterated %d keys", n)
	}
}

func TestBTreeIterFrom(t *testing.T) {
	bt := newBTree()
	for i := int64(0); i < 100; i += 2 { // even keys
		bt.set(key(i), nil)
	}
	it := bt.iterFrom(key(31))
	if !it.valid() || it.key()[0].I != 32 {
		t.Fatalf("iterFrom(31) at %v", it.key())
	}
	it = bt.iterFrom(key(98))
	if !it.valid() || it.key()[0].I != 98 {
		t.Fatal("iterFrom(existing) must land on the key")
	}
	it = bt.iterFrom(key(99))
	if it.valid() {
		t.Fatal("iterFrom past end should be invalid")
	}
}

func TestBTreeCountLess(t *testing.T) {
	bt := newBTree()
	for i := int64(0); i < 300; i++ {
		bt.set(key(i*2), nil)
	}
	if got := bt.countLess(key(100)); got != 50 {
		t.Fatalf("countLess(100) = %d, want 50", got)
	}
	if got := bt.countLess(key(0)); got != 0 {
		t.Fatalf("countLess(0) = %d", got)
	}
	if got := bt.countLess(key(10000)); got != 300 {
		t.Fatalf("countLess(10000) = %d", got)
	}
	bt.remove(key(50))
	if got := bt.countLess(key(100)); got != 49 {
		t.Fatalf("countLess after remove = %d, want 49", got)
	}
}

func TestBTreeQuickAgainstMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bt := newBTree()
		model := map[int64]int64{}
		for i := 0; i < 400; i++ {
			k := int64(rng.Intn(120))
			switch rng.Intn(3) {
			case 0:
				bt.set(key(k), types.Row{types.Int(int64(i))})
				model[k] = int64(i)
			case 1:
				bt.remove(key(k))
				delete(model, k)
			case 2:
				v, ok := bt.get(key(k))
				mv, mok := model[k]
				if ok != mok || (ok && v[0].I != mv) {
					return false
				}
			}
		}
		if bt.Len() != len(model) {
			return false
		}
		// countLess against model for a few probes
		for _, probe := range []int64{0, 30, 60, 90, 200} {
			want := 0
			for k := range model {
				if k < probe {
					want++
				}
			}
			if bt.countLess(key(probe)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// --- VDT behaviour -----------------------------------------------------------

type sliceSource struct {
	rows []types.Row
	cols []int
	pos  int
	end  int
}

func newSliceSource(rows []types.Row, cols []int, from, to int) *sliceSource {
	if to > len(rows) {
		to = len(rows)
	}
	return &sliceSource{rows: rows, cols: cols, pos: from, end: to}
}

func (s *sliceSource) Next(out *vector.Batch, max int) (int, error) {
	n := 0
	for s.pos < s.end && n < max {
		for i, c := range s.cols {
			out.Vecs[i].Append(s.rows[s.pos][c])
		}
		s.pos++
		n++
	}
	return n, nil
}

// refModel mirrors the one in the pdt tests.
type refModel struct {
	schema *types.Schema
	rows   []types.Row
}

func newRef(schema *types.Schema, stable []types.Row) *refModel {
	r := &refModel{schema: schema}
	for _, row := range stable {
		r.rows = append(r.rows, row.Clone())
	}
	return r
}

func (r *refModel) findKey(k types.Row) int {
	for i, row := range r.rows {
		if types.CompareRows(r.schema.KeyOf(row), k) == 0 {
			return i
		}
	}
	return -1
}

func mergeAllVDT(t *testing.T, v *VDT, stable []types.Row, outCols []int) *vector.Batch {
	t.Helper()
	// source must produce outCols ∪ sort key
	srcCols := append([]int(nil), outCols...)
	for _, k := range v.schema.SortKey {
		found := false
		for _, c := range srcCols {
			if c == k {
				found = true
			}
		}
		if !found {
			srcCols = append(srcCols, k)
		}
	}
	src := newSliceSource(stable, srcCols, 0, len(stable))
	ms, err := NewMergeScan(v, src, srcCols, outCols, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]types.Kind, len(outCols))
	for i, c := range outCols {
		kinds[i] = v.schema.Cols[c].Kind
	}
	out := vector.NewBatch(kinds, 64)
	for {
		n, err := ms.Next(out, 7)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	return out
}

func checkVDT(t *testing.T, v *VDT, stable []types.Row, ref *refModel) {
	t.Helper()
	out := mergeAllVDT(t, v, stable, []int{0, 1, 2})
	if out.Len() != len(ref.rows) {
		t.Fatalf("merged %d rows, want %d", out.Len(), len(ref.rows))
	}
	for i, want := range ref.rows {
		if types.CompareRows(out.Row(i), want) != 0 {
			t.Fatalf("row %d = %v, want %v", i, out.Row(i), want)
		}
		if out.Rids[i] != uint64(i) {
			t.Fatalf("rid %d = %d", i, out.Rids[i])
		}
	}
}

func TestVDTInsertDeleteModify(t *testing.T) {
	schema := intSchema()
	stable := buildRows(10)
	v := New(schema)
	ref := newRef(schema, stable)

	// insert
	row := types.Row{types.Int(15), types.Int(-1), types.Str("new")}
	if err := v.Insert(row); err != nil {
		t.Fatal(err)
	}
	ref.rows = append(ref.rows[:1], append([]types.Row{row}, ref.rows[1:]...)...)
	checkVDT(t, v, stable, ref)

	// modify stable tuple (key 40)
	idx := ref.findKey(key(40))
	cur := ref.rows[idx]
	if err := v.Modify(cur, 1, types.Int(444), true); err != nil {
		t.Fatal(err)
	}
	ref.rows[idx] = cur.Clone()
	ref.rows[idx][1] = types.Int(444)
	checkVDT(t, v, stable, ref)
	ins, del := v.Counts()
	if ins != 2 || del != 1 {
		t.Fatalf("counts = %d/%d, want 2/1 (modify = del+ins)", ins, del)
	}

	// delete stable tuple (key 70)
	v.Delete(key(70), true)
	idx = ref.findKey(key(70))
	ref.rows = append(ref.rows[:idx], ref.rows[idx+1:]...)
	checkVDT(t, v, stable, ref)

	// delete the fresh insert (key 15)
	v.Delete(key(15), false)
	ref.rows = append(ref.rows[:1], ref.rows[2:]...)
	checkVDT(t, v, stable, ref)

	// modify an inserted tuple: stays insert-only
	row2 := types.Row{types.Int(25), types.Int(-2), types.Str("x")}
	if err := v.Insert(row2); err != nil {
		t.Fatal(err)
	}
	if err := v.Modify(row2, 2, types.Str("y"), false); err != nil {
		t.Fatal(err)
	}
	ref.rows = append(ref.rows[:2], append([]types.Row{{types.Int(25), types.Int(-2), types.Str("y")}}, ref.rows[2:]...)...)
	checkVDT(t, v, stable, ref)
}

func TestVDTDuplicateInsertRejected(t *testing.T) {
	v := New(intSchema())
	row := types.Row{types.Int(5), types.Int(0), types.Str("a")}
	if err := v.Insert(row); err != nil {
		t.Fatal(err)
	}
	if err := v.Insert(row); err == nil {
		t.Fatal("duplicate insert accepted")
	}
}

func TestVDTModifyValidation(t *testing.T) {
	v := New(intSchema())
	row := buildRows(1)[0]
	if err := v.Modify(row, 0, types.Int(1), true); err == nil {
		t.Error("sort-key modify accepted")
	}
	if err := v.Modify(row, 1, types.Str("x"), true); err == nil {
		t.Error("wrong kind accepted")
	}
}

func TestVDTProjectionRequiresSortKey(t *testing.T) {
	schema := intSchema()
	stable := buildRows(5)
	v := New(schema)
	// source without the sort-key column must be rejected
	src := newSliceSource(stable, []int{1}, 0, len(stable))
	if _, err := NewMergeScan(v, src, []int{1}, []int{1}, nil, nil, 0); err == nil {
		t.Fatal("merge without sort-key columns accepted")
	}
	// projected column missing from source must be rejected
	src = newSliceSource(stable, []int{0}, 0, len(stable))
	if _, err := NewMergeScan(v, src, []int{0}, []int{1}, nil, nil, 0); err == nil {
		t.Fatal("projection of unproduced column accepted")
	}
}

func TestVDTRangeScanWithRIDs(t *testing.T) {
	schema := intSchema()
	stable := buildRows(20) // keys 10..200
	v := New(schema)
	// one insert before the range, one delete before the range
	if err := v.Insert(types.Row{types.Int(15), types.Int(0), types.Str("pre")}); err != nil {
		t.Fatal(err)
	}
	v.Delete(key(30), true)
	// one insert inside the range
	if err := v.Insert(types.Row{types.Int(105), types.Int(0), types.Str("mid")}); err != nil {
		t.Fatal(err)
	}

	// Range keys [100,130]: stable sids 9..12 (keys 100..130).
	lo, hi := key(100), key(130)
	src := newSliceSource(stable, []int{0, 1, 2}, 9, 13)
	startRID := v.RangeStartRID(9, lo)
	// 9 stable rows before + 1 insert - 1 delete = rid 9
	if startRID != 9 {
		t.Fatalf("startRID = %d, want 9", startRID)
	}
	ms, err := NewMergeScan(v, src, []int{0, 1, 2}, []int{0}, lo, hi, startRID)
	if err != nil {
		t.Fatal(err)
	}
	out := vector.NewBatch([]types.Kind{types.Int64}, 16)
	for {
		n, err := ms.Next(out, 16)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	wantKeys := []int64{100, 105, 110, 120, 130}
	if out.Len() != len(wantKeys) {
		t.Fatalf("range merge keys = %v", out.Vecs[0].I)
	}
	for i, k := range wantKeys {
		if out.Vecs[0].I[i] != k {
			t.Fatalf("key %d = %d, want %d", i, out.Vecs[0].I[i], k)
		}
		if out.Rids[i] != uint64(9+i) {
			t.Fatalf("rid %d = %d, want %d", i, out.Rids[i], 9+i)
		}
	}
}

func TestVDTRandomizedAgainstReference(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed + 77))
		schema := intSchema()
		stable := buildRows(30)
		v := New(schema)
		ref := newRef(schema, stable)
		stableKeys := map[int64]bool{}
		for _, r := range stable {
			stableKeys[r[0].I] = true
		}
		visible := map[int64]bool{}
		for k := range stableKeys {
			visible[k] = true
		}
		for i := 0; i < 400; i++ {
			switch rng.Intn(3) {
			case 0: // insert
				k := int64(rng.Intn(500))
				if visible[k] {
					continue
				}
				row := types.Row{types.Int(k), types.Int(int64(i)), types.Str(fmt.Sprintf("i%d", i))}
				if err := v.Insert(row); err != nil {
					t.Fatal(err)
				}
				idx := 0
				for idx < len(ref.rows) && ref.rows[idx][0].I < k {
					idx++
				}
				ref.rows = append(ref.rows[:idx], append([]types.Row{row}, ref.rows[idx:]...)...)
				visible[k] = true
			case 1: // delete
				if len(ref.rows) == 0 {
					continue
				}
				idx := rng.Intn(len(ref.rows))
				k := ref.rows[idx][0].I
				_, inIns := v.HasInsert(key(k))
				stableHome := stableKeys[k] && !inIns ||
					stableKeys[k] && inIns // stable key counts as stable even if modified
				v.Delete(key(k), stableHome)
				ref.rows = append(ref.rows[:idx], ref.rows[idx+1:]...)
				delete(visible, k)
			case 2: // modify
				if len(ref.rows) == 0 {
					continue
				}
				idx := rng.Intn(len(ref.rows))
				cur := ref.rows[idx]
				col := 1 + rng.Intn(2)
				var val types.Value
				if col == 1 {
					val = types.Int(int64(rng.Intn(1000)))
				} else {
					val = types.Str(fmt.Sprintf("m%d", i))
				}
				if err := v.Modify(cur, col, val, stableKeys[cur[0].I]); err != nil {
					t.Fatal(err)
				}
				ref.rows[idx] = cur.Clone()
				ref.rows[idx][col] = val
			}
		}
		checkVDT(t, v, stable, ref)
	}
}

func TestVDTMemBytes(t *testing.T) {
	v := New(intSchema())
	if v.MemBytes() != 0 {
		t.Error("empty VDT should report 0 bytes")
	}
	if err := v.Insert(types.Row{types.Int(1), types.Int(2), types.Str("abcd")}); err != nil {
		t.Fatal(err)
	}
	v.Delete(key(500), true)
	if v.MemBytes() == 0 {
		t.Error("MemBytes should be positive after updates")
	}
	if v.Delta() != 0 {
		t.Errorf("delta = %d", v.Delta())
	}
}
