// Package vdt implements the paper's baseline: the Value-based Delta Tree.
// Updates are buffered in two sort-key-ordered B-trees — an insert table
// holding full tuples (inserted or modified) and a delete table holding the
// sort keys of deleted or modified stable tuples — and merged into scans by
// comparing sort-key values (MergeUnion/MergeDiff). Every scan must therefore
// read the sort-key columns of the stable table and perform per-tuple key
// comparisons, which is exactly the cost the PDT eliminates.
package vdt

import (
	"fmt"

	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

// VDT buffers differential updates organized by sort-key value.
type VDT struct {
	schema *types.Schema
	ins    *btree // SK -> full tuple (inserted and modified tuples)
	del    *btree // SK -> nil (deleted or modified stable tuples)
}

// New returns an empty VDT for the schema.
func New(schema *types.Schema) *VDT {
	return &VDT{schema: schema, ins: newBTree(), del: newBTree()}
}

// Schema returns the table schema.
func (v *VDT) Schema() *types.Schema { return v.schema }

// Counts returns the sizes of the insert and delete tables.
func (v *VDT) Counts() (ins, del int) { return v.ins.Len(), v.del.Len() }

// Empty reports whether the VDT holds no updates.
func (v *VDT) Empty() bool { return v.ins.Len() == 0 && v.del.Len() == 0 }

// Delta returns the net change in visible cardinality.
func (v *VDT) Delta() int64 { return int64(v.ins.Len()) - int64(v.del.Len()) }

// MemBytes estimates memory consumption: full tuples in the insert table and
// sort keys in the delete table.
func (v *VDT) MemBytes() uint64 {
	var total uint64
	for it := v.ins.iterAll(); it.valid(); it.advance() {
		total += rowBytes(it.value())
	}
	for it := v.del.iterAll(); it.valid(); it.advance() {
		total += rowBytes(it.key())
	}
	return total
}

func rowBytes(r types.Row) uint64 {
	var n uint64
	for _, val := range r {
		if w, ok := val.K.FixedWidth(); ok {
			n += uint64(w)
		} else {
			n += uint64(len(val.S)) + 4
		}
	}
	return n
}

// Insert buffers a newly inserted tuple. The key must not be visible
// (enforced by the table layer); re-inserting a deleted stable key is fine.
func (v *VDT) Insert(row types.Row) error {
	if err := v.schema.ValidateRow(row); err != nil {
		return err
	}
	key := v.schema.KeyOf(row)
	if _, ok := v.ins.get(key); ok {
		return fmt.Errorf("vdt: duplicate insert of key %v", key)
	}
	v.ins.set(key, row.Clone())
	return nil
}

// Delete buffers the deletion of the visible tuple with the given sort key.
// stable reports whether the tuple exists in the stable image (the table
// layer knows); for a freshly inserted tuple the insert is removed outright.
func (v *VDT) Delete(key types.Row, stable bool) {
	inInsert := v.ins.remove(key)
	if stable {
		v.del.set(key, nil)
	} else if !inInsert {
		// neither stable nor buffered: table-layer bug
		panic(fmt.Sprintf("vdt: delete of unknown key %v", key))
	}
}

// Modify buffers a single-column change of the visible tuple current (full
// row as currently visible). stable reports whether the tuple's storage home
// is the stable image, in which case it moves to the delete+insert pair (the
// MonetDB-style representation the paper describes).
func (v *VDT) Modify(current types.Row, col int, val types.Value, stable bool) error {
	if v.schema.IsSortKeyCol(col) {
		return fmt.Errorf("vdt: column %q is a sort-key column; modify must be delete+insert", v.schema.Cols[col].Name)
	}
	if val.K != v.schema.Cols[col].Kind {
		return fmt.Errorf("vdt: column %q expects %v, got %v", v.schema.Cols[col].Name, v.schema.Cols[col].Kind, val.K)
	}
	key := v.schema.KeyOf(current)
	updated := current.Clone()
	updated[col] = val
	if stable {
		v.del.set(key, nil)
	}
	v.ins.set(key, updated)
	return nil
}

// HasInsert reports whether key currently lives in the insert table.
func (v *VDT) HasInsert(key types.Row) (types.Row, bool) { return v.ins.get(key) }

// IsDeleted reports whether the stable tuple with key is deleted.
func (v *VDT) IsDeleted(key types.Row) bool {
	_, ok := v.del.get(key)
	return ok
}

// BatchSource produces rows in key order (same contract as pdt.BatchSource).
type BatchSource interface {
	Next(out *vector.Batch, max int) (int, error)
}

// MergeScan merges a stable scan with the VDT by comparing sort keys: a
// linear MergeUnion with the insert table and MergeDiff with the delete
// table. The source must produce the union of the requested columns and the
// sort-key columns — the defining I/O cost of the value-based approach.
type MergeScan struct {
	v       *VDT
	src     BatchSource
	srcCols []int // schema columns produced by src, in batch order
	outCols []int // requested projection (indexes into the schema)
	outIdx  []int // outCols[i] -> position within srcCols
	keyIdx  []int // sort-key columns -> position within srcCols

	insIt iter
	delIt iter
	hiKey types.Row // inclusive upper bound for draining trailing inserts
	rid   uint64

	buf     *vector.Batch
	bufPos  int
	srcDone bool
	done    bool
}

// NewMergeScan builds a value-based merge. srcCols lists the schema columns
// src produces (must include every sort-key column); outCols is the caller's
// projection. loKey/hiKey optionally bound the key range: iterators seek to
// loKey, and trailing inserts are drained only up to hiKey (inclusive).
// startRID is the RID of the first stable row of the range, already adjusted
// by the caller for preceding deltas (use RangeStartRID).
func NewMergeScan(v *VDT, src BatchSource, srcCols, outCols []int, loKey, hiKey types.Row, startRID uint64) (*MergeScan, error) {
	pos := make(map[int]int, len(srcCols))
	for i, c := range srcCols {
		pos[c] = i
	}
	outIdx := make([]int, len(outCols))
	for i, c := range outCols {
		p, ok := pos[c]
		if !ok {
			return nil, fmt.Errorf("vdt: projected column %d not produced by source", c)
		}
		outIdx[i] = p
	}
	keyIdx := make([]int, len(v.schema.SortKey))
	for i, c := range v.schema.SortKey {
		p, ok := pos[c]
		if !ok {
			return nil, fmt.Errorf("vdt: sort-key column %d not produced by source (value-based merge requires it)", c)
		}
		keyIdx[i] = p
	}
	kinds := make([]types.Kind, len(srcCols))
	for i, c := range srcCols {
		kinds[i] = v.schema.Cols[c].Kind
	}
	m := &MergeScan{
		v:       v,
		src:     src,
		srcCols: append([]int(nil), srcCols...),
		outCols: append([]int(nil), outCols...),
		outIdx:  outIdx,
		keyIdx:  keyIdx,
		hiKey:   hiKey,
		rid:     startRID,
		buf:     vector.NewBatch(kinds, 1024),
	}
	if loKey == nil {
		m.insIt = v.ins.iterAll()
		m.delIt = v.del.iterAll()
	} else {
		m.insIt = v.ins.iterFrom(loKey)
		m.delIt = v.del.iterFrom(loKey)
	}
	return m, nil
}

// RangeStartRID computes the RID of the first visible tuple at or after
// loKey: its stable SID adjusted by the delta-tree entries before it.
func (v *VDT) RangeStartRID(stableSIDsBefore uint64, loKey types.Row) uint64 {
	if loKey == nil {
		return 0
	}
	insBefore := v.ins.countLess(loKey)
	delBefore := v.del.countLess(loKey)
	return uint64(int64(stableSIDsBefore) + int64(insBefore) - int64(delBefore))
}

// SizeHint estimates the remaining row count: the source's remainder adjusted
// by the VDT's net delta (advisory; same contract as pdt.SizeHinter).
func (m *MergeScan) SizeHint() int {
	h, ok := m.src.(interface{ SizeHint() int })
	if !ok {
		return -1
	}
	n := h.SizeHint()
	if n < 0 {
		return -1
	}
	if n += int(m.v.Delta()); n < 0 {
		n = 0
	}
	return n
}

// stableKey extracts the sort key of buffered stable row i.
func (m *MergeScan) stableKey(i int) types.Row {
	key := make(types.Row, len(m.keyIdx))
	for k, p := range m.keyIdx {
		key[k] = m.buf.Vecs[p].Get(i)
	}
	return key
}

func (m *MergeScan) refill() (bool, error) {
	if m.bufPos < m.buf.Len() {
		return true, nil
	}
	if m.srcDone {
		return false, nil
	}
	m.buf.Reset()
	m.bufPos = 0
	n, err := m.src.Next(m.buf, 1024)
	if err != nil {
		return false, err
	}
	if n == 0 {
		m.srcDone = true
		return false, nil
	}
	return true, nil
}

func (m *MergeScan) emitInsert(out *vector.Batch, row types.Row) {
	for i, c := range m.outCols {
		out.Vecs[i].Append(row[c])
	}
	out.Rids = append(out.Rids, m.rid)
	m.rid++
}

// Next emits up to max merged rows; 0 means done. out must have one vector
// per outCols entry.
func (m *MergeScan) Next(out *vector.Batch, max int) (int, error) {
	if m.done {
		return 0, nil
	}
	produced := 0
	for produced < max {
		ok, err := m.refill()
		if err != nil {
			return produced, err
		}
		if !ok {
			// Stable range exhausted: drain qualifying trailing inserts.
			for produced < max && m.insIt.valid() {
				if m.hiKey != nil && types.CompareRows(m.insIt.key(), m.hiKey) > 0 {
					break
				}
				m.emitInsert(out, m.insIt.value())
				m.insIt.advance()
				produced++
			}
			if produced < max {
				m.done = true
			}
			return produced, nil
		}
		key := m.stableKey(m.bufPos)
		// MergeUnion: inserted tuples with smaller keys come first.
		if m.insIt.valid() && types.CompareRows(m.insIt.key(), key) < 0 {
			m.emitInsert(out, m.insIt.value())
			m.insIt.advance()
			produced++
			continue
		}
		// MergeDiff: skip stable tuples present in the delete table.
		for m.delIt.valid() && types.CompareRows(m.delIt.key(), key) < 0 {
			m.delIt.advance()
		}
		if m.delIt.valid() && types.CompareRows(m.delIt.key(), key) == 0 {
			m.bufPos++
			m.delIt.advance()
			continue
		}
		for i, p := range m.outIdx {
			switch vec := m.buf.Vecs[p]; vec.Kind {
			case types.Float64:
				out.Vecs[i].F = append(out.Vecs[i].F, vec.F[m.bufPos])
			case types.String:
				out.Vecs[i].S = append(out.Vecs[i].S, vec.S[m.bufPos])
			default:
				out.Vecs[i].I = append(out.Vecs[i].I, vec.I[m.bufPos])
			}
		}
		out.Rids = append(out.Rids, m.rid)
		m.rid++
		m.bufPos++
		produced++
	}
	return produced, nil
}
