package vdt

// A counted in-memory B+-tree keyed by sort-key rows. This is the "RAM
// friendly B-tree" substrate the paper assumes for value-based delta trees:
// the insert and delete tables are kept organized in sort-key order so they
// can be merge-joined with the stable table. Subtree counts support
// rank queries (how many delta rows precede a key), which RID accounting in
// range scans needs.

import (
	"pdtstore/internal/types"
)

const btreeFanout = 16

type bnode struct {
	leaf     bool
	keys     []types.Row // leaf: one per row; inner: separators (min of right subtree)
	vals     []types.Row // leaf payloads (nil rows allowed)
	children []*bnode    // inner
	counts   []int       // inner: rows per child subtree
	next     *bnode      // leaf chain
}

// btree maps sort-key rows to payload rows, ordered by types.CompareRows.
type btree struct {
	root *bnode
	size int
}

func newBTree() *btree {
	return &btree{root: &bnode{leaf: true}}
}

// Len returns the number of entries.
func (t *btree) Len() int { return t.size }

// get returns the payload for key, if present.
func (t *btree) get(key types.Row) (types.Row, bool) {
	n := t.root
	for !n.leaf {
		i := 0
		for i < len(n.keys) && types.CompareRows(key, n.keys[i]) >= 0 {
			i++
		}
		n = n.children[i]
	}
	for i, k := range n.keys {
		if types.CompareRows(key, k) == 0 {
			return n.vals[i], true
		}
	}
	return nil, false
}

// countLess returns the number of entries with key strictly less than key.
func (t *btree) countLess(key types.Row) int {
	n := t.root
	total := 0
	for !n.leaf {
		i := 0
		for i < len(n.keys) && types.CompareRows(key, n.keys[i]) >= 0 {
			total += n.counts[i]
			i++
		}
		n = n.children[i]
	}
	for _, k := range n.keys {
		if types.CompareRows(k, key) < 0 {
			total++
		}
	}
	return total
}

// set inserts or replaces the payload for key; it reports whether the key
// was newly inserted.
func (t *btree) set(key, val types.Row) bool {
	added, split, sepKey, right := t.insertInto(t.root, key, val)
	if split {
		t.root = &bnode{
			keys:     []types.Row{sepKey},
			children: []*bnode{t.root, right},
			counts:   []int{subtreeCount(t.root), subtreeCount(right)},
		}
	}
	if added {
		t.size++
	}
	return added
}

func subtreeCount(n *bnode) int {
	if n.leaf {
		return len(n.keys)
	}
	total := 0
	for _, c := range n.counts {
		total += c
	}
	return total
}

func (t *btree) insertInto(n *bnode, key, val types.Row) (added, split bool, sepKey types.Row, right *bnode) {
	if n.leaf {
		i := 0
		for i < len(n.keys) && types.CompareRows(n.keys[i], key) < 0 {
			i++
		}
		if i < len(n.keys) && types.CompareRows(n.keys[i], key) == 0 {
			n.vals[i] = val
			return false, false, nil, nil
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
		if len(n.keys) > btreeFanout {
			mid := len(n.keys) / 2
			r := &bnode{leaf: true,
				keys: append([]types.Row(nil), n.keys[mid:]...),
				vals: append([]types.Row(nil), n.vals[mid:]...),
				next: n.next,
			}
			n.keys = n.keys[:mid]
			n.vals = n.vals[:mid]
			n.next = r
			return true, true, r.keys[0], r
		}
		return true, false, nil, nil
	}
	i := 0
	for i < len(n.keys) && types.CompareRows(key, n.keys[i]) >= 0 {
		i++
	}
	added, childSplit, sep, newRight := t.insertInto(n.children[i], key, val)
	if added {
		n.counts[i]++
	}
	if childSplit {
		n.counts[i] = subtreeCount(n.children[i])
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = sep
		n.children = append(n.children, nil)
		copy(n.children[i+2:], n.children[i+1:])
		n.children[i+1] = newRight
		n.counts = append(n.counts, 0)
		copy(n.counts[i+2:], n.counts[i+1:])
		n.counts[i+1] = subtreeCount(newRight)
		if len(n.children) > btreeFanout {
			mid := len(n.children) / 2
			sepUp := n.keys[mid-1]
			r := &bnode{
				keys:     append([]types.Row(nil), n.keys[mid:]...),
				children: append([]*bnode(nil), n.children[mid:]...),
				counts:   append([]int(nil), n.counts[mid:]...),
			}
			n.keys = n.keys[:mid-1]
			n.children = n.children[:mid]
			n.counts = n.counts[:mid]
			return added, true, sepUp, r
		}
	}
	return added, false, nil, nil
}

// remove deletes key, reporting whether it was present. Leaves may underflow
// (delta trees shrink only at checkpoints, so rebalancing is not worth its
// complexity); empty leaves are tolerated by iteration and search.
func (t *btree) remove(key types.Row) bool {
	removed := t.removeFrom(t.root, key)
	if removed {
		t.size--
	}
	return removed
}

func (t *btree) removeFrom(n *bnode, key types.Row) bool {
	if n.leaf {
		for i, k := range n.keys {
			if types.CompareRows(k, key) == 0 {
				n.keys = append(n.keys[:i], n.keys[i+1:]...)
				n.vals = append(n.vals[:i], n.vals[i+1:]...)
				return true
			}
		}
		return false
	}
	i := 0
	for i < len(n.keys) && types.CompareRows(key, n.keys[i]) >= 0 {
		i++
	}
	if t.removeFrom(n.children[i], key) {
		n.counts[i]--
		return true
	}
	return false
}

// iter is an in-order iterator over the tree.
type iter struct {
	n   *bnode
	pos int
}

// iterAll starts at the smallest key.
func (t *btree) iterAll() iter {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	it := iter{n: n}
	it.norm()
	return it
}

// iterFrom starts at the first key >= key.
func (t *btree) iterFrom(key types.Row) iter {
	n := t.root
	for !n.leaf {
		i := 0
		for i < len(n.keys) && types.CompareRows(key, n.keys[i]) >= 0 {
			i++
		}
		n = n.children[i]
	}
	it := iter{n: n}
	for it.pos < len(it.n.keys) && types.CompareRows(it.n.keys[it.pos], key) < 0 {
		it.pos++
	}
	it.norm()
	return it
}

func (it *iter) norm() {
	for it.n != nil && it.pos >= len(it.n.keys) {
		it.n = it.n.next
		it.pos = 0
	}
}

func (it *iter) valid() bool      { return it.n != nil && it.pos < len(it.n.keys) }
func (it *iter) key() types.Row   { return it.n.keys[it.pos] }
func (it *iter) value() types.Row { return it.n.vals[it.pos] }
func (it *iter) advance() {
	it.pos++
	it.norm()
}
