package table

// Physical sharding: cutting one sorted stable image into key-range
// sub-images. The transaction layer's shard-per-core writes put each
// sub-image under its own manager (txn.Sharded); the helpers here pick the
// cut keys and stream the rows. Cuts are exact row-count quantiles read off
// the image itself — sort keys are unique, so the key at a cut SID is an
// exact boundary, and because every sub-image is rebuilt from row zero no
// block alignment is needed at the cuts.

import (
	"fmt"

	"pdtstore/internal/colstore"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

// ShardCuts picks n-1 split keys at the row-count quantiles of a stable
// image: cut i is the sort key of the row at SID i*nrows/n. The returned
// keys are strictly ascending full sort keys — shard i of the split owns
// keys below cut i. The image must hold at least n rows.
func ShardCuts(store *colstore.Store, n int) ([]types.Row, error) {
	if n < 1 {
		return nil, fmt.Errorf("table: shard count %d", n)
	}
	if n == 1 {
		return nil, nil
	}
	nrows := store.NRows()
	if nrows < uint64(n) {
		return nil, fmt.Errorf("table: cannot cut %d rows into %d shards", nrows, n)
	}
	schema := store.Schema()
	kinds := make([]types.Kind, len(schema.SortKey))
	for i, c := range schema.SortKey {
		kinds[i] = schema.Cols[c].Kind
	}
	keys := make([]types.Row, 0, n-1)
	buf := vector.NewBatch(kinds, 1)
	for i := 1; i < n; i++ {
		sid := uint64(i) * nrows / uint64(n)
		sc := store.NewScanner(schema.SortKey, sid, sid+1)
		buf.Reset()
		nr, err := sc.Next(buf, 1)
		if err != nil {
			return nil, err
		}
		if nr == 0 {
			return nil, fmt.Errorf("table: short read at SID %d", sid)
		}
		keys = append(keys, buf.Row(0).Clone())
	}
	return keys, nil
}

// SplitStore streams a stable image's rows into len(keys)+1 new images cut
// at the given ascending full-sort-key boundaries: image i receives the rows
// with key in [keys[i-1], keys[i]). mk supplies the destination builder for
// each sub-image (a RAM builder for tests and benchmarks, a file builder for
// the durable re-shard); builders for key ranges the image does not populate
// still run, producing valid empty sub-images. On error every unfinished
// builder is aborted.
func SplitStore(store *colstore.Store, keys []types.Row, mk func(i int) (*colstore.Builder, error)) ([]*colstore.Store, error) {
	schema := store.Schema()
	n := len(keys) + 1
	builders := make([]*colstore.Builder, n)
	abort := func() {
		for _, b := range builders {
			if b != nil {
				b.Abort()
			}
		}
	}
	for i := range builders {
		b, err := mk(i)
		if err != nil {
			abort()
			return nil, err
		}
		builders[i] = b
	}

	cols := make([]int, schema.NumCols())
	kinds := make([]types.Kind, len(cols))
	for i := range cols {
		cols[i] = i
		kinds[i] = schema.Cols[i].Kind
	}
	sc := store.NewScanner(cols, 0, store.NRows())
	buf := vector.NewBatch(kinds, 4096)
	cur := 0
	for {
		buf.Reset()
		nr, err := sc.Next(buf, 4096)
		if err != nil {
			abort()
			return nil, err
		}
		if nr == 0 {
			break
		}
		for r := 0; r < nr; r++ {
			row := buf.Row(r)
			key := schema.KeyOf(row)
			for cur < len(keys) && types.CompareRows(key, keys[cur]) >= 0 {
				cur++
			}
			if err := builders[cur].Add(row); err != nil {
				abort()
				return nil, err
			}
		}
	}

	stores := make([]*colstore.Store, n)
	for i, b := range builders {
		s, err := b.Finish()
		if err != nil {
			for _, fb := range builders[i:] {
				fb.Abort()
			}
			for _, fs := range stores[:i] {
				fs.Close()
			}
			return nil, err
		}
		builders[i] = nil
		stores[i] = s
	}
	return stores, nil
}

// ShardSplit is the in-memory convenience: quantile cuts plus a RAM-builder
// split, returning the sub-images and the n-1 cut keys. Benchmarks and
// differential tests use it to stand up a sharded copy of a loaded table.
func ShardSplit(store *colstore.Store, n int, dev *colstore.Device, blockRows int, compressed bool) ([]*colstore.Store, []types.Row, error) {
	keys, err := ShardCuts(store, n)
	if err != nil {
		return nil, nil, err
	}
	schema := store.Schema()
	stores, err := SplitStore(store, keys, func(int) (*colstore.Builder, error) {
		return colstore.NewBuilder(schema, dev, blockRows, compressed), nil
	})
	if err != nil {
		return nil, nil, err
	}
	return stores, keys, nil
}
