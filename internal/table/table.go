// Package table provides the updatable ordered table: a read-optimized
// stable column store image plus a differential structure buffering updates
// (a PDT, a VDT, or none — the three configurations the paper evaluates
// against each other), a key-level SQL-ish update API, range scans through
// the sparse index with on-the-fly merging, and checkpointing that folds the
// deltas into a fresh stable image.
package table

import (
	"fmt"

	"pdtstore/internal/colstore"
	"pdtstore/internal/engine"
	"pdtstore/internal/pdt"
	"pdtstore/internal/types"
	"pdtstore/internal/vdt"
	"pdtstore/internal/vector"
)

// DeltaMode selects the differential structure buffering updates.
type DeltaMode int

const (
	// ModePDT buffers updates positionally (the paper's contribution).
	ModePDT DeltaMode = iota
	// ModeVDT buffers updates by sort-key value (the baseline).
	ModeVDT
	// ModeNone forbids updates; scans read the stable image only (the
	// paper's "no-updates" reference runs).
	ModeNone
)

func (m DeltaMode) String() string {
	switch m {
	case ModePDT:
		return "PDT"
	case ModeVDT:
		return "VDT"
	case ModeNone:
		return "none"
	}
	return "?"
}

// Options configures a table.
type Options struct {
	Mode       DeltaMode
	BlockRows  int              // values per column block (0 = default)
	Compressed bool             // compress stable blocks
	Fanout     int              // PDT fanout (0 = paper default of 8)
	Device     *colstore.Device // shared "disk"; nil = private device
}

// Table is an updatable ordered table.
type Table struct {
	schema *types.Schema
	opts   Options
	store  *colstore.Store
	pdt    *pdt.PDT
	vdt    *vdt.VDT
}

// Load bulk-loads rows (must be in strict sort-key order) into a new table.
func Load(schema *types.Schema, rows []types.Row, opts Options) (*Table, error) {
	store, err := colstore.BulkLoad(schema, opts.Device, opts.BlockRows, opts.Compressed, rows)
	if err != nil {
		return nil, err
	}
	return FromStore(store, opts)
}

// LoadBatches bulk-loads from a batch source producing all schema columns in
// sort-key order (the fast path for generated datasets).
func LoadBatches(schema *types.Schema, src pdt.BatchSource, opts Options) (*Table, error) {
	b := colstore.NewBuilder(schema, opts.Device, opts.BlockRows, opts.Compressed)
	kinds := make([]types.Kind, schema.NumCols())
	for i, c := range schema.Cols {
		kinds[i] = c.Kind
	}
	buf := vector.NewBatch(kinds, 4096)
	for {
		buf.Reset()
		n, err := src.Next(buf, 4096)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			break
		}
		if err := b.AddBatch(buf); err != nil {
			return nil, err
		}
	}
	store, err := b.Finish()
	if err != nil {
		return nil, err
	}
	return FromStore(store, opts)
}

// FromStore wraps an existing stable image in a table.
func FromStore(store *colstore.Store, opts Options) (*Table, error) {
	t := &Table{schema: store.Schema(), opts: opts, store: store}
	switch opts.Mode {
	case ModePDT:
		t.pdt = pdt.New(t.schema, opts.Fanout)
	case ModeVDT:
		t.vdt = vdt.New(t.schema)
	case ModeNone:
	default:
		return nil, fmt.Errorf("table: unknown delta mode %d", opts.Mode)
	}
	return t, nil
}

// Schema returns the table schema.
func (t *Table) Schema() *types.Schema { return t.schema }

// Mode returns the delta mode.
func (t *Table) Mode() DeltaMode { return t.opts.Mode }

// Store returns the stable image (read-only).
func (t *Table) Store() *colstore.Store { return t.store }

// PDT returns the positional delta tree, or nil outside ModePDT. The
// transaction layer builds its layered snapshots on top of this.
func (t *Table) PDT() *pdt.PDT { return t.pdt }

// VDT returns the value-based delta tree, or nil outside ModeVDT.
func (t *Table) VDT() *vdt.VDT { return t.vdt }

// NRows returns the visible row count (stable rows plus net delta).
func (t *Table) NRows() uint64 {
	n := int64(t.store.NRows())
	switch t.opts.Mode {
	case ModePDT:
		n += t.pdt.Delta()
	case ModeVDT:
		n += t.vdt.Delta()
	}
	return uint64(n)
}

// DeltaMemBytes reports the memory held by the differential structure.
func (t *Table) DeltaMemBytes() uint64 {
	switch t.opts.Mode {
	case ModePDT:
		return t.pdt.MemBytes()
	case ModeVDT:
		return t.vdt.MemBytes()
	}
	return 0
}

// allCols returns [0..numCols).
func (t *Table) allCols() []int {
	cols := make([]int, t.schema.NumCols())
	for i := range cols {
		cols[i] = i
	}
	return cols
}

// Kinds returns the vector kinds for a column projection.
func (t *Table) Kinds(cols []int) []types.Kind {
	kinds := make([]types.Kind, len(cols))
	for i, c := range cols {
		kinds[i] = t.schema.Cols[c].Kind
	}
	return kinds
}

// Scan returns a batch source producing the projected columns of all visible
// rows whose sort key lies in [loKey, hiKey] (nil bounds are open; bounds
// may be prefixes of the sort key). The source also emits RIDs. Range
// restriction uses the sparse index, so the scan may produce rows just
// outside the bounds (partial blocks); predicates re-filter downstream,
// exactly as with real zone maps. The pipeline itself — delta-mode dispatch,
// merge stacking, projection pushdown — lives in package engine; Table
// satisfies engine.Relation, so plans can be built directly over it.
func (t *Table) Scan(cols []int, loKey, hiKey types.Row) (pdt.BatchSource, error) {
	// An empty delta structure means the stable image is scanned directly
	// (engine.NewSource checks): tables the update streams never touch behave
	// exactly like clean runs, as the paper's footnote on Q2/Q11/Q16 requires.
	return engine.NewSource(engine.TableSpec{Store: t.store, PDT: t.pdt, VDT: t.vdt}, cols, loKey, hiKey)
}

// FindByKey locates the visible tuple with the given (full) sort key,
// returning its RID and current column values.
func (t *Table) FindByKey(key types.Row) (rid uint64, row types.Row, found bool, err error) {
	if len(key) != len(t.schema.SortKey) {
		return 0, nil, false, fmt.Errorf("table: FindByKey needs the full %d-column sort key", len(t.schema.SortKey))
	}
	err = engine.Scan(t, t.allCols()...).Range(key, key).BatchSize(256).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				r := b.Row(int(i))
				cmp := t.schema.CompareKeyToRow(key, r)
				if cmp == 0 {
					rid, row, found = b.Rids[i], r, true
					return engine.Stop
				}
				if cmp < 0 {
					return engine.Stop // passed the key's position
				}
			}
			return nil
		})
	if err != nil {
		return 0, nil, false, err
	}
	return rid, row, found, nil
}

// insertPosition returns the RID where a tuple with the given key belongs
// (the RID of the first visible tuple with a greater key) and whether an
// equal key is already visible.
func (t *Table) insertPosition(key types.Row) (rid uint64, dup bool, err error) {
	rid = t.NRows()
	err = engine.Scan(t, t.schema.SortKey...).Range(key, nil).BatchSize(256).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				cmp := types.CompareRows(key, b.Row(int(i)))
				if cmp == 0 {
					rid, dup = b.Rids[i], true
					return engine.Stop
				}
				if cmp < 0 {
					rid = b.Rids[i]
					return engine.Stop
				}
			}
			return nil
		})
	if err != nil {
		return 0, false, err
	}
	return rid, dup, nil
}

// stableHasKey reports whether the stable image contains the key (the scan
// bypasses the delta structure on purpose).
func (t *Table) stableHasKey(key types.Row) (found bool, err error) {
	src, err := engine.NewSource(engine.TableSpec{Store: t.store}, t.schema.SortKey, key, key)
	if err != nil {
		return false, err
	}
	out := vector.NewBatch(t.Kinds(t.schema.SortKey), 256)
	for {
		out.Reset()
		n, err := src.Next(out, 256)
		if err != nil {
			return false, err
		}
		if n == 0 {
			return false, nil
		}
		for i := 0; i < n; i++ {
			if types.CompareRows(key, out.Row(i)) == 0 {
				return true, nil
			}
		}
	}
}

// Insert adds a new tuple; its sort key must not be visible.
func (t *Table) Insert(row types.Row) error {
	if err := t.schema.ValidateRow(row); err != nil {
		return err
	}
	key := t.schema.KeyOf(row)
	switch t.opts.Mode {
	case ModeNone:
		return fmt.Errorf("table: read-only (ModeNone)")
	case ModePDT:
		rid, dup, err := t.insertPosition(key)
		if err != nil {
			return err
		}
		if dup {
			return fmt.Errorf("table: duplicate key %v", key)
		}
		return t.pdt.Insert(rid, row)
	case ModeVDT:
		if _, ok := t.vdt.HasInsert(key); ok {
			return fmt.Errorf("table: duplicate key %v", key)
		}
		stable, err := t.stableHasKey(key)
		if err != nil {
			return err
		}
		if stable && !t.vdt.IsDeleted(key) {
			return fmt.Errorf("table: duplicate key %v", key)
		}
		return t.vdt.Insert(row)
	}
	return fmt.Errorf("table: unknown mode")
}

// DeleteByKey removes the visible tuple with the given sort key, reporting
// whether it existed.
func (t *Table) DeleteByKey(key types.Row) (bool, error) {
	switch t.opts.Mode {
	case ModeNone:
		return false, fmt.Errorf("table: read-only (ModeNone)")
	case ModePDT:
		rid, row, found, err := t.FindByKey(key)
		if err != nil || !found {
			return false, err
		}
		return true, t.pdt.Delete(rid, t.schema.KeyOf(row))
	case ModeVDT:
		_, inIns := t.vdt.HasInsert(key)
		stable, err := t.stableHasKey(key)
		if err != nil {
			return false, err
		}
		if !inIns && (!stable || t.vdt.IsDeleted(key)) {
			return false, nil
		}
		t.vdt.Delete(key, stable)
		return true, nil
	}
	return false, fmt.Errorf("table: unknown mode")
}

// UpdateByKey sets one column of the visible tuple with the given sort key.
// Updating a sort-key column is expressed as delete+insert, per the paper.
func (t *Table) UpdateByKey(key types.Row, col int, val types.Value) (bool, error) {
	if t.opts.Mode == ModeNone {
		return false, fmt.Errorf("table: read-only (ModeNone)")
	}
	rid, row, found, err := t.FindByKey(key)
	if err != nil || !found {
		return false, err
	}
	if t.schema.IsSortKeyCol(col) {
		newRow := row.Clone()
		newRow[col] = val
		if _, err := t.DeleteByKey(key); err != nil {
			return false, err
		}
		return true, t.Insert(newRow)
	}
	switch t.opts.Mode {
	case ModePDT:
		return true, t.pdt.Modify(rid, col, val)
	case ModeVDT:
		stable, err := t.stableHasKey(key)
		if err != nil {
			return false, err
		}
		return true, t.vdt.Modify(row, col, val, stable)
	}
	return false, fmt.Errorf("table: unknown mode")
}

// Checkpoint folds the buffered deltas into a brand-new stable image and
// resets the differential structure (the paper's checkpointing step: the
// table image with all updates applied replaces TABLE0, and query
// processing switches over).
func (t *Table) Checkpoint() error {
	if t.opts.Mode == ModeNone {
		return nil
	}
	src, err := t.Scan(t.allCols(), nil, nil)
	if err != nil {
		return err
	}
	b := colstore.NewBuilder(t.schema, t.store.Device(), t.opts.BlockRows, t.opts.Compressed)
	buf := vector.NewBatch(t.Kinds(t.allCols()), 4096)
	for {
		buf.Reset()
		n, err := src.Next(buf, 4096)
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
		if err := b.AddBatch(buf); err != nil {
			return err
		}
	}
	store, err := b.Finish()
	if err != nil {
		return err
	}
	t.store = store
	switch t.opts.Mode {
	case ModePDT:
		t.pdt = pdt.New(t.schema, t.opts.Fanout)
	case ModeVDT:
		t.vdt = vdt.New(t.schema)
	}
	return nil
}
