// Package table provides the updatable ordered table: a read-optimized
// stable column store image plus a differential structure buffering updates
// (a PDT, a VDT, or none — the three configurations the paper evaluates
// against each other), a key-level SQL-ish update API, range scans through
// the sparse index with on-the-fly merging, and checkpointing that folds the
// deltas into a fresh stable image.
package table

import (
	"fmt"
	"sync/atomic"

	"pdtstore/internal/colstore"
	"pdtstore/internal/engine"
	"pdtstore/internal/pdt"
	"pdtstore/internal/types"
	"pdtstore/internal/vdt"
	"pdtstore/internal/vector"
)

// DeltaMode selects the differential structure buffering updates.
type DeltaMode int

const (
	// ModePDT buffers updates positionally (the paper's contribution).
	ModePDT DeltaMode = iota
	// ModeVDT buffers updates by sort-key value (the baseline).
	ModeVDT
	// ModeNone forbids updates; scans read the stable image only (the
	// paper's "no-updates" reference runs).
	ModeNone
)

func (m DeltaMode) String() string {
	switch m {
	case ModePDT:
		return "PDT"
	case ModeVDT:
		return "VDT"
	case ModeNone:
		return "none"
	}
	return "?"
}

// Options configures a table.
type Options struct {
	Mode       DeltaMode
	BlockRows  int              // values per column block (0 = default)
	Compressed bool             // compress stable blocks
	Fanout     int              // PDT fanout (0 = paper default of 8)
	Device     *colstore.Device // shared "disk"; nil = private device
}

// Table is an updatable ordered table. The stable image and its delta
// structure are published together behind one atomic pointer: every reader
// loads the pair once per operation, so a checkpoint install — including the
// transaction manager's *background* maintenance calling Install at an
// arbitrary moment — can never be observed torn (new store with the old
// delta, whose positions belong to the pre-swap image). Updates remain
// single-writer, as before.
type Table struct {
	schema *types.Schema
	opts   Options
	img    atomic.Pointer[image]
}

// image is one consistent (stable store, delta structure) pair.
type image struct {
	store *colstore.Store
	pdt   *pdt.PDT
	vdt   *vdt.VDT
}

// Load bulk-loads rows (must be in strict sort-key order) into a new table.
func Load(schema *types.Schema, rows []types.Row, opts Options) (*Table, error) {
	store, err := colstore.BulkLoad(schema, opts.Device, opts.BlockRows, opts.Compressed, rows)
	if err != nil {
		return nil, err
	}
	return FromStore(store, opts)
}

// LoadBatches bulk-loads from a batch source producing all schema columns in
// sort-key order (the fast path for generated datasets).
func LoadBatches(schema *types.Schema, src pdt.BatchSource, opts Options) (*Table, error) {
	store, err := buildImage(schema, src, opts.Device, opts.BlockRows, opts.Compressed)
	if err != nil {
		return nil, err
	}
	return FromStore(store, opts)
}

// FromStore wraps an existing stable image in a table.
func FromStore(store *colstore.Store, opts Options) (*Table, error) {
	t := &Table{schema: store.Schema(), opts: opts}
	im := &image{store: store}
	switch opts.Mode {
	case ModePDT:
		im.pdt = pdt.New(t.schema, opts.Fanout)
	case ModeVDT:
		im.vdt = vdt.New(t.schema)
	case ModeNone:
	default:
		return nil, fmt.Errorf("table: unknown delta mode %d", opts.Mode)
	}
	t.img.Store(im)
	return t, nil
}

// Schema returns the table schema.
func (t *Table) Schema() *types.Schema { return t.schema }

// Mode returns the delta mode.
func (t *Table) Mode() DeltaMode { return t.opts.Mode }

// Fanout returns the configured PDT fanout (0 selects the paper default).
// The transaction manager threads it into every write layer it creates, so
// a tuned tree geometry survives checkpoints.
func (t *Table) Fanout() int { return t.opts.Fanout }

// Store returns the stable image (read-only).
func (t *Table) Store() *colstore.Store { return t.img.Load().store }

// PDT returns the positional delta tree, or nil outside ModePDT. The
// transaction layer builds its layered snapshots on top of this.
func (t *Table) PDT() *pdt.PDT { return t.img.Load().pdt }

// VDT returns the value-based delta tree, or nil outside ModeVDT.
func (t *Table) VDT() *vdt.VDT { return t.img.Load().vdt }

// NRows returns the visible row count (stable rows plus net delta).
func (t *Table) NRows() uint64 {
	im := t.img.Load()
	n := int64(im.store.NRows())
	switch t.opts.Mode {
	case ModePDT:
		n += im.pdt.Delta()
	case ModeVDT:
		n += im.vdt.Delta()
	}
	return uint64(n)
}

// DeltaMemBytes reports the memory held by the differential structure.
func (t *Table) DeltaMemBytes() uint64 {
	im := t.img.Load()
	switch t.opts.Mode {
	case ModePDT:
		return im.pdt.MemBytes()
	case ModeVDT:
		return im.vdt.MemBytes()
	}
	return 0
}

// allCols returns [0..numCols).
func (t *Table) allCols() []int {
	cols := make([]int, t.schema.NumCols())
	for i := range cols {
		cols[i] = i
	}
	return cols
}

// Kinds returns the vector kinds for a column projection.
func (t *Table) Kinds(cols []int) []types.Kind {
	kinds := make([]types.Kind, len(cols))
	for i, c := range cols {
		kinds[i] = t.schema.Cols[c].Kind
	}
	return kinds
}

// Scan returns a batch source producing the projected columns of all visible
// rows whose sort key lies in [loKey, hiKey] (nil bounds are open; bounds
// may be prefixes of the sort key). The source also emits RIDs. Range
// restriction uses the sparse index, so the scan may produce rows just
// outside the bounds (partial blocks); predicates re-filter downstream,
// exactly as with real zone maps. The pipeline itself — delta-mode dispatch,
// merge stacking, projection pushdown — lives in package engine; Table
// satisfies engine.Relation, so plans can be built directly over it.
func (t *Table) Scan(cols []int, loKey, hiKey types.Row) (pdt.BatchSource, error) {
	// An empty delta structure means the stable image is scanned directly
	// (engine.NewSource checks): tables the update streams never touch behave
	// exactly like clean runs, as the paper's footnote on Q2/Q11/Q16 requires.
	im := t.img.Load()
	return engine.NewSource(engine.TableSpec{Store: im.store, PDT: im.pdt, VDT: im.vdt}, cols, loKey, hiKey)
}

// PartitionScan makes Table an engine.PartRelation: it pins one consistent
// (store, delta) image and returns block-aligned, range-clamped slices of
// the same merge pipeline Scan would build over it. Every worker of a
// parallel plan opens its morsels against that single pinned image, so a
// checkpoint installing a new image mid-plan can never mix generations
// within one scan. VDT tables with buffered updates decline (nil PartScan)
// and scan serially. Like direct Scan, concurrent *updates* to the PDT are
// the caller's to serialize; the transaction layer's snapshots are the safe
// way to scan while writes proceed.
func (t *Table) PartitionScan(loKey, hiKey types.Row) (*engine.PartScan, error) {
	im := t.img.Load()
	return engine.PartitionSpec(engine.TableSpec{Store: im.store, PDT: im.pdt, VDT: im.vdt}, loKey, hiKey), nil
}

// FindByKey locates the visible tuple with the given (full) sort key,
// returning its RID and current column values.
func (t *Table) FindByKey(key types.Row) (rid uint64, row types.Row, found bool, err error) {
	if len(key) != len(t.schema.SortKey) {
		return 0, nil, false, fmt.Errorf("table: FindByKey needs the full %d-column sort key", len(t.schema.SortKey))
	}
	err = engine.Scan(t, t.allCols()...).Range(key, key).BatchSize(16).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				cmp := b.CompareKey(key, t.schema.SortKey, int(i))
				if cmp == 0 {
					rid, row, found = b.Rids[i], b.Row(int(i)), true
					return engine.Stop
				}
				if cmp < 0 {
					return engine.Stop // passed the key's position
				}
			}
			return nil
		})
	if err != nil {
		return 0, nil, false, err
	}
	return rid, row, found, nil
}

// insertPosition returns the RID where a tuple with the given key belongs
// (the RID of the first visible tuple with a greater key) and whether an
// equal key is already visible.
func (t *Table) insertPosition(key types.Row) (rid uint64, dup bool, err error) {
	rid = t.NRows()
	err = engine.Scan(t, t.schema.SortKey...).Range(key, nil).BatchSize(16).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				cmp := b.CompareKey(key, nil, int(i))
				if cmp == 0 {
					rid, dup = b.Rids[i], true
					return engine.Stop
				}
				if cmp < 0 {
					rid = b.Rids[i]
					return engine.Stop
				}
			}
			return nil
		})
	if err != nil {
		return 0, false, err
	}
	return rid, dup, nil
}

// stableHasKey reports whether the stable image contains the key (the scan
// bypasses the delta structure on purpose).
func (t *Table) stableHasKey(key types.Row) (found bool, err error) {
	src, err := engine.NewSource(engine.TableSpec{Store: t.img.Load().store}, t.schema.SortKey, key, key)
	if err != nil {
		return false, err
	}
	out := vector.NewBatch(t.Kinds(t.schema.SortKey), 256)
	for {
		out.Reset()
		n, err := src.Next(out, 256)
		if err != nil {
			return false, err
		}
		if n == 0 {
			return false, nil
		}
		for i := 0; i < n; i++ {
			if types.CompareRows(key, out.Row(i)) == 0 {
				return true, nil
			}
		}
	}
}

// Insert adds a new tuple; its sort key must not be visible.
func (t *Table) Insert(row types.Row) error {
	if err := t.schema.ValidateRow(row); err != nil {
		return err
	}
	key := t.schema.KeyOf(row)
	im := t.img.Load()
	switch t.opts.Mode {
	case ModeNone:
		return fmt.Errorf("table: read-only (ModeNone)")
	case ModePDT:
		rid, dup, err := t.insertPosition(key)
		if err != nil {
			return err
		}
		if dup {
			return fmt.Errorf("table: duplicate key %v", key)
		}
		return im.pdt.Insert(rid, row)
	case ModeVDT:
		if _, ok := im.vdt.HasInsert(key); ok {
			return fmt.Errorf("table: duplicate key %v", key)
		}
		stable, err := t.stableHasKey(key)
		if err != nil {
			return err
		}
		if stable && !im.vdt.IsDeleted(key) {
			return fmt.Errorf("table: duplicate key %v", key)
		}
		return im.vdt.Insert(row)
	}
	return fmt.Errorf("table: unknown mode")
}

// DeleteByKey removes the visible tuple with the given sort key, reporting
// whether it existed.
func (t *Table) DeleteByKey(key types.Row) (bool, error) {
	im := t.img.Load()
	switch t.opts.Mode {
	case ModeNone:
		return false, fmt.Errorf("table: read-only (ModeNone)")
	case ModePDT:
		rid, row, found, err := t.FindByKey(key)
		if err != nil || !found {
			return false, err
		}
		return true, im.pdt.Delete(rid, t.schema.KeyOf(row))
	case ModeVDT:
		_, inIns := im.vdt.HasInsert(key)
		stable, err := t.stableHasKey(key)
		if err != nil {
			return false, err
		}
		if !inIns && (!stable || im.vdt.IsDeleted(key)) {
			return false, nil
		}
		im.vdt.Delete(key, stable)
		return true, nil
	}
	return false, fmt.Errorf("table: unknown mode")
}

// UpdateByKey sets one column of the visible tuple with the given sort key.
// Updating a sort-key column is expressed as delete+insert, per the paper;
// the new key's uniqueness is checked before the delete, so a collision with
// an existing row rejects the update and leaves the old row in place.
func (t *Table) UpdateByKey(key types.Row, col int, val types.Value) (bool, error) {
	if t.opts.Mode == ModeNone {
		return false, fmt.Errorf("table: read-only (ModeNone)")
	}
	rid, row, found, err := t.FindByKey(key)
	if err != nil || !found {
		return false, err
	}
	if t.schema.IsSortKeyCol(col) {
		newRow := row.Clone()
		newRow[col] = val
		newKey := t.schema.KeyOf(newRow)
		if types.CompareRows(newKey, key) != 0 {
			if _, _, taken, err := t.FindByKey(newKey); err != nil {
				return false, err
			} else if taken {
				return false, fmt.Errorf("table: duplicate key %v", newKey)
			}
		}
		if _, err := t.DeleteByKey(key); err != nil {
			return false, err
		}
		return true, t.Insert(newRow)
	}
	im := t.img.Load()
	switch t.opts.Mode {
	case ModePDT:
		return true, im.pdt.Modify(rid, col, val)
	case ModeVDT:
		stable, err := t.stableHasKey(key)
		if err != nil {
			return false, err
		}
		return true, im.vdt.Modify(row, col, val, stable)
	}
	return false, fmt.Errorf("table: unknown mode")
}

// Checkpoint folds the buffered deltas into a brand-new stable image and
// resets the differential structure (the paper's checkpointing step: the
// table image with all updates applied replaces TABLE0, and query
// processing switches over). The retired image's blocks are evicted from the
// device's buffer pool so repeated checkpoints don't leak pool entries.
func (t *Table) Checkpoint() error {
	if t.opts.Mode == ModeNone {
		return nil
	}
	src, err := t.Scan(t.allCols(), nil, nil)
	if err != nil {
		return err
	}
	old := t.img.Load()
	store, err := buildImage(t.schema, src, old.store.Device(), t.opts.BlockRows, t.opts.Compressed)
	if err != nil {
		return err
	}
	next := &image{store: store}
	switch t.opts.Mode {
	case ModePDT:
		next.pdt = pdt.New(t.schema, t.opts.Fanout)
	case ModeVDT:
		next.vdt = vdt.New(t.schema)
	}
	t.img.Store(next)
	old.store.Evict()
	return nil
}

// Materialize streams the merged image of a stable store and a stack of
// consecutive PDT layers (bottom-to-top) into a brand-new store on the same
// device, using the table's block geometry. The inputs are only read, and
// the layers merge on the fly — no intermediate folded PDT is built. This
// is the build step of the transaction manager's online checkpoint, which
// runs it without any lock while commits keep landing in a fresh delta
// layer.
func (t *Table) Materialize(store *colstore.Store, deltas ...*pdt.PDT) (*colstore.Store, error) {
	b := colstore.NewBuilder(t.schema, store.Device(), t.opts.BlockRows, t.opts.Compressed)
	return t.MaterializeInto(b, store, deltas...)
}

// MaterializeInto is Materialize with a caller-supplied destination builder —
// the durable checkpoint passes a file builder streaming to a new segment
// generation, so the image goes to disk block by block instead of through
// RAM. On error the builder is aborted (a partial segment file is removed).
func (t *Table) MaterializeInto(b *colstore.Builder, store *colstore.Store, deltas ...*pdt.PDT) (*colstore.Store, error) {
	if err := t.MaterializeStream(b, store, deltas...); err != nil {
		b.Abort()
		return nil, err
	}
	return b.Finish()
}

// MaterializeStream drains the merged (store ∘ deltas) view into b without
// sealing it; the caller decides between Finish and Abort. The durable
// checkpoint uses the split to put its crash-injection point between the last
// streamed block and the footer write.
func (t *Table) MaterializeStream(b *colstore.Builder, store *colstore.Store, deltas ...*pdt.PDT) error {
	cols := t.allCols()
	src := engine.StackPDTs(store.NewScanner(cols, 0, store.NRows()), cols, 0, true, deltas...)
	return drainInto(b, t.schema, src)
}

// Install atomically swaps in a checkpointed image and its differential
// layer (ModePDT only): the transaction manager's online checkpoint builds
// the new store via Materialize and hands the side delta that accumulated
// during the build. The swap publishes the pair as one unit, so readers
// racing a background install always see a consistent image; direct table
// *updates* remain the caller's to serialize, as ever.
func (t *Table) Install(store *colstore.Store, p *pdt.PDT) error {
	if t.opts.Mode != ModePDT {
		return fmt.Errorf("table: Install requires ModePDT, got %v", t.opts.Mode)
	}
	t.img.Store(&image{store: store, pdt: p})
	return nil
}

// buildImage drains a batch source of all schema columns, in sort-key order,
// into a new stable store.
func buildImage(schema *types.Schema, src pdt.BatchSource, dev *colstore.Device, blockRows int, compressed bool) (*colstore.Store, error) {
	return fillBuilder(colstore.NewBuilder(schema, dev, blockRows, compressed), schema, src)
}

// fillBuilder drains src into an already-constructed builder (RAM- or
// file-backed) and seals it.
func fillBuilder(b *colstore.Builder, schema *types.Schema, src pdt.BatchSource) (*colstore.Store, error) {
	if err := drainInto(b, schema, src); err != nil {
		return nil, err
	}
	return b.Finish()
}

// drainInto streams every batch of src into b without sealing it.
func drainInto(b *colstore.Builder, schema *types.Schema, src pdt.BatchSource) error {
	kinds := make([]types.Kind, schema.NumCols())
	for i, c := range schema.Cols {
		kinds[i] = c.Kind
	}
	buf := vector.NewBatch(kinds, 4096)
	for {
		buf.Reset()
		n, err := src.Next(buf, 4096)
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
		if err := b.AddBatch(buf); err != nil {
			return err
		}
	}
}
