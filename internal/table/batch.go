// Batched updates: the paper's §6 bulk-load regime. A batch of inserts,
// deletes and modifies is sorted by sort key, every op's target position is
// resolved with ONE shared merge-scan cursor over the visible image (instead
// of one key-probing table scan per row), and the ops are applied to the
// positional delta structure in key order with a running shift — so the PDT
// receives its entries in (SID, RID) order, its cheapest insertion pattern.
//
// The same resolution pass serves Table.ApplyBatch (direct table updates)
// and Txn.ApplyBatch (transactional updates into a Trans-PDT): both are
// engine.Relations, so the resolver only sees "a sorted visible image".
package table

import (
	"fmt"
	"sort"

	"pdtstore/internal/engine"
	"pdtstore/internal/pdt"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

// OpKind selects what a batched Op does.
type OpKind uint8

const (
	// OpInsert adds Row (whose key must not be visible).
	OpInsert OpKind = iota
	// OpDelete removes the visible tuple with sort key Key (a miss is
	// skipped, matching DeleteByKey's found=false).
	OpDelete
	// OpUpdate sets column Col of the visible tuple with sort key Key to
	// Val. Sort-key columns cannot be updated in a batch (express that as
	// delete+insert across two batches, or use UpdateByKey).
	OpUpdate
)

// Op is one update of a batch.
type Op struct {
	Kind OpKind
	Row  types.Row   // OpInsert: the full tuple
	Key  types.Row   // OpDelete/OpUpdate: the full sort key
	Col  int         // OpUpdate: column to set
	Val  types.Value // OpUpdate: new value
}

// key returns the sort key the op targets.
func (o Op) key(schema *types.Schema) types.Row {
	if o.Kind == OpInsert {
		return schema.KeyOf(o.Row)
	}
	return o.Key
}

// SortOps validates a batch and returns it sorted into application order:
// ascending by target sort key, stable (ops on the same key keep their
// submitted order). Within one batch keys must be distinct, except that
// several OpUpdates may target the same key; richer same-key interaction
// (insert-then-modify, delete-then-reinsert) needs the row-at-a-time API,
// whose positions see each prior update. The input slice is not modified.
func SortOps(schema *types.Schema, ops []Op) ([]Op, error) {
	type keyed struct {
		op  Op
		key types.Row
	}
	sorted := make([]keyed, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case OpInsert:
			if err := schema.ValidateRow(op.Row); err != nil {
				return nil, fmt.Errorf("table: batch op %d: %w", i, err)
			}
		case OpDelete:
			if len(op.Key) != len(schema.SortKey) {
				return nil, fmt.Errorf("table: batch op %d: delete needs the full %d-column sort key", i, len(schema.SortKey))
			}
		case OpUpdate:
			if len(op.Key) != len(schema.SortKey) {
				return nil, fmt.Errorf("table: batch op %d: update needs the full %d-column sort key", i, len(schema.SortKey))
			}
			if op.Col < 0 || op.Col >= schema.NumCols() {
				return nil, fmt.Errorf("table: batch op %d: column %d out of range", i, op.Col)
			}
			if schema.IsSortKeyCol(op.Col) {
				return nil, fmt.Errorf("table: batch op %d: sort-key column %q cannot be updated in a batch", i, schema.Cols[op.Col].Name)
			}
			if op.Val.K != schema.Cols[op.Col].Kind {
				return nil, fmt.Errorf("table: batch op %d: column %q expects %v, got %v", i, schema.Cols[op.Col].Name, schema.Cols[op.Col].Kind, op.Val.K)
			}
		default:
			return nil, fmt.Errorf("table: batch op %d: unknown kind %d", i, op.Kind)
		}
		sorted[i] = keyed{op: op, key: op.key(schema)}
	}
	sort.SliceStable(sorted, func(i, j int) bool {
		return types.CompareRows(sorted[i].key, sorted[j].key) < 0
	})
	out := make([]Op, len(sorted))
	for i, k := range sorted {
		out[i] = k.op
		if i > 0 && types.CompareRows(sorted[i-1].key, k.key) == 0 &&
			(sorted[i-1].op.Kind != OpUpdate || k.op.Kind != OpUpdate) {
			return nil, fmt.Errorf("table: batch has conflicting ops on key %v", k.key)
		}
	}
	return out, nil
}

// OpPos is one resolved op target: the RID the op applies at in the
// pre-batch image, and whether a visible tuple with the op's key exists.
// For a miss, RID is where a tuple with that key would be inserted.
type OpPos struct {
	RID   uint64
	Found bool
}

// ResolveOps resolves the target position of every op of a sorted batch with
// a single merge scan over rel's sort-key columns, started at the smallest
// op key and stopped as soon as the last op is placed. ops must be the
// output of SortOps.
func ResolveOps(rel engine.Relation, ops []Op) ([]OpPos, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	schema := rel.Schema()
	// Target keys, materialized once per op (not once per scanned row —
	// KeyOf allocates for inserts).
	keys := make([]types.Row, len(ops))
	for i, op := range ops {
		keys[i] = op.key(schema)
	}
	pos := make([]OpPos, len(ops))
	i := 0
	var lastRID uint64
	seen := false
	// cmpKeyAt orders an op key against the scan row at index r without
	// materializing the row (the projected columns are the sort key, in
	// order).
	cmpKeyAt := func(key types.Row, b *vector.Batch, r int) int {
		for c := range key {
			if cmp := types.Compare(key[c], b.Vecs[c].Get(r)); cmp != 0 {
				return cmp
			}
		}
		return 0
	}
	err := engine.Scan(rel, schema.SortKey...).
		Range(keys[0], nil).
		WithRids().
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, r := range sel {
				rid := b.Rids[r]
				for i < len(ops) {
					cmp := cmpKeyAt(keys[i], b, int(r))
					if cmp > 0 {
						break // op targets a later row
					}
					// cmp < 0: no visible tuple with this key; it would sit
					// right where this row is. cmp == 0: exact hit.
					pos[i] = OpPos{RID: rid, Found: cmp == 0}
					i++
				}
				if i == len(ops) {
					return engine.Stop
				}
				lastRID, seen = rid, true
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	// Ops beyond the last visible row land just past it.
	end := uint64(0)
	if seen {
		end = lastRID + 1
	}
	for ; i < len(ops); i++ {
		pos[i] = OpPos{RID: end}
	}
	return pos, nil
}

// ApplyOps applies a sorted, resolved batch to a positional delta tree,
// carrying the net shift of the batch's own inserts and deletes so each op
// lands at its position in the evolving image. It reports how many ops took
// effect (delete/update misses are skipped). A duplicate-key insert aborts
// with an error, leaving the earlier ops applied — transactional callers
// discard the Trans-PDT, direct callers inspect the count.
func ApplyOps(p *pdt.PDT, schema *types.Schema, ops []Op, pos []OpPos) (int, error) {
	applied := 0
	var shift int64
	for i, op := range ops {
		rid := uint64(int64(pos[i].RID) + shift)
		switch op.Kind {
		case OpInsert:
			if pos[i].Found {
				return applied, fmt.Errorf("table: duplicate key %v", op.key(schema))
			}
			if err := p.Insert(rid, op.Row); err != nil {
				return applied, err
			}
			shift++
			applied++
		case OpDelete:
			if !pos[i].Found {
				continue
			}
			if err := p.Delete(rid, op.Key); err != nil {
				return applied, err
			}
			shift--
			applied++
		case OpUpdate:
			if !pos[i].Found {
				continue
			}
			if err := p.Modify(rid, op.Col, op.Val); err != nil {
				return applied, err
			}
			applied++
		}
	}
	return applied, nil
}

// ApplyBatch applies a batch of updates, resolving all target positions with
// one shared scan (ModePDT). ModeVDT has no positions to resolve and applies
// the validated, sorted batch through the per-op path — the same batch
// contract (distinct keys, no sort-key updates) holds in every mode; ModeNone
// rejects. It returns the number of ops that took effect: delete/update
// misses are skipped, a duplicate-key insert aborts the batch with the
// earlier ops applied.
func (t *Table) ApplyBatch(ops []Op) (int, error) {
	switch t.opts.Mode {
	case ModeNone:
		return 0, fmt.Errorf("table: read-only (ModeNone)")
	case ModeVDT:
		sorted, err := SortOps(t.schema, ops)
		if err != nil {
			return 0, err
		}
		applied := 0
		for _, op := range sorted {
			switch op.Kind {
			case OpInsert:
				if err := t.Insert(op.Row); err != nil {
					return applied, err
				}
				applied++
			case OpDelete:
				ok, err := t.DeleteByKey(op.Key)
				if err != nil {
					return applied, err
				}
				if ok {
					applied++
				}
			case OpUpdate:
				ok, err := t.UpdateByKey(op.Key, op.Col, op.Val)
				if err != nil {
					return applied, err
				}
				if ok {
					applied++
				}
			default:
				return applied, fmt.Errorf("table: unknown op kind %d", op.Kind)
			}
		}
		return applied, nil
	case ModePDT:
		sorted, err := SortOps(t.schema, ops)
		if err != nil {
			return 0, err
		}
		pos, err := ResolveOps(t, sorted)
		if err != nil {
			return 0, err
		}
		return ApplyOps(t.PDT(), t.schema, sorted, pos)
	}
	return 0, fmt.Errorf("table: unknown mode")
}
