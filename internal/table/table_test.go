package table

import (
	"fmt"
	"math/rand"
	"testing"

	"pdtstore/internal/colstore"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

func testSchema() *types.Schema {
	return types.MustSchema([]types.Column{
		{Name: "k1", Kind: types.Int64},
		{Name: "k2", Kind: types.String},
		{Name: "a", Kind: types.Int64},
		{Name: "b", Kind: types.Float64},
	}, []int{0, 1})
}

func genRows(n int) []types.Row {
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{
			types.Int(int64(i / 3 * 10)),
			types.Str(fmt.Sprintf("s%02d", i%3)),
			types.Int(int64(i)),
			types.Float(float64(i) / 4),
		}
	}
	return rows
}

func newTable(t *testing.T, mode DeltaMode, n int) *Table {
	t.Helper()
	tbl, err := Load(testSchema(), genRows(n), Options{Mode: mode, BlockRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func scanKeys(t *testing.T, tbl *Table, lo, hi types.Row) []types.Row {
	t.Helper()
	cols := []int{0, 1}
	src, err := tbl.Scan(cols, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	out := vector.NewBatch(tbl.Kinds(cols), 64)
	for {
		n, err := src.Next(out, 64)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	rows := make([]types.Row, out.Len())
	for i := range rows {
		rows[i] = out.Row(i)
	}
	return rows
}

func TestAllModesBasicLifecycle(t *testing.T) {
	for _, mode := range []DeltaMode{ModePDT, ModeVDT} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			tbl := newTable(t, mode, 60)
			if tbl.NRows() != 60 {
				t.Fatalf("NRows = %d", tbl.NRows())
			}

			// insert a fresh key
			row := types.Row{types.Int(55), types.Str("zz"), types.Int(-1), types.Float(0)}
			if err := tbl.Insert(row); err != nil {
				t.Fatal(err)
			}
			if tbl.NRows() != 61 {
				t.Fatalf("NRows after insert = %d", tbl.NRows())
			}
			rid, got, found, err := tbl.FindByKey(types.Row{types.Int(55), types.Str("zz")})
			if err != nil || !found {
				t.Fatalf("inserted key not found: %v", err)
			}
			if types.CompareRows(got, row) != 0 {
				t.Fatalf("FindByKey row = %v", got)
			}
			_ = rid

			// duplicate insert rejected
			if err := tbl.Insert(row); err == nil {
				t.Fatal("duplicate insert accepted")
			}

			// update a stable tuple
			key := types.Row{types.Int(0), types.Str("s01")}
			ok, err := tbl.UpdateByKey(key, 2, types.Int(999))
			if err != nil || !ok {
				t.Fatalf("update: %v %v", ok, err)
			}
			_, got, _, err = tbl.FindByKey(key)
			if err != nil || got[2].I != 999 {
				t.Fatalf("update not visible: %v %v", got, err)
			}

			// delete it
			ok, err = tbl.DeleteByKey(key)
			if err != nil || !ok {
				t.Fatalf("delete: %v %v", ok, err)
			}
			if _, _, found, _ := tbl.FindByKey(key); found {
				t.Fatal("deleted key still visible")
			}
			if ok, _ := tbl.DeleteByKey(key); ok {
				t.Fatal("double delete reported success")
			}
			if tbl.NRows() != 60 {
				t.Fatalf("NRows after delete = %d", tbl.NRows())
			}

			// update of missing key
			if ok, _ := tbl.UpdateByKey(types.Row{types.Int(-5), types.Str("no")}, 2, types.Int(0)); ok {
				t.Fatal("update of missing key reported success")
			}
			if tbl.DeltaMemBytes() == 0 {
				t.Fatal("delta memory should be positive")
			}
		})
	}
}

func TestModeNoneRejectsUpdates(t *testing.T) {
	tbl := newTable(t, ModeNone, 10)
	if err := tbl.Insert(genRows(10)[0]); err == nil {
		t.Error("ModeNone insert accepted")
	}
	if _, err := tbl.DeleteByKey(types.Row{types.Int(0), types.Str("s00")}); err == nil {
		t.Error("ModeNone delete accepted")
	}
	if _, err := tbl.UpdateByKey(types.Row{types.Int(0), types.Str("s00")}, 2, types.Int(1)); err == nil {
		t.Error("ModeNone update accepted")
	}
	keys := scanKeys(t, tbl, nil, nil)
	if len(keys) != 10 {
		t.Errorf("scan returned %d rows", len(keys))
	}
}

func TestSortKeyUpdateBecomesDeleteInsert(t *testing.T) {
	for _, mode := range []DeltaMode{ModePDT, ModeVDT} {
		tbl := newTable(t, mode, 30)
		key := types.Row{types.Int(30), types.Str("s00")}
		ok, err := tbl.UpdateByKey(key, 0, types.Int(31))
		if err != nil || !ok {
			t.Fatalf("%v: sort-key update: %v", mode, err)
		}
		if _, _, found, _ := tbl.FindByKey(key); found {
			t.Fatalf("%v: old key still visible", mode)
		}
		_, row, found, err := tbl.FindByKey(types.Row{types.Int(31), types.Str("s00")})
		if err != nil || !found {
			t.Fatalf("%v: new key missing", mode)
		}
		if row[0].I != 31 {
			t.Fatalf("%v: moved row = %v", mode, row)
		}
	}
}

// TestSortKeyUpdateCollisionKeepsOldRow is the regression test for the
// delete-then-insert bug: a sort-key update whose new key collides with an
// existing row must fail up front, with the old row still visible — not
// delete the old row and then fail the insert.
func TestSortKeyUpdateCollisionKeepsOldRow(t *testing.T) {
	for _, mode := range []DeltaMode{ModePDT, ModeVDT} {
		tbl := newTable(t, mode, 30)
		key := types.Row{types.Int(30), types.Str("s00")}
		before := tbl.NRows()
		// Key (30, "s01") exists in genRows(30): the update must be rejected.
		if ok, err := tbl.UpdateByKey(key, 1, types.Str("s01")); err == nil {
			t.Fatalf("%v: colliding sort-key update accepted (ok=%v)", mode, ok)
		}
		_, row, found, err := tbl.FindByKey(key)
		if err != nil || !found {
			t.Fatalf("%v: old row lost after rejected update: %v", mode, err)
		}
		if row[1].S != "s00" {
			t.Fatalf("%v: old row mutated: %v", mode, row)
		}
		if tbl.NRows() != before {
			t.Fatalf("%v: row count changed: %d -> %d", mode, before, tbl.NRows())
		}
		// A no-op sort-key update (same value) must still succeed.
		if ok, err := tbl.UpdateByKey(key, 1, types.Str("s00")); err != nil || !ok {
			t.Fatalf("%v: same-key update rejected: %v", mode, err)
		}
	}
}

func TestRangeScanWithUpdates(t *testing.T) {
	for _, mode := range []DeltaMode{ModePDT, ModeVDT} {
		tbl := newTable(t, mode, 90) // k1 in 0,10,...,290
		// insert inside a future range
		if err := tbl.Insert(types.Row{types.Int(105), types.Str("aa"), types.Int(0), types.Float(0)}); err != nil {
			t.Fatal(err)
		}
		// delete one row inside the range
		if ok, err := tbl.DeleteByKey(types.Row{types.Int(110), types.Str("s00")}); err != nil || !ok {
			t.Fatal(err)
		}
		keys := scanKeys(t, tbl, types.Row{types.Int(100)}, types.Row{types.Int(120)})
		// qualifying visible keys: (100,s00..s02), (105,aa), (110,s01),
		// (110,s02), (120,s00..s02) — nine in total.
		count := 0
		for _, k := range keys {
			if k[0].I >= 100 && k[0].I <= 120 {
				count++
			}
		}
		if count != 9 {
			t.Fatalf("%v: range scan has %d qualifying keys, want 9: %v", mode, count, keys)
		}
	}
}

func TestCheckpointEquivalence(t *testing.T) {
	for _, mode := range []DeltaMode{ModePDT, ModeVDT} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			tbl := newTable(t, mode, 60)
			// random updates
			for i := 0; i < 120; i++ {
				switch rng.Intn(3) {
				case 0:
					k := types.Row{types.Int(int64(rng.Intn(300))), types.Str(fmt.Sprintf("n%03d", i)), types.Int(int64(i)), types.Float(1)}
					_ = tbl.Insert(k) // duplicates rejected, fine
				case 1:
					keys := scanKeys(t, tbl, nil, nil)
					if len(keys) > 0 {
						k := keys[rng.Intn(len(keys))]
						if _, err := tbl.DeleteByKey(k); err != nil {
							t.Fatal(err)
						}
					}
				case 2:
					keys := scanKeys(t, tbl, nil, nil)
					if len(keys) > 0 {
						k := keys[rng.Intn(len(keys))]
						if _, err := tbl.UpdateByKey(k, 2, types.Int(int64(i))); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			before := scanAllRows(t, tbl)
			nBefore := tbl.NRows()
			if err := tbl.Checkpoint(); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
			if tbl.DeltaMemBytes() != 0 {
				t.Error("delta not reset after checkpoint")
			}
			if tbl.NRows() != nBefore {
				t.Errorf("NRows changed across checkpoint: %d -> %d", nBefore, tbl.NRows())
			}
			after := scanAllRows(t, tbl)
			if len(before) != len(after) {
				t.Fatalf("row count changed: %d -> %d", len(before), len(after))
			}
			for i := range before {
				if types.CompareRows(before[i], after[i]) != 0 {
					t.Fatalf("row %d changed: %v -> %v", i, before[i], after[i])
				}
			}
			// the table remains updatable after checkpointing
			if err := tbl.Insert(types.Row{types.Int(9999), types.Str("post"), types.Int(0), types.Float(0)}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func scanAllRows(t *testing.T, tbl *Table) []types.Row {
	t.Helper()
	cols := []int{0, 1, 2, 3}
	src, err := tbl.Scan(cols, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := vector.NewBatch(tbl.Kinds(cols), 64)
	for {
		n, err := src.Next(out, 64)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	rows := make([]types.Row, out.Len())
	for i := range rows {
		rows[i] = out.Row(i)
	}
	return rows
}

func TestVDTScanReadsSortKeysPDTDoesNot(t *testing.T) {
	// The paper's central I/O claim: scanning a non-key column must fetch
	// the sort-key columns under VDT but not under PDT.
	dev := colstore.NewDevice()
	rows := genRows(3000)
	mk := func(mode DeltaMode) *Table {
		tbl, err := Load(testSchema(), rows, Options{Mode: mode, BlockRows: 64, Device: dev})
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	pdtTbl, vdtTbl := mk(ModePDT), mk(ModeVDT)
	// buffer one update in each so the merge path is active
	if err := pdtTbl.Insert(types.Row{types.Int(5), types.Str("x"), types.Int(0), types.Float(0)}); err != nil {
		t.Fatal(err)
	}
	if err := vdtTbl.Insert(types.Row{types.Int(5), types.Str("x"), types.Int(0), types.Float(0)}); err != nil {
		t.Fatal(err)
	}

	measure := func(tbl *Table) uint64 {
		dev.DropCaches()
		dev.ResetStats()
		cols := []int{2} // non-key column only
		src, err := tbl.Scan(cols, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		out := vector.NewBatch(tbl.Kinds(cols), 1024)
		for {
			n, err := src.Next(out, 1024)
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				break
			}
			out.Reset()
		}
		bytes, _ := dev.Stats()
		return bytes
	}
	pdtBytes := measure(pdtTbl)
	vdtBytes := measure(vdtTbl)
	if vdtBytes <= pdtBytes {
		t.Fatalf("VDT scan read %d bytes, PDT %d — VDT must read more (sort keys)", vdtBytes, pdtBytes)
	}
	// PDT reads exactly the projected column.
	if want := pdtTbl.Store().EncodedSize(2); pdtBytes != want {
		t.Fatalf("PDT scan read %d bytes, column is %d", pdtBytes, want)
	}
}

func TestLoadRejectsUnsortedRows(t *testing.T) {
	rows := genRows(10)
	rows[3], rows[4] = rows[4], rows[3]
	if _, err := Load(testSchema(), rows, Options{Mode: ModePDT}); err == nil {
		t.Fatal("unsorted load accepted")
	}
}
