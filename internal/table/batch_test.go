package table

import (
	"fmt"
	"math/rand"
	"testing"

	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

func batchSchema() *types.Schema {
	return types.MustSchema([]types.Column{
		{Name: "k", Kind: types.Int64},
		{Name: "a", Kind: types.Int64},
		{Name: "b", Kind: types.String},
	}, []int{0})
}

func loadBatchTable(t *testing.T, mode DeltaMode, n int) *Table {
	t.Helper()
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{types.Int(int64((i + 1) * 10)), types.Int(int64(i)), types.Str(fmt.Sprintf("s%d", i))}
	}
	tbl, err := Load(batchSchema(), rows, Options{Mode: mode, BlockRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func allRows(t *testing.T, tbl *Table) []types.Row {
	t.Helper()
	src, err := tbl.Scan(tbl.allCols(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := vector.NewBatch(tbl.Kinds(tbl.allCols()), 64)
	for {
		n, err := src.Next(b, 64)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	out := make([]types.Row, b.Len())
	for i := range out {
		out[i] = b.Row(i)
	}
	return out
}

// TestTableApplyBatchMatchesPerOp drives the same randomized batches through
// ApplyBatch on one table and the row-at-a-time API on another, for both
// delta modes, and compares full scans (plus the PDT invariant audit).
func TestTableApplyBatchMatchesPerOp(t *testing.T) {
	for _, mode := range []DeltaMode{ModePDT, ModeVDT} {
		for seed := int64(0); seed < 4; seed++ {
			t.Run(fmt.Sprintf("%v/seed=%d", mode, seed), func(t *testing.T) {
				batched := loadBatchTable(t, mode, 25)
				perOp := loadBatchTable(t, mode, 25)
				rng := rand.New(rand.NewSource(seed))
				tag := int64(0)
				for round := 0; round < 3; round++ {
					var ops []Op
					used := map[int64]bool{}
					for len(ops) < 20 {
						switch rng.Intn(3) {
						case 0:
							tag++
							k := tag*10 + 5
							if used[k] {
								continue
							}
							used[k] = true
							ops = append(ops, Op{Kind: OpInsert,
								Row: types.Row{types.Int(k), types.Int(tag), types.Str(fmt.Sprintf("i%d", tag))}})
						case 1:
							k := int64(1+rng.Intn(29)) * 10
							if used[k] {
								continue
							}
							used[k] = true
							ops = append(ops, Op{Kind: OpDelete, Key: types.Row{types.Int(k)}})
						default:
							k := int64(1+rng.Intn(29)) * 10
							if used[k] {
								continue
							}
							used[k] = true
							tag++
							ops = append(ops, Op{Kind: OpUpdate, Key: types.Row{types.Int(k)}, Col: 1, Val: types.Int(tag)})
						}
					}
					nB, err := batched.ApplyBatch(ops)
					if err != nil {
						t.Fatal(err)
					}
					nP := 0
					for _, op := range ops {
						switch op.Kind {
						case OpInsert:
							if err := perOp.Insert(op.Row); err != nil {
								t.Fatal(err)
							}
							nP++
						case OpDelete:
							ok, err := perOp.DeleteByKey(op.Key)
							if err != nil {
								t.Fatal(err)
							}
							if ok {
								nP++
							}
						case OpUpdate:
							ok, err := perOp.UpdateByKey(op.Key, op.Col, op.Val)
							if err != nil {
								t.Fatal(err)
							}
							if ok {
								nP++
							}
						}
					}
					if nB != nP {
						t.Fatalf("round %d: batch applied %d, per-op %d", round, nB, nP)
					}
					got, want := allRows(t, batched), allRows(t, perOp)
					if len(got) != len(want) {
						t.Fatalf("round %d: %d rows vs %d", round, len(got), len(want))
					}
					for i := range got {
						if types.CompareRows(got[i], want[i]) != 0 {
							t.Fatalf("round %d row %d: %v vs %v", round, i, got[i], want[i])
						}
					}
					if mode == ModePDT {
						if err := batched.PDT().Validate(); err != nil {
							t.Fatalf("round %d: %v", round, err)
						}
					}
				}
				// Checkpoint both and compare the rebuilt stable images.
				if err := batched.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				if err := perOp.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				got, want := allRows(t, batched), allRows(t, perOp)
				for i := range got {
					if types.CompareRows(got[i], want[i]) != 0 {
						t.Fatalf("checkpointed row %d: %v vs %v", i, got[i], want[i])
					}
				}
			})
		}
	}
}

func TestTableApplyBatchEdges(t *testing.T) {
	tbl := loadBatchTable(t, ModePDT, 10)

	// Batch touching positions before the first and past the last stable row.
	n, err := tbl.ApplyBatch([]Op{
		{Kind: OpInsert, Row: types.Row{types.Int(1), types.Int(0), types.Str("front")}},
		{Kind: OpInsert, Row: types.Row{types.Int(500), types.Int(0), types.Str("back")}},
		{Kind: OpDelete, Key: types.Row{types.Int(10)}},
		{Kind: OpDelete, Key: types.Row{types.Int(100)}},
		{Kind: OpUpdate, Key: types.Row{types.Int(999)}, Col: 1, Val: types.Int(1)}, // miss
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("applied %d, want 4", n)
	}
	rows := allRows(t, tbl)
	if rows[0][0].I != 1 || rows[len(rows)-1][0].I != 500 {
		t.Fatalf("edge inserts misplaced: %v", rows)
	}
	if tbl.NRows() != 10 {
		t.Fatalf("NRows %d, want 10", tbl.NRows())
	}

	// ModeNone rejects batches.
	none := loadBatchTable(t, ModeNone, 5)
	if _, err := none.ApplyBatch([]Op{{Kind: OpDelete, Key: types.Row{types.Int(10)}}}); err == nil {
		t.Fatal("ModeNone accepted a batch")
	}

	// Empty batch is a no-op.
	if n, err := tbl.ApplyBatch(nil); err != nil || n != 0 {
		t.Fatalf("empty batch: n=%d err=%v", n, err)
	}
}
