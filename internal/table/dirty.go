package table

// Dirty-set computation for incremental checkpoints. PDT updates are
// positional, so the set of stable blocks a checkpoint must rewrite is
// directly computable from the delta layers — the paper's core property put
// to work on the write-back path:
//
//   - Before the first insert/delete (in merged SID order), every tuple's
//     position is stable: an in-place modify dirties exactly one
//     (column, block) cell, SID/BlockRows, and nothing else ("region A").
//   - From the first insert/delete on, positions shift, so every block of
//     every column from that SID's block onward is dirty ("region B").
//
// Sort-key updates are expressed as delete+insert everywhere in the system,
// so region-A modifies never touch sort-key columns and the sparse index
// entries of region-A blocks are inheritable verbatim.

import (
	"fmt"

	"pdtstore/internal/colstore"
	"pdtstore/internal/engine"
	"pdtstore/internal/pdt"
	"pdtstore/internal/vector"
)

// DirtySet is the block-granular footprint of a delta stack over a stable
// image: which region-A cells need rewriting, where the shifted tail begins,
// and the merged image's geometry.
type DirtySet struct {
	BlockRows int
	OldBlocks int    // per-column logical blocks in the base image
	NewBlocks int    // per-column logical blocks in the merged image
	NewRows   uint64 // merged image row count
	// ShiftBlk is the first block whose tuple positions shift (region B
	// starts here); NewBlocks when no insert/delete occurred anywhere.
	ShiftBlk int
	Shifted  bool
	Empty    bool     // no delta entries at all: the images are identical
	Dirty    [][]bool // [col][blk]: region-A blocks with in-place modifies

	dirtyCells int // region-A dirty (column, block) cells
}

// WriteCells returns how many (column, block) cells an incremental
// checkpoint of this dirty set writes: region-A dirty cells plus the full
// width of the shifted tail.
func (ds *DirtySet) WriteCells() int {
	return ds.dirtyCells + (ds.NewBlocks-ds.ShiftBlk)*len(ds.Dirty)
}

// TotalCells returns the merged image's total (column, block) cell count —
// what a full checkpoint writes.
func (ds *DirtySet) TotalCells() int {
	return ds.NewBlocks * len(ds.Dirty)
}

// ComputeDirty folds the delta layers (bottom-to-top, nils skipped) and maps
// their positional entries to exact block coordinates over store. The fold is
// read-only (pdt.Fold is non-destructive), so the layers stay shareable — the
// transaction manager calls this from its checkpoint closure on the same
// frozen layers it then materializes from.
func (t *Table) ComputeDirty(store *colstore.Store, deltas ...*pdt.PDT) (*DirtySet, error) {
	var merged *pdt.PDT
	for _, d := range deltas {
		if d == nil || d.Empty() {
			continue
		}
		if merged == nil {
			merged = d
			continue
		}
		m, err := pdt.Fold(merged, d)
		if err != nil {
			return nil, err
		}
		merged = m
	}
	R := store.BlockRows()
	oldBlocks := store.NumBlocks()
	ncols := t.schema.NumCols()
	ds := &DirtySet{
		BlockRows: R,
		OldBlocks: oldBlocks,
		NewBlocks: oldBlocks,
		NewRows:   store.NRows(),
		ShiftBlk:  oldBlocks,
		Dirty:     make([][]bool, ncols),
	}
	if merged == nil || merged.Empty() {
		ds.Empty = true
		return ds, nil
	}
	ds.NewRows = uint64(int64(store.NRows()) + merged.Delta())
	ds.NewBlocks = 0
	if ds.NewRows > 0 {
		ds.NewBlocks = int((ds.NewRows-1)/uint64(R)) + 1
	}
	for _, e := range merged.Entries() {
		if e.IsInsert() || e.IsDelete() {
			// Entries arrive in non-decreasing SID order: everything from
			// here on lives at SID >= e.SID and is covered by region B.
			ds.Shifted = true
			ds.ShiftBlk = int(e.SID) / R
			break
		}
		// A merged modify always targets a stable tuple (modifies of
		// lower-layer inserts fold into the insert's payload).
		col, blk := e.ModColumn(), int(e.SID)/R
		if blk < oldBlocks {
			if ds.Dirty[col] == nil {
				ds.Dirty[col] = make([]bool, oldBlocks)
			}
			ds.Dirty[col][blk] = true
		}
	}
	if ds.ShiftBlk > ds.NewBlocks {
		ds.ShiftBlk = ds.NewBlocks
	}
	for c := range ds.Dirty {
		for b, d := range ds.Dirty[c] {
			if b >= ds.ShiftBlk {
				ds.Dirty[c][b] = false
			} else if d {
				ds.dirtyCells++
			}
		}
	}
	return ds, nil
}

// MaterializeDelta streams only the dirty part of the merged (store ∘ deltas)
// view into an incremental checkpoint builder: each dirty region-A block gets
// a narrow stacked scan of just its dirty columns over just its SID range,
// and the shifted tail streams through the same full-width merge pipeline a
// full checkpoint would use, starting at the shift block. The caller decides
// between Finish and Abort (the durable checkpoint puts its crash-injection
// points in between).
func (t *Table) MaterializeDelta(b *colstore.DeltaBuilder, store *colstore.Store, ds *DirtySet, deltas ...*pdt.PDT) error {
	R := uint64(ds.BlockRows)
	var cols []int
	for blk := 0; blk < ds.ShiftBlk; blk++ {
		cols = cols[:0]
		for c := range ds.Dirty {
			if ds.Dirty[c] != nil && ds.Dirty[c][blk] {
				cols = append(cols, c)
			}
		}
		if len(cols) == 0 {
			continue
		}
		lo := uint64(blk) * R
		hi := lo + R
		if hi > store.NRows() {
			hi = store.NRows()
		}
		src := engine.StackPDTs(store.NewScanner(cols, lo, hi), cols, lo, false, deltas...)
		buf := vector.NewBatch(t.Kinds(cols), int(hi-lo))
		total := 0
		for {
			n, err := src.Next(buf, int(hi-lo)-total)
			if err != nil {
				return err
			}
			if n == 0 {
				break
			}
			total += n
		}
		if uint64(total) != hi-lo {
			// Positions are stable in region A by construction; a count drift
			// means the dirty set and the delta stack disagree.
			return fmt.Errorf("table: region-A block %d produced %d rows, want %d", blk, total, hi-lo)
		}
		for i, c := range cols {
			if err := b.WriteBlock(c, blk, buf.Vecs[i]); err != nil {
				return err
			}
		}
	}
	if ds.Shifted {
		lo := uint64(ds.ShiftBlk) * R
		all := t.allCols()
		src := engine.StackPDTs(store.NewScanner(all, lo, store.NRows()), all, lo, true, deltas...)
		buf := vector.NewBatch(t.Kinds(all), 4096)
		for {
			buf.Reset()
			n, err := src.Next(buf, 4096)
			if err != nil {
				return err
			}
			if n == 0 {
				break
			}
			if err := b.AppendTail(buf); err != nil {
				return err
			}
		}
	}
	return nil
}
