package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pdtstore/internal/pdt"
	"pdtstore/internal/types"
)

func appendN(t *testing.T, l *FileLog, n int) (lastLSN uint64) {
	t.Helper()
	for i := 0; i < n; i++ {
		lsn, err := l.Append("t", sampleEntries())
		if err != nil {
			t.Fatal(err)
		}
		lastLSN = lsn
	}
	return lastLSN
}

func TestFileLogRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, recs, err := OpenFileLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	appendN(t, l, 5)
	if l.LSN() != 5 {
		t.Fatalf("LSN = %d", l.LSN())
	}
	l.Close()

	l2, recs, err := OpenFileLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != 5 || recs[4].LSN != 5 {
		t.Fatalf("reopen replayed %d records (last %v)", len(recs), recs[len(recs)-1].LSN)
	}
	// The clock continues the pre-crash sequence.
	lsn, err := l2.Append("t", nil)
	if err != nil || lsn != 6 {
		t.Fatalf("post-reopen append: lsn=%d err=%v", lsn, err)
	}
}

// TestFileLogTruncatesTornTailOnOpen simulates a crash mid-append by chopping
// bytes off the newest file: reopening must surface the valid prefix, truncate
// the tear, and append cleanly after it.
func TestFileLogTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenFileLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3)
	path := l.curPath
	l.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	l2, recs, err := OpenFileLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want the 2 intact ones", len(recs))
	}
	// The tear is gone: append then reopen sees 2 old + 1 new records.
	if lsn, err := l2.Append("t", nil); err != nil || lsn != 3 {
		t.Fatalf("append after tear: lsn=%d err=%v", lsn, err)
	}
	l2.Close()
	l3, recs, err := OpenFileLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if len(recs) != 3 || recs[2].LSN != 3 {
		t.Fatalf("after repair: %d records", len(recs))
	}
}

// TestFileLogZeroFilledTailRecovery: delayed allocation can extend the
// newest file with zeros on a crash. A zero header passes CRC framing
// (size=0, crc32("")==0), so it must be classified as a tear and truncated,
// not surfaced as unrecoverable corruption.
func TestFileLogZeroFilledTailRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenFileLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 2)
	path := l.curPath
	l.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, recs, err := OpenFileLog(dir)
	if err != nil {
		t.Fatalf("open over zero-filled tail: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
	if lsn, err := l2.Append("t", nil); err != nil || lsn != 3 {
		t.Fatalf("append after zero-tail repair: lsn=%d err=%v", lsn, err)
	}
	l2.Close()
	l3, recs, err := OpenFileLog(dir)
	if err != nil || len(recs) != 3 {
		t.Fatalf("after repair: %d records, err=%v", len(recs), err)
	}
	l3.Close()
}

// TestFileLogTornMiddleFileFails: a torn record in a non-final file is real
// corruption, not a crash artifact, and must fail the open.
func TestFileLogTornMiddleFileFails(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenFileLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 2)
	first := l.curPath
	l.mu.Lock()
	if err := l.rotateLocked(); err != nil {
		l.mu.Unlock()
		t.Fatal(err)
	}
	l.mu.Unlock()
	appendN(t, l, 2)
	l.Close()

	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(first, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenFileLog(dir); !errors.Is(err, ErrTornTail) {
		t.Fatalf("open over mid-sequence tear: err = %v, want wrapped ErrTornTail", err)
	}
}

func TestFileLogRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenFileLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.maxBytes = 1 // force a rotation on every append
	appendN(t, l, 4)
	if l.Files() < 4 {
		t.Fatalf("expected a file per append, have %d", l.Files())
	}

	// Truncate through LSN 2: files holding only records 1-2 must go, the
	// rest must survive, and replay after reopen yields exactly 3 and 4.
	if err := l.TruncateBelow(2); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, recs, err := OpenFileLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != 2 || recs[0].LSN != 3 || recs[1].LSN != 4 {
		lsns := make([]uint64, len(recs))
		for i, r := range recs {
			lsns[i] = r.LSN
		}
		t.Fatalf("post-truncate replay LSNs = %v, want [3 4]", lsns)
	}
	if l2.LSN() != 4 {
		t.Fatalf("clock = %d, want 4", l2.LSN())
	}

	// Truncating everything empties the directory of old files but keeps the
	// clock moving for the next commit.
	if err := l2.TruncateBelow(4); err != nil {
		t.Fatal(err)
	}
	if lsn, err := l2.Append("t", nil); err != nil || lsn != 5 {
		t.Fatalf("append after full truncate: lsn=%d err=%v", lsn, err)
	}
}

// TestFileLogAppendIsDurable: bytes must be on disk (not just buffered) when
// Append returns, so a crash immediately after commit loses nothing.
func TestFileLogAppendIsDurable(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenFileLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append("t", []pdt.RebuildEntry{{SID: 0, Kind: pdt.KindIns,
		Ins: types.Row{types.Int(1), types.Str("a"), types.Float(0), types.BoolVal(true), types.DateVal(1)}}})
	if err != nil {
		t.Fatal(err)
	}
	// Read the file back through the OS without closing the log: the record
	// must be complete on disk.
	recs, _, err := replayFile(filepath.Join(dir, logFileName(1)))
	if err != nil || len(recs) != 1 || recs[0].LSN != lsn {
		t.Fatalf("on-disk state after Append: %d records, err=%v", len(recs), err)
	}
	l.Close()
}

// TestFileLogGroupAppend: one AppendGroup is one fsync for the whole batch,
// the records are individually durable on disk, and a reopen replays them
// with consecutive LSNs.
func TestFileLogGroupAppend(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenFileLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 2)
	preSyncs := l.Syncs()
	group := make([]GroupRecord, 5)
	for i := range group {
		group[i] = GroupRecord{Table: "t", Entries: sampleEntries()}
	}
	first, err := l.AppendGroup(group)
	if err != nil {
		t.Fatal(err)
	}
	if first != 3 || l.LSN() != 7 {
		t.Fatalf("group LSNs: first=%d lsn=%d, want 3 and 7", first, l.LSN())
	}
	if got := l.Syncs() - preSyncs; got != 1 {
		t.Fatalf("group of 5 cost %d fsyncs, want 1", got)
	}
	recs, _, err := replayFile(filepath.Join(dir, logFileName(1)))
	if err != nil || len(recs) != 7 {
		t.Fatalf("on-disk state after group: %d records, err=%v", len(recs), err)
	}
	l.Close()

	l2, recs, err := OpenFileLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != 7 {
		t.Fatalf("reopen replayed %d records, want 7", len(recs))
	}
	for i, rec := range recs {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, rec.LSN)
		}
	}
}

// TestFileLogGroupSyncFailureRetracts: when the batch's one fsync fails, the
// log is poisoned, the flushed bytes are retracted, and a reopen surfaces
// only the pre-failure records — no transaction of the failed batch can
// resurface via page-cache writeback.
func TestFileLogGroupSyncFailureRetracts(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenFileLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3)
	l.FailNextSync(errors.New("injected: device died at the barrier"))
	group := []GroupRecord{
		{Table: "t", Entries: sampleEntries()},
		{Table: "t", Entries: sampleEntries()},
	}
	if _, err := l.AppendGroup(group); err == nil {
		t.Fatal("group append with failing fsync succeeded")
	}
	if l.LSN() != 3 {
		t.Fatalf("failed group consumed LSNs: %d", l.LSN())
	}
	if l.Err() == nil {
		t.Fatal("log not poisoned after failed group fsync")
	}
	if _, err := l.Append("t", sampleEntries()); err == nil {
		t.Fatal("poisoned log accepted another append")
	}
	l.Close()

	l2, recs, err := OpenFileLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != 3 {
		t.Fatalf("reopen surfaced %d records, want the 3 pre-failure ones", len(recs))
	}
	for i, rec := range recs {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, rec.LSN)
		}
	}
}
