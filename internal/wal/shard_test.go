package wal

import (
	"bytes"
	"reflect"
	"testing"
)

func TestAppendGroupAtRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := []GroupRecord{
		{Table: "table", Shard: 2, Entries: sampleEntries()},
		{Table: "table", Shard: 2, Parts: []uint32{0, 2}, Entries: nil},
	}
	// A gapped first LSN: the shared clock's other shards own 1..4.
	if err := w.AppendGroupAt(5, recs); err != nil {
		t.Fatal(err)
	}
	if w.LSN() != 6 {
		t.Fatalf("LSN after gapped append = %d", w.LSN())
	}
	// Non-monotonic explicit LSNs are rejected and poison the writer.
	if err := w.AppendGroupAt(6, recs[:1]); err == nil {
		t.Fatal("non-monotonic AppendGroupAt accepted")
	}
	if err := w.Err(); err == nil {
		t.Fatal("writer not poisoned after bad explicit LSN")
	}

	got, err := Replay(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("replayed %d records", len(got))
	}
	if got[0].LSN != 5 || got[0].Shard != 2 || len(got[0].Parts) != 0 {
		t.Fatalf("record 0 = %+v", got[0])
	}
	if !reflect.DeepEqual(got[0].Entries, sampleEntries()) {
		t.Fatal("entries did not roundtrip")
	}
	if got[1].LSN != 6 || got[1].Shard != 2 || !reflect.DeepEqual(got[1].Parts, []uint32{0, 2}) {
		t.Fatalf("record 1 = %+v", got[1])
	}
}

func rec(lsn uint64, shard uint32, parts ...uint32) Record {
	return Record{LSN: lsn, Table: "table", Shard: shard, Parts: parts}
}

func TestCompleteGroups(t *testing.T) {
	// Three streams. LSN 3 is a complete cross-shard group on {0,1}; LSN 5 is
	// torn — stream 2 never got its record (crash between appends); LSN 7 is
	// complete only because stream 1's absence is explained by its checkpoint
	// having truncated everything at or below LSN 8.
	streams := [][]Record{
		{rec(1, 0), rec(3, 0, 0, 1), rec(5, 0, 0, 2), rec(7, 0, 0, 1)},
		{rec(2, 1), rec(3, 1, 0, 1)},
		{rec(4, 2)},
	}
	base := []uint64{0, 8, 0}
	got := CompleteGroups(streams, base)
	want := [][]Record{
		{rec(1, 0), rec(3, 0, 0, 1), rec(7, 0, 0, 1)},
		{rec(2, 1), rec(3, 1, 0, 1)},
		{rec(4, 2)},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CompleteGroups:\n got %+v\nwant %+v", got, want)
	}
}

func TestCompleteGroupsUnknownParticipant(t *testing.T) {
	// A participant index beyond the stream set (corrupt or from a larger
	// former topology) can never be verified complete: the record is dropped.
	streams := [][]Record{{rec(1, 0, 0, 9)}}
	got := CompleteGroups(streams, []uint64{0})
	if len(got[0]) != 0 {
		t.Fatalf("kept a group with an unknown participant: %+v", got[0])
	}
}
