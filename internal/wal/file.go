package wal

// FileLog: the durable write-ahead log. A log is a directory of numbered
// segment files (%016x.wal); records append to the newest with an fsync per
// appended batch — one commit via Append, or a whole group of parked commits
// via AppendGroup — the log rotates to a fresh file when the current one
// outgrows its budget (and at every checkpoint truncation), and recovery
// replays the files in sequence order. A torn record is tolerated only at the very end of the
// newest file — exactly where a crash mid-append leaves one — and is
// truncated away before new appends; a tear anywhere earlier is corruption
// and fails the open.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"pdtstore/internal/pdt"
)

// DefaultMaxFileBytes is the size at which Append rotates to a new log file.
const DefaultMaxFileBytes = 64 << 20

// sealedFile is a closed log segment kept until checkpoint truncation frees
// it. maxLSN is the LSN of its last record (0 when it holds none).
type sealedFile struct {
	path    string
	records int
	maxLSN  uint64
}

// FileLog is a durable Log over a directory of rotated segment files. All
// methods are safe for concurrent use.
type FileLog struct {
	mu       sync.Mutex
	dir      string
	f        *os.File
	w        *Writer
	seq      uint64 // sequence number of the current file
	curPath  string
	curRecs  int
	curMax   uint64 // LSN of the last record in the current file
	sealed   []sealedFile
	maxBytes int64
	syncs    uint64 // durability barriers performed (fsyncs that succeeded)
	failSync error  // armed one-shot fsync failure (FailNextSync, tests only)
}

func logFileName(seq uint64) string { return fmt.Sprintf("%016x.wal", seq) }

func parseLogFileName(name string) (uint64, bool) {
	base, ok := strings.CutSuffix(name, ".wal")
	if !ok || len(base) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(base, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// OpenFileLog opens (creating if needed) the log directory, replays every
// segment in sequence order and returns the committed records plus a log
// positioned to append after them. A torn tail in the newest file is
// truncated to its valid prefix; a torn or undecodable record anywhere else
// is an error.
func OpenFileLog(dir string) (*FileLog, []Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var seqs []uint64
	for _, e := range names {
		if seq, ok := parseLogFileName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })

	l := &FileLog{dir: dir, maxBytes: DefaultMaxFileBytes}
	var records []Record
	var lastLSN uint64
	for i, seq := range seqs {
		path := filepath.Join(dir, logFileName(seq))
		recs, consumed, err := replayFile(path)
		if errors.Is(err, ErrTornTail) {
			if i != len(seqs)-1 {
				return nil, nil, fmt.Errorf("wal: %s: torn record in a non-final log file: %w", path, err)
			}
			// A crash mid-append: keep the valid prefix, drop the tear.
			if terr := os.Truncate(path, consumed); terr != nil {
				return nil, nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, terr)
			}
		} else if err != nil {
			return nil, nil, fmt.Errorf("wal: %s: %w", path, err)
		}
		records = append(records, recs...)
		fileMax := uint64(0)
		if len(recs) > 0 {
			fileMax = recs[len(recs)-1].LSN
			lastLSN = fileMax
		}
		if i != len(seqs)-1 {
			l.sealed = append(l.sealed, sealedFile{path: path, records: len(recs), maxLSN: fileMax})
		} else {
			l.seq, l.curPath, l.curRecs, l.curMax = seq, path, len(recs), fileMax
		}
	}
	if len(seqs) == 0 {
		l.seq = 1
		l.curPath = filepath.Join(dir, logFileName(1))
	}
	f, err := os.OpenFile(l.curPath, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	l.f = f
	l.w = NewSyncedWriter(f, l.syncCurrent)
	l.w.SetLSN(lastLSN)
	syncDirBestEffort(dir)
	return l, records, nil
}

// syncCurrent is the durability barrier of the current file: one fsync per
// flushed append (single record or whole group). It runs under l.mu, from
// inside the writer's append. The armed test failure is consumed first so
// fault-injection tests can simulate a dying disk at exactly this barrier.
func (l *FileLog) syncCurrent() error {
	if err := l.failSync; err != nil {
		l.failSync = nil
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.syncs++
	return nil
}

func replayFile(path string) ([]Record, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	return replayConsumed(f, fi.Size())
}

// Append durably writes one commit record (flush + fsync) and returns its
// LSN, rotating to a new file afterwards when the current one is over budget.
func (l *FileLog) Append(tableName string, entries []pdt.RebuildEntry) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(1, func() (uint64, error) { return l.w.Append(tableName, entries) })
}

// AppendGroup durably writes a batch of commit records behind one fsync,
// returning the LSN of the first (record i carries LSN first+i). The batch
// is all-or-nothing: on error the log is poisoned and none of the group's
// records may surface at replay.
func (l *FileLog) AppendGroup(recs []GroupRecord) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(len(recs), func() (uint64, error) { return l.w.AppendGroup(recs) })
}

// AppendGroupAt durably writes a batch with caller-assigned LSNs (record i
// carries first+i; first must exceed the stream's last LSN but may leave a
// gap — the shared commit clock's other shards own the skipped LSNs).
func (l *FileLog) AppendGroupAt(first uint64, recs []GroupRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err := l.appendLocked(len(recs), func() (uint64, error) {
		return first, l.w.AppendGroupAt(first, recs)
	})
	return err
}

// appendLocked runs one append (single record or group of n) with the shared
// failure retraction and rotation policy around it.
func (l *FileLog) appendLocked(n int, do func() (uint64, error)) (uint64, error) {
	var preSize int64 = -1
	if fi, serr := l.f.Stat(); serr == nil {
		preSize = fi.Size()
	}
	first, err := do()
	if err != nil {
		// The writer is poisoned, but a failed *fsync* may have left the
		// records flushed to the page cache, where writeback could later
		// make the aborted commits durable behind our back. Best-effort
		// retract the bytes; if even that fails, the log stays poisoned and
		// replay's torn-tail handling covers whatever lands on disk.
		if preSize >= 0 {
			if terr := l.f.Truncate(preSize); terr == nil {
				l.f.Sync()
			}
		}
		return 0, err
	}
	l.curRecs += n
	l.curMax = first + uint64(n-1)
	if fi, err := l.f.Stat(); err == nil && fi.Size() >= l.maxBytes {
		// Rotation failure is not a commit failure — the records are durable;
		// the next append keeps the current file and retries rotation.
		_ = l.rotateLocked()
	}
	return first, nil
}

// LSN returns the LSN of the last record appended.
func (l *FileLog) LSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.LSN()
}

// SetLSN moves the clock so the next Append returns lsn+1 (only ever raised,
// by recovery, to resume a pre-crash sequence recorded in the manifest).
func (l *FileLog) SetLSN(lsn uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.SetLSN(lsn)
}

// Err returns the sticky append failure that poisoned the log, if any.
func (l *FileLog) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Err()
}

// Syncs returns how many durability barriers (successful fsyncs) the log has
// performed. The group-commit benchmark reads it to show batching: far fewer
// fsyncs than committed records.
func (l *FileLog) Syncs() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncs
}

// FailNextSync arms a one-shot failure of the next append's durability
// barrier: the records reach the page cache but the fsync reports err,
// simulating a dying disk at the worst moment. Fault-injection tests use it
// to assert group-commit's fail-stop contract (every transaction in the
// batch fails, the log is poisoned, recovery surfaces none of the batch).
func (l *FileLog) FailNextSync(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.failSync = err
}

// rotateLocked seals the current file and starts a fresh one, carrying the
// LSN clock over. On failure the current file stays active.
func (l *FileLog) rotateLocked() error {
	next := l.seq + 1
	path := filepath.Join(l.dir, logFileName(next))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	l.sealed = append(l.sealed, sealedFile{path: l.curPath, records: l.curRecs, maxLSN: l.curMax})
	w := NewSyncedWriter(f, l.syncCurrent)
	w.SetLSN(l.w.LSN())
	l.f, l.w = f, w
	l.seq, l.curPath, l.curRecs, l.curMax = next, path, 0, 0
	syncDirBestEffort(l.dir)
	return nil
}

// TruncateBelow drops every log record with LSN <= lsn — the WAL-truncation
// step after a checkpoint whose manifest records lsn. The current file is
// rotated out first, then every sealed file whose records all fall at or
// below the bar is deleted. Files that straddle the bar are kept whole:
// recovery filters replay by the manifest LSN anyway, so over-retention is
// only space, never double-application.
func (l *FileLog) TruncateBelow(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Err(); err != nil {
		return err
	}
	if l.curRecs > 0 {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	kept := l.sealed[:0]
	for _, s := range l.sealed {
		if s.records == 0 || s.maxLSN <= lsn {
			if err := os.Remove(s.path); err != nil {
				kept = append(kept, s)
			}
			continue
		}
		kept = append(kept, s)
	}
	l.sealed = kept
	syncDirBestEffort(l.dir)
	return nil
}

// SizeBytes returns the total on-disk size of all live log files.
func (l *FileLog) SizeBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var total int64
	for _, s := range l.sealed {
		if fi, err := os.Stat(s.path); err == nil {
			total += fi.Size()
		}
	}
	if fi, err := os.Stat(l.curPath); err == nil {
		total += fi.Size()
	}
	return total
}

// Files returns the number of live log files (sealed plus current).
func (l *FileLog) Files() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.sealed) + 1
}

// Close closes the current log file. The log must not be appended to after.
func (l *FileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// syncDirBestEffort fsyncs a directory so created/removed entries are
// durable; filesystems that reject directory fsync are tolerated.
func syncDirBestEffort(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
