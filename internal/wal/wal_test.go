package wal

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"pdtstore/internal/pdt"
	"pdtstore/internal/types"
)

func sampleEntries() []pdt.RebuildEntry {
	return []pdt.RebuildEntry{
		{SID: 0, Kind: pdt.KindIns, Ins: types.Row{types.Int(1), types.Str("a"), types.Float(1.5), types.BoolVal(true), types.DateVal(100)}},
		{SID: 2, Kind: pdt.KindDel, Del: types.Row{types.Int(9)}},
		{SID: 5, Kind: 2, Mod: types.Float(2.25)},
		{SID: 5, Kind: 3, Mod: types.Str("mod")},
		{SID: 7, Kind: 1, Mod: types.Int(-42)},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	lsn1, err := w.Append("orders", sampleEntries())
	if err != nil {
		t.Fatal(err)
	}
	lsn2, err := w.Append("lineitem", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lsn1 != 1 || lsn2 != 2 {
		t.Fatalf("LSNs = %d, %d", lsn1, lsn2)
	}
	recs, err := Replay(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records", len(recs))
	}
	if recs[0].LSN != 1 || recs[0].Table != "orders" {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	if !reflect.DeepEqual(recs[0].Entries, sampleEntries()) {
		t.Fatalf("entries differ:\n%+v\n%+v", recs[0].Entries, sampleEntries())
	}
	if recs[1].Table != "lineitem" || len(recs[1].Entries) != 0 {
		t.Fatalf("record 1 = %+v", recs[1])
	}
}

func TestReplayEmpty(t *testing.T) {
	recs, err := Replay(bytes.NewReader(nil))
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty replay: %v, %d records", err, len(recs))
	}
}

func TestReplayStopsAtCorruptHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if _, err := w.Append("t", sampleEntries()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// flip a bit in the CRC
	data[5] ^= 0x01
	recs, err := Replay(bytes.NewReader(data))
	if !errors.Is(err, ErrTornTail) {
		t.Fatalf("corrupt tail: err = %v, want ErrTornTail", err)
	}
	if len(recs) != 0 {
		t.Fatal("corrupt record accepted")
	}
}

func TestReplayTruncatedHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if _, err := w.Append("t", nil); err != nil {
		t.Fatal(err)
	}
	recs, err := Replay(bytes.NewReader(buf.Bytes()[:5]))
	if !errors.Is(err, ErrTornTail) || len(recs) != 0 {
		t.Fatalf("truncated header: %v, %d records (want ErrTornTail, 0)", err, len(recs))
	}
}

// TestReplayTornTailEveryOffset is the byte-level regression for the
// ErrTornTail contract: whatever prefix of the final record survives a crash
// — any cut from the first header byte to one short of the full record —
// Replay must return exactly the earlier records plus ErrTornTail, never an
// error on the prefix and never a phantom record.
func TestReplayTornTailEveryOffset(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if _, err := w.Append("t", sampleEntries()); err != nil {
		t.Fatal(err)
	}
	prefixLen := buf.Len()
	if _, err := w.Append("t", sampleEntries()[:2]); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// cut == prefixLen is a clean boundary, not a tear; start one byte in.
	for cut := prefixLen + 1; cut < len(data); cut++ {
		recs, err := Replay(bytes.NewReader(data[:cut]))
		if !errors.Is(err, ErrTornTail) {
			t.Fatalf("cut at %d/%d: err = %v, want ErrTornTail", cut, len(data), err)
		}
		if len(recs) != 1 || recs[0].LSN != 1 {
			t.Fatalf("cut at %d/%d: %d records, want the intact first record", cut, len(data), len(recs))
		}
	}
	// And the intact log replays cleanly, for contrast.
	recs, err := Replay(bytes.NewReader(data))
	if err != nil || len(recs) != 2 {
		t.Fatalf("intact log: %v, %d records", err, len(recs))
	}
}

func TestRebuildFromDump(t *testing.T) {
	schema := types.MustSchema([]types.Column{
		{Name: "k", Kind: types.Int64},
		{Name: "a", Kind: types.Int64},
	}, []int{0})
	p := pdt.New(schema, 4)
	if err := p.Insert(0, types.Row{types.Int(5), types.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := p.Modify(0, 1, types.Int(9)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if _, err := w.Append("t", p.Dump()); err != nil {
		t.Fatal(err)
	}
	recs, err := Replay(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := pdt.Rebuild(schema, 4, recs[0].Entries)
	if err != nil {
		t.Fatal(err)
	}
	a, b := p.Entries(), p2.Entries()
	if len(a) != len(b) {
		t.Fatalf("entry counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// flakyWriter fails every write while tripped.
type flakyWriter struct {
	buf     bytes.Buffer
	tripped bool
}

func (f *flakyWriter) Write(p []byte) (int, error) {
	if f.tripped {
		return 0, errors.New("disk full")
	}
	return f.buf.Write(p)
}

// TestAppendFailureIsFailStop: a failed append must not consume an LSN, must
// not leave the record lingering in the buffer (where a later flush would
// make an aborted commit durable), and must poison the writer.
func TestAppendFailureIsFailStop(t *testing.T) {
	rec := []pdt.RebuildEntry{{SID: 1, Kind: pdt.KindDel, Del: types.Row{types.Int(1)}}}
	f := &flakyWriter{}
	w := NewWriter(f)
	if _, err := w.Append("t", rec); err != nil {
		t.Fatal(err)
	}
	f.tripped = true
	if _, err := w.Append("t", rec); err == nil {
		t.Fatal("append over failing device succeeded")
	}
	if w.LSN() != 1 {
		t.Fatalf("failed append consumed LSN: %d", w.LSN())
	}
	// The writer is poisoned: even with the device healthy again, nothing of
	// the failed record may surface, and appends keep failing.
	f.tripped = false
	if _, err := w.Append("t", rec); err == nil {
		t.Fatal("poisoned writer accepted another append")
	}
	recs, err := Replay(bytes.NewReader(f.buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].LSN != 1 {
		t.Fatalf("log holds %d records (want only the pre-failure one): %+v", len(recs), recs)
	}
}

// TestAppendGroupRoundTrip: a group append is byte-identical to the same
// records appended one by one — consecutive LSNs, per-record frames, the
// same replay.
func TestAppendGroupRoundTrip(t *testing.T) {
	group := []GroupRecord{
		{Table: "orders", Entries: sampleEntries()},
		{Table: "lineitem", Entries: nil},
		{Table: "orders", Entries: sampleEntries()[:2]},
	}
	var grouped, single bytes.Buffer
	gw := NewWriter(&grouped)
	if _, err := gw.Append("seed", sampleEntries()); err != nil {
		t.Fatal(err)
	}
	first, err := gw.AppendGroup(group)
	if err != nil {
		t.Fatal(err)
	}
	if first != 2 || gw.LSN() != 4 {
		t.Fatalf("group LSNs: first=%d lsn=%d, want 2 and 4", first, gw.LSN())
	}
	sw := NewWriter(&single)
	if _, err := sw.Append("seed", sampleEntries()); err != nil {
		t.Fatal(err)
	}
	for _, rec := range group {
		if _, err := sw.Append(rec.Table, rec.Entries); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(grouped.Bytes(), single.Bytes()) {
		t.Fatal("group append produced different bytes than per-record appends")
	}
	recs, err := Replay(bytes.NewReader(grouped.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs))
	}
	for i, rec := range recs {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, rec.LSN)
		}
	}
	if recs[2].Table != "lineitem" || len(recs[2].Entries) != 0 {
		t.Fatalf("group record 1 = %+v", recs[2])
	}
}

// TestAppendGroupFailureIsFailStop: a failed group consumes no LSNs, poisons
// the writer collectively, and none of the group's records may surface.
func TestAppendGroupFailureIsFailStop(t *testing.T) {
	rec := []pdt.RebuildEntry{{SID: 1, Kind: pdt.KindDel, Del: types.Row{types.Int(1)}}}
	f := &flakyWriter{}
	w := NewWriter(f)
	if _, err := w.Append("t", rec); err != nil {
		t.Fatal(err)
	}
	f.tripped = true
	group := []GroupRecord{{Table: "t", Entries: rec}, {Table: "t", Entries: rec}, {Table: "t", Entries: rec}}
	if _, err := w.AppendGroup(group); err == nil {
		t.Fatal("group append over failing device succeeded")
	}
	if w.LSN() != 1 {
		t.Fatalf("failed group consumed LSNs: %d", w.LSN())
	}
	f.tripped = false
	if _, err := w.AppendGroup(group); err == nil {
		t.Fatal("poisoned writer accepted another group")
	}
	recs, err := Replay(bytes.NewReader(f.buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].LSN != 1 {
		t.Fatalf("log holds %d records (want only the pre-failure one): %+v", len(recs), recs)
	}
}

// TestAppendGroupEmpty: an empty group is a caller bug, reported without
// touching the clock or the stream.
func TestAppendGroupEmpty(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if _, err := w.AppendGroup(nil); err == nil {
		t.Fatal("empty group accepted")
	}
	if w.LSN() != 0 || buf.Len() != 0 {
		t.Fatalf("empty group moved state: lsn=%d bytes=%d", w.LSN(), buf.Len())
	}
	if _, err := w.Append("t", nil); err != nil {
		t.Fatalf("writer poisoned by empty group: %v", err)
	}
}
