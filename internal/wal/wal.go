// Package wal implements the write-ahead log the paper assumes alongside
// differential update processing (§2, footnote: "at each commit column-stores
// need to write information in a Write-Ahead-Log, but that causes only
// sequential I/O").
//
// Each committed transaction appends one record holding its serialized
// Trans-PDT entry dump. Recovery replays the records in LSN order,
// propagating each rebuilt PDT into a fresh Write-PDT over the checkpointed
// stable image — exactly the sequence of Propagate calls the original
// commits performed.
//
// Writer frames and encodes records over any io.Writer (tests, benchmarks);
// FileLog is the durable form: a directory of rotated log files with an
// fsync per flushed batch, torn-tail repair at open, and LSN-bounded
// truncation after a checkpoint. Both satisfy Log, which the transaction
// manager appends to — one record at a time (Append), or a whole group of
// parked commits behind a single durability barrier (AppendGroup, the
// group-commit fast path: n records, one write, one fsync, consecutive
// LSNs, all-or-nothing).
//
// A sharded table runs one log per shard, all allocating LSNs from one
// global commit clock, so each stream carries a gapped subsequence of a
// single total order (AppendGroupAt appends a batch at caller-chosen LSNs).
// A cross-shard commit appends one record per participant stream, all at the
// same LSN and each naming the full participant set (Record.Parts);
// CompleteGroups cross-checks the replayed streams at recovery and drops
// any group that did not reach every participant, making a commit torn
// between two streams' fsyncs all-or-nothing.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"pdtstore/internal/pdt"
	"pdtstore/internal/types"
)

// ErrTornTail reports that a log stream ends in a partial or corrupt record —
// the normal aftermath of a crash mid-append. Replay returns it alongside the
// valid prefix: recovery applies the prefix and truncates the tear, while a
// tear anywhere but the end of the newest log file is treated as real
// corruption by the file log.
var ErrTornTail = errors.New("wal: torn tail")

// maxRecordSize bounds a record body; a length prefix beyond it is garbage
// from a torn header, not a real record.
const maxRecordSize = 1 << 30

// Record is one committed transaction. Shard names the key-range shard whose
// Write-PDT the entries target (0 for an unsharded table). A cross-shard
// transaction appends one record per participant shard, all stamped with the
// same LSN (the global commit clock ticks once per transaction, not per
// shard); Parts lists every participant so recovery can verify the group made
// it to all of their streams before applying any of it.
type Record struct {
	LSN     uint64
	Table   string
	Shard   uint32
	Parts   []uint32 // participant shards of a cross-shard commit (nil otherwise)
	Entries []pdt.RebuildEntry
}

// GroupRecord is one commit of a batched append: the table it targets, the
// shard its entries are positioned in, and the serialized Trans-PDT entries
// of the transaction. Parts is set only on cross-shard commit records.
type GroupRecord struct {
	Table   string
	Shard   uint32
	Parts   []uint32
	Entries []pdt.RebuildEntry
}

// Log is the commit log the transaction manager appends to: an in-memory
// *Writer, or a durable *FileLog that fsyncs every batch.
type Log interface {
	// Append durably writes one commit record, returning its LSN.
	Append(tableName string, entries []pdt.RebuildEntry) (uint64, error)
	// AppendGroup durably writes a batch of commit records behind one
	// flush (and one fsync, on a synced log), returning the LSN of the
	// first: record i carries LSN first+i. The batch is all-or-nothing —
	// on error none of its records is appended, the clock does not move,
	// and the log is poisoned exactly as a failed Append poisons it.
	AppendGroup(recs []GroupRecord) (uint64, error)
	// AppendGroupAt is AppendGroup with caller-assigned LSNs: record i
	// carries LSN first+i. A sharded table's streams share one global
	// commit clock, so a shard's leader allocates a contiguous LSN run
	// from the clock and stamps its stream explicitly; gaps relative to
	// the stream's previous record are legal (other shards own those
	// LSNs), but first must exceed the stream's last LSN.
	AppendGroupAt(first uint64, recs []GroupRecord) error
	// LSN returns the LSN of the last record appended.
	LSN() uint64
	// SetLSN moves the clock so the next Append returns lsn+1.
	SetLSN(lsn uint64)
}

// Writer appends records to a log stream. The encode buffer is reused
// across Append calls, so steady-state commits serialize without
// per-record allocation.
//
// A failed Append or AppendGroup poisons the writer (fail-stop): the
// half-written frames are dropped from the buffer, the clock stays put, and
// every later append returns the original error. Without this, a record
// whose flush failed — for a commit the caller therefore aborted — would
// linger in the buffer and ride out to disk with the next successful append,
// resurrecting an aborted transaction at replay. For a group the poisoning
// is collective: none of the batch's records consumed an LSN, so every
// transaction parked on the batch must abort. A poisoned writer must be
// replaced (over a
// truncated or repaired log) before logging can resume; the torn tail it may
// leave behind is exactly what Replay already stops cleanly at.
type Writer struct {
	out  io.Writer
	w    *bufio.Writer
	lsn  uint64
	buf  []byte
	one  [1]GroupRecord // scratch so Append reuses the group path allocation-free
	sync func() error   // called after each flushed append (fsync-on-commit)
	err  error          // sticky first append failure
}

// NewWriter wraps an io.Writer (a file, or a buffer in tests).
func NewWriter(w io.Writer) *Writer {
	return &Writer{out: w, w: bufio.NewWriter(w)}
}

// NewSyncedWriter is NewWriter plus a durability barrier: sync (typically
// (*os.File).Sync) runs after every flushed record, so Append returning nil
// means the commit is on stable storage. A failed sync poisons the writer
// exactly like a failed write.
func NewSyncedWriter(w io.Writer, sync func() error) *Writer {
	return &Writer{out: w, w: bufio.NewWriter(w), sync: sync}
}

// Err returns the sticky failure that poisoned the writer, if any.
func (w *Writer) Err() error { return w.err }

// LSN returns the LSN of the last record appended (0 before any append).
func (w *Writer) LSN() uint64 { return w.lsn }

// SetLSN moves the writer's clock so the next Append returns lsn+1. Recovery
// uses it to continue the pre-crash LSN sequence on a fresh writer: replayed
// state and newly appended records then share one monotonic clock, and the
// transaction manager's commit clock never diverges from the log's.
func (w *Writer) SetLSN(lsn uint64) { w.lsn = lsn }

// Append writes one commit record and returns its LSN. The record is
// durable (flushed) when Append returns nil; on error nothing of it stays
// buffered and the LSN is not consumed. The entries are serialized before
// Append returns, so they may alias live PDT storage (pdt.Dump's contract).
func (w *Writer) Append(tableName string, entries []pdt.RebuildEntry) (uint64, error) {
	w.one[0] = GroupRecord{Table: tableName, Entries: entries}
	lsn, err := w.AppendGroup(w.one[:])
	w.one[0] = GroupRecord{}
	return lsn, err
}

// AppendGroup writes a batch of commit records framed back to back, with one
// buffered write, one flush and — on a synced writer — one fsync for the
// whole batch: the group-commit durability barrier. It returns the LSN of
// the first record; record i carries LSN first+i, so the caller can hand
// every parked transaction in the batch its own LSN. The batch is
// all-or-nothing: when AppendGroup returns nil every record is durable in
// order, and on error the writer is poisoned, the clock stays put, and no
// record of the group may surface at replay (a torn prefix of the batch is
// exactly the tail Replay truncates).
func (w *Writer) AppendGroup(recs []GroupRecord) (uint64, error) {
	first := w.lsn + 1
	if err := w.AppendGroupAt(first, recs); err != nil {
		return 0, err
	}
	return first, nil
}

// AppendGroupAt writes a batch like AppendGroup but with caller-assigned
// LSNs: record i carries LSN first+i. first must exceed the stream's last
// LSN; it need not be contiguous with it — per-shard streams of one table
// share a global commit clock, so each stream sees a gapped subsequence of
// it. On success the stream's clock advances to first+len(recs)-1.
func (w *Writer) AppendGroupAt(first uint64, recs []GroupRecord) error {
	if w.err != nil {
		return w.err
	}
	if len(recs) == 0 {
		return errors.New("wal: empty append group")
	}
	if first <= w.lsn {
		// The shared commit clock regressed relative to this stream: the
		// global LSN-order invariant is broken, so the stream is poisoned —
		// appending on would interleave duplicate LSNs into the replay merge.
		w.err = fmt.Errorf("wal: non-monotonic append: first LSN %d, stream already at %d", first, w.lsn)
		return w.err
	}
	// One frame per record, all in the reused encode buffer: 8-byte header
	// (length + CRC of the body) followed by the body, exactly the layout
	// Replay expects, so a group is indistinguishable from the same records
	// appended one by one.
	w.buf = w.buf[:0]
	for i, rec := range recs {
		start := len(w.buf)
		w.buf = append(w.buf, 0, 0, 0, 0, 0, 0, 0, 0)
		w.buf = encodeRecord(w.buf, Record{LSN: first + uint64(i), Table: rec.Table,
			Shard: rec.Shard, Parts: rec.Parts, Entries: rec.Entries})
		body := w.buf[start+8:]
		binary.LittleEndian.PutUint32(w.buf[start:start+4], uint32(len(body)))
		binary.LittleEndian.PutUint32(w.buf[start+4:start+8], crc32.ChecksumIEEE(body))
	}
	err := func() error {
		if _, err := w.w.Write(w.buf); err != nil {
			return err
		}
		if err := w.w.Flush(); err != nil {
			return err
		}
		if w.sync != nil {
			return w.sync()
		}
		return nil
	}()
	if err != nil {
		w.err = fmt.Errorf("wal: append failed: %w", err)
		w.w.Reset(w.out) // drop whatever of the group is still unflushed
		return w.err
	}
	w.lsn = first + uint64(len(recs)) - 1
	return nil
}

// Replay reads records until EOF. A clean end returns a nil error; a partial
// or corrupt final record returns the valid prefix together with ErrTornTail,
// so the caller can distinguish "log ends here" from "log was cut mid-write"
// and truncate the tear before appending again. Only a record that fails its
// CRC or length framing is a tear; a CRC-valid record that does not decode is
// real corruption and fails replay.
func Replay(r io.Reader) ([]Record, error) {
	out, _, err := replayConsumed(r, -1)
	return out, err
}

// replayConsumed is Replay plus the byte length of the valid prefix — what a
// file log truncates a torn file down to. total is the stream's byte length
// when known (a file), or negative: a frame claiming more bytes than the
// stream holds is then classified as a tear up front, instead of allocating
// a buffer for a garbage length read out of a torn header.
func replayConsumed(r io.Reader, total int64) ([]Record, int64, error) {
	br := bufio.NewReader(r)
	var out []Record
	var consumed int64
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return out, consumed, nil
			}
			if err == io.ErrUnexpectedEOF {
				return out, consumed, ErrTornTail
			}
			return out, consumed, err
		}
		size := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if total >= 0 && int64(size) > total-consumed-8 {
			return out, consumed, fmt.Errorf("%w: record frame overruns the stream", ErrTornTail)
		}
		if size == 0 {
			// A real record body is never empty (it carries at least the LSN,
			// table length and entry count), and CRC32 of nothing is 0 — so a
			// zero header would pass framing. Zero-filled tails are a classic
			// crash artifact of delayed allocation; classify them as a tear,
			// not corruption, so recovery truncates instead of failing.
			return out, consumed, fmt.Errorf("%w: zero-length record frame", ErrTornTail)
		}
		if size > maxRecordSize {
			return out, consumed, fmt.Errorf("%w: implausible record size %d", ErrTornTail, size)
		}
		body := make([]byte, size)
		if _, err := io.ReadFull(br, body); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return out, consumed, ErrTornTail
			}
			return out, consumed, err
		}
		if crc32.ChecksumIEEE(body) != sum {
			return out, consumed, fmt.Errorf("%w: record checksum mismatch", ErrTornTail)
		}
		rec, err := decodeRecord(body)
		if err != nil {
			return out, consumed, err
		}
		out = append(out, rec)
		consumed += 8 + int64(size)
	}
}

// CompleteGroups filters the replayed tails of a sharded table's per-shard
// WAL streams down to cross-shard commits that reached every participant.
// streams[s] holds shard s's records (LSN-ascending, as Replay returns them);
// baseLSNs[s] is the LSN already materialized into shard s's checkpointed
// image (its manifest LSN) — records at or below it were truncated or
// filtered away, so their absence from the stream proves nothing.
//
// A cross-shard commit appends one record per participant, all at the same
// LSN, and installs only after every append is durable. A crash between two
// shards' appends therefore leaves an incomplete group: records that were
// never installed and that no later commit could have observed. Those
// orphans are dropped — from every stream — so reopen is all-or-nothing per
// commit clock entry. Single-shard records (empty Parts) pass through.
func CompleteGroups(streams [][]Record, baseLSNs []uint64) [][]Record {
	present := make([]map[uint64]bool, len(streams))
	for s, recs := range streams {
		present[s] = make(map[uint64]bool, len(recs))
		for _, rec := range recs {
			present[s][rec.LSN] = true
		}
	}
	complete := func(rec Record) bool {
		for _, p := range rec.Parts {
			if int(p) >= len(streams) {
				return false
			}
			if !present[p][rec.LSN] && rec.LSN > baseLSNs[p] {
				return false
			}
		}
		return true
	}
	out := make([][]Record, len(streams))
	for s, recs := range streams {
		kept := recs[:0]
		for _, rec := range recs {
			if len(rec.Parts) <= 1 || complete(rec) {
				kept = append(kept, rec)
			}
		}
		out[s] = kept
	}
	return out
}

// --- binary encoding ---------------------------------------------------------

// encodeRecord appends rec's serialized body to buf and returns it.
func encodeRecord(buf []byte, rec Record) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, rec.LSN)
	buf = appendString(buf, rec.Table)
	buf = binary.LittleEndian.AppendUint32(buf, rec.Shard)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Parts)))
	for _, p := range rec.Parts {
		buf = binary.LittleEndian.AppendUint32(buf, p)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Entries)))
	for _, e := range rec.Entries {
		buf = binary.LittleEndian.AppendUint64(buf, e.SID)
		buf = binary.LittleEndian.AppendUint16(buf, e.Kind)
		switch e.Kind {
		case pdt.KindIns:
			buf = appendRow(buf, e.Ins)
		case pdt.KindDel:
			buf = appendRow(buf, e.Del)
		default:
			buf = appendValue(buf, e.Mod)
		}
	}
	return buf
}

func decodeRecord(buf []byte) (Record, error) {
	var rec Record
	r := &reader{buf: buf}
	rec.LSN = r.u64()
	rec.Table = r.str()
	rec.Shard = r.u32()
	if np := int(r.u32()); np > 0 {
		if np > len(r.buf) { // each participant takes 4 bytes; bound before allocating
			return rec, fmt.Errorf("wal: corrupt record: %w", io.ErrUnexpectedEOF)
		}
		rec.Parts = make([]uint32, np)
		for i := range rec.Parts {
			rec.Parts[i] = r.u32()
		}
	}
	n := int(r.u32())
	rec.Entries = make([]pdt.RebuildEntry, 0, n)
	for i := 0; i < n; i++ {
		e := pdt.RebuildEntry{SID: r.u64(), Kind: r.u16()}
		switch e.Kind {
		case pdt.KindIns:
			e.Ins = r.row()
		case pdt.KindDel:
			e.Del = r.row()
		default:
			e.Mod = r.value()
		}
		rec.Entries = append(rec.Entries, e)
	}
	if r.err != nil {
		return rec, fmt.Errorf("wal: corrupt record: %w", r.err)
	}
	return rec, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

func appendValue(buf []byte, v types.Value) []byte {
	buf = append(buf, byte(v.K))
	switch v.K {
	case types.Float64:
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
	case types.String:
		return appendString(buf, v.S)
	default:
		return binary.LittleEndian.AppendUint64(buf, uint64(v.I))
	}
}

func appendRow(buf []byte, r types.Row) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r)))
	for _, v := range r {
		buf = appendValue(buf, v)
	}
	return buf
}

type reader struct {
	buf []byte
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil || len(r.buf) < n {
		r.err = io.ErrUnexpectedEOF
		return make([]byte, n)
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out
}

func (r *reader) u64() uint64 { return binary.LittleEndian.Uint64(r.take(8)) }
func (r *reader) u32() uint32 { return binary.LittleEndian.Uint32(r.take(4)) }
func (r *reader) u16() uint16 { return binary.LittleEndian.Uint16(r.take(2)) }

func (r *reader) str() string {
	n := int(r.u32())
	if r.err != nil || len(r.buf) < n {
		r.err = io.ErrUnexpectedEOF
		return ""
	}
	return string(r.take(n))
}

func (r *reader) value() types.Value {
	k := types.Kind(r.take(1)[0])
	switch k {
	case types.Float64:
		return types.Value{K: k, F: math.Float64frombits(r.u64())}
	case types.String:
		return types.Value{K: k, S: r.str()}
	default:
		return types.Value{K: k, I: int64(r.u64())}
	}
}

func (r *reader) row() types.Row {
	n := int(r.u32())
	if r.err != nil || n > len(r.buf) {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	row := make(types.Row, n)
	for i := range row {
		row[i] = r.value()
	}
	return row
}
