package exec

import (
	"errors"
	"testing"

	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

type fakeSource struct {
	vals []int64
	pos  int
}

func (f *fakeSource) Next(out *vector.Batch, max int) (int, error) {
	n := 0
	for f.pos < len(f.vals) && n < max {
		out.Vecs[0].I = append(out.Vecs[0].I, f.vals[f.pos])
		out.Rids = append(out.Rids, uint64(f.pos))
		f.pos++
		n++
	}
	return n, nil
}

func TestStreamAndCollect(t *testing.T) {
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i)
	}
	kinds := []types.Kind{types.Int64}
	sum := int64(0)
	err := Stream(&fakeSource{vals: vals}, kinds, 7, func(b *vector.Batch) error {
		for _, v := range b.Vecs[0].I {
			sum += v
		}
		return nil
	})
	if err != nil || sum != 4950 {
		t.Fatalf("stream sum = %d (%v)", sum, err)
	}
	out, err := Collect(&fakeSource{vals: vals}, kinds, 7)
	if err != nil || out.Len() != 100 {
		t.Fatalf("collect: %d rows (%v)", out.Len(), err)
	}
	wantErr := errors.New("stop")
	err = Stream(&fakeSource{vals: vals}, kinds, 7, func(b *vector.Batch) error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatal("stream did not propagate error")
	}
}

type hintedSource struct {
	fakeSource
	hint int
}

func (h *hintedSource) SizeHint() int { return h.hint }

func TestCollectPreSizesFromHint(t *testing.T) {
	vals := make([]int64, 50)
	src := &hintedSource{fakeSource: fakeSource{vals: vals}, hint: len(vals)}
	out, err := Collect(src, []types.Kind{types.Int64}, 8)
	if err != nil || out.Len() != 50 {
		t.Fatalf("collect: %d rows (%v)", out.Len(), err)
	}
	if cap(out.Vecs[0].I) < 50 {
		t.Fatalf("hint ignored: cap = %d", cap(out.Vecs[0].I))
	}
}

func TestAgg(t *testing.T) {
	var a Agg
	for _, x := range []float64{3, 1, 2} {
		a.Add(x)
	}
	if a.Count != 3 || a.Sum != 6 || a.Min != 1 || a.Max != 3 || a.Avg() != 2 {
		t.Fatalf("agg = %+v", a)
	}
	var empty Agg
	if empty.Avg() != 0 {
		t.Fatal("empty avg must be 0")
	}
}

func TestGroupAgg(t *testing.T) {
	g := NewGroupAgg(2)
	data := []struct {
		k string
		v float64
	}{{"b", 1}, {"a", 2}, {"b", 3}}
	for _, d := range data {
		d := d
		cells := g.Touch(d.k, func() types.Row { return types.Row{types.Str(d.k)} })
		cells[0].Add(d.v)
		cells[1].Add(-d.v)
	}
	if g.Len() != 2 {
		t.Fatalf("groups = %d", g.Len())
	}
	rs := g.Results()
	if rs[0].Key[0].S != "a" || rs[1].Key[0].S != "b" {
		t.Fatal("results not key-sorted")
	}
	if rs[1].Aggs[0].Sum != 4 || rs[1].Aggs[1].Sum != -4 {
		t.Fatalf("group b aggs = %+v", rs[1].Aggs)
	}
}

func TestGroupKey(t *testing.T) {
	a := GroupKey(types.Str("x"), types.Int(1))
	b := GroupKey(types.Str("x"), types.Int(2))
	if a == b {
		t.Fatal("distinct keys collide")
	}
	if GroupKey(types.Str("x"), types.Int(1)) != a {
		t.Fatal("group key not deterministic")
	}
}

func TestIntJoinMap(t *testing.T) {
	b := vector.NewBatch([]types.Kind{types.Int64, types.String}, 4)
	b.AppendRow(types.Row{types.Int(1), types.Str("a")})
	b.AppendRow(types.Row{types.Int(2), types.Str("b")})
	b.AppendRow(types.Row{types.Int(1), types.Str("c")})
	m := NewIntJoinMap(b, nil, 0, []int{1})
	if m.Len() != 2 {
		t.Fatalf("len = %d", m.Len())
	}
	if rows := m.Probe(1); len(rows) != 2 || rows[1][0].S != "c" {
		t.Fatalf("probe(1) = %v", rows)
	}
	if _, ok := m.ProbeOne(9); ok {
		t.Fatal("probe of missing key")
	}
	if r, ok := m.ProbeOne(2); !ok || r[0].S != "b" {
		t.Fatalf("probeOne(2) = %v", r)
	}
}

func TestSortBatch(t *testing.T) {
	b := vector.NewBatch([]types.Kind{types.Int64}, 4)
	for _, v := range []int64{3, 1, 2} {
		b.AppendRow(types.Row{types.Int(v)})
	}
	idx := SortBatch(b, nil, func(i, j uint32) bool { return b.Vecs[0].I[i] < b.Vecs[0].I[j] })
	if b.Vecs[0].I[idx[0]] != 1 || b.Vecs[0].I[idx[2]] != 3 {
		t.Fatalf("sort order = %v", idx)
	}
	sub := SortBatch(b, []uint32{2, 0}, func(i, j uint32) bool { return b.Vecs[0].I[i] < b.Vecs[0].I[j] })
	if len(sub) != 2 || b.Vecs[0].I[sub[0]] != 2 || b.Vecs[0].I[sub[1]] != 3 {
		t.Fatalf("selected sort order = %v", sub)
	}
}

func TestTouchKeyMatchesTouch(t *testing.T) {
	g := NewGroupAgg(1)
	var buf []byte
	for i, k := range []string{"a", "b", "a"} {
		buf = append(buf[:0], k...)
		k := k
		cells := g.TouchKey(buf, func() types.Row { return types.Row{types.Str(k)} })
		cells[0].Add(float64(i))
	}
	if g.Len() != 2 {
		t.Fatalf("groups = %d", g.Len())
	}
	if cells := g.Touch("a", nil); cells[0].Count != 2 || cells[0].Sum != 2 {
		t.Fatalf("group a = %+v", cells[0])
	}
}

func TestFormatRow(t *testing.T) {
	got := FormatRow("x", 1.23456, 7)
	if got != "x|1.23|7" {
		t.Fatalf("FormatRow = %q", got)
	}
}
