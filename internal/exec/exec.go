// Package exec provides the small vectorized query-processing toolkit the
// TPC-H workload is written against: batch streaming over any positional
// source, filtering, hash aggregation, hash joins and ordering. It is
// deliberately minimal — the paper's subject is the scan/merge path, and
// these operators supply the "processing" side of each query in
// block-at-a-time style.
package exec

import (
	"fmt"
	"sort"
	"strings"

	"pdtstore/internal/pdt"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

// Stream pulls batches of up to batchSize rows from src and hands each to fn
// (the batch is reused; fn must not retain it).
func Stream(src pdt.BatchSource, kinds []types.Kind, batchSize int, fn func(b *vector.Batch) error) error {
	if batchSize <= 0 {
		batchSize = 1024
	}
	b := vector.NewBatch(kinds, batchSize)
	for {
		b.Reset()
		n, err := src.Next(b, batchSize)
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
		if err := fn(b); err != nil {
			return err
		}
	}
}

// Collect drains src into one batch, stepping by batchSize rows per pull
// (<= 0 selects 1024) and pre-sizing the output from the source's row-count
// hint when it offers one.
func Collect(src pdt.BatchSource, kinds []types.Kind, batchSize int) (*vector.Batch, error) {
	if batchSize <= 0 {
		batchSize = 1024
	}
	capHint := batchSize
	if h, ok := src.(pdt.SizeHinter); ok {
		if n := h.SizeHint(); n > 0 {
			capHint = n
		}
	}
	out := vector.NewBatch(kinds, capHint)
	for {
		n, err := src.Next(out, batchSize)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
	}
}

// GroupKey builds a composite group key from values.
func GroupKey(vals ...types.Value) string {
	var sb strings.Builder
	for i, v := range vals {
		if i > 0 {
			sb.WriteByte(0)
		}
		sb.WriteString(v.String())
	}
	return sb.String()
}

// Agg is one accumulator cell.
type Agg struct {
	Count int64
	Sum   float64
	Min   float64
	Max   float64
}

// Add folds x into the cell.
func (a *Agg) Add(x float64) {
	if a.Count == 0 || x < a.Min {
		a.Min = x
	}
	if a.Count == 0 || x > a.Max {
		a.Max = x
	}
	a.Count++
	a.Sum += x
}

// Avg returns the running mean.
func (a *Agg) Avg() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum / float64(a.Count)
}

// Merge folds another cell into a, as if every value o accumulated had been
// Added to a directly: the combine step of a partitioned aggregation. Fold
// partial cells in partition order for a scheduling-independent result (the
// float sums accumulate in a fixed order then).
func (a *Agg) Merge(o Agg) {
	if o.Count == 0 {
		return
	}
	if a.Count == 0 || o.Min < a.Min {
		a.Min = o.Min
	}
	if a.Count == 0 || o.Max > a.Max {
		a.Max = o.Max
	}
	a.Count += o.Count
	a.Sum += o.Sum
}

// GroupAgg is a hash aggregation keyed by composite string keys, holding a
// fixed number of accumulator cells per group.
type GroupAgg struct {
	nAggs  int
	groups map[string]*groupState
}

type groupState struct {
	repr types.Row
	aggs []Agg
}

// NewGroupAgg creates an aggregation with nAggs cells per group.
func NewGroupAgg(nAggs int) *GroupAgg {
	return &GroupAgg{nAggs: nAggs, groups: map[string]*groupState{}}
}

// Touch returns the accumulator cells for a group, creating it with the
// given representative key row on first sight.
func (g *GroupAgg) Touch(key string, repr func() types.Row) []Agg {
	st, ok := g.groups[key]
	if !ok {
		st = &groupState{repr: repr(), aggs: make([]Agg, g.nAggs)}
		g.groups[key] = st
	}
	return st.aggs
}

// TouchKey is Touch for a byte-slice key built in a reusable scratch buffer:
// the lookup allocates nothing (the compiler elides the string conversion),
// and the key is only copied when the group is first created — the zero-alloc
// per-row aggregation path the vectorized pipeline feeds.
func (g *GroupAgg) TouchKey(key []byte, repr func() types.Row) []Agg {
	st, ok := g.groups[string(key)]
	if !ok {
		st = &groupState{repr: repr(), aggs: make([]Agg, g.nAggs)}
		g.groups[string(key)] = st
	}
	return st.aggs
}

// Merge folds another aggregation's groups into g cell by cell — the combine
// step for per-partition GroupAggs built by a parallel scan. Groups absent
// from g adopt o's state (including its representative key row). Merging the
// partials in partition order makes the result independent of which worker
// processed which partition. o must not be used afterwards.
func (g *GroupAgg) Merge(o *GroupAgg) {
	for k, st := range o.groups {
		mine, ok := g.groups[k]
		if !ok {
			g.groups[k] = st
			continue
		}
		for i := range st.aggs {
			mine.aggs[i].Merge(st.aggs[i])
		}
	}
}

// Len returns the number of groups.
func (g *GroupAgg) Len() int { return len(g.groups) }

// Result is one output group.
type Result struct {
	Key  types.Row
	Aggs []Agg
}

// Results returns all groups, sorted by their representative key rows.
func (g *GroupAgg) Results() []Result {
	out := make([]Result, 0, len(g.groups))
	for _, st := range g.groups {
		out = append(out, Result{Key: st.repr, Aggs: st.aggs})
	}
	sort.Slice(out, func(i, j int) bool {
		return types.CompareRows(out[i].Key, out[j].Key) < 0
	})
	return out
}

// IntJoinMap is a hash join build side keyed by int64 (the common TPC-H
// case: all join keys are integer surrogates).
type IntJoinMap struct {
	rows map[int64][]types.Row
}

// NewIntJoinMap builds a join map from the selected rows of a batch (sel nil
// means all rows): key column keyCol, payload the given columns.
func NewIntJoinMap(b *vector.Batch, sel []uint32, keyCol int, payloadCols []int) *IntJoinMap {
	n := b.Len()
	if sel != nil {
		n = len(sel)
	}
	m := NewEmptyIntJoinMap(n)
	m.AddBatch(b, sel, keyCol, payloadCols)
	return m
}

// NewEmptyIntJoinMap returns an empty build side sized for capHint rows, for
// incremental building with AddBatch — the per-worker partial state of a
// parallel join build.
func NewEmptyIntJoinMap(capHint int) *IntJoinMap {
	if capHint < 0 {
		capHint = 0
	}
	return &IntJoinMap{rows: make(map[int64][]types.Row, capHint)}
}

// AddBatch inserts the selected rows of a batch (sel nil means all rows):
// key column keyCol, payload the given columns.
func (m *IntJoinMap) AddBatch(b *vector.Batch, sel []uint32, keyCol int, payloadCols []int) {
	build := func(i int) {
		k := b.Vecs[keyCol].I[i]
		payload := make(types.Row, len(payloadCols))
		for j, c := range payloadCols {
			payload[j] = b.Vecs[c].Get(i)
		}
		m.rows[k] = append(m.rows[k], payload)
	}
	if sel != nil {
		for _, i := range sel {
			build(int(i))
		}
	} else {
		for i := 0; i < b.Len(); i++ {
			build(i)
		}
	}
}

// Merge folds another build side into m, appending o's payload rows after
// m's for shared keys — so merging per-partition maps in partition order
// reproduces the row order of a serial build. o must not be used afterwards.
func (m *IntJoinMap) Merge(o *IntJoinMap) {
	for k, rs := range o.rows {
		if mine, ok := m.rows[k]; ok {
			m.rows[k] = append(mine, rs...)
		} else {
			m.rows[k] = rs
		}
	}
}

// Probe returns the payload rows for key.
func (m *IntJoinMap) Probe(key int64) []types.Row { return m.rows[key] }

// ProbeOne returns the single payload row for key (unique joins).
func (m *IntJoinMap) ProbeOne(key int64) (types.Row, bool) {
	rs := m.rows[key]
	if len(rs) == 0 {
		return nil, false
	}
	return rs[0], true
}

// Len returns the number of distinct keys.
func (m *IntJoinMap) Len() int { return len(m.rows) }

// SortBatch returns the selected row indexes of b (sel nil means all rows)
// ordered by less. The input selection is not modified.
func SortBatch(b *vector.Batch, sel []uint32, less func(i, j uint32) bool) []uint32 {
	var idx []uint32
	if sel != nil {
		idx = append([]uint32(nil), sel...)
	} else {
		idx = make([]uint32, b.Len())
		for i := range idx {
			idx[i] = uint32(i)
		}
	}
	sort.SliceStable(idx, func(x, y int) bool { return less(idx[x], idx[y]) })
	return idx
}

// FormatRow renders a result row with fixed float precision, for the
// deterministic query fingerprints the cross-mode tests compare.
func FormatRow(vals ...interface{}) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			parts[i] = fmt.Sprintf("%.2f", x)
		default:
			parts[i] = fmt.Sprint(x)
		}
	}
	return strings.Join(parts, "|")
}
