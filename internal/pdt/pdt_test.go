package pdt

import (
	"fmt"
	"testing"

	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

// --- shared test infrastructure ---------------------------------------------

// inventorySchema is the paper's running-example table (Figure 1).
func inventorySchema() *types.Schema {
	return types.MustSchema([]types.Column{
		{Name: "store", Kind: types.String},
		{Name: "prod", Kind: types.String},
		{Name: "new", Kind: types.Bool},
		{Name: "qty", Kind: types.Int64},
	}, []int{0, 1})
}

func inv(store, prod string, isNew bool, qty int64) types.Row {
	return types.Row{types.Str(store), types.Str(prod), types.BoolVal(isNew), types.Int(qty)}
}

// table0 is Figure 1's TABLE0.
func table0() []types.Row {
	return []types.Row{
		inv("London", "chair", false, 30),
		inv("London", "stool", false, 10),
		inv("London", "table", false, 20),
		inv("Paris", "rug", false, 1),
		inv("Paris", "stool", false, 5),
	}
}

// sliceSource is a BatchSource over in-memory rows, standing in for the
// stable-store scanner.
type sliceSource struct {
	rows []types.Row
	cols []int
	pos  int
	end  int
}

func newSliceSource(rows []types.Row, cols []int, from, to int) *sliceSource {
	if to > len(rows) {
		to = len(rows)
	}
	if from > to {
		from = to
	}
	return &sliceSource{rows: rows, cols: cols, pos: from, end: to}
}

func (s *sliceSource) Next(out *vector.Batch, max int) (int, error) {
	n := 0
	for s.pos < s.end && n < max {
		for i, c := range s.cols {
			out.Vecs[i].Append(s.rows[s.pos][c])
		}
		s.pos++
		n++
	}
	return n, nil
}

// refModel is the naive row-slice reference implementation of an updatable
// ordered table; the PDT must always agree with it.
type refModel struct {
	schema *types.Schema
	rows   []types.Row
}

func newRefModel(schema *types.Schema, stable []types.Row) *refModel {
	r := &refModel{schema: schema}
	for _, row := range stable {
		r.rows = append(r.rows, row.Clone())
	}
	return r
}

func (r *refModel) insertAt(rid int, row types.Row) {
	r.rows = append(r.rows, nil)
	copy(r.rows[rid+1:], r.rows[rid:])
	r.rows[rid] = row.Clone()
}

func (r *refModel) deleteAt(rid int) {
	r.rows = append(r.rows[:rid], r.rows[rid+1:]...)
}

func (r *refModel) modifyAt(rid, col int, v types.Value) {
	r.rows[rid] = r.rows[rid].Clone()
	r.rows[rid][col] = v
}

// insertRid returns the position a new key belongs at: the RID of the first
// visible row whose key exceeds it.
func (r *refModel) insertRid(row types.Row) int {
	for i, existing := range r.rows {
		if r.schema.CompareKeyRows(existing, row) > 0 {
			return i
		}
	}
	return len(r.rows)
}

// mergeAll runs a full MergeScan of the stable rows plus t and returns the
// resulting batch (all schema columns projected).
func mergeAll(t *testing.T, p *PDT, stable []types.Row) *vector.Batch {
	t.Helper()
	cols := make([]int, p.Schema().NumCols())
	kinds := make([]types.Kind, len(cols))
	for i := range cols {
		cols[i] = i
		kinds[i] = p.Schema().Cols[i].Kind
	}
	src := newSliceSource(stable, cols, 0, len(stable))
	ms := NewMergeScan(p, src, cols, 0, true)
	out, err := ScanAll(ms, kinds)
	if err != nil {
		t.Fatalf("merge scan: %v", err)
	}
	return out
}

// checkAgainstRef verifies that merging stable+p yields exactly ref's rows
// with consecutive RIDs.
func checkAgainstRef(t *testing.T, p *PDT, stable []types.Row, ref *refModel) {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("invariant violation: %v\n%s", err, p)
	}
	out := mergeAll(t, p, stable)
	if out.Len() != len(ref.rows) {
		t.Fatalf("merged %d rows, reference has %d\nPDT: %s", out.Len(), len(ref.rows), p)
	}
	for i, want := range ref.rows {
		got := out.Row(i)
		if types.CompareRows(got, want) != 0 {
			t.Fatalf("row %d: merged %v, reference %v\nPDT: %s", i, got, want, p)
		}
		if out.Rids[i] != uint64(i) {
			t.Fatalf("row %d has rid %d", i, out.Rids[i])
		}
	}
}

// applyInsert drives both the PDT and the reference for an insert of row.
func applyInsert(t *testing.T, p *PDT, ref *refModel, row types.Row) {
	t.Helper()
	rid := ref.insertRid(row)
	if err := p.Insert(uint64(rid), row); err != nil {
		t.Fatalf("Insert(%d, %v): %v", rid, row, err)
	}
	ref.insertAt(rid, row)
}

// applyDelete drives both sides for a delete of the visible row at rid.
func applyDelete(t *testing.T, p *PDT, ref *refModel, rid int) {
	t.Helper()
	sk := ref.schema.KeyOf(ref.rows[rid])
	if err := p.Delete(uint64(rid), sk); err != nil {
		t.Fatalf("Delete(%d): %v", rid, err)
	}
	ref.deleteAt(rid)
}

// applyModify drives both sides for a modify.
func applyModify(t *testing.T, p *PDT, ref *refModel, rid, col int, v types.Value) {
	t.Helper()
	if err := p.Modify(uint64(rid), col, v); err != nil {
		t.Fatalf("Modify(%d, %d): %v", rid, col, err)
	}
	ref.modifyAt(rid, col, v)
}

// --- basic unit tests --------------------------------------------------------

func TestEmptyPDT(t *testing.T) {
	p := New(inventorySchema(), 0)
	if !p.Empty() || p.Count() != 0 || p.Delta() != 0 {
		t.Error("fresh PDT not empty")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	stable := table0()
	ref := newRefModel(inventorySchema(), stable)
	checkAgainstRef(t, p, stable, ref)
}

func TestNewRejectsTooManyColumns(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for column overflow")
		}
	}()
	cols := make([]types.Column, MaxColumns+1)
	for i := range cols {
		cols[i] = types.Column{Name: fmt.Sprintf("c%d", i), Kind: types.Int64}
	}
	New(types.MustSchema(cols, []int{0}), 0)
}

func TestSingleInsertAtFront(t *testing.T) {
	p := New(inventorySchema(), 0)
	stable := table0()
	ref := newRefModel(inventorySchema(), stable)
	applyInsert(t, p, ref, inv("Berlin", "table", true, 10))
	if p.Count() != 1 || p.Delta() != 1 {
		t.Errorf("count=%d delta=%d", p.Count(), p.Delta())
	}
	checkAgainstRef(t, p, stable, ref)
	es := p.Entries()
	if len(es) != 1 || es[0].SID != 0 || es[0].RID != 0 || !es[0].IsInsert() {
		t.Errorf("entries = %+v", es)
	}
}

func TestInsertAtEnd(t *testing.T) {
	p := New(inventorySchema(), 0)
	stable := table0()
	ref := newRefModel(inventorySchema(), stable)
	applyInsert(t, p, ref, inv("Zurich", "chair", true, 3))
	es := p.Entries()
	if len(es) != 1 || es[0].SID != 5 || es[0].RID != 5 {
		t.Errorf("append insert entry = %+v", es)
	}
	checkAgainstRef(t, p, stable, ref)
}

func TestModifyStableTuple(t *testing.T) {
	p := New(inventorySchema(), 0)
	stable := table0()
	ref := newRefModel(inventorySchema(), stable)
	applyModify(t, p, ref, 1, 3, types.Int(99))
	checkAgainstRef(t, p, stable, ref)
	es := p.Entries()
	if len(es) != 1 || es[0].ModColumn() != 3 || es[0].SID != 1 {
		t.Errorf("entries = %+v", es)
	}
	// Second modify of the same column rewrites the value space in place.
	applyModify(t, p, ref, 1, 3, types.Int(100))
	if p.Count() != 1 {
		t.Errorf("in-place remodify grew the tree: %d entries", p.Count())
	}
	checkAgainstRef(t, p, stable, ref)
}

func TestModifyMultipleColumnsSameTuple(t *testing.T) {
	p := New(inventorySchema(), 0)
	stable := table0()
	ref := newRefModel(inventorySchema(), stable)
	applyModify(t, p, ref, 2, 3, types.Int(7))
	applyModify(t, p, ref, 2, 2, types.BoolVal(true))
	checkAgainstRef(t, p, stable, ref)
	es := p.Entries()
	if len(es) != 2 || es[0].ModColumn() != 2 || es[1].ModColumn() != 3 {
		t.Errorf("modify run not column-ordered: %+v", es)
	}
}

func TestModifyRejectsSortKeyAndBadColumn(t *testing.T) {
	p := New(inventorySchema(), 0)
	if err := p.Modify(0, 0, types.Str("x")); err == nil {
		t.Error("sort-key modify accepted")
	}
	if err := p.Modify(0, 9, types.Int(1)); err == nil {
		t.Error("out-of-range column accepted")
	}
	if err := p.Modify(0, 3, types.Str("x")); err == nil {
		t.Error("wrong-kind value accepted")
	}
}

func TestDeleteStableTuple(t *testing.T) {
	p := New(inventorySchema(), 0)
	stable := table0()
	ref := newRefModel(inventorySchema(), stable)
	applyDelete(t, p, ref, 3) // (Paris,rug)
	if p.Delta() != -1 {
		t.Errorf("delta = %d", p.Delta())
	}
	checkAgainstRef(t, p, stable, ref)
}

func TestDeleteOfInsertRemovesEntry(t *testing.T) {
	p := New(inventorySchema(), 0)
	stable := table0()
	ref := newRefModel(inventorySchema(), stable)
	applyInsert(t, p, ref, inv("Berlin", "table", true, 10))
	applyDelete(t, p, ref, 0)
	if p.Count() != 0 || p.Delta() != 0 {
		t.Errorf("delete-of-insert left %d entries, delta %d", p.Count(), p.Delta())
	}
	checkAgainstRef(t, p, stable, ref)
}

func TestDeleteOfModifiedTupleCollapses(t *testing.T) {
	p := New(inventorySchema(), 0)
	stable := table0()
	ref := newRefModel(inventorySchema(), stable)
	applyModify(t, p, ref, 1, 3, types.Int(42))
	applyModify(t, p, ref, 1, 2, types.BoolVal(true))
	applyDelete(t, p, ref, 1)
	es := p.Entries()
	if len(es) != 1 || !es[0].IsDelete() {
		t.Errorf("delete of modified tuple should leave one DEL entry, got %+v", es)
	}
	checkAgainstRef(t, p, stable, ref)
}

func TestModifyOfInsertInPlace(t *testing.T) {
	p := New(inventorySchema(), 0)
	stable := table0()
	ref := newRefModel(inventorySchema(), stable)
	applyInsert(t, p, ref, inv("Berlin", "cloth", true, 5))
	applyModify(t, p, ref, 0, 3, types.Int(1))
	if p.Count() != 1 {
		t.Errorf("modify-of-insert should not add entries, have %d", p.Count())
	}
	checkAgainstRef(t, p, stable, ref)
}

func TestGhostRespectingInsert(t *testing.T) {
	// Delete (Paris,rug), then insert (Paris,rack): rack < rug, so the new
	// tuple must receive the ghost's position's SID (3), not 4.
	p := New(inventorySchema(), 0)
	stable := table0()
	ref := newRefModel(inventorySchema(), stable)
	applyDelete(t, p, ref, 3)
	applyInsert(t, p, ref, inv("Paris", "rack", true, 4))
	var insEntry *Entry
	for _, e := range p.Entries() {
		if e.IsInsert() {
			e := e
			insEntry = &e
		}
	}
	if insEntry == nil || insEntry.SID != 3 {
		t.Fatalf("ghost-respecting SID wrong: %+v", insEntry)
	}
	checkAgainstRef(t, p, stable, ref)

	// Now a key above the ghost: (Paris,rye) > (Paris,rug) gets SID 4.
	applyInsert(t, p, ref, inv("Paris", "rye", true, 2))
	found := false
	for _, e := range p.Entries() {
		if e.IsInsert() && p.EntryTuple(e)[1].S == "rye" {
			found = true
			if e.SID != 4 {
				t.Fatalf("insert above ghost got SID %d, want 4", e.SID)
			}
		}
	}
	if !found {
		t.Fatal("rye insert not found")
	}
	checkAgainstRef(t, p, stable, ref)
}

func TestSidToRid(t *testing.T) {
	p := New(inventorySchema(), 0)
	stable := table0()
	ref := newRefModel(inventorySchema(), stable)
	applyInsert(t, p, ref, inv("Berlin", "chair", true, 1)) // rid 0
	applyDelete(t, p, ref, 2)                               // stable sid 1 (London,stool)
	// stable sid 0 (London,chair) now at rid 1
	if rid, ghost := p.SidToRid(0); rid != 1 || ghost {
		t.Errorf("SidToRid(0) = %d,%v", rid, ghost)
	}
	// deleted stable sid 1 is a ghost sharing the successor's rid
	if rid, ghost := p.SidToRid(1); rid != 2 || !ghost {
		t.Errorf("SidToRid(1) = %d,%v", rid, ghost)
	}
	// stable sid 4 (Paris,stool): one insert before, one delete before → rid 4
	if rid, ghost := p.SidToRid(4); rid != 4 || ghost {
		t.Errorf("SidToRid(4) = %d,%v", rid, ghost)
	}
}

func TestCopyIsDeep(t *testing.T) {
	p := New(inventorySchema(), 0)
	stable := table0()
	ref := newRefModel(inventorySchema(), stable)
	applyInsert(t, p, ref, inv("Berlin", "chair", true, 1))
	applyModify(t, p, ref, 3, 3, types.Int(77))

	cp := p.Copy()
	if err := cp.Validate(); err != nil {
		t.Fatalf("copy invalid: %v", err)
	}
	// Mutate the copy; the original must not change.
	if err := cp.Modify(2, 3, types.Int(123)); err != nil {
		t.Fatal(err)
	}
	if err := cp.Insert(0, inv("Aachen", "rug", true, 9)); err != nil {
		t.Fatal(err)
	}
	checkAgainstRef(t, p, stable, ref)
	if cp.Count() == p.Count() {
		t.Error("copy mutation affected entry counts equally")
	}
}

func TestMemBytesAndEncodedSize(t *testing.T) {
	if EncodedEntrySize != 16 {
		t.Fatalf("paper requires 16-byte entries, got %d", EncodedEntrySize)
	}
	p := New(inventorySchema(), 0)
	stable := table0()
	ref := newRefModel(inventorySchema(), stable)
	if p.MemBytes() != 0 {
		t.Error("empty PDT should report 0 bytes")
	}
	applyModify(t, p, ref, 0, 3, types.Int(5))
	want := uint64(EncodedEntrySize + 8) // one entry + one int64 mod value
	if p.MemBytes() != want {
		t.Errorf("MemBytes = %d, want %d", p.MemBytes(), want)
	}
}

func TestDeepTreeGrowthAndOrder(t *testing.T) {
	// Force multi-level trees with a tiny fanout and many appended inserts.
	schema := types.MustSchema([]types.Column{
		{Name: "k", Kind: types.Int64},
		{Name: "v", Kind: types.Int64},
	}, []int{0})
	p := New(schema, 4)
	stable := []types.Row{}
	ref := newRefModel(schema, stable)
	for i := 0; i < 500; i++ {
		applyInsert(t, p, ref, types.Row{types.Int(int64(i)), types.Int(int64(i * 10))})
	}
	depth, leaves := p.DepthAndLeaves()
	if depth < 4 {
		t.Errorf("500 entries at fanout 4 should be deep, depth=%d leaves=%d", depth, leaves)
	}
	checkAgainstRef(t, p, stable, ref)
}

func TestInterleavedInsertsSharedSID(t *testing.T) {
	// Many inserts landing at the same stable position must keep their
	// left-to-right order (equal SIDs, ascending RIDs).
	schema := types.MustSchema([]types.Column{
		{Name: "k", Kind: types.Int64},
	}, []int{0})
	stable := []types.Row{{types.Int(0)}, {types.Int(1000)}}
	p := New(schema, 4)
	ref := newRefModel(schema, stable)
	for _, k := range []int64{500, 250, 750, 125, 375, 625, 875, 300, 700} {
		applyInsert(t, p, ref, types.Row{types.Int(k)})
	}
	checkAgainstRef(t, p, stable, ref)
	for _, e := range p.Entries() {
		if e.SID != 1 {
			t.Errorf("insert got SID %d, want 1 (before stable key 1000)", e.SID)
		}
	}
}

func TestEntryTupleAndString(t *testing.T) {
	p := New(inventorySchema(), 0)
	stable := table0()
	ref := newRefModel(inventorySchema(), stable)
	applyInsert(t, p, ref, inv("Berlin", "chair", true, 1))
	applyDelete(t, p, ref, 4) // (Paris,rug) shifted to rid 4
	applyModify(t, p, ref, 1, 3, types.Int(2))
	for _, e := range p.Entries() {
		if got := p.EntryTuple(e); len(got) == 0 {
			t.Errorf("EntryTuple empty for %+v", e)
		}
	}
	s := p.String()
	if s == "" {
		t.Error("String() empty")
	}
	checkAgainstRef(t, p, stable, ref)
}
