package pdt

// Differential tests for the bulk (merge-based) Propagate against the
// per-entry reference PropagateEntrywise: across randomized two-layer update
// mixes — including chain boundaries at small fanouts, ghost deletes,
// delete-of-insert collapses, re-inserts of deleted keys and modify
// collisions — both paths must produce Validate()-clean trees with identical
// entry streams (same SIDs, RIDs, kinds AND value-space offsets) and
// identical Dump() payloads, and the merged view must match the row-slice
// reference model.

import (
	"fmt"
	"math/rand"
	"testing"

	"pdtstore/internal/types"
)

// propagatePair folds w into copies of base both ways and cross-checks them.
func propagatePair(t *testing.T, base, w *PDT, stable []types.Row, ref *refModel) {
	t.Helper()
	bulk := base.Copy()
	ent := base.Copy()
	if err := bulk.Propagate(w); err != nil {
		t.Fatalf("bulk propagate: %v", err)
	}
	if err := ent.PropagateEntrywise(w); err != nil {
		t.Fatalf("entrywise propagate: %v", err)
	}
	if err := bulk.Validate(); err != nil {
		t.Fatalf("bulk result invalid: %v\n%s", err, bulk)
	}
	if err := ent.Validate(); err != nil {
		t.Fatalf("entrywise result invalid: %v\n%s", err, ent)
	}
	be, ee := bulk.Entries(), ent.Entries()
	if len(be) != len(ee) {
		t.Fatalf("bulk has %d entries, entrywise %d\nbulk: %s\nentrywise: %s", len(be), len(ee), bulk, ent)
	}
	for i := range be {
		if be[i] != ee[i] {
			t.Fatalf("entry %d differs: bulk %+v, entrywise %+v\nbulk: %s\nentrywise: %s",
				i, be[i], ee[i], bulk, ent)
		}
		bt, et := bulk.EntryTuple(be[i]), ent.EntryTuple(ee[i])
		if types.CompareRows(bt, et) != 0 {
			t.Fatalf("entry %d payload differs: bulk %v, entrywise %v", i, bt, et)
		}
	}
	bd, ed := bulk.Dump(), ent.Dump()
	for i := range bd {
		if bd[i].SID != ed[i].SID || bd[i].Kind != ed[i].Kind ||
			types.CompareRows(bd[i].Ins, ed[i].Ins) != 0 ||
			types.CompareRows(bd[i].Del, ed[i].Del) != 0 ||
			types.Compare(bd[i].Mod, ed[i].Mod) != 0 {
			t.Fatalf("dump entry %d differs: bulk %+v, entrywise %+v", i, bd[i], ed[i])
		}
	}
	bi, bdl, bm := bulk.Counts()
	ei, edl, em := ent.Counts()
	if bi != ei || bdl != edl || bm != em || bulk.Delta() != ent.Delta() {
		t.Fatalf("counters differ: bulk (%d,%d,%d,%+d), entrywise (%d,%d,%d,%+d)",
			bi, bdl, bm, bulk.Delta(), ei, edl, em, ent.Delta())
	}
	if bulk.deadIns != ent.deadIns {
		t.Fatalf("deadIns differs: bulk %d, entrywise %d", bulk.deadIns, ent.deadIns)
	}
	if ref != nil {
		checkAgainstRef(t, bulk, stable, ref)
	}
	// The non-destructive Fold must agree on the same inputs (fold_test.go).
	checkFold(t, base, w, stable, ref)
}

func TestBulkPropagateRandomized(t *testing.T) {
	for _, fanout := range []int{3, 4, DefaultFanout} {
		for seed := int64(0); seed < 6; seed++ {
			fanout, seed := fanout, seed
			t.Run(fmt.Sprintf("fanout=%d/seed=%d", fanout, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				schema := intSchema()
				stable := buildIntTable(40)
				base := New(schema, fanout)
				ref := newRefModel(schema, stable)
				randomOps(t, rng, base, ref, 150, false)
				// Second layer over the first layer's output image: w's SIDs
				// are base's RIDs.
				w := New(schema, fanout)
				wref := newRefModel(schema, ref.rows)
				randomOps(t, rng, w, wref, 120, false)
				propagatePair(t, base, w, stable, wref)
			})
		}
	}
}

func TestBulkPropagateLargeMix(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	schema := intSchema()
	stable := buildIntTable(300)
	base := New(schema, DefaultFanout)
	ref := newRefModel(schema, stable)
	randomOps(t, rng, base, ref, 2000, false)
	w := New(schema, DefaultFanout)
	wref := newRefModel(schema, ref.rows)
	randomOps(t, rng, w, wref, 1500, false)
	propagatePair(t, base, w, stable, wref)
}

func TestBulkPropagateEmptyCases(t *testing.T) {
	schema := intSchema()
	stable := buildIntTable(10)

	// Empty w: no-op either way.
	base := New(schema, 4)
	ref := newRefModel(schema, stable)
	applyInsert(t, base, ref, types.Row{types.Int(15), types.Int(1), types.Str("x")})
	propagatePair(t, base, New(schema, 4), stable, ref)

	// Empty base: the result is a re-SIDed copy of w.
	w := New(schema, 4)
	wref := newRefModel(schema, stable)
	applyDelete(t, w, wref, 3)
	applyInsert(t, w, wref, types.Row{types.Int(15), types.Int(1), types.Str("x")})
	applyModify(t, w, wref, 0, 1, types.Int(7))
	propagatePair(t, New(schema, 4), w, stable, wref)
}

// TestBulkPropagateDirected exercises the §2.1 interaction cases one by one:
// ghost ordering of inserts among deletes, delete-of-insert collapse, delete
// of a modified tuple, modify of an inserted tuple, and same-column modify
// collisions across the two layers.
func TestBulkPropagateDirected(t *testing.T) {
	schema := intSchema()
	stable := buildIntTable(8) // keys 10..80
	row := func(k int64) types.Row {
		return types.Row{types.Int(k), types.Int(k), types.Str(fmt.Sprintf("r%d", k))}
	}

	cases := []struct {
		name string
		base func(t *testing.T, p *PDT, ref *refModel)
		w    func(t *testing.T, p *PDT, ref *refModel)
	}{
		{
			name: "insert-among-ghosts",
			base: func(t *testing.T, p *PDT, ref *refModel) {
				applyDelete(t, p, ref, 2) // ghost key 30
				applyDelete(t, p, ref, 2) // ghost key 40
			},
			w: func(t *testing.T, p *PDT, ref *refModel) {
				// Keys on both sides of the ghosts, at the same position.
				applyInsert(t, p, ref, row(25))
				applyInsert(t, p, ref, row(35))
				applyInsert(t, p, ref, row(45))
			},
		},
		{
			name: "delete-of-insert-collapse",
			base: func(t *testing.T, p *PDT, ref *refModel) {
				applyInsert(t, p, ref, row(25))
				applyInsert(t, p, ref, row(55))
			},
			w: func(t *testing.T, p *PDT, ref *refModel) {
				applyDelete(t, p, ref, 2) // removes base's insert of 25
				applyModify(t, p, ref, 5, 1, types.Int(-1))
			},
		},
		{
			name: "delete-of-modified-tuple",
			base: func(t *testing.T, p *PDT, ref *refModel) {
				applyModify(t, p, ref, 3, 1, types.Int(100))
				applyModify(t, p, ref, 3, 2, types.Str("mm"))
			},
			w: func(t *testing.T, p *PDT, ref *refModel) {
				applyDelete(t, p, ref, 3)
			},
		},
		{
			name: "modify-of-base-insert",
			base: func(t *testing.T, p *PDT, ref *refModel) {
				applyInsert(t, p, ref, row(45))
			},
			w: func(t *testing.T, p *PDT, ref *refModel) {
				applyModify(t, p, ref, 4, 1, types.Int(-9))
				applyModify(t, p, ref, 4, 2, types.Str("patched"))
			},
		},
		{
			name: "modify-collisions",
			base: func(t *testing.T, p *PDT, ref *refModel) {
				applyModify(t, p, ref, 1, 1, types.Int(11))
				applyModify(t, p, ref, 6, 2, types.Str("base"))
			},
			w: func(t *testing.T, p *PDT, ref *refModel) {
				applyModify(t, p, ref, 1, 1, types.Int(22))    // same column: overwrite
				applyModify(t, p, ref, 6, 1, types.Int(66))    // disjoint columns: interleave
				applyModify(t, p, ref, 6, 2, types.Str("top")) // collision after interleave
			},
		},
		{
			name: "reinsert-deleted-key",
			base: func(t *testing.T, p *PDT, ref *refModel) {
				applyDelete(t, p, ref, 4) // ghost key 50
			},
			w: func(t *testing.T, p *PDT, ref *refModel) {
				applyInsert(t, p, ref, row(50))
			},
		},
		{
			name: "edges-front-and-back",
			base: func(t *testing.T, p *PDT, ref *refModel) {
				applyInsert(t, p, ref, row(5))
				applyDelete(t, p, ref, len(ref.rows)-1)
			},
			w: func(t *testing.T, p *PDT, ref *refModel) {
				applyInsert(t, p, ref, row(1))
				applyInsert(t, p, ref, row(90))
				applyDelete(t, p, ref, 0)
			},
		},
	}
	for _, tc := range cases {
		for _, fanout := range []int{3, DefaultFanout} {
			t.Run(fmt.Sprintf("%s/fanout=%d", tc.name, fanout), func(t *testing.T) {
				base := New(schema, fanout)
				ref := newRefModel(schema, stable)
				tc.base(t, base, ref)
				w := New(schema, fanout)
				wref := newRefModel(schema, ref.rows)
				tc.w(t, w, wref)
				propagatePair(t, base, w, stable, wref)
			})
		}
	}
}
