// Package pdt implements the Positional Delta Tree of Héman et al. (SIGMOD
// 2010): a counted-B+-tree of differential updates (inserts, deletes and
// per-column modifies) organized by tuple position rather than by sort-key
// value.
//
// Every update entry carries the stable ID (SID) it applies to — its position
// in the underlying stable table image — and the tree's internal nodes carry
// per-child delta counters (#inserts − #deletes in the subtree), so an
// entry's current row ID (RID = SID + deltas of all entries before it) is
// computable in O(log n). Read queries merge updates in purely positionally
// (package-level MergeScan), never touching sort-key columns; update queries
// locate their target by RID; and the Propagate and Serialize operations make
// PDTs a building block for layered snapshot-isolation transactions.
//
// Tree nodes are persistent (copy-on-write): Snapshot returns an immutable
// O(1) view sharing the whole structure, and subsequent mutations of the
// origin path-copy only the nodes they touch, so snapshotting the Write-PDT
// per transaction costs O(1) instead of a deep copy.
package pdt

import (
	"fmt"

	"pdtstore/internal/types"
)

// Update-kind codes, following the paper's §3.1 layout: a 16-bit field whose
// two highest values mark inserts and deletes, with every other value naming
// the modified column. A table may therefore have up to 65534 columns.
const (
	// KindIns marks an insert entry.
	KindIns uint16 = 0xFFFF
	// KindDel marks a delete entry.
	KindDel uint16 = 0xFFFE
	// MaxColumns is the largest column count a PDT can describe.
	MaxColumns = int(KindDel)
)

// EncodedEntrySize is the per-update memory budget of the paper's packed C
// layout (8-byte SID + 2-byte type + 6-byte value reference).
const EncodedEntrySize = 16

// DefaultFanout mirrors the paper's choice of F=8 (leaf = two cache lines).
const DefaultFanout = 8

// kindShift returns the contribution of an update kind to the running delta.
func kindShift(kind uint16) int64 {
	switch kind {
	case KindIns:
		return 1
	case KindDel:
		return -1
	}
	return 0
}

// valueSpace holds the update payloads referenced from leaf entries: one
// insert table with full tuples, one delete table with the sort-key values of
// deleted ("ghost") stable tuples, and one single-column modify table per
// column (the paper's VALS, Eq. 7). Entries reference rows by offset;
// offsets are stable for the lifetime of the PDT.
type valueSpace struct {
	ins  []types.Row
	del  []types.Row
	mods [][]types.Value
}

func newValueSpace(numCols int) *valueSpace {
	return &valueSpace{mods: make([][]types.Value, numCols)}
}

func (vs *valueSpace) clone() *valueSpace {
	out := &valueSpace{
		ins:  make([]types.Row, len(vs.ins)),
		del:  make([]types.Row, len(vs.del)),
		mods: make([][]types.Value, len(vs.mods)),
	}
	for i, r := range vs.ins {
		if r != nil {
			out.ins[i] = r.Clone()
		}
	}
	for i, r := range vs.del {
		out.del[i] = r.Clone()
	}
	for c, col := range vs.mods {
		out.mods[c] = append([]types.Value(nil), col...)
	}
	return out
}

// share returns a new valueSpace struct whose slice headers are capacity-
// clamped views of vs's: reads see the same rows, but the first append to
// any table reallocates its backing array instead of growing into memory a
// snapshot may be reading. O(#columns), no payload copies.
func (vs *valueSpace) share() *valueSpace {
	out := &valueSpace{
		ins:  vs.ins[:len(vs.ins):len(vs.ins)],
		del:  vs.del[:len(vs.del):len(vs.del)],
		mods: make([][]types.Value, len(vs.mods)),
	}
	for c, col := range vs.mods {
		out.mods[c] = col[:len(col):len(col)]
	}
	return out
}

// PDT is a positional delta tree over a table with the given schema. The
// zero value is not usable; construct with New.
type PDT struct {
	schema *types.Schema
	fanout int
	root   node
	height int // levels incl. the leaf level; an empty tree has height 1
	cow    *cowTag
	vals   *valueSpace

	// valsOwned reports that vals (the struct and its slice headers) is
	// exclusively ours to append to. sharedPayload reports that the backing
	// arrays and rows behind those headers may be visible to a snapshot, so
	// stored payloads must be repointed, never overwritten in place. Both
	// flags are conservative: sharedPayload stays set for the PDT's lifetime
	// once any sharing has happened.
	valsOwned     bool
	sharedPayload bool

	nEntries int
	nIns     int
	nDel     int
	nMod     int
	deadIns  int // insert-space rows orphaned by delete-of-insert
}

// New returns an empty PDT for the schema. fanout <= 2 selects DefaultFanout.
func New(schema *types.Schema, fanout int) *PDT {
	if fanout < 3 {
		fanout = DefaultFanout
	}
	if schema.NumCols() > MaxColumns {
		panic(fmt.Sprintf("pdt: %d columns exceeds the 16-bit type field", schema.NumCols()))
	}
	cow := newCowTag()
	return &PDT{
		schema:    schema,
		fanout:    fanout,
		root:      &leaf{cow: cow},
		height:    1,
		cow:       cow,
		vals:      newValueSpace(schema.NumCols()),
		valsOwned: true,
	}
}

// Schema returns the table schema the PDT describes updates against.
func (t *PDT) Schema() *types.Schema { return t.schema }

// Fanout returns the tree's fanout (for stats and tests).
func (t *PDT) Fanout() int { return t.fanout }

// Count returns the number of update entries in the tree.
func (t *PDT) Count() int { return t.nEntries }

// Empty reports whether the PDT holds no updates.
func (t *PDT) Empty() bool { return t.nEntries == 0 }

// Counts returns the number of insert, delete and modify entries.
func (t *PDT) Counts() (ins, del, mod int) { return t.nIns, t.nDel, t.nMod }

// Delta returns the net change in table cardinality (#inserts − #deletes).
func (t *PDT) Delta() int64 {
	switch n := t.root.(type) {
	case *inner:
		var d int64
		for _, x := range n.deltas {
			d += x
		}
		return d
	case *leaf:
		var d int64
		for _, k := range n.kinds {
			d += kindShift(k)
		}
		return d
	}
	return 0
}

// MemBytes estimates the PDT's memory footprint using the paper's packed
// entry layout (16 bytes per entry) plus the value-space payload bytes.
func (t *PDT) MemBytes() uint64 {
	total := uint64(t.nEntries) * EncodedEntrySize
	for _, r := range t.vals.ins {
		total += rowBytes(r)
	}
	for _, r := range t.vals.del {
		total += rowBytes(r)
	}
	for _, col := range t.vals.mods {
		for _, v := range col {
			total += valueBytes(v)
		}
	}
	return total
}

func rowBytes(r types.Row) uint64 {
	var n uint64
	for _, v := range r {
		n += valueBytes(v)
	}
	return n
}

func valueBytes(v types.Value) uint64 {
	if w, ok := v.K.FixedWidth(); ok {
		return uint64(w)
	}
	return uint64(len(v.S)) + 4
}

// mutableVals returns the value space prepared for appends, lazily unsharing
// the slice headers if a snapshot still references the struct.
func (t *PDT) mutableVals() *valueSpace {
	if !t.valsOwned {
		t.vals = t.vals.share()
		t.valsOwned = true
	}
	return t.vals
}

// fork returns a PDT sharing t's entire structure without writing a single
// field of t — safe to call on a PDT other goroutines are reading. The fork
// carries a fresh ownership token, so its mutations path-copy away from the
// shared nodes. The contract is one-sided: t itself must never again be
// mutated in place (use Snapshot when the receiver keeps writing).
func (t *PDT) fork() *PDT {
	return &PDT{
		schema:        t.schema,
		fanout:        t.fanout,
		root:          t.root,
		height:        t.height,
		cow:           newCowTag(),
		vals:          t.vals,
		valsOwned:     false,
		sharedPayload: true,
		nEntries:      t.nEntries,
		nIns:          t.nIns,
		nDel:          t.nDel,
		nMod:          t.nMod,
		deadIns:       t.deadIns,
	}
}

// Snapshot returns an O(1) frozen copy of the PDT. The snapshot never
// changes; t remains fully mutable, path-copying shared nodes as it goes.
// Logically equivalent to Copy at none of the cost: no nodes or payloads are
// copied until one side actually diverges.
func (t *PDT) Snapshot() *PDT {
	out := t.fork()
	// Retag the receiver as well: nodes stamped with the old tag are now
	// reachable from the snapshot and must no longer be mutated in place.
	t.cow = newCowTag()
	t.valsOwned = false
	t.sharedPayload = true
	return out
}

// Copy returns a deep copy of the PDT. The copy shares nothing with the
// original; Snapshot is the cheap alternative when the copy stays read-only.
func (t *PDT) Copy() *PDT {
	out := New(t.schema, t.fanout)
	b := newBulkBuilder(out)
	b.reserve(t.nEntries)
	for c := t.newCursorAtStart(); c.valid(); c.advance() {
		b.append(c.sid(), c.kind(), c.val())
	}
	b.finish()
	out.vals = t.vals.clone()
	out.nIns, out.nDel, out.nMod, out.deadIns = t.nIns, t.nDel, t.nMod, t.deadIns
	return out
}

// InsertTuple returns the inserted tuple stored at insert-space offset off.
func (t *PDT) insertTuple(off uint64) types.Row { return t.vals.ins[off] }

// deleteKey returns the ghost sort-key values stored at delete-space offset.
func (t *PDT) deleteKey(off uint64) types.Row { return t.vals.del[off] }

// modValue returns the modify-space value for a column at the given offset.
func (t *PDT) modValue(col int, off uint64) types.Value { return t.vals.mods[col][off] }
