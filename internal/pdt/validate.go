package pdt

// Validate performs a full structural and semantic audit of the PDT. It is
// meant for tests (property tests call it after every mutation) and for the
// pdtdump tool; it is never needed on the query path.

import "fmt"

// Validate checks every invariant the algorithms rely on: tree shape,
// separator and delta bookkeeping, uniform leaf depth matching the height
// counter, global (SID,RID) ordering, chain well-formedness (Corollaries 3
// and 4), value-space offset bounds, and counter consistency. It returns the
// first violation found.
func (t *PDT) Validate() error {
	// Walk the tree and check node-local invariants.
	nLeaves := 0
	var walk func(n node, depth int) (min uint64, delta int64, err error)
	walk = func(n node, depth int) (uint64, int64, error) {
		switch x := n.(type) {
		case *leaf:
			if x.count() == 0 && t.root != n {
				return 0, 0, fmt.Errorf("pdt: empty non-root leaf")
			}
			if x.count() > t.fanout {
				return 0, 0, fmt.Errorf("pdt: leaf overflow (%d > %d)", x.count(), t.fanout)
			}
			if depth != t.height {
				return 0, 0, fmt.Errorf("pdt: leaf at depth %d, height says %d", depth, t.height)
			}
			nLeaves++
			var min uint64
			if x.count() > 0 {
				min = x.sids[0]
			}
			return min, x.localDelta(), nil
		case *inner:
			if len(x.children) == 0 {
				return 0, 0, fmt.Errorf("pdt: childless inner node")
			}
			if len(x.children) > t.fanout {
				return 0, 0, fmt.Errorf("pdt: inner overflow (%d > %d)", len(x.children), t.fanout)
			}
			if len(x.seps) != len(x.children)-1 || len(x.deltas) != len(x.children) {
				return 0, 0, fmt.Errorf("pdt: inner arity mismatch (%d children, %d seps, %d deltas)",
					len(x.children), len(x.seps), len(x.deltas))
			}
			var subMin uint64
			var total int64
			for i, c := range x.children {
				m, d, err := walk(c, depth+1)
				if err != nil {
					return 0, 0, err
				}
				if d != x.deltas[i] {
					return 0, 0, fmt.Errorf("pdt: delta of child %d is %d, recomputed %d", i, x.deltas[i], d)
				}
				if i == 0 {
					subMin = m
				} else {
					if x.seps[i-1] != m {
						return 0, 0, fmt.Errorf("pdt: separator %d is %d, min SID of right subtree is %d", i-1, x.seps[i-1], m)
					}
					if m < x.seps[i-1] {
						return 0, 0, fmt.Errorf("pdt: separators not aligned")
					}
				}
				total += d
			}
			for i := 1; i < len(x.seps); i++ {
				if x.seps[i] < x.seps[i-1] {
					return 0, 0, fmt.Errorf("pdt: separators decreasing")
				}
			}
			return subMin, total, nil
		}
		return 0, 0, fmt.Errorf("pdt: unknown node type")
	}
	if _, _, err := walk(t.root, 1); err != nil {
		return err
	}
	if nLeaves == 0 {
		return fmt.Errorf("pdt: tree has no leaves")
	}

	// Global entry ordering, chain shape, offsets, counters.
	var nIns, nDel, nMod, n int
	var prevSID, prevRID uint64
	var prevKind uint16
	havePrev := false
	for c := t.newCursorAtStart(); c.valid(); c.advance() {
		sid, rid, kind := c.sid(), c.rid(), c.kind()
		if havePrev {
			if sid < prevSID {
				return fmt.Errorf("pdt: SIDs decrease (%d after %d)", sid, prevSID)
			}
			if rid < prevRID {
				return fmt.Errorf("pdt: RIDs decrease (%d after %d)", rid, prevRID)
			}
			if sid == prevSID {
				// Corollary 3: inserts come first in an equal-SID chain.
				if prevKind != KindIns && kind == KindIns {
					return fmt.Errorf("pdt: insert after non-insert at sid %d", sid)
				}
				// A stable tuple is deleted at most once and a delete
				// replaces its modifies.
				if prevKind == KindDel {
					return fmt.Errorf("pdt: entry follows delete of the same stable tuple at sid %d", sid)
				}
				if prevKind != KindIns && kind != KindDel && kind != KindIns && kind <= prevKind {
					return fmt.Errorf("pdt: modify columns not strictly ascending at sid %d", sid)
				}
			}
			if rid == prevRID {
				// Corollary 4: only deletes may be followed by more entries
				// with the same RID.
				if prevKind != KindDel && !(prevKind < KindDel && kind < KindDel) {
					return fmt.Errorf("pdt: non-delete entry followed at rid %d", rid)
				}
			}
		}
		switch kind {
		case KindIns:
			nIns++
			if c.val() >= uint64(len(t.vals.ins)) {
				return fmt.Errorf("pdt: insert offset %d out of range", c.val())
			}
		case KindDel:
			nDel++
			if c.val() >= uint64(len(t.vals.del)) {
				return fmt.Errorf("pdt: delete offset %d out of range", c.val())
			}
		default:
			nMod++
			if int(kind) >= len(t.vals.mods) {
				return fmt.Errorf("pdt: modify column %d out of range", kind)
			}
			if c.val() >= uint64(len(t.vals.mods[kind])) {
				return fmt.Errorf("pdt: modify offset %d out of range", c.val())
			}
		}
		n++
		prevSID, prevRID, prevKind, havePrev = sid, rid, kind, true
	}
	if n != t.nEntries {
		return fmt.Errorf("pdt: entry count %d, counter says %d", n, t.nEntries)
	}
	if nIns != t.nIns || nDel != t.nDel || nMod != t.nMod {
		return fmt.Errorf("pdt: kind counters stale (ins %d/%d del %d/%d mod %d/%d)",
			nIns, t.nIns, nDel, t.nDel, nMod, t.nMod)
	}
	if t.Delta() != int64(nIns)-int64(nDel) {
		return fmt.Errorf("pdt: Delta() = %d, expected %d", t.Delta(), int64(nIns)-int64(nDel))
	}
	return nil
}
