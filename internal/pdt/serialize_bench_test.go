package pdt

// Benchmarks and regression guards for the batched TZ serialization path.

import (
	"fmt"
	"testing"

	"pdtstore/internal/types"
)

func serBenchSchema() *types.Schema {
	return types.MustSchema([]types.Column{
		{Name: "k", Kind: types.Int64},
		{Name: "v", Kind: types.Int64},
	}, []int{0})
}

// buildSerPDT makes an aligned PDT of n inserts with keys drawn from a
// disjoint range per keyBase, so chained serialization never conflicts.
func buildSerPDT(tb testing.TB, schema *types.Schema, n int, keyBase int64) *PDT {
	tb.Helper()
	p := New(schema, 0)
	visible := int64(1 << 20)
	for i := 0; i < n; i++ {
		rid := uint64(int64(i*7919) % visible)
		key := keyBase + int64(i)
		if err := p.Insert(rid, types.Row{types.Int(key), types.Int(int64(i))}); err != nil {
			tb.Fatal(err)
		}
		visible++
	}
	return p
}

// BenchmarkTZSerializeChain measures converting one committing transaction
// through a chain of overlapping committed transactions: the single-sweep
// cascade versus what used to be one intermediate PDT build per layer.
func BenchmarkTZSerializeChain(b *testing.B) {
	schema := serBenchSchema()
	for _, chainLen := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("chain=%d", chainLen), func(b *testing.B) {
			tx := buildSerPDT(b, schema, 256, 1<<40)
			chain := make([]*PDT, chainLen)
			for i := range chain {
				chain[i] = buildSerPDT(b, schema, 256, int64(i+1)<<28)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tx.SerializeChain(chain); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestSerializeChainAllocs is the alloc guard: the chained sweep must stay
// well under the sequential composition, which rebuilds the transaction's
// tree and clones its payload once per layer.
func TestSerializeChainAllocs(t *testing.T) {
	schema := serBenchSchema()
	tx := buildSerPDT(t, schema, 256, 1<<40)
	chain := make([]*PDT, 8)
	for i := range chain {
		chain[i] = buildSerPDT(t, schema, 256, int64(i+1)<<28)
	}
	chained := testing.AllocsPerRun(20, func() {
		if _, err := tx.SerializeChain(chain); err != nil {
			t.Fatal(err)
		}
	})
	sequential := testing.AllocsPerRun(20, func() {
		cur := tx
		for _, ty := range chain {
			next, err := cur.Serialize(ty)
			if err != nil {
				t.Fatal(err)
			}
			cur = next
		}
	})
	if chained*2 > sequential {
		t.Errorf("chained serialization allocates %0.0f, sequential %0.0f: batching regressed", chained, sequential)
	}
	// The two paths must agree on the result.
	got, err := tx.SerializeChain(chain)
	if err != nil {
		t.Fatal(err)
	}
	cur := tx
	for _, ty := range chain {
		if cur, err = cur.Serialize(ty); err != nil {
			t.Fatal(err)
		}
	}
	a, b := got.Dump(), cur.Dump()
	if len(a) != len(b) {
		t.Fatalf("chained %d entries, sequential %d", len(a), len(b))
	}
	for i := range a {
		if a[i].SID != b[i].SID || a[i].Kind != b[i].Kind {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
