package pdt

// Rebuild reconstructs a PDT from an ordered entry dump — the write-ahead
// log's replay path. Entries must be in (SID, RID) order, i.e. exactly the
// order Entries() produced them in.

import (
	"fmt"

	"pdtstore/internal/types"
)

// RebuildEntry is one logged update triplet with its payload inline.
type RebuildEntry struct {
	SID  uint64
	Kind uint16
	Ins  types.Row   // full tuple, for inserts
	Del  types.Row   // ghost sort-key values, for deletes
	Mod  types.Value // modified value, for modifies
}

// Dump flattens the PDT into rebuildable entries (the WAL's record body).
// The returned rows alias the PDT's value space — they are serialized or
// cloned by the consumer (the WAL encoder serializes them immediately and
// Rebuild clones on intake), so Dump itself never copies a payload. Callers
// must not mutate the rows, and a dump taken before later updates to the
// PDT may observe those updates through the aliases.
func (t *PDT) Dump() []RebuildEntry {
	out := make([]RebuildEntry, 0, t.nEntries)
	for c := t.newCursorAtStart(); c.valid(); c.advance() {
		e := RebuildEntry{SID: c.sid(), Kind: c.kind()}
		switch c.kind() {
		case KindIns:
			e.Ins = t.vals.ins[c.val()]
		case KindDel:
			e.Del = t.vals.del[c.val()]
		default:
			e.Mod = t.vals.mods[c.kind()][c.val()]
		}
		out = append(out, e)
	}
	return out
}

// Rebuild constructs a PDT from dumped entries.
func Rebuild(schema *types.Schema, fanout int, entries []RebuildEntry) (*PDT, error) {
	t := New(schema, fanout)
	b := newBulkBuilder(t)
	b.reserve(len(entries))
	for i, e := range entries {
		switch e.Kind {
		case KindIns:
			if err := schema.ValidateRow(e.Ins); err != nil {
				return nil, fmt.Errorf("pdt: rebuild entry %d: %w", i, err)
			}
			b.append(e.SID, KindIns, uint64(len(t.vals.ins)))
			t.vals.ins = append(t.vals.ins, e.Ins.Clone())
		case KindDel:
			if len(e.Del) != len(schema.SortKey) {
				return nil, fmt.Errorf("pdt: rebuild entry %d: ghost key arity %d", i, len(e.Del))
			}
			b.append(e.SID, KindDel, uint64(len(t.vals.del)))
			t.vals.del = append(t.vals.del, e.Del.Clone())
		default:
			col := int(e.Kind)
			if col >= schema.NumCols() {
				return nil, fmt.Errorf("pdt: rebuild entry %d: column %d out of range", i, col)
			}
			b.append(e.SID, e.Kind, uint64(len(t.vals.mods[col])))
			t.vals.mods[col] = append(t.vals.mods[col], e.Mod)
		}
	}
	b.finish()
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("pdt: rebuild produced invalid tree: %w", err)
	}
	return t, nil
}
