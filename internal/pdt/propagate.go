package pdt

// Propagate is the paper's Algorithm 7: it folds a consecutive, higher-layer
// PDT W (whose SIDs are this PDT's RIDs) into the receiver, converting
// positions as it goes. It is used when the Write-PDT outgrows its budget
// and migrates into the Read-PDT, and at commit time to fold a serialized
// Trans-PDT into the master Write-PDT.
//
// The implementation is a single merge pass: both trees' leaf chains are
// walked in (SID, RID) order and the combined entry stream is emitted into a
// bulkBuilder, so folding m updates into a tree of n entries costs O(n+m)
// sequential work instead of m root descents with per-entry leaf shifting
// (PropagateEntrywise, kept as the reference implementation). The running
// output delta dOut plays the role of Algorithm 7's δ: a w entry targeting
// final position r stores SID r−dOut, which is exactly what the per-entry
// algorithms derive by cursor descent.

import (
	"fmt"

	"pdtstore/internal/types"
)

// Propagate applies every update of w to t. w must be consecutive to t:
// w's SID domain is t's current RID domain.
//
// Propagate absorbs w's payload storage instead of cloning it (insert tuples
// and ghost keys are shared, not copied); w must be discarded afterwards.
// Retaining w for read-only sort-key access stays safe — the one in-place
// payload mutation t can later perform (rewriting a column of an inserted
// tuple) can never touch sort-key columns. On error t may be left invalid
// and must be discarded, exactly like a failed per-entry propagation.
func (t *PDT) Propagate(w *PDT) error {
	if w.schema.NumCols() != t.schema.NumCols() {
		return fmt.Errorf("pdt: propagate across different schemas")
	}
	if w.Empty() {
		return nil
	}
	t.mutableVals()
	ct := t.newCursorAtStart()
	cw := w.newCursorAtStart()
	oldEntries := t.nEntries
	t.nEntries, t.nIns, t.nDel, t.nMod = 0, 0, 0, 0
	b := newBulkBuilder(t)
	b.reserve(oldEntries + w.nEntries)

	// dOut is the accumulated shift of every entry emitted so far — the
	// combined tree's delta before the current merge position.
	var dOut int64
	emitT := func() {
		b.append(ct.sid(), ct.kind(), ct.val())
		dOut += kindShift(ct.kind())
		ct.advance()
	}

	for cw.valid() {
		// p is the position, in t's output image, that the next w entries
		// target (w's SID domain is t's RID domain).
		p := cw.sid()
		for ct.valid() && ct.rid() < p {
			emitT()
		}

		// Inserts of w at p slot in among t's ghost deletes at p by sort
		// key (SKRidToSid's ghost-ordering rule). w's inserts at one SID
		// arrive in key order, so this is a sorted merge.
		for cw.valid() && cw.sid() == p && cw.kind() == KindIns {
			tuple := w.vals.ins[cw.val()]
			insKey := w.schema.KeyOf(tuple)
			for ct.valid() && ct.rid() == p && ct.kind() == KindDel &&
				types.CompareRows(t.vals.del[ct.val()], insKey) < 0 {
				emitT()
			}
			b.append(uint64(int64(cw.rid())-dOut), KindIns, uint64(len(t.vals.ins)))
			t.vals.ins = append(t.vals.ins, tuple)
			dOut++
			cw.advance()
		}
		if !cw.valid() || cw.sid() != p {
			continue
		}

		// The rest of w's chain at p (one delete, or a modify run) targets
		// the tuple visible at p. t's remaining ghosts at p precede it.
		for ct.valid() && ct.rid() == p && ct.kind() == KindDel {
			emitT()
		}

		if cw.kind() == KindDel {
			if ct.valid() && ct.rid() == p && ct.kind() == KindIns {
				// Delete of a tuple t inserted: both vanish (§2.1 collapse);
				// the insert-space row is orphaned, as in AddDelete.
				t.deadIns++
				ct.advance()
			} else {
				// Deleting a stable tuple removes its modify entries first.
				for ct.valid() && ct.rid() == p && ct.kind() != KindIns && ct.kind() != KindDel {
					ct.advance()
				}
				b.append(uint64(int64(cw.rid())-dOut), KindDel, uint64(len(t.vals.del)))
				t.vals.del = append(t.vals.del, w.vals.del[cw.val()])
				dOut--
			}
			cw.advance()
			continue
		}

		// Modify run of w at p.
		if ct.valid() && ct.rid() == p && ct.kind() == KindIns {
			// The visible tuple at p is an insert of t: rewrite its stored
			// tuple (AddModify's insert fast path). When a snapshot still
			// shares the row, write into a clone at a fresh slot and emit
			// the insert entry here, repointed; otherwise rewrite in place
			// and let the outer merge emit the entry unchanged.
			row := t.vals.ins[ct.val()]
			if t.sharedPayload {
				row = row.Clone()
				b.append(ct.sid(), KindIns, uint64(len(t.vals.ins)))
				t.vals.ins = append(t.vals.ins, row)
				t.deadIns++
				dOut++
				ct.advance()
			}
			for cw.valid() && cw.sid() == p {
				row[cw.kind()] = w.vals.mods[cw.kind()][cw.val()]
				cw.advance()
			}
			continue
		}
		// The visible tuple at p is stable: merge the two modify runs by
		// column number; on a column collision w's value overwrites t's
		// value-space slot, keeping t's entry.
		for cw.valid() && cw.sid() == p {
			col := cw.kind()
			for ct.valid() && ct.rid() == p && ct.kind() < col {
				emitT()
			}
			if ct.valid() && ct.rid() == p && ct.kind() == col {
				if t.sharedPayload {
					// Repoint t's entry at a fresh slot holding w's value
					// rather than overwriting memory a snapshot reads.
					b.append(ct.sid(), col, uint64(len(t.vals.mods[col])))
					t.vals.mods[col] = append(t.vals.mods[col], w.vals.mods[col][cw.val()])
					dOut += kindShift(uint16(col))
					ct.advance()
				} else {
					t.vals.mods[col][ct.val()] = w.vals.mods[col][cw.val()]
					emitT()
				}
			} else {
				b.append(uint64(int64(cw.rid())-dOut), col, uint64(len(t.vals.mods[col])))
				t.vals.mods[col] = append(t.vals.mods[col], w.vals.mods[col][cw.val()])
			}
			cw.advance()
		}
	}
	for ct.valid() {
		emitT()
	}
	b.finish()
	return nil
}

// PropagateEntrywise is the pre-vectorized reference implementation: one
// root descent per entry of w, exactly the paper's per-update algorithms.
// It produces a tree entry- and offset-identical to Propagate (the
// randomized property tests assert this) but clones w's payloads and costs
// O(m·log n) with per-entry leaf shifting. It is kept for differential
// testing and as the baseline of the update benchmarks.
func (t *PDT) PropagateEntrywise(w *PDT) error {
	if w.schema.NumCols() != t.schema.NumCols() {
		return fmt.Errorf("pdt: propagate across different schemas")
	}
	// The cursor's running delta is exactly Algorithm 7's δ: the net shift
	// of w's own updates already absorbed, so each entry's RID is its
	// position in t's evolving image.
	for c := w.newCursorAtStart(); c.valid(); c.advance() {
		rid := c.rid()
		switch kind := c.kind(); kind {
		case KindIns:
			if err := t.Insert(rid, w.vals.ins[c.val()]); err != nil {
				return err
			}
		case KindDel:
			if err := t.AddDelete(rid, w.vals.del[c.val()]); err != nil {
				return err
			}
		default:
			if err := t.AddModify(rid, int(kind), w.vals.mods[kind][c.val()]); err != nil {
				return err
			}
		}
	}
	return nil
}
