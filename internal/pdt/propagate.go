package pdt

// Propagate is the paper's Algorithm 7: it folds a consecutive, higher-layer
// PDT W (whose SIDs are this PDT's RIDs) into the receiver, converting
// positions as it goes. It is used when the Write-PDT outgrows its budget
// and migrates into the Read-PDT, and at commit time to fold a serialized
// Trans-PDT into the master Write-PDT.

import "fmt"

// Propagate applies every update of w to t. w must be consecutive to t:
// w's SID domain is t's current RID domain. w is not modified.
func (t *PDT) Propagate(w *PDT) error {
	if w.schema.NumCols() != t.schema.NumCols() {
		return fmt.Errorf("pdt: propagate across different schemas")
	}
	// The cursor's running delta is exactly Algorithm 7's δ: the net shift
	// of w's own updates already absorbed, so each entry's RID is its
	// position in t's evolving image.
	for c := w.newCursorAtStart(); c.valid(); c.advance() {
		rid := c.rid()
		switch kind := c.kind(); kind {
		case KindIns:
			if err := t.Insert(rid, w.vals.ins[c.val()]); err != nil {
				return err
			}
		case KindDel:
			if err := t.AddDelete(rid, w.vals.del[c.val()]); err != nil {
				return err
			}
		default:
			if err := t.AddModify(rid, int(kind), w.vals.mods[kind][c.val()]); err != nil {
				return err
			}
		}
	}
	return nil
}
