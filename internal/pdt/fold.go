package pdt

import (
	"fmt"

	"pdtstore/internal/types"
)

// Fold is the non-destructive sibling of Propagate: it merges a consecutive,
// higher-layer PDT w (whose SIDs are base's RIDs) with base into a brand-new
// PDT and leaves both inputs untouched. The transaction manager uses it for
// online maintenance — folding the Write-PDT into a *copy* of the Read-PDT
// that is then installed as a new version, while transactions pinned to the
// old version keep reading base — and at commit, so a failed WAL append never
// leaves the master Write-PDT half-mutated.
//
// The merge logic is Propagate's single O(n+m) pass over both leaf chains;
// the difference is purely in payload handling. The two implementations are
// deliberately separate — a shared core parameterized by an emit strategy
// would put indirect calls in Propagate's innermost loop — and MUST evolve
// in lockstep: fold_test.go's checkFold runs Fold against Copy+Propagate on
// every input of the whole randomized/directed propagate suite, so any
// divergence fails the build. Propagate absorbs w's value
// space and rewrites base's in place (modify collisions overwrite a value
// slot, modifies of base-inserted tuples rewrite the stored row). Fold
// instead emits every surviving payload into the output's own value space,
// sharing row and value storage with the inputs where no rewrite happens and
// cloning the one case that needs mutation (a modify landing on a tuple base
// inserted). Both inputs therefore stay valid afterwards: immutable Read-PDT
// versions can share payload rows across the whole fold chain.
func Fold(base, w *PDT) (*PDT, error) {
	if w.schema.NumCols() != base.schema.NumCols() {
		return nil, fmt.Errorf("pdt: fold across different schemas")
	}
	out := New(base.schema, base.fanout)
	b := newBulkBuilder(out)
	b.reserve(base.nEntries + w.nEntries)
	ov := out.vals
	cb := base.newCursorAtStart()
	cw := w.newCursorAtStart()

	// dOut is the accumulated shift of every entry emitted so far — the
	// output tree's delta before the current merge position (Algorithm 7's δ).
	var dOut int64
	emitBase := func() {
		switch kind := cb.kind(); kind {
		case KindIns:
			b.append(cb.sid(), KindIns, uint64(len(ov.ins)))
			ov.ins = append(ov.ins, base.vals.ins[cb.val()])
		case KindDel:
			b.append(cb.sid(), KindDel, uint64(len(ov.del)))
			ov.del = append(ov.del, base.vals.del[cb.val()])
		default:
			b.append(cb.sid(), kind, uint64(len(ov.mods[kind])))
			ov.mods[kind] = append(ov.mods[kind], base.vals.mods[kind][cb.val()])
		}
		dOut += kindShift(cb.kind())
		cb.advance()
	}

	for cw.valid() {
		// p is the position, in the output image, that the next w entries
		// target (w's SID domain is base's RID domain).
		p := cw.sid()
		for cb.valid() && cb.rid() < p {
			emitBase()
		}

		// Inserts of w at p slot in among base's ghost deletes at p by sort
		// key (SKRidToSid's ghost-ordering rule). w's inserts at one SID
		// arrive in key order, so this is a sorted merge.
		for cw.valid() && cw.sid() == p && cw.kind() == KindIns {
			tuple := w.vals.ins[cw.val()]
			insKey := w.schema.KeyOf(tuple)
			for cb.valid() && cb.rid() == p && cb.kind() == KindDel &&
				types.CompareRows(base.vals.del[cb.val()], insKey) < 0 {
				emitBase()
			}
			b.append(uint64(int64(cw.rid())-dOut), KindIns, uint64(len(ov.ins)))
			ov.ins = append(ov.ins, tuple)
			dOut++
			cw.advance()
		}
		if !cw.valid() || cw.sid() != p {
			continue
		}

		// The rest of w's chain at p (one delete, or a modify run) targets
		// the tuple visible at p. base's remaining ghosts at p precede it.
		for cb.valid() && cb.rid() == p && cb.kind() == KindDel {
			emitBase()
		}

		if cw.kind() == KindDel {
			if cb.valid() && cb.rid() == p && cb.kind() == KindIns {
				// Delete of a tuple base inserted: both vanish (§2.1
				// collapse); neither payload reaches the output.
				cb.advance()
			} else {
				// Deleting a stable tuple drops its modify entries first.
				for cb.valid() && cb.rid() == p && cb.kind() != KindIns && cb.kind() != KindDel {
					cb.advance()
				}
				b.append(uint64(int64(cw.rid())-dOut), KindDel, uint64(len(ov.del)))
				ov.del = append(ov.del, w.vals.del[cw.val()])
				dOut--
			}
			cw.advance()
			continue
		}

		// Modify run of w at p.
		if cb.valid() && cb.rid() == p && cb.kind() == KindIns {
			// The visible tuple at p is an insert of base: clone the stored
			// row — base stays untouched — apply the run, and emit the insert
			// with the rewritten tuple.
			row := base.vals.ins[cb.val()].Clone()
			for cw.valid() && cw.sid() == p {
				row[cw.kind()] = w.vals.mods[cw.kind()][cw.val()]
				cw.advance()
			}
			b.append(cb.sid(), KindIns, uint64(len(ov.ins)))
			ov.ins = append(ov.ins, row)
			dOut++
			cb.advance()
			continue
		}
		// The visible tuple at p is stable: merge the two modify runs by
		// column number; on a column collision w's value wins and base's
		// entry is consumed without emitting its payload.
		for cw.valid() && cw.sid() == p {
			col := cw.kind()
			for cb.valid() && cb.rid() == p && cb.kind() < col {
				emitBase()
			}
			if cb.valid() && cb.rid() == p && cb.kind() == col {
				b.append(cb.sid(), col, uint64(len(ov.mods[col])))
				ov.mods[col] = append(ov.mods[col], w.vals.mods[col][cw.val()])
				cb.advance()
			} else {
				b.append(uint64(int64(cw.rid())-dOut), col, uint64(len(ov.mods[col])))
				ov.mods[col] = append(ov.mods[col], w.vals.mods[col][cw.val()])
			}
			cw.advance()
		}
	}
	for cb.valid() {
		emitBase()
	}
	b.finish()
	// The output's rows alias the inputs' rows, so later point mutations of
	// the output must repoint rather than rewrite them.
	out.sharedPayload = true
	return out, nil
}

// foldSnapRatio is FoldSnap's cutover: when w holds at least 1/foldSnapRatio
// of base's entries the full bulk merge beats per-entry insertion.
const foldSnapRatio = 8

// FoldSnap is Fold for the common commit-path shape — a small w landing on a
// large base. Instead of rebuilding base's whole tree it forks base (O(1),
// structure shared) and applies w entry by entry, path-copying only the
// nodes w touches; large w falls back to the bulk merge. Both inputs stay
// valid. The result is entry-equivalent to Fold but not offset-identical:
// payloads may occupy different value-space slots.
func FoldSnap(base, w *PDT) (*PDT, error) {
	if w.schema.NumCols() != base.schema.NumCols() {
		return nil, fmt.Errorf("pdt: fold across different schemas")
	}
	if base.nEntries == 0 || w.nEntries*foldSnapRatio >= base.nEntries {
		return Fold(base, w)
	}
	out := base.fork()
	if err := out.PropagateEntrywise(w); err != nil {
		// out is abandoned; base was never written (all mutation was
		// copy-on-write into out's own nodes and reallocated payload tables).
		return nil, err
	}
	return out, nil
}
