package pdt

// cursor walks leaf entries left-to-right, maintaining the running delta so
// each entry's RID is available in O(1). delta is always the accumulated
// shift of all entries strictly before the current position.
type cursor struct {
	lf    *leaf
	pos   int
	delta int64
}

func (t *PDT) newCursorAtStart() cursor {
	c := cursor{lf: t.first}
	c.skipEmpty()
	return c
}

// newCursorAtSid positions a cursor at the first entry with SID >= sid.
func (t *PDT) newCursorAtSid(sid uint64) cursor {
	lf, delta := t.findLeafLeftBySid(sid)
	c := cursor{lf: lf, delta: delta}
	c.skipEmpty()
	for c.valid() && c.sid() < sid {
		c.advance()
	}
	return c
}

// newCursorAtRidChain positions a cursor at the first entry whose RID >= rid
// (the head of the update chain for rid, if one exists). Chains may span
// leaves in both directions: descent lands on the rightmost leaf whose first
// RID <= rid, the forward scan finds the first in-leaf entry at >= rid, and
// the retreat loop walks back across leaf boundaries to the true chain head.
func (t *PDT) newCursorAtRidChain(rid uint64) cursor {
	lf, delta := t.findLeafRightByRid(rid)
	c := cursor{lf: lf, delta: delta}
	c.skipEmpty()
	for c.valid() && c.rid() < rid {
		c.advance()
	}
	for {
		p, ok := c.peekPrev()
		if !ok || p.rid() != rid {
			return c
		}
		c = p
	}
}

// peekPrev returns a cursor at the entry immediately before c, if any.
func (c *cursor) peekPrev() (cursor, bool) {
	lf, pos := c.lf, c.pos
	if lf == nil {
		return cursor{}, false
	}
	for {
		if pos > 0 {
			pos--
			break
		}
		lf = lf.prev
		if lf == nil {
			return cursor{}, false
		}
		pos = lf.count()
	}
	prev := cursor{lf: lf, pos: pos}
	prev.delta = c.delta - kindShift(lf.kinds[pos])
	return prev, true
}

func (c *cursor) skipEmpty() {
	for c.lf != nil && c.pos >= c.lf.count() {
		c.lf = c.lf.next
		c.pos = 0
	}
}

func (c *cursor) valid() bool { return c.lf != nil && c.pos < c.lf.count() }

func (c *cursor) sid() uint64  { return c.lf.sids[c.pos] }
func (c *cursor) kind() uint16 { return c.lf.kinds[c.pos] }
func (c *cursor) val() uint64  { return c.lf.vals[c.pos] }
func (c *cursor) rid() uint64  { return uint64(int64(c.lf.sids[c.pos]) + c.delta) }

// advance moves to the next entry, folding the current entry's shift into
// the running delta.
func (c *cursor) advance() {
	c.delta += kindShift(c.lf.kinds[c.pos])
	c.pos++
	c.skipEmpty()
}
