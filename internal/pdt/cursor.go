package pdt

// cursor walks leaf entries left-to-right, maintaining the running delta so
// each entry's RID is available in O(1). delta is always the accumulated
// shift of all entries strictly before the current position.
//
// With persistent nodes there is no leaf sibling chain, so a cursor carries
// its root-to-leaf spine: stack[d] names the inner node at depth d and the
// child index the path takes through it (empty when the root is a leaf).
// Leaf-boundary moves climb the spine to the nearest ancestor with a sibling
// and re-descend. The exhausted position ("END") keeps the spine to the last
// leaf with pos == count, so placeEntry can append there and peekPrev can
// still walk backwards off the end.
//
// Cursor copies share the spine's backing array; only one copy may keep
// advancing (peekPrev allocates a fresh spine when it crosses a leaf).
type cursor struct {
	lf    *leaf
	pos   int
	delta int64
	stack []pathEnt
}

type pathEnt struct {
	in  *inner
	idx int
}

// newCursorAtStart positions a cursor at the tree's first entry.
func (t *PDT) newCursorAtStart() cursor {
	c := cursor{stack: make([]pathEnt, 0, t.height-1)}
	n := t.root
	for {
		in, ok := n.(*inner)
		if !ok {
			c.lf = n.(*leaf)
			return c
		}
		c.stack = append(c.stack, pathEnt{in: in})
		n = in.children[0]
	}
}

// newCursorAtSid positions a cursor at the first entry with SID >= sid. The
// descent takes the leftmost child that can contain such an entry (children
// to the right start at strictly larger SIDs), accumulating the deltas of
// the skipped siblings, then scans forward to the exact position.
func (t *PDT) newCursorAtSid(sid uint64) cursor {
	c := cursor{stack: make([]pathEnt, 0, t.height-1)}
	n := t.root
	for {
		in, ok := n.(*inner)
		if !ok {
			c.lf = n.(*leaf)
			break
		}
		chosen := len(in.children) - 1
		for j := 0; j < len(in.seps); j++ {
			if sid <= in.seps[j] {
				chosen = j
				break
			}
		}
		for j := 0; j < chosen; j++ {
			c.delta += in.deltas[j]
		}
		c.stack = append(c.stack, pathEnt{in: in, idx: chosen})
		n = in.children[chosen]
	}
	for c.valid() && c.sid() < sid {
		c.advance()
	}
	return c
}

// newCursorAtRidChain positions a cursor at the first entry whose RID >= rid
// (the head of the update chain for rid, if one exists). Chains may span
// leaves in both directions: descent picks, per level, the rightmost child
// whose minimum RID (= separator SID + delta entering the child) is <= rid,
// the forward scan finds the first entry at >= rid, and the retreat loop
// walks back across leaf boundaries to the true chain head.
func (t *PDT) newCursorAtRidChain(rid uint64) cursor {
	c := cursor{stack: make([]pathEnt, 0, t.height-1)}
	n := t.root
	for {
		in, ok := n.(*inner)
		if !ok {
			c.lf = n.(*leaf)
			break
		}
		chosen := 0
		chosenDelta := c.delta
		sum := c.delta + in.deltas[0]
		for j := 1; j < len(in.children); j++ {
			if int64(in.seps[j-1])+sum <= int64(rid) {
				chosen = j
				chosenDelta = sum
			} else {
				break // children's min RIDs are non-decreasing
			}
			sum += in.deltas[j]
		}
		c.stack = append(c.stack, pathEnt{in: in, idx: chosen})
		n = in.children[chosen]
		c.delta = chosenDelta
	}
	for c.valid() && c.rid() < rid {
		c.advance()
	}
	for {
		p, ok := c.peekPrev()
		if !ok || p.rid() != rid {
			return c
		}
		c = p
	}
}

// newCursorBySidRid positions a cursor at the insertion point of a new
// insert at (sid, rid): after every entry whose SID < sid or RID < rid
// (Algorithm 3's advance condition). Descent picks the rightmost child whose
// first entry precedes that point, then scans forward within reach.
func (t *PDT) newCursorBySidRid(sid, rid uint64) cursor {
	c := cursor{stack: make([]pathEnt, 0, t.height-1)}
	n := t.root
	for {
		in, ok := n.(*inner)
		if !ok {
			c.lf = n.(*leaf)
			break
		}
		chosen := 0
		chosenDelta := c.delta
		sum := c.delta + in.deltas[0]
		for j := 1; j < len(in.children); j++ {
			mSID := in.seps[j-1]
			mRID := int64(mSID) + sum
			if mSID < sid || mRID < int64(rid) {
				chosen = j
				chosenDelta = sum
			} else {
				break
			}
			sum += in.deltas[j]
		}
		c.stack = append(c.stack, pathEnt{in: in, idx: chosen})
		n = in.children[chosen]
		c.delta = chosenDelta
	}
	return c
}

// peekPrev returns a cursor at the entry immediately before c, if any. A
// same-leaf retreat shares c's spine; a cross-leaf retreat allocates its own.
func (c *cursor) peekPrev() (cursor, bool) {
	if c.pos > 0 {
		p := *c
		p.pos--
		p.delta = c.delta - kindShift(p.lf.kinds[p.pos])
		return p, true
	}
	d := len(c.stack) - 1
	for ; d >= 0; d-- {
		if c.stack[d].idx > 0 {
			break
		}
	}
	if d < 0 {
		return cursor{}, false
	}
	p := cursor{stack: make([]pathEnt, d+1, len(c.stack))}
	copy(p.stack, c.stack[:d+1])
	p.stack[d].idx--
	var n node = p.stack[d].in.children[p.stack[d].idx]
	for {
		in, ok := n.(*inner)
		if !ok {
			break
		}
		p.stack = append(p.stack, pathEnt{in: in, idx: len(in.children) - 1})
		n = in.children[len(in.children)-1]
	}
	p.lf = n.(*leaf)
	p.pos = p.lf.count() - 1
	p.delta = c.delta - kindShift(p.lf.kinds[p.pos])
	return p, true
}

func (c *cursor) valid() bool { return c.pos < c.lf.count() }

func (c *cursor) sid() uint64  { return c.lf.sids[c.pos] }
func (c *cursor) kind() uint16 { return c.lf.kinds[c.pos] }
func (c *cursor) val() uint64  { return c.lf.vals[c.pos] }
func (c *cursor) rid() uint64  { return uint64(int64(c.lf.sids[c.pos]) + c.delta) }

// advance moves to the next entry, folding the current entry's shift into
// the running delta. Non-root leaves are never empty, so a leaf-boundary
// climb lands directly on the next entry; with no right sibling anywhere the
// cursor parks at END (pos == count of the last leaf).
func (c *cursor) advance() {
	c.delta += kindShift(c.lf.kinds[c.pos])
	c.pos++
	if c.pos < c.lf.count() {
		return
	}
	d := len(c.stack) - 1
	for ; d >= 0; d-- {
		ent := &c.stack[d]
		if ent.idx+1 < len(ent.in.children) {
			break
		}
	}
	if d < 0 {
		return // END: stay parked past the last entry
	}
	c.stack = c.stack[:d+1]
	c.stack[d].idx++
	var n node = c.stack[d].in.children[c.stack[d].idx]
	for {
		in, ok := n.(*inner)
		if !ok {
			break
		}
		c.stack = append(c.stack, pathEnt{in: in, idx: 0})
		n = in.children[0]
	}
	c.lf = n.(*leaf)
	c.pos = 0
}
