package pdt

// Serialize is the paper's Algorithm 8: given two *aligned* PDTs (both
// relative to the same table snapshot), it rewrites the receiver's positions
// into the RID domain produced by the earlier-committed PDT, making the two
// consecutive — or reports a write-write conflict, in which case the
// committing transaction must abort.
//
// Conflict rules (tuple-level write sets, with per-column reconciliation of
// modifies, matching the paper's CheckModConflict):
//   - both transactions insert a tuple with the same sort key   → conflict
//   - the earlier transaction deleted a tuple this one modifies
//     or deletes                                                → conflict
//   - both modified the same column of the same tuple           → conflict
//   - modifies of different columns of the same tuple reconcile.
//
// The paper's listing advances δ once per pending insert when an insert of
// the committing transaction meets a delete of the committed one (line 24);
// that double-counts the delete when several inserts share the SID, so this
// implementation accounts each delete exactly once, in the catch-up loop.

import (
	"fmt"

	"pdtstore/internal/types"
)

// ConflictError reports a write-write conflict found during Serialize.
type ConflictError struct {
	SID    uint64
	Reason string
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("pdt: serialization conflict at sid %d: %s", e.SID, e.Reason)
}

// Serialize returns a new PDT equal to tx with its SIDs converted to the RID
// domain of ty (an aligned, earlier-committed PDT). tx and ty are not
// modified. A *ConflictError is returned when the transactions conflict.
func (tx *PDT) Serialize(ty *PDT) (*PDT, error) {
	out := New(tx.schema, tx.fanout)
	b := newBulkBuilder(out)
	b.reserve(tx.nEntries)
	cx := tx.newCursorAtStart()
	cy := ty.newCursorAtStart()
	var shift int64

	emit := func(kind uint16, val uint64) {
		b.append(uint64(int64(cx.sid())+shift), kind, val)
		cx.advance()
	}

	for cx.valid() {
		sx := cx.sid()
		for cy.valid() && cy.sid() < sx {
			shift += kindShift(cy.kind())
			cy.advance()
		}
		if !cy.valid() || cy.sid() > sx {
			emit(cx.kind(), cx.val())
			continue
		}
		// Both transactions touch stable position sx.
		kx, ky := cx.kind(), cy.kind()
		switch {
		case ky == KindIns:
			if kx != KindIns {
				// ty's insert precedes the stable tuple tx targets.
				shift++
				cy.advance()
				continue
			}
			cmp := types.CompareRows(
				ty.schema.KeyOf(ty.vals.ins[cy.val()]),
				tx.schema.KeyOf(tx.vals.ins[cx.val()]))
			switch {
			case cmp < 0:
				shift++
				cy.advance()
			case cmp == 0:
				return nil, &ConflictError{sx, "concurrent insert of the same key"}
			default:
				emit(KindIns, cx.val())
			}
		case ky == KindDel:
			if kx != KindIns {
				return nil, &ConflictError{sx, "tuple deleted by concurrent transaction"}
			}
			// An insert never conflicts with the delete; it converts with
			// the shift as of *before* the delete (ghosts share the RID of
			// their successor, so the insert's position is unchanged).
			emit(KindIns, cx.val())
		default: // ky modifies a column of the stable tuple at sx
			switch {
			case kx == KindIns:
				emit(KindIns, cx.val())
			case kx == KindDel:
				return nil, &ConflictError{sx, "delete of a tuple modified by concurrent transaction"}
			case kx == ky:
				return nil, &ConflictError{sx, fmt.Sprintf("both transactions modified column %d", kx)}
			case ky < kx:
				// Modify runs are column-ordered: ty's column is smaller
				// than every remaining tx modify of this tuple — no
				// conflict possible with it.
				cy.advance()
			default:
				// kx < ky: tx's modify cannot match any remaining ty modify.
				emit(kx, cx.val())
			}
		}
	}
	b.finish()
	out.vals = tx.vals.clone()
	out.deadIns = tx.deadIns
	return out, nil
}
