package pdt

// Serialize is the paper's Algorithm 8: given two *aligned* PDTs (both
// relative to the same table snapshot), it rewrites the receiver's positions
// into the RID domain produced by the earlier-committed PDT, making the two
// consecutive — or reports a write-write conflict, in which case the
// committing transaction must abort.
//
// Conflict rules (tuple-level write sets, with per-column reconciliation of
// modifies, matching the paper's CheckModConflict):
//   - both transactions insert a tuple with the same sort key   → conflict
//   - the earlier transaction deleted a tuple this one modifies
//     or deletes                                                → conflict
//   - both modified the same column of the same tuple           → conflict
//   - modifies of different columns of the same tuple reconcile.
//
// The paper's listing advances δ once per pending insert when an insert of
// the committing transaction meets a delete of the committed one (line 24);
// that double-counts the delete when several inserts share the SID, so this
// implementation accounts each delete exactly once, in the catch-up loop.
//
// SerializeChain generalizes Serialize to a whole stack of overlapping
// committed transactions: instead of materializing an intermediate PDT per
// layer (k tree rebuilds and payload clones for k overlaps), it threads each
// entry's position through every layer's cursor in one sweep and builds a
// single output. Serialize never consumes an entry of the committing
// transaction — each input entry maps to exactly one output entry with its
// kind and payload unchanged, only the SID shifted — which is what makes the
// per-layer cascade equivalent to running Serialize k times.

import (
	"fmt"

	"pdtstore/internal/types"
)

// ConflictError reports a write-write conflict found during Serialize.
type ConflictError struct {
	SID    uint64
	Reason string
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("pdt: serialization conflict at sid %d: %s", e.SID, e.Reason)
}

// Serialize returns a new PDT equal to tx with its SIDs converted to the RID
// domain of ty (an aligned, earlier-committed PDT). tx and ty are not
// modified. A *ConflictError is returned when the transactions conflict.
func (tx *PDT) Serialize(ty *PDT) (*PDT, error) {
	return tx.SerializeChain([]*PDT{ty})
}

// serLayer is one committed transaction's cursor state inside a
// SerializeChain sweep: the running shift is the net RID displacement of
// every layer entry already passed, i.e. Algorithm 8's δ for this layer.
type serLayer struct {
	ty    *PDT
	cy    cursor
	shift int64
}

// step converts sid — the committing entry's position expressed in this
// layer's input domain — into the layer's output domain, advancing the
// layer's cursor past entries at smaller positions and resolving the
// Algorithm 8 cases against entries at the same position. cx names the
// committing entry (kind and, for inserts, payload key). The layer's cursor
// only ever moves forward: converted positions arrive in non-decreasing
// order because serialization preserves entry order.
func (s *serLayer) step(tx *PDT, cx *cursor, sid uint64) (uint64, error) {
	ty := s.ty
	cy := &s.cy
	for cy.valid() && cy.sid() < sid {
		s.shift += kindShift(cy.kind())
		cy.advance()
	}
	for {
		if !cy.valid() || cy.sid() > sid {
			return uint64(int64(sid) + s.shift), nil
		}
		kx, ky := cx.kind(), cy.kind()
		switch {
		case ky == KindIns:
			if kx != KindIns {
				// ty's insert precedes the stable tuple tx targets.
				s.shift++
				cy.advance()
				continue
			}
			cmp := types.CompareRows(
				ty.schema.KeyOf(ty.vals.ins[cy.val()]),
				tx.schema.KeyOf(tx.vals.ins[cx.val()]))
			switch {
			case cmp < 0:
				s.shift++
				cy.advance()
				continue
			case cmp == 0:
				return 0, &ConflictError{sid, "concurrent insert of the same key"}
			default:
				return uint64(int64(sid) + s.shift), nil
			}
		case ky == KindDel:
			if kx != KindIns {
				return 0, &ConflictError{sid, "tuple deleted by concurrent transaction"}
			}
			// An insert never conflicts with the delete; it converts with
			// the shift as of *before* the delete (ghosts share the RID of
			// their successor, so the insert's position is unchanged). The
			// delete is not consumed: later entries account it in catch-up.
			return uint64(int64(sid) + s.shift), nil
		default: // ky modifies a column of the stable tuple at sid
			switch {
			case kx == KindIns:
				return uint64(int64(sid) + s.shift), nil
			case kx == KindDel:
				return 0, &ConflictError{sid, "delete of a tuple modified by concurrent transaction"}
			case kx == ky:
				return 0, &ConflictError{sid, fmt.Sprintf("both transactions modified column %d", kx)}
			case ky < kx:
				// Modify runs are column-ordered: ty's column is smaller
				// than every remaining tx modify of this tuple — no
				// conflict possible with it.
				cy.advance()
				continue
			default:
				// kx < ky: tx's modify cannot match any remaining ty modify.
				return uint64(int64(sid) + s.shift), nil
			}
		}
	}
}

// SerializeChain returns a new PDT equal to tx with its SIDs converted
// through the RID domains of every PDT in chain, oldest first — equivalent
// to tx.Serialize(chain[0]).Serialize(chain[1])… but with one output build
// and one payload clone regardless of chain length. None of the inputs is
// modified. A *ConflictError is returned when the transactions conflict
// (with several conflicts present, which one is reported may differ from the
// sequential composition; any conflict aborts the commit either way).
func (tx *PDT) SerializeChain(chain []*PDT) (*PDT, error) {
	out := New(tx.schema, tx.fanout)
	b := newBulkBuilder(out)
	b.reserve(tx.nEntries)
	layers := make([]serLayer, len(chain))
	for i, ty := range chain {
		layers[i] = serLayer{ty: ty, cy: ty.newCursorAtStart()}
	}
	for cx := tx.newCursorAtStart(); cx.valid(); cx.advance() {
		sid := cx.sid()
		var err error
		for i := range layers {
			sid, err = layers[i].step(tx, &cx, sid)
			if err != nil {
				return nil, err
			}
		}
		b.append(sid, cx.kind(), cx.val())
	}
	b.finish()
	out.vals = tx.vals.clone()
	out.deadIns = tx.deadIns
	return out, nil
}
