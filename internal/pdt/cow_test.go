package pdt

// Differential tests for the copy-on-write snapshot scheme: a Snapshot taken
// at any point must behave exactly like the old deep Copy — frozen at the
// moment it was taken, unaffected by any later mutation of the live tree (and
// vice versa: mutating a fork must never leak into the tree it forked from).

import (
	"math/rand"
	"testing"

	"pdtstore/internal/types"
)

func cowSchema() *types.Schema {
	return types.MustSchema([]types.Column{
		{Name: "k", Kind: types.Int64},
		{Name: "a", Kind: types.Int64},
		{Name: "b", Kind: types.Int64},
	}, []int{0})
}

// sameEntries compares two PDTs entry by entry: positions, kinds, and payload
// values must match. Value-space offsets may differ (FoldSnap and Snapshot
// reallocate payload tables), so only logical content is compared.
func sameEntries(t *testing.T, label string, got, want *PDT) {
	t.Helper()
	a, b := got.Dump(), want.Dump()
	if len(a) != len(b) {
		t.Fatalf("%s: %d entries, want %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i].SID != b[i].SID || a[i].Kind != b[i].Kind {
			t.Fatalf("%s: entry %d = (%d,%d), want (%d,%d)", label, i, a[i].SID, a[i].Kind, b[i].SID, b[i].Kind)
		}
		switch a[i].Kind {
		case KindIns:
			if types.CompareRows(a[i].Ins, b[i].Ins) != 0 {
				t.Fatalf("%s: entry %d insert row %v, want %v", label, i, a[i].Ins, b[i].Ins)
			}
		case KindDel:
			if types.CompareRows(a[i].Del, b[i].Del) != 0 {
				t.Fatalf("%s: entry %d ghost key %v, want %v", label, i, a[i].Del, b[i].Del)
			}
		default:
			if types.Compare(a[i].Mod, b[i].Mod) != 0 {
				t.Fatalf("%s: entry %d mod value %v, want %v", label, i, a[i].Mod, b[i].Mod)
			}
		}
	}
}

// randomMutation applies one random update to p, whose visible row count is
// *visible; keys are drawn from a dense counter so inserts never collide.
func randomMutation(t *testing.T, rng *rand.Rand, p *PDT, visible *int64, nextKey *int64) {
	t.Helper()
	switch op := rng.Intn(10); {
	case op < 5 || *visible == 0: // insert
		rid := uint64(rng.Int63n(*visible + 1))
		*nextKey++
		if err := p.Insert(rid, types.Row{types.Int(*nextKey), types.Int(rng.Int63n(100)), types.Int(0)}); err != nil {
			t.Fatal(err)
		}
		*visible++
	case op < 8: // modify a visible tuple
		rid := uint64(rng.Int63n(*visible))
		col := 1 + rng.Intn(2)
		if err := p.Modify(rid, col, types.Int(rng.Int63n(1000))); err != nil {
			t.Fatal(err)
		}
	default: // delete a visible tuple
		rid := uint64(rng.Int63n(*visible))
		// The ghost key is required; use a synthetic key — the PDT does not
		// check it against the (absent) stable image.
		if err := p.Delete(rid, types.Row{types.Int(rng.Int63n(1 << 30))}); err != nil {
			t.Fatal(err)
		}
		*visible--
	}
}

// TestSnapshotDifferential interleaves random mutations with Snapshot and
// Copy calls: every snapshot must stay identical to the deep copy taken at
// the same instant, no matter how the live tree mutates afterwards.
func TestSnapshotDifferential(t *testing.T) {
	schema := cowSchema()
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := New(schema, 0)
		visible := int64(1000)
		nextKey := int64(1 << 30)

		type pair struct {
			snap, copy *PDT
			at         int
		}
		var pairs []pair
		const steps = 400
		for i := 0; i < steps; i++ {
			randomMutation(t, rng, p, &visible, &nextKey)
			if rng.Intn(25) == 0 {
				pairs = append(pairs, pair{snap: p.Snapshot(), copy: p.Copy(), at: i})
			}
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: live tree invalid: %v", seed, err)
		}
		for _, pr := range pairs {
			if err := pr.snap.Validate(); err != nil {
				t.Fatalf("seed %d: snapshot at step %d invalid: %v", seed, pr.at, err)
			}
			sameEntries(t, "snapshot vs deep copy", pr.snap, pr.copy)
		}
	}
}

// TestSnapshotMutateFork checks isolation in the other direction: mutating a
// snapshot (as FoldSnap does when it forks the Read-PDT) must never change
// the tree it was taken from.
func TestSnapshotMutateFork(t *testing.T) {
	schema := cowSchema()
	for seed := int64(100); seed < 104; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := New(schema, 0)
		visible := int64(500)
		nextKey := int64(1 << 30)
		for i := 0; i < 200; i++ {
			randomMutation(t, rng, p, &visible, &nextKey)
		}
		frozen := p.Copy() // reference for p's state
		snap := p.Snapshot()

		// Mutate the snapshot heavily; p must not move.
		snapVisible, snapKey := visible, nextKey+1<<20
		for i := 0; i < 200; i++ {
			randomMutation(t, rng, snap, &snapVisible, &snapKey)
		}
		if err := snap.Validate(); err != nil {
			t.Fatalf("seed %d: mutated snapshot invalid: %v", seed, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: base invalid after snapshot mutation: %v", seed, err)
		}
		sameEntries(t, "base after snapshot mutation", p, frozen)

		// And the other way: mutate p, the (already diverged) snapshot's
		// content must not move either.
		snapRef := snap.Copy()
		for i := 0; i < 200; i++ {
			randomMutation(t, rng, p, &visible, &nextKey)
		}
		sameEntries(t, "snapshot after base mutation", snap, snapRef)
	}
}

// TestFoldSnapDifferential checks the adaptive fold against the bulk fold on
// random inputs spanning both sides of the cutover ratio.
func TestFoldSnapDifferential(t *testing.T) {
	schema := cowSchema()
	for seed := int64(200); seed < 208; seed++ {
		rng := rand.New(rand.NewSource(seed))
		base := New(schema, 0)
		visible := int64(2000)
		nextKey := int64(1 << 30)
		for i := 0; i < 300; i++ {
			randomMutation(t, rng, base, &visible, &nextKey)
		}
		// w sizes from tiny (entrywise path) to large (bulk fallback).
		wSteps := []int{1, 5, 60, 500}[seed%4]
		w := New(schema, 0)
		wVisible, wKey := visible, nextKey+1<<20
		for i := 0; i < wSteps; i++ {
			randomMutation(t, rng, w, &wVisible, &wKey)
		}

		baseRef := base.Copy()
		wRef := w.Copy()
		got, err := FoldSnap(base, w)
		if err != nil {
			t.Fatalf("seed %d: FoldSnap: %v", seed, err)
		}
		want, err := Fold(baseRef, wRef)
		if err != nil {
			t.Fatalf("seed %d: Fold: %v", seed, err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("seed %d: FoldSnap output invalid: %v", seed, err)
		}
		sameEntries(t, "FoldSnap vs Fold", got, want)
		// Both inputs must be untouched.
		sameEntries(t, "fold base preserved", base, baseRef)
		sameEntries(t, "fold layer preserved", w, wRef)
	}
}
