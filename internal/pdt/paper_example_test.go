package pdt

// The paper's running example (Figures 1-13) as a golden test: the inventory
// table receives three update batches and the test checks both the visible
// table image after each batch and the exact PDT entry layout of Figure 11.

import (
	"testing"

	"pdtstore/internal/types"
)

func TestPaperRunningExample(t *testing.T) {
	schema := inventorySchema()
	stable := table0() // Figure 1
	p := New(schema, 0)
	ref := newRefModel(schema, stable)

	// BATCH1 (Figure 2): three inserts, all landing before (London,chair).
	applyInsert(t, p, ref, inv("Berlin", "table", true, 10))
	applyInsert(t, p, ref, inv("Berlin", "cloth", true, 5))
	applyInsert(t, p, ref, inv("Berlin", "chair", true, 20))

	// TABLE1 (Figure 5): visible image after the inserts.
	table1 := []types.Row{
		inv("Berlin", "chair", true, 20),
		inv("Berlin", "cloth", true, 5),
		inv("Berlin", "table", true, 10),
		inv("London", "chair", false, 30),
		inv("London", "stool", false, 10),
		inv("London", "table", false, 20),
		inv("Paris", "rug", false, 1),
		inv("Paris", "stool", false, 5),
	}
	checkVisible(t, p, stable, table1, "TABLE1")
	for _, e := range p.Entries() {
		if e.SID != 0 || !e.IsInsert() {
			t.Fatalf("PDT1 entry not an insert at SID 0: %+v", e)
		}
	}

	// BATCH2 (Figure 6): two modifies and two deletes.
	// UPDATE qty=1 WHERE (Berlin,cloth): rid 1, in-place on the insert.
	applyModify(t, p, ref, 1, 3, types.Int(1))
	// UPDATE qty=9 WHERE (London,stool): rid 4.
	applyModify(t, p, ref, 4, 3, types.Int(9))
	// DELETE (Berlin,table): rid 2, removes the insert outright.
	applyDelete(t, p, ref, 2)
	// DELETE (Paris,rug): rid 5 after the shift, becomes a ghost.
	applyDelete(t, p, ref, 5)

	// TABLE2 (Figure 9): visible image (the greyed ghost is not visible).
	table2 := []types.Row{
		inv("Berlin", "chair", true, 20),
		inv("Berlin", "cloth", true, 1),
		inv("London", "chair", false, 30),
		inv("London", "stool", false, 9),
		inv("London", "table", false, 20),
		inv("Paris", "stool", false, 5),
	}
	checkVisible(t, p, stable, table2, "TABLE2")

	// PDT2 (Figure 7): entries are INS(i2), INS(i1), MOD qty(q0), DEL(d0).
	es := p.Entries()
	if len(es) != 4 {
		t.Fatalf("PDT2 has %d entries, want 4: %s", len(es), p)
	}
	expect2 := []struct {
		sid  uint64
		kind uint16
	}{
		{0, KindIns}, {0, KindIns}, {1, 3 /* qty */}, {3, KindDel},
	}
	for i, w := range expect2 {
		if es[i].SID != w.sid || es[i].Kind != w.kind {
			t.Fatalf("PDT2 entry %d = %+v, want sid=%d kind=%d", i, es[i], w.sid, w.kind)
		}
	}
	if got := p.EntryTuple(es[3]); got[0].S != "Paris" || got[1].S != "rug" {
		t.Fatalf("ghost key = %v, want (Paris,rug)", got)
	}

	// BATCH3 (Figure 10): three more inserts, one of them between a ghost
	// and its predecessor.
	applyInsert(t, p, ref, inv("Paris", "rack", true, 4))
	applyInsert(t, p, ref, inv("London", "rack", true, 4))
	applyInsert(t, p, ref, inv("Berlin", "rack", true, 4))

	// TABLE3 (Figure 13) visible image. (The paper's figure has a typo in
	// the last row — (Paris,stool) was never updated and keeps N/5.)
	table3 := []types.Row{
		inv("Berlin", "chair", true, 20),
		inv("Berlin", "cloth", true, 1),
		inv("Berlin", "rack", true, 4),
		inv("London", "chair", false, 30),
		inv("London", "rack", true, 4),
		inv("London", "stool", false, 9),
		inv("London", "table", false, 20),
		inv("Paris", "rack", true, 4),
		inv("Paris", "stool", false, 5),
	}
	checkVisible(t, p, stable, table3, "TABLE3")

	// PDT3 (Figure 11): exact (SID, RID, kind) layout, left-to-right.
	es = p.Entries()
	expect3 := []struct {
		sid, rid uint64
		kind     uint16
		prod     string // inserted product, for insert entries
	}{
		{0, 0, KindIns, "chair"}, // i2
		{0, 1, KindIns, "cloth"}, // i1
		{0, 2, KindIns, "rack"},  // i4
		{1, 4, KindIns, "rack"},  // i3 (London,rack)
		{1, 5, 3, ""},            // q0: qty of (London,stool)
		{3, 7, KindIns, "rack"},  // i0 (Paris,rack)
		{3, 8, KindDel, ""},      // d0: ghost (Paris,rug)
	}
	if len(es) != len(expect3) {
		t.Fatalf("PDT3 has %d entries, want %d: %s", len(es), len(expect3), p)
	}
	for i, w := range expect3 {
		e := es[i]
		if e.SID != w.sid || e.RID != w.rid || e.Kind != w.kind {
			t.Fatalf("PDT3 entry %d = %+v, want sid=%d rid=%d kind=%d", i, e, w.sid, w.rid, w.kind)
		}
		if w.prod != "" && p.EntryTuple(e)[1].S != w.prod {
			t.Fatalf("PDT3 entry %d inserts %v, want prod %q", i, p.EntryTuple(e), w.prod)
		}
	}

	// The ghost (Paris,rug) keeps the sparse index valid: its SID-3 slot
	// still bounds keys <= (Paris,rug), and (Paris,rack) received SID 3.
	if es[5].SID != 3 {
		t.Fatal("(Paris,rack) must receive the ghost-respecting SID 3")
	}

	// Modify of a value modified earlier: qty of (London,stool) 9 -> 11,
	// in place (Figure's q0 slot rewritten).
	applyModify(t, p, ref, 5, 3, types.Int(11))
	if p.Count() != 7 {
		t.Fatalf("in-place remodify grew PDT to %d entries", p.Count())
	}
	checkAgainstRef(t, p, stable, ref)
}

// checkVisible asserts the merged visible image equals want.
func checkVisible(t *testing.T, p *PDT, stable, want []types.Row, label string) {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("%s: invariant violation: %v\n%s", label, err, p)
	}
	out := mergeAll(t, p, stable)
	if out.Len() != len(want) {
		t.Fatalf("%s: %d visible rows, want %d\n%s", label, out.Len(), len(want), p)
	}
	for i, w := range want {
		if types.CompareRows(out.Row(i), w) != 0 {
			t.Fatalf("%s row %d = %v, want %v\n%s", label, i, out.Row(i), w, p)
		}
	}
}
