package pdt

// RowMerge is the paper's Algorithm 2 in its literal tuple-at-a-time form: a
// next() method that passes stable tuples through until the skip counter
// reaches the next update position, then applies the update blindly. The
// block-wise MergeScan supersedes it on the query path; this operator exists
// for fidelity, for tests (the two must agree exactly), and as the readable
// reference for how positional merging works.

import (
	"fmt"

	"pdtstore/internal/types"
)

// RowSource supplies stable tuples one at a time, in SID order.
type RowSource interface {
	// NextRow returns the next stable tuple, or ok=false at end of input.
	NextRow() (row types.Row, ok bool)
}

// RowMerge merges a stable row stream with a PDT, yielding visible tuples
// and their RIDs.
type RowMerge struct {
	t    *PDT
	scan RowSource
	cur  cursor
	rid  uint64
	sid  uint64 // SID of the next stable tuple the source will yield
}

// NewRowMerge positions the merge at startSID of the stable image; the
// source must yield exactly the stable tuples from startSID onward.
func NewRowMerge(t *PDT, scan RowSource, startSID uint64) *RowMerge {
	cur := t.newCursorAtSid(startSID)
	return &RowMerge{
		t:    t,
		scan: scan,
		cur:  cur,
		rid:  uint64(int64(startSID) + cur.delta),
		sid:  startSID,
	}
}

// Next returns the next visible tuple and its RID; ok=false at the end.
// This is Algorithm 2's next() with the skip counter expressed as the
// SID distance to the cursor's entry.
func (m *RowMerge) Next() (row types.Row, rid uint64, ok bool, err error) {
	for {
		if !m.cur.valid() {
			// No more updates: pure pass-through.
			tuple, more := m.scan.NextRow()
			if !more {
				return nil, 0, false, nil
			}
			m.sid++
			out := m.rid
			m.rid++
			return tuple, out, true, nil
		}
		switch usid := m.cur.sid(); {
		case usid > m.sid:
			// skip > 0: the update is further ahead; pass one tuple through.
			tuple, more := m.scan.NextRow()
			if !more {
				return nil, 0, false, nil
			}
			m.sid++
			out := m.rid
			m.rid++
			return tuple, out, true, nil
		case usid < m.sid:
			return nil, 0, false, fmt.Errorf("pdt: row merge cursor behind scan")
		default:
			switch kind := m.cur.kind(); kind {
			case KindIns:
				tuple := m.t.vals.ins[m.cur.val()].Clone()
				m.cur.advance()
				out := m.rid
				m.rid++
				return tuple, out, true, nil
			case KindDel:
				// delete: do not return the current tuple
				if _, more := m.scan.NextRow(); !more {
					return nil, 0, false, nil
				}
				m.sid++
				m.cur.advance()
			default:
				// modify run: apply every modified column of this tuple
				tuple, more := m.scan.NextRow()
				if !more {
					return nil, 0, false, nil
				}
				tuple = tuple.Clone()
				for m.cur.valid() && m.cur.sid() == usid {
					k := m.cur.kind()
					if k == KindIns || k == KindDel {
						return nil, 0, false, fmt.Errorf("pdt: malformed chain at sid %d", usid)
					}
					tuple[k] = m.t.vals.mods[k][m.cur.val()]
					m.cur.advance()
				}
				m.sid++
				out := m.rid
				m.rid++
				return tuple, out, true, nil
			}
		}
	}
}
