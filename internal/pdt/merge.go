package pdt

// MergeScan merges a stable-image scan with the updates in a PDT, purely by
// position (the paper's Algorithm 2, in its block-oriented form: runs of
// tuples between updates are copied through wholesale, and the sort key is
// never read unless the query itself projects it).
//
// A MergeScan is itself a BatchSource, so stacked PDTs (Read/Write/Trans)
// merge by chaining MergeScans: each layer's SIDs are the RIDs produced by
// the layer below.

import (
	"fmt"

	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

// BatchSource produces rows in position order, up to max per call, appending
// to out's vectors; it returns 0 when exhausted. colstore.Scanner and
// MergeScan both implement it.
type BatchSource interface {
	Next(out *vector.Batch, max int) (int, error)
}

// SizeHinter is optionally implemented by batch sources that can estimate how
// many rows remain; sinks use the hint to pre-size output batches. The hint
// is advisory — it may be off for merged sources whose deltas overlap the
// remaining range.
type SizeHinter interface {
	SizeHint() int
}

// MergeScan applies one PDT layer on top of a positional row source.
type MergeScan struct {
	t     *PDT
	src   BatchSource
	cols  []int // schema column indexes present in the batches, in order
	proj  []int // schema column -> batch index, -1 if not projected
	kinds []types.Kind

	cur        cursor
	nextSID    uint64 // SID of the next stable row to consume from src
	rid        uint64 // RID of the next row to emit
	startRID   uint64
	includeEnd bool

	buf     *vector.Batch
	bufPos  int
	want    int // rows per staging refill: the consumer's batch size
	srcDone bool
	done    bool
}

// NewMergeScan builds a merge over src, which must produce the given schema
// columns for consecutive positions starting at startSID. includeEnd also
// emits inserts that land exactly at the position where the source ends
// (wanted by key-range scans, whose qualifying inserts may sit just past the
// last stable row of the range, and by full scans for appends at the table
// end).
func NewMergeScan(t *PDT, src BatchSource, cols []int, startSID uint64, includeEnd bool) *MergeScan {
	proj := make([]int, t.schema.NumCols())
	for i := range proj {
		proj[i] = -1
	}
	kinds := make([]types.Kind, len(cols))
	for i, c := range cols {
		proj[c] = i
		kinds[i] = t.schema.Cols[c].Kind
	}
	cur := t.newCursorAtSid(startSID)
	rid := uint64(int64(startSID) + cur.delta)
	return &MergeScan{
		t:          t,
		src:        src,
		cols:       append([]int(nil), cols...),
		proj:       proj,
		kinds:      kinds,
		cur:        cur,
		nextSID:    startSID,
		rid:        rid,
		startRID:   rid,
		includeEnd: includeEnd,
	}
}

// StartRID returns the RID of the first row this merge will emit — the
// startSID for a further stacked layer.
func (m *MergeScan) StartRID() uint64 { return m.startRID }

// SizeHint estimates the remaining row count: the source's remainder adjusted
// by the PDT's net delta (advisory; see SizeHinter).
func (m *MergeScan) SizeHint() int {
	h, ok := m.src.(SizeHinter)
	if !ok {
		return -1
	}
	n := h.SizeHint()
	if n < 0 {
		return -1
	}
	if n += int(m.t.Delta()); n < 0 {
		n = 0
	}
	return n
}

// refill tops up the staging buffer; reports whether rows are available. The
// refill granularity is the consumer's batch size, not a fixed buffer width:
// a point probe reading 16 rows pulls 16 rows through every stacked layer
// instead of materializing a full-width batch per layer, and the buffer
// itself is allocated on first use at that size.
func (m *MergeScan) refill() (bool, error) {
	if m.buf != nil && m.bufPos < m.buf.Len() {
		return true, nil
	}
	if m.srcDone {
		return false, nil
	}
	if m.buf == nil {
		m.buf = vector.NewBatch(m.kinds, m.want)
	}
	m.buf.Reset()
	m.bufPos = 0
	n, err := m.src.Next(m.buf, m.want)
	if err != nil {
		return false, err
	}
	if n == 0 {
		m.srcDone = true
		return false, nil
	}
	return true, nil
}

// copyStable passes through up to n stable rows, returning how many.
func (m *MergeScan) copyStable(out *vector.Batch, n int) (int, error) {
	copied := 0
	for copied < n {
		ok, err := m.refill()
		if err != nil {
			return copied, err
		}
		if !ok {
			break
		}
		avail := m.buf.Len() - m.bufPos
		take := n - copied
		if take > avail {
			take = avail
		}
		for i := range m.cols {
			out.Vecs[i].AppendRange(m.buf.Vecs[i], m.bufPos, m.bufPos+take)
		}
		for k := 0; k < take; k++ {
			out.Rids = append(out.Rids, m.rid)
			m.rid++
		}
		m.bufPos += take
		m.nextSID += uint64(take)
		copied += take
	}
	return copied, nil
}

// skipStable consumes one stable row without emitting it (a delete).
func (m *MergeScan) skipStable() (bool, error) {
	ok, err := m.refill()
	if err != nil || !ok {
		return false, err
	}
	m.bufPos++
	m.nextSID++
	return true, nil
}

// Next emits up to max merged rows into out, returning the count; 0 means
// the scan is complete. out must have one vector per projected column, in
// column order, plus the Rids slice, which Next always fills.
func (m *MergeScan) Next(out *vector.Batch, max int) (int, error) {
	if m.done {
		return 0, nil
	}
	if max > m.want {
		m.want = max
	}
	produced := 0
	for produced < max {
		if !m.cur.valid() {
			n, err := m.copyStable(out, max-produced)
			if err != nil {
				return produced, err
			}
			if n == 0 {
				m.done = true
				break
			}
			produced += n
			continue
		}
		usid := m.cur.sid()
		if usid > m.nextSID {
			// Run of unmodified tuples before the next update: pass through.
			run := usid - m.nextSID
			want := max - produced
			if uint64(want) > run {
				want = int(run)
			}
			n, err := m.copyStable(out, want)
			if err != nil {
				return produced, err
			}
			if n == 0 {
				// Stable range ended before the next update applies: only
				// trailing inserts at the boundary may still qualify, and
				// this update is beyond it.
				m.done = true
				break
			}
			produced += n
			continue
		}
		if usid < m.nextSID {
			return produced, fmt.Errorf("pdt: merge cursor behind scan (entry sid %d, scan at %d)", usid, m.nextSID)
		}
		switch kind := m.cur.kind(); kind {
		case KindIns:
			// The insert may land exactly at the end of the stable range;
			// peek whether a stable row remains to decide includeEnd.
			ok, err := m.refill()
			if err != nil {
				return produced, err
			}
			if !ok && !m.includeEnd {
				m.done = true
				return produced, nil
			}
			tuple := m.t.vals.ins[m.cur.val()]
			for i, c := range m.cols {
				out.Vecs[i].Append(tuple[c])
			}
			out.Rids = append(out.Rids, m.rid)
			m.rid++
			produced++
			m.cur.advance()
		case KindDel:
			ok, err := m.skipStable()
			if err != nil {
				return produced, err
			}
			if !ok {
				m.done = true
				return produced, nil
			}
			m.cur.advance()
		default:
			// Modify run for the stable tuple at nextSID: emit it with all
			// its modified columns patched.
			n, err := m.copyStable(out, 1)
			if err != nil {
				return produced, err
			}
			if n == 0 {
				m.done = true
				return produced, nil
			}
			rowIdx := out.Len() - 1
			modSID := usid
			for m.cur.valid() && m.cur.sid() == modSID {
				k := m.cur.kind()
				if k == KindIns || k == KindDel {
					return produced, fmt.Errorf("pdt: malformed chain at sid %d", modSID)
				}
				if bi := m.proj[int(k)]; bi >= 0 {
					out.Vecs[bi].Set(rowIdx, m.t.vals.mods[k][m.cur.val()])
				}
				m.cur.advance()
			}
			produced++
		}
	}
	return produced, nil
}

// ScanAll is a convenience for tests and examples: it drains a BatchSource
// into a single batch.
func ScanAll(src BatchSource, kinds []types.Kind) (*vector.Batch, error) {
	out := vector.NewBatch(kinds, 1024)
	for {
		n, err := src.Next(out, 1024)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
	}
}
