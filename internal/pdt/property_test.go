package pdt

// Randomized equivalence tests: a PDT driven by arbitrary update sequences
// must always agree with the naive row-slice reference model, and must pass
// the full invariant audit after every mutation.

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"pdtstore/internal/types"
)

// opKind enumerates random operations.
type opKind int

const (
	opInsert opKind = iota
	opDelete
	opModify
)

// randomOps drives n random updates against both p and ref, validating after
// each. keys are int64; schema is intSchema (k, a, b) sorted on k.
func randomOps(t *testing.T, rng *rand.Rand, p *PDT, ref *refModel, n int, validateEach bool) {
	t.Helper()
	usedKeys := map[int64]bool{}
	for _, r := range ref.rows {
		usedKeys[r[0].I] = true
	}
	for i := 0; i < n; i++ {
		op := opKind(rng.Intn(3))
		if len(ref.rows) == 0 {
			op = opInsert
		}
		switch op {
		case opInsert:
			var key int64
			for {
				key = int64(rng.Intn(10 * (n + 10)))
				if !usedKeys[key] {
					break
				}
			}
			usedKeys[key] = true
			row := types.Row{types.Int(key), types.Int(int64(i)), types.Str(fmt.Sprintf("v%d", i))}
			applyInsert(t, p, ref, row)
		case opDelete:
			rid := rng.Intn(len(ref.rows))
			delete(usedKeys, ref.rows[rid][0].I)
			applyDelete(t, p, ref, rid)
		case opModify:
			rid := rng.Intn(len(ref.rows))
			col := 1 + rng.Intn(2)
			var v types.Value
			if col == 1 {
				v = types.Int(int64(rng.Intn(1000)))
			} else {
				v = types.Str(fmt.Sprintf("m%d", rng.Intn(100)))
			}
			applyModify(t, p, ref, rid, col, v)
		}
		if validateEach {
			if err := p.Validate(); err != nil {
				t.Fatalf("after op %d: %v\n%s", i, err, p)
			}
		}
	}
}

func TestRandomizedAgainstReference(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			schema := intSchema()
			stable := buildIntTable(40)
			// scale stable keys to spread: buildIntTable gives keys 10..400
			p := New(schema, 4)
			ref := newRefModel(schema, stable)
			randomOps(t, rng, p, ref, 300, true)
			checkAgainstRef(t, p, stable, ref)
		})
	}
}

func TestRandomizedLargeBatchSparseValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	schema := intSchema()
	stable := buildIntTable(200)
	p := New(schema, DefaultFanout)
	ref := newRefModel(schema, stable)
	randomOps(t, rng, p, ref, 3000, false)
	checkAgainstRef(t, p, stable, ref)
}

func TestQuickSIDRIDUniqueness(t *testing.T) {
	// Theorem 1: after arbitrary updates, no two non-modify entries share
	// (SID,RID), SIDs and RIDs are separately non-decreasing, and for every
	// visible tuple RID = SID + delta-before holds (checked via merge).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		schema := intSchema()
		stable := buildIntTable(20)
		p := New(schema, 4)
		ref := newRefModel(schema, stable)
		randomOps(t, rng, p, ref, 120, false)
		if err := p.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		es := p.Entries()
		for i := 1; i < len(es); i++ {
			if es[i].SID < es[i-1].SID || es[i].RID < es[i-1].RID {
				return false
			}
			if es[i].SID == es[i-1].SID && es[i].RID == es[i-1].RID {
				// only modify entries of distinct columns may collide
				if es[i].ModColumn() < 0 || es[i-1].ModColumn() < 0 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMergeMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		schema := intSchema()
		stable := buildIntTable(30)
		p := New(schema, 3+rng.Intn(6))
		ref := newRefModel(schema, stable)
		randomOps(t, rng, p, ref, 150, false)
		out := mergeAll(t, p, stable)
		if out.Len() != len(ref.rows) {
			return false
		}
		for i := range ref.rows {
			if types.CompareRows(out.Row(i), ref.rows[i]) != 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSidToRidConsistency(t *testing.T) {
	// For every stable SID, SidToRid must point at the merged position of
	// that tuple (or, for ghosts, of its successor).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		schema := intSchema()
		stable := buildIntTable(25)
		p := New(schema, 4)
		ref := newRefModel(schema, stable)
		randomOps(t, rng, p, ref, 100, false)

		// Build key -> merged rid map from the reference.
		ridOf := map[int64]int{}
		for i, r := range ref.rows {
			ridOf[r[0].I] = i
		}
		for sid, srow := range stable {
			rid, ghost := p.SidToRid(uint64(sid))
			want, alive := ridOf[srow[0].I]
			// A key may be deleted and re-inserted; re-insertion makes it
			// alive again but as a *new* tuple, so only check non-ghosts
			// whose identity is unambiguous.
			if !ghost {
				if !alive || int(rid) != want {
					return false
				}
			} else if alive {
				// ghost whose key was re-inserted: the re-inserted copy can
				// be anywhere; just check rid is within bounds.
				if int(rid) > len(ref.rows) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickCopyEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		schema := intSchema()
		stable := buildIntTable(15)
		p := New(schema, 4)
		ref := newRefModel(schema, stable)
		randomOps(t, rng, p, ref, 80, false)
		cp := p.Copy()
		if err := cp.Validate(); err != nil {
			return false
		}
		a, b := p.Entries(), cp.Entries()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDeleteReinsertSameKey(t *testing.T) {
	// Deleting a stable tuple and re-inserting the same key must work: the
	// new insert ties with the ghost and lands beside it.
	schema := intSchema()
	stable := buildIntTable(5) // keys 10..50
	p := New(schema, 4)
	ref := newRefModel(schema, stable)
	applyDelete(t, p, ref, 2) // key 30
	applyInsert(t, p, ref, types.Row{types.Int(30), types.Int(99), types.Str("re")})
	checkAgainstRef(t, p, stable, ref)
	// And delete it again.
	applyDelete(t, p, ref, 2)
	checkAgainstRef(t, p, stable, ref)
}

func TestManyGhostsThenInsertsBetween(t *testing.T) {
	// Delete a run of stable tuples, then insert keys that interleave with
	// the ghosts: SKRidToSid must order each insert among the ghosts.
	schema := intSchema()
	stable := buildIntTable(10) // keys 10..100
	p := New(schema, 4)
	ref := newRefModel(schema, stable)
	for i := 0; i < 4; i++ { // delete keys 30,40,50,60 (rid 2 four times)
		applyDelete(t, p, ref, 2)
	}
	for _, k := range []int64{45, 35, 55, 31, 59} {
		applyInsert(t, p, ref, types.Row{types.Int(k), types.Int(k), types.Str("g")})
	}
	checkAgainstRef(t, p, stable, ref)
	// Inserted keys must carry ghost-respecting SIDs: 31,35 before ghost 40
	// (SID 3), 45 before ghost 50 (SID 4), 55,59 before ghost 60 (SID 5).
	wantSID := map[int64]uint64{31: 3, 35: 3, 45: 4, 55: 5, 59: 5}
	for _, e := range p.Entries() {
		if e.IsInsert() {
			k := p.EntryTuple(e)[0].I
			if e.SID != wantSID[k] {
				t.Errorf("insert key %d got SID %d, want %d", k, e.SID, wantSID[k])
			}
		}
	}
}
