package pdt

// Update operations: AddInsert, AddModify, AddDelete (the paper's Algorithms
// 3–5) plus SKRidToSid (Algorithm 6) and the high-level Insert convenience
// that combines the two. All operations identify their target purely by
// position; the only value comparisons anywhere are the ghost-ordering
// comparisons of SKRidToSid, which untie multiple inserts at one SID.
//
// Every mutation first owns the cursor's root-to-leaf path (path-copying
// nodes a snapshot still shares) and, when payload memory may be visible to
// a snapshot, repoints the entry at a freshly appended value-space slot
// instead of overwriting in place.

import (
	"fmt"

	"pdtstore/internal/types"
)

// Insert records the insertion of tuple at current row position rid: every
// existing tuple at RID >= rid shifts one position right. The tuple's sort
// key must place it at rid; the PDT derives the stable SID, respecting the
// order of ghost (deleted) tuples per §2.1.
func (t *PDT) Insert(rid uint64, tuple types.Row) error {
	if err := t.schema.ValidateRow(tuple); err != nil {
		return err
	}
	sid := t.SKRidToSid(t.schema.KeyOf(tuple), rid)
	return t.AddInsert(sid, rid, tuple)
}

// AddInsert records an insert of tuple at (sid, rid). Most callers want
// Insert; AddInsert exists for Propagate and for callers that already know
// the ghost-respecting SID.
func (t *PDT) AddInsert(sid, rid uint64, tuple types.Row) error {
	c := t.newCursorBySidRid(sid, rid)
	// Algorithm 3: advance while the entry precedes the insertion point.
	for c.valid() && (c.sid() < sid || c.rid() < rid) {
		c.advance()
	}
	storedSID := uint64(int64(rid) - c.delta)
	if storedSID != sid {
		return fmt.Errorf("pdt: AddInsert(sid=%d, rid=%d) derives SID %d; caller's SID is inconsistent with ghost order", sid, rid, storedSID)
	}
	vs := t.mutableVals()
	off := uint64(len(vs.ins))
	vs.ins = append(vs.ins, tuple.Clone())
	t.placeEntry(&c, storedSID, KindIns, off)
	t.nIns++
	return nil
}

// placeEntry inserts a triplet at the cursor position after securing
// exclusive ownership of the cursor's path. A cursor parked at END appends
// after the last entry.
func (t *PDT) placeEntry(c *cursor, sid uint64, kind uint16, val uint64) {
	t.ownPath(c)
	t.insertEntryAt(c, sid, kind, val)
}

// Modify records setting column col of the tuple at current row position rid
// to value v. Sort-key columns cannot be modified this way (callers express
// that as delete+insert, as §2.1 prescribes).
func (t *PDT) Modify(rid uint64, col int, v types.Value) error {
	return t.AddModify(rid, col, v)
}

// AddModify is Algorithm 4. If the target tuple is an insert or already has
// a modify entry for col, the value space is updated in place (or, if a
// snapshot shares the payload, a fresh slot is appended and the entry
// repointed); otherwise a new modify triplet enters the tree, keeping a
// tuple's modify entries ordered by column number.
func (t *PDT) AddModify(rid uint64, col int, v types.Value) error {
	if col < 0 || col >= t.schema.NumCols() {
		return fmt.Errorf("pdt: modify of column %d out of range", col)
	}
	if t.schema.IsSortKeyCol(col) {
		return fmt.Errorf("pdt: column %q is a sort-key column; modify must be expressed as delete+insert", t.schema.Cols[col].Name)
	}
	if v.K != t.schema.Cols[col].Kind {
		return fmt.Errorf("pdt: column %q expects %v, got %v", t.schema.Cols[col].Name, t.schema.Cols[col].Kind, v.K)
	}
	c := t.newCursorAtRidChain(rid)
	// Ghost tuples share the RID of their successor and cannot be modified:
	// skip the chain's delete entries.
	for c.valid() && c.rid() == rid && c.kind() == KindDel {
		c.advance()
	}
	if c.valid() && c.rid() == rid && c.kind() == KindIns {
		// The visible tuple at rid is a fresh insert: rewrite its value.
		if t.sharedPayload {
			vs := t.mutableVals()
			row := vs.ins[c.val()].Clone()
			row[col] = v
			off := uint64(len(vs.ins))
			vs.ins = append(vs.ins, row)
			t.ownPath(&c)
			c.lf.vals[c.pos] = off
			t.deadIns++
			return nil
		}
		t.vals.ins[c.val()][col] = v
		return nil
	}
	// Walk the tuple's modify run (ordered by column) to the col slot.
	for c.valid() && c.rid() == rid && c.kind() != KindIns && int(c.kind()) < col {
		c.advance()
	}
	if c.valid() && c.rid() == rid && int(c.kind()) == col {
		// Second modify of the same column: overwrite in the value space.
		if t.sharedPayload {
			vs := t.mutableVals()
			off := uint64(len(vs.mods[col]))
			vs.mods[col] = append(vs.mods[col], v)
			t.ownPath(&c)
			c.lf.vals[c.pos] = off
			return nil
		}
		t.vals.mods[col][c.val()] = v
		return nil
	}
	vs := t.mutableVals()
	off := uint64(len(vs.mods[col]))
	vs.mods[col] = append(vs.mods[col], v)
	t.placeEntry(&c, uint64(int64(rid)-c.delta), uint16(col), off)
	t.nMod++
	return nil
}

// Delete records the deletion of the tuple at current row position rid.
// skVals must hold the tuple's sort-key values; for a stable tuple they
// become the ghost key (kept so sparse indexes built on the stable image
// stay valid), and for an inserted tuple they are ignored because the insert
// is simply removed. Tuples at RID > rid shift one position left.
func (t *PDT) Delete(rid uint64, skVals types.Row) error {
	return t.AddDelete(rid, skVals)
}

// AddDelete is Algorithm 5, extended with the §2.1 collapse rules: deleting
// an inserted tuple removes the insert outright, and deleting a tuple that
// has modify entries removes those entries before adding the delete.
func (t *PDT) AddDelete(rid uint64, skVals types.Row) error {
	if len(skVals) != len(t.schema.SortKey) {
		return fmt.Errorf("pdt: delete needs %d sort-key values, got %d", len(t.schema.SortKey), len(skVals))
	}
	c := t.newCursorAtRidChain(rid)
	for c.valid() && c.rid() == rid && c.kind() == KindDel {
		c.advance()
	}
	if c.valid() && c.rid() == rid && c.kind() == KindIns {
		// Delete of an insert: remove all trace of it.
		t.nIns--
		t.deadIns++
		t.ownPath(&c)
		t.removeEntryAt(&c)
		return nil
	}
	// Remove any modify entries of the doomed stable tuple.
	for c.valid() && c.rid() == rid && c.kind() != KindIns && c.kind() != KindDel {
		t.nMod--
		t.ownPath(&c)
		t.removeEntryAt(&c)
		// Removal keeps the cursor pointing at the next entry of the same
		// leaf, but if the leaf emptied (its spine collapsed) or the position
		// ran off the leaf's end (the next entry lives in another leaf), the
		// cursor cannot continue; renormalize with a fresh descent.
		if c.lf.count() == 0 || c.pos >= c.lf.count() {
			c = t.newCursorAtRidChain(rid)
			for c.valid() && c.rid() == rid && c.kind() == KindDel {
				c.advance()
			}
		}
	}
	vs := t.mutableVals()
	off := uint64(len(vs.del))
	vs.del = append(vs.del, skVals.Clone())
	t.placeEntry(&c, uint64(int64(rid)-c.delta), KindDel, off)
	t.nDel++
	return nil
}

// SKRidToSid is Algorithm 6: given the sort-key values of a tuple to be
// placed at current row position rid, it returns the SID the tuple should
// receive in the stable image, positioning it among any ghost tuples that
// share rid by comparing sort keys (the only value-based step in the PDT).
func (t *PDT) SKRidToSid(skVals types.Row, rid uint64) uint64 {
	c := t.newCursorAtRidChain(rid)
	for c.valid() && c.rid() == rid && c.kind() == KindDel &&
		types.CompareRows(t.vals.del[c.val()], skVals) < 0 {
		c.advance()
	}
	return uint64(int64(rid) - c.delta)
}

// SidToRid maps a stable tuple's SID to its current RID. ghost reports
// whether the tuple has been deleted (its RID is then the RID of the next
// visible tuple, per the paper's ghost convention).
func (t *PDT) SidToRid(sid uint64) (rid uint64, ghost bool) {
	c := t.newCursorAtSid(sid)
	// Entries at this SID: first inserts (which precede the stable tuple and
	// so shift it), then the stable tuple's own modify entries or delete.
	for c.valid() && c.sid() == sid && c.kind() == KindIns {
		c.advance()
	}
	if c.valid() && c.sid() == sid && c.kind() == KindDel {
		return c.rid(), true
	}
	return uint64(int64(sid) + c.delta), false
}
