package pdt

// Differential tests for the non-destructive Fold against Copy+Propagate:
// over every two-layer mix the bulk-propagate suite generates, Fold must
// produce a Validate()-clean tree with an identical Dump() (payload-level
// equality; value-space offsets legitimately differ because Fold compacts
// orphaned slots away) — and, the property Propagate cannot offer, both
// inputs must be bit-for-bit untouched afterwards.

import (
	"testing"

	"pdtstore/internal/types"
)

// snapshotDump deep-clones a Dump so later in-place payload mutation of the
// source tree (the bug Fold must not have) cannot hide behind aliasing.
func snapshotDump(t *PDT) []RebuildEntry {
	out := t.Dump()
	for i := range out {
		out[i].Ins = out[i].Ins.Clone()
		out[i].Del = out[i].Del.Clone()
	}
	return out
}

func dumpsEqual(a, b []RebuildEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].SID != b[i].SID || a[i].Kind != b[i].Kind ||
			types.CompareRows(a[i].Ins, b[i].Ins) != 0 ||
			types.CompareRows(a[i].Del, b[i].Del) != 0 ||
			types.Compare(a[i].Mod, b[i].Mod) != 0 {
			return false
		}
	}
	return true
}

// checkFold runs Fold(base, w) and cross-checks it against Copy+Propagate.
// Called from propagatePair, so the whole randomized/directed propagate suite
// exercises Fold on the same inputs.
func checkFold(t *testing.T, base, w *PDT, stable []types.Row, ref *refModel) {
	t.Helper()
	baseBefore := snapshotDump(base)
	wBefore := snapshotDump(w)

	out, err := Fold(base, w)
	if err != nil {
		t.Fatalf("fold: %v", err)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("fold result invalid: %v\n%s", err, out)
	}

	expected := base.Copy()
	if err := expected.Propagate(w); err != nil {
		t.Fatalf("reference propagate: %v", err)
	}
	if !dumpsEqual(out.Dump(), expected.Dump()) {
		t.Fatalf("fold dump differs from propagate dump\nfold: %s\npropagate: %s", out, expected)
	}
	oi, od, om := out.Counts()
	ei, ed, em := expected.Counts()
	if oi != ei || od != ed || om != em || out.Delta() != expected.Delta() {
		t.Fatalf("fold counters (%d,%d,%d,%+d) differ from propagate (%d,%d,%d,%+d)",
			oi, od, om, out.Delta(), ei, ed, em, expected.Delta())
	}

	if !dumpsEqual(base.Dump(), baseBefore) {
		t.Fatalf("fold mutated its base layer\nbase now: %s", base)
	}
	if !dumpsEqual(w.Dump(), wBefore) {
		t.Fatalf("fold mutated its upper layer\nw now: %s", w)
	}
	if ref != nil {
		checkAgainstRef(t, out, stable, ref)
	}
}

// TestFoldSharesUnrewrittenPayloads pins the cheap-copy property the online
// maintenance path depends on: folded output shares insert rows with its
// inputs where no rewrite happened, and clones exactly the rewrite case, so
// installing a folded Read-PDT version never deep-copies the layer.
func TestFoldSharesUnrewrittenPayloads(t *testing.T) {
	schema := intSchema()
	stable := buildIntTable(8)
	row := func(k int64) types.Row {
		return types.Row{types.Int(k), types.Int(k), types.Str("r")}
	}
	base := New(schema, 4)
	ref := newRefModel(schema, stable)
	applyInsert(t, base, ref, row(15)) // untouched by w: may be shared
	applyInsert(t, base, ref, row(45)) // rewritten by w: must be cloned
	w := New(schema, 4)
	wref := newRefModel(schema, ref.rows)
	applyModify(t, w, wref, 5, 1, types.Int(-9)) // visible index of key 45

	out, err := Fold(base, w)
	if err != nil {
		t.Fatal(err)
	}
	var shared, cloned bool
	for _, e := range out.Entries() {
		if !e.IsInsert() {
			continue
		}
		outRow := out.vals.ins[e.Val]
		switch outRow[0].I {
		case 15:
			shared = &outRow[0] == &base.vals.ins[0][0]
		case 45:
			cloned = &outRow[0] != &base.vals.ins[1][0]
			if outRow[1].I != -9 {
				t.Fatalf("rewritten insert carries %v, want -9", outRow[1])
			}
			if base.vals.ins[1][1].I != 45 {
				t.Fatalf("fold rewrote base's stored row in place: %v", base.vals.ins[1])
			}
		}
	}
	if !shared {
		t.Fatal("untouched insert row was deep-copied instead of shared")
	}
	if !cloned {
		t.Fatal("rewritten insert row is still shared with the base layer")
	}
}
