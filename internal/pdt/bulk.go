package pdt

// bulkBuilder constructs a PDT's tree bottom-up from entries supplied in
// (SID, RID) order, used by Copy and Serialize. It fills leaves to the
// fanout and then stacks internal levels, computing deltas and separators in
// one pass.
type bulkBuilder struct {
	t      *PDT
	leaves []*leaf
	cur    *leaf
}

func newBulkBuilder(t *PDT) *bulkBuilder {
	return &bulkBuilder{t: t}
}

func (b *bulkBuilder) append(sid uint64, kind uint16, val uint64) {
	if b.cur == nil || b.cur.count() == b.t.fanout {
		b.cur = &leaf{}
		b.leaves = append(b.leaves, b.cur)
	}
	b.cur.sids = append(b.cur.sids, sid)
	b.cur.kinds = append(b.cur.kinds, kind)
	b.cur.vals = append(b.cur.vals, val)
	b.t.nEntries++
	switch kind {
	case KindIns:
		b.t.nIns++
	case KindDel:
		b.t.nDel++
	default:
		b.t.nMod++
	}
}

func (b *bulkBuilder) finish() {
	t := b.t
	if len(b.leaves) == 0 {
		lf := &leaf{}
		t.root, t.first, t.last = lf, lf, lf
		return
	}
	for i, lf := range b.leaves {
		if i > 0 {
			lf.prev = b.leaves[i-1]
			b.leaves[i-1].next = lf
		}
	}
	t.first = b.leaves[0]
	t.last = b.leaves[len(b.leaves)-1]

	level := make([]node, len(b.leaves))
	mins := make([]uint64, len(b.leaves))
	deltas := make([]int64, len(b.leaves))
	for i, lf := range b.leaves {
		level[i] = lf
		mins[i] = lf.sids[0]
		deltas[i] = lf.localDelta()
	}
	for len(level) > 1 {
		var nextLevel []node
		var nextMins []uint64
		var nextDeltas []int64
		for i := 0; i < len(level); i += t.fanout {
			j := i + t.fanout
			if j > len(level) {
				j = len(level)
			}
			in := &inner{
				children: append([]node(nil), level[i:j]...),
				seps:     append([]uint64(nil), mins[i+1:j]...),
				deltas:   append([]int64(nil), deltas[i:j]...),
			}
			var sum int64
			for _, d := range in.deltas {
				sum += d
			}
			for _, c := range in.children {
				c.setParent(in)
			}
			nextLevel = append(nextLevel, in)
			nextMins = append(nextMins, mins[i])
			nextDeltas = append(nextDeltas, sum)
		}
		level, mins, deltas = nextLevel, nextMins, nextDeltas
	}
	t.root = level[0]
	t.root.setParent(nil)
}
