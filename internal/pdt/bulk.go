package pdt

// bulkBuilder constructs a PDT's tree bottom-up from entries supplied in
// (SID, RID) order, used by Copy, Serialize, Rebuild and the bulk Propagate.
// It fills leaves to the fanout and then stacks internal levels, computing
// deltas and separators in one pass.
//
// When the caller knows an upper bound on the entry count (every current
// caller does), reserve() carves all leaves out of contiguous slabs — one
// []leaf plus one backing array per triplet column — so building a tree of n
// entries costs O(1) allocations per level instead of O(n/fanout). Leaves
// keep full three-index slices into the slabs, so later point updates that
// overflow a leaf reallocate that leaf's arrays without disturbing its
// neighbours.
type bulkBuilder struct {
	t      *PDT
	leaves []*leaf
	cur    *leaf

	slab     []leaf
	sidSlab  []uint64
	kindSlab []uint16
	valSlab  []uint64
}

func newBulkBuilder(t *PDT) *bulkBuilder {
	return &bulkBuilder{t: t}
}

// reserve pre-allocates leaf slabs for up to n entries. Appending more than
// n entries stays correct: overflow leaves fall back to individual
// allocations.
func (b *bulkBuilder) reserve(n int) {
	if n <= 0 {
		return
	}
	nLeaves := (n + b.t.fanout - 1) / b.t.fanout
	b.slab = make([]leaf, nLeaves)
	b.sidSlab = make([]uint64, nLeaves*b.t.fanout)
	b.kindSlab = make([]uint16, nLeaves*b.t.fanout)
	b.valSlab = make([]uint64, nLeaves*b.t.fanout)
	if cap(b.leaves) < nLeaves {
		b.leaves = make([]*leaf, 0, nLeaves)
	}
}

func (b *bulkBuilder) newLeaf() *leaf {
	if len(b.slab) == 0 {
		return &leaf{cow: b.t.cow}
	}
	lf := &b.slab[0]
	b.slab = b.slab[1:]
	lf.cow = b.t.cow
	f := b.t.fanout
	lf.sids, b.sidSlab = b.sidSlab[:0:f], b.sidSlab[f:]
	lf.kinds, b.kindSlab = b.kindSlab[:0:f], b.kindSlab[f:]
	lf.vals, b.valSlab = b.valSlab[:0:f], b.valSlab[f:]
	return lf
}

func (b *bulkBuilder) append(sid uint64, kind uint16, val uint64) {
	if b.cur == nil || b.cur.count() == b.t.fanout {
		b.cur = b.newLeaf()
		b.leaves = append(b.leaves, b.cur)
	}
	b.cur.sids = append(b.cur.sids, sid)
	b.cur.kinds = append(b.cur.kinds, kind)
	b.cur.vals = append(b.cur.vals, val)
	b.t.nEntries++
	switch kind {
	case KindIns:
		b.t.nIns++
	case KindDel:
		b.t.nDel++
	default:
		b.t.nMod++
	}
}

func (b *bulkBuilder) finish() {
	t := b.t
	if len(b.leaves) == 0 {
		t.root = &leaf{cow: t.cow}
		t.height = 1
		return
	}

	level := make([]node, len(b.leaves))
	mins := make([]uint64, len(b.leaves))
	deltas := make([]int64, len(b.leaves))
	for i, lf := range b.leaves {
		level[i] = lf
		mins[i] = lf.sids[0]
		deltas[i] = lf.localDelta()
	}
	height := 1
	for len(level) > 1 {
		height++
		// One inner slab per level: node structs plus the per-child delta
		// backing array. Children slices alias the level slice itself (full
		// slice expressions, so a later split reallocates instead of
		// clobbering a sibling); separators alias the mins array.
		nNodes := (len(level) + t.fanout - 1) / t.fanout
		inners := make([]inner, nNodes)
		deltaSlab := make([]int64, len(level))
		copy(deltaSlab, deltas)
		sepSlab := make([]uint64, len(level))
		copy(sepSlab, mins)
		nextMins := mins[:0]
		nextDeltas := deltas[:0]
		for k := 0; k < nNodes; k++ {
			i := k * t.fanout
			j := i + t.fanout
			if j > len(level) {
				j = len(level)
			}
			in := &inners[k]
			in.cow = t.cow
			in.children = level[i:j:j]
			in.seps = sepSlab[i+1 : j : j]
			in.deltas = deltaSlab[i:j:j]
			var sum int64
			for _, d := range in.deltas {
				sum += d
			}
			min0 := mins[i]
			nextMins = append(nextMins, min0)
			nextDeltas = append(nextDeltas, sum)
		}
		nextLevel := make([]node, nNodes)
		for k := range inners {
			nextLevel[k] = &inners[k]
		}
		level, mins, deltas = nextLevel, nextMins[:nNodes], nextDeltas[:nNodes]
	}
	t.root = level[0]
	t.height = height
}
