package pdt

// Tests for the two transaction-management transforms: Propagate (fold a
// consecutive PDT into the one below) and Serialize (re-base an aligned
// PDT onto a committed sibling, detecting write-write conflicts).

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"pdtstore/internal/types"
)

func TestPropagateBasic(t *testing.T) {
	schema := intSchema()
	stable := buildIntTable(20)
	lower := New(schema, 4)
	ref := newRefModel(schema, stable)

	applyInsert(t, lower, ref, types.Row{types.Int(15), types.Int(1), types.Str("r")})
	applyDelete(t, lower, ref, 5)
	applyModify(t, lower, ref, 10, 1, types.Int(111))

	upper := New(schema, 4)
	applyInsert(t, upper, ref, types.Row{types.Int(17), types.Int(2), types.Str("w")})
	applyModify(t, upper, ref, 0, 1, types.Int(222))
	applyDelete(t, upper, ref, 8)

	if err := lower.Propagate(upper); err != nil {
		t.Fatalf("propagate: %v", err)
	}
	checkAgainstRef(t, lower, stable, ref)
}

func TestPropagateEmptyUpper(t *testing.T) {
	schema := intSchema()
	stable := buildIntTable(5)
	lower := New(schema, 4)
	ref := newRefModel(schema, stable)
	applyInsert(t, lower, ref, types.Row{types.Int(11), types.Int(0), types.Str("x")})
	if err := lower.Propagate(New(schema, 4)); err != nil {
		t.Fatal(err)
	}
	checkAgainstRef(t, lower, stable, ref)
}

func TestPropagateIntoEmptyLower(t *testing.T) {
	schema := intSchema()
	stable := buildIntTable(5)
	lower := New(schema, 4)
	ref := newRefModel(schema, stable)
	upper := New(schema, 4)
	applyDelete(t, upper, ref, 3)
	applyInsert(t, upper, ref, types.Row{types.Int(12), types.Int(0), types.Str("y")})
	if err := lower.Propagate(upper); err != nil {
		t.Fatal(err)
	}
	checkAgainstRef(t, lower, stable, ref)
}

func TestPropagateCollapsesUpperOntoLowerEntries(t *testing.T) {
	// Upper deletes a tuple the lower inserted, and modifies a tuple the
	// lower modified: the lower PDT must collapse both.
	schema := intSchema()
	stable := buildIntTable(10)
	lower := New(schema, 4)
	ref := newRefModel(schema, stable)
	applyInsert(t, lower, ref, types.Row{types.Int(15), types.Int(5), types.Str("tmp")}) // rid 1
	applyModify(t, lower, ref, 4, 1, types.Int(44))

	upper := New(schema, 4)
	applyDelete(t, upper, ref, 1)                   // deletes the lower's insert
	applyModify(t, upper, ref, 3, 1, types.Int(55)) // re-modifies same tuple+col

	if err := lower.Propagate(upper); err != nil {
		t.Fatal(err)
	}
	checkAgainstRef(t, lower, stable, ref)
	ins, del, mod := lower.Counts()
	if ins != 0 || del != 0 || mod != 1 {
		t.Errorf("counts after collapse: ins=%d del=%d mod=%d, want 0/0/1", ins, del, mod)
	}
}

func TestPropagateRandomizedEquivalence(t *testing.T) {
	// Applying W's ops through a stacked merge must equal Propagate(R, W)
	// then a single-layer merge, for random R and W.
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		schema := intSchema()
		stable := buildIntTable(25)
		lower := New(schema, 4)
		ref := newRefModel(schema, stable)
		randomOps(t, rng, lower, ref, 60, false)
		upper := New(schema, 4)
		randomOps(t, rng, upper, ref, 60, false)

		if err := lower.Propagate(upper); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkAgainstRef(t, lower, stable, ref)
	}
}

// --- Serialize ---------------------------------------------------------------

// logicalOp describes a transaction operation in snapshot terms, so the test
// can replay it through any serialization order.
type logicalOp struct {
	kind opKind
	key  int64     // identifies the tuple (snapshot key for del/mod)
	row  types.Row // for inserts
	col  int       // for modifies
	val  types.Value
}

// buildTxn applies ops against a private copy of the snapshot, recording them
// in a fresh PDT (aligned with the snapshot).
func buildTxn(t *testing.T, schema *types.Schema, snapshot []types.Row, ops []logicalOp) *PDT {
	t.Helper()
	p := New(schema, 4)
	ref := newRefModel(schema, snapshot)
	for _, op := range ops {
		switch op.kind {
		case opInsert:
			applyInsert(t, p, ref, op.row)
		case opDelete:
			rid := findKeyRid(ref, op.key)
			if rid < 0 {
				t.Fatalf("test bug: delete key %d not visible", op.key)
			}
			applyDelete(t, p, ref, rid)
		case opModify:
			rid := findKeyRid(ref, op.key)
			if rid < 0 {
				t.Fatalf("test bug: modify key %d not visible", op.key)
			}
			applyModify(t, p, ref, rid, op.col, op.val)
		}
	}
	return p
}

func findKeyRid(ref *refModel, key int64) int {
	for i, r := range ref.rows {
		if r[0].I == key {
			return i
		}
	}
	return -1
}

// naiveConflict reports whether x conflicts with committed y under
// tuple-level write sets with per-column modify reconciliation.
func naiveConflict(x, y []logicalOp) bool {
	yIns := map[int64]bool{}
	yDel := map[int64]bool{}
	yMod := map[int64]map[int]bool{}
	for _, op := range y {
		switch op.kind {
		case opInsert:
			yIns[op.row[0].I] = true
		case opDelete:
			yDel[op.key] = true
		case opModify:
			if yMod[op.key] == nil {
				yMod[op.key] = map[int]bool{}
			}
			yMod[op.key][op.col] = true
		}
	}
	for _, op := range x {
		switch op.kind {
		case opInsert:
			if yIns[op.row[0].I] {
				return true
			}
		case opDelete:
			if yDel[op.key] || yMod[op.key] != nil {
				return true
			}
		case opModify:
			if yDel[op.key] || (yMod[op.key] != nil && yMod[op.key][op.col]) {
				return true
			}
		}
	}
	return false
}

// applyOpsByKey replays logical ops against ref, locating tuples by key
// (the serial re-execution semantics Serialize must reproduce).
func applyOpsByKey(t *testing.T, p *PDT, ref *refModel, ops []logicalOp) {
	t.Helper()
	for _, op := range ops {
		switch op.kind {
		case opInsert:
			applyInsert(t, p, ref, op.row)
		case opDelete:
			applyDelete(t, p, ref, findKeyRid(ref, op.key))
		case opModify:
			applyModify(t, p, ref, findKeyRid(ref, op.key), op.col, op.val)
		}
	}
}

func TestSerializeNoConflictDisjoint(t *testing.T) {
	schema := intSchema()
	snapshot := buildIntTable(20) // keys 10..200

	xOps := []logicalOp{
		{kind: opInsert, row: types.Row{types.Int(15), types.Int(1), types.Str("x")}},
		{kind: opModify, key: 100, col: 1, val: types.Int(111)},
		{kind: opDelete, key: 130},
	}
	yOps := []logicalOp{
		{kind: opInsert, row: types.Row{types.Int(25), types.Int(2), types.Str("y")}},
		{kind: opModify, key: 50, col: 2, val: types.Str("yy")},
		{kind: opDelete, key: 180},
	}
	tx := buildTxn(t, schema, snapshot, xOps)
	ty := buildTxn(t, schema, snapshot, yOps)

	txPrime, err := tx.Serialize(ty)
	if err != nil {
		t.Fatalf("unexpected conflict: %v", err)
	}
	if err := txPrime.Validate(); err != nil {
		t.Fatalf("serialized PDT invalid: %v", err)
	}

	// Serial re-execution semantics: y's updates, then x's located by key.
	merged := buildTxn(t, schema, snapshot, yOps)
	if err := merged.Propagate(txPrime); err != nil {
		t.Fatalf("propagate serialized: %v", err)
	}
	ref := newRefModel(schema, snapshot)
	replayByKey(t, ref, yOps)
	replayByKey(t, ref, xOps)
	checkAgainstRef(t, merged, snapshot, ref)
}

// replayByKey applies logical ops to a reference only.
func replayByKey(t *testing.T, ref *refModel, ops []logicalOp) {
	t.Helper()
	for _, op := range ops {
		switch op.kind {
		case opInsert:
			ref.insertAt(ref.insertRid(op.row), op.row)
		case opDelete:
			ref.deleteAt(findKeyRid(ref, op.key))
		case opModify:
			ref.modifyAt(findKeyRid(ref, op.key), op.col, op.val)
		}
	}
}

func TestSerializeConflicts(t *testing.T) {
	schema := intSchema()
	snapshot := buildIntTable(10) // keys 10..100

	cases := []struct {
		name string
		x, y []logicalOp
	}{
		{"insert same key", []logicalOp{
			{kind: opInsert, row: types.Row{types.Int(15), types.Int(1), types.Str("x")}},
		}, []logicalOp{
			{kind: opInsert, row: types.Row{types.Int(15), types.Int(2), types.Str("y")}},
		}},
		{"both delete same tuple", []logicalOp{
			{kind: opDelete, key: 50},
		}, []logicalOp{
			{kind: opDelete, key: 50},
		}},
		{"x modifies tuple y deleted", []logicalOp{
			{kind: opModify, key: 50, col: 1, val: types.Int(1)},
		}, []logicalOp{
			{kind: opDelete, key: 50},
		}},
		{"x deletes tuple y modified", []logicalOp{
			{kind: opDelete, key: 50},
		}, []logicalOp{
			{kind: opModify, key: 50, col: 1, val: types.Int(1)},
		}},
		{"same column modified", []logicalOp{
			{kind: opModify, key: 50, col: 1, val: types.Int(1)},
		}, []logicalOp{
			{kind: opModify, key: 50, col: 1, val: types.Int(2)},
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tx := buildTxn(t, schema, snapshot, c.x)
			ty := buildTxn(t, schema, snapshot, c.y)
			_, err := tx.Serialize(ty)
			var conflict *ConflictError
			if !errors.As(err, &conflict) {
				t.Fatalf("expected ConflictError, got %v", err)
			}
		})
	}
}

func TestSerializeModDifferentColumnsReconciles(t *testing.T) {
	schema := intSchema()
	snapshot := buildIntTable(10)
	xOps := []logicalOp{{kind: opModify, key: 50, col: 1, val: types.Int(1)}}
	yOps := []logicalOp{{kind: opModify, key: 50, col: 2, val: types.Str("y")}}
	tx := buildTxn(t, schema, snapshot, xOps)
	ty := buildTxn(t, schema, snapshot, yOps)
	txPrime, err := tx.Serialize(ty)
	if err != nil {
		t.Fatalf("different-column modifies must reconcile: %v", err)
	}
	merged := buildTxn(t, schema, snapshot, yOps)
	if err := merged.Propagate(txPrime); err != nil {
		t.Fatal(err)
	}
	ref := newRefModel(schema, snapshot)
	replayByKey(t, ref, yOps)
	replayByKey(t, ref, xOps)
	checkAgainstRef(t, merged, snapshot, ref)
}

func TestSerializeInsertVsDeleteNoConflict(t *testing.T) {
	// y deletes stable key 50; x inserts key 45, which lands at the same
	// stable position. Inserts never conflict with deletes.
	schema := intSchema()
	snapshot := buildIntTable(10)
	xOps := []logicalOp{{kind: opInsert, row: types.Row{types.Int(45), types.Int(0), types.Str("x")}}}
	yOps := []logicalOp{{kind: opDelete, key: 50}}
	tx := buildTxn(t, schema, snapshot, xOps)
	ty := buildTxn(t, schema, snapshot, yOps)
	txPrime, err := tx.Serialize(ty)
	if err != nil {
		t.Fatalf("insert vs delete conflicted: %v", err)
	}
	merged := buildTxn(t, schema, snapshot, yOps)
	if err := merged.Propagate(txPrime); err != nil {
		t.Fatal(err)
	}
	ref := newRefModel(schema, snapshot)
	replayByKey(t, ref, yOps)
	replayByKey(t, ref, xOps)
	checkAgainstRef(t, merged, snapshot, ref)
}

func TestSerializeConcurrentInsertsSameSID(t *testing.T) {
	// Both transactions insert between stable keys 40 and 50 — different
	// keys, same SID. The serialized order must interleave them by key.
	schema := intSchema()
	snapshot := buildIntTable(10)
	xOps := []logicalOp{
		{kind: opInsert, row: types.Row{types.Int(44), types.Int(1), types.Str("x1")}},
		{kind: opInsert, row: types.Row{types.Int(48), types.Int(2), types.Str("x2")}},
	}
	yOps := []logicalOp{
		{kind: opInsert, row: types.Row{types.Int(42), types.Int(3), types.Str("y1")}},
		{kind: opInsert, row: types.Row{types.Int(46), types.Int(4), types.Str("y2")}},
	}
	tx := buildTxn(t, schema, snapshot, xOps)
	ty := buildTxn(t, schema, snapshot, yOps)
	txPrime, err := tx.Serialize(ty)
	if err != nil {
		t.Fatal(err)
	}
	merged := buildTxn(t, schema, snapshot, yOps)
	if err := merged.Propagate(txPrime); err != nil {
		t.Fatal(err)
	}
	ref := newRefModel(schema, snapshot)
	replayByKey(t, ref, yOps)
	replayByKey(t, ref, xOps)
	checkAgainstRef(t, merged, snapshot, ref)
	// Verify key interleaving in the final image: 40,42,44,46,48,50.
	out := mergeAll(t, merged, snapshot)
	wantKeys := []int64{10, 20, 30, 40, 42, 44, 46, 48, 50}
	for i, k := range wantKeys {
		if out.Vecs[0].I[i] != k {
			t.Fatalf("key %d = %d, want %d", i, out.Vecs[0].I[i], k)
		}
	}
}

func TestSerializeRandomizedAgainstNaive(t *testing.T) {
	// Random pairs of transactions from a shared snapshot: Serialize must
	// conflict exactly when the naive tuple-level checker does, and when it
	// does not, the serialized result must equal serial re-execution.
	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed + 500))
			schema := intSchema()
			snapshot := buildIntTable(30) // keys 10..300

			genOps := func(n int, keyBase int64) []logicalOp {
				visible := map[int64]bool{}
				for _, r := range snapshot {
					visible[r[0].I] = true
				}
				var ops []logicalOp
				for i := 0; i < n; i++ {
					switch opKind(rng.Intn(3)) {
					case opInsert:
						key := keyBase + int64(rng.Intn(200))
						if visible[key] {
							continue
						}
						visible[key] = true
						ops = append(ops, logicalOp{kind: opInsert,
							row: types.Row{types.Int(key), types.Int(int64(i)), types.Str("r")}})
					case opDelete:
						key := int64((rng.Intn(30) + 1) * 10)
						if !visible[key] {
							continue
						}
						delete(visible, key)
						ops = append(ops, logicalOp{kind: opDelete, key: key})
					case opModify:
						key := int64((rng.Intn(30) + 1) * 10)
						if !visible[key] {
							continue
						}
						col := 1 + rng.Intn(2)
						ops = append(ops, logicalOp{kind: opModify, key: key,
							col: col, val: randVal(rng, col)})
					}
				}
				return ops
			}
			// Overlapping key bases make both conflicting and conflict-free
			// pairs likely.
			xOps := genOps(8, 1001)
			yOps := genOps(8, 1001+int64(rng.Intn(2))*200)

			tx := buildTxn(t, schema, snapshot, xOps)
			ty := buildTxn(t, schema, snapshot, yOps)
			txPrime, err := tx.Serialize(ty)
			wantConflict := naiveConflict(xOps, yOps)
			if wantConflict {
				if err == nil {
					t.Fatalf("naive says conflict, Serialize accepted\nx=%v\ny=%v", xOps, yOps)
				}
				return
			}
			if err != nil {
				t.Fatalf("naive says ok, Serialize rejected: %v\nx=%v\ny=%v", err, xOps, yOps)
			}
			merged := buildTxn(t, schema, snapshot, yOps)
			if err := merged.Propagate(txPrime); err != nil {
				t.Fatalf("propagate: %v", err)
			}
			ref := newRefModel(schema, snapshot)
			replayByKey(t, ref, yOps)
			replayByKey(t, ref, xOps)
			checkAgainstRef(t, merged, snapshot, ref)
		})
	}
}

func randVal(rng *rand.Rand, col int) types.Value {
	if col == 2 {
		return types.Str(fmt.Sprintf("s%d", rng.Intn(10000)))
	}
	return types.Int(int64(rng.Intn(10000)))
}
