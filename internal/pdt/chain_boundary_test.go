package pdt

// Targeted tests for update chains that span leaf boundaries — the cases the
// backward-walking rid-chain cursor exists for. A tuple's modify run (one
// entry per column) can cross leaves at small fan-outs, and in-place
// detection must still find the matching column on the far side.

import (
	"fmt"
	"testing"

	"pdtstore/internal/types"
)

// wideSchema has enough non-key columns to out-span any leaf at fanout 3.
func wideSchema() *types.Schema {
	cols := []types.Column{{Name: "k", Kind: types.Int64}}
	for i := 0; i < 10; i++ {
		cols = append(cols, types.Column{Name: fmt.Sprintf("c%d", i), Kind: types.Int64})
	}
	return types.MustSchema(cols, []int{0})
}

func wideRow(k int64) types.Row {
	r := types.Row{types.Int(k)}
	for i := 0; i < 10; i++ {
		r = append(r, types.Int(k*100+int64(i)))
	}
	return r
}

func TestModifyRunSpanningLeaves(t *testing.T) {
	schema := wideSchema()
	stable := []types.Row{wideRow(10), wideRow(20), wideRow(30)}
	p := New(schema, 3) // tiny fanout: 8 modifies of one tuple span 3 leaves
	ref := newRefModel(schema, stable)

	// Modify 8 distinct columns of the middle tuple, in shuffled order.
	for _, col := range []int{5, 2, 9, 1, 7, 3, 8, 6} {
		applyModify(t, p, ref, 1, col, types.Int(int64(1000+col)))
	}
	if _, leaves := p.DepthAndLeaves(); leaves < 3 {
		t.Fatalf("test needs a multi-leaf chain, got %d leaves", leaves)
	}
	checkAgainstRef(t, p, stable, ref)

	// Re-modify a LOW column whose entry now sits in an earlier leaf than
	// the chain tail: must update in place, not duplicate.
	before := p.Count()
	applyModify(t, p, ref, 1, 1, types.Int(5555))
	if p.Count() != before {
		t.Fatalf("re-modify duplicated an entry: %d -> %d\n%s", before, p.Count(), p)
	}
	checkAgainstRef(t, p, stable, ref)

	// Columns must still be strictly ascending along the chain.
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteCollapsesModifyRunAcrossLeaves(t *testing.T) {
	schema := wideSchema()
	stable := []types.Row{wideRow(10), wideRow(20), wideRow(30)}
	p := New(schema, 3)
	ref := newRefModel(schema, stable)
	for col := 1; col <= 9; col++ {
		applyModify(t, p, ref, 1, col, types.Int(int64(col)))
	}
	// Deleting the tuple must remove every modify entry (spanning several
	// leaves) and leave a single DEL.
	applyDelete(t, p, ref, 1)
	ins, del, mod := p.Counts()
	if ins != 0 || del != 1 || mod != 0 {
		t.Fatalf("after delete: ins=%d del=%d mod=%d\n%s", ins, del, mod, p)
	}
	checkAgainstRef(t, p, stable, ref)
}

func TestGhostChainSpanningLeaves(t *testing.T) {
	// Many ghosts at one RID, spanning leaves; SKRidToSid must walk the
	// whole chain head-first and order a new insert among them.
	schema := intSchema()
	stable := buildIntTable(12) // keys 10..120
	p := New(schema, 3)
	ref := newRefModel(schema, stable)
	for i := 0; i < 8; i++ { // delete keys 20..90: 8 ghosts share one RID
		applyDelete(t, p, ref, 1)
	}
	checkAgainstRef(t, p, stable, ref)
	// Insert between ghost 50 and ghost 60.
	applyInsert(t, p, ref, types.Row{types.Int(55), types.Int(0), types.Str("mid")})
	checkAgainstRef(t, p, stable, ref)
	for _, e := range p.Entries() {
		if e.IsInsert() && p.EntryTuple(e)[0].I == 55 && e.SID != 5 {
			t.Fatalf("insert among spanning ghosts got SID %d, want 5", e.SID)
		}
	}
	// And modifying the first surviving tuple (rid 1) must skip the whole
	// ghost chain.
	applyModify(t, p, ref, 2, 1, types.Int(777))
	checkAgainstRef(t, p, stable, ref)
}

func TestInsertChainSpanningLeavesThenDeleteEach(t *testing.T) {
	// A long run of inserts at one SID spans leaves; deleting them one by
	// one exercises delete-of-insert with entry removal at leaf boundaries
	// (including emptied-leaf collapse).
	schema := intSchema()
	stable := []types.Row{{types.Int(0), types.Int(0), types.Str("lo")},
		{types.Int(1000), types.Int(0), types.Str("hi")}}
	p := New(schema, 3)
	ref := newRefModel(schema, stable)
	for i := int64(1); i <= 20; i++ {
		applyInsert(t, p, ref, types.Row{types.Int(i * 10), types.Int(i), types.Str("x")})
	}
	if _, leaves := p.DepthAndLeaves(); leaves < 5 {
		t.Fatalf("expected a multi-leaf insert chain, got %d leaves", leaves)
	}
	checkAgainstRef(t, p, stable, ref)
	// Delete from the middle outward.
	rng := []int{10, 3, 15, 1, 7, 12, 2, 9, 4, 11, 1, 1, 5, 2, 3, 1, 2, 1, 1, 1}
	for _, rid := range rng {
		if rid < len(ref.rows)-1 && rid > 0 {
			applyDelete(t, p, ref, rid)
		}
	}
	checkAgainstRef(t, p, stable, ref)
	if p.Delta() > 20 {
		t.Fatalf("delta did not shrink: %d", p.Delta())
	}
}
