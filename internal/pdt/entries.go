package pdt

import (
	"fmt"
	"strings"

	"pdtstore/internal/types"
)

// Entry is the externally visible form of one update triplet, with the RID
// reconstructed from the running delta.
type Entry struct {
	SID  uint64
	RID  uint64
	Kind uint16 // KindIns, KindDel, or the modified column number
	Val  uint64 // value-space offset
}

// IsInsert reports whether the entry is an insert.
func (e Entry) IsInsert() bool { return e.Kind == KindIns }

// IsDelete reports whether the entry is a delete.
func (e Entry) IsDelete() bool { return e.Kind == KindDel }

// ModColumn returns the modified column for a modify entry, or -1.
func (e Entry) ModColumn() int {
	if e.Kind == KindIns || e.Kind == KindDel {
		return -1
	}
	return int(e.Kind)
}

// Entries returns every update triplet in (SID, RID) order. Intended for
// tests, tooling and the example programs; query processing uses MergeScan.
func (t *PDT) Entries() []Entry {
	out := make([]Entry, 0, t.nEntries)
	for c := t.newCursorAtStart(); c.valid(); c.advance() {
		out = append(out, Entry{SID: c.sid(), RID: c.rid(), Kind: c.kind(), Val: c.val()})
	}
	return out
}

// EntryTuple returns the payload of an entry rendered against the schema:
// the inserted tuple for inserts, the ghost sort key for deletes, and the
// single modified value for modifies.
func (t *PDT) EntryTuple(e Entry) types.Row {
	switch e.Kind {
	case KindIns:
		return t.vals.ins[e.Val]
	case KindDel:
		return t.vals.del[e.Val]
	default:
		return types.Row{t.vals.mods[e.Kind][e.Val]}
	}
}

// String renders the PDT's entries compactly, for debugging and examples.
func (t *PDT) String() string {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("PDT{%d entries, delta=%+d}", t.nEntries, t.Delta()))
	for _, e := range t.Entries() {
		switch {
		case e.IsInsert():
			sb.WriteString(fmt.Sprintf("\n  sid=%d rid=%d INS %v", e.SID, e.RID, t.vals.ins[e.Val]))
		case e.IsDelete():
			sb.WriteString(fmt.Sprintf("\n  sid=%d rid=%d DEL %v", e.SID, e.RID, t.vals.del[e.Val]))
		default:
			col := t.schema.Cols[e.Kind]
			sb.WriteString(fmt.Sprintf("\n  sid=%d rid=%d MOD %s=%v", e.SID, e.RID, col.Name, t.vals.mods[e.Kind][e.Val]))
		}
	}
	return sb.String()
}

// DepthAndLeaves reports the tree height and leaf count (for tests and the
// pdtdump tool).
func (t *PDT) DepthAndLeaves() (depth, leaves int) {
	var count func(n node)
	count = func(n node) {
		in, ok := n.(*inner)
		if !ok {
			leaves++
			return
		}
		for _, c := range in.children {
			count(c)
		}
	}
	count(t.root)
	return t.height, leaves
}
