package pdt

import (
	"math/rand"
	"testing"

	"pdtstore/internal/types"
)

type rowSliceSource struct {
	rows []types.Row
	pos  int
}

func (s *rowSliceSource) NextRow() (types.Row, bool) {
	if s.pos >= len(s.rows) {
		return nil, false
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true
}

func TestRowMergeMatchesReference(t *testing.T) {
	schema := intSchema()
	stable := buildIntTable(20)
	p := New(schema, 4)
	ref := newRefModel(schema, stable)
	applyInsert(t, p, ref, types.Row{types.Int(15), types.Int(-1), types.Str("i")})
	applyDelete(t, p, ref, 5)
	applyModify(t, p, ref, 8, 1, types.Int(888))
	applyModify(t, p, ref, 8, 2, types.Str("mm"))

	m := NewRowMerge(p, &rowSliceSource{rows: stable}, 0)
	var got []types.Row
	for {
		row, rid, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if rid != uint64(len(got)) {
			t.Fatalf("rid %d at position %d", rid, len(got))
		}
		got = append(got, row)
	}
	if len(got) != len(ref.rows) {
		t.Fatalf("row merge yielded %d rows, want %d", len(got), len(ref.rows))
	}
	for i := range got {
		if types.CompareRows(got[i], ref.rows[i]) != 0 {
			t.Fatalf("row %d = %v, want %v", i, got[i], ref.rows[i])
		}
	}
}

func TestRowMergeEqualsBlockMergeRandomized(t *testing.T) {
	// The tuple-at-a-time operator (Algorithm 2 verbatim) and the
	// block-oriented MergeScan must yield identical streams.
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed + 900))
		schema := intSchema()
		stable := buildIntTable(30)
		p := New(schema, 3+rng.Intn(5))
		ref := newRefModel(schema, stable)
		randomOps(t, rng, p, ref, 150, false)

		blockOut := mergeAll(t, p, stable)

		m := NewRowMerge(p, &rowSliceSource{rows: stable}, 0)
		i := 0
		for {
			row, rid, ok, err := m.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if i >= blockOut.Len() {
				t.Fatalf("row merge yields more rows than block merge (%d)", i)
			}
			if types.CompareRows(row, blockOut.Row(i)) != 0 || rid != blockOut.Rids[i] {
				t.Fatalf("divergence at row %d: row=(%v,%d) block=(%v,%d)",
					i, row, rid, blockOut.Row(i), blockOut.Rids[i])
			}
			i++
		}
		if i != blockOut.Len() {
			t.Fatalf("row merge yields %d rows, block merge %d", i, blockOut.Len())
		}
	}
}

func TestRowMergeMidRangeStart(t *testing.T) {
	schema := intSchema()
	stable := buildIntTable(20)
	p := New(schema, 4)
	ref := newRefModel(schema, stable)
	applyInsert(t, p, ref, types.Row{types.Int(15), types.Int(-1), types.Str("i")}) // rid 1, sid 1
	applyDelete(t, p, ref, 4)                                                       // stable sid 3

	// Start at stable SID 10: source yields rows 10..19.
	m := NewRowMerge(p, &rowSliceSource{rows: stable[10:]}, 10)
	row, rid, ok, err := m.Next()
	if err != nil || !ok {
		t.Fatal(err)
	}
	// RID of stable sid 10: +1 insert, -1 delete before it → 10.
	if rid != 10 || row[0].I != stable[10][0].I {
		t.Fatalf("first = (%v, rid %d)", row, rid)
	}
	n := 1
	for {
		_, _, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Fatalf("mid-range merge yielded %d rows, want 10", n)
	}
}
