package pdt

import (
	"testing"

	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

func intSchema() *types.Schema {
	return types.MustSchema([]types.Column{
		{Name: "k", Kind: types.Int64},
		{Name: "a", Kind: types.Int64},
		{Name: "b", Kind: types.String},
	}, []int{0})
}

// buildIntTable returns n stable rows with keys 10,20,30,...
func buildIntTable(n int) []types.Row {
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{
			types.Int(int64((i + 1) * 10)),
			types.Int(int64(i)),
			types.Str(string(rune('a' + i%26))),
		}
	}
	return rows
}

func TestMergeScanProjectionSubset(t *testing.T) {
	schema := intSchema()
	stable := buildIntTable(10)
	p := New(schema, 4)
	ref := newRefModel(schema, stable)
	applyModify(t, p, ref, 4, 1, types.Int(444))
	applyModify(t, p, ref, 4, 2, types.Str("zz"))
	applyDelete(t, p, ref, 7)
	applyInsert(t, p, ref, types.Row{types.Int(15), types.Int(-1), types.Str("new")})

	// Project only columns (a) — the merge must apply the col-1 modify,
	// silently consume the col-2 modify, and never need column k.
	cols := []int{1}
	src := newSliceSource(stable, cols, 0, len(stable))
	ms := NewMergeScan(p, src, cols, 0, true)
	out, err := ScanAll(ms, []types.Kind{types.Int64})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != len(ref.rows) {
		t.Fatalf("projected merge %d rows, want %d", out.Len(), len(ref.rows))
	}
	for i := range ref.rows {
		if out.Vecs[0].I[i] != ref.rows[i][1].I {
			t.Fatalf("row %d col a = %d, want %d", i, out.Vecs[0].I[i], ref.rows[i][1].I)
		}
	}
}

func TestMergeScanRange(t *testing.T) {
	schema := intSchema()
	stable := buildIntTable(20)
	p := New(schema, 4)
	ref := newRefModel(schema, stable)
	applyInsert(t, p, ref, types.Row{types.Int(15), types.Int(-1), types.Str("x")}) // rid 1
	applyDelete(t, p, ref, 5)                                                       // key 50
	applyModify(t, p, ref, 10, 1, types.Int(1000))

	// Scan stable SIDs [3, 12): rows with keys 40..120 as updated.
	cols := []int{0, 1, 2}
	src := newSliceSource(stable, cols, 3, 12)
	ms := NewMergeScan(p, src, cols, 3, false)
	kinds := []types.Kind{types.Int64, types.Int64, types.String}
	out, err := ScanAll(ms, kinds)
	if err != nil {
		t.Fatal(err)
	}
	// Expected: visible rows derived from ref whose ORIGINAL stable sids are
	// 3..11. With the insert at rid 1 and delete of sid 4 (key 50):
	// sids 3..11 → keys 40,(50 deleted),60..120 → 8 rows.
	if out.Len() != 8 {
		t.Fatalf("range merge returned %d rows, want 8", out.Len())
	}
	if out.Vecs[0].I[0] != 40 || out.Vecs[0].I[1] != 60 || out.Vecs[0].I[7] != 120 {
		t.Fatalf("range keys wrong: %v", out.Vecs[0].I)
	}
	// RIDs: stable sid 3 has one insert and zero deletes before it → rid 4.
	if out.Rids[0] != 4 {
		t.Fatalf("first rid = %d, want 4", out.Rids[0])
	}
	if ms.StartRID() != 4 {
		t.Fatalf("StartRID = %d, want 4", ms.StartRID())
	}
}

func TestMergeScanIncludeEnd(t *testing.T) {
	schema := intSchema()
	stable := buildIntTable(10)
	p := New(schema, 4)
	ref := newRefModel(schema, stable)
	// Insert between stable sids 4 and 5 (keys 50 and 60): sid 5.
	applyInsert(t, p, ref, types.Row{types.Int(55), types.Int(-5), types.Str("t")})

	cols := []int{0}
	// Range [2,5) excluding end: insert at sid 5 not emitted.
	src := newSliceSource(stable, cols, 2, 5)
	ms := NewMergeScan(p, src, cols, 2, false)
	out, err := ScanAll(ms, []types.Kind{types.Int64})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("excl-end merge %d rows, want 3 (keys 30,40,50)", out.Len())
	}
	// Same range including end: the trailing insert appears.
	src = newSliceSource(stable, cols, 2, 5)
	ms = NewMergeScan(p, src, cols, 2, true)
	out, err = ScanAll(ms, []types.Kind{types.Int64})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 || out.Vecs[0].I[3] != 55 {
		t.Fatalf("incl-end merge rows: %v", out.Vecs[0].I)
	}
}

func TestMergeScanStacked(t *testing.T) {
	schema := intSchema()
	stable := buildIntTable(30)
	lower := New(schema, 4)
	ref := newRefModel(schema, stable)

	// Layer 1 updates.
	applyInsert(t, lower, ref, types.Row{types.Int(15), types.Int(-1), types.Str("l1")})
	applyDelete(t, lower, ref, 9)
	applyModify(t, lower, ref, 20, 1, types.Int(2020))

	// Layer 2 updates, positioned against the layer-1 image (ref mirrors it).
	upper := New(schema, 4)
	applyInsert(t, upper, ref, types.Row{types.Int(17), types.Int(-2), types.Str("l2")})
	applyDelete(t, upper, ref, 25)
	applyModify(t, upper, ref, 0, 1, types.Int(9999))

	cols := []int{0, 1, 2}
	kinds := []types.Kind{types.Int64, types.Int64, types.String}
	src := newSliceSource(stable, cols, 0, len(stable))
	m1 := NewMergeScan(lower, src, cols, 0, true)
	m2 := NewMergeScan(upper, m1, cols, m1.StartRID(), true)
	out, err := ScanAll(m2, kinds)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != len(ref.rows) {
		t.Fatalf("stacked merge %d rows, want %d", out.Len(), len(ref.rows))
	}
	for i, want := range ref.rows {
		if types.CompareRows(out.Row(i), want) != 0 {
			t.Fatalf("stacked row %d = %v, want %v", i, out.Row(i), want)
		}
		if out.Rids[i] != uint64(i) {
			t.Fatalf("stacked rid %d = %d", i, out.Rids[i])
		}
	}
}

func TestMergeScanSmallBatches(t *testing.T) {
	// Emitting through tiny output batches must agree with one big scan.
	schema := intSchema()
	stable := buildIntTable(50)
	p := New(schema, 4)
	ref := newRefModel(schema, stable)
	for i := 0; i < 10; i++ {
		applyInsert(t, p, ref, types.Row{types.Int(int64(i*50 + 5)), types.Int(int64(-i)), types.Str("x")})
	}
	applyDelete(t, p, ref, 30)
	applyDelete(t, p, ref, 30)
	applyModify(t, p, ref, 12, 1, types.Int(808))

	cols := []int{0, 1, 2}
	kinds := []types.Kind{types.Int64, types.Int64, types.String}
	src := newSliceSource(stable, cols, 0, len(stable))
	ms := NewMergeScan(p, src, cols, 0, true)
	out := vector.NewBatch(kinds, 4)
	for {
		n, err := ms.Next(out, 3)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	if out.Len() != len(ref.rows) {
		t.Fatalf("small-batch merge %d rows, want %d", out.Len(), len(ref.rows))
	}
	for i, want := range ref.rows {
		if types.CompareRows(out.Row(i), want) != 0 {
			t.Fatalf("row %d = %v, want %v", i, out.Row(i), want)
		}
	}
}

func TestMergeScanEmptyStable(t *testing.T) {
	schema := intSchema()
	p := New(schema, 4)
	ref := newRefModel(schema, nil)
	applyInsert(t, p, ref, types.Row{types.Int(1), types.Int(1), types.Str("a")})
	applyInsert(t, p, ref, types.Row{types.Int(2), types.Int(2), types.Str("b")})
	checkAgainstRef(t, p, nil, ref)
}

func TestMergeScanEverythingDeleted(t *testing.T) {
	schema := intSchema()
	stable := buildIntTable(8)
	p := New(schema, 4)
	ref := newRefModel(schema, stable)
	for len(ref.rows) > 0 {
		applyDelete(t, p, ref, 0)
	}
	checkAgainstRef(t, p, stable, ref)
	if p.Delta() != -8 {
		t.Errorf("delta = %d", p.Delta())
	}
}
