package pdt

// Tree mechanics: node layout, descent by SID / RID / (SID,RID), entry
// insertion and removal with delta maintenance, node splits and collapses.
//
// The layout follows the paper's §3.1. A leaf stores parallel arrays of
// (sid, kind, value-offset) triplets ordered by (SID, RID). An internal node
// stores children plus, per child, the running delta contribution of that
// subtree, and between children a separator that equals the minimum SID of
// the right subtree (counted-B-tree style). RIDs are never materialized:
// RID(entry) = SID(entry) + sum of deltas of all entries to its left, which
// descent reconstructs by accumulating the per-child deltas it passes.

type node interface {
	parentNode() *inner
	setParent(*inner)
}

type leaf struct {
	parent *inner
	sids   []uint64
	kinds  []uint16
	vals   []uint64
	prev   *leaf
	next   *leaf
}

func (l *leaf) parentNode() *inner { return l.parent }
func (l *leaf) setParent(p *inner) { l.parent = p }
func (l *leaf) count() int         { return len(l.sids) }
func (l *leaf) localDelta() int64 {
	var d int64
	for _, k := range l.kinds {
		d += kindShift(k)
	}
	return d
}

type inner struct {
	parent   *inner
	children []node
	seps     []uint64 // len == len(children)-1; seps[i] = min SID of children[i+1]
	deltas   []int64  // len == len(children); net inserts-deletes per subtree
}

func (in *inner) parentNode() *inner { return in.parent }
func (in *inner) setParent(p *inner) { in.parent = p }

func (in *inner) indexOf(child node) int {
	for i, c := range in.children {
		if c == child {
			return i
		}
	}
	panic("pdt: child not found in parent")
}

// minSID returns the smallest SID in the subtree rooted at n. Must not be
// called on an empty tree.
func minSID(n node) uint64 {
	for {
		in, ok := n.(*inner)
		if !ok {
			return n.(*leaf).sids[0]
		}
		n = in.children[0]
	}
}

// addDeltaUp adds d to the per-child delta counters of every ancestor of lf
// (the paper's AddNodeDeltas).
func addDeltaUp(lf *leaf, d int64) {
	var child node = lf
	for p := child.parentNode(); p != nil; p = child.parentNode() {
		p.deltas[p.indexOf(child)] += d
		child = p
	}
}

// fixMinUp repairs the separator that records the minimum SID of the subtree
// lf is the leftmost leaf of, after lf's first entry changed.
func fixMinUp(lf *leaf) {
	if lf.count() == 0 {
		return
	}
	newMin := lf.sids[0]
	var child node = lf
	for p := child.parentNode(); p != nil; p = child.parentNode() {
		idx := p.indexOf(child)
		if idx > 0 {
			p.seps[idx-1] = newMin
			return
		}
		child = p
	}
}

// descent helpers ------------------------------------------------------------

// findLeafRightByRid locates the rightmost leaf whose first entry's RID is
// <= rid (or the leftmost leaf if every entry's RID exceeds rid), returning
// the leaf and the accumulated delta of all entries before it.
func (t *PDT) findLeafRightByRid(rid uint64) (*leaf, int64) {
	n := t.root
	var delta int64
	for {
		in, ok := n.(*inner)
		if !ok {
			return n.(*leaf), delta
		}
		chosen := 0
		chosenDelta := delta
		sum := delta + in.deltas[0]
		for j := 1; j < len(in.children); j++ {
			// minRID of children[j] = its min SID + delta entering it.
			if int64(in.seps[j-1])+sum <= int64(rid) {
				chosen = j
				chosenDelta = sum
			} else {
				break // children's min RIDs are non-decreasing
			}
			sum += in.deltas[j]
		}
		n = in.children[chosen]
		delta = chosenDelta
	}
}

// findLeafLeftBySid locates the leftmost leaf that can contain entries with
// SID >= sid, returning the leaf and the delta of all entries before it.
// (The caller then advances within/past the leaf to the exact position.)
func (t *PDT) findLeafLeftBySid(sid uint64) (*leaf, int64) {
	n := t.root
	var delta int64
	for {
		in, ok := n.(*inner)
		if !ok {
			return n.(*leaf), delta
		}
		chosen := len(in.children) - 1
		for j := 0; j < len(in.seps); j++ {
			if sid <= in.seps[j] {
				chosen = j
				break
			}
		}
		for j := 0; j < chosen; j++ {
			delta += in.deltas[j]
		}
		n = in.children[chosen]
	}
}

// findLeafBySidRid locates the rightmost leaf whose first entry precedes the
// insertion point of a new insert at (sid, rid) — an entry precedes when its
// SID < sid or its RID < rid (Algorithm 3's advance condition) — returning
// the leaf and the delta before it.
func (t *PDT) findLeafBySidRid(sid, rid uint64) (*leaf, int64) {
	n := t.root
	var delta int64
	for {
		in, ok := n.(*inner)
		if !ok {
			return n.(*leaf), delta
		}
		chosen := 0
		chosenDelta := delta
		sum := delta + in.deltas[0]
		for j := 1; j < len(in.children); j++ {
			mSID := in.seps[j-1]
			mRID := int64(mSID) + sum
			if mSID < sid || mRID < int64(rid) {
				chosen = j
				chosenDelta = sum
			} else {
				break
			}
			sum += in.deltas[j]
		}
		n = in.children[chosen]
		delta = chosenDelta
	}
}

// mutation -------------------------------------------------------------------

// insertEntryAt places a new triplet at position pos of lf, maintaining
// ancestor deltas and separators and splitting on overflow.
func (t *PDT) insertEntryAt(lf *leaf, pos int, sid uint64, kind uint16, val uint64) {
	lf.sids = append(lf.sids, 0)
	copy(lf.sids[pos+1:], lf.sids[pos:])
	lf.sids[pos] = sid
	lf.kinds = append(lf.kinds, 0)
	copy(lf.kinds[pos+1:], lf.kinds[pos:])
	lf.kinds[pos] = kind
	lf.vals = append(lf.vals, 0)
	copy(lf.vals[pos+1:], lf.vals[pos:])
	lf.vals[pos] = val

	t.nEntries++
	if d := kindShift(kind); d != 0 {
		addDeltaUp(lf, d)
	}
	if pos == 0 {
		fixMinUp(lf)
	}
	if lf.count() > t.fanout {
		t.splitLeaf(lf)
	}
}

// removeEntryAt deletes the triplet at position pos of lf, maintaining
// ancestor deltas/separators and collapsing emptied nodes.
func (t *PDT) removeEntryAt(lf *leaf, pos int) {
	kind := lf.kinds[pos]
	lf.sids = append(lf.sids[:pos], lf.sids[pos+1:]...)
	lf.kinds = append(lf.kinds[:pos], lf.kinds[pos+1:]...)
	lf.vals = append(lf.vals[:pos], lf.vals[pos+1:]...)

	t.nEntries--
	if d := kindShift(kind); d != 0 {
		addDeltaUp(lf, -d)
	}
	if lf.count() == 0 {
		t.removeLeaf(lf)
		return
	}
	if pos == 0 {
		fixMinUp(lf)
	}
}

func (t *PDT) splitLeaf(lf *leaf) {
	mid := lf.count() / 2
	right := &leaf{
		sids:  append([]uint64(nil), lf.sids[mid:]...),
		kinds: append([]uint16(nil), lf.kinds[mid:]...),
		vals:  append([]uint64(nil), lf.vals[mid:]...),
	}
	lf.sids = lf.sids[:mid]
	lf.kinds = lf.kinds[:mid]
	lf.vals = lf.vals[:mid]

	right.next = lf.next
	right.prev = lf
	if lf.next != nil {
		lf.next.prev = right
	}
	lf.next = right
	if t.last == lf {
		t.last = right
	}

	rightDelta := right.localDelta()
	leftDelta := lf.localDelta()
	t.insertChild(lf, right, right.sids[0], leftDelta, rightDelta)
}

// insertChild links newRight as the sibling immediately after left, with the
// given separator and the split subtree deltas, growing the tree as needed.
func (t *PDT) insertChild(left, newRight node, sep uint64, leftDelta, rightDelta int64) {
	p := left.parentNode()
	if p == nil {
		root := &inner{
			children: []node{left, newRight},
			seps:     []uint64{sep},
			deltas:   []int64{leftDelta, rightDelta},
		}
		left.setParent(root)
		newRight.setParent(root)
		t.root = root
		return
	}
	idx := p.indexOf(left)
	p.children = append(p.children, nil)
	copy(p.children[idx+2:], p.children[idx+1:])
	p.children[idx+1] = newRight
	p.seps = append(p.seps, 0)
	copy(p.seps[idx+1:], p.seps[idx:])
	p.seps[idx] = sep
	p.deltas = append(p.deltas, 0)
	copy(p.deltas[idx+2:], p.deltas[idx+1:])
	p.deltas[idx] = leftDelta
	p.deltas[idx+1] = rightDelta
	newRight.setParent(p)

	if len(p.children) > t.fanout {
		t.splitInner(p)
	}
}

func (t *PDT) splitInner(in *inner) {
	mid := len(in.children) / 2
	sepUp := in.seps[mid-1]
	right := &inner{
		children: append([]node(nil), in.children[mid:]...),
		seps:     append([]uint64(nil), in.seps[mid:]...),
		deltas:   append([]int64(nil), in.deltas[mid:]...),
	}
	in.children = in.children[:mid]
	in.seps = in.seps[:mid-1]
	in.deltas = in.deltas[:mid]
	for _, c := range right.children {
		c.setParent(right)
	}
	var leftDelta, rightDelta int64
	for _, d := range in.deltas {
		leftDelta += d
	}
	for _, d := range right.deltas {
		rightDelta += d
	}
	t.insertChild(in, right, sepUp, leftDelta, rightDelta)
}

// removeLeaf unlinks an emptied leaf from the chain and the tree.
func (t *PDT) removeLeaf(lf *leaf) {
	if lf.prev != nil {
		lf.prev.next = lf.next
	}
	if lf.next != nil {
		lf.next.prev = lf.prev
	}
	if t.first == lf {
		t.first = lf.next
	}
	if t.last == lf {
		t.last = lf.prev
	}
	p := lf.parent
	if p == nil {
		// lf is the root: keep it as the canonical empty tree.
		lf.prev, lf.next = nil, nil
		t.first = lf
		t.last = lf
		return
	}
	t.removeChild(p, p.indexOf(lf))
}

// removeChild detaches children[idx] from in, collapsing upward as needed.
func (t *PDT) removeChild(in *inner, idx int) {
	in.children = append(in.children[:idx], in.children[idx+1:]...)
	in.deltas = append(in.deltas[:idx], in.deltas[idx+1:]...)
	switch {
	case len(in.seps) == 0:
		// became childless below; handled by the len(children) checks
	case idx == 0:
		in.seps = in.seps[1:]
	default:
		in.seps = append(in.seps[:idx-1], in.seps[idx:]...)
	}

	if len(in.children) == 0 {
		p := in.parent
		if p == nil {
			empty := &leaf{}
			t.root = empty
			t.first = empty
			t.last = empty
			return
		}
		t.removeChild(p, p.indexOf(in))
		return
	}
	if len(in.children) == 1 && in.parent == nil {
		// collapse single-child root
		child := in.children[0]
		child.setParent(nil)
		t.root = child
		return
	}
	if idx == 0 {
		// subtree minimum changed; repair the ancestor separator
		fixMinFromNode(in)
	}
}

// fixMinFromNode repairs the separator recording in's subtree minimum.
func fixMinFromNode(in *inner) {
	if len(in.children) == 0 {
		return
	}
	newMin := minSID(in.children[0])
	var child node = in
	for p := child.parentNode(); p != nil; p = child.parentNode() {
		idx := p.indexOf(child)
		if idx > 0 {
			p.seps[idx-1] = newMin
			return
		}
		child = p
	}
}
