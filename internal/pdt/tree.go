package pdt

// Tree mechanics: node layout, descent by SID / RID / (SID,RID), entry
// insertion and removal with delta maintenance, node splits and collapses.
//
// The layout follows the paper's §3.1. A leaf stores parallel arrays of
// (sid, kind, value-offset) triplets ordered by (SID, RID). An internal node
// stores children plus, per child, the running delta contribution of that
// subtree, and between children a separator that equals the minimum SID of
// the right subtree (counted-B-tree style). RIDs are never materialized:
// RID(entry) = SID(entry) + sum of deltas of all entries to its left, which
// descent reconstructs by accumulating the per-child deltas it passes.
//
// Nodes are persistent (copy-on-write): there are no parent pointers and no
// leaf sibling chain, so whole subtrees can be shared between a PDT and its
// snapshots. Each node carries an ownership token; a PDT may mutate a node
// in place only when the node's token matches its own (ownPath path-copies
// the root-to-leaf spine of foreign nodes before any structural mutation).
// Snapshot hands out fresh tokens to both trees in O(1), after which either
// side's mutations clone only the nodes they touch.

type cowTag struct {
	_ uint8 // non-zero size: distinct allocations get distinct addresses
}

func newCowTag() *cowTag { return new(cowTag) }

type node interface {
	isNode()
}

type leaf struct {
	cow   *cowTag
	sids  []uint64
	kinds []uint16
	vals  []uint64
}

func (l *leaf) isNode()    {}
func (l *leaf) count() int { return len(l.sids) }
func (l *leaf) localDelta() int64 {
	var d int64
	for _, k := range l.kinds {
		d += kindShift(k)
	}
	return d
}

func (l *leaf) clone(tag *cowTag) *leaf {
	out := &leaf{
		cow:   tag,
		sids:  make([]uint64, len(l.sids), len(l.sids)+1),
		kinds: make([]uint16, len(l.kinds), len(l.kinds)+1),
		vals:  make([]uint64, len(l.vals), len(l.vals)+1),
	}
	copy(out.sids, l.sids)
	copy(out.kinds, l.kinds)
	copy(out.vals, l.vals)
	return out
}

type inner struct {
	cow      *cowTag
	children []node
	seps     []uint64 // len == len(children)-1; seps[i] = min SID of children[i+1]
	deltas   []int64  // len == len(children); net inserts-deletes per subtree
}

func (in *inner) isNode() {}

func (in *inner) clone(tag *cowTag) *inner {
	out := &inner{
		cow:      tag,
		children: make([]node, len(in.children), len(in.children)+1),
		seps:     make([]uint64, len(in.seps), len(in.seps)+1),
		deltas:   make([]int64, len(in.deltas), len(in.deltas)+1),
	}
	copy(out.children, in.children)
	copy(out.seps, in.seps)
	copy(out.deltas, in.deltas)
	return out
}

// minSID returns the smallest SID in the subtree rooted at n. Must not be
// called on an empty tree.
func minSID(n node) uint64 {
	for {
		in, ok := n.(*inner)
		if !ok {
			return n.(*leaf).sids[0]
		}
		n = in.children[0]
	}
}

// ownPath path-copies every foreign node on the cursor's root-to-leaf spine,
// rewriting the tree's child pointers and the cursor's references to the
// owned copies. After it returns, every node the cursor's stack (and leaf)
// names is exclusively owned by t and safe to mutate in place; nodes off the
// spine stay shared.
func (t *PDT) ownPath(c *cursor) {
	if len(c.stack) == 0 {
		if c.lf.cow != t.cow {
			lf := c.lf.clone(t.cow)
			t.root = lf
			c.lf = lf
		}
		return
	}
	if c.stack[0].in.cow != t.cow {
		in := c.stack[0].in.clone(t.cow)
		t.root = in
		c.stack[0].in = in
	}
	for d := 0; d < len(c.stack); d++ {
		in, idx := c.stack[d].in, c.stack[d].idx
		if d+1 < len(c.stack) {
			child := c.stack[d+1].in
			if child.cow != t.cow {
				child = child.clone(t.cow)
				in.children[idx] = child
				c.stack[d+1].in = child
			}
		} else if c.lf.cow != t.cow {
			lf := c.lf.clone(t.cow)
			in.children[idx] = lf
			c.lf = lf
		}
	}
}

// addDeltaUp adds d to the per-child delta counter of every node on the
// cursor's spine (the paper's AddNodeDeltas). The spine must be owned.
func addDeltaUp(stack []pathEnt, d int64) {
	for i := range stack {
		stack[i].in.deltas[stack[i].idx] += d
	}
}

// fixMinUp repairs the separator that records the minimum SID of the subtree
// the cursor's leaf is the leftmost leaf of, after its first entry changed.
// The spine must be owned.
func (t *PDT) fixMinUp(c *cursor) {
	if c.lf.count() == 0 {
		return
	}
	newMin := c.lf.sids[0]
	for d := len(c.stack) - 1; d >= 0; d-- {
		if idx := c.stack[d].idx; idx > 0 {
			c.stack[d].in.seps[idx-1] = newMin
			return
		}
	}
}

// mutation -------------------------------------------------------------------

// insertEntryAt places a new triplet at the cursor's position, maintaining
// ancestor deltas and separators and splitting on overflow. The caller must
// have owned the cursor's path (placeEntry does).
func (t *PDT) insertEntryAt(c *cursor, sid uint64, kind uint16, val uint64) {
	lf, pos := c.lf, c.pos
	lf.sids = append(lf.sids, 0)
	copy(lf.sids[pos+1:], lf.sids[pos:])
	lf.sids[pos] = sid
	lf.kinds = append(lf.kinds, 0)
	copy(lf.kinds[pos+1:], lf.kinds[pos:])
	lf.kinds[pos] = kind
	lf.vals = append(lf.vals, 0)
	copy(lf.vals[pos+1:], lf.vals[pos:])
	lf.vals[pos] = val

	t.nEntries++
	if d := kindShift(kind); d != 0 {
		addDeltaUp(c.stack, d)
	}
	if pos == 0 {
		t.fixMinUp(c)
	}
	if lf.count() > t.fanout {
		t.splitLeafAt(c)
	}
}

// removeEntryAt deletes the triplet at the cursor's position, maintaining
// ancestor deltas/separators and collapsing emptied nodes. The caller must
// have owned the cursor's path. Afterwards the cursor points at the next
// entry of the same leaf; if the leaf emptied or the position ran off its
// end, the cursor's spine may be stale and the caller must re-descend.
func (t *PDT) removeEntryAt(c *cursor) {
	lf, pos := c.lf, c.pos
	kind := lf.kinds[pos]
	lf.sids = append(lf.sids[:pos], lf.sids[pos+1:]...)
	lf.kinds = append(lf.kinds[:pos], lf.kinds[pos+1:]...)
	lf.vals = append(lf.vals[:pos], lf.vals[pos+1:]...)

	t.nEntries--
	if d := kindShift(kind); d != 0 {
		addDeltaUp(c.stack, -d)
	}
	if lf.count() == 0 {
		t.removeLeafAt(c)
		return
	}
	if pos == 0 {
		t.fixMinUp(c)
	}
}

func (t *PDT) splitLeafAt(c *cursor) {
	lf := c.lf
	mid := lf.count() / 2
	right := &leaf{
		cow:   t.cow,
		sids:  append([]uint64(nil), lf.sids[mid:]...),
		kinds: append([]uint16(nil), lf.kinds[mid:]...),
		vals:  append([]uint64(nil), lf.vals[mid:]...),
	}
	lf.sids = lf.sids[:mid]
	lf.kinds = lf.kinds[:mid]
	lf.vals = lf.vals[:mid]
	t.insertChildAt(c.stack, len(c.stack)-1, lf, right, right.sids[0], lf.localDelta(), right.localDelta())
}

// insertChildAt links newRight as the sibling immediately after the child at
// stack[d] (d == -1 means left is the root), with the given separator and the
// split subtree deltas, growing the tree as needed. The spine must be owned.
func (t *PDT) insertChildAt(stack []pathEnt, d int, left, newRight node, sep uint64, leftDelta, rightDelta int64) {
	if d < 0 {
		t.root = &inner{
			cow:      t.cow,
			children: []node{left, newRight},
			seps:     []uint64{sep},
			deltas:   []int64{leftDelta, rightDelta},
		}
		t.height++
		return
	}
	p, idx := stack[d].in, stack[d].idx
	p.children = append(p.children, nil)
	copy(p.children[idx+2:], p.children[idx+1:])
	p.children[idx+1] = newRight
	p.seps = append(p.seps, 0)
	copy(p.seps[idx+1:], p.seps[idx:])
	p.seps[idx] = sep
	p.deltas = append(p.deltas, 0)
	copy(p.deltas[idx+2:], p.deltas[idx+1:])
	p.deltas[idx] = leftDelta
	p.deltas[idx+1] = rightDelta

	if len(p.children) > t.fanout {
		t.splitInnerAt(stack, d)
	}
}

func (t *PDT) splitInnerAt(stack []pathEnt, d int) {
	in := stack[d].in
	mid := len(in.children) / 2
	sepUp := in.seps[mid-1]
	right := &inner{
		cow:      t.cow,
		children: append([]node(nil), in.children[mid:]...),
		seps:     append([]uint64(nil), in.seps[mid:]...),
		deltas:   append([]int64(nil), in.deltas[mid:]...),
	}
	in.children = in.children[:mid]
	in.seps = in.seps[:mid-1]
	in.deltas = in.deltas[:mid]
	var leftDelta, rightDelta int64
	for _, dd := range in.deltas {
		leftDelta += dd
	}
	for _, dd := range right.deltas {
		rightDelta += dd
	}
	t.insertChildAt(stack, d-1, in, right, sepUp, leftDelta, rightDelta)
}

// removeLeafAt detaches the cursor's emptied leaf from the tree.
func (t *PDT) removeLeafAt(c *cursor) {
	if len(c.stack) == 0 {
		// The leaf is the root: keep it as the canonical empty tree.
		return
	}
	t.removeChildAt(c.stack, len(c.stack)-1)
}

// removeChildAt detaches the child named by stack[d] from its inner node,
// collapsing upward as needed. The spine must be owned.
func (t *PDT) removeChildAt(stack []pathEnt, d int) {
	in, idx := stack[d].in, stack[d].idx
	in.children = append(in.children[:idx], in.children[idx+1:]...)
	in.deltas = append(in.deltas[:idx], in.deltas[idx+1:]...)
	switch {
	case len(in.seps) == 0:
		// became childless below; handled by the len(children) checks
	case idx == 0:
		in.seps = in.seps[1:]
	default:
		in.seps = append(in.seps[:idx-1], in.seps[idx:]...)
	}

	if len(in.children) == 0 {
		if d == 0 {
			empty := &leaf{cow: t.cow}
			t.root = empty
			t.height = 1
			return
		}
		t.removeChildAt(stack, d-1)
		return
	}
	if len(in.children) == 1 && d == 0 {
		// Collapse the single-child root; the child may stay shared.
		t.root = in.children[0]
		t.height--
		return
	}
	if idx == 0 {
		// The subtree minimum changed; repair the nearest ancestor separator.
		newMin := minSID(in.children[0])
		for e := d; e >= 0; e-- {
			if i := stack[e].idx; i > 0 {
				stack[e].in.seps[i-1] = newMin
				return
			}
		}
	}
}
