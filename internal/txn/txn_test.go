package txn

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"pdtstore/internal/colstore"
	"pdtstore/internal/pdt"
	"pdtstore/internal/table"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
	"pdtstore/internal/wal"
)

func testSchema() *types.Schema {
	return types.MustSchema([]types.Column{
		{Name: "k", Kind: types.Int64},
		{Name: "a", Kind: types.Int64},
		{Name: "b", Kind: types.String},
	}, []int{0})
}

func newManager(t *testing.T, n int, opts Options) *Manager {
	t.Helper()
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{types.Int(int64((i + 1) * 10)), types.Int(int64(i)), types.Str(fmt.Sprintf("s%d", i))}
	}
	tbl, err := table.Load(testSchema(), rows, table.Options{Mode: table.ModePDT, BlockRows: 32})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(tbl, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func txnKeys(t *testing.T, tx *Txn) []int64 {
	t.Helper()
	src, err := tx.Scan([]int{0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := vector.NewBatch([]types.Kind{types.Int64}, 64)
	for {
		n, err := src.Next(out, 64)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	return append([]int64(nil), out.Vecs[0].I...)
}

func TestManagerRequiresPDTMode(t *testing.T) {
	tbl, err := table.Load(testSchema(), nil, table.Options{Mode: table.ModeVDT})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewManager(tbl, Options{}); err == nil {
		t.Fatal("VDT table accepted")
	}
}

func TestCommitVisibility(t *testing.T) {
	m := newManager(t, 10, Options{})

	tx := m.Begin()
	if err := tx.Insert(types.Row{types.Int(15), types.Int(0), types.Str("new")}); err != nil {
		t.Fatal(err)
	}
	// Uncommitted: other transactions must not see it.
	other := m.Begin()
	if len(txnKeys(t, other)) != 10 {
		t.Fatal("uncommitted insert visible to concurrent snapshot")
	}
	// The inserting transaction sees its own write.
	if len(txnKeys(t, tx)) != 11 {
		t.Fatal("transaction does not see its own insert")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Snapshots taken before the commit still don't see it.
	if len(txnKeys(t, other)) != 10 {
		t.Fatal("commit leaked into older snapshot")
	}
	other.Abort()
	// New transactions do.
	after := m.Begin()
	defer after.Abort()
	if len(txnKeys(t, after)) != 11 {
		t.Fatal("committed insert not visible to new snapshot")
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	m := newManager(t, 10, Options{})
	tx := m.Begin()
	defer tx.Abort()
	key := types.Row{types.Int(30)}
	if ok, err := tx.UpdateByKey(key, 1, types.Int(999)); err != nil || !ok {
		t.Fatalf("update: %v %v", ok, err)
	}
	_, row, found, err := tx.findByKey(key)
	if err != nil || !found || row[1].I != 999 {
		t.Fatalf("own write invisible: %v %v %v", row, found, err)
	}
	if ok, err := tx.DeleteByKey(key); err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if _, _, found, _ := tx.findByKey(key); found {
		t.Fatal("own delete invisible")
	}
	if err := tx.Insert(types.Row{types.Int(30), types.Int(7), types.Str("re")}); err != nil {
		t.Fatalf("reinsert of own-deleted key: %v", err)
	}
}

func TestWriteWriteConflictAborts(t *testing.T) {
	m := newManager(t, 10, Options{})
	a := m.Begin()
	b := m.Begin()
	key := types.Row{types.Int(50)}
	if _, err := a.UpdateByKey(key, 1, types.Int(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.UpdateByKey(key, 1, types.Int(2)); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatalf("first commit: %v", err)
	}
	err := b.Commit()
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("expected conflict, got %v", err)
	}
	// Loser's changes must not be visible.
	check := m.Begin()
	defer check.Abort()
	_, row, _, _ := check.findByKey(key)
	if row[1].I != 1 {
		t.Fatalf("final value = %d, want winner's 1", row[1].I)
	}
}

func TestDifferentColumnsReconcile(t *testing.T) {
	m := newManager(t, 10, Options{})
	a := m.Begin()
	b := m.Begin()
	key := types.Row{types.Int(50)}
	if _, err := a.UpdateByKey(key, 1, types.Int(11)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.UpdateByKey(key, 2, types.Str("bb")); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatalf("different-column commits must reconcile: %v", err)
	}
	check := m.Begin()
	defer check.Abort()
	_, row, _, _ := check.findByKey(key)
	if row[1].I != 11 || row[2].S != "bb" {
		t.Fatalf("reconciled row = %v", row)
	}
}

func TestThreeTransactionPaperExample(t *testing.T) {
	// Figure 15: a and b start from the same snapshot; b commits, then a
	// commits (serializing against b), then c (started after b's commit)
	// commits, serializing against a only.
	m := newManager(t, 20, Options{})
	a := m.Begin()
	b := m.Begin()
	if err := b.Insert(types.Row{types.Int(15), types.Int(0), types.Str("b")}); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	c := m.Begin()
	if _, err := a.UpdateByKey(types.Row{types.Int(100)}, 1, types.Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatalf("a: %v", err)
	}
	if _, err := c.UpdateByKey(types.Row{types.Int(200)}, 1, types.Int(2)); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatalf("c: %v", err)
	}
	check := m.Begin()
	defer check.Abort()
	keys := txnKeys(t, check)
	if len(keys) != 21 {
		t.Fatalf("final row count = %d", len(keys))
	}
}

// TestSortKeyUpdateCollisionKeepsOldRow is the txn-path regression test for
// the delete-then-insert bug: a sort-key update to a key held by another
// visible row must fail without deleting the old row.
func TestSortKeyUpdateCollisionKeepsOldRow(t *testing.T) {
	m := newManager(t, 10, Options{}) // keys 10,20,...,100
	tx := m.Begin()
	defer tx.Abort()
	key := types.Row{types.Int(30)}
	if ok, err := tx.UpdateByKey(key, 0, types.Int(40)); err == nil {
		t.Fatalf("colliding sort-key update accepted (ok=%v)", ok)
	}
	if _, _, found, err := tx.findByKey(key); err != nil || !found {
		t.Fatalf("old row lost after rejected update: found=%v err=%v", found, err)
	}
	if n := len(txnKeys(t, tx)); n != 10 {
		t.Fatalf("row count after rejected update = %d, want 10", n)
	}
	// Moving to a free key still works, including within the same txn.
	if ok, err := tx.UpdateByKey(key, 0, types.Int(35)); err != nil || !ok {
		t.Fatalf("legal sort-key update: %v", err)
	}
	if _, _, found, _ := tx.findByKey(types.Row{types.Int(35)}); !found {
		t.Fatal("moved row missing")
	}
}

// TestLSNClockAgreement pins the LSN bookkeeping contract: the manager's
// commit clock moves only when a WAL record is durable — empty commits leave
// it alone — and recovery restores exactly the pre-crash clock, with a fresh
// writer continuing the sequence.
func TestLSNClockAgreement(t *testing.T) {
	var logBuf bytes.Buffer
	w := wal.NewWriter(&logBuf)
	m := newManager(t, 10, Options{Log: w})

	empty := m.Begin()
	if err := empty.Commit(); err != nil {
		t.Fatal(err)
	}
	if m.LSN() != 0 || w.LSN() != 0 {
		t.Fatalf("empty commit advanced the clock: mgr=%d wal=%d", m.LSN(), w.LSN())
	}
	for i := 0; i < 3; i++ {
		tx := m.Begin()
		if err := tx.Insert(types.Row{types.Int(int64(500 + i)), types.Int(0), types.Str("x")}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		empty := m.Begin()
		if err := empty.Commit(); err != nil { // interleaved empty commits
			t.Fatal(err)
		}
	}
	if m.LSN() != 3 || w.LSN() != 3 {
		t.Fatalf("clocks diverged: mgr=%d wal=%d, want 3", m.LSN(), w.LSN())
	}

	// Crash and recover on a fresh manager with a fresh writer: the restored
	// clock must equal the pre-crash one, and the next commit must get LSN 4.
	var logBuf2 bytes.Buffer
	w2 := wal.NewWriter(&logBuf2)
	m2 := newManager(t, 10, Options{Log: w2})
	records, err := wal.Replay(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Recover(records); err != nil {
		t.Fatal(err)
	}
	if m2.LSN() != 3 || w2.LSN() != 3 {
		t.Fatalf("recovered clocks: mgr=%d wal=%d, want 3", m2.LSN(), w2.LSN())
	}
	tx := m2.Begin()
	if err := tx.Insert(types.Row{types.Int(600), types.Int(0), types.Str("y")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if m2.LSN() != 4 {
		t.Fatalf("post-recovery commit got LSN %d, want 4", m2.LSN())
	}
	newRecords, err := wal.Replay(bytes.NewReader(logBuf2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(newRecords) != 1 || newRecords[0].LSN != 4 {
		t.Fatalf("post-recovery record = %+v, want one record at LSN 4", newRecords)
	}
}

func TestAbortDiscards(t *testing.T) {
	m := newManager(t, 10, Options{})
	tx := m.Begin()
	if err := tx.Insert(types.Row{types.Int(15), types.Int(0), types.Str("x")}); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("commit after abort: %v", err)
	}
	check := m.Begin()
	defer check.Abort()
	if len(txnKeys(t, check)) != 10 {
		t.Fatal("aborted insert visible")
	}
}

func TestSnapshotSharing(t *testing.T) {
	m := newManager(t, 10, Options{})
	a := m.Begin()
	b := m.Begin()
	if a.writeSnap != b.writeSnap {
		t.Fatal("transactions without intervening commits must share the Write-PDT copy")
	}
	if err := a.Insert(types.Row{types.Int(15), types.Int(0), types.Str("a")}); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	c := m.Begin()
	if c.writeSnap == b.writeSnap {
		t.Fatal("post-commit transaction must get a fresh snapshot")
	}
	// An *empty* commit changes nothing, so the snapshot stays shared (and
	// the commit clock must not move — see TestLSNClockAgreement).
	d := m.Begin()
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	e := m.Begin()
	if e.writeSnap != c.writeSnap {
		t.Fatal("empty commit invalidated the shared snapshot")
	}
	b.Abort()
	c.Abort()
	e.Abort()
}

func TestWritePDTPropagationToRead(t *testing.T) {
	m := newManager(t, 50, Options{WriteBudget: 1}) // propagate after every commit
	for i := 0; i < 20; i++ {
		tx := m.Begin()
		if err := tx.Insert(types.Row{types.Int(int64(1000 + i)), types.Int(0), types.Str("w")}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.WaitMaintenance(); err != nil { // propagation is a background fold now
		t.Fatal(err)
	}
	if m.WritePDT().Count() != 0 {
		t.Fatalf("write-PDT holds %d entries; should have migrated", m.WritePDT().Count())
	}
	if m.ReadPDT().Count() == 0 {
		t.Fatal("read-PDT empty after propagation")
	}
	check := m.Begin()
	defer check.Abort()
	if len(txnKeys(t, check)) != 70 {
		t.Fatalf("row count = %d, want 70", len(txnKeys(t, check)))
	}
	if err := m.ReadPDT().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointUnderRunningTransactions is the online-maintenance contract:
// a checkpoint taken while a transaction is open must succeed, the old
// snapshot keeps reading its pinned pre-checkpoint view, the long-running
// transaction can still commit afterwards, and new transactions read the
// checkpointed image plus everything committed since.
func TestCheckpointUnderRunningTransactions(t *testing.T) {
	m := newManager(t, 10, Options{})

	long := m.Begin() // spans the checkpoint
	if err := long.Insert(types.Row{types.Int(999), types.Int(0), types.Str("mine")}); err != nil {
		t.Fatal(err)
	}
	tx := m.Begin()
	if err := tx.Insert(types.Row{types.Int(555), types.Int(0), types.Str("c")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	if err := m.Checkpoint(); err != nil {
		t.Fatalf("checkpoint with a running transaction: %v", err)
	}
	if got := m.Table().Store().NRows(); got != 11 {
		t.Fatalf("stable rows after checkpoint = %d, want 11", got)
	}

	// The old snapshot still reads its pinned view: 10 stable rows plus its
	// own uncommitted insert, without 555 (committed after its Begin).
	keys := txnKeys(t, long)
	if len(keys) != 11 {
		t.Fatalf("pre-checkpoint snapshot sees %d rows, want 11", len(keys))
	}
	for _, k := range keys {
		if k == 555 {
			t.Fatal("pre-checkpoint snapshot sees a later commit")
		}
	}
	// ...and commits across the checkpoint boundary.
	if err := long.Commit(); err != nil {
		t.Fatalf("commit across checkpoint: %v", err)
	}

	check := m.Begin()
	defer check.Abort()
	got := txnKeys(t, check)
	if len(got) != 12 {
		t.Fatalf("post-checkpoint view has %d rows, want 12", len(got))
	}
	found := map[int64]bool{}
	for _, k := range got {
		found[k] = true
	}
	if !found[555] || !found[999] {
		t.Fatalf("post-checkpoint view lost data: %v", got)
	}
}

// TestCheckpointBuildFailureRollsBack exercises the checkpoint error path:
// the image build fails mid-checkpoint (fault-injected), with a transaction
// begun during the build still holding the frozen layer. The rollback must
// restore the two-layer invariant — that transaction and all later ones read
// and commit correctly — and a retried checkpoint must succeed.
func TestCheckpointBuildFailureRollsBack(t *testing.T) {
	m := newManager(t, 10, Options{})
	pre := m.Begin()
	if err := pre.Insert(types.Row{types.Int(555), types.Int(0), types.Str("pre")}); err != nil {
		t.Fatal(err)
	}
	if err := pre.Commit(); err != nil {
		t.Fatal(err) // the frozen layer will be non-empty
	}

	boom := errors.New("device full")
	var mid *Txn
	m.materialize = func(uint64, *colstore.Store, ...*pdt.PDT) (*colstore.Store, error) {
		// Runs off-lock mid-checkpoint: start a transaction that captures
		// the frozen layer, then fail the build.
		mid = m.Begin()
		if mid.frozen == nil {
			t.Error("mid-checkpoint transaction did not capture the frozen layer")
		}
		if err := mid.Insert(types.Row{types.Int(777), types.Int(0), types.Str("mid")}); err != nil {
			t.Error(err)
		}
		return nil, boom
	}
	if err := m.Checkpoint(); !errors.Is(err, boom) {
		t.Fatalf("checkpoint error = %v, want %v", err, boom)
	}
	m.materialize = nil

	// Rollback restored the two-layer state: the mid-build transaction reads
	// its pinned view and commits across the rollback.
	keys := txnKeys(t, mid)
	if len(keys) != 12 { // 10 stable + 555 + its own 777
		t.Fatalf("mid-build snapshot sees %d rows, want 12", len(keys))
	}
	if err := mid.Commit(); err != nil {
		t.Fatalf("commit after rollback: %v", err)
	}
	tx := m.Begin()
	if err := tx.Insert(types.Row{types.Int(888), types.Int(0), types.Str("post")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// A retried checkpoint succeeds and nothing was lost.
	if err := m.Checkpoint(); err != nil {
		t.Fatalf("retried checkpoint: %v", err)
	}
	if got := m.Table().Store().NRows(); got != 13 {
		t.Fatalf("checkpointed image has %d rows, want 13", got)
	}
	check := m.Begin()
	defer check.Abort()
	found := map[int64]bool{}
	for _, k := range txnKeys(t, check) {
		found[k] = true
	}
	if !found[555] || !found[777] || !found[888] {
		t.Fatalf("data lost across failed checkpoint: %v", found)
	}
}

// TestCheckpointPreservesFanout: the side write layer a checkpoint installs
// as the next Read-PDT must carry the table's configured fanout, not the
// default.
func TestCheckpointPreservesFanout(t *testing.T) {
	rows := make([]types.Row, 10)
	for i := range rows {
		rows[i] = types.Row{types.Int(int64((i + 1) * 10)), types.Int(0), types.Str("s")}
	}
	tbl, err := table.Load(testSchema(), rows, table.Options{Mode: table.ModePDT, Fanout: 16})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(tbl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.WritePDT().Fanout(); got != 16 {
		t.Fatalf("fresh Write-PDT fanout = %d, want 16", got)
	}
	tx := m.Begin()
	if err := tx.Insert(types.Row{types.Int(5), types.Int(0), types.Str("n")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := m.ReadPDT().Fanout(); got != 16 {
		t.Fatalf("post-checkpoint Read-PDT fanout = %d, want 16", got)
	}
	if got := m.WritePDT().Fanout(); got != 16 {
		t.Fatalf("post-checkpoint Write-PDT fanout = %d, want 16", got)
	}
}

// TestCheckpointReleasesRetiredImage: once the last transaction pinned to a
// pre-checkpoint version finishes, the retired stable image's blocks leave
// the device's buffer pool instead of leaking one entry per block per
// checkpoint.
func TestCheckpointReleasesRetiredImage(t *testing.T) {
	dev := colstore.NewDevice()
	rows := make([]types.Row, 40)
	for i := range rows {
		rows[i] = types.Row{types.Int(int64((i + 1) * 10)), types.Int(int64(i)), types.Str("s")}
	}
	tbl, err := table.Load(testSchema(), rows, table.Options{Mode: table.ModePDT, BlockRows: 8, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(tbl, Options{})
	if err != nil {
		t.Fatal(err)
	}

	long := m.Begin()
	txnKeys(t, long) // pull the old image's blocks into the pool
	oldBlocks := dev.PoolBlocks()
	if oldBlocks == 0 {
		t.Fatal("scan populated no pool entries")
	}
	tx := m.Begin()
	if err := tx.Insert(types.Row{types.Int(5), types.Int(0), types.Str("n")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The pinned transaction holds the retired image alive (still scannable,
	// still pooled)...
	txnKeys(t, long)
	if dev.PoolBlocks() < oldBlocks {
		t.Fatal("retired image evicted while still pinned")
	}
	if err := long.Abort(); err != nil {
		t.Fatal(err)
	}
	// ...and its release evicts the old image's blocks.
	check := m.Begin()
	defer check.Abort()
	txnKeys(t, check)
	after := dev.PoolBlocks()
	if after > m.Table().Store().NumBlocks()*testSchema().NumCols() {
		t.Fatalf("pool holds %d blocks after release; retired image leaked", after)
	}
}

func TestWALRecovery(t *testing.T) {
	var logBuf bytes.Buffer
	m := newManager(t, 10, Options{Log: wal.NewWriter(&logBuf)})
	// Run a few committing transactions.
	for i := 0; i < 5; i++ {
		tx := m.Begin()
		if err := tx.Insert(types.Row{types.Int(int64(500 + i)), types.Int(int64(i)), types.Str("w")}); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.UpdateByKey(types.Row{types.Int(10)}, 1, types.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// One aborted transaction must leave no trace in the log.
	tx := m.Begin()
	if err := tx.Insert(types.Row{types.Int(9999), types.Int(0), types.Str("gone")}); err != nil {
		t.Fatal(err)
	}
	tx.Abort()

	wantKeys := txnKeys(t, m.Begin())
	wantWrite := m.WritePDT().Entries()

	// "Crash": rebuild a fresh manager over the same initial table and
	// replay the log.
	m2 := newManager(t, 10, Options{})
	records, err := wal.Replay(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 5 {
		t.Fatalf("replayed %d records, want 5", len(records))
	}
	if err := m2.Recover(records); err != nil {
		t.Fatal(err)
	}
	gotKeys := txnKeys(t, m2.Begin())
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("recovered %d rows, want %d", len(gotKeys), len(wantKeys))
	}
	for i := range wantKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("row %d: %d != %d", i, gotKeys[i], wantKeys[i])
		}
	}
	gotWrite := m2.WritePDT().Entries()
	if len(gotWrite) != len(wantWrite) {
		t.Fatalf("recovered write-PDT has %d entries, want %d", len(gotWrite), len(wantWrite))
	}
	for i := range wantWrite {
		if gotWrite[i].SID != wantWrite[i].SID || gotWrite[i].Kind != wantWrite[i].Kind {
			t.Fatalf("write-PDT entry %d differs: %+v vs %+v", i, gotWrite[i], wantWrite[i])
		}
	}
}

func TestWALTornTail(t *testing.T) {
	var buf bytes.Buffer
	w := wal.NewWriter(&buf)
	if _, err := w.Append("t", []pdt.RebuildEntry{{SID: 1, Kind: pdt.KindDel, Del: types.Row{types.Int(1)}}}); err != nil {
		t.Fatal(err)
	}
	full := buf.Len()
	if _, err := w.Append("t", []pdt.RebuildEntry{{SID: 2, Kind: pdt.KindDel, Del: types.Row{types.Int(2)}}}); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-second-record: the valid prefix comes back along with the
	// typed tear signal.
	torn := buf.Bytes()[:full+5]
	records, err := wal.Replay(bytes.NewReader(torn))
	if !errors.Is(err, wal.ErrTornTail) {
		t.Fatalf("torn replay: err = %v, want ErrTornTail", err)
	}
	if len(records) != 1 {
		t.Fatalf("torn replay returned %d records, want 1", len(records))
	}
	// Corrupt a byte in the surviving record's body.
	corrupt := append([]byte(nil), buf.Bytes()...)
	corrupt[12] ^= 0xFF
	records, err = wal.Replay(bytes.NewReader(corrupt))
	if !errors.Is(err, wal.ErrTornTail) {
		t.Fatalf("corrupt replay: err = %v, want ErrTornTail", err)
	}
	if len(records) != 0 {
		t.Fatalf("corrupt head accepted: %d records", len(records))
	}
}

func TestConcurrentCommitsStress(t *testing.T) {
	// Goroutines hammer disjoint key ranges: every commit must succeed and
	// the final state must contain every insert exactly once.
	m := newManager(t, 0, Options{WriteBudget: 1 << 20})
	const workers, perWorker = 4, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				tx := m.Begin()
				key := int64(w*1000 + i)
				if err := tx.Insert(types.Row{types.Int(key), types.Int(int64(w)), types.Str("c")}); err != nil {
					errs <- err
					tx.Abort()
					continue
				}
				if rng.Intn(8) == 0 {
					tx.Abort()
					// aborted inserts are retried under a new key space slot
					tx2 := m.Begin()
					if err := tx2.Insert(types.Row{types.Int(key), types.Int(int64(w)), types.Str("r")}); err != nil {
						errs <- err
						tx2.Abort()
						continue
					}
					if err := tx2.Commit(); err != nil {
						errs <- err
					}
					continue
				}
				if err := tx.Commit(); err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("worker error: %v", err)
	}
	check := m.Begin()
	defer check.Abort()
	keys := txnKeys(t, check)
	if len(keys) != workers*perWorker {
		t.Fatalf("final count = %d, want %d", len(keys), workers*perWorker)
	}
	seen := map[int64]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("duplicate key %d", k)
		}
		seen[k] = true
	}
	if err := m.WritePDT().Validate(); err != nil {
		t.Fatal(err)
	}
}
