package txn_test

// Randomized differential test for sharded writes (external test package so
// it can drive the TPC-H workload without an import cycle): one deterministic
// mixed script of bulk ApplyBatch rounds — RF1 lineitem inserts, RF2 deletes,
// l_quantity updates — interleaved with commits, Write→Read freezes (forced
// by a small write budget) and full checkpoints, applied to the same lineitem
// image sharded 1, 2, 4 and 8 ways. Every shard count must converge to
// byte-identical row state and produce identical TPC-H Q1 and Q6 answers.

import (
	"fmt"
	"strings"
	"testing"

	"pdtstore/internal/engine"
	"pdtstore/internal/table"
	"pdtstore/internal/tpch"
	"pdtstore/internal/txn"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

// diffScript is the shared op script: batches applied one transaction each,
// with checkpoint set after every checkpointEvery batches.
type diffScript struct {
	batches         [][]table.Op
	checkpointEvery int
}

// genDiffScript derives the script once from the loaded generator, so every
// shard count replays exactly the same operations in the same order.
func genDiffScript(g *tpch.Gen, rounds, perRound int) diffScript {
	var s diffScript
	s.checkpointEvery = 4
	var prevInserted []types.Row // lineitem keys inserted by the last RF1 batch
	for r := 0; r < rounds; r++ {
		var ins, del, upd []table.Op
		var inserted []types.Row
		for _, ro := range g.RF1(perRound) {
			for _, lr := range ro.Lineitems {
				ins = append(ins, table.Op{Kind: table.OpInsert, Row: lr})
				inserted = append(inserted, types.Row{lr[tpch.LOrderkey], lr[tpch.LLinenumber]})
			}
		}
		for _, meta := range g.RF2(perRound) {
			for ln := 1; ln <= meta.Lines; ln++ {
				del = append(del, table.Op{Kind: table.OpDelete,
					Key: types.Row{types.Int(meta.Key), types.Int(int64(ln))}})
			}
		}
		// Update l_quantity of the previous round's inserts: keys known to be
		// visible and scattered across the whole key space (hence shards).
		for i, key := range prevInserted {
			upd = append(upd, table.Op{Kind: table.OpUpdate, Key: key,
				Col: tpch.LQuantity, Val: types.Float(float64(100 + i%50))})
		}
		prevInserted = inserted
		s.batches = append(s.batches, ins, del)
		if len(upd) > 0 {
			s.batches = append(s.batches, upd)
		}
	}
	return s
}

// runDiffScript stands up an n-way sharded copy of the base image, replays
// the script, and returns the final row state as one string plus the Q1/Q6
// answers computed over a table rebuilt from that state.
func runDiffScript(t *testing.T, base *table.Table, s diffScript, n int) (state, q1, q6 string) {
	t.Helper()
	stores, keys, err := table.ShardSplit(base.Store(), n, nil, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	mgrs := make([]*txn.Manager, n)
	for i, st := range stores {
		tbl, err := table.FromStore(st, table.Options{Mode: table.ModePDT})
		if err != nil {
			t.Fatal(err)
		}
		// A small budget forces Write→Read freezes mid-script.
		if mgrs[i], err = txn.NewManager(tbl, txn.Options{WriteBudget: 64 << 10}); err != nil {
			t.Fatal(err)
		}
	}
	sh, err := txn.NewSharded(mgrs, keys)
	if err != nil {
		t.Fatal(err)
	}
	for bi, batch := range s.batches {
		tx := sh.Begin()
		if _, err := tx.ApplyBatch(batch); err != nil {
			t.Fatalf("shards=%d batch %d: %v", n, bi, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("shards=%d batch %d commit: %v", n, bi, err)
		}
		if (bi+1)%s.checkpointEvery == 0 {
			if err := sh.Checkpoint(); err != nil {
				t.Fatalf("shards=%d checkpoint after batch %d: %v", n, bi, err)
			}
		}
	}
	if err := sh.WaitMaintenance(); err != nil {
		t.Fatal(err)
	}

	schema := base.Schema()
	cols := make([]int, schema.NumCols())
	for i := range cols {
		cols[i] = i
	}
	tx := sh.Begin()
	defer tx.Abort()
	var sb strings.Builder
	var rows []types.Row
	err = engine.Scan(tx, cols...).Run(func(b *vector.Batch, sel []uint32) error {
		for _, i := range sel {
			row := b.Row(int(i)).Clone()
			rows = append(rows, row)
			fmt.Fprintf(&sb, "%v\n", row)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Q1 and Q6 read only the lineitem table: rebuild one from the final
	// sharded state and run the real query code over it.
	qtbl, err := table.Load(tpch.LineitemSchema, rows, table.Options{Mode: table.ModePDT})
	if err != nil {
		t.Fatal(err)
	}
	qdb := &tpch.DB{Lineitem: qtbl}
	if q1, err = tpch.Q1(qdb); err != nil {
		t.Fatal(err)
	}
	if q6, err = tpch.Q6(qdb); err != nil {
		t.Fatal(err)
	}
	return sb.String(), q1, q6
}

func TestShardedDifferentialTPCH(t *testing.T) {
	if testing.Short() {
		t.Skip("TPC-H differential is not a -short test")
	}
	db, err := tpch.Load(0.005, table.ModePDT, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	script := genDiffScript(db.Gen, 6, 12)

	var refState, refQ1, refQ6 string
	for _, n := range []int{1, 2, 4, 8} {
		state, q1, q6 := runDiffScript(t, db.Lineitem, script, n)
		if n == 1 {
			refState, refQ1, refQ6 = state, q1, q6
			if strings.Count(refState, "\n") == 0 {
				t.Fatal("empty final state: the script did nothing")
			}
			continue
		}
		if state != refState {
			t.Fatalf("shards=%d: final state diverges from unsharded (%d vs %d bytes)", n, len(state), len(refState))
		}
		if q1 != refQ1 {
			t.Fatalf("shards=%d: Q1 diverges:\n%s\nwant:\n%s", n, q1, refQ1)
		}
		if q6 != refQ6 {
			t.Fatalf("shards=%d: Q6 diverges:\n%s\nwant:\n%s", n, q6, refQ6)
		}
	}
}
