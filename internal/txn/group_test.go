package txn

// Group-commit tests: the commit sequencer's contract under concurrency.
// Writers parked behind one leader flush must each get their own LSN, one
// fsync must cover the whole batch, Begin must never wait behind an
// in-flight fsync, a failed batch fsync must abort every transaction in the
// batch with nothing visible, and checkpoints must interleave with parked
// commits without breaking the layer invariants.

import (
	"bytes"
	"errors"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pdtstore/internal/types"
	"pdtstore/internal/wal"
)

// gateSync is a durability barrier a test holds shut: every sync parks on
// the gate until the test hands it a verdict (nil, or an injected failure).
type gateSync struct {
	entered chan struct{}
	verdict chan error
}

func newGateSync() *gateSync {
	return &gateSync{entered: make(chan struct{}, 16), verdict: make(chan error)}
}

func (g *gateSync) sync() error {
	g.entered <- struct{}{}
	return <-g.verdict
}

// waitFor polls cond under the manager lock until it holds (or the test
// deadline would make the failure obvious anyway).
func waitFor(t *testing.T, m *Manager, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		m.mu.Lock()
		ok := cond()
		m.mu.Unlock()
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGroupCommitBatchesFsyncs: concurrent writers commit over a log whose
// durability barrier is slow; every commit must succeed with a distinct,
// contiguous LSN, and the batch leader must have amortized the barrier —
// far fewer fsyncs than commits.
func TestGroupCommitBatchesFsyncs(t *testing.T) {
	var syncs atomic.Int64
	var buf bytes.Buffer
	log := wal.NewSyncedWriter(&buf, func() error {
		time.Sleep(200 * time.Microsecond) // a "disk" slow enough to park writers behind
		syncs.Add(1)
		return nil
	})
	m := newManager(t, 0, Options{WriteBudget: 1 << 20, Log: log})
	const workers, perWorker = 8, 25
	lsns := make([][]uint64, workers)
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx := m.Begin()
				key := int64(1000 + w*1000 + i)
				if err := tx.Insert(types.Row{types.Int(key), types.Int(int64(w)), types.Str("g")}); err != nil {
					errs <- err
					tx.Abort()
					continue
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					continue
				}
				lsns[w] = append(lsns[w], tx.CommitLSN())
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("worker error: %v", err)
	}
	const commits = workers * perWorker
	// Every waiter woke with its own LSN, and together they are exactly
	// 1..commits: the batch install walked the group's LSNs in order.
	var all []uint64
	for _, l := range lsns {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) != commits {
		t.Fatalf("collected %d LSNs, want %d", len(all), commits)
	}
	for i, lsn := range all {
		if lsn != uint64(i+1) {
			t.Fatalf("LSN sequence broken at %d: got %d", i, lsn)
		}
	}
	if got := m.LSN(); got != commits {
		t.Fatalf("commit clock = %d, want %d", got, commits)
	}
	if n := syncs.Load(); n >= commits {
		t.Fatalf("%d fsyncs for %d commits: no batching happened", n, commits)
	}
	// The log replays every commit in LSN order.
	recs, err := wal.Replay(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != commits {
		t.Fatalf("log holds %d records, want %d", len(recs), commits)
	}
	check := m.Begin()
	defer check.Abort()
	if keys := txnKeys(t, check); len(keys) != commits {
		t.Fatalf("final state has %d rows, want %d", len(keys), commits)
	}
}

// TestBeginRunsDuringFsync: the acceptance criterion that motivated the
// sequencer — the durability wait happens off the manager mutex, so Begin
// (and scans, and commit validation) proceed while a batch is inside fsync.
func TestBeginRunsDuringFsync(t *testing.T) {
	g := newGateSync()
	var buf bytes.Buffer
	m := newManager(t, 10, Options{Log: wal.NewSyncedWriter(&buf, g.sync)})

	leaderDone := make(chan error, 1)
	go func() {
		tx := m.Begin()
		if err := tx.Insert(types.Row{types.Int(1001), types.Int(0), types.Str("x")}); err != nil {
			leaderDone <- err
			return
		}
		leaderDone <- tx.Commit()
	}()
	<-g.entered // the batch is inside its fsync, manager mutex free

	beginOK := make(chan int, 1)
	go func() {
		tx := m.Begin()
		defer tx.Abort()
		beginOK <- len(txnKeys(t, tx))
	}()
	select {
	case n := <-beginOK:
		if n != 10 {
			t.Fatalf("snapshot during fsync saw %d rows, want 10 (commit not yet durable)", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Begin/Scan blocked behind an in-flight fsync")
	}
	select {
	case err := <-leaderDone:
		t.Fatalf("commit returned (%v) before its fsync completed", err)
	default:
	}
	g.verdict <- nil
	if err := <-leaderDone; err != nil {
		t.Fatal(err)
	}
	check := m.Begin()
	defer check.Abort()
	if n := len(txnKeys(t, check)); n != 11 {
		t.Fatalf("post-commit state has %d rows, want 11", n)
	}
}

// TestGroupCommitBatchFailureFailsAll: the fsync under a batch fails. Every
// transaction in the batch — the leader's and everything parked behind it —
// must get the error, the log must be poisoned, the clock must not move,
// and none of the batch may become visible.
func TestGroupCommitBatchFailureFailsAll(t *testing.T) {
	g := newGateSync()
	var buf bytes.Buffer
	m := newManager(t, 10, Options{Log: wal.NewSyncedWriter(&buf, g.sync)})

	const followers = 3
	results := make(chan error, followers+1)
	commit := func(key int64) {
		tx := m.Begin()
		if err := tx.Insert(types.Row{types.Int(key), types.Int(0), types.Str("f")}); err != nil {
			results <- err
			return
		}
		results <- tx.Commit()
	}
	go commit(2001)
	<-g.entered // leader parked at the barrier with its one-commit batch
	for i := 0; i < followers; i++ {
		go commit(int64(2002 + i))
	}
	// The in-flight leader batch stays at the head of pending until install,
	// so the queue holds it plus every parked follower.
	waitFor(t, m, "followers to park on the sequencer", func() bool { return len(m.pending) == followers+1 })

	g.verdict <- errors.New("injected: device died at the barrier")
	for i := 0; i < followers+1; i++ {
		err := <-results
		if err == nil {
			t.Fatal("a transaction in the failed batch committed")
		}
		if !strings.Contains(err.Error(), "WAL append failed") {
			t.Fatalf("unexpected batch failure error: %v", err)
		}
	}
	if got := m.LSN(); got != 0 {
		t.Fatalf("failed batch advanced the clock to %d", got)
	}
	check := m.Begin()
	defer check.Abort()
	if n := len(txnKeys(t, check)); n != 10 {
		t.Fatalf("state has %d rows after failed batch, want the original 10", n)
	}
	// The log is poisoned: later commits fail without reaching a barrier.
	tx := m.Begin()
	if err := tx.Insert(types.Row{types.Int(3001), types.Int(0), types.Str("p")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit on a poisoned log succeeded")
	}
}

// TestParkedCommitConflicts: a commit parked on the sequencer is ahead in
// the commit order, so a concurrent transaction touching the same tuple
// must abort with ErrConflict during validation — before parking — even
// though the earlier commit is not yet durable.
func TestParkedCommitConflicts(t *testing.T) {
	g := newGateSync()
	var buf bytes.Buffer
	m := newManager(t, 10, Options{Log: wal.NewSyncedWriter(&buf, g.sync)})

	t1 := m.Begin()
	t2 := m.Begin()
	if _, err := t1.UpdateByKey(types.Row{types.Int(10)}, 1, types.Int(111)); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.UpdateByKey(types.Row{types.Int(10)}, 1, types.Int(222)); err != nil {
		t.Fatal(err)
	}
	done1 := make(chan error, 1)
	go func() { done1 <- t1.Commit() }()
	<-g.entered // t1 parked at the barrier, not yet durable

	if err := t2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting commit against a parked transaction: err = %v, want ErrConflict", err)
	}
	g.verdict <- nil
	if err := <-done1; err != nil {
		t.Fatal(err)
	}
	check := m.Begin()
	defer check.Abort()
	if _, row, found, err := check.findByKey(types.Row{types.Int(10)}); err != nil || !found {
		t.Fatalf("key 10 missing after commit: %v", err)
	} else if row[1].I != 111 {
		t.Fatalf("key 10 col 1 = %d, want the parked winner's 111", row[1].I)
	}
}

// TestCheckpointInterleavesWithParkedCommits: a checkpoint arriving while a
// batch is inside its fsync (with more commits parked behind it) must wait
// out the round, freeze — rebasing the parked folds onto the fresh write
// layer — and complete while the rebased commits flush afterwards. Nothing
// is lost on either side.
func TestCheckpointInterleavesWithParkedCommits(t *testing.T) {
	g := newGateSync()
	var buf bytes.Buffer
	m := newManager(t, 10, Options{Log: wal.NewSyncedWriter(&buf, g.sync)})

	results := make(chan error, 3)
	commit := func(key int64) {
		tx := m.Begin()
		if err := tx.Insert(types.Row{types.Int(key), types.Int(0), types.Str("c")}); err != nil {
			results <- err
			return
		}
		results <- tx.Commit()
	}
	go commit(5001)
	<-g.entered // round 1 (just 5001) inside fsync
	go commit(5002)
	go commit(5003)
	waitFor(t, m, "followers to park", func() bool { return len(m.pending) == 3 })

	ckptDone := make(chan error, 1)
	go func() { ckptDone <- m.Checkpoint() }()
	waitFor(t, m, "checkpoint to queue behind the round", func() bool { return m.ckptWaiters == 1 })

	g.verdict <- nil // round 1 installs; the leader yields to the checkpointer,
	// which freezes and rebases the two parked commits, then round 2 flushes.
	<-g.entered
	g.verdict <- nil
	for i := 0; i < 3; i++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
	if err := <-ckptDone; err != nil {
		t.Fatal(err)
	}
	if err := m.WaitMaintenance(); err != nil {
		t.Fatal(err)
	}
	check := m.Begin()
	defer check.Abort()
	keys := txnKeys(t, check)
	if len(keys) != 13 {
		t.Fatalf("final state has %d rows, want 13", len(keys))
	}
	for _, want := range []int64{5001, 5002, 5003} {
		found := false
		for _, k := range keys {
			if k == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("key %d lost across the checkpoint/group-commit interleave", want)
		}
	}
	if err := m.WritePDT().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitStress is the commit-stress lane's main load: many writers
// over a real fsynced file log, racing an explicit checkpoint loop and
// background Write→Read folds (tiny budget). Every commit must succeed and
// be durable exactly once in a cold replay of the log directory. (Barrier
// failure under a batch is covered by TestGroupCommitBatchFailureFailsAll
// here and TestGroupCommitFsyncFailureRecovery at the DB level.)
func TestGroupCommitStress(t *testing.T) {
	dir := t.TempDir()
	log, recs, err := wal.OpenFileLog(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	defer log.Close()
	m := newManager(t, 0, Options{WriteBudget: 1 << 12, Log: log})

	const workers, perWorker = 8, 12
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker+8)
	stopCkpt := make(chan struct{})
	var ckptWG sync.WaitGroup
	ckptWG.Add(1)
	go func() {
		defer ckptWG.Done()
		for {
			select {
			case <-stopCkpt:
				return
			default:
			}
			if err := m.Checkpoint(); err != nil {
				errs <- err
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx := m.Begin()
				key := int64(10_000 + w*1000 + i)
				if err := tx.Insert(types.Row{types.Int(key), types.Int(int64(w)), types.Str("s")}); err != nil {
					errs <- err
					tx.Abort()
					continue
				}
				if err := tx.Commit(); err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(stopCkpt)
	ckptWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("stress error: %v", err)
	}
	if err := m.WaitMaintenance(); err != nil {
		t.Fatal(err)
	}
	const commits = workers * perWorker
	if got := m.LSN(); got != commits {
		t.Fatalf("commit clock = %d, want %d", got, commits)
	}
	check := m.Begin()
	defer check.Abort()
	keys := txnKeys(t, check)
	if len(keys) != commits {
		t.Fatalf("final state has %d rows, want %d", len(keys), commits)
	}
	seen := map[int64]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("duplicate key %d", k)
		}
		seen[k] = true
	}
	// Durability: a cold replay of the log directory holds every commit
	// exactly once, in LSN order.
	log2, recs, err := wal.OpenFileLog(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if len(recs) != commits {
		t.Fatalf("cold replay found %d records, want %d", len(recs), commits)
	}
	for i, rec := range recs {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, rec.LSN)
		}
	}
}
