package txn

// ApplyBatch equivalence tests: a batch applied through the shared
// resolution cursor must leave exactly the state the row-at-a-time
// Insert/DeleteByKey/UpdateByKey sequence leaves — under plain commits,
// under concurrent snapshots, across Write→Read migration and checkpoints,
// and through WAL replay.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"pdtstore/internal/engine"
	"pdtstore/internal/table"
	"pdtstore/internal/types"
	"pdtstore/internal/wal"
)

// snapshotRows drains every column of rel into comparable rows.
func snapshotRows(t *testing.T, rel engine.Relation) []types.Row {
	t.Helper()
	schema := rel.Schema()
	cols := make([]int, schema.NumCols())
	for i := range cols {
		cols[i] = i
	}
	b, err := engine.Scan(rel, cols...).Collect()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]types.Row, b.Len())
	for i := range out {
		out[i] = b.Row(i)
	}
	return out
}

func sameRows(t *testing.T, got, want []types.Row, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range got {
		if types.CompareRows(got[i], want[i]) != 0 {
			t.Fatalf("%s: row %d is %v, want %v", label, i, got[i], want[i])
		}
	}
}

// randomBatch builds a batch of nOps ops over distinct keys: deletes and
// updates of (possibly absent) keys in [10, 10*tableRows], inserts of fresh
// odd keys.
func randomBatch(rng *rand.Rand, tableRows, nOps int, tag *int64) []table.Op {
	used := map[int64]bool{}
	ops := make([]table.Op, 0, nOps)
	for len(ops) < nOps {
		switch rng.Intn(3) {
		case 0: // insert a fresh odd key
			*tag++
			k := (*tag)*10 + 5
			if used[k] {
				continue
			}
			used[k] = true
			ops = append(ops, table.Op{Kind: table.OpInsert,
				Row: types.Row{types.Int(k), types.Int(*tag), types.Str(fmt.Sprintf("ins%d", *tag))}})
		case 1: // delete a random (maybe missing) even key
			k := int64(1+rng.Intn(tableRows+4)) * 10
			if used[k] {
				continue
			}
			used[k] = true
			ops = append(ops, table.Op{Kind: table.OpDelete, Key: types.Row{types.Int(k)}})
		default: // update a random (maybe missing) even key
			k := int64(1+rng.Intn(tableRows+4)) * 10
			if used[k] {
				continue
			}
			used[k] = true
			*tag++
			col := 1 + rng.Intn(2)
			v := types.Int(*tag)
			if col == 2 {
				v = types.Str(fmt.Sprintf("upd%d", *tag))
			}
			ops = append(ops, table.Op{Kind: table.OpUpdate, Key: types.Row{types.Int(k)}, Col: col, Val: v})
		}
	}
	return ops
}

// applyPerOp plays a batch through the row-at-a-time API.
func applyPerOp(t *testing.T, tx *Txn, ops []table.Op) int {
	t.Helper()
	applied := 0
	for _, op := range ops {
		switch op.Kind {
		case table.OpInsert:
			if err := tx.Insert(op.Row); err != nil {
				t.Fatal(err)
			}
			applied++
		case table.OpDelete:
			ok, err := tx.DeleteByKey(op.Key)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				applied++
			}
		case table.OpUpdate:
			ok, err := tx.UpdateByKey(op.Key, op.Col, op.Val)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				applied++
			}
		}
	}
	return applied
}

func TestApplyBatchMatchesPerOp(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			mBatch := newManager(t, 30, Options{})
			mPerOp := newManager(t, 30, Options{})
			rng := rand.New(rand.NewSource(seed))
			tagA, tagB := int64(0), int64(0)
			for round := 0; round < 4; round++ {
				ops := randomBatch(rng, 30, 25, &tagA)
				tagB = tagA // generators share the key sequence

				txB := mBatch.Begin()
				nB, err := txB.ApplyBatch(ops)
				if err != nil {
					t.Fatal(err)
				}
				txP := mPerOp.Begin()
				nP := applyPerOp(t, txP, ops)
				if nB != nP {
					t.Fatalf("batch applied %d ops, per-op %d", nB, nP)
				}
				// Views agree before commit (read-your-own-writes)...
				sameRows(t, snapshotRows(t, txB), snapshotRows(t, txP), "pre-commit view")
				if err := txB.Commit(); err != nil {
					t.Fatal(err)
				}
				if err := txP.Commit(); err != nil {
					t.Fatal(err)
				}
				// ...and after commit.
				vb, vp := mBatch.Begin(), mPerOp.Begin()
				sameRows(t, snapshotRows(t, vb), snapshotRows(t, vp), "committed view")
				vb.Abort()
				vp.Abort()
				_ = tagB
			}
			// Fold everything down and compare the stable images too.
			if err := mBatch.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := mPerOp.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			sameRows(t, snapshotRows(t, mBatch.Table()), snapshotRows(t, mPerOp.Table()), "checkpointed image")
		})
	}
}

func TestApplyBatchSnapshotIsolation(t *testing.T) {
	m := newManager(t, 20, Options{})

	reader := m.Begin() // starts before any batch
	before := snapshotRows(t, reader)

	writer := m.Begin()
	if _, err := writer.ApplyBatch([]table.Op{
		{Kind: table.OpInsert, Row: types.Row{types.Int(15), types.Int(1), types.Str("x")}},
		{Kind: table.OpDelete, Key: types.Row{types.Int(40)}},
		{Kind: table.OpUpdate, Key: types.Row{types.Int(70)}, Col: 1, Val: types.Int(99)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}

	// The earlier snapshot must not see the batch.
	sameRows(t, snapshotRows(t, reader), before, "isolated snapshot")

	// A batch applied on the old snapshot over keys the writer did not
	// touch serializes cleanly against the committed batch.
	if _, err := reader.ApplyBatch([]table.Op{
		{Kind: table.OpUpdate, Key: types.Row{types.Int(100)}, Col: 1, Val: types.Int(-1)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
	final := m.Begin()
	defer final.Abort()
	rows := snapshotRows(t, final)
	wantGone, sawIns, sawUpd := true, false, false
	for _, r := range rows {
		switch r[0].I {
		case 40:
			wantGone = false
		case 15:
			sawIns = true
		case 100:
			sawUpd = r[1].I == -1
		}
	}
	if !wantGone || !sawIns || !sawUpd {
		t.Fatalf("merged batches wrong: gone=%v ins=%v upd=%v\n%v", wantGone, sawIns, sawUpd, rows)
	}
}

func TestApplyBatchConflictAborts(t *testing.T) {
	m := newManager(t, 10, Options{})
	a, b := m.Begin(), m.Begin()
	upd := []table.Op{{Kind: table.OpUpdate, Key: types.Row{types.Int(50)}, Col: 1, Val: types.Int(1)}}
	if _, err := a.ApplyBatch(upd); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ApplyBatch(upd); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("expected conflict, got %v", err)
	}
}

func TestApplyBatchWALReplay(t *testing.T) {
	var buf bytes.Buffer
	m := newManager(t, 25, Options{Log: wal.NewWriter(&buf)})
	rng := rand.New(rand.NewSource(7))
	tag := int64(0)
	for round := 0; round < 3; round++ {
		tx := m.Begin()
		if _, err := tx.ApplyBatch(randomBatch(rng, 25, 15, &tag)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	live := m.Begin()
	want := snapshotRows(t, live)
	live.Abort()

	// Crash-recover: a fresh manager over the same checkpointed image
	// replays the log and must reach the identical view.
	recovered := newManager(t, 25, Options{})
	records, err := wal.Replay(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("replayed %d records, want 3", len(records))
	}
	if err := recovered.Recover(records); err != nil {
		t.Fatal(err)
	}
	tx := recovered.Begin()
	defer tx.Abort()
	sameRows(t, snapshotRows(t, tx), want, "recovered view")
}

func TestApplyBatchRejectsBadBatches(t *testing.T) {
	m := newManager(t, 10, Options{})
	tx := m.Begin()
	defer tx.Abort()

	// Duplicate-key insert aborts with an error.
	if _, err := tx.ApplyBatch([]table.Op{
		{Kind: table.OpInsert, Row: types.Row{types.Int(50), types.Int(0), types.Str("dup")}},
	}); err == nil {
		t.Fatal("duplicate-key insert accepted")
	}

	// Conflicting same-key ops are rejected up front.
	if _, err := tx.ApplyBatch([]table.Op{
		{Kind: table.OpDelete, Key: types.Row{types.Int(30)}},
		{Kind: table.OpInsert, Row: types.Row{types.Int(30), types.Int(0), types.Str("re")}},
	}); err == nil {
		t.Fatal("delete+insert of one key accepted")
	}

	// Sort-key updates must go through UpdateByKey.
	if _, err := tx.ApplyBatch([]table.Op{
		{Kind: table.OpUpdate, Key: types.Row{types.Int(30)}, Col: 0, Val: types.Int(31)},
	}); err == nil {
		t.Fatal("sort-key update accepted")
	}

	// Two updates of one key are fine and apply in order.
	if n, err := tx.ApplyBatch([]table.Op{
		{Kind: table.OpUpdate, Key: types.Row{types.Int(30)}, Col: 1, Val: types.Int(7)},
		{Kind: table.OpUpdate, Key: types.Row{types.Int(30)}, Col: 1, Val: types.Int(8)},
	}); err != nil || n != 2 {
		t.Fatalf("same-key updates: n=%d err=%v", n, err)
	}
	var got int64
	for _, r := range snapshotRows(t, tx) {
		if r[0].I == 30 {
			got = r[1].I
		}
	}
	if got != 8 {
		t.Fatalf("last update should win, got %d", got)
	}
}

// TestApplyBatchAcrossMigration drives enough batched commits through a tiny
// write budget that Write→Read propagation (the bulk merge) runs mid-stream,
// and checks the view against a per-op twin with an unbounded budget.
func TestApplyBatchAcrossMigration(t *testing.T) {
	small := newManager(t, 40, Options{WriteBudget: 1}) // migrate after every commit
	big := newManager(t, 40, Options{WriteBudget: 1 << 30})
	rng := rand.New(rand.NewSource(3))
	tag := int64(0)
	for round := 0; round < 6; round++ {
		ops := randomBatch(rng, 40, 20, &tag)
		txS := small.Begin()
		if _, err := txS.ApplyBatch(ops); err != nil {
			t.Fatal(err)
		}
		if err := txS.Commit(); err != nil {
			t.Fatal(err)
		}
		txB := big.Begin()
		applyPerOp(t, txB, ops)
		if err := txB.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := small.WaitMaintenance(); err != nil { // migration is a background fold now
		t.Fatal(err)
	}
	if small.ReadPDT().Empty() {
		t.Fatal("write budget never triggered a migration")
	}
	a, b := small.Begin(), big.Begin()
	defer a.Abort()
	defer b.Abort()
	sameRows(t, snapshotRows(t, a), snapshotRows(t, b), "post-migration view")
}
