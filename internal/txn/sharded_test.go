package txn

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"pdtstore/internal/engine"
	"pdtstore/internal/table"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
	"pdtstore/internal/wal"
)

// newSharded splits a freshly loaded n-row table (keys 10, 20, ...) into
// `shards` range shards, each under its own manager. When logs is non-nil it
// receives one in-memory WAL writer per shard (buffer i backs shard i).
func newSharded(t *testing.T, n, shards int, opts Options, logs *[]*bytes.Buffer) *Sharded {
	t.Helper()
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{types.Int(int64((i + 1) * 10)), types.Int(int64(i)), types.Str(fmt.Sprintf("s%d", i))}
	}
	tbl, err := table.Load(testSchema(), rows, table.Options{Mode: table.ModePDT, BlockRows: 32})
	if err != nil {
		t.Fatal(err)
	}
	stores, keys, err := table.ShardSplit(tbl.Store(), shards, tbl.Store().Device(), 32, false)
	if err != nil {
		t.Fatal(err)
	}
	mgrs := make([]*Manager, shards)
	for i, st := range stores {
		shtbl, err := table.FromStore(st, table.Options{Mode: table.ModePDT, BlockRows: 32})
		if err != nil {
			t.Fatal(err)
		}
		sopts := opts
		if logs != nil {
			buf := &bytes.Buffer{}
			*logs = append(*logs, buf)
			sopts.Log = wal.NewWriter(buf)
		}
		mgrs[i], err = NewManager(shtbl, sopts)
		if err != nil {
			t.Fatal(err)
		}
	}
	s, err := NewSharded(mgrs, keys)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func stxnKeys(t *testing.T, tx *STxn) []int64 {
	t.Helper()
	src, err := tx.Scan([]int{0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := vector.NewBatch([]types.Kind{types.Int64}, 64)
	for {
		n, err := src.Next(out, 64)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	return append([]int64(nil), out.Vecs[0].I...)
}

func TestNewShardedValidation(t *testing.T) {
	m := newManager(t, 4, Options{})
	if _, err := NewSharded(nil, nil); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := NewSharded([]*Manager{m}, []types.Row{{types.Int(5)}}); err == nil {
		t.Fatal("key count mismatch accepted")
	}
	m2 := newManager(t, 4, Options{})
	if _, err := NewSharded([]*Manager{m, m2}, []types.Row{{types.Int(5), types.Int(6)}}); err == nil {
		t.Fatal("overlong split key accepted")
	}
	m3 := newManager(t, 4, Options{})
	if _, err := NewSharded([]*Manager{m, m2, m3}, []types.Row{{types.Int(9)}, {types.Int(5)}}); err == nil {
		t.Fatal("descending split keys accepted")
	}
}

func TestShardOf(t *testing.T) {
	s := newSharded(t, 40, 4, Options{}, nil)
	if len(s.Keys()) != 3 {
		t.Fatalf("keys: %v", s.Keys())
	}
	// Quantile cuts of keys 10..400 land at 110, 210, 310.
	for _, c := range []struct {
		key   int64
		shard int
	}{{10, 0}, {105, 0}, {110, 1}, {209, 1}, {210, 2}, {310, 3}, {400, 3}, {9999, 3}} {
		if got := s.ShardOf(types.Row{types.Int(c.key)}); got != c.shard {
			t.Errorf("ShardOf(%d) = %d, want %d (cuts %v)", c.key, got, c.shard, s.Keys())
		}
	}
}

func TestShardedScanMatchesUnsharded(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4} {
		s := newSharded(t, 40, shards, Options{}, nil)
		tx := s.Begin()
		keys := stxnKeys(t, tx)
		if len(keys) != 40 {
			t.Fatalf("shards=%d: %d rows", shards, len(keys))
		}
		for i, k := range keys {
			if k != int64((i+1)*10) {
				t.Fatalf("shards=%d: row %d has key %d", shards, i, k)
			}
		}
		tx.Abort()
	}
}

func TestShardedCommitVisibilityAndRIDs(t *testing.T) {
	s := newSharded(t, 40, 4, Options{}, nil)

	// A cross-shard transaction: insert into shard 0, delete from shard 3,
	// update in shard 1.
	tx := s.Begin()
	if err := tx.Insert(types.Row{types.Int(15), types.Int(0), types.Str("new")}); err != nil {
		t.Fatal(err)
	}
	if ok, err := tx.DeleteByKey(types.Row{types.Int(400)}); err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if ok, err := tx.UpdateByKey(types.Row{types.Int(120)}, 1, types.Int(999)); err != nil || !ok {
		t.Fatalf("update: %v %v", ok, err)
	}

	// Uncommitted: invisible to a concurrent snapshot; visible to its own.
	other := s.Begin()
	if got := stxnKeys(t, other); len(got) != 40 {
		t.Fatalf("uncommitted writes visible: %d rows", len(got))
	}
	if got := stxnKeys(t, tx); len(got) != 40 || got[1] != 15 {
		t.Fatalf("own writes invisible: %v", got[:3])
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx.CommitLSN() == 0 {
		t.Fatal("cross-shard commit got no LSN")
	}
	// Old snapshot still clean; new snapshot sees all three effects at once.
	if got := stxnKeys(t, other); len(got) != 40 {
		t.Fatalf("commit leaked into older snapshot: %d rows", len(got))
	}
	other.Abort()

	after := s.Begin()
	defer after.Abort()
	keys := stxnKeys(t, after)
	if len(keys) != 40 || keys[1] != 15 || keys[len(keys)-1] != 390 {
		t.Fatalf("committed state wrong: n=%d first=%v last=%v", len(keys), keys[:3], keys[len(keys)-1])
	}
	// RIDs are globally consecutive across the shard concatenation.
	src, err := after.Scan([]int{0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := vector.NewBatch([]types.Kind{types.Int64}, 64)
	for {
		n, err := src.Next(out, 64)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	for i, rid := range out.Rids {
		if rid != uint64(i) {
			t.Fatalf("RID %d at position %d", rid, i)
		}
	}
	// A row moved across shards by a sort-key update stays one row.
	moved := s.Begin()
	defer moved.Abort()
	if ok, err := moved.UpdateByKey(types.Row{types.Int(20)}, 0, types.Int(395)); err != nil || !ok {
		t.Fatalf("cross-shard key move: %v %v", ok, err)
	}
	got := stxnKeys(t, moved)
	if len(got) != 40 {
		t.Fatalf("key move changed row count: %d", len(got))
	}
	if got[len(got)-2] != 390 || got[len(got)-1] != 395 {
		t.Fatalf("moved key not at destination: %v", got[len(got)-3:])
	}
}

// A commit on one shard must not invalidate the other shards' cached
// Write-PDT snapshots: Begin's per-shard snapshot is LSN-keyed per shard.
func TestShardedSnapshotInvalidatesPerShard(t *testing.T) {
	s := newSharded(t, 40, 2, Options{}, nil)
	before := s.Begin()
	defer before.Abort()

	// Commit on shard 0 only (key 15 routes there).
	tx := s.Begin()
	if err := tx.Insert(types.Row{types.Int(15), types.Int(0), types.Str("x")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	after := s.Begin()
	defer after.Abort()
	if before.ShardTxn(0).writeSnap == after.ShardTxn(0).writeSnap {
		t.Fatal("shard 0 snapshot not refreshed after its commit")
	}
	if before.ShardTxn(1).writeSnap != after.ShardTxn(1).writeSnap {
		t.Fatal("commit on shard 0 forced a fresh snapshot of shard 1")
	}
}

func TestShardedCrossShardConflict(t *testing.T) {
	s := newSharded(t, 40, 4, Options{}, nil)
	a, b := s.Begin(), s.Begin()
	for _, tx := range []*STxn{a, b} {
		if ok, err := tx.UpdateByKey(types.Row{types.Int(50)}, 1, types.Int(1)); err != nil || !ok {
			t.Fatalf("update: %v %v", ok, err)
		}
		if ok, err := tx.UpdateByKey(types.Row{types.Int(350)}, 1, types.Int(2)); err != nil || !ok {
			t.Fatalf("update: %v %v", ok, err)
		}
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting cross-shard commit: %v", err)
	}
	// The loser's effects appear nowhere; the winner's everywhere.
	check := s.Begin()
	defer check.Abort()
	for _, key := range []int64{50, 350} {
		_, row, found, err := check.txns[s.ShardOf(types.Row{types.Int(key)})].findByKey(types.Row{types.Int(key)})
		if err != nil || !found {
			t.Fatalf("key %d: %v %v", key, found, err)
		}
		want := int64(1)
		if key == 350 {
			want = 2
		}
		if row[1].I != want {
			t.Fatalf("key %d: col a = %d, want %d", key, row[1].I, want)
		}
	}
}

// Cross-shard commits stamp the same LSN on every participant's WAL stream,
// with the participant set recorded, and the global clock orders all streams.
func TestShardedCrossCommitWALStamp(t *testing.T) {
	var logs []*bytes.Buffer
	s := newSharded(t, 40, 2, Options{}, &logs)

	// One single-shard commit on shard 0, then one cross-shard commit.
	tx := s.Begin()
	if err := tx.Insert(types.Row{types.Int(15), types.Int(0), types.Str("x")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	cross := s.Begin()
	if err := cross.Insert(types.Row{types.Int(16), types.Int(0), types.Str("y")}); err != nil {
		t.Fatal(err)
	}
	if err := cross.Insert(types.Row{types.Int(396), types.Int(0), types.Str("z")}); err != nil {
		t.Fatal(err)
	}
	if err := cross.Commit(); err != nil {
		t.Fatal(err)
	}
	if cross.CommitLSN() != tx.CommitLSN()+1 {
		t.Fatalf("clock: single=%d cross=%d", tx.CommitLSN(), cross.CommitLSN())
	}

	recs0, err := wal.Replay(bytes.NewReader(logs[0].Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	recs1, err := wal.Replay(bytes.NewReader(logs[1].Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs0) != 2 || len(recs1) != 1 {
		t.Fatalf("stream records: %d, %d", len(recs0), len(recs1))
	}
	if recs0[0].LSN != tx.CommitLSN() || recs0[0].Shard != 0 || len(recs0[0].Parts) != 0 {
		t.Fatalf("single-shard record: %+v", recs0[0])
	}
	for i, rec := range []wal.Record{recs0[1], recs1[0]} {
		if rec.LSN != cross.CommitLSN() || rec.Shard != uint32(i) {
			t.Fatalf("cross record on stream %d: LSN=%d shard=%d", i, rec.LSN, rec.Shard)
		}
		if len(rec.Parts) != 2 || rec.Parts[0] != 0 || rec.Parts[1] != 1 {
			t.Fatalf("cross record participants: %v", rec.Parts)
		}
	}
}

// Parallel plans over a sharded transaction must reproduce the serial scan
// exactly: morsels route shard-by-shard (never crossing a boundary), empty
// clamped shards still surface their delta inserts, and RIDs stay global.
func TestShardedParallelScanMatchesSerial(t *testing.T) {
	s := newSharded(t, 400, 4, Options{}, nil)

	// Dirty every shard: inserts (including at shard boundaries), deletes,
	// and updates, committed so they sit in the Write-PDTs.
	tx := s.Begin()
	for i := 0; i < 40; i++ {
		if err := tx.Insert(types.Row{types.Int(int64(i*100 + 5)), types.Int(-1), types.Str("ins")}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if ok, err := tx.DeleteByKey(types.Row{types.Int(int64((i*17 + 1) * 10))}); err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	check := s.Begin()
	defer check.Abort()
	serial, err := engine.Scan(check, 0, 1).WithRids().Parallel(1).Collect()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		par, err := engine.Scan(check, 0, 1).WithRids().Parallel(workers).Collect()
		if err != nil {
			t.Fatal(err)
		}
		if par.Len() != serial.Len() {
			t.Fatalf("workers=%d: %d rows, serial %d", workers, par.Len(), serial.Len())
		}
		for i := 0; i < serial.Len(); i++ {
			if par.Rids[i] != serial.Rids[i] || par.Vecs[0].I[i] != serial.Vecs[0].I[i] {
				t.Fatalf("workers=%d row %d: (%d,%d) != serial (%d,%d)", workers, i,
					par.Rids[i], par.Vecs[0].I[i], serial.Rids[i], serial.Vecs[0].I[i])
			}
		}
	}

	// Range-clamped parallel scan that leaves middle shards empty.
	serialR, err := engine.Scan(check, 0).WithRids().Parallel(1).
		Range(types.Row{types.Int(90)}, types.Row{types.Int(130)}).Collect()
	if err != nil {
		t.Fatal(err)
	}
	parR, err := engine.Scan(check, 0).WithRids().Parallel(4).
		Range(types.Row{types.Int(90)}, types.Row{types.Int(130)}).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if parR.Len() != serialR.Len() {
		t.Fatalf("range: %d rows, serial %d", parR.Len(), serialR.Len())
	}
	for i := 0; i < serialR.Len(); i++ {
		if parR.Rids[i] != serialR.Rids[i] || parR.Vecs[0].I[i] != serialR.Vecs[0].I[i] {
			t.Fatalf("range row %d differs", i)
		}
	}
}

// Hammer the single-shard fast path from many writers on disjoint shards,
// with cross-shard commits mixed in, under race detection.
func TestShardedConcurrentWriters(t *testing.T) {
	s := newSharded(t, 400, 4, Options{WriteBudget: 16 << 10}, nil)
	const perWriter = 25
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Writer w inserts fresh keys into shard w's range: keys ending
			// in 5 never collide with the loaded multiples of 10, and
			// w*1000+505.. sits inside shard w (cuts at 1010, 2010, 3010
			// for keys 10..4000).
			for i := 0; i < perWriter; i++ {
				tx := s.Begin()
				key := int64(w*1000 + 505 + i*10)
				if err := tx.Insert(types.Row{types.Int(key), types.Int(int64(w)), types.Str("w")}); err != nil {
					errs <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			tx := s.Begin()
			// Keys ending in 1, one in shard 0 and one in shard 3.
			if err := tx.Insert(types.Row{types.Int(int64(601 + i*10)), types.Int(0), types.Str("x")}); err != nil {
				errs <- err
				return
			}
			if err := tx.Insert(types.Row{types.Int(int64(3601 + i*10)), types.Int(0), types.Str("y")}); err != nil {
				errs <- err
				return
			}
			if err := tx.Commit(); err != nil && !errors.Is(err, ErrConflict) {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := s.WaitMaintenance(); err != nil {
		t.Fatal(err)
	}
	tx := s.Begin()
	defer tx.Abort()
	keys := stxnKeys(t, tx)
	if len(keys) != 400+4*perWriter+20 {
		t.Fatalf("final row count %d, want %d", len(keys), 400+4*perWriter+20)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys out of order at %d: %d >= %d", i, keys[i-1], keys[i])
		}
	}
}

// Checkpoints interleaved with sharded commits preserve the view.
func TestShardedCheckpoint(t *testing.T) {
	s := newSharded(t, 40, 2, Options{}, nil)
	tx := s.Begin()
	if err := tx.Insert(types.Row{types.Int(15), types.Int(0), types.Str("x")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(types.Row{types.Int(395), types.Int(0), types.Str("y")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.WaitMaintenance(); err != nil {
		t.Fatal(err)
	}
	tx2 := s.Begin()
	defer tx2.Abort()
	keys := stxnKeys(t, tx2)
	if len(keys) != 42 || keys[1] != 15 || keys[len(keys)-2] != 395 || keys[len(keys)-1] != 400 {
		t.Fatalf("post-checkpoint state: n=%d head=%v tail=%v", len(keys), keys[:3], keys[len(keys)-3:])
	}
	// Write-PDTs folded away.
	for i := 0; i < s.Shards(); i++ {
		if c := s.Shard(i).WritePDT().Count(); c != 0 {
			t.Fatalf("shard %d Write-PDT still holds %d entries", i, c)
		}
	}
}
