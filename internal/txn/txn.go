// Package txn implements the paper's three-layer PDT transaction scheme
// (§3.3, Figure 14): a disk-resident stable table, a large RAM-resident
// Read-PDT, a small master Write-PDT that committing transactions modify,
// and per-transaction Trans-PDTs holding uncommitted updates.
//
// Transactions get snapshot isolation without locks: starting a transaction
// copies the Write-PDT (sharing the copy when nothing committed in between)
// and stacks a private, initially empty Trans-PDT on top. Commit serializes
// the Trans-PDT against every transaction that committed during its lifetime
// (Algorithm 9's TZ set, with reference counting) — aborting on write-write
// conflict — and propagates the result into the master Write-PDT. When the
// Write-PDT outgrows its budget, its contents migrate to the Read-PDT via
// Propagate.
package txn

import (
	"errors"
	"fmt"
	"sync"

	"pdtstore/internal/engine"
	"pdtstore/internal/pdt"
	"pdtstore/internal/table"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
	"pdtstore/internal/wal"
)

// ErrTxnDone is returned when using a committed or aborted transaction.
var ErrTxnDone = errors.New("txn: transaction already finished")

// ErrConflict wraps the PDT-level conflict detected at commit.
var ErrConflict = errors.New("txn: write-write conflict, transaction aborted")

// Manager coordinates transactions over one PDT-mode table.
type Manager struct {
	mu  sync.Mutex
	tbl *table.Table

	readPDT  *pdt.PDT
	writePDT *pdt.PDT

	lsn       uint64 // logical commit clock
	snapLSN   uint64 // lsn at which snapCache was taken
	snapCache *pdt.PDT

	running   map[*Txn]struct{}
	committed []*committedTxn // Algorithm 9's TZ, in commit order

	writeBudget uint64 // bytes before Write→Read propagation
	log         *wal.Writer
	entrywise   bool
}

type committedTxn struct {
	serialized *pdt.PDT
	commitLSN  uint64
	refcnt     int
}

// Options configures the manager.
type Options struct {
	// WriteBudget caps the Write-PDT's memory before its contents migrate
	// to the Read-PDT (the paper keeps the Write-PDT smaller than the CPU
	// cache). Zero selects 256 KiB.
	WriteBudget uint64
	// Log, when set, receives one record per commit (the WAL).
	Log *wal.Writer
	// EntrywisePropagate folds PDT layers with the per-entry reference
	// algorithm instead of the bulk merge. It exists so the update
	// benchmarks can measure the pre-vectorized write path; production
	// callers leave it false.
	EntrywisePropagate bool
}

// NewManager wraps a ModePDT table. The table's own PDT becomes the
// Read-PDT; direct table updates must stop once a manager owns it.
func NewManager(tbl *table.Table, opts Options) (*Manager, error) {
	if tbl.Mode() != table.ModePDT {
		return nil, fmt.Errorf("txn: manager requires a ModePDT table, got %v", tbl.Mode())
	}
	budget := opts.WriteBudget
	if budget == 0 {
		budget = 256 << 10
	}
	return &Manager{
		tbl:         tbl,
		readPDT:     tbl.PDT(),
		writePDT:    pdt.New(tbl.Schema(), 0),
		running:     map[*Txn]struct{}{},
		writeBudget: budget,
		log:         opts.Log,
		entrywise:   opts.EntrywisePropagate,
	}, nil
}

// propagate folds src into dst with the configured algorithm.
func (m *Manager) propagate(dst, src *pdt.PDT) error {
	if m.entrywise {
		return dst.PropagateEntrywise(src)
	}
	return dst.Propagate(src)
}

// Table returns the underlying table.
func (m *Manager) Table() *table.Table { return m.tbl }

// ReadPDT returns the current Read-PDT (for stats and tests).
func (m *Manager) ReadPDT() *pdt.PDT { return m.readPDT }

// WritePDT returns the current master Write-PDT (for stats and tests).
func (m *Manager) WritePDT() *pdt.PDT { return m.writePDT }

// Begin starts a transaction with a private snapshot.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.snapCache == nil || m.snapLSN != m.lsn {
		// A commit happened since the last snapshot copy (or none exists):
		// take a fresh copy. Transactions starting at the same logical time
		// share it, as §3.3 prescribes.
		m.snapCache = m.writePDT.Copy()
		m.snapLSN = m.lsn
	}
	t := &Txn{
		mgr:       m,
		startLSN:  m.lsn,
		readPDT:   m.readPDT,
		writeSnap: m.snapCache,
		trans:     pdt.New(m.tbl.Schema(), 0),
	}
	m.running[t] = struct{}{}
	return t
}

// finish removes t from the running set and releases TZ references.
func (m *Manager) finish(t *Txn) {
	delete(m.running, t)
	kept := m.committed[:0]
	for _, c := range m.committed {
		if c.commitLSN > t.startLSN {
			c.refcnt--
		}
		if c.refcnt > 0 {
			kept = append(kept, c)
		}
	}
	m.committed = kept
}

// maybePropagateLocked migrates the Write-PDT into the Read-PDT when it
// outgrows its budget and no transaction is active (active snapshots share
// the Read-PDT, which must therefore stay immutable under them).
func (m *Manager) maybePropagateLocked() error {
	if m.writePDT.MemBytes() < m.writeBudget || len(m.running) > 0 {
		return nil
	}
	if err := m.propagate(m.readPDT, m.writePDT); err != nil {
		return err
	}
	m.writePDT = pdt.New(m.tbl.Schema(), 0)
	m.snapCache = nil
	return nil
}

// Checkpoint folds all committed state (Read- and Write-PDT) into a new
// stable image. It requires quiescence (no running transactions).
func (m *Manager) Checkpoint() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.running) > 0 {
		return fmt.Errorf("txn: checkpoint requires no running transactions (%d active)", len(m.running))
	}
	if err := m.propagate(m.readPDT, m.writePDT); err != nil {
		return err
	}
	m.writePDT = pdt.New(m.tbl.Schema(), 0)
	m.snapCache = nil
	if err := m.tbl.Checkpoint(); err != nil {
		return err
	}
	m.readPDT = m.tbl.PDT()
	return nil
}

// Recover rebuilds the committed state from WAL records (applied on top of
// the manager's current checkpointed state, in LSN order).
func (m *Manager) Recover(records []wal.Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, rec := range records {
		p, err := pdt.Rebuild(m.tbl.Schema(), 0, rec.Entries)
		if err != nil {
			return fmt.Errorf("txn: recover LSN %d: %w", rec.LSN, err)
		}
		if err := m.propagate(m.writePDT, p); err != nil {
			return fmt.Errorf("txn: recover LSN %d: %w", rec.LSN, err)
		}
		m.lsn = rec.LSN
	}
	return nil
}

// Txn is one transaction: a snapshot (Read-PDT + Write-PDT copy) plus a
// private Trans-PDT of uncommitted updates.
type Txn struct {
	mgr       *Manager
	startLSN  uint64
	readPDT   *pdt.PDT
	writeSnap *pdt.PDT
	trans     *pdt.PDT
	done      bool
}

// Schema returns the table schema (making Txn an engine.Relation: plans can
// be built directly over a transaction's view).
func (t *Txn) Schema() *types.Schema { return t.mgr.tbl.Schema() }

// Scan returns the transaction's view: stable image merged with the three
// PDT layers (Equation 9: TABLE₀ ∘ R ∘ W ∘ T), stacked by the engine.
func (t *Txn) Scan(cols []int, loKey, hiKey types.Row) (pdt.BatchSource, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	store := t.mgr.tbl.Store()
	from, to := store.SIDRange(loKey, hiKey)
	base := store.NewScanner(cols, from, to)
	return engine.StackPDTs(base, cols, from, true, t.readPDT, t.writeSnap, t.trans), nil
}

// findByKey locates a visible tuple in the transaction's view.
func (t *Txn) findByKey(key types.Row) (rid uint64, row types.Row, found bool, err error) {
	schema := t.mgr.tbl.Schema()
	if len(key) != len(schema.SortKey) {
		return 0, nil, false, fmt.Errorf("txn: need the full %d-column sort key", len(schema.SortKey))
	}
	cols := make([]int, schema.NumCols())
	for i := range cols {
		cols[i] = i
	}
	err = engine.Scan(t, cols...).Range(key, key).BatchSize(256).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				r := b.Row(int(i))
				cmp := schema.CompareKeyToRow(key, r)
				if cmp == 0 {
					rid, row, found = b.Rids[i], r, true
					return engine.Stop
				}
				if cmp < 0 {
					return engine.Stop
				}
			}
			return nil
		})
	if err != nil {
		return 0, nil, false, err
	}
	return rid, row, found, nil
}

// visibleRows returns the transaction's current row count.
func (t *Txn) visibleRows() uint64 {
	n := int64(t.mgr.tbl.Store().NRows())
	n += t.readPDT.Delta() + t.writeSnap.Delta() + t.trans.Delta()
	return uint64(n)
}

// insertPosition finds the RID where key belongs in this transaction's view.
func (t *Txn) insertPosition(key types.Row) (rid uint64, dup bool, err error) {
	schema := t.mgr.tbl.Schema()
	rid = t.visibleRows()
	err = engine.Scan(t, schema.SortKey...).Range(key, nil).BatchSize(256).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				cmp := types.CompareRows(key, b.Row(int(i)))
				if cmp == 0 {
					rid, dup = b.Rids[i], true
					return engine.Stop
				}
				if cmp < 0 {
					rid = b.Rids[i]
					return engine.Stop
				}
			}
			return nil
		})
	if err != nil {
		return 0, false, err
	}
	return rid, dup, nil
}

// Insert adds a tuple within the transaction.
func (t *Txn) Insert(row types.Row) error {
	if t.done {
		return ErrTxnDone
	}
	schema := t.mgr.tbl.Schema()
	if err := schema.ValidateRow(row); err != nil {
		return err
	}
	key := schema.KeyOf(row)
	rid, dup, err := t.insertPosition(key)
	if err != nil {
		return err
	}
	if dup {
		return fmt.Errorf("txn: duplicate key %v", key)
	}
	return t.trans.Insert(rid, row)
}

// DeleteByKey removes the visible tuple with the given key.
func (t *Txn) DeleteByKey(key types.Row) (bool, error) {
	if t.done {
		return false, ErrTxnDone
	}
	rid, row, found, err := t.findByKey(key)
	if err != nil || !found {
		return false, err
	}
	return true, t.trans.Delete(rid, t.mgr.tbl.Schema().KeyOf(row))
}

// UpdateByKey sets one column of the visible tuple with the given key.
func (t *Txn) UpdateByKey(key types.Row, col int, val types.Value) (bool, error) {
	if t.done {
		return false, ErrTxnDone
	}
	schema := t.mgr.tbl.Schema()
	rid, row, found, err := t.findByKey(key)
	if err != nil || !found {
		return false, err
	}
	if schema.IsSortKeyCol(col) {
		newRow := row.Clone()
		newRow[col] = val
		if _, err := t.DeleteByKey(key); err != nil {
			return false, err
		}
		return true, t.Insert(newRow)
	}
	return true, t.trans.Modify(rid, col, val)
}

// ApplyBatch applies a batch of inserts, deletes and updates within the
// transaction, resolving every op's position with one shared merge-scan
// cursor over the transaction's view instead of one key probe per row, and
// feeding the Trans-PDT in SID order (the paper's §6 bulk-load regime). It
// returns the number of ops that took effect: delete/update misses are
// skipped, a duplicate-key insert aborts the batch with the earlier ops
// already in the Trans-PDT (Abort discards them, as usual). Batch keys must
// be distinct, except that several updates may target one key; sort-key
// columns cannot be updated in a batch (see table.SortOps).
func (t *Txn) ApplyBatch(ops []table.Op) (int, error) {
	if t.done {
		return 0, ErrTxnDone
	}
	schema := t.mgr.tbl.Schema()
	sorted, err := table.SortOps(schema, ops)
	if err != nil {
		return 0, err
	}
	pos, err := table.ResolveOps(t, sorted)
	if err != nil {
		return 0, err
	}
	return table.ApplyOps(t.trans, schema, sorted, pos)
}

// Commit serializes the transaction against everything that committed during
// its lifetime and folds it into the master Write-PDT (Algorithm 9). On
// conflict the transaction aborts and ErrConflict (wrapping the PDT-level
// detail) is returned.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	m := t.mgr
	m.mu.Lock()
	defer m.mu.Unlock()
	t.done = true

	serialized := t.trans
	for _, c := range m.committed {
		if c.commitLSN <= t.startLSN {
			continue
		}
		next, err := serialized.Serialize(c.serialized)
		if err != nil {
			m.finish(t)
			return fmt.Errorf("%w: %v", ErrConflict, err)
		}
		serialized = next
	}
	if m.log != nil && serialized.Count() > 0 {
		if _, err := m.log.Append("table", serialized.Dump()); err != nil {
			m.finish(t)
			return fmt.Errorf("txn: WAL append failed, aborting: %w", err)
		}
	}
	if err := m.propagate(m.writePDT, serialized); err != nil {
		m.finish(t)
		return err
	}
	m.lsn++
	m.finish(t)
	if refs := len(m.running); refs > 0 && serialized.Count() > 0 {
		m.committed = append(m.committed, &committedTxn{
			serialized: serialized,
			commitLSN:  m.lsn,
			refcnt:     refs,
		})
	}
	return m.maybePropagateLocked()
}

// Abort discards the transaction.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	m := t.mgr
	m.mu.Lock()
	defer m.mu.Unlock()
	t.done = true
	m.finish(t)
	_ = m.maybePropagateLocked()
}
