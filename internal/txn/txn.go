// Package txn implements the paper's three-layer PDT transaction scheme
// (§3.3, Figure 14): a disk-resident stable table, a large RAM-resident
// Read-PDT, a small master Write-PDT that committing transactions modify,
// and per-transaction Trans-PDTs holding uncommitted updates.
//
// Transactions get snapshot isolation without locks: starting a transaction
// copies the Write-PDT (sharing the copy when nothing committed in between)
// and stacks a private, initially empty Trans-PDT on top. Commit serializes
// the Trans-PDT against every transaction that committed during its lifetime
// (Algorithm 9's TZ set, with reference counting) — aborting on write-write
// conflict — and folds the result into the master Write-PDT.
//
// Maintenance is online (maintain.go): the (store, Read-PDT) pair a
// transaction reads is an immutable version pinned at Begin. When the
// Write-PDT outgrows its budget it is frozen and folded into a fresh
// Read-PDT copy by a background goroutine, and when Checkpoint runs the
// frozen view is streamed into a new stable image off-lock — in both cases
// commits keep landing in a fresh write layer and a pointer swap installs
// the new version, so neither readers nor writers ever stall on a merge.
package txn

import (
	"errors"
	"fmt"
	"sync"

	"pdtstore/internal/colstore"
	"pdtstore/internal/engine"
	"pdtstore/internal/pdt"
	"pdtstore/internal/table"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
	"pdtstore/internal/wal"
)

// ErrTxnDone is returned when using a committed or aborted transaction.
var ErrTxnDone = errors.New("txn: transaction already finished")

// ErrConflict wraps the PDT-level conflict detected at commit.
var ErrConflict = errors.New("txn: write-write conflict, transaction aborted")

// version is one immutable read view: a stable image plus the Read-PDT
// folded over it. Transactions pin the current version at Begin; a retired
// version is released — dropping its claim on the stable image's buffer-pool
// blocks — when its last reader finishes.
type version struct {
	store   *colstore.Store
	readPDT *pdt.PDT
	refs    int // running transactions pinned to this version
}

// Manager coordinates transactions over one PDT-mode table.
type Manager struct {
	mu   sync.Mutex
	cond *sync.Cond // broadcast when background maintenance completes
	tbl  *table.Table

	cur      *version // current read view (immutable once installed)
	frozen   *pdt.PDT // write layer a background fold/checkpoint is consuming
	writePDT *pdt.PDT // master Write-PDT; SIDs in (cur.readPDT ∘ frozen) RID domain

	lsn       uint64 // logical commit clock, in lockstep with the WAL's LSNs
	snapLSN   uint64 // lsn at which snapCache was taken
	snapCache *pdt.PDT

	running   map[*Txn]struct{}
	committed []*committedTxn // Algorithm 9's TZ, in commit order

	storeRefs     map[*colstore.Store]int // live versions per stable image
	checkpointing bool
	ckptWaiters   int   // callers blocked in Checkpoint; pauses fold re-arming
	maintErr      error // first background maintenance failure, sticky

	// materialize stubs the checkpoint image build in fault-injection tests;
	// nil selects tbl.Materialize (via CheckpointInto's default build).
	materialize MaterializeFn

	writeBudget uint64 // bytes before Write→Read propagation
	log         wal.Log
	entrywise   bool
}

type committedTxn struct {
	serialized *pdt.PDT
	commitLSN  uint64
	refcnt     int
}

// Options configures the manager.
type Options struct {
	// WriteBudget caps the Write-PDT's memory before its contents migrate
	// to the Read-PDT (the paper keeps the Write-PDT smaller than the CPU
	// cache). Zero selects 256 KiB.
	WriteBudget uint64
	// Log, when set, receives one record per commit (the WAL): an in-memory
	// wal.Writer, or a wal.FileLog for commit-durable operation.
	Log wal.Log
	// EntrywisePropagate folds PDT layers with the per-entry reference
	// algorithm instead of the bulk merge. It exists so the update
	// benchmarks can measure the pre-vectorized write path; production
	// callers leave it false.
	EntrywisePropagate bool
}

// NewManager wraps a ModePDT table. The table's own PDT becomes the first
// version's Read-PDT; direct table updates must stop once a manager owns it.
func NewManager(tbl *table.Table, opts Options) (*Manager, error) {
	if tbl.Mode() != table.ModePDT {
		return nil, fmt.Errorf("txn: manager requires a ModePDT table, got %v", tbl.Mode())
	}
	budget := opts.WriteBudget
	if budget == 0 {
		budget = 256 << 10
	}
	m := &Manager{
		tbl:         tbl,
		cur:         &version{store: tbl.Store(), readPDT: tbl.PDT()},
		writePDT:    pdt.New(tbl.Schema(), tbl.Fanout()),
		running:     map[*Txn]struct{}{},
		writeBudget: budget,
		log:         opts.Log,
		entrywise:   opts.EntrywisePropagate,
	}
	m.cond = sync.NewCond(&m.mu)
	m.storeRefs = map[*colstore.Store]int{m.cur.store: 1}
	if m.log != nil {
		// Continue an existing log's clock (a fresh writer starts at 0).
		m.lsn = m.log.LSN()
	}
	return m, nil
}

// propagate folds src into dst in place with the configured algorithm
// (recovery's replay path; live commits use the non-destructive fold).
func (m *Manager) propagate(dst, src *pdt.PDT) error {
	if m.entrywise {
		return dst.PropagateEntrywise(src)
	}
	return dst.Propagate(src)
}

// fold merges layer over base into a new PDT, leaving both inputs intact.
func (m *Manager) fold(base, layer *pdt.PDT) (*pdt.PDT, error) {
	if m.entrywise {
		out := base.Copy()
		if err := out.PropagateEntrywise(layer); err != nil {
			return nil, err
		}
		return out, nil
	}
	return pdt.Fold(base, layer)
}

// Table returns the underlying table.
func (m *Manager) Table() *table.Table { return m.tbl }

// ReadPDT returns the current version's Read-PDT (for stats and tests).
func (m *Manager) ReadPDT() *pdt.PDT {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur.readPDT
}

// WritePDT returns the current master Write-PDT (for stats and tests).
func (m *Manager) WritePDT() *pdt.PDT {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.writePDT
}

// LSN returns the commit clock: the LSN of the last durable commit.
func (m *Manager) LSN() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lsn
}

// Begin starts a transaction with a private snapshot: the current version,
// the in-flight maintenance layer (if any), and a copy of the Write-PDT.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.snapCache == nil || m.snapLSN != m.lsn {
		// A commit happened since the last snapshot copy (or none exists):
		// take a fresh copy. Transactions starting at the same logical time
		// share it, as §3.3 prescribes.
		m.snapCache = m.writePDT.Copy()
		m.snapLSN = m.lsn
	}
	t := &Txn{
		mgr:       m,
		startLSN:  m.lsn,
		ver:       m.cur,
		frozen:    m.frozen,
		writeSnap: m.snapCache,
		trans:     pdt.New(m.tbl.Schema(), 0),
	}
	m.cur.refs++
	m.running[t] = struct{}{}
	return t
}

// finishLocked removes t from the running set, unpins its version and
// releases TZ references.
func (m *Manager) finishLocked(t *Txn) {
	delete(m.running, t)
	t.ver.refs--
	m.releaseVersionLocked(t.ver)
	kept := m.committed[:0]
	for _, c := range m.committed {
		if c.commitLSN > t.startLSN {
			c.refcnt--
		}
		if c.refcnt > 0 {
			kept = append(kept, c)
		}
	}
	m.committed = kept
}

// Recover rebuilds the committed state from WAL records (applied on top of
// the manager's current checkpointed state, in LSN order) and re-syncs both
// the commit clock and the attached WAL writer to the last durable LSN, so
// post-recovery commits continue the pre-crash sequence.
func (m *Manager) Recover(records []wal.Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, rec := range records {
		p, err := pdt.Rebuild(m.tbl.Schema(), 0, rec.Entries)
		if err != nil {
			return fmt.Errorf("txn: recover LSN %d: %w", rec.LSN, err)
		}
		if err := m.propagate(m.writePDT, p); err != nil {
			return fmt.Errorf("txn: recover LSN %d: %w", rec.LSN, err)
		}
		m.lsn = rec.LSN
	}
	if m.log != nil {
		m.log.SetLSN(m.lsn)
	}
	return nil
}

// Txn is one transaction: a snapshot (pinned version, in-flight maintenance
// layer, Write-PDT copy) plus a private Trans-PDT of uncommitted updates.
type Txn struct {
	mgr       *Manager
	startLSN  uint64
	ver       *version
	frozen    *pdt.PDT // maintenance layer in flight at Begin, or nil
	writeSnap *pdt.PDT
	trans     *pdt.PDT
	done      bool
}

// Schema returns the table schema (making Txn an engine.Relation: plans can
// be built directly over a transaction's view).
func (t *Txn) Schema() *types.Schema { return t.mgr.tbl.Schema() }

// Scan returns the transaction's view: the pinned stable image merged with
// the PDT layers (Equation 9: TABLE₀ ∘ R ∘ W ∘ T, with the frozen
// maintenance layer between R and W while a fold is in flight), stacked by
// the engine.
func (t *Txn) Scan(cols []int, loKey, hiKey types.Row) (pdt.BatchSource, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	store := t.ver.store
	from, to := store.SIDRange(loKey, hiKey)
	base := store.NewScanner(cols, from, to)
	return engine.StackPDTs(base, cols, from, true, t.ver.readPDT, t.frozen, t.writeSnap, t.trans), nil
}

// findByKey locates a visible tuple in the transaction's view.
func (t *Txn) findByKey(key types.Row) (rid uint64, row types.Row, found bool, err error) {
	schema := t.mgr.tbl.Schema()
	if len(key) != len(schema.SortKey) {
		return 0, nil, false, fmt.Errorf("txn: need the full %d-column sort key", len(schema.SortKey))
	}
	cols := make([]int, schema.NumCols())
	for i := range cols {
		cols[i] = i
	}
	err = engine.Scan(t, cols...).Range(key, key).BatchSize(256).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				r := b.Row(int(i))
				cmp := schema.CompareKeyToRow(key, r)
				if cmp == 0 {
					rid, row, found = b.Rids[i], r, true
					return engine.Stop
				}
				if cmp < 0 {
					return engine.Stop
				}
			}
			return nil
		})
	if err != nil {
		return 0, nil, false, err
	}
	return rid, row, found, nil
}

// visibleRows returns the transaction's current row count.
func (t *Txn) visibleRows() uint64 {
	n := int64(t.ver.store.NRows())
	n += t.ver.readPDT.Delta()
	if t.frozen != nil {
		n += t.frozen.Delta()
	}
	n += t.writeSnap.Delta() + t.trans.Delta()
	return uint64(n)
}

// insertPosition finds the RID where key belongs in this transaction's view.
func (t *Txn) insertPosition(key types.Row) (rid uint64, dup bool, err error) {
	schema := t.mgr.tbl.Schema()
	rid = t.visibleRows()
	err = engine.Scan(t, schema.SortKey...).Range(key, nil).BatchSize(256).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				cmp := types.CompareRows(key, b.Row(int(i)))
				if cmp == 0 {
					rid, dup = b.Rids[i], true
					return engine.Stop
				}
				if cmp < 0 {
					rid = b.Rids[i]
					return engine.Stop
				}
			}
			return nil
		})
	if err != nil {
		return 0, false, err
	}
	return rid, dup, nil
}

// Insert adds a tuple within the transaction.
func (t *Txn) Insert(row types.Row) error {
	if t.done {
		return ErrTxnDone
	}
	schema := t.mgr.tbl.Schema()
	if err := schema.ValidateRow(row); err != nil {
		return err
	}
	key := schema.KeyOf(row)
	rid, dup, err := t.insertPosition(key)
	if err != nil {
		return err
	}
	if dup {
		return fmt.Errorf("txn: duplicate key %v", key)
	}
	return t.trans.Insert(rid, row)
}

// DeleteByKey removes the visible tuple with the given key.
func (t *Txn) DeleteByKey(key types.Row) (bool, error) {
	if t.done {
		return false, ErrTxnDone
	}
	rid, row, found, err := t.findByKey(key)
	if err != nil || !found {
		return false, err
	}
	return true, t.trans.Delete(rid, t.mgr.tbl.Schema().KeyOf(row))
}

// UpdateByKey sets one column of the visible tuple with the given key.
// Updating a sort-key column is expressed as delete+insert; the new key's
// uniqueness is validated before the delete, so a collision rejects the
// update with the old row still in place.
func (t *Txn) UpdateByKey(key types.Row, col int, val types.Value) (bool, error) {
	if t.done {
		return false, ErrTxnDone
	}
	schema := t.mgr.tbl.Schema()
	rid, row, found, err := t.findByKey(key)
	if err != nil || !found {
		return false, err
	}
	if schema.IsSortKeyCol(col) {
		newRow := row.Clone()
		newRow[col] = val
		newKey := schema.KeyOf(newRow)
		if types.CompareRows(newKey, key) != 0 {
			if _, _, taken, err := t.findByKey(newKey); err != nil {
				return false, err
			} else if taken {
				return false, fmt.Errorf("txn: duplicate key %v", newKey)
			}
		}
		if _, err := t.DeleteByKey(key); err != nil {
			return false, err
		}
		return true, t.Insert(newRow)
	}
	return true, t.trans.Modify(rid, col, val)
}

// ApplyBatch applies a batch of inserts, deletes and updates within the
// transaction, resolving every op's position with one shared merge-scan
// cursor over the transaction's view instead of one key probe per row, and
// feeding the Trans-PDT in SID order (the paper's §6 bulk-load regime). It
// returns the number of ops that took effect: delete/update misses are
// skipped, a duplicate-key insert aborts the batch with the earlier ops
// already in the Trans-PDT (Abort discards them, as usual). Batch keys must
// be distinct, except that several updates may target one key; sort-key
// columns cannot be updated in a batch (see table.SortOps).
func (t *Txn) ApplyBatch(ops []table.Op) (int, error) {
	if t.done {
		return 0, ErrTxnDone
	}
	schema := t.mgr.tbl.Schema()
	sorted, err := table.SortOps(schema, ops)
	if err != nil {
		return 0, err
	}
	pos, err := table.ResolveOps(t, sorted)
	if err != nil {
		return 0, err
	}
	return table.ApplyOps(t.trans, schema, sorted, pos)
}

// Commit serializes the transaction against everything that committed during
// its lifetime (Algorithm 9) and folds it into the master Write-PDT. On
// conflict the transaction aborts and ErrConflict (wrapping the PDT-level
// detail) is returned. The fold goes through a copy, and the commit clock
// only advances when the WAL record is durable: a failed fold or append
// leaves the Write-PDT, the clock and the log all untouched, so a logged
// commit is always an applied commit.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	m := t.mgr
	m.mu.Lock()
	defer m.mu.Unlock()
	t.done = true
	if err := m.maintErr; err != nil {
		m.finishLocked(t)
		return err
	}

	serialized := t.trans
	for _, c := range m.committed {
		if c.commitLSN <= t.startLSN {
			continue
		}
		next, err := serialized.Serialize(c.serialized)
		if err != nil {
			m.finishLocked(t)
			return fmt.Errorf("%w: %v", ErrConflict, err)
		}
		serialized = next
	}
	if serialized.Count() == 0 {
		// Nothing to log or apply: the clock must not advance (only durable
		// records move it) and the shared snapshot stays valid.
		m.finishLocked(t)
		return nil
	}
	folded, err := m.fold(m.writePDT, serialized)
	if err != nil {
		m.finishLocked(t)
		return err
	}
	if m.log != nil {
		lsn, err := m.log.Append("table", serialized.Dump())
		if err != nil {
			m.finishLocked(t)
			return fmt.Errorf("txn: WAL append failed, aborting: %w", err)
		}
		m.lsn = lsn // commit clock tracks the durable WAL clock
	} else {
		m.lsn++
	}
	m.writePDT = folded
	m.snapCache = nil
	m.finishLocked(t)
	if refs := len(m.running); refs > 0 {
		m.committed = append(m.committed, &committedTxn{
			serialized: serialized,
			commitLSN:  m.lsn,
			refcnt:     refs,
		})
	}
	m.maybeFoldLocked()
	return nil
}

// Abort discards the transaction. It returns any deferred background
// maintenance error (a failed fold or checkpoint) so callers that only ever
// abort still observe maintenance health.
func (t *Txn) Abort() error {
	if t.done {
		return nil
	}
	m := t.mgr
	m.mu.Lock()
	defer m.mu.Unlock()
	t.done = true
	m.finishLocked(t)
	return m.maintErr
}
