// Package txn implements the paper's three-layer PDT transaction scheme
// (§3.3, Figure 14): a disk-resident stable table, a large RAM-resident
// Read-PDT, a small master Write-PDT that committing transactions modify,
// and per-transaction Trans-PDTs holding uncommitted updates.
//
// Transactions get snapshot isolation without locks: starting a transaction
// copies the Write-PDT (sharing the copy when nothing committed in between)
// and stacks a private, initially empty Trans-PDT on top. Commit serializes
// the Trans-PDT against every transaction that committed during its lifetime
// (Algorithm 9's TZ set, with reference counting) — aborting on write-write
// conflict — and folds the result into the master Write-PDT.
//
// Commits are group-committed: a validated commit parks on a sequencer and
// one leader makes a whole batch durable with a single WAL append (one
// fsync), so the durability wait happens off the manager mutex and
// concurrent writers share the barrier instead of queueing on it. See
// Txn.Commit and commitLeader.
//
// Maintenance is online (maintain.go): the (store, Read-PDT) pair a
// transaction reads is an immutable version pinned at Begin. When the
// Write-PDT outgrows its budget it is frozen and folded into a fresh
// Read-PDT copy by a background goroutine, and when Checkpoint runs the
// frozen view is streamed into a new stable image off-lock — in both cases
// commits keep landing in a fresh write layer and a pointer swap installs
// the new version, so neither readers nor writers ever stall on a merge.
//
// Writes scale across cores by sharding (sharded.go): Sharded coordinates N
// key-range shards, each a full Manager with its own Write-PDT, sequencer
// and WAL stream, under one global commit clock. Single-shard commits use
// their home shard's sequencer with no coordination; cross-shard commits
// run a two-phase prepare/append/install that recovery makes all-or-nothing
// per clock entry (wal.CompleteGroups). Sharded.Begin pins a consistent
// vector of per-shard snapshots behind a begin gate.
package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pdtstore/internal/colstore"
	"pdtstore/internal/engine"
	"pdtstore/internal/pdt"
	"pdtstore/internal/table"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
	"pdtstore/internal/wal"
)

// ErrTxnDone is returned when using a committed or aborted transaction.
var ErrTxnDone = errors.New("txn: transaction already finished")

// ErrConflict wraps the PDT-level conflict detected at commit.
var ErrConflict = errors.New("txn: write-write conflict, transaction aborted")

// version is one immutable read view: a stable image plus the Read-PDT
// folded over it. Transactions pin the current version at Begin; a retired
// version is released — dropping its claim on the stable image's buffer-pool
// blocks — when its last reader finishes.
type version struct {
	store   *colstore.Store
	readPDT *pdt.PDT
	refs    int // running transactions pinned to this version
}

// Manager coordinates transactions over one PDT-mode table.
type Manager struct {
	mu   sync.Mutex
	cond *sync.Cond // broadcast when background maintenance completes
	tbl  *table.Table

	cur      *version // current read view (immutable once installed)
	frozen   *pdt.PDT // write layer a background fold/checkpoint is consuming
	writePDT *pdt.PDT // master Write-PDT; SIDs in (cur.readPDT ∘ frozen) RID domain

	lsn       uint64 // LSN of this shard's last installed commit
	snapLSN   uint64 // lsn at which snapCache was taken
	snapCache *pdt.PDT

	// clock is the monotonic commit clock LSNs are allocated from. A
	// standalone manager owns a private clock (equivalent to the old
	// log-driven LSN sequence); the shards of one sharded table share a
	// single clock, so commit, recovery and CDC ordering stay total across
	// their independent WAL streams — each stream carries a gapped
	// subsequence of one global LSN order. shardID stamps this manager's
	// WAL records with its shard index.
	clock   *atomic.Uint64
	shardID uint32

	// held pauses this shard's commit pipeline while a cross-shard
	// coordinator quiesces it (Sharded.commitCross): new commits park at
	// the top of Commit until released, and fold re-arming and checkpoint
	// entry wait it out, so the coordinator can validate and fold against a
	// stable Write-PDT with no rounds in flight.
	held bool

	running   map[*Txn]struct{}
	committed []*committedTxn // Algorithm 9's TZ, in commit order

	// Commit sequencer (group commit): validated commits park here, in
	// commit order, until a leader makes a whole batch durable with one
	// WAL append. pending[:inflight] is the batch the current leader round
	// is flushing; commitChain is writePDT ∘ every uninstalled pending
	// commit (nil when none are parked), the base the next enqueued
	// commit folds onto so install is a single pointer swap.
	pending      []*commitReq
	inflight     int      // head of pending taken by the in-flight leader round
	commitChain  *pdt.PDT // fold of writePDT with every parked commit
	leaderActive bool     // a goroutine is running the sequencer loop
	maxBatch     int      // commits per WAL append (1 = per-commit fsync)
	maxDelay     time.Duration

	storeRefs      map[*colstore.Store]int // live versions per stable image
	checkpointing  bool
	ckptWaiters    int   // callers blocked in Checkpoint; pauses fold re-arming
	ckptInstalling bool  // checkpoint swap waiting for the leader round to end
	maintErr       error // first background maintenance failure, sticky

	// materialize stubs the checkpoint image build in fault-injection tests;
	// nil selects tbl.Materialize (via CheckpointInto's default build).
	materialize MaterializeFn

	writeBudget uint64 // bytes before Write→Read propagation
	log         wal.Log
	entrywise   bool
}

type committedTxn struct {
	serialized *pdt.PDT
	commitLSN  uint64
	refcnt     int
}

// commitReq is one validated commit parked on the sequencer: its serialized
// Trans-PDT (the WAL record body), the precomputed fold of the write chain
// including it, and the channel its transaction waits on until the leader
// reports durability (lsn) or batch failure (err). Closing lead instead
// promotes the parked goroutine to flush leader (leadership handoff).
type commitReq struct {
	t          *Txn
	serialized *pdt.PDT
	folded     *pdt.PDT
	lsn        uint64
	err        error
	done       chan struct{}
	lead       chan struct{}
}

// Options configures the manager.
type Options struct {
	// WriteBudget caps the Write-PDT's memory before its contents migrate
	// to the Read-PDT (the paper keeps the Write-PDT smaller than the CPU
	// cache). Zero selects 256 KiB.
	WriteBudget uint64
	// Log, when set, receives one record per commit (the WAL): an in-memory
	// wal.Writer, or a wal.FileLog for commit-durable operation.
	Log wal.Log
	// EntrywisePropagate folds PDT layers with the per-entry reference
	// algorithm instead of the bulk merge. It exists so the update
	// benchmarks can measure the pre-vectorized write path; production
	// callers leave it false.
	EntrywisePropagate bool
	// MaxCommitBatch caps how many parked commits one leader flush folds
	// into a single WAL append (and fsync). Zero selects 128. One disables
	// group commit — every commit pays its own durability barrier — which
	// is the baseline the commit benchmark measures against.
	MaxCommitBatch int
	// MaxCommitDelay, when positive, lets the flush leader wait that long
	// for more commits to join a batch smaller than MaxCommitBatch. The
	// natural batching — whatever arrives while the previous fsync runs —
	// is usually enough; the delay trades single-writer commit latency for
	// fewer, fuller batches.
	MaxCommitDelay time.Duration
}

// NewManager wraps a ModePDT table. The table's own PDT becomes the first
// version's Read-PDT; direct table updates must stop once a manager owns it.
func NewManager(tbl *table.Table, opts Options) (*Manager, error) {
	if tbl.Mode() != table.ModePDT {
		return nil, fmt.Errorf("txn: manager requires a ModePDT table, got %v", tbl.Mode())
	}
	budget := opts.WriteBudget
	if budget == 0 {
		budget = 256 << 10
	}
	maxBatch := opts.MaxCommitBatch
	if maxBatch <= 0 {
		maxBatch = 128
	}
	m := &Manager{
		tbl:         tbl,
		cur:         &version{store: tbl.Store(), readPDT: tbl.PDT()},
		writePDT:    pdt.New(tbl.Schema(), tbl.Fanout()),
		running:     map[*Txn]struct{}{},
		writeBudget: budget,
		log:         opts.Log,
		entrywise:   opts.EntrywisePropagate,
		maxBatch:    maxBatch,
		maxDelay:    opts.MaxCommitDelay,
	}
	m.cond = sync.NewCond(&m.mu)
	m.storeRefs = map[*colstore.Store]int{m.cur.store: 1}
	if m.log != nil {
		// Continue an existing log's clock (a fresh writer starts at 0).
		m.lsn = m.log.LSN()
	}
	m.clock = new(atomic.Uint64)
	m.clock.Store(m.lsn)
	return m, nil
}

// raiseClock lifts c to at least lsn (it never rewinds).
func raiseClock(c *atomic.Uint64, lsn uint64) {
	for {
		cur := c.Load()
		if cur >= lsn || c.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// propagate folds src into dst in place with the configured algorithm
// (recovery's replay path; live commits use the non-destructive fold).
func (m *Manager) propagate(dst, src *pdt.PDT) error {
	if m.entrywise {
		return dst.PropagateEntrywise(src)
	}
	return dst.Propagate(src)
}

// fold merges layer over base into a new PDT, leaving both inputs intact.
// FoldSnap shares base's structure copy-on-write when layer is small — the
// group-commit common case — so per-commit fold cost tracks the delta size,
// not the Write-PDT size.
func (m *Manager) fold(base, layer *pdt.PDT) (*pdt.PDT, error) {
	if m.entrywise {
		out := base.Copy()
		if err := out.PropagateEntrywise(layer); err != nil {
			return nil, err
		}
		return out, nil
	}
	return pdt.FoldSnap(base, layer)
}

// Table returns the underlying table.
func (m *Manager) Table() *table.Table { return m.tbl }

// ReadPDT returns the current version's Read-PDT (for stats and tests).
func (m *Manager) ReadPDT() *pdt.PDT {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur.readPDT
}

// WritePDT returns the current master Write-PDT (for stats and tests).
func (m *Manager) WritePDT() *pdt.PDT {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.writePDT
}

// LSN returns the commit clock: the LSN of the last durable commit.
func (m *Manager) LSN() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lsn
}

// DeltaCounts returns the insert/delete/modify entry totals buffered across
// the committed delta layers (Read-PDT, the in-flight frozen layer if any,
// and the master Write-PDT). The checkpoint scheduler's cost model uses them
// to estimate the dirty block set without folding anything.
func (m *Manager) DeltaCounts() (ins, del, mod int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range []*pdt.PDT{m.cur.readPDT, m.frozen, m.writePDT} {
		if p == nil {
			continue
		}
		i, d, mo := p.Counts()
		ins, del, mod = ins+i, del+d, mod+mo
	}
	return ins, del, mod
}

// Begin starts a transaction with a private snapshot: the current version,
// the in-flight maintenance layer (if any), and an O(1) copy-on-write
// snapshot of the Write-PDT.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.snapCache == nil || m.snapLSN != m.lsn {
		// A commit happened since the last snapshot (or none exists): take a
		// fresh one. Transactions starting at the same logical time share it,
		// as §3.3 prescribes. Snapshot is O(1) — it shares the Write-PDT's
		// structure and later commits path-copy away from it.
		m.snapCache = m.writePDT.Snapshot()
		m.snapLSN = m.lsn
	}
	t := &Txn{
		mgr:       m,
		startLSN:  m.lsn,
		ver:       m.cur,
		frozen:    m.frozen,
		writeSnap: m.snapCache,
		trans:     pdt.New(m.tbl.Schema(), 0),
	}
	m.cur.refs++
	m.running[t] = struct{}{}
	return t
}

// finishLocked removes t from the running set, unpins its version and
// releases TZ references.
func (m *Manager) finishLocked(t *Txn) {
	delete(m.running, t)
	t.ver.refs--
	m.releaseVersionLocked(t.ver)
	kept := m.committed[:0]
	for _, c := range m.committed {
		if c.commitLSN > t.startLSN {
			c.refcnt--
		}
		if c.refcnt > 0 {
			kept = append(kept, c)
		}
	}
	m.committed = kept
}

// Recover rebuilds the committed state from WAL records (applied on top of
// the manager's current checkpointed state, in LSN order) and re-syncs both
// the commit clock and the attached WAL writer to the last durable LSN, so
// post-recovery commits continue the pre-crash sequence.
func (m *Manager) Recover(records []wal.Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, rec := range records {
		p, err := pdt.Rebuild(m.tbl.Schema(), 0, rec.Entries)
		if err != nil {
			return fmt.Errorf("txn: recover LSN %d: %w", rec.LSN, err)
		}
		if err := m.propagate(m.writePDT, p); err != nil {
			return fmt.Errorf("txn: recover LSN %d: %w", rec.LSN, err)
		}
		m.lsn = rec.LSN
	}
	if m.log != nil {
		m.log.SetLSN(m.lsn)
	}
	raiseClock(m.clock, m.lsn)
	return nil
}

// Txn is one transaction: a snapshot (pinned version, in-flight maintenance
// layer, Write-PDT copy) plus a private Trans-PDT of uncommitted updates.
type Txn struct {
	mgr       *Manager
	startLSN  uint64
	ver       *version
	frozen    *pdt.PDT // maintenance layer in flight at Begin, or nil
	writeSnap *pdt.PDT
	trans     *pdt.PDT
	commitLSN uint64 // LSN the group-commit leader assigned, once durable
	done      bool
}

// CommitLSN returns the log sequence number the transaction's commit record
// was assigned, valid once Commit has returned nil. It is 0 for aborted or
// failed transactions and for empty commits (which never consume an LSN).
func (t *Txn) CommitLSN() uint64 { return t.commitLSN }

// Schema returns the table schema (making Txn an engine.Relation: plans can
// be built directly over a transaction's view).
func (t *Txn) Schema() *types.Schema { return t.mgr.tbl.Schema() }

// Scan returns the transaction's view: the pinned stable image merged with
// the PDT layers (Equation 9: TABLE₀ ∘ R ∘ W ∘ T, with the frozen
// maintenance layer between R and W while a fold is in flight), stacked by
// the engine.
func (t *Txn) Scan(cols []int, loKey, hiKey types.Row) (pdt.BatchSource, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	store := t.ver.store
	from, to := store.SIDRange(loKey, hiKey)
	base := store.NewScanner(cols, from, to)
	return engine.StackPDTs(base, cols, from, true, t.ver.readPDT, t.frozen, t.writeSnap, t.trans), nil
}

// PartitionScan makes Txn an engine.PartRelation: parallel plans over a
// transaction's view open each morsel as a range-clamped copy of the full
// Equation 9 stack. Every layer in the stack is immutable for the life of
// the transaction — the pinned version's Read-PDT, the frozen maintenance
// layer, the copy-on-write Write-PDT snapshot taken at Begin — except the
// private Trans-PDT, which only this transaction mutates; so workers may
// cursor through all four layers concurrently while commits, folds and
// checkpoints proceed elsewhere. Each PDT merge seeks its cursor to the
// morsel's start SID (carrying the running shift in) and chains its StartRID
// into the layer above, exactly as the serial stacking does.
func (t *Txn) PartitionScan(loKey, hiKey types.Row) (*engine.PartScan, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	store := t.ver.store
	lo, hi := store.SIDRange(loKey, hiKey)
	readPDT, frozen, writeSnap, trans := t.ver.readPDT, t.frozen, t.writeSnap, t.trans
	return &engine.PartScan{Lo: lo, Hi: hi, Unit: store.BlockRows(),
		// The prune pass consults the pinned image's zone maps and index
		// sidecar, treating every block the four pinned layers touch as
		// unskippable — the positional dirty-block gate that keeps index and
		// zone answers snapshot-consistent while deltas are unfolded.
		Prune: engine.PruneFunc(store, lo, hi, readPDT, frozen, writeSnap, trans),
		Open: func(cols []int, mlo, mhi uint64, last bool) (pdt.BatchSource, error) {
			if err := store.Prefetch(cols, mlo, mhi); err != nil {
				return nil, err
			}
			base := store.NewScanner(cols, mlo, mhi)
			return engine.StackPDTs(base, cols, mlo, last, readPDT, frozen, writeSnap, trans), nil
		}}, nil
}

// FindByKey locates the visible tuple with the given (full) sort key in the
// transaction's snapshot, returning its RID and current column values.
func (t *Txn) FindByKey(key types.Row) (rid uint64, row types.Row, found bool, err error) {
	return t.findByKey(key)
}

// findByKey locates a visible tuple in the transaction's view.
func (t *Txn) findByKey(key types.Row) (rid uint64, row types.Row, found bool, err error) {
	schema := t.mgr.tbl.Schema()
	if len(key) != len(schema.SortKey) {
		return 0, nil, false, fmt.Errorf("txn: need the full %d-column sort key", len(schema.SortKey))
	}
	cols := make([]int, schema.NumCols())
	for i := range cols {
		cols[i] = i
	}
	err = engine.Scan(t, cols...).Range(key, key).BatchSize(16).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				cmp := b.CompareKey(key, schema.SortKey, int(i))
				if cmp == 0 {
					rid, row, found = b.Rids[i], b.Row(int(i)), true
					return engine.Stop
				}
				if cmp < 0 {
					return engine.Stop
				}
			}
			return nil
		})
	if err != nil {
		return 0, nil, false, err
	}
	return rid, row, found, nil
}

// visibleRows returns the transaction's current row count.
func (t *Txn) visibleRows() uint64 {
	n := int64(t.ver.store.NRows())
	n += t.ver.readPDT.Delta()
	if t.frozen != nil {
		n += t.frozen.Delta()
	}
	n += t.writeSnap.Delta() + t.trans.Delta()
	return uint64(n)
}

// insertPosition finds the RID where key belongs in this transaction's view.
func (t *Txn) insertPosition(key types.Row) (rid uint64, dup bool, err error) {
	schema := t.mgr.tbl.Schema()
	rid = t.visibleRows()
	err = engine.Scan(t, schema.SortKey...).Range(key, nil).BatchSize(16).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				cmp := b.CompareKey(key, nil, int(i))
				if cmp == 0 {
					rid, dup = b.Rids[i], true
					return engine.Stop
				}
				if cmp < 0 {
					rid = b.Rids[i]
					return engine.Stop
				}
			}
			return nil
		})
	if err != nil {
		return 0, false, err
	}
	return rid, dup, nil
}

// Insert adds a tuple within the transaction.
func (t *Txn) Insert(row types.Row) error {
	if t.done {
		return ErrTxnDone
	}
	schema := t.mgr.tbl.Schema()
	if err := schema.ValidateRow(row); err != nil {
		return err
	}
	key := schema.KeyOf(row)
	rid, dup, err := t.insertPosition(key)
	if err != nil {
		return err
	}
	if dup {
		return fmt.Errorf("txn: duplicate key %v", key)
	}
	return t.trans.Insert(rid, row)
}

// DeleteByKey removes the visible tuple with the given key.
func (t *Txn) DeleteByKey(key types.Row) (bool, error) {
	if t.done {
		return false, ErrTxnDone
	}
	rid, row, found, err := t.findByKey(key)
	if err != nil || !found {
		return false, err
	}
	return true, t.trans.Delete(rid, t.mgr.tbl.Schema().KeyOf(row))
}

// UpdateByKey sets one column of the visible tuple with the given key.
// Updating a sort-key column is expressed as delete+insert; the new key's
// uniqueness is validated before the delete, so a collision rejects the
// update with the old row still in place.
func (t *Txn) UpdateByKey(key types.Row, col int, val types.Value) (bool, error) {
	if t.done {
		return false, ErrTxnDone
	}
	schema := t.mgr.tbl.Schema()
	rid, row, found, err := t.findByKey(key)
	if err != nil || !found {
		return false, err
	}
	if schema.IsSortKeyCol(col) {
		newRow := row.Clone()
		newRow[col] = val
		newKey := schema.KeyOf(newRow)
		if types.CompareRows(newKey, key) != 0 {
			if _, _, taken, err := t.findByKey(newKey); err != nil {
				return false, err
			} else if taken {
				return false, fmt.Errorf("txn: duplicate key %v", newKey)
			}
		}
		if _, err := t.DeleteByKey(key); err != nil {
			return false, err
		}
		return true, t.Insert(newRow)
	}
	return true, t.trans.Modify(rid, col, val)
}

// ApplyBatch applies a batch of inserts, deletes and updates within the
// transaction, resolving every op's position with one shared merge-scan
// cursor over the transaction's view instead of one key probe per row, and
// feeding the Trans-PDT in SID order (the paper's §6 bulk-load regime). It
// returns the number of ops that took effect: delete/update misses are
// skipped, a duplicate-key insert aborts the batch with the earlier ops
// already in the Trans-PDT (Abort discards them, as usual). Batch keys must
// be distinct, except that several updates may target one key; sort-key
// columns cannot be updated in a batch (see table.SortOps).
func (t *Txn) ApplyBatch(ops []table.Op) (int, error) {
	if t.done {
		return 0, ErrTxnDone
	}
	schema := t.mgr.tbl.Schema()
	sorted, err := table.SortOps(schema, ops)
	if err != nil {
		return 0, err
	}
	pos, err := table.ResolveOps(t, sorted)
	if err != nil {
		return 0, err
	}
	return table.ApplyOps(t.trans, schema, sorted, pos)
}

// Commit serializes the transaction against everything that committed during
// its lifetime (Algorithm 9) and folds it into the master Write-PDT. On
// conflict the transaction aborts and ErrConflict (wrapping the PDT-level
// detail) is returned.
//
// Commits are group-committed: validation and the fold happen under a narrow
// critical section, then the commit parks on the sequencer and the manager
// mutex is released — Begin, Scan and other commits' validation never wait
// behind an fsync. One leader flushes every parked commit with a single WAL
// append (one durability barrier for the whole batch) and wakes each waiter
// with its LSN; the Write-PDT and the commit clock advance, in LSN order,
// only after the batch is durable. Fail-stop: a failed append or fsync
// aborts every transaction in the batch — the log is poisoned, the clock
// stays put, and none of the batch becomes visible, here or at replay.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	m := t.mgr
	m.mu.Lock()
	t.done = true
	for m.held {
		// A cross-shard commit is quiescing this shard: wait it out before
		// joining the queue (its validation assumes no new arrivals).
		m.cond.Wait()
	}
	if err := m.maintErr; err != nil {
		m.finishLocked(t)
		m.mu.Unlock()
		return err
	}

	// Serialize against everything ahead in the commit order: transactions
	// that committed during this one's lifetime, then commits parked on the
	// sequencer (validated but not yet durable). The parked dependency is
	// safe under fail-stop — if their batch's fsync fails, they all abort
	// and so does everything parked behind them. The whole overlap chain is
	// resolved in a single SerializeChain sweep (one output build, one
	// payload clone) instead of one Serialize rebuild per overlapping commit.
	serialized := t.trans
	chain := make([]*pdt.PDT, 0, len(m.committed)+len(m.pending))
	for _, c := range m.committed {
		if c.commitLSN > t.startLSN {
			chain = append(chain, c.serialized)
		}
	}
	for _, r := range m.pending {
		chain = append(chain, r.serialized)
	}
	if len(chain) > 0 {
		next, err := serialized.SerializeChain(chain)
		if err != nil {
			m.finishLocked(t)
			m.mu.Unlock()
			return fmt.Errorf("%w: %v", ErrConflict, err)
		}
		serialized = next
	}
	if serialized.Count() == 0 {
		// Nothing to log or apply: the clock must not advance (only durable
		// records move it) and the shared snapshot stays valid.
		m.finishLocked(t)
		m.mu.Unlock()
		return nil
	}
	// Fold onto the chain of parked commits (or the Write-PDT itself when
	// none are parked): once the batch is durable, installing it is one
	// pointer swap to the last member's fold.
	base := m.commitChain
	if base == nil {
		base = m.writePDT
	}
	folded, err := m.fold(base, serialized)
	if err != nil {
		m.finishLocked(t)
		m.mu.Unlock()
		return err
	}
	req := &commitReq{t: t, serialized: serialized, folded: folded,
		done: make(chan struct{}), lead: make(chan struct{})}
	m.pending = append(m.pending, req)
	m.commitChain = folded
	lead := !m.leaderActive
	if lead {
		m.leaderActive = true
	}
	m.mu.Unlock()

	if lead {
		m.commitLeader(req)
	} else {
		// Park until the batch resolves — or until the outgoing leader hands
		// this commit the queue (leadership handoff).
		select {
		case <-req.done:
			// Both channels can be ready (a handoff promoted this commit,
			// then a rebase failure resolved it before this select ran) and
			// Go picks either — leadership must not be dropped on the
			// floor, or every later commit parks with no one flushing.
			select {
			case <-req.lead:
				m.commitLeader(req)
			default:
			}
		case <-req.lead:
			m.commitLeader(req)
		}
	}
	<-req.done
	if req.err != nil {
		return req.err
	}
	t.commitLSN = req.lsn
	return nil
}

// commitLeader is the sequencer loop: whoever finds the sequencer idle at
// enqueue runs it, starting from its own parked commit `own`. Each round
// takes a batch off the queue, makes it durable with one WAL append (no
// manager lock held across the fsync — followers keep enqueueing and Begin
// keeps running), then installs the whole batch in LSN order and wakes its
// waiters. Once the leader's own commit has resolved it hands the queue to
// the next parked committer instead of draining it (leadership handoff), so
// under sustained arrivals no writer's Commit is held hostage flushing
// other writers' batches — every commit's latency is bounded by its own
// batch plus the round in front of it. Between rounds the leader also
// yields to a checkpointer waiting to freeze or to swap in a finished
// image, so maintenance cannot starve under a saturated queue.
func (m *Manager) commitLeader(own *commitReq) {
	m.mu.Lock()
	for {
		if m.maintErr == nil &&
			(m.ckptInstalling || (m.ckptWaiters > 0 && !m.checkpointing && m.frozen == nil && !m.held)) {
			// (While a cross-shard prepare holds the pipeline the leader must
			// keep draining the queue, not yield to a checkpointer that is
			// itself gated on held — that cycle would deadlock all three.)
			// A checkpoint is ready to freeze the write layer or install a
			// finished image: let it take the round boundary (both are quick
			// locked operations; commits resume immediately after).
			m.cond.Broadcast()
			m.cond.Wait()
			continue
		}
		if len(m.pending) == 0 {
			m.leaderActive = false
			m.cond.Broadcast()
			m.mu.Unlock()
			return
		}
		n := min(len(m.pending), m.maxBatch)
		m.inflight = n
		batch := m.pending[:n:n]
		m.mu.Unlock()

		if m.maxDelay > 0 && len(batch) < m.maxBatch {
			// Optional batching window: give concurrent writers a moment to
			// join before paying the durability barrier.
			time.Sleep(m.maxDelay)
			m.mu.Lock()
			if extra := min(m.maxBatch-len(batch), len(m.pending)-m.inflight); extra > 0 {
				batch = append(batch, m.pending[m.inflight:m.inflight+extra]...)
				m.inflight += extra
			}
			m.mu.Unlock()
		}

		// Off-lock: allocate the batch's LSN run from the (possibly shared)
		// commit clock, then one append, one fsync, for the whole batch. On
		// a failed barrier the allocated LSNs are abandoned — the clock only
		// moves forward, recovery tolerates per-stream gaps, and this
		// stream is poisoned anyway.
		first := m.clock.Add(uint64(len(batch))) - uint64(len(batch)) + 1
		var err error
		if m.log != nil {
			recs := make([]wal.GroupRecord, len(batch))
			for i, r := range batch {
				recs[i] = wal.GroupRecord{Table: "table", Shard: m.shardID, Entries: r.serialized.Dump()}
			}
			err = m.log.AppendGroupAt(first, recs)
		}

		m.mu.Lock()
		m.inflight = 0
		if err != nil {
			werr := fmt.Errorf("txn: WAL append failed, aborting: %w", err)
			// Fail-stop for the whole batch — and for everything parked
			// behind it, whose folds and serializations chained onto the
			// failed commits (the poisoned log would refuse them anyway).
			m.failPendingLocked(werr)
		} else {
			m.installBatchLocked(batch, first)
		}
		m.cond.Broadcast()
		m.maybeFoldLocked()
		select {
		case <-own.done:
			// The leader's own commit is resolved: hand the rest of the
			// queue to the next parked committer and return to the caller.
			if len(m.pending) > 0 {
				close(m.pending[0].lead)
			} else {
				m.leaderActive = false
				m.cond.Broadcast()
			}
			m.mu.Unlock()
			return
		default:
			// Own commit still queued (the batch cap left it behind): keep
			// leading until its round comes up.
		}
	}
}

// installBatchLocked makes a durable batch visible: the commit clock walks
// the batch's LSNs in order, the Write-PDT advances to the last member's
// precomputed fold, each member joins the TZ set for the transactions still
// running, and every waiter wakes with its LSN.
func (m *Manager) installBatchLocked(batch []*commitReq, first uint64) {
	for i, r := range batch {
		m.lsn = first + uint64(i)
		r.lsn = m.lsn
		m.writePDT = r.folded
		m.finishLocked(r.t)
		if refs := len(m.running); refs > 0 {
			m.committed = append(m.committed, &committedTxn{
				serialized: r.serialized,
				commitLSN:  r.lsn,
				refcnt:     refs,
			})
		}
	}
	m.pending = m.pending[len(batch):]
	if len(m.pending) == 0 {
		m.pending = nil
		m.commitChain = nil
	}
	m.snapCache = nil
	for _, r := range batch {
		close(r.done)
	}
}

// failPendingLocked aborts every parked commit (the in-flight batch and
// everything queued behind it) with err. None of them consumed an LSN and
// none may become visible.
func (m *Manager) failPendingLocked(err error) {
	for _, r := range m.pending {
		r.err = err
		m.finishLocked(r.t)
		close(r.done)
	}
	m.pending = nil
	m.inflight = 0
	m.commitChain = nil
}

// Abort discards the transaction. It returns any deferred background
// maintenance error (a failed fold or checkpoint) so callers that only ever
// abort still observe maintenance health.
func (t *Txn) Abort() error {
	if t.done {
		return nil
	}
	m := t.mgr
	m.mu.Lock()
	defer m.mu.Unlock()
	t.done = true
	m.finishLocked(t)
	return m.maintErr
}
