package txn

// Online maintenance: Write→Read propagation and checkpointing without
// quiescence. The key invariant is that every installed (store, Read-PDT)
// version is immutable — folds always produce a new PDT (pdt.Fold) — so a
// transaction's pinned view never changes under it, and maintenance needs
// the manager lock only for the freeze and the final pointer swap:
//
//	freeze (locked):   frozen ← writePDT; writePDT ← empty; commits go on
//	fold (unlocked):   folded ← Fold(cur.readPDT, frozen)
//	install (locked):  cur ← {store, folded}; frozen ← nil
//
// While the fold runs, every view stacks the frozen layer between the
// Read-PDT and its Write-PDT snapshot (TABLE₀ ∘ R ∘ F ∘ W ∘ T), which is
// the same image by construction. Checkpoint is the same dance with one more
// unlocked step: the folded view is streamed into a brand-new stable image
// whose SID domain equals the RID domain the during-build commits were
// expressed in, so the side Write-PDT becomes the new version's Read-PDT
// verbatim. Retired versions are released when their last reader finishes,
// evicting the retired image's blocks from the device's buffer pool.

import (
	"fmt"

	"pdtstore/internal/colstore"
	"pdtstore/internal/pdt"
)

// MaterializeFn builds the new stable image for a checkpoint. It runs with no
// manager lock held while commits keep flowing. freezeLSN is the commit clock
// at the freeze point: every commit with LSN <= freezeLSN is contained in the
// streamed view (store ∘ deltas), every later commit lands only in the side
// write layer (and the WAL). A durable checkpoint records freezeLSN in its
// manifest so recovery knows which WAL records the image already contains.
type MaterializeFn func(freezeLSN uint64, store *colstore.Store, deltas ...*pdt.PDT) (*colstore.Store, error)

// freezeLocked hands the current write layer to maintenance and restarts
// commits in a fresh one. The three fields must change together: from here
// on every view stacks the frozen layer between the Read-PDT and its
// Write-PDT snapshot, and the stale snapshot cache must not resurface.
// Callers must exclude an in-flight group-commit round (m.inflight == 0):
// parked commits have their folds rebased onto the fresh layer here, but a
// batch already handed to the WAL cannot be.
func (m *Manager) freezeLocked() *pdt.PDT {
	frozen := m.writePDT
	m.frozen = frozen
	// The table's fanout, not the default: a checkpoint installs this layer
	// as the next Read-PDT, so the configured geometry must carry through.
	m.writePDT = pdt.New(m.tbl.Schema(), m.tbl.Fanout())
	m.snapCache = nil
	m.rebasePendingLocked()
	return frozen
}

// rebasePendingLocked refolds the parked commit chain onto the current
// Write-PDT after the layer under it changed (a freeze moved the old write
// layer into the frozen slot, or a checkpoint swap/rollback replaced it).
// The commits' serialized entries are already positioned in the RID domain
// the new layer absorbs, so only the precomputed folds need recomputing. A
// refold failure aborts that commit and everything parked behind it (their
// serializations chained onto it).
func (m *Manager) rebasePendingLocked() {
	m.commitChain = nil
	base := m.writePDT
	for i, r := range m.pending {
		folded, err := m.fold(base, r.serialized)
		if err != nil {
			werr := fmt.Errorf("txn: rebasing parked commit: %w", err)
			for _, rest := range m.pending[i:] {
				rest.err = werr
				m.finishLocked(rest.t)
				close(rest.done)
			}
			m.pending = m.pending[:i]
			break
		}
		r.folded = folded
		base = folded
	}
	if len(m.pending) > 0 {
		m.commitChain = base
	} else {
		m.pending = nil
	}
}

// maybeFoldLocked starts a background Write→Read fold once the Write-PDT
// outgrows its budget. Unlike the pre-online design it never waits for
// quiescence and never blocks the caller beyond the freeze. A waiting
// checkpointer gets priority — back-to-back folds re-arming here could
// otherwise keep m.frozen occupied forever under sustained traffic, and the
// checkpoint folds the write layer down anyway.
func (m *Manager) maybeFoldLocked() {
	if m.writePDT.MemBytes() < m.writeBudget ||
		m.frozen != nil || m.checkpointing || m.ckptWaiters > 0 ||
		m.inflight > 0 || m.held || m.maintErr != nil {
		return
	}
	go m.completeFold(m.cur, m.freezeLocked())
}

// completeFold folds the frozen write layer into a fresh Read-PDT off-lock
// and installs the result as the new version.
func (m *Manager) completeFold(base *version, frozen *pdt.PDT) {
	folded, err := m.fold(base.readPDT, frozen)
	m.mu.Lock()
	defer m.mu.Unlock()
	if err != nil {
		// Every view keeps stacking the frozen layer, so reads stay correct;
		// maintenance is wedged and the error surfaces on the write paths.
		m.maintErr = fmt.Errorf("txn: background propagate: %w", err)
	} else {
		m.installVersionLocked(&version{store: base.store, readPDT: folded})
		m.frozen = nil
		m.maybeFoldLocked() // commits may have refilled the budget meanwhile
	}
	m.cond.Broadcast()
}

// installVersionLocked makes v the current read view and releases the
// previous one if no transaction still pins it. The owned table's direct
// view tracks the newest version.
func (m *Manager) installVersionLocked(v *version) {
	old := m.cur
	m.storeRefs[v.store]++
	m.cur = v
	m.releaseVersionLocked(old)
	// NewManager guarantees ModePDT, so Install cannot fail.
	_ = m.tbl.Install(v.store, v.readPDT)
}

// releaseVersionLocked drops a version's claim on its stable image once it
// is retired (no longer current) and unpinned (no running transaction).
// When an image loses its last version its blocks leave the buffer pool and
// — for a file-backed image — its descriptor is closed right here, so a
// long-running store does not accumulate one open fd per superseded segment
// until DB.Close. Readers that need the image to stay readable must pin it
// through a transaction; direct table reads always track the newest version.
func (m *Manager) releaseVersionLocked(v *version) {
	if v == m.cur || v.refs > 0 {
		return
	}
	m.storeRefs[v.store]--
	if m.storeRefs[v.store] == 0 {
		delete(m.storeRefs, v.store)
		// Evict-then-close: pool residents first so a stale hit cannot
		// outlive the file, then the descriptor (no-op for RAM images).
		_ = v.store.Close()
	}
}

// WaitMaintenance blocks until no background fold or checkpoint is in
// flight, reporting any maintenance failure. Tests and orderly shutdown use
// it; normal operation never has to.
func (m *Manager) WaitMaintenance() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for (m.frozen != nil || m.checkpointing) && m.maintErr == nil {
		m.cond.Wait()
	}
	return m.maintErr
}

// Checkpoint folds all committed state (Read- and Write-PDT) into a new
// stable image while transactions keep running: the current write layer is
// frozen, the frozen view is folded and streamed into a fresh colstore image
// with no lock held — commits land in a fresh delta layer stacked on top —
// and the store swap installs that side layer as the new version's Read-PDT.
// Transactions begun before or during the checkpoint read their pinned
// pre-checkpoint view to completion and may still commit afterwards.
func (m *Manager) Checkpoint() error { return m.CheckpointInto(nil) }

// CheckpointInto is Checkpoint with a caller-supplied image build: a durable
// store passes a build that streams into a new on-disk segment generation and
// uses the freeze LSN as the generation's WAL position. A nil build selects
// the in-memory tbl.Materialize.
func (m *Manager) CheckpointInto(build MaterializeFn) error {
	m.mu.Lock()
	m.ckptWaiters++ // pauses fold re-arming so the wait below terminates
	for (m.checkpointing || m.frozen != nil || m.inflight > 0 || m.held) && m.maintErr == nil {
		m.cond.Wait() // one maintenance operation at a time, between flush rounds
	}
	m.ckptWaiters--
	if err := m.maintErr; err != nil {
		m.mu.Unlock()
		return err
	}
	m.checkpointing = true
	base := m.cur
	freezeLSN := m.lsn // every commit <= this is in (base ∘ read ∘ frozen)
	frozen := m.freezeLocked()
	materialize := build
	if materialize == nil {
		materialize = m.materialize
	}
	if materialize == nil {
		materialize = func(_ uint64, store *colstore.Store, deltas ...*pdt.PDT) (*colstore.Store, error) {
			return m.tbl.Materialize(store, deltas...)
		}
	}
	// The commit leader yields round boundaries while a checkpointer waits;
	// wake it now that the freeze is done — commits flow during the build.
	m.cond.Broadcast()
	m.mu.Unlock()

	// Off-lock: stream the full committed delta state (base ∘ Read ∘ frozen
	// Write, merged on the fly) into a new stable image. The new image
	// materializes exactly that view, so the Write-PDT filling up meanwhile
	// is already positioned in the new image's SID domain.
	newStore, err := materialize(freezeLSN, base.store, base.readPDT, frozen)

	m.mu.Lock()
	defer m.mu.Unlock()
	defer m.cond.Broadcast()
	// The swap (or rollback) replaces the write layer, so it must not race a
	// group-commit round whose precomputed folds chain onto the current one:
	// signal the leader to pause at its next boundary and wait the round out.
	m.ckptInstalling = true
	m.cond.Broadcast()
	for m.inflight > 0 {
		m.cond.Wait()
	}
	m.ckptInstalling = false
	m.checkpointing = false
	if err != nil {
		// Roll the frozen layer back under the write layer so the two-layer
		// invariant holds again (reads were never wrong either way).
		restored, ferr := m.fold(frozen, m.writePDT)
		if ferr != nil {
			m.maintErr = fmt.Errorf("txn: checkpoint rollback: %w", ferr)
			return err
		}
		m.writePDT = restored
		m.frozen = nil
		m.snapCache = nil
		m.rebasePendingLocked()
		return err
	}
	side := m.writePDT // commits that landed during the build
	m.writePDT = pdt.New(m.tbl.Schema(), m.tbl.Fanout())
	m.snapCache = nil
	m.frozen = nil
	m.rebasePendingLocked()
	m.installVersionLocked(&version{store: newStore, readPDT: side})
	return nil
}
