package txn

// Differential tests for the copy-on-write Write-PDT snapshot on the commit
// path: a transaction's view, captured at Begin, must be bit-for-bit what the
// old deep-copy snapshot gave it — frozen at Begin time, immune to every
// later commit, fold, freeze/rebase, and checkpoint.

import (
	"fmt"
	"math/rand"
	"testing"

	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

// viewRows drains a transaction's full scan into (key, a, b) triples.
func viewRows(t *testing.T, tx *Txn) [][3]int64 {
	t.Helper()
	src, err := tx.Scan([]int{0, 1, 2}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var out [][3]int64
	b := vector.NewBatch([]types.Kind{types.Int64, types.Int64, types.String}, 64)
	for {
		n, err := src.Next(b, 64)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			return out
		}
		for i := b.Len() - n; i < b.Len(); i++ {
			out = append(out, [3]int64{b.Vecs[0].I[i], b.Vecs[1].I[i], int64(len(b.Vecs[2].S[i]))})
		}
	}
}

// TestSnapshotIsolationDifferential runs randomized interleavings of Begin,
// write, commit, and maintenance, holding a set of open reader transactions;
// each reader's view is captured right after Begin and re-checked after every
// subsequent event, so any COW leak — a committed write bleeding into an
// older snapshot through shared nodes — fails immediately.
func TestSnapshotIsolationDifferential(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			// Small write budget so freeze/rebase (snapCache invalidation)
			// happens mid-run.
			m := newManager(t, 40, Options{WriteBudget: 4 << 10})

			type reader struct {
				tx   *Txn
				view [][3]int64
			}
			var readers []reader
			checkAll := func(when string) {
				for i, r := range readers {
					got := viewRows(t, r.tx)
					if len(got) != len(r.view) {
						t.Fatalf("%s: reader %d sees %d rows, had %d at Begin", when, i, len(got), len(r.view))
					}
					for j := range got {
						if got[j] != r.view[j] {
							t.Fatalf("%s: reader %d row %d = %v, was %v at Begin", when, i, j, got[j], r.view[j])
						}
					}
				}
			}

			nextKey := int64(1 << 20)
			for step := 0; step < 120; step++ {
				switch op := rng.Intn(10); {
				case op < 4: // committing writer
					w := m.Begin()
					for k := 0; k < 1+rng.Intn(4); k++ {
						nextKey++
						err := w.Insert(types.Row{types.Int(nextKey), types.Int(int64(step)), types.Str("w")})
						if err != nil {
							t.Fatal(err)
						}
					}
					if err := w.Commit(); err != nil {
						t.Fatal(err)
					}
					checkAll(fmt.Sprintf("after commit at step %d", step))
				case op < 7: // open a reader and capture its view
					tx := m.Begin()
					readers = append(readers, reader{tx: tx, view: viewRows(t, tx)})
				case op < 8 && len(readers) > 0: // retire the oldest reader
					r := readers[0]
					readers = readers[1:]
					if err := r.tx.Abort(); err != nil {
						t.Fatal(err)
					}
				case op < 9: // force maintenance to complete
					if err := m.WaitMaintenance(); err != nil {
						t.Fatal(err)
					}
					checkAll(fmt.Sprintf("after maintenance at step %d", step))
				default: // checkpoint (includes rollback-free install + evict)
					if err := m.Checkpoint(); err != nil {
						t.Fatal(err)
					}
					checkAll(fmt.Sprintf("after checkpoint at step %d", step))
				}
			}
			for _, r := range readers {
				if err := r.tx.Abort(); err != nil {
					t.Fatal(err)
				}
			}
			if err := m.WaitMaintenance(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
