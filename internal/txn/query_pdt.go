package txn

// The Query-PDT: the paper's optional fourth layer (§3.3, footnote 5). Some
// statements — e.g. an UPDATE whose scan must not observe the rows it is
// itself inserting (the "Halloween problem") — need protection from their
// own writes. Such a statement stacks a private, initially empty Query-PDT
// on top of the Trans-PDT, reads through the frozen four-layer view, writes
// only into the Query-PDT, and on Finish propagates it into the Trans-PDT.

import (
	"pdtstore/internal/engine"
	"pdtstore/internal/pdt"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

// Query is one self-protected statement inside a transaction.
type Query struct {
	txn  *Txn
	qpdt *pdt.PDT
	done bool
}

// BeginQuery starts a statement whose reads are frozen at the transaction's
// current state and whose writes buffer privately until Finish.
func (t *Txn) BeginQuery() (*Query, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	return &Query{txn: t, qpdt: pdt.New(t.mgr.tbl.Schema(), 0)}, nil
}

// Schema returns the table schema (making Query an engine.Relation).
func (q *Query) Schema() *types.Schema { return q.txn.mgr.tbl.Schema() }

// Scan reads through the statement's frozen view: the transaction's three
// layers — Equation 9 — without the statement's own pending writes. (The
// Query-PDT is deliberately absent from the stack; that is its purpose.)
func (q *Query) Scan(cols []int, loKey, hiKey types.Row) (pdt.BatchSource, error) {
	if q.done {
		return nil, ErrTxnDone
	}
	return q.txn.Scan(cols, loKey, hiKey)
}

// PartitionScan makes Query an engine.PartRelation over the same frozen
// three-layer view Scan reads (the Query-PDT stays out of the stack), so a
// statement's big reads parallelize with the identical Halloween protection.
func (q *Query) PartitionScan(loKey, hiKey types.Row) (*engine.PartScan, error) {
	if q.done {
		return nil, ErrTxnDone
	}
	return q.txn.PartitionScan(loKey, hiKey)
}

// Insert buffers an insert in the Query-PDT, positioned against the frozen
// view — repeated scans will not observe it, so a statement that inserts
// what it selects cannot chase its own output.
func (q *Query) Insert(row types.Row) error {
	if q.done {
		return ErrTxnDone
	}
	schema := q.txn.mgr.tbl.Schema()
	if err := schema.ValidateRow(row); err != nil {
		return err
	}
	key := schema.KeyOf(row)
	rid, dup, err := q.insertPosition(key)
	if err != nil {
		return err
	}
	if dup {
		return errDuplicate(key)
	}
	return q.qpdt.Insert(rid, row)
}

// DeleteByKey buffers a delete of a tuple visible in the frozen view.
// Deleting the same tuple twice within one statement reports not-found the
// second time (it is already a ghost in the Query-PDT).
func (q *Query) DeleteByKey(key types.Row) (bool, error) {
	if q.done {
		return false, ErrTxnDone
	}
	rid, row, found, err := q.txn.findByKey(key)
	if err != nil || !found {
		return false, err
	}
	cur, ghost := q.qpdt.SidToRid(rid)
	if ghost {
		return false, nil
	}
	return true, q.qpdt.Delete(cur, q.txn.mgr.tbl.Schema().KeyOf(row))
}

// UpdateByKey buffers a single-column update of a frozen-view tuple.
func (q *Query) UpdateByKey(key types.Row, col int, val types.Value) (bool, error) {
	if q.done {
		return false, ErrTxnDone
	}
	rid, _, found, err := q.txn.findByKey(key)
	if err != nil || !found {
		return false, err
	}
	cur, ghost := q.qpdt.SidToRid(rid)
	if ghost {
		return false, nil
	}
	return true, q.qpdt.Modify(cur, col, val)
}

// insertPosition locates key's slot in the statement's *current* domain
// (frozen view plus this statement's own buffered updates): a stacked merge
// over the sort-key columns — the transaction's pinned layers (mirroring
// Txn.Scan) with the Query-PDT stacked on top.
func (q *Query) insertPosition(key types.Row) (rid uint64, dup bool, err error) {
	t := q.txn
	schema := t.mgr.tbl.Schema()
	store := t.ver.store
	from, _ := store.SIDRange(key, nil)
	base := store.NewScanner(schema.SortKey, from, store.NRows())
	stack := engine.StackPDTs(base, schema.SortKey, from, true,
		t.ver.readPDT, t.frozen, t.writeSnap, t.trans, q.qpdt)
	out := vector.NewBatch(t.mgr.tbl.Kinds(schema.SortKey), 256)
	last := uint64(int64(t.visibleRows()) + q.qpdt.Delta())
	for {
		out.Reset()
		n, err := stack.Next(out, 256)
		if err != nil {
			return 0, false, err
		}
		if n == 0 {
			return last, false, nil
		}
		for i := 0; i < n; i++ {
			cmp := types.CompareRows(key, out.Row(i))
			if cmp == 0 {
				return out.Rids[i], true, nil
			}
			if cmp < 0 {
				return out.Rids[i], false, nil
			}
		}
	}
}

// Pending returns the number of updates buffered so far.
func (q *Query) Pending() int { return q.qpdt.Count() }

// Finish propagates the statement's buffered updates into the Trans-PDT,
// making them visible to the rest of the transaction.
func (q *Query) Finish() error {
	if q.done {
		return ErrTxnDone
	}
	q.done = true
	return q.txn.trans.Propagate(q.qpdt)
}

// Discard drops the statement's buffered updates (statement-level rollback).
func (q *Query) Discard() {
	q.done = true
}

type errDuplicate types.Row

func (e errDuplicate) Error() string { return "txn: duplicate key " + types.Row(e).String() }
