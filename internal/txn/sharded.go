package txn

// Shard-per-core writes: a table is partitioned into N key-range shards, each
// a full Manager over its own physically split stable image, Write-PDT,
// group-commit sequencer and WAL stream. The Sharded coordinator owns what
// must stay global:
//
//   - one monotonic commit clock all shards allocate LSNs from, so commit,
//     recovery and replay ordering stay total across the independent WAL
//     streams (each stream carries a gapped subsequence of one LSN order);
//   - the key cuts routing every write to exactly one shard;
//   - the begin gate making cross-shard installs atomic against Begin;
//   - the cross-shard commit path itself (commitCross).
//
// A transaction that only wrote one shard commits through that shard's own
// sequencer — no coordination, no global lock, which is the whole point:
// under concurrent writers with disjoint key ranges the N sequencers batch,
// fsync and install in parallel. A transaction spanning shards commits in two
// phases under a coordinator mutex: every participant is quiesced and its
// delta validated and folded (prepare), then one clock slot L is allocated
// and each participant's WAL stream gets a record at LSN L naming the full
// participant set (phase A), then all participants install behind the begin
// gate (phase B). A crash between the phase-A appends leaves an incomplete
// group that recovery drops on every stream (wal.CompleteGroups), so the
// commit is all-or-nothing per clock entry.
import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"pdtstore/internal/engine"
	"pdtstore/internal/pdt"
	"pdtstore/internal/table"
	"pdtstore/internal/types"
	"pdtstore/internal/wal"
)

// Sharded coordinates transactions over a table split into key-range shards,
// each owned by its own Manager. Construct with NewSharded before any shard
// manager is used; the coordinator rewires every manager onto one shared
// commit clock.
type Sharded struct {
	mgrs   []*Manager
	keys   []types.Row // len(mgrs)-1 ascending split keys; shard i owns [keys[i-1], keys[i])
	schema *types.Schema

	// clock is the global commit clock. Every shard's group-commit leader
	// allocates its batch's LSN run here, and cross-shard commits take one
	// slot all participants share.
	clock *atomic.Uint64

	// beginGate orders snapshots against cross-shard installs: Begin pins its
	// per-shard snapshot vector under the read side, commitCross installs all
	// participants under the write side, so no snapshot ever observes a
	// cross-shard commit on one shard but not another.
	beginGate sync.RWMutex

	// xmu serializes cross-shard commits: the quiesce-prepare-append-install
	// sequence spans several managers, and two interleaved sequences could
	// deadlock on the shards' held flags.
	xmu   sync.Mutex
	fault *CommitFault // crash-test hook, read and written under xmu
}

// CommitFault injects failures at the cut points of a cross-shard commit
// (crash tests only). A non-nil return from a hook simulates the process
// dying there: commitCross stops, releases what it prepared, and returns the
// error — the on-disk state is exactly what a crash at that point leaves.
type CommitFault struct {
	// BetweenAppends runs after participant i's WAL append, before the next
	// participant's (never after the last).
	BetweenAppends func(i int) error
	// BetweenInstalls runs after participant i's in-memory install, before
	// the next participant's (never after the last). Installs are memory-only
	// — the commit is already durable on every stream — so a "crash" here
	// loses nothing: reopen recovers the complete group whole. A live DB that
	// took this fault is inconsistent (some shards installed, some not) and
	// is only good for crash-and-reopen.
	BetweenInstalls func(i int) error
}

// NewSharded couples n shard managers into one sharded table. keys are the
// n-1 strictly ascending full-sort-key cuts: shard 0 owns keys below keys[0],
// shard i owns [keys[i-1], keys[i]), the last shard owns the rest. Each
// manager must already own its shard's physically split sub-table and (for a
// durable table) its own WAL stream, and must not have started transactions:
// NewSharded rewires every manager onto one shared commit clock, seeded at
// the maximum of the shards' recovered LSNs.
func NewSharded(mgrs []*Manager, keys []types.Row) (*Sharded, error) {
	if len(mgrs) == 0 {
		return nil, fmt.Errorf("txn: sharded table needs at least one shard")
	}
	if len(keys) != len(mgrs)-1 {
		return nil, fmt.Errorf("txn: %d shards need %d split keys, got %d", len(mgrs), len(mgrs)-1, len(keys))
	}
	schema := mgrs[0].tbl.Schema()
	for i, k := range keys {
		if len(k) != len(schema.SortKey) {
			return nil, fmt.Errorf("txn: split key %d: need the full %d-column sort key", i, len(schema.SortKey))
		}
		if i > 0 && types.CompareRows(keys[i-1], k) >= 0 {
			return nil, fmt.Errorf("txn: split keys must be strictly ascending")
		}
	}
	s := &Sharded{mgrs: mgrs, keys: keys, schema: schema, clock: new(atomic.Uint64)}
	for i, m := range mgrs {
		raiseClock(s.clock, m.clock.Load())
		m.shardID = uint32(i)
		m.clock = s.clock
	}
	return s, nil
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.mgrs) }

// Shard returns shard i's manager.
func (s *Sharded) Shard(i int) *Manager { return s.mgrs[i] }

// Keys returns the split keys (shared; callers must not modify).
func (s *Sharded) Keys() []types.Row { return s.keys }

// Schema returns the table schema.
func (s *Sharded) Schema() *types.Schema { return s.schema }

// ShardOf returns the index of the shard owning key.
func (s *Sharded) ShardOf(key types.Row) int {
	return sort.Search(len(s.keys), func(i int) bool {
		return types.CompareRows(key, s.keys[i]) < 0
	})
}

// Clock returns the global commit clock: the highest LSN ever allocated
// across all shards (single-shard batches may still be in flight).
func (s *Sharded) Clock() uint64 { return s.clock.Load() }

// RaiseClock lifts the global clock to at least lsn. Recovery calls it with
// the manifest's checkpoint LSNs so post-recovery commits never reuse a spent
// slot even when every WAL stream was truncated.
func (s *Sharded) RaiseClock(lsn uint64) { raiseClock(s.clock, lsn) }

// Checkpoint checkpoints every shard, one at a time (each shard's checkpoint
// is online; commits keep flowing on all shards throughout).
func (s *Sharded) Checkpoint() error {
	for _, m := range s.mgrs {
		if err := m.Checkpoint(); err != nil {
			return err
		}
	}
	return nil
}

// WaitMaintenance waits out background folds and checkpoints on every shard.
func (s *Sharded) WaitMaintenance() error {
	for _, m := range s.mgrs {
		if err := m.WaitMaintenance(); err != nil {
			return err
		}
	}
	return nil
}

// SetCommitFault arms (or disarms, with nil) the cross-shard fault hooks.
func (s *Sharded) SetCommitFault(f *CommitFault) {
	s.xmu.Lock()
	s.fault = f
	s.xmu.Unlock()
}

// Begin starts a transaction spanning every shard: a vector of per-shard
// snapshots pinned under the begin gate, so no cross-shard commit is ever
// partially visible (single-shard commits are one-shard atomic either way).
// Each per-shard snapshot is the usual O(1) copy-on-write Begin; a commit on
// one shard never forces the others to rebuild their cached snapshots.
func (s *Sharded) Begin() *STxn {
	s.beginGate.RLock()
	defer s.beginGate.RUnlock()
	txns := make([]*Txn, len(s.mgrs))
	for i, m := range s.mgrs {
		txns[i] = m.Begin()
	}
	return &STxn{s: s, txns: txns}
}

// STxn is one transaction over a sharded table: a vector of per-shard
// transactions plus the routing to drive them. Reads concatenate the shards'
// merged pipelines in key order (shard order IS key order) with globally
// consecutive RIDs; writes route to the owning shard by key.
type STxn struct {
	s         *Sharded
	txns      []*Txn
	commitLSN uint64
	done      bool
}

// CommitLSN returns the global clock slot the commit was assigned, valid
// once Commit has returned nil (0 for aborted, failed or empty commits).
func (t *STxn) CommitLSN() uint64 { return t.commitLSN }

// ShardTxn returns the per-shard transaction for shard i (stats and tests).
func (t *STxn) ShardTxn(i int) *Txn { return t.txns[i] }

// Schema returns the table schema (STxn is an engine.Relation).
func (t *STxn) Schema() *types.Schema { return t.s.schema }

// Scan returns the transaction's view of the whole table: the shards' merged
// pipelines concatenated in shard (= key) order, each shifted so RIDs are
// globally consecutive — shard i's local RID r surfaces as r plus the
// visible row counts of the shards before it.
func (t *STxn) Scan(cols []int, loKey, hiKey types.Row) (pdt.BatchSource, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	srcs := make([]pdt.BatchSource, len(t.txns))
	var off uint64
	for i, tx := range t.txns {
		src, err := tx.Scan(cols, loKey, hiKey)
		if err != nil {
			return nil, err
		}
		srcs[i] = engine.OffsetRids(src, off)
		off += tx.visibleRows()
	}
	return engine.Concat(srcs...), nil
}

// PartitionScan makes STxn an engine.PartRelation: the shards' clamped scan
// ranges are laid out end to end in one compacted domain, with a hard cut at
// every shard boundary, so each morsel falls entirely inside one shard and
// opens that shard's pipeline alone — a parallel scan's workers fan out
// across shards without any morsel straddling two Write-PDT stacks. A shard
// whose clamped stable range is empty still owns a zero-width slot (its
// delta layers can hold qualifying inserts); the morsel starting at that
// slot's position — or the domain's last morsel, for a slot at the very end —
// scans it.
func (t *STxn) PartitionScan(loKey, hiKey types.Row) (*engine.PartScan, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	type seg struct {
		start  uint64 // position in the compacted domain
		width  uint64
		ps     *engine.PartScan
		ridOff uint64
	}
	segs := make([]seg, 0, len(t.txns))
	var pos, ridOff uint64
	unit := 1
	var cuts []uint64
	for _, tx := range t.txns {
		ps, err := tx.PartitionScan(loKey, hiKey)
		if err != nil {
			return nil, err
		}
		w := ps.Hi - ps.Lo
		if w > 0 && pos > 0 {
			cuts = append(cuts, pos)
		}
		segs = append(segs, seg{start: pos, width: w, ps: ps, ridOff: ridOff})
		pos += w
		ridOff += tx.visibleRows()
		if ps.Unit > unit {
			unit = ps.Unit
		}
	}
	domainHi := pos
	return &engine.PartScan{Lo: 0, Hi: domainHi, Unit: unit, Cuts: cuts,
		// Pruning composes per shard: each shard prunes its own clamped range
		// against its pinned snapshot, and the kept ranges are translated into
		// the compacted domain. A zero-width slot always survives as a
		// zero-width range (its delta layers can hold qualifying inserts);
		// a shard that declines keeps its whole slot.
		Prune: func(preds []engine.Pred) *engine.PruneResult {
			res := &engine.PruneResult{}
			any := false
			for _, sg := range segs {
				if sg.width == 0 {
					res.Ranges = append(res.Ranges, engine.SIDRange{Lo: sg.start, Hi: sg.start})
					continue
				}
				var sub *engine.PruneResult
				if sg.ps.Prune != nil {
					sub = sg.ps.Prune(preds)
				}
				if sub == nil {
					res.Ranges = append(res.Ranges, engine.SIDRange{Lo: sg.start, Hi: sg.start + sg.width})
					nb := int((sg.width + uint64(unit) - 1) / uint64(unit))
					res.Total += nb
					res.Kept += nb
					continue
				}
				any = true
				res.Total += sub.Total
				res.Kept += sub.Kept
				res.ZoneSkips += sub.ZoneSkips
				res.IndexSkips += sub.IndexSkips
				for _, r := range sub.Ranges {
					res.Ranges = append(res.Ranges, engine.SIDRange{
						Lo: sg.start + (r.Lo - sg.ps.Lo),
						Hi: sg.start + (r.Hi - sg.ps.Lo),
					})
				}
			}
			if !any {
				return nil
			}
			return res
		},
		Open: func(cols []int, mlo, mhi uint64, last bool) (pdt.BatchSource, error) {
			var srcs []pdt.BatchSource
			for _, sg := range segs {
				var slo, shi uint64
				switch {
				case sg.width == 0:
					// Owned by the morsel starting at this slot, or by the
					// final morsel for a slot at the domain's end.
					if sg.start != mlo && !(last && sg.start == domainHi) {
						continue
					}
					slo, shi = sg.ps.Lo, sg.ps.Lo
				case sg.start <= mlo && mlo < mhi && mhi <= sg.start+sg.width:
					slo = sg.ps.Lo + (mlo - sg.start)
					shi = sg.ps.Lo + (mhi - sg.start)
				default:
					continue
				}
				// The shard's own end boundary decides includeEnd: the morsel
				// reaching the shard's clamped Hi owns the delta entries
				// sitting exactly there, whatever its global position.
				inner, err := sg.ps.Open(cols, slo, shi, shi == sg.ps.Hi)
				if err != nil {
					return nil, err
				}
				srcs = append(srcs, engine.OffsetRids(inner, sg.ridOff))
			}
			return engine.Concat(srcs...), nil
		}}, nil
}

// FindByKey locates the visible tuple with the given (full) sort key,
// routing the probe to the owning shard and returning the RID in the global
// concatenated coordinate space (shard-local RID plus the visible row counts
// of all earlier shards — the same offsets Scan applies).
func (t *STxn) FindByKey(key types.Row) (rid uint64, row types.Row, found bool, err error) {
	if t.done {
		return 0, nil, false, ErrTxnDone
	}
	if len(key) != len(t.s.schema.SortKey) {
		return 0, nil, false, fmt.Errorf("txn: need the full %d-column sort key", len(t.s.schema.SortKey))
	}
	home := t.s.ShardOf(key)
	rid, row, found, err = t.txns[home].findByKey(key)
	if err != nil || !found {
		return 0, nil, false, err
	}
	for i := 0; i < home; i++ {
		rid += t.txns[i].visibleRows()
	}
	return rid, row, true, nil
}

// Insert adds a tuple to the shard owning its key.
func (t *STxn) Insert(row types.Row) error {
	if t.done {
		return ErrTxnDone
	}
	if err := t.s.schema.ValidateRow(row); err != nil {
		return err
	}
	return t.txns[t.s.ShardOf(t.s.schema.KeyOf(row))].Insert(row)
}

// DeleteByKey removes the visible tuple with the given key.
func (t *STxn) DeleteByKey(key types.Row) (bool, error) {
	if t.done {
		return false, ErrTxnDone
	}
	return t.txns[t.s.ShardOf(key)].DeleteByKey(key)
}

// UpdateByKey sets one column of the visible tuple with the given key. A
// sort-key update whose new key lands on a different shard becomes a
// delete on the source shard plus an insert on the destination — one
// transaction, so Commit makes the move atomic (cross-shard, when the two
// shards differ).
func (t *STxn) UpdateByKey(key types.Row, col int, val types.Value) (bool, error) {
	if t.done {
		return false, ErrTxnDone
	}
	schema := t.s.schema
	src := t.txns[t.s.ShardOf(key)]
	if !schema.IsSortKeyCol(col) {
		return src.UpdateByKey(key, col, val)
	}
	_, row, found, err := src.findByKey(key)
	if err != nil || !found {
		return false, err
	}
	newRow := row.Clone()
	newRow[col] = val
	newKey := schema.KeyOf(newRow)
	dst := t.txns[t.s.ShardOf(newKey)]
	if dst == src {
		return src.UpdateByKey(key, col, val)
	}
	// Uniqueness on the destination before the delete, so a collision rejects
	// the update with the old row still in place.
	if _, _, taken, err := dst.findByKey(newKey); err != nil {
		return false, err
	} else if taken {
		return false, fmt.Errorf("txn: duplicate key %v", newKey)
	}
	if _, err := src.DeleteByKey(key); err != nil {
		return false, err
	}
	return true, dst.Insert(newRow)
}

// ApplyBatch splits the batch by owning shard and applies each run with the
// per-shard bulk path (shared merge-scan cursor, Trans-PDT fed in SID
// order). Per-shard semantics match Txn.ApplyBatch; the effect count sums
// across shards.
func (t *STxn) ApplyBatch(ops []table.Op) (int, error) {
	if t.done {
		return 0, ErrTxnDone
	}
	if len(t.txns) == 1 {
		return t.txns[0].ApplyBatch(ops)
	}
	schema := t.s.schema
	byShard := make([][]table.Op, len(t.txns))
	for _, op := range ops {
		key := op.Key
		if op.Kind == table.OpInsert {
			if err := schema.ValidateRow(op.Row); err != nil {
				return 0, err
			}
			key = schema.KeyOf(op.Row)
		}
		i := t.s.ShardOf(key)
		byShard[i] = append(byShard[i], op)
	}
	total := 0
	for i, part := range byShard {
		if len(part) == 0 {
			continue
		}
		n, err := t.txns[i].ApplyBatch(part)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Abort discards the transaction on every shard.
func (t *STxn) Abort() error {
	if t.done {
		return nil
	}
	t.done = true
	var err error
	for _, tx := range t.txns {
		if aerr := tx.Abort(); err == nil {
			err = aerr
		}
	}
	return err
}

// Commit commits the transaction. A transaction that wrote a single shard
// takes that shard's ordinary group-commit path — it batches and fsyncs with
// that shard's other writers, fully independent of the rest of the table.
// One that wrote several commits atomically across them via the coordinator
// (commitCross). An empty commit consumes no clock slot.
func (t *STxn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	var parts []int
	for i, tx := range t.txns {
		if tx.trans.Count() > 0 {
			parts = append(parts, i)
		}
	}
	switch len(parts) {
	case 0:
		for _, tx := range t.txns {
			tx.Abort()
		}
		return nil
	case 1:
		p := parts[0]
		for i, tx := range t.txns {
			if i != p {
				tx.Abort()
			}
		}
		if err := t.txns[p].Commit(); err != nil {
			return err
		}
		t.commitLSN = t.txns[p].CommitLSN()
		return nil
	}
	return t.s.commitCross(t, parts)
}

// commitCross is the two-phase cross-shard commit. Under xmu: every
// participant is prepared (quiesced, validated, folded), one clock slot L is
// allocated, each participant's WAL stream gets one record at LSN L carrying
// the participant set (phase A, each behind its own fsync), and all
// participants install behind the begin gate (phase B). Failure anywhere
// before the last phase-A append releases every prepared shard with nothing
// installed; the records already appended are orphans of an incomplete group
// that recovery drops on every stream — all-or-nothing per clock entry.
func (s *Sharded) commitCross(t *STxn, parts []int) error {
	s.xmu.Lock()
	defer s.xmu.Unlock()

	isPart := make([]bool, len(t.txns))
	ids := make([]uint32, len(parts))
	for n, i := range parts {
		isPart[i] = true
		ids[n] = uint32(i)
	}
	for i, tx := range t.txns {
		if !isPart[i] {
			tx.Abort()
		}
	}

	prepared := make([]*preparedCommit, 0, len(parts))
	release := func() {
		for _, p := range prepared {
			p.release()
		}
	}
	for n, i := range parts {
		pc, err := s.mgrs[i].prepareCommit(t.txns[i])
		if err != nil {
			release()
			for _, j := range parts[n+1:] {
				t.txns[j].Abort()
			}
			return err
		}
		prepared = append(prepared, pc)
	}

	lsn := s.clock.Add(1)

	// Phase A: make the commit durable on every participant stream.
	for n, i := range parts {
		m := s.mgrs[i]
		if m.log != nil {
			rec := wal.GroupRecord{Table: "table", Shard: uint32(i), Parts: ids,
				Entries: prepared[n].serialized.Dump()}
			if err := m.log.AppendGroupAt(lsn, []wal.GroupRecord{rec}); err != nil {
				release()
				return fmt.Errorf("txn: cross-shard WAL append, shard %d: %w", i, err)
			}
		}
		if f := s.fault; f != nil && f.BetweenAppends != nil && n < len(parts)-1 {
			if err := f.BetweenAppends(n); err != nil {
				release()
				return err
			}
		}
	}

	// Phase B: memory-only installs, atomic against Begin via the gate.
	s.beginGate.Lock()
	for n := range parts {
		prepared[n].install(lsn)
		if f := s.fault; f != nil && f.BetweenInstalls != nil && n < len(parts)-1 {
			if err := f.BetweenInstalls(n); err != nil {
				for _, rest := range prepared[n+1:] {
					rest.release()
				}
				s.beginGate.Unlock()
				return err
			}
		}
	}
	s.beginGate.Unlock()
	t.commitLSN = lsn
	return nil
}

// preparedCommit is one shard's half-committed part of a cross-shard
// transaction: validated and folded, its manager's commit pipeline held,
// waiting for the coordinator to either install (the commit is durable
// everywhere) or release (some participant failed).
type preparedCommit struct {
	m          *Manager
	t          *Txn
	serialized *pdt.PDT
	folded     *pdt.PDT
}

// prepareCommit quiesces the shard and validates+folds t's delta against its
// committed state. On return the shard's held flag is set: new commits park
// at the top of Commit, fold re-arming and checkpoint entry wait, and the
// Write-PDT cannot change until install or release clears it — so the fold
// computed here stays installable by a bare pointer swap.
func (m *Manager) prepareCommit(t *Txn) (*preparedCommit, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t.done = true
	fail := func(err error) (*preparedCommit, error) {
		m.held = false
		m.finishLocked(t)
		m.cond.Broadcast()
		return nil, err
	}
	m.held = true
	// Drain: parked rounds flush (the leader ignores held), new arrivals
	// wait on held, and a checkpoint in flight completes its swap (its
	// install is not held-gated) — after this loop the Write-PDT is quiet.
	for (len(m.pending) > 0 || m.inflight > 0 || m.checkpointing) && m.maintErr == nil {
		m.cond.Wait()
	}
	if err := m.maintErr; err != nil {
		return fail(err)
	}
	serialized := t.trans
	chain := make([]*pdt.PDT, 0, len(m.committed))
	for _, c := range m.committed {
		if c.commitLSN > t.startLSN {
			chain = append(chain, c.serialized)
		}
	}
	if len(chain) > 0 {
		next, err := serialized.SerializeChain(chain)
		if err != nil {
			return fail(fmt.Errorf("%w: %v", ErrConflict, err))
		}
		serialized = next
	}
	folded, err := m.fold(m.writePDT, serialized)
	if err != nil {
		return fail(err)
	}
	return &preparedCommit{m: m, t: t, serialized: serialized, folded: folded}, nil
}

// install makes the prepared commit visible on its shard at the global LSN
// all participants share, releasing the held pipeline.
func (p *preparedCommit) install(lsn uint64) {
	m := p.m
	m.mu.Lock()
	m.lsn = lsn
	m.writePDT = p.folded
	m.finishLocked(p.t)
	if refs := len(m.running); refs > 0 {
		m.committed = append(m.committed, &committedTxn{
			serialized: p.serialized, commitLSN: lsn, refcnt: refs})
	}
	m.snapCache = nil
	m.held = false
	m.cond.Broadcast()
	m.maybeFoldLocked()
	m.mu.Unlock()
}

// release abandons the prepared commit — the Write-PDT never changes — and
// releases the held pipeline.
func (p *preparedCommit) release() {
	m := p.m
	m.mu.Lock()
	m.held = false
	m.finishLocked(p.t)
	m.cond.Broadcast()
	m.mu.Unlock()
}
