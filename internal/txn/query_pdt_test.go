package txn

import (
	"testing"

	"pdtstore/internal/types"
)

func TestQueryPDTSelfProtection(t *testing.T) {
	// The Halloween-problem scenario: a statement inserts rows derived from
	// what it scans; its own inserts must stay invisible until Finish.
	m := newManager(t, 10, Options{}) // keys 10..100
	tx := m.Begin()
	defer tx.Abort()

	q, err := tx.BeginQuery()
	if err != nil {
		t.Fatal(err)
	}
	// "INSERT INTO t SELECT key+1 ..." — scan while inserting.
	keysBefore := txnKeys(t, tx)
	for _, k := range keysBefore {
		if err := q.Insert(types.Row{types.Int(k + 1), types.Int(0), types.Str("q")}); err != nil {
			t.Fatalf("insert %d: %v", k+1, err)
		}
		// The statement's view must not grow while it runs.
		if got := len(txnKeys(t, tx)); got != len(keysBefore) {
			t.Fatalf("statement observes its own writes: %d rows", got)
		}
	}
	if q.Pending() != len(keysBefore) {
		t.Fatalf("pending = %d", q.Pending())
	}
	if err := q.Finish(); err != nil {
		t.Fatal(err)
	}
	// After Finish the transaction sees everything.
	after := txnKeys(t, tx)
	if len(after) != 2*len(keysBefore) {
		t.Fatalf("after finish: %d rows, want %d", len(after), 2*len(keysBefore))
	}
	// And commits propagate as usual.
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	check := m.Begin()
	defer check.Abort()
	if len(txnKeys(t, check)) != 2*len(keysBefore) {
		t.Fatal("query-PDT updates lost at commit")
	}
}

func TestQueryPDTUpdateDeleteAndDiscard(t *testing.T) {
	m := newManager(t, 10, Options{})
	tx := m.Begin()
	defer tx.Abort()

	q, err := tx.BeginQuery()
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := q.UpdateByKey(types.Row{types.Int(20)}, 1, types.Int(777)); err != nil || !ok {
		t.Fatalf("update: %v %v", ok, err)
	}
	if ok, err := q.DeleteByKey(types.Row{types.Int(30)}); err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	// double delete within the statement: not found
	if ok, _ := q.DeleteByKey(types.Row{types.Int(30)}); ok {
		t.Fatal("double delete in one statement succeeded")
	}
	// frozen view: the transaction still sees the original state
	if _, row, found, _ := tx.findByKey(types.Row{types.Int(20)}); !found || row[1].I == 777 {
		t.Fatal("statement write leaked into the frozen view")
	}
	if err := q.Finish(); err != nil {
		t.Fatal(err)
	}
	_, row, found, _ := tx.findByKey(types.Row{types.Int(20)})
	if !found || row[1].I != 777 {
		t.Fatal("update not visible after Finish")
	}
	if _, _, found, _ := tx.findByKey(types.Row{types.Int(30)}); found {
		t.Fatal("delete not visible after Finish")
	}

	// Discard: a second statement's writes vanish.
	q2, err := tx.BeginQuery()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q2.UpdateByKey(types.Row{types.Int(40)}, 1, types.Int(1)); err != nil {
		t.Fatal(err)
	}
	q2.Discard()
	if _, row, _, _ := tx.findByKey(types.Row{types.Int(40)}); row[1].I == 1 {
		t.Fatal("discarded statement leaked")
	}
	if err := q2.Finish(); err == nil {
		t.Fatal("finish after discard accepted")
	}
}

func TestQueryPDTDuplicateInsert(t *testing.T) {
	m := newManager(t, 5, Options{})
	tx := m.Begin()
	defer tx.Abort()
	q, err := tx.BeginQuery()
	if err != nil {
		t.Fatal(err)
	}
	// duplicate against the frozen view
	if err := q.Insert(types.Row{types.Int(10), types.Int(0), types.Str("d")}); err == nil {
		t.Fatal("duplicate of stable key accepted")
	}
	// duplicate against the statement's own pending insert
	if err := q.Insert(types.Row{types.Int(11), types.Int(0), types.Str("a")}); err != nil {
		t.Fatal(err)
	}
	if err := q.Insert(types.Row{types.Int(11), types.Int(0), types.Str("b")}); err == nil {
		t.Fatal("duplicate of pending insert accepted")
	}
}
