package txn

// Parallel scans through the transaction stack: a morsel worker opens a
// range-clamped copy of the full Equation 9 layer stack, so the differential
// contract is the same as the engine's — any worker count, same rows, same
// order. The stress test races forced-parallel scans against the moving
// parts the snapshot design pins: commits, Write-PDT folds and checkpoints.

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"pdtstore/internal/engine"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

// fpScan renders a relation's scan stream: RID, then the projected columns.
func fpScan(t *testing.T, rel engine.Relation, workers int) string {
	t.Helper()
	var out strings.Builder
	err := engine.Scan(rel, 0, 1, 2).Parallel(workers).Run(func(b *vector.Batch, sel []uint32) error {
		for _, i := range sel {
			if len(b.Rids) > int(i) {
				fmt.Fprintf(&out, "@%d:", b.Rids[i])
			}
			out.WriteString(b.Vecs[0].Get(int(i)).String())
			out.WriteByte('|')
			out.WriteString(b.Vecs[1].Get(int(i)).String())
			out.WriteByte('|')
			out.WriteString(b.Vecs[2].Get(int(i)).String())
			out.WriteByte('\n')
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestTxnParallelScanMatchesSerial(t *testing.T) {
	m := newManager(t, 3000, Options{})
	// Committed history lands in the Write-PDT (and, after folds, the
	// Read-PDT) under the version this transaction pins.
	setup := m.Begin()
	for i := int64(0); i < 200; i++ {
		if err := setup.Insert(types.Row{types.Int(i*10 + 5), types.Int(i), types.Str("w")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	tx := m.Begin()
	defer tx.Abort()
	// Private Trans-PDT writes on top.
	for i := int64(0); i < 50; i++ {
		if err := tx.Insert(types.Row{types.Int(i*10 + 7), types.Int(-i), types.Str("t")}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx.DeleteByKey(types.Row{types.Int(100)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.UpdateByKey(types.Row{types.Int(200)}, 1, types.Int(424242)); err != nil {
		t.Fatal(err)
	}

	want := fpScan(t, tx, 1)
	if want == "" {
		t.Fatal("serial scan empty; test is vacuous")
	}
	for _, w := range []int{2, 4, 8} {
		if got := fpScan(t, tx, w); got != want {
			t.Errorf("txn scan with %d workers diverges from serial", w)
		}
	}

	// A Query statement scans the same frozen view through its own
	// PartitionScan, with its private Query-PDT kept out of the stack.
	q, err := tx.BeginQuery()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Insert(types.Row{types.Int(9), types.Int(9), types.Str("q")}); err != nil {
		t.Fatal(err)
	}
	qwant := fpScan(t, q, 1)
	if qwant != want {
		t.Error("query view differs from its transaction's frozen view")
	}
	for _, w := range []int{2, 4} {
		if got := fpScan(t, q, w); got != qwant {
			t.Errorf("query scan with %d workers diverges from serial", w)
		}
	}
	if err := q.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestParallelScanRacesMaintenance(t *testing.T) {
	// Forced-parallel scans on pinned snapshots must return internally
	// consistent results while commits, folds (small WriteBudget) and
	// checkpoints run concurrently. Run under -race this doubles as the
	// Device/pool concurrency audit.
	m := newManager(t, 2000, Options{WriteBudget: 1 << 12})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, 8)
	var scans atomic.Int64

	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				scans.Add(1)
				tx := m.Begin()
				var prev int64 = -1 << 62
				rows := 0
				err := engine.Scan(tx, 0).Parallel(4).Run(func(b *vector.Batch, sel []uint32) error {
					for _, i := range sel {
						k := b.Vecs[0].I[i]
						if k <= prev {
							return fmt.Errorf("keys out of order: %d after %d", k, prev)
						}
						prev = k
						rows++
					}
					return nil
				})
				if err == nil && rows < 2000 {
					err = fmt.Errorf("scan saw %d rows, want >= 2000", rows)
				}
				if err == nil {
					// The same snapshot must re-read identically while
					// maintenance churns underneath it.
					a := fpScan(t, tx, 4)
					b := fpScan(t, tx, 3)
					if a != b {
						err = fmt.Errorf("snapshot re-read diverged")
					}
				}
				tx.Abort()
				if err != nil {
					errc <- err
					return
				}
			}
		}()
	}

	// Keep maintenance churning until the scanners have raced it through a
	// fair number of full passes (and at least 30 commit rounds either way).
	// Each round inserts a batch of keys and then deletes it again, so the
	// table stays ~2000 rows however long the scanners take — the churn is
	// in the PDT layers and fold/checkpoint cycles, not in table growth.
	for c := 0; c < 30 || scans.Load() < 9; c++ {
		tx := m.Begin()
		for j := int64(0); j < 20; j++ {
			if err := tx.Insert(types.Row{types.Int(j*10 + 3), types.Int(j), types.Str("c")}); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		tx = m.Begin()
		for j := int64(0); j < 20; j++ {
			if _, err := tx.DeleteByKey(types.Row{types.Int(j*10 + 3)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		if c%10 == 9 {
			if err := m.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := m.WaitMaintenance(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}
