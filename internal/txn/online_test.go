package txn

// Online-maintenance stress: mixed transactional traffic (Begin / Scan /
// ApplyBatch / per-op updates / Commit) from several goroutines races a
// background checkpoint loop and a tiny write budget (so Write→Read folds
// fire constantly). Every transaction asserts the snapshot-isolation
// invariant — its visible row count only moves by its own writes — and the
// final state must be exactly the initial one, since every worker deletes
// what it inserts. CI's race job runs this file under -race.

import (
	"sync"
	"testing"

	"pdtstore/internal/table"
	"pdtstore/internal/types"
)

// countRows scans the transaction's full view and returns the row count.
func countRows(t *testing.T, tx *Txn) int {
	t.Helper()
	return len(txnKeys(t, tx))
}

// TestDirectTableReadsRaceBackgroundInstalls pins the atomic image swap:
// direct reads through mgr.Table() (legal between transactions) race the
// background fold/checkpoint installs and must always observe a consistent
// (store, Read-PDT) pair — under -race this test fails without the table's
// atomic image pointer.
func TestDirectTableReadsRaceBackgroundInstalls(t *testing.T) {
	const stableRows = 100
	m := newManager(t, stableRows, Options{WriteBudget: 1 << 10})
	stop := make(chan struct{})
	var bg sync.WaitGroup
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// The manager only installs committed state, so a consistent
			// image always holds at least the stable rows.
			if n := m.Table().NRows(); n < stableRows {
				t.Errorf("direct read saw torn image: %d rows", n)
				return
			}
			if _, _, found, err := m.Table().FindByKey(types.Row{types.Int(10)}); err != nil || !found {
				t.Errorf("direct point read: found=%v err=%v", found, err)
				return
			}
		}
	}()
	for i := 0; i < 30; i++ {
		tx := m.Begin()
		if err := tx.Insert(types.Row{types.Int(int64(10_000 + i)), types.Int(0), types.Str("d")}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		if i%10 == 5 {
			if err := m.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	bg.Wait()
	if err := m.WaitMaintenance(); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineMaintenanceStress(t *testing.T) {
	const (
		stableRows = 200
		workers    = 4
		rounds     = 12
		batch      = 16
	)
	// Tiny budget: nearly every commit schedules a background fold.
	m := newManager(t, stableRows, Options{WriteBudget: 1 << 10})

	stop := make(chan struct{})
	var bg sync.WaitGroup

	// Background checkpoint loop: rebuild the stable image continuously
	// while traffic runs.
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := m.Checkpoint(); err != nil {
				t.Errorf("background checkpoint: %v", err)
				return
			}
		}
	}()

	// Observer: repeatedly asserts a snapshot's row count cannot change
	// under it, no matter what commits, folds and checkpoints do meanwhile.
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tx := m.Begin()
			before := countRows(t, tx)
			after := countRows(t, tx)
			if before != after {
				t.Errorf("snapshot row count moved %d -> %d", before, after)
			}
			if err := tx.Abort(); err != nil {
				t.Errorf("observer abort: %v", err)
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Disjoint key spaces: worker w inserts fresh keys above the
			// stable range and modifies its own slice of stable keys, so
			// commits never write-write conflict.
			stableBase := int64(w*(stableRows/workers) + 1)
			for r := 0; r < rounds; r++ {
				fresh := make([]int64, batch)
				for i := range fresh {
					fresh[i] = int64(100_000 + w*10_000 + r*batch + i)
				}

				tx := m.Begin()
				n0 := countRows(t, tx)
				ops := make([]table.Op, 0, batch+2)
				for _, k := range fresh {
					ops = append(ops, table.Op{Kind: table.OpInsert,
						Row: types.Row{types.Int(k), types.Int(int64(w)), types.Str("ins")}})
				}
				// Two modifies of this worker's own stable keys ride along.
				for i := 0; i < 2; i++ {
					k := (stableBase + int64((r+i)%(stableRows/workers))) * 10
					ops = append(ops, table.Op{Kind: table.OpUpdate,
						Key: types.Row{types.Int(k)}, Col: 1, Val: types.Int(int64(r))})
				}
				if _, err := tx.ApplyBatch(ops); err != nil {
					t.Errorf("worker %d round %d apply: %v", w, r, err)
					return
				}
				if n1 := countRows(t, tx); n1 != n0+batch {
					t.Errorf("worker %d round %d: count %d -> %d, want +%d", w, r, n0, n1, batch)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("worker %d round %d commit: %v", w, r, err)
					return
				}

				// Second transaction deletes the keys again (net zero).
				del := m.Begin()
				n0 = countRows(t, del)
				dops := make([]table.Op, 0, batch)
				for _, k := range fresh {
					dops = append(dops, table.Op{Kind: table.OpDelete, Key: types.Row{types.Int(k)}})
				}
				if _, err := del.ApplyBatch(dops); err != nil {
					t.Errorf("worker %d round %d delete: %v", w, r, err)
					return
				}
				if n1 := countRows(t, del); n1 != n0-batch {
					t.Errorf("worker %d round %d: delete count %d -> %d, want -%d", w, r, n0, n1, batch)
					return
				}
				if err := del.Commit(); err != nil {
					t.Errorf("worker %d round %d delete commit: %v", w, r, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	bg.Wait()
	if err := m.WaitMaintenance(); err != nil {
		t.Fatal(err)
	}

	// Steady state: all inserts were deleted again, nothing lost, nothing
	// duplicated, tree invariants intact.
	check := m.Begin()
	defer check.Abort()
	keys := txnKeys(t, check)
	if len(keys) != stableRows {
		t.Fatalf("final row count = %d, want %d", len(keys), stableRows)
	}
	seen := map[int64]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("duplicate key %d", k)
		}
		seen[k] = true
	}
	if err := m.ReadPDT().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := m.WritePDT().Validate(); err != nil {
		t.Fatal(err)
	}

	// One final checkpoint folds everything down; the image must match.
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := m.Table().Store().NRows(); got != stableRows {
		t.Fatalf("checkpointed image has %d rows, want %d", got, stableRows)
	}
}
