package txn

// Commit-path micro-benchmarks and their regression guards. The guards turn
// the tentpole properties into failing tests: Begin must stay O(1) in the
// Write-PDT size (copy-on-write snapshot, not a deep copy), and the batched
// TZ serialization must not regress to per-layer intermediate builds.

import (
	"fmt"
	"testing"

	"pdtstore/internal/table"
	"pdtstore/internal/types"
)

// growWritePDT commits n single-insert transactions so the master Write-PDT
// holds n entries. Keys descend from a value far above the stable key range,
// so every position probe stops at the first previously-inserted tuple.
func growWritePDT(tb testing.TB, m *Manager, n int) {
	tb.Helper()
	for i := 0; i < n; i++ {
		tx := m.Begin()
		key := int64(1<<40) - int64(i)
		if err := tx.Insert(types.Row{types.Int(key), types.Int(0), types.Str("x")}); err != nil {
			tb.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			tb.Fatal(err)
		}
	}
}

// beginFresh invalidates the shared snapshot cache before Begin, so each call
// pays the full snapshot cost a post-commit Begin pays.
func beginFresh(m *Manager) *Txn {
	m.mu.Lock()
	m.snapCache = nil
	m.mu.Unlock()
	return m.Begin()
}

func mustManager(tb testing.TB, nStable int, opts Options) *Manager {
	tb.Helper()
	rows := make([]types.Row, nStable)
	for i := range rows {
		rows[i] = types.Row{types.Int(int64((i + 1) * 10)), types.Int(int64(i)), types.Str(fmt.Sprintf("s%d", i))}
	}
	tbl, err := table.Load(testSchema(), rows, table.Options{Mode: table.ModePDT, BlockRows: 32})
	if err != nil {
		tb.Fatal(err)
	}
	m, err := NewManager(tbl, opts)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// BenchmarkBeginSnapshot measures starting (and immediately aborting) a
// transaction against Write-PDTs of growing size. With the copy-on-write
// snapshot the cost is flat; the old deep copy scaled linearly.
func BenchmarkBeginSnapshot(b *testing.B) {
	for _, size := range []int{0, 1 << 10, 1 << 14} {
		b.Run(fmt.Sprintf("writepdt=%d", size), func(b *testing.B) {
			m := mustManager(b, 64, Options{})
			growWritePDT(b, m, size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := beginFresh(m)
				if err := tx.Abort(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestBeginAllocsConstant is the alloc guard for the snapshot path: the
// number of allocations Begin performs must not grow with the Write-PDT.
func TestBeginAllocsConstant(t *testing.T) {
	measure := func(size int) float64 {
		m := mustManager(t, 64, Options{})
		growWritePDT(t, m, size)
		return testing.AllocsPerRun(200, func() {
			tx := beginFresh(m)
			if err := tx.Abort(); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := measure(1 << 8)
	large := measure(1 << 13)
	if large > small+4 {
		t.Errorf("Begin allocations grew with Write-PDT size: %0.1f at 256 entries, %0.1f at 8192", small, large)
	}
}
