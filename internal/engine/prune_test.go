package engine_test

// Black-box tests for PruneBlocks through its real producers: tables whose
// stores carry zone maps, with and without unfolded PDT deltas. The
// invariants under test are the ones correctness hangs on — a block any
// pinned layer touches is never skipped, entries at the scan-end boundary
// keep the final block (appends ride it), and truncated string zones never
// exclude a value the true block max could still reach.

import (
	"strings"
	"testing"

	"pdtstore/internal/engine"
	"pdtstore/internal/table"
	"pdtstore/internal/types"
)

func prune(t *testing.T, tbl *table.Table, preds ...engine.Pred) *engine.PruneResult {
	t.Helper()
	ps, err := tbl.PartitionScan(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Prune == nil {
		t.Fatal("PartitionScan offered no Prune hook")
	}
	return ps.Prune(preds)
}

// TestPruneBlocksCleanImage: with no deltas, zone maps alone cut a clustered
// range predicate down to exactly the overlapping blocks.
func TestPruneBlocksCleanImage(t *testing.T) {
	tbl, err := table.Load(testSchema, testRows(100), table.Options{Mode: table.ModePDT, BlockRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Keys are 2*SID: [64, 94] covers SIDs 32..47 — block 2 alone.
	res := prune(t, tbl, engine.Pred{Col: 0, Op: engine.PredInt64Range, ILo: 64, IHi: 94})
	if res == nil {
		t.Fatal("pruning declined on a clean image")
	}
	if res.Total != 7 || res.Kept != 1 || res.ZoneSkips != 6 {
		t.Fatalf("prune result = %+v, want 1 of 7 blocks kept", res)
	}
	if len(res.Ranges) != 1 || res.Ranges[0] != (engine.SIDRange{Lo: 32, Hi: 48}) {
		t.Fatalf("ranges = %v, want [{32 48}]", res.Ranges)
	}
	// No typed predicate → no pruning to do.
	if res := prune(t, tbl); res != nil {
		t.Fatalf("pruning with no predicates = %+v, want nil", res)
	}
}

// TestPruneBlocksDirtyGate: an in-place update makes its block unskippable,
// even when the stable zone says the predicate cannot match there — that is
// precisely where the new value lives.
func TestPruneBlocksDirtyGate(t *testing.T) {
	tbl := loadUpdated(t, table.ModePDT) // updates key 10 (SID 5, block 0): a=42
	// Stable column a holds 0..6 everywhere, so every zone excludes a=42;
	// only the delta-dirtied blocks may be kept.
	res := prune(t, tbl, engine.Pred{Col: 1, Op: engine.PredInt64Range, ILo: 42, IHi: 42, Eq: true})
	if res == nil {
		t.Fatal("pruning declined")
	}
	if res.Kept == 0 || res.Kept == res.Total {
		t.Fatalf("prune result = %+v, want partial keep", res)
	}
	keptBlock0 := false
	for _, r := range res.Ranges {
		if r.Lo == 0 && r.Hi >= 16 {
			keptBlock0 = true
		}
	}
	if !keptBlock0 {
		t.Fatalf("block 0 carries the a=42 update but was pruned: %v", res.Ranges)
	}
	// And the scan must surface the updated row despite the hostile zones.
	got := fingerprint(t, engine.Scan(tbl, 0, 1).FilterInt64Eq(1, 42), 2)
	want := fingerprint(t, engine.Scan(tbl, 0, 1).FilterInt64Eq(1, 42).NoPrune(), 2)
	if got != want || !strings.Contains(got, "10|") {
		t.Fatalf("pruned scan lost the updated row:\npruned:\n%s\nfull:\n%s", got, want)
	}
}

// TestPruneBlocksAppendBoundary: entries at SID == scan end (appends beyond
// the stable image) ride the final block's morsel, so that block must stay
// kept even when every zone excludes the predicate.
func TestPruneBlocksAppendBoundary(t *testing.T) {
	tbl, err := table.Load(testSchema, testRows(100), table.Options{Mode: table.ModePDT, BlockRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Append beyond the stable key domain (stable max key is 198).
	if err := tbl.Insert(types.Row{types.Int(301), types.Int(99), types.Float(0), types.Str("app")}); err != nil {
		t.Fatal(err)
	}
	res := prune(t, tbl, engine.Pred{Col: 0, Op: engine.PredInt64Range, ILo: 300, IHi: 310})
	if res == nil {
		t.Fatal("pruning declined")
	}
	if res.Kept != 1 {
		t.Fatalf("prune result = %+v, want exactly the final block kept for the append", res)
	}
	last := res.Ranges[len(res.Ranges)-1]
	if last.Hi != 100 {
		t.Fatalf("kept ranges %v do not reach the scan end", res.Ranges)
	}
	got := fingerprint(t, engine.Scan(tbl, 0, 3).FilterInt64Range(0, 300, 310), 2)
	if got != "301|app|\n" {
		t.Fatalf("pruned scan over the appended row = %q", got)
	}
}

// TestPruneBlocksTruncatedStringZone: a stored string max longer than the
// zone budget is truncated; values extending the truncated max may still be
// in the block and must not be zone-skipped.
func TestPruneBlocksTruncatedStringZone(t *testing.T) {
	schema := types.MustSchema([]types.Column{
		{Name: "k", Kind: types.Int64},
		{Name: "s", Kind: types.String},
	}, []int{0})
	long := strings.Repeat("m", 80) // truncated to 64 bytes in the zone
	rows := make([]types.Row, 32)
	for i := range rows {
		s := "b"
		if i >= 16 {
			s = long // block 1's max (and min) truncate
		}
		rows[i] = types.Row{types.Int(int64(i)), types.Str(s)}
	}
	tbl, err := table.Load(schema, rows, table.Options{Mode: table.ModePDT, BlockRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	// The probe extends the truncated max: block 1 must stay kept, block 0
	// (untruncated zone ["b","b"]) is provably clear.
	res := prune(t, tbl, engine.Pred{Col: 1, Op: engine.PredStrEq, Strs: []string{long}, Eq: true})
	if res == nil || res.Kept != 1 || len(res.Ranges) != 1 || res.Ranges[0].Lo != 16 {
		t.Fatalf("prune result = %+v (ranges %v), want only block 1 kept", res, res.Ranges)
	}
	got := fingerprint(t, engine.Scan(tbl, 0, 1).FilterStrEq(1, long), 2)
	want := fingerprint(t, engine.Scan(tbl, 0, 1).FilterStrEq(1, long).NoPrune(), 2)
	if got != want || strings.Count(got, "\n") != 16 {
		t.Fatalf("truncated-zone scan wrong:\npruned:\n%s\nfull:\n%s", got, want)
	}
	// A probe sorting past every truncated extension is safely excluded.
	res = prune(t, tbl, engine.Pred{Col: 1, Op: engine.PredStrEq, Strs: []string{"zzz"}, Eq: true})
	if res == nil || res.Kept != 0 {
		t.Fatalf("prune result for out-of-range probe = %+v, want nothing kept", res)
	}
}

// TestPruneRespectsKillSwitches: both the global toggle and the per-plan
// NoPrune opt-out force the full access path.
func TestPruneRespectsKillSwitches(t *testing.T) {
	tbl, err := table.Load(testSchema, testRows(100), table.Options{Mode: table.ModePDT, BlockRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	dev := tbl.Store().Device()
	base := fingerprint(t, engine.Scan(tbl, 0, 1).FilterInt64Range(0, 64, 94).NoPrune(), 2)
	z0, i0 := dev.SkipStats()
	if z1, i1 := dev.SkipStats(); z1 != z0 || i1 != i0 {
		t.Fatal("NoPrune scan touched the skip counters")
	}
	engine.SetPruning(false)
	got := fingerprint(t, engine.Scan(tbl, 0, 1).FilterInt64Range(0, 64, 94), 2)
	engine.SetPruning(true)
	if got != base {
		t.Fatal("scan output changed under SetPruning(false)")
	}
	if z1, i1 := dev.SkipStats(); z1 != z0 || i1 != i0 {
		t.Fatal("SetPruning(false) scan still skipped blocks")
	}
	if !engine.PruningEnabled() {
		t.Fatal("PruningEnabled() false after re-enable")
	}
	got = fingerprint(t, engine.Scan(tbl, 0, 1).FilterInt64Range(0, 64, 94), 2)
	if got != base {
		t.Fatal("pruned scan output differs")
	}
	if z1, _ := dev.SkipStats(); z1 <= z0 {
		t.Fatal("re-enabled pruning skipped nothing")
	}
}
