package engine

// White-box tests for the pre-scan pruning primitives: the zone exclusion
// rules (including the truncated-string edge) and the range-aware morselizer
// (hard cut boundaries, zero-width slot preservation, start dedupe, and the
// last-morsel flag).

import (
	"testing"

	"pdtstore/internal/storage"
)

func TestZoneExcludes(t *testing.T) {
	intZone := storage.Zone{Kind: storage.ZoneInt, MinI: 10, MaxI: 20}
	floatZone := storage.Zone{Kind: storage.ZoneFloat, MinF: 1.5, MaxF: 2.5}
	strZone := storage.Zone{Kind: storage.ZoneString, MinS: "dog", MaxS: "fox"}
	truncZone := storage.Zone{Kind: storage.ZoneString, MinS: "aa", MaxS: "zz", MaxSTrunc: true}
	cases := []struct {
		name string
		z    storage.Zone
		p    Pred
		want bool
	}{
		{"int below", intZone, Pred{Op: PredInt64Range, ILo: 0, IHi: 9}, true},
		{"int above", intZone, Pred{Op: PredInt64Range, ILo: 21, IHi: 30}, true},
		{"int overlap lo", intZone, Pred{Op: PredInt64Range, ILo: 5, IHi: 10}, false},
		{"int overlap hi", intZone, Pred{Op: PredInt64Range, ILo: 20, IHi: 99}, false},
		{"int inside", intZone, Pred{Op: PredInt64Range, ILo: 12, IHi: 13}, false},
		{"none kind never skips", storage.Zone{}, Pred{Op: PredInt64Range, ILo: 0, IHi: 0}, false},
		{"float below", floatZone, Pred{Op: PredFloat64Range, FLo: 0, FHi: 1.4}, true},
		{"float above", floatZone, Pred{Op: PredFloat64Range, FLo: 2.6, FHi: 3}, true},
		{"float overlap", floatZone, Pred{Op: PredFloat64Range, FLo: 2.5, FHi: 3}, false},
		{"float lt strict at min", floatZone, Pred{Op: PredFloat64Lt, FHi: 1.5}, true},
		{"float lt above min", floatZone, Pred{Op: PredFloat64Lt, FHi: 1.6}, false},
		{"str eq below min", strZone, Pred{Op: PredStrEq, Strs: []string{"cat"}}, true},
		{"str eq above max", strZone, Pred{Op: PredStrEq, Strs: []string{"goat"}}, true},
		{"str eq inside", strZone, Pred{Op: PredStrEq, Strs: []string{"elk"}}, false},
		{"str in all outside", strZone, Pred{Op: PredStrIn, Strs: []string{"ant", "yak"}}, true},
		{"str in one inside", strZone, Pred{Op: PredStrIn, Strs: []string{"ant", "emu"}}, false},
		{"prefix below", strZone, Pred{Op: PredStrPrefix, Strs: []string{"ca"}}, true},
		{"prefix above", strZone, Pred{Op: PredStrPrefix, Strs: []string{"go"}}, true},
		{"prefix of min", strZone, Pred{Op: PredStrPrefix, Strs: []string{"do"}}, false},
		{"prefix of max", strZone, Pred{Op: PredStrPrefix, Strs: []string{"fox"}}, false},
		// A truncated max is only a prefix of the true max: anything extending
		// it may still be in the block, so the upper bound cannot exclude.
		{"trunc max extension kept", truncZone, Pred{Op: PredStrEq, Strs: []string{"zzz"}}, false},
		{"trunc min still excludes", truncZone, Pred{Op: PredStrEq, Strs: []string{"a"}}, true},
		{"contains never skips", strZone, Pred{Op: PredNone}, false},
	}
	for _, c := range cases {
		if got := zoneExcludes(c.z, c.p); got != c.want {
			t.Errorf("%s: zoneExcludes = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestMorselizeRanges(t *testing.T) {
	ps := &PartScan{Lo: 0, Hi: 128, Unit: 16}
	flat := func(ms []morsel) [][3]uint64 {
		out := make([][3]uint64, len(ms))
		for i, m := range ms {
			last := uint64(0)
			if m.last {
				last = 1
			}
			out[i] = [3]uint64{m.lo, m.hi, last}
		}
		return out
	}

	// Kept ranges are covered exactly, in order, by block-aligned morsels;
	// only the morsel reaching the true scan end carries last=true.
	ranges := []SIDRange{{0, 32}, {96, 128}}
	ms := morselizeRanges(ranges, ps, 1)
	got := flat(ms)
	var covered []SIDRange
	for i, m := range got {
		if m[0]%16 != 0 || m[1]%16 != 0 {
			t.Fatalf("morsel %v not block-aligned", m)
		}
		if n := len(covered); n > 0 && covered[n-1].Hi == m[0] {
			covered[n-1].Hi = m[1]
		} else {
			covered = append(covered, SIDRange{m[0], m[1]})
		}
		if wantLast := i == len(got)-1; (m[2] == 1) != wantLast || (wantLast && m[1] != ps.Hi) {
			t.Fatalf("morsel %d = %v: bad last flag (morsels %v)", i, m, got)
		}
	}
	if len(covered) != len(ranges) || covered[0] != ranges[0] || covered[1] != ranges[1] {
		t.Fatalf("morsels cover %v, want %v (morsels %v)", covered, ranges, got)
	}

	// A pruned-away tail must not flag its final morsel as last: no morsel
	// reaches ps.Hi, so no morsel may claim the append boundary.
	ms = morselizeRanges([]SIDRange{{0, 32}}, ps, 1)
	for _, m := range ms {
		if m.last {
			t.Fatalf("pruned-tail morsel %v claims last", m)
		}
	}

	// Cuts are hard boundaries even inside one kept range.
	ps2 := &PartScan{Lo: 0, Hi: 64, Unit: 16, Cuts: []uint64{40}}
	ms = morselizeRanges([]SIDRange{{0, 64}}, ps2, 1)
	for _, m := range ms {
		if m.lo < 40 && m.hi > 40 {
			t.Fatalf("morsel %v straddles the cut at 40", m)
		}
	}

	// Zero-width ranges survive as zero-width morsels (empty shard slots must
	// still be opened) — unless another morsel already starts there.
	ms = morselizeRanges([]SIDRange{{0, 16}, {16, 16}, {16, 32}, {40, 40}}, &PartScan{Lo: 0, Hi: 40, Unit: 16}, 1)
	starts := map[uint64]int{}
	for _, m := range ms {
		starts[m.lo]++
	}
	for at, n := range starts {
		if n > 1 {
			t.Fatalf("%d morsels start at %d: %v", n, at, ms)
		}
	}
	lastM := ms[len(ms)-1]
	if lastM.lo != 40 || lastM.hi != 40 || !lastM.last {
		t.Fatalf("trailing zero-width slot = %+v, want {40 40 last}", lastM)
	}

	// Nothing kept at all: one zero-width fallback at the scan start.
	ms = morselizeRanges(nil, ps, 2)
	if len(ms) != 1 || ms[0].lo != ps.Lo || ms[0].hi != ps.Lo {
		t.Fatalf("empty ranges → %v, want one zero-width morsel at Lo", ms)
	}
}
