// Package engine owns the end-to-end read pipeline of the store: source
// (stable colstore scan, MergeScan over a stack of PDTs, or a value-based VDT
// merge) → filter → project → sink. Every consumer — the table layer, the
// transaction layer's stacked snapshots, the TPC-H queries and the benchmark
// harness — builds its scans here, so there is exactly one place that knows
// how to assemble the paper's merge pipelines (Algorithm 2 and Equation 9)
// and one place execution strategy lives: Plan.Parallel (automatic above
// ParallelThreshold) splits any PartRelation into block-aligned morsels and
// runs one pipeline per worker over a shared morsel queue (parallel.go),
// with ordered delivery for Run and per-partition partials, merged in
// partition order, for RunPartitioned.
//
// The pipeline is vectorized in the MonetDB/X100 style the paper assumes:
// batches of typed column vectors flow block-at-a-time, predicates run as
// typed comparison kernels that narrow a reusable selection vector (package
// vector), and column projection is pushed down so the stable image only
// decodes the blocks a query touches.
package engine

import (
	"errors"
	"fmt"
	"math"

	"pdtstore/internal/pdt"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

// DefaultBatchSize is the number of rows per pipeline batch when the plan
// does not override it.
const DefaultBatchSize = 1024

// Relation is anything that can produce a positional, RID-emitting batch
// source for a column projection and sort-key range: table.Table, txn.Txn and
// txn.Query all satisfy it, which is how one plan API serves all three delta
// modes and arbitrary PDT layer stacks.
type Relation interface {
	Schema() *types.Schema
	Scan(cols []int, loKey, hiKey types.Row) (pdt.BatchSource, error)
}

// Stop is returned by a sink callback to end a Run early without error.
var Stop = errors.New("engine: stop iteration")

// planFilter is one compiled predicate: a typed kernel applied to the vector
// holding schema column col, plus the declarative Pred the pruning pass uses
// to skip blocks the kernel could never select from (pred.Op == PredNone for
// filters with no prunable description).
type planFilter struct {
	col   int
	pred  Pred
	apply func(v *vector.Vector, sel *vector.Selection)
}

// Plan is a buildable scan pipeline over one relation. Zero or more typed
// filters narrow a selection vector per batch; the sink sees (batch, sel)
// pairs and never a per-row closure. Filter columns that the caller does not
// project are still decoded (appended after the projected columns) but are
// dropped again at the sink boundary by Collect.
type Plan struct {
	rel       Relation
	outCols   []int
	loKey     types.Row
	hiKey     types.Row
	filters   []planFilter
	batchSize int
	needRids  bool
	workers   int  // 0 = auto, 1 = serial, n > 1 = forced (see Parallel)
	noPrune   bool // see NoPrune
}

// Scan starts a plan producing the given schema columns of rel.
func Scan(rel Relation, cols ...int) *Plan {
	return &Plan{rel: rel, outCols: cols, batchSize: DefaultBatchSize}
}

// Range restricts the scan to sort keys in [loKey, hiKey] through the sparse
// index. Bounds may be nil (open) or prefixes of the sort key; the underlying
// range is conservative (partial blocks), so pair Range with an exact filter
// when the query needs a sharp edge.
func (p *Plan) Range(loKey, hiKey types.Row) *Plan {
	p.loKey, p.hiKey = loKey, hiKey
	return p
}

// BatchSize overrides the rows-per-batch granularity of the pipeline.
func (p *Plan) BatchSize(n int) *Plan {
	if n > 0 {
		p.batchSize = n
	}
	return p
}

// WithRids asks the pipeline to keep RIDs flowing to the sink (Collect then
// fills out.Rids; Run batches carry them either way when the source emits
// them).
func (p *Plan) WithRids() *Plan {
	p.needRids = true
	return p
}

// NoPrune disables pre-scan block pruning for this plan only: every block of
// the range is scanned and filtered by the kernels, whatever the zone maps
// and indexes say. The differential suites run each query both ways and
// assert identical output; it is also the honest baseline side of the
// benchmark's lookup figure.
func (p *Plan) NoPrune() *Plan {
	p.noPrune = true
	return p
}

func (p *Plan) addFilter(col int, pred Pred, apply func(*vector.Vector, *vector.Selection)) *Plan {
	pred.Col = col
	p.filters = append(p.filters, planFilter{col: col, pred: pred, apply: apply})
	return p
}

// FilterInt64Range keeps rows with lo <= col <= hi (Int64/Date/Bool columns).
func (p *Plan) FilterInt64Range(col int, lo, hi int64) *Plan {
	return p.addFilter(col, Pred{Op: PredInt64Range, ILo: lo, IHi: hi},
		func(v *vector.Vector, s *vector.Selection) { s.FilterInt64Range(v, lo, hi) })
}

// FilterInt64Le keeps rows with col <= hi.
func (p *Plan) FilterInt64Le(col int, hi int64) *Plan {
	return p.addFilter(col, Pred{Op: PredInt64Range, ILo: math.MinInt64, IHi: hi},
		func(v *vector.Vector, s *vector.Selection) { s.FilterInt64Le(v, hi) })
}

// FilterInt64Ge keeps rows with col >= lo.
func (p *Plan) FilterInt64Ge(col int, lo int64) *Plan {
	return p.addFilter(col, Pred{Op: PredInt64Range, ILo: lo, IHi: math.MaxInt64},
		func(v *vector.Vector, s *vector.Selection) { s.FilterInt64Ge(v, lo) })
}

// FilterInt64Eq keeps rows with col == x.
func (p *Plan) FilterInt64Eq(col int, x int64) *Plan {
	return p.addFilter(col, Pred{Op: PredInt64Range, ILo: x, IHi: x, Eq: true},
		func(v *vector.Vector, s *vector.Selection) { s.FilterInt64Eq(v, x) })
}

// FilterFloat64Range keeps rows with lo <= col <= hi.
func (p *Plan) FilterFloat64Range(col int, lo, hi float64) *Plan {
	return p.addFilter(col, Pred{Op: PredFloat64Range, FLo: lo, FHi: hi},
		func(v *vector.Vector, s *vector.Selection) { s.FilterFloat64Range(v, lo, hi) })
}

// FilterFloat64Lt keeps rows with col < hi.
func (p *Plan) FilterFloat64Lt(col int, hi float64) *Plan {
	return p.addFilter(col, Pred{Op: PredFloat64Lt, FLo: math.Inf(-1), FHi: hi},
		func(v *vector.Vector, s *vector.Selection) { s.FilterFloat64Lt(v, hi) })
}

// FilterStrEq keeps rows with col == x.
func (p *Plan) FilterStrEq(col int, x string) *Plan {
	return p.addFilter(col, Pred{Op: PredStrEq, Strs: []string{x}, Eq: true},
		func(v *vector.Vector, s *vector.Selection) { s.FilterStrEq(v, x) })
}

// FilterStrIn keeps rows whose col equals one of the given strings.
func (p *Plan) FilterStrIn(col int, set ...string) *Plan {
	return p.addFilter(col, Pred{Op: PredStrIn, Strs: append([]string(nil), set...)},
		func(v *vector.Vector, s *vector.Selection) { s.FilterStrIn(v, set...) })
}

// FilterStrPrefix keeps rows whose col starts with prefix.
func (p *Plan) FilterStrPrefix(col int, prefix string) *Plan {
	return p.addFilter(col, Pred{Op: PredStrPrefix, Strs: []string{prefix}},
		func(v *vector.Vector, s *vector.Selection) { s.FilterStrPrefix(v, prefix) })
}

// FilterStrContains keeps rows whose col contains sub. Substring containment
// has no zone-map or index description, so this filter never prunes blocks.
func (p *Plan) FilterStrContains(col int, sub string) *Plan {
	return p.addFilter(col, Pred{},
		func(v *vector.Vector, s *vector.Selection) { s.FilterStrContains(v, sub) })
}

// analyzed is the relation-independent part of a compiled plan: the scan
// column set (projected columns first, then filter-only columns), the batch
// kinds, and each filter bound to its batch slot. Parallel executions share
// one analysis across every worker pipeline.
type analyzed struct {
	scanCols []int
	kinds    []types.Kind
	slots    []int // filters[i] applies to batch vector slots[i]
}

func (p *Plan) analyze() (*analyzed, error) {
	if p.rel == nil {
		return nil, fmt.Errorf("engine: plan has no relation")
	}
	schema := p.rel.Schema()
	scanCols := append([]int(nil), p.outCols...)
	slots := make([]int, len(p.filters))
	for i, f := range p.filters {
		slot := -1
		for j, c := range scanCols {
			if c == f.col {
				slot = j
				break
			}
		}
		if slot < 0 {
			// Filter on an unprojected column: push it into the scan anyway
			// (decoded for filtering, dropped at the sink boundary).
			slot = len(scanCols)
			scanCols = append(scanCols, f.col)
		}
		slots[i] = slot
	}
	for _, c := range scanCols {
		if c < 0 || c >= schema.NumCols() {
			return nil, fmt.Errorf("engine: column %d out of range (schema has %d columns)", c, schema.NumCols())
		}
	}
	kinds := make([]types.Kind, len(scanCols))
	for i, c := range scanCols {
		kinds[i] = schema.Cols[c].Kind
	}
	return &analyzed{scanCols: scanCols, kinds: kinds, slots: slots}, nil
}

// compiled is the executable serial form of a plan: its analysis plus the
// opened source.
type compiled struct {
	src pdt.BatchSource
	*analyzed
}

func (p *Plan) compile() (*compiled, error) {
	a, err := p.analyze()
	if err != nil {
		return nil, err
	}
	src, err := p.rel.Scan(a.scanCols, p.loKey, p.hiKey)
	if err != nil {
		return nil, err
	}
	return &compiled{src: src, analyzed: a}, nil
}

// Run streams the pipeline into fn. Each call hands fn the current batch (the
// plan's projected columns first, in order, then any filter-only columns) and
// the selection of qualifying row indexes. The batch and selection are reused
// across calls; fn must not retain them. Returning Stop from fn ends the run
// without error. Batches where every row is filtered out never reach fn.
//
// Large scans over partitionable relations run in parallel (see Parallel);
// batches are still delivered in exactly the serial order, so sinks that fold
// rows sequentially see the same stream either way.
func (p *Plan) Run(fn func(b *vector.Batch, sel []uint32) error) error {
	a, err := p.analyze()
	if err != nil {
		return err
	}
	ap, err := p.resolveAccess()
	if err != nil {
		return err
	}
	if ap == nil {
		return p.runSerial(a, fn)
	}
	if ap.workers <= 1 {
		return p.runMorsels(ap, a, func(_ int, b *vector.Batch, sel []uint32) error { return fn(b, sel) })
	}
	return p.runParallel(ap, a, fn)
}

// runSerial is the single-goroutine pipeline: one source, one batch, one
// selection vector.
func (p *Plan) runSerial(a *analyzed, fn func(b *vector.Batch, sel []uint32) error) error {
	src, err := p.rel.Scan(a.scanCols, p.loKey, p.hiKey)
	if err != nil {
		return err
	}
	b := vector.NewBatch(a.kinds, p.batchSize)
	sel := vector.GetSelection()
	defer vector.PutSelection(sel)
	for {
		b.Reset()
		n, err := src.Next(b, p.batchSize)
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
		sel.All(n)
		for i, f := range p.filters {
			f.apply(b.Vecs[a.slots[i]], sel)
			if sel.Len() == 0 {
				break
			}
		}
		if sel.Len() == 0 {
			continue
		}
		if err := fn(b, sel.Indexes()); err != nil {
			if errors.Is(err, Stop) {
				return nil
			}
			return err
		}
	}
}

// Collect drains the pipeline into one dense batch holding exactly the
// projected columns (filter-only columns are projected away), pre-sized from
// the source's row-count hint. RIDs are carried through when WithRids was
// set. Like Run, large scans over partitionable relations execute in
// parallel, and the output batch is bit-identical to the serial one.
func (p *Plan) Collect() (*vector.Batch, error) {
	ap, err := p.resolveAccess()
	if err != nil {
		return nil, err
	}
	if ap != nil {
		a, err := p.analyze()
		if err != nil {
			return nil, err
		}
		if ap.workers <= 1 {
			return p.collectMorsels(ap, a)
		}
		return p.collectParallel(ap, a)
	}
	c, err := p.compile()
	if err != nil {
		return nil, err
	}
	hint := SizeHint(c.src)
	if hint < 0 {
		hint = p.batchSize
	}
	outKinds := c.kinds[:len(p.outCols)]
	out := vector.NewBatch(outKinds, hint)
	if len(p.filters) == 0 && len(c.scanCols) == len(p.outCols) {
		// Fast path: no filtering, no projection compaction — drain the
		// source straight into the output batch.
		for {
			n, err := c.src.Next(out, p.batchSize)
			if err != nil {
				return nil, err
			}
			if n == 0 {
				if !p.needRids {
					out.Rids = out.Rids[:0]
				}
				return out, nil
			}
		}
	}
	b := vector.NewBatch(c.kinds, p.batchSize)
	sel := vector.GetSelection()
	defer vector.PutSelection(sel)
	for {
		b.Reset()
		n, err := c.src.Next(b, p.batchSize)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
		sel.All(n)
		for i, f := range p.filters {
			f.apply(b.Vecs[c.slots[i]], sel)
			if sel.Len() == 0 {
				break
			}
		}
		if sel.Len() == 0 {
			continue
		}
		idx := sel.Indexes()
		for i := range p.outCols {
			out.Vecs[i].AppendSelected(b.Vecs[i], idx)
		}
		if p.needRids && len(b.Rids) > 0 {
			for _, ri := range idx {
				out.Rids = append(out.Rids, b.Rids[ri])
			}
		}
	}
}
