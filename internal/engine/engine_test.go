package engine_test

// The engine tests exercise the pipeline through its real consumers: tables
// in all three delta modes (hence the external test package — table depends
// on engine), raw PDT layer stacks, and the projection-pushdown I/O contract.

import (
	"fmt"
	"testing"

	"pdtstore/internal/colstore"
	"pdtstore/internal/engine"
	"pdtstore/internal/pdt"
	"pdtstore/internal/table"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

var testSchema = types.MustSchema([]types.Column{
	{Name: "k", Kind: types.Int64},
	{Name: "a", Kind: types.Int64},
	{Name: "b", Kind: types.Float64},
	{Name: "s", Kind: types.String},
}, []int{0})

func testRows(n int) []types.Row {
	rows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = types.Row{
			types.Int(int64(i) * 2), // even keys; odd keys are insert space
			types.Int(int64(i) % 7),
			types.Float(float64(i) / 4),
			types.Str(fmt.Sprintf("s%03d", i%5)),
		}
	}
	return rows
}

// loadUpdated builds a table in the given mode and applies the same logical
// updates regardless of mode: inserts at odd keys, a delete, and a modify.
func loadUpdated(t *testing.T, mode table.DeltaMode) *table.Table {
	t.Helper()
	tbl, err := table.Load(testSchema, testRows(100), table.Options{Mode: mode, BlockRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	if mode == table.ModeNone {
		return tbl
	}
	for _, k := range []int64{7, 33, 121} {
		if err := tbl.Insert(types.Row{types.Int(k), types.Int(k % 7), types.Float(0.5), types.Str("ins")}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tbl.DeleteByKey(types.Row{types.Int(40)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.UpdateByKey(types.Row{types.Int(10)}, 1, types.Int(42)); err != nil {
		t.Fatal(err)
	}
	return tbl
}

// fingerprint renders the plan's output deterministically.
func fingerprint(t *testing.T, p *engine.Plan, cols int) string {
	t.Helper()
	out := ""
	err := p.Run(func(b *vector.Batch, sel []uint32) error {
		for _, i := range sel {
			for c := 0; c < cols; c++ {
				out += b.Vecs[c].Get(int(i)).String() + "|"
			}
			out += "\n"
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestPlanAgreesAcrossDeltaModes(t *testing.T) {
	// The same plan — projected columns, a range, and filters including one
	// on an unprojected column — must give identical results whether the
	// updates live in a PDT, a VDT, or a checkpointed stable image.
	plans := func(tbl *table.Table) *engine.Plan {
		return engine.Scan(tbl, 1, 2). // project a, b — not the sort key
						Range(types.Row{types.Int(8)}, types.Row{types.Int(90)}).
						FilterInt64Range(0, 8, 90). // exact bound on unprojected sort key
						FilterInt64Le(1, 5)
	}
	pdtTbl := loadUpdated(t, table.ModePDT)
	vdtTbl := loadUpdated(t, table.ModeVDT)
	want := fingerprint(t, plans(pdtTbl), 2)
	if want == "" {
		t.Fatal("plan selected nothing; test is vacuous")
	}
	if got := fingerprint(t, plans(vdtTbl), 2); got != want {
		t.Errorf("VDT disagrees with PDT:\nPDT:\n%s\nVDT:\n%s", want, got)
	}
	if err := pdtTbl.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(t, plans(pdtTbl), 2); got != want {
		t.Errorf("checkpointed image disagrees:\nbefore:\n%s\nafter:\n%s", want, got)
	}
}

func TestPlanEmptyAndAllFiltered(t *testing.T) {
	tbl := loadUpdated(t, table.ModePDT)
	// all rows filtered out: the sink must never run
	calls := 0
	err := engine.Scan(tbl, 0).FilterInt64Ge(0, 1<<40).
		Run(func(*vector.Batch, []uint32) error { calls++; return nil })
	if err != nil || calls != 0 {
		t.Fatalf("all-filtered: calls=%d err=%v", calls, err)
	}
	b, err := engine.Scan(tbl, 0, 1).FilterInt64Ge(0, 1<<40).Collect()
	if err != nil || b.Len() != 0 || len(b.Vecs) != 2 {
		t.Fatalf("all-filtered collect: %d rows, %d vecs (%v)", b.Len(), len(b.Vecs), err)
	}
	// probing beyond every key: the sparse-index range is conservative (it
	// may surface a trailing partial block), so the exact kernel pairs with
	// it — together they must select nothing
	b, err = engine.Scan(tbl, 0).
		Range(types.Row{types.Int(1 << 40)}, nil).
		FilterInt64Ge(0, 1<<40).
		Collect()
	if err != nil || b.Len() != 0 {
		t.Fatalf("beyond-range collect: %d rows (%v)", b.Len(), err)
	}
}

func TestPlanUnprojectedSortKeyVDT(t *testing.T) {
	// A VDT merge must read the sort key internally but never leak it: the
	// collected batch holds exactly the projected columns.
	tbl := loadUpdated(t, table.ModeVDT)
	b, err := engine.Scan(tbl, 2, 3).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Vecs) != 2 || b.Vecs[0].Kind != types.Float64 || b.Vecs[1].Kind != types.String {
		t.Fatalf("projection leaked: %d vecs", len(b.Vecs))
	}
	if b.Len() != int(tbl.NRows()) {
		t.Fatalf("rows = %d, want %d", b.Len(), tbl.NRows())
	}
}

func TestProjectionPushdownIO(t *testing.T) {
	// The defining pushdown property: a plan that touches fewer columns
	// fetches fewer encoded bytes from the device, and a filter on an
	// unprojected column costs exactly that one extra column.
	dev := colstore.NewDevice()
	tbl, err := table.Load(testSchema, testRows(2000),
		table.Options{Mode: table.ModeNone, BlockRows: 64, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	cold := func(p *engine.Plan) uint64 {
		dev.DropCaches()
		dev.ResetStats()
		if err := p.Run(func(*vector.Batch, []uint32) error { return nil }); err != nil {
			t.Fatal(err)
		}
		n, _ := dev.Stats()
		return n
	}
	one := cold(engine.Scan(tbl, 1))
	all := cold(engine.Scan(tbl, 0, 1, 2, 3))
	if one == 0 || all <= one {
		t.Fatalf("pushdown broken: 1-col=%d all-col=%d", one, all)
	}
	withFilter := cold(engine.Scan(tbl, 1).FilterFloat64Lt(2, 1e18))
	if withFilter <= one || withFilter >= all {
		t.Fatalf("filter column cost off: 1-col=%d +filter=%d all=%d", one, withFilter, all)
	}
}

func TestStackedPDTScan(t *testing.T) {
	// Three stacked layers over a 5-row stable image (keys 0,2,4,6,8), each
	// layer's SIDs addressing the view of the layer below — the transaction
	// scheme's Read/Write/Trans stack in miniature.
	schema := types.MustSchema([]types.Column{
		{Name: "k", Kind: types.Int64},
		{Name: "v", Kind: types.Int64},
	}, []int{0})
	var rows []types.Row
	for i := int64(0); i < 5; i++ {
		rows = append(rows, types.Row{types.Int(i * 2), types.Int(i)})
	}
	store, err := colstore.BulkLoad(schema, nil, 4, false, rows)
	if err != nil {
		t.Fatal(err)
	}
	read := pdt.New(schema, 0)
	write := pdt.New(schema, 0)
	trans := pdt.New(schema, 0)
	// read: insert key 1 before SID 1  -> view 0,1,2,4,6,8
	if err := read.Insert(1, types.Row{types.Int(1), types.Int(10)}); err != nil {
		t.Fatal(err)
	}
	// write: modify the row at read-RID 3 (key 4) -> v=99
	if err := write.Modify(3, 1, types.Int(99)); err != nil {
		t.Fatal(err)
	}
	// trans: delete the row at write-RID 0 (key 0)
	if err := trans.Delete(0, types.Row{types.Int(0)}); err != nil {
		t.Fatal(err)
	}
	cols := []int{0, 1}
	base := store.NewScanner(cols, 0, store.NRows())
	src := engine.StackPDTs(base, cols, 0, true, read, write, trans)
	out, err := pdt.ScanAll(src, []types.Kind{types.Int64, types.Int64})
	if err != nil {
		t.Fatal(err)
	}
	wantK := []int64{1, 2, 4, 6, 8}
	wantV := []int64{10, 1, 99, 3, 4}
	if out.Len() != len(wantK) {
		t.Fatalf("rows = %d, want %d", out.Len(), len(wantK))
	}
	for i := range wantK {
		if out.Vecs[0].I[i] != wantK[i] || out.Vecs[1].I[i] != wantV[i] {
			t.Fatalf("row %d = (%d,%d), want (%d,%d)",
				i, out.Vecs[0].I[i], out.Vecs[1].I[i], wantK[i], wantV[i])
		}
		if out.Rids[i] != uint64(i) {
			t.Fatalf("rid %d = %d", i, out.Rids[i])
		}
	}
	// zero layers: StackPDTs must hand back the base unchanged
	base2 := store.NewScanner(cols, 0, store.NRows())
	if got := engine.StackPDTs(base2, cols, 0, true); got != pdt.BatchSource(base2) {
		t.Fatal("StackPDTs with no layers must return the base")
	}
}

func TestCollectRidsAndStop(t *testing.T) {
	tbl := loadUpdated(t, table.ModePDT)
	b, err := engine.Scan(tbl, 0).WithRids().FilterInt64Range(0, 20, 30).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() == 0 || len(b.Rids) != b.Len() {
		t.Fatalf("rids not carried: %d rows, %d rids", b.Len(), len(b.Rids))
	}
	// without WithRids, Collect drops them
	b, err = engine.Scan(tbl, 0).Collect()
	if err != nil || len(b.Rids) != 0 {
		t.Fatalf("rids leaked: %d (%v)", len(b.Rids), err)
	}
	// Stop ends a Run early without error
	seen := 0
	err = engine.Scan(tbl, 0).BatchSize(8).Run(func(b *vector.Batch, sel []uint32) error {
		seen += len(sel)
		return engine.Stop
	})
	if err != nil || seen != 8 {
		t.Fatalf("stop: seen=%d err=%v", seen, err)
	}
}

func TestSizeHints(t *testing.T) {
	tbl := loadUpdated(t, table.ModePDT)
	src, err := tbl.Scan([]int{0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h := engine.SizeHint(src); h != int(tbl.NRows()) {
		t.Fatalf("merged hint = %d, want %d", h, tbl.NRows())
	}
	clean, err := table.Load(testSchema, testRows(50), table.Options{Mode: table.ModeNone, BlockRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	src, err = clean.Scan([]int{0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h := engine.SizeHint(src); h != 50 {
		t.Fatalf("plain hint = %d, want 50", h)
	}
}
