package engine_test

// Differential tests for the parallel scan engine: whatever the worker
// count, Run must deliver the exact serial batch stream (rows, RIDs, order)
// and Collect the exact serial output batch, across delta modes, filters,
// mid-block range starts, and forced or automatic parallelism.

import (
	"fmt"
	"testing"

	"pdtstore/internal/engine"
	"pdtstore/internal/table"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

// fpRun renders a plan's Run stream deterministically, including RIDs when
// the source emits them.
func fpRun(t *testing.T, p *engine.Plan, cols int) string {
	t.Helper()
	out := ""
	err := p.Run(func(b *vector.Batch, sel []uint32) error {
		for _, i := range sel {
			if len(b.Rids) > int(i) {
				out += fmt.Sprintf("@%d:", b.Rids[i])
			}
			for c := 0; c < cols; c++ {
				out += b.Vecs[c].Get(int(i)).String() + "|"
			}
			out += "\n"
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// fpBatch renders a collected batch, including RIDs when present.
func fpBatch(b *vector.Batch) string {
	out := ""
	for i := 0; i < b.Len(); i++ {
		if len(b.Rids) > i {
			out += fmt.Sprintf("@%d:", b.Rids[i])
		}
		for c := range b.Vecs {
			out += b.Vecs[c].Get(i).String() + "|"
		}
		out += "\n"
	}
	return out
}

// bigTable builds a multi-block table with scattered updates, large enough
// that forced-parallel runs really split into many morsels.
func bigTable(t *testing.T, mode table.DeltaMode, n int) *table.Table {
	t.Helper()
	rows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = types.Row{
			types.Int(int64(i) * 2),
			types.Int(int64(i) % 97),
			types.Float(float64(i) / 8),
			types.Str(fmt.Sprintf("s%03d", i%11)),
		}
	}
	tbl, err := table.Load(testSchema, rows, table.Options{Mode: mode, BlockRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	if mode == table.ModeNone {
		return tbl
	}
	// Scattered inserts (odd keys), deletes and modifies across the range,
	// including one insert past the last stable key (owned by the final
	// morsel) and one before the first.
	for _, k := range []int64{1, 333, 1001, 2*int64(n) + 5} {
		if err := tbl.Insert(types.Row{types.Int(k), types.Int(k % 97), types.Float(0.5), types.Str("ins")}); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range []int64{0, 128, 2 * int64(n/2)} {
		if _, err := tbl.DeleteByKey(types.Row{types.Int(k)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range []int64{64, 1024} {
		if _, err := tbl.UpdateByKey(types.Row{types.Int(k)}, 1, types.Int(7777)); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func plansUnderTest(tbl *table.Table) map[string]func() *engine.Plan {
	return map[string]func() *engine.Plan{
		"full": func() *engine.Plan {
			return engine.Scan(tbl, 0, 1, 2, 3)
		},
		"filtered": func() *engine.Plan {
			return engine.Scan(tbl, 1, 2).FilterInt64Le(1, 50).FilterFloat64Lt(2, 200)
		},
		"midblock-range": func() *engine.Plan {
			// Bounds that land mid-block exercise the partial-block seek on
			// every layer cursor.
			return engine.Scan(tbl, 0, 1).
				Range(types.Row{types.Int(13)}, types.Row{types.Int(3001)}).
				FilterInt64Range(0, 13, 3001)
		},
		"unprojected-filter": func() *engine.Plan {
			return engine.Scan(tbl, 3).FilterInt64Le(1, 40).BatchSize(300)
		},
	}
}

func TestParallelRunMatchesSerial(t *testing.T) {
	for _, mode := range []table.DeltaMode{table.ModeNone, table.ModePDT, table.ModeVDT} {
		tbl := bigTable(t, mode, 2000)
		for name, mk := range plansUnderTest(tbl) {
			want := fpRun(t, mk().Parallel(1), 1)
			if want == "" {
				t.Fatalf("%v/%s: serial plan selected nothing; test is vacuous", mode, name)
			}
			for _, w := range []int{2, 3, 8} {
				if got := fpRun(t, mk().Parallel(w), 1); got != want {
					t.Errorf("%v/%s: %d workers diverge from serial\nserial:\n%.200s\nparallel:\n%.200s",
						mode, name, w, want, got)
				}
			}
		}
	}
}

func TestParallelCollectMatchesSerial(t *testing.T) {
	for _, mode := range []table.DeltaMode{table.ModeNone, table.ModePDT} {
		tbl := bigTable(t, mode, 2000)
		// fast path (no filters) and filtered path, both with and without RIDs
		mks := map[string]func() *engine.Plan{
			"fast":          func() *engine.Plan { return engine.Scan(tbl, 0, 2) },
			"fast-rids":     func() *engine.Plan { return engine.Scan(tbl, 0, 2).WithRids() },
			"filtered":      func() *engine.Plan { return engine.Scan(tbl, 0, 3).FilterInt64Le(1, 60) },
			"filtered-rids": func() *engine.Plan { return engine.Scan(tbl, 0, 3).FilterInt64Le(1, 60).WithRids() },
		}
		for name, mk := range mks {
			sb, err := mk().Parallel(1).Collect()
			if err != nil {
				t.Fatal(err)
			}
			want := fpBatch(sb)
			for _, w := range []int{2, 5} {
				pb, err := mk().Parallel(w).Collect()
				if err != nil {
					t.Fatal(err)
				}
				if got := fpBatch(pb); got != want {
					t.Errorf("%v/%s: %d-worker Collect diverges from serial", mode, name, w)
				}
				if len(pb.Vecs) != len(sb.Vecs) {
					t.Errorf("%v/%s: vec count %d != %d", mode, name, len(pb.Vecs), len(sb.Vecs))
				}
			}
		}
	}
}

func TestParallelAutoThreshold(t *testing.T) {
	// Auto mode: below the threshold plans stay serial; forcing the threshold
	// to zero flips them parallel, and the output must not change.
	defer func(th, dw int) { engine.ParallelThreshold = th; engine.DefaultWorkers = dw }(
		engine.ParallelThreshold, engine.DefaultWorkers)
	tbl := bigTable(t, table.ModePDT, 2000)
	want := fpRun(t, engine.Scan(tbl, 0, 1, 2, 3), 4)
	engine.ParallelThreshold = 0
	engine.DefaultWorkers = 4
	if got := fpRun(t, engine.Scan(tbl, 0, 1, 2, 3), 4); got != want {
		t.Errorf("auto-parallel diverges from serial")
	}
	// Point-probe-sized batches never auto-parallelize, whatever the
	// threshold — FindByKey-style probes must stay cheap.
	if got := fpRun(t, engine.Scan(tbl, 0).BatchSize(16).Range(types.Row{types.Int(500)}, types.Row{types.Int(500)}), 1); got == "" {
		t.Errorf("small-batch probe found nothing")
	}
}

func TestParallelEmptyStableWithInserts(t *testing.T) {
	// A PDT holding inserts over an empty stable image: the empty range still
	// produces one morsel, which owns every insert.
	tbl, err := table.Load(testSchema, nil, table.Options{Mode: table.ModePDT, BlockRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		if err := tbl.Insert(types.Row{types.Int(i), types.Int(i), types.Float(0), types.Str("x")}); err != nil {
			t.Fatal(err)
		}
	}
	want := fpRun(t, engine.Scan(tbl, 0, 1).Parallel(1), 2)
	got := fpRun(t, engine.Scan(tbl, 0, 1).Parallel(4), 2)
	if want == "" || got != want {
		t.Fatalf("empty-stable parallel scan diverges:\nserial:\n%s\nparallel:\n%s", want, got)
	}
}

func TestParallelStopAndErrors(t *testing.T) {
	tbl := bigTable(t, table.ModePDT, 2000)
	// Stop ends an ordered parallel run early without error. Batch
	// boundaries are morsel-bounded in parallel runs, so the stopped stream
	// is some non-empty prefix of the serial row stream — rows and order
	// identical, cut possibly earlier.
	var serial []int64
	if err := engine.Scan(tbl, 0).Parallel(1).Run(func(b *vector.Batch, sel []uint32) error {
		for _, i := range sel {
			serial = append(serial, b.Vecs[0].I[i])
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var prefix []int64
	if err := engine.Scan(tbl, 0).Parallel(4).Run(func(b *vector.Batch, sel []uint32) error {
		for _, i := range sel {
			prefix = append(prefix, b.Vecs[0].I[i])
		}
		return engine.Stop
	}); err != nil {
		t.Fatal(err)
	}
	if len(prefix) == 0 || len(prefix) > len(serial) {
		t.Fatalf("stop prefix: %d rows of %d", len(prefix), len(serial))
	}
	for i, v := range prefix {
		if v != serial[i] {
			t.Fatalf("stop prefix diverges at row %d: %d != %d", i, v, serial[i])
		}
	}
	// A sink error surfaces once, as itself.
	boom := fmt.Errorf("boom")
	err := engine.Scan(tbl, 0).Parallel(4).Run(func(*vector.Batch, []uint32) error { return boom })
	if err != boom {
		t.Fatalf("sink error = %v, want boom", err)
	}
}

func TestRunPartitionedDeterministic(t *testing.T) {
	tbl := bigTable(t, table.ModePDT, 2000)
	sum := func(workers int) (int64, int) {
		var partials []int64
		parts := 0
		err := engine.Scan(tbl, 1).Parallel(workers).RunPartitioned(
			func(n int) error {
				parts = n
				partials = make([]int64, n)
				return nil
			},
			func(part int, b *vector.Batch, sel []uint32) error {
				for _, i := range sel {
					partials[part] += b.Vecs[0].I[i]
				}
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, p := range partials {
			total += p
		}
		return total, parts
	}
	want, serialParts := sum(1)
	if serialParts != 1 {
		t.Fatalf("serial path reported %d parts", serialParts)
	}
	for _, w := range []int{2, 4, 8} {
		got, parts := sum(w)
		if got != want {
			t.Fatalf("%d workers: partitioned sum %d != serial %d", w, got, want)
		}
		if w > 1 && parts < 2 {
			t.Fatalf("%d workers: only %d partitions", w, parts)
		}
	}
}
