package engine

// Morsel-driven parallel scans. A relation that can slice its positional
// merge pipeline by stable-SID range (PartRelation) is carved into
// block-aligned morsels pulled from a shared atomic queue; each worker runs a
// private copy of the plan's pipeline — own source cursors, own batch, own
// selection vector — over the morsels it claims. PDT layers make this exact:
// every layer cursor seeks to the morsel's start SID carrying the running
// shift in, and only the range's last morsel includes delta entries sitting
// exactly on its end boundary, so each insert, delete and modify is owned by
// exactly one morsel and concatenating morsel outputs in morsel order
// reproduces the serial scan row for row, RID for RID.
//
// Three sinks consume the partitioned pipeline:
//
//   - Run delivers batches to the caller in serial order via sequence-stamped
//     handoff: workers tag each produced batch with its morsel index, a
//     single delivery loop on the caller's goroutine releases them in morsel
//     order, and per-worker fixed slot pools bound memory without deadlock
//     (a worker claims morsels in increasing order, so its outstanding slots
//     always belong to morsels at or before the delivery head).
//   - Collect appends each morsel's survivors into per-worker output batches
//     and stitches the recorded (morsel, start, end) segments back together
//     in morsel order — exact serial output with no handoff at all.
//   - RunPartitioned trades ordering for scheduling freedom: batches arrive
//     tagged with their morsel ("part") index, each part is processed by
//     exactly one worker, and merging per-part partial states in part order
//     afterwards is deterministic regardless of how morsels landed on
//     workers.

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"pdtstore/internal/pdt"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

// Tuning knobs for automatic parallelism. Plans that do not call Parallel go
// parallel only when their relation supports partitioning and the stable SID
// span of the scan is at least ParallelThreshold rows; DefaultWorkers is the
// worker count used then (0 means runtime.GOMAXPROCS(0)). They are variables
// so benchmarks and differential tests can force tiny scans parallel.
var (
	DefaultWorkers    = 0
	ParallelThreshold = 128 << 10
)

// minParallelBatch keeps point probes serial: plans with very small batch
// sizes (FindByKey-style early-stop probes use 16) never auto-parallelize,
// whatever the table size — fanning workers across the whole tail of a table
// to find one row would invert the optimization.
const minParallelBatch = 256

const (
	morselsPerWorker = 4 // work-stealing granularity of the morsel queue
	slotsPerWorker   = 4 // in-flight batches per worker in the ordered handoff
)

// PartScan is a partitionable scan: the stable-SID bounds of the range, the
// block alignment unit, and a factory opening the merged source for one
// [lo, hi) sub-range. Open must be safe for concurrent calls; last is true
// only for the morsel ending at Hi, which alone includes delta entries
// sitting exactly on its end boundary (every other morsel defers them to the
// neighbour that starts there).
type PartScan struct {
	Lo, Hi uint64
	Unit   int
	// Cuts are hard partition boundaries strictly inside (Lo, Hi): morsels
	// never span a cut, so each Open call's [lo, hi) range falls entirely
	// within one inter-cut segment. A sharded relation places a cut at
	// every shard boundary of its concatenated domain and routes each
	// morsel to the one shard that owns it. Cuts must be ascending.
	Cuts []uint64
	Open func(cols []int, lo, hi uint64, last bool) (pdt.BatchSource, error)
	// Prune, when non-nil, resolves the plan's typed predicates against the
	// relation's zone maps and secondary indexes before any block is opened
	// (see PruneBlocks). Returning nil declines pruning for this scan.
	Prune func(preds []Pred) *PruneResult
}

// PartRelation is a Relation that can open range-clamped slices of its scan
// pipeline. Returning a nil *PartScan (with nil error) declines: the plan
// falls back to the serial path — the VDT mode does this, since a value-based
// merge has no positional slicing.
type PartRelation interface {
	Relation
	PartitionScan(loKey, hiKey types.Row) (*PartScan, error)
}

// Parallel sets the plan's worker count: 1 forces the serial path, n > 1
// forces n workers (when the relation supports partitioning), and 0 restores
// the default — parallel with GOMAXPROCS workers when the scan spans at least
// ParallelThreshold stable rows. Whatever the setting, Run delivers batches
// in exactly the serial order and Collect returns exactly the serial batch.
func (p *Plan) Parallel(n int) *Plan {
	p.workers = n
	return p
}

// accessPlan is the resolved execution strategy of one plan run: the scan's
// partition description, the morsels to execute (covering only the kept
// ranges when the prune pass excluded blocks), the worker count, and the
// prune outcome. A nil accessPlan means the plain serial path.
type accessPlan struct {
	ps      *PartScan
	morsels []morsel
	workers int
	pruned  *PruneResult
}

// resolveAccess picks the plan's access path. With no prunable predicates the
// decision reduces exactly to parallel gating: serial unless the relation
// partitions and the scan is large (or Parallel forced workers). With typed
// predicates and a pruning-capable PartScan the prune pass runs first; if it
// excludes any block, execution covers only the kept ranges — morsel by
// morsel on the caller's goroutine when one worker resolves, in parallel
// otherwise. A prune pass that keeps every block falls back to the unpruned
// paths, so full-keep scans cost exactly what they did before pruning
// existed.
func (p *Plan) resolveAccess() (*accessPlan, error) {
	if p.rel == nil {
		return nil, nil
	}
	pr, ok := p.rel.(PartRelation)
	if !ok {
		return nil, nil
	}
	var preds []Pred
	if PruningEnabled() && !p.noPrune {
		preds = p.typedPreds()
	}
	wantPrune := len(preds) > 0
	if p.workers == 1 && !wantPrune {
		return nil, nil
	}
	if p.workers == 0 && p.batchSize < minParallelBatch && !wantPrune {
		return nil, nil
	}
	ps, err := pr.PartitionScan(p.loKey, p.hiKey)
	if err != nil {
		return nil, err
	}
	if ps == nil || ps.Open == nil {
		return nil, nil
	}
	var pruned *PruneResult
	if wantPrune && ps.Prune != nil {
		if res := ps.Prune(preds); res != nil && res.Kept < res.Total {
			pruned = res
		}
	}
	n := p.workers
	if n == 0 {
		if ps.Hi-ps.Lo < uint64(ParallelThreshold) || p.batchSize < minParallelBatch {
			n = 1
		} else {
			n = DefaultWorkers
			if n <= 0 {
				n = runtime.GOMAXPROCS(0)
			}
		}
	}
	if pruned == nil {
		if n <= 1 {
			return nil, nil
		}
		morsels := morselize(ps.Lo, ps.Hi, ps.Unit, n, ps.Cuts)
		if n > len(morsels) {
			n = len(morsels)
		}
		return &accessPlan{ps: ps, morsels: morsels, workers: n}, nil
	}
	if n < 1 {
		n = 1
	}
	morsels := morselizeRanges(pruned.Ranges, ps, n)
	if n > len(morsels) {
		n = len(morsels)
	}
	if n < 1 {
		n = 1
	}
	return &accessPlan{ps: ps, morsels: morsels, workers: n, pruned: pruned}, nil
}

// morsel is one contiguous stable-SID chunk of a partitioned scan.
type morsel struct {
	lo, hi uint64
	last   bool
}

// morselize splits [lo, hi) into block-aligned chunks sized for the worker
// count. Every boundary except the ends (and the forced cuts) is a multiple
// of unit, so no two morsels share a column block; the final morsel carries
// last=true. Cuts are forced boundaries: chunking restarts at each one, so no
// morsel ever spans a cut — a sharded relation's shard boundaries stay morsel
// boundaries and each Open resolves to exactly one shard. An empty range
// still yields one (empty) last morsel, because a delta layer can hold
// inserts against an empty stable range and some morsel must own them.
func morselize(lo, hi uint64, unit, workers int, cuts []uint64) []morsel {
	if unit <= 0 {
		unit = 1
	}
	span := hi - lo
	target := uint64(workers * morselsPerWorker)
	rows := (span + target - 1) / target
	rows = (rows + uint64(unit) - 1) / uint64(unit) * uint64(unit)
	if rows < uint64(unit) {
		rows = uint64(unit)
	}
	var ms []morsel
	emit := func(a, b uint64) {
		for at := a; at < b; at += rows {
			end := at + rows
			if end > b {
				end = b
			}
			ms = append(ms, morsel{lo: at, hi: end})
		}
	}
	seg := lo
	for _, c := range cuts {
		if c <= seg || c >= hi {
			continue
		}
		emit(seg, c)
		seg = c
	}
	emit(seg, hi)
	if len(ms) == 0 {
		ms = append(ms, morsel{lo: lo, hi: lo})
	}
	ms[len(ms)-1].last = true
	return ms
}

// morselizeRanges is morselize over the kept ranges of a prune pass: each
// range splits into block-aligned chunks sized for the worker count, cuts
// stay hard boundaries, and zero-width ranges (a sharded domain's empty
// slots, which can still hold delta-layer inserts) become zero-width morsels
// so the shard owning them still opens. Only a final morsel ending exactly at
// ps.Hi carries last=true: a delta entry sitting on any other range's end
// boundary would have dirtied the adjacent block and kept it, so a pruned
// range ending strictly below Hi never owns boundary entries.
func morselizeRanges(ranges []SIDRange, ps *PartScan, workers int) []morsel {
	unit := uint64(ps.Unit)
	if unit == 0 {
		unit = 1
	}
	var span uint64
	for _, r := range ranges {
		span += r.Hi - r.Lo
	}
	target := uint64(workers * morselsPerWorker)
	rows := (span + target - 1) / target
	rows = (rows + unit - 1) / unit * unit
	if rows < unit {
		rows = unit
	}
	var ms []morsel
	emit := func(a, b uint64) {
		if a == b {
			ms = append(ms, morsel{lo: a, hi: a})
			return
		}
		for at := a; at < b; at += rows {
			end := at + rows
			if end > b {
				end = b
			}
			ms = append(ms, morsel{lo: at, hi: end})
		}
	}
	for _, r := range ranges {
		seg := r.Lo
		for _, c := range ps.Cuts {
			if c <= seg || c >= r.Hi {
				continue
			}
			emit(seg, c)
			seg = c
		}
		emit(seg, r.Hi)
	}
	// Exactly one morsel may start at any position: a zero-width morsel whose
	// position another morsel also starts at would make a sharded relation
	// open the empty slot twice (its Open matches slots by morsel start).
	// Ranges are ascending, so colliding morsels are adjacent — drop the
	// zero-width one.
	n := 0
	for i, m := range ms {
		if m.lo == m.hi && i+1 < len(ms) && ms[i+1].lo == m.lo {
			continue
		}
		ms[n] = m
		n++
	}
	ms = ms[:n]
	if len(ms) == 0 {
		ms = append(ms, morsel{lo: ps.Lo, hi: ps.Lo})
	}
	if m := &ms[len(ms)-1]; m.hi == ps.Hi {
		m.last = true
	}
	return ms
}

// runMorsels executes an access plan serially: the caller's goroutine walks
// the morsels in order through the plan's filter pipeline — the pruned
// counterpart of runSerial, with no worker machinery. fn receives the morsel
// index (Run wraps it to drop the index).
func (p *Plan) runMorsels(ap *accessPlan, a *analyzed, fn func(part int, b *vector.Batch, sel []uint32) error) error {
	b := vector.NewBatch(a.kinds, p.batchSize)
	sel := vector.GetSelection()
	defer vector.PutSelection(sel)
	for mi, m := range ap.morsels {
		src, err := ap.ps.Open(a.scanCols, m.lo, m.hi, m.last)
		if err != nil {
			return err
		}
		for {
			b.Reset()
			n, err := src.Next(b, p.batchSize)
			if err != nil {
				return err
			}
			if n == 0 {
				break
			}
			sel.All(n)
			for i, f := range p.filters {
				f.apply(b.Vecs[a.slots[i]], sel)
				if sel.Len() == 0 {
					break
				}
			}
			if sel.Len() == 0 {
				continue
			}
			if err := fn(mi, b, sel.Indexes()); err != nil {
				if errors.Is(err, Stop) {
					return nil
				}
				return err
			}
		}
	}
	return nil
}

// collectMorsels is Collect over a serially-executed pruned access plan.
func (p *Plan) collectMorsels(ap *accessPlan, a *analyzed) (*vector.Batch, error) {
	outKinds := a.kinds[:len(p.outCols)]
	out := vector.NewBatch(outKinds, p.batchSize)
	err := p.runMorsels(ap, a, func(_ int, b *vector.Batch, idx []uint32) error {
		for i := range p.outCols {
			out.Vecs[i].AppendSelected(b.Vecs[i], idx)
		}
		if p.needRids && len(b.Rids) > 0 {
			for _, ri := range idx {
				out.Rids = append(out.Rids, b.Rids[ri])
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// pslot is one pooled (batch, selection) pair cycling between a worker and
// the ordered delivery loop.
type pslot struct {
	b   *vector.Batch
	sel *vector.Selection
}

// pitem is one handoff message: a filtered batch of morsel-ordered rows, an
// end-of-morsel marker (slot == nil, eom), or a worker error.
type pitem struct {
	worker int
	morsel int
	slot   *pslot
	eom    bool
	err    error
}

// errCancelled signals a worker that delivery shut down; it never escapes.
var errCancelled = errors.New("engine: parallel scan cancelled")

// batchPools recycles worker batches across plan executions, keyed by the
// (kinds, capacity) shape. sync.Pool shards its freelists per P, so parallel
// workers get and put without contending on one lock.
var batchPools sync.Map // string -> *vector.BatchPool

func poolFor(kinds []types.Kind, capHint int) *vector.BatchPool {
	key := make([]byte, 0, len(kinds)+8)
	for _, k := range kinds {
		key = append(key, byte(k))
	}
	for s := 0; s < 32; s += 8 {
		key = append(key, byte(capHint>>s))
	}
	if p, ok := batchPools.Load(string(key)); ok {
		return p.(*vector.BatchPool)
	}
	p, _ := batchPools.LoadOrStore(string(key), vector.NewBatchPool(kinds, capHint))
	return p.(*vector.BatchPool)
}

// runParallel is the ordered parallel Run: workers pull morsels off a shared
// counter and pipe filtered batches through per-worker slot pools; the
// delivery loop below releases them to fn in morsel order, so fn observes the
// exact serial row sequence.
func (p *Plan) runParallel(ap *accessPlan, a *analyzed, fn func(b *vector.Batch, sel []uint32) error) error {
	ps, morsels, workers := ap.ps, ap.morsels, ap.workers
	pool := poolFor(a.kinds, p.batchSize)
	var next atomic.Int64
	stopc := make(chan struct{})
	results := make(chan pitem, workers*slotsPerWorker)
	free := make([]chan *pslot, workers)
	for w := range free {
		free[w] = make(chan *pslot, slotsPerWorker)
		for i := 0; i < slotsPerWorker; i++ {
			free[w] <- &pslot{b: pool.Get(), sel: vector.GetSelection()}
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				m := int(next.Add(1) - 1)
				if m >= len(morsels) {
					return
				}
				if err := p.produceMorsel(ps, a, morsels[m], w, m, free[w], results, stopc); err != nil {
					if err != errCancelled {
						select {
						case results <- pitem{worker: w, morsel: m, err: err}:
						case <-stopc:
						}
					}
					return
				}
				select {
				case results <- pitem{worker: w, morsel: m, eom: true}:
				case <-stopc:
					return
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Ordered delivery on the caller's goroutine. The loop never blocks on a
	// worker (free channels have capacity for every slot), so it always
	// drains results — which is why the slot cycle cannot deadlock.
	head := 0
	pending := make(map[int][]pitem)
	finished := make(map[int]bool)
	var runErr error
	handle := func(it pitem) error {
		if it.eom {
			finished[it.morsel] = true
			return nil
		}
		err := fn(it.slot.b, it.slot.sel.Indexes())
		free[it.worker] <- it.slot
		return err
	}
	for it := range results {
		if runErr != nil {
			// Shutting down: recycle and discard until the channel closes.
			if it.slot != nil {
				free[it.worker] <- it.slot
			}
			continue
		}
		if it.err != nil {
			runErr = it.err
			close(stopc)
			continue
		}
		if it.morsel != head {
			pending[it.morsel] = append(pending[it.morsel], it)
			continue
		}
		if err := handle(it); err != nil {
			runErr = err
			close(stopc)
			continue
		}
		for finished[head] {
			delete(finished, head)
			head++
			items := pending[head]
			delete(pending, head)
			for _, q := range items {
				if err := handle(q); err != nil {
					runErr = err
					close(stopc)
					break
				}
			}
			if runErr != nil {
				break
			}
		}
		if runErr == nil && head == len(morsels) {
			close(stopc)
			runErr = errCancelled // mark shutdown; cleared below
		}
	}
	// Return every slot's batch/selection to the pools, including those still
	// parked in pending maps after an early shutdown.
	for _, items := range pending {
		for _, q := range items {
			if q.slot != nil {
				free[q.worker] <- q.slot
			}
		}
	}
	for _, fc := range free {
		close(fc)
		for s := range fc {
			pool.Put(s.b)
			vector.PutSelection(s.sel)
		}
	}
	if runErr == errCancelled {
		return nil
	}
	if errors.Is(runErr, Stop) {
		return nil
	}
	return runErr
}

// produceMorsel runs the plan's filter pipeline over one morsel, sending
// surviving batches tagged with the morsel index. Batches with an empty
// selection recycle locally and are never sent, mirroring the serial path.
func (p *Plan) produceMorsel(ps *PartScan, a *analyzed, m morsel, w, mi int, free chan *pslot, results chan<- pitem, stopc <-chan struct{}) error {
	src, err := ps.Open(a.scanCols, m.lo, m.hi, m.last)
	if err != nil {
		return err
	}
	for {
		var slot *pslot
		select {
		case slot = <-free:
		case <-stopc:
			return errCancelled
		}
		slot.b.Reset()
		n, err := src.Next(slot.b, p.batchSize)
		if err != nil || n == 0 {
			free <- slot
			return err
		}
		slot.sel.All(n)
		for i, f := range p.filters {
			f.apply(slot.b.Vecs[a.slots[i]], slot.sel)
			if slot.sel.Len() == 0 {
				break
			}
		}
		if slot.sel.Len() == 0 {
			free <- slot
			continue
		}
		select {
		case results <- pitem{worker: w, morsel: mi, slot: slot}:
		case <-stopc:
			return errCancelled
		}
	}
}

// collectParallel is the order-preserving parallel Collect: each worker
// appends its morsels' survivors into a private output batch and records one
// (morsel, start, end) segment per morsel; stitching segments in morsel order
// afterwards reproduces the serial output exactly.
func (p *Plan) collectParallel(ap *accessPlan, a *analyzed) (*vector.Batch, error) {
	ps, morsels, workers := ap.ps, ap.morsels, ap.workers
	outKinds := a.kinds[:len(p.outCols)]
	fast := len(p.filters) == 0 && len(a.scanCols) == len(p.outCols)
	type seg struct {
		worker, morsel int
		start, end     int
		rstart, rend   int
	}
	outs := make([]*vector.Batch, workers)
	segsByWorker := make([][]seg, workers)
	errs := make([]error, workers)
	var next atomic.Int64
	var stop atomic.Bool
	scratch := poolFor(a.kinds, p.batchSize)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := vector.NewBatch(outKinds, p.batchSize)
			outs[w] = out
			var b *vector.Batch
			var sel *vector.Selection
			if !fast {
				b = scratch.Get()
				defer scratch.Put(b)
				sel = vector.GetSelection()
				defer vector.PutSelection(sel)
			}
			for !stop.Load() {
				m := int(next.Add(1) - 1)
				if m >= len(morsels) {
					return
				}
				s := seg{worker: w, morsel: m, start: out.Len(), rstart: len(out.Rids)}
				src, err := ps.Open(a.scanCols, morsels[m].lo, morsels[m].hi, morsels[m].last)
				if err != nil {
					errs[w] = err
					stop.Store(true)
					return
				}
				for !stop.Load() {
					if fast {
						n, err := src.Next(out, p.batchSize)
						if err != nil {
							errs[w] = err
							stop.Store(true)
							return
						}
						if n == 0 {
							break
						}
						continue
					}
					b.Reset()
					n, err := src.Next(b, p.batchSize)
					if err != nil {
						errs[w] = err
						stop.Store(true)
						return
					}
					if n == 0 {
						break
					}
					sel.All(n)
					for i, f := range p.filters {
						f.apply(b.Vecs[a.slots[i]], sel)
						if sel.Len() == 0 {
							break
						}
					}
					if sel.Len() == 0 {
						continue
					}
					idx := sel.Indexes()
					for i := range p.outCols {
						out.Vecs[i].AppendSelected(b.Vecs[i], idx)
					}
					if p.needRids && len(b.Rids) > 0 {
						for _, ri := range idx {
							out.Rids = append(out.Rids, b.Rids[ri])
						}
					}
				}
				s.end, s.rend = out.Len(), len(out.Rids)
				segsByWorker[w] = append(segsByWorker[w], s)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Stitch: each morsel was fully processed by exactly one worker, so
	// placing its segment at its morsel index and concatenating restores the
	// serial order.
	byMorsel := make([]seg, len(morsels))
	total, totalRids := 0, 0
	for _, segs := range segsByWorker {
		for _, s := range segs {
			byMorsel[s.morsel] = s
			total += s.end - s.start
			totalRids += s.rend - s.rstart
		}
	}
	final := vector.NewBatch(outKinds, total)
	if p.needRids && totalRids > 0 {
		final.Rids = make([]uint64, 0, totalRids)
	}
	for _, s := range byMorsel {
		src := outs[s.worker]
		for i := range final.Vecs {
			final.Vecs[i].AppendRange(src.Vecs[i], s.start, s.end)
		}
		if p.needRids {
			final.Rids = append(final.Rids, src.Rids[s.rstart:s.rend]...)
		}
	}
	return final, nil
}

// RunPartitioned streams the pipeline like Run, but tags every (batch, sel)
// pair with the index of the partition it came from instead of imposing a
// global order: partitions are processed concurrently, each by exactly one
// worker, and within a partition batches arrive in row order. start runs
// once, before any fn call, with the partition count, so the caller can
// allocate per-partition state up front; folding those partial states
// together in partition order after RunPartitioned returns yields a result
// independent of how partitions were scheduled — the deterministic combine
// step parallel aggregations need. A plan on the plain serial path has
// exactly one partition; a pruned scan resolved to one worker has one
// partition per kept morsel, processed in order on the caller's goroutine.
// fn may be called concurrently for different partitions, never for the same
// one; returning Stop ends the whole run without error.
func (p *Plan) RunPartitioned(start func(parts int) error, fn func(part int, b *vector.Batch, sel []uint32) error) error {
	a, err := p.analyze()
	if err != nil {
		return err
	}
	ap, err := p.resolveAccess()
	if err != nil {
		return err
	}
	if ap == nil {
		if err := start(1); err != nil {
			return err
		}
		return p.runSerial(a, func(b *vector.Batch, sel []uint32) error { return fn(0, b, sel) })
	}
	ps, morsels, workers := ap.ps, ap.morsels, ap.workers
	if err := start(len(morsels)); err != nil {
		return err
	}
	if workers <= 1 {
		return p.runMorsels(ap, a, fn)
	}
	scratch := poolFor(a.kinds, p.batchSize)
	errs := make([]error, workers)
	var next atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b := scratch.Get()
			defer scratch.Put(b)
			sel := vector.GetSelection()
			defer vector.PutSelection(sel)
			for !stop.Load() {
				m := int(next.Add(1) - 1)
				if m >= len(morsels) {
					return
				}
				src, err := ps.Open(a.scanCols, morsels[m].lo, morsels[m].hi, morsels[m].last)
				if err != nil {
					errs[w] = err
					stop.Store(true)
					return
				}
				for !stop.Load() {
					b.Reset()
					n, err := src.Next(b, p.batchSize)
					if err != nil {
						errs[w] = err
						stop.Store(true)
						return
					}
					if n == 0 {
						break
					}
					sel.All(n)
					for i, f := range p.filters {
						f.apply(b.Vecs[a.slots[i]], sel)
						if sel.Len() == 0 {
							break
						}
					}
					if sel.Len() == 0 {
						continue
					}
					if err := fn(m, b, sel.Indexes()); err != nil {
						if !errors.Is(err, Stop) {
							errs[w] = err
						}
						stop.Store(true)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
