package engine

// Source construction: the one place that knows how to assemble the paper's
// read pipelines. A stable image plus an optional differential structure
// (PDT, VDT, or none) becomes a positional batch source via NewSource; a
// stack of PDT layers (the transaction scheme's Read/Write/Trans/Query
// stacking, Equation 9) is chained with StackPDTs.

import (
	"pdtstore/internal/colstore"
	"pdtstore/internal/pdt"
	"pdtstore/internal/types"
	"pdtstore/internal/vdt"
	"pdtstore/internal/vector"
)

// TableSpec names the storage pieces of one table image: the stable column
// store and at most one differential structure. A nil (or empty) delta means
// the scan reads the stable image directly, exactly like the paper's clean
// reference runs.
type TableSpec struct {
	Store *colstore.Store
	PDT   *pdt.PDT
	VDT   *vdt.VDT
}

// NewSource builds the merged read source for the projected columns of all
// visible rows whose sort key lies in [loKey, hiKey] (nil bounds are open;
// bounds may be prefixes of the sort key). Range restriction goes through the
// sparse index, so the source may produce rows just outside the bounds
// (partial blocks); plan filters re-restrict downstream, as with real zone
// maps. The source emits RIDs.
//
// Projection is pushed all the way down: the stable scanner decodes only the
// blocks of the requested columns, and the PDT merge patches only projected
// columns (deletes and inserts are still tracked positionally, per Algorithm
// 2, without ever reading the sort key). Only the value-based VDT merge must
// additionally read the sort-key columns — the defining cost of the baseline
// the paper measures — and projects them away again before rows leave the
// source.
func NewSource(spec TableSpec, cols []int, loKey, hiKey types.Row) (pdt.BatchSource, error) {
	s := spec.Store
	from, to := s.SIDRange(loKey, hiKey)
	switch {
	case spec.PDT != nil && !spec.PDT.Empty():
		return pdt.NewMergeScan(spec.PDT, s.NewScanner(cols, from, to), cols, from, true), nil
	case spec.VDT != nil && !spec.VDT.Empty():
		srcCols := append([]int(nil), cols...)
		for _, k := range s.Schema().SortKey {
			present := false
			for _, c := range srcCols {
				if c == k {
					present = true
					break
				}
			}
			if !present {
				srcCols = append(srcCols, k)
			}
		}
		src := s.NewScanner(srcCols, from, to)
		startRID := spec.VDT.RangeStartRID(from, loKey)
		return vdt.NewMergeScan(spec.VDT, src, srcCols, cols, loKey, hiKey, startRID)
	default:
		return &plainSource{sc: s.NewScanner(cols, from, to)}, nil
	}
}

// PartitionSpec is NewSource's partitionable counterpart: it resolves the
// sort-key range to stable-SID bounds once and returns a PartScan whose Open
// assembles the same merge pipeline NewSource would, clamped to one morsel's
// [lo, hi) sub-range. Non-last morsels open their PDT merge with
// includeEnd=false, so a delta entry sitting exactly on a morsel boundary is
// owned by the morsel that starts there — the invariant that makes
// concatenated morsel outputs equal the serial scan. A table whose updates
// live in a VDT declines (returns nil): a value-based merge interleaves by
// key, not position, and cannot be sliced by SID range.
func PartitionSpec(spec TableSpec, loKey, hiKey types.Row) *PartScan {
	if spec.VDT != nil && !spec.VDT.Empty() {
		return nil
	}
	s := spec.Store
	lo, hi := s.SIDRange(loKey, hiKey)
	delta := spec.PDT
	if delta != nil && delta.Empty() {
		delta = nil
	}
	return &PartScan{Lo: lo, Hi: hi, Unit: s.BlockRows(),
		Prune: PruneFunc(s, lo, hi, delta),
		Open: func(cols []int, mlo, mhi uint64, last bool) (pdt.BatchSource, error) {
			// Readahead: charge the morsel's cold block reads up front so
			// concurrent workers' modeled I/O overlaps.
			if err := s.Prefetch(cols, mlo, mhi); err != nil {
				return nil, err
			}
			sc := s.NewScanner(cols, mlo, mhi)
			if delta != nil {
				return pdt.NewMergeScan(delta, sc, cols, mlo, last), nil
			}
			return &plainSource{sc: sc}, nil
		}}
}

// StackPDTs chains PDT layers bottom-to-top over a base source producing the
// given columns for consecutive positions starting at startSID: each layer's
// SIDs are the RIDs produced by the layer below (the transaction scheme's
// TABLE₀ ∘ R ∘ W ∘ T stacking). Nil layers are skipped, so callers with
// optional layers — the transaction manager stacks a frozen maintenance
// layer only while a background fold or checkpoint is in flight — pass them
// unconditionally. With no (non-nil) layers the base is returned as-is.
func StackPDTs(base pdt.BatchSource, cols []int, startSID uint64, includeEnd bool, layers ...*pdt.PDT) pdt.BatchSource {
	src, sid := base, startSID
	for _, l := range layers {
		if l == nil {
			continue
		}
		m := pdt.NewMergeScan(l, src, cols, sid, includeEnd)
		src, sid = m, m.StartRID()
	}
	return src
}

// Concat chains sources end to end: rows flow from the first until it is
// exhausted, then the second, and so on. A sharded table scans as the
// concatenation of its shards' merged pipelines (each wrapped in OffsetRids so
// RIDs stay globally consecutive). Errors surface from whichever source is
// active.
func Concat(srcs ...pdt.BatchSource) pdt.BatchSource {
	if len(srcs) == 1 {
		return srcs[0]
	}
	return &concatSource{srcs: srcs}
}

type concatSource struct {
	srcs []pdt.BatchSource
	cur  int
}

func (c *concatSource) Next(out *vector.Batch, max int) (int, error) {
	for c.cur < len(c.srcs) {
		n, err := c.srcs[c.cur].Next(out, max)
		if err != nil {
			return n, err
		}
		if n > 0 {
			return n, nil
		}
		c.cur++
	}
	return 0, nil
}

func (c *concatSource) SizeHint() int {
	total := 0
	for _, s := range c.srcs[c.cur:] {
		h := SizeHint(s)
		if h < 0 {
			return -1
		}
		total += h
	}
	return total
}

// OffsetRids shifts every RID a source emits by off: shard i of a sharded
// table produces local RIDs starting at 0, and the coordinator re-bases them
// by the visible row counts of the shards before it so the concatenated scan
// emits one consecutive global RID space.
func OffsetRids(src pdt.BatchSource, off uint64) pdt.BatchSource {
	if off == 0 {
		return src
	}
	return &ridShift{src: src, off: off}
}

type ridShift struct {
	src pdt.BatchSource
	off uint64
}

func (r *ridShift) Next(out *vector.Batch, max int) (int, error) {
	base := len(out.Rids)
	n, err := r.src.Next(out, max)
	for i := base; i < len(out.Rids); i++ {
		out.Rids[i] += r.off
	}
	return n, err
}

func (r *ridShift) SizeHint() int { return SizeHint(r.src) }

// plainSource adapts a stable scanner to the BatchSource contract, emitting
// RID == SID.
type plainSource struct {
	sc *colstore.Scanner
}

func (p *plainSource) Next(out *vector.Batch, max int) (int, error) {
	sid := p.sc.NextSID()
	n, err := p.sc.Next(out, max)
	for i := 0; i < n; i++ {
		out.Rids = append(out.Rids, sid+uint64(i))
	}
	return n, err
}

func (p *plainSource) SizeHint() int { return p.sc.SizeHint() }

// SizeHint returns the source's estimate of how many rows remain, or -1 when
// the source offers none. Sinks use it to pre-size output batches.
func SizeHint(src pdt.BatchSource) int {
	if h, ok := src.(pdt.SizeHinter); ok {
		return h.SizeHint()
	}
	return -1
}
