package engine

// Pre-scan block pruning: the access-path half of the plan. Every typed
// filter also records a Pred — a declarative description of what it keeps —
// and a partitionable relation may expose a Prune hook that resolves those
// predicates against per-block zone maps and secondary-index summaries
// BEFORE any block is fetched. The result is the subset of the scan's
// stable-SID range that can still hold qualifying rows; morselization then
// covers only that subset, so neither serial nor parallel workers ever open
// a pruned block.
//
// Pruning under a PDT layer stack must respect pending updates: a block the
// frozen or in-flight PDTs touch (insert, delete or in-place modify) may
// hold rows whose current values differ from the stable image the stats
// describe, so dirty blocks are never pruned. PruneBlocks folds the pinned
// layer stack down to stable coordinates (the same non-destructive pdt.Fold
// the maintenance path uses) and marks every touched block dirty — which is
// also what keeps index reads snapshot-consistent: the per-block summaries
// are built over the stable image at fold/checkpoint time, and any block
// whose image the snapshot's unfolded deltas would patch is scanned, not
// probed. Blocks in the shifted region whose values are untouched remain
// prunable: morsel opens seek each layer cursor to the morsel's start SID
// carrying the running shift, so RIDs stay exact across skipped ranges.

import (
	"strings"
	"sync/atomic"

	"pdtstore/internal/colstore"
	"pdtstore/internal/pdt"
	"pdtstore/internal/storage"
)

// PredOp enumerates the predicate shapes the pruning pass understands. A
// filter whose semantics no PredOp captures (FilterStrContains, custom
// kernels) records PredNone and simply never prunes.
type PredOp uint8

const (
	// PredNone marks a filter with no prunable description.
	PredNone PredOp = iota
	// PredInt64Range keeps ILo <= v <= IHi (Int64/Date/Bool columns).
	PredInt64Range
	// PredFloat64Range keeps FLo <= v <= FHi.
	PredFloat64Range
	// PredFloat64Lt keeps v < FHi (strict).
	PredFloat64Lt
	// PredStrEq keeps v == Strs[0].
	PredStrEq
	// PredStrIn keeps v ∈ Strs.
	PredStrIn
	// PredStrPrefix keeps v with prefix Strs[0].
	PredStrPrefix
)

// Pred is the declarative form of one typed filter: enough for a zone map or
// index summary to prove "no row of this block qualifies" without running
// the kernel. The arm named by Op is populated.
type Pred struct {
	Col      int
	Op       PredOp
	ILo, IHi int64
	FLo, FHi float64
	Strs     []string
	// Eq marks an exact-match predicate (FilterInt64Eq, FilterStrEq) — the
	// shape a hash/bloom index summary can answer even when a range cannot.
	Eq bool
}

// SIDRange is one kept contiguous stable-SID sub-range of a pruned scan.
type SIDRange struct{ Lo, Hi uint64 }

// PruneResult is the outcome of a pre-scan pruning pass: the kept sub-ranges
// (ascending, disjoint, block-aligned except at the scan's own bounds),
// block accounting, and which structure proved each skipped block
// irrelevant. Kept == Total means nothing was pruned; the plan falls back to
// the plain scan path.
type PruneResult struct {
	Ranges     []SIDRange
	Total      int // blocks the unpruned scan would touch
	Kept       int
	ZoneSkips  int // blocks excluded by zone-map min/max
	IndexSkips int // blocks excluded by a secondary-index probe
}

// IndexProber is the narrow interface through which the engine consults a
// secondary-index set (package index implements it; the engine never imports
// it — the store carries the set as an opaque sidecar). CanSkip reports
// whether logical block blk of pred.Col provably holds no value satisfying
// pred; indexed=false means the index has no opinion (column not indexed, or
// predicate shape not answerable).
type IndexProber interface {
	CanSkip(pred Pred, blk int) (skip, indexed bool)
}

// pruneOff is the global pruning switch: differential suites flip it to
// compare pruned and unpruned executions of identical plans.
var pruneOff atomic.Bool

// SetPruning enables (default) or disables pre-scan block pruning globally.
// Flips are not synchronized with running plans; callers toggle it only
// between executions (the differential tests do).
func SetPruning(on bool) { pruneOff.Store(!on) }

// PruningEnabled reports the global pruning switch.
func PruningEnabled() bool { return !pruneOff.Load() }

// typedPreds collects the plan's prunable predicate descriptions.
func (p *Plan) typedPreds() []Pred {
	var preds []Pred
	for _, f := range p.filters {
		if f.pred.Op != PredNone {
			preds = append(preds, f.pred)
		}
	}
	return preds
}

// PruneFunc builds a PartScan.Prune hook over one store and the PDT layer
// stack pinned by the scan's snapshot (bottom-to-top; nil and empty layers
// are skipped). lo/hi are the PartScan's stable-SID bounds. Skipped blocks
// are counted on the store's device (Device.SkipStats).
func PruneFunc(store *colstore.Store, lo, hi uint64, layers ...*pdt.PDT) func(preds []Pred) *PruneResult {
	return func(preds []Pred) *PruneResult {
		return PruneBlocks(store, lo, hi, preds, layers...)
	}
}

// PruneBlocks resolves preds against store's zone maps and index sidecar for
// the stable range [lo, hi), never pruning a block the layer stack dirties.
// It returns nil when pruning does not apply (empty range or no predicates):
// in particular an empty stable range can still produce rows from delta-layer
// inserts, so it is never pruned away.
func PruneBlocks(store *colstore.Store, lo, hi uint64, preds []Pred, layers ...*pdt.PDT) *PruneResult {
	if hi <= lo || len(preds) == 0 {
		return nil
	}
	prober, _ := store.Aux().(IndexProber)
	// Fold the pinned layer stack to stable coordinates: entry SIDs of the
	// folded PDT address TABLE₀ positions, exactly what blocks are.
	var folded *pdt.PDT
	for _, l := range layers {
		if l == nil || l.Empty() {
			continue
		}
		if folded == nil {
			folded = l
			continue
		}
		f, err := pdt.Fold(folded, l)
		if err != nil {
			// A fold failure (schema mismatch) cannot happen for layers of one
			// table; decline pruning rather than fail the scan if it ever does.
			return nil
		}
		folded = f
	}
	var entries []pdt.Entry
	if folded != nil {
		entries = folded.Entries() // ascending SID
	}
	br := uint64(store.BlockRows())
	b0, b1 := lo/br, (hi-1)/br
	res := &PruneResult{Total: int(b1 - b0 + 1)}
	var zoneSkips, indexSkips int
	ei := 0
	for b := b0; b <= b1; b++ {
		blkLo, blkHi := b*br, (b+1)*br
		if blkHi > hi {
			blkHi = hi
		}
		for ei < len(entries) && entries[ei].SID < blkLo {
			ei++
		}
		dirty := ei < len(entries) && entries[ei].SID < blkHi
		if !dirty && b == b1 {
			// The scan's final block owns delta entries sitting exactly on
			// the range's end boundary (appends land at SID == hi); they can
			// qualify, so their presence keeps the block.
			for j := ei; j < len(entries) && entries[j].SID <= hi; j++ {
				if entries[j].SID == hi {
					dirty = true
					break
				}
			}
		}
		keep := true
		if !dirty {
			for _, pr := range preds {
				if z, ok := store.Zone(pr.Col, int(b)); ok && zoneExcludes(z, pr) {
					zoneSkips++
					keep = false
					break
				}
				if prober != nil {
					if skip, indexed := prober.CanSkip(pr, int(b)); indexed && skip {
						indexSkips++
						keep = false
						break
					}
				}
			}
		}
		if !keep {
			continue
		}
		res.Kept++
		rlo := blkLo
		if rlo < lo {
			rlo = lo
		}
		if n := len(res.Ranges); n > 0 && res.Ranges[n-1].Hi == rlo {
			res.Ranges[n-1].Hi = blkHi
		} else {
			res.Ranges = append(res.Ranges, SIDRange{Lo: rlo, Hi: blkHi})
		}
	}
	res.ZoneSkips, res.IndexSkips = zoneSkips, indexSkips
	store.Device().CountSkips(uint64(zoneSkips), uint64(indexSkips))
	return res
}

// zoneExcludes reports whether the zone proves no value of the block can
// satisfy p. Kind mismatches (a pred over a column whose zone holds another
// arm, or ZoneNone) never exclude.
func zoneExcludes(z storage.Zone, p Pred) bool {
	switch p.Op {
	case PredInt64Range:
		return z.Kind == storage.ZoneInt && (p.IHi < z.MinI || p.ILo > z.MaxI)
	case PredFloat64Range:
		return z.Kind == storage.ZoneFloat && (p.FHi < z.MinF || p.FLo > z.MaxF)
	case PredFloat64Lt:
		return z.Kind == storage.ZoneFloat && p.FHi <= z.MinF
	case PredStrEq:
		return z.Kind == storage.ZoneString && strOutsideZone(z, p.Strs[0])
	case PredStrIn:
		if z.Kind != storage.ZoneString {
			return false
		}
		for _, s := range p.Strs {
			if !strOutsideZone(z, s) {
				return false
			}
		}
		return true
	case PredStrPrefix:
		if z.Kind != storage.ZoneString {
			return false
		}
		pre := p.Strs[0]
		// Strings with prefix pre all sort >= pre, and the block's true max
		// is provably < pre when the stored max (or, truncated, every string
		// extending it) sorts below pre. Symmetrically for the min side.
		if strAboveBlockMax(z, pre) {
			return true
		}
		return z.MinS > pre && !strings.HasPrefix(z.MinS, pre)
	}
	return false
}

// strOutsideZone reports that x cannot occur in the block: every block value
// is provably < x or provably > x.
func strOutsideZone(z storage.Zone, x string) bool {
	return strAboveBlockMax(z, x) || z.MinS > x
}

// strAboveBlockMax reports that every string in the block is < x. With an
// untruncated max that is MaxS < x. A truncated MaxS is a prefix of the true
// max, so additionally x must not extend MaxS — if it does, the true max
// could still reach x.
func strAboveBlockMax(z storage.Zone, x string) bool {
	if !(z.MaxS < x) {
		return false
	}
	return !z.MaxSTrunc || !strings.HasPrefix(x, z.MaxS)
}
