package engine

// White-box tests for morsel carving: the invariants every parallel sink
// relies on — morsels tile the range exactly, interior boundaries are
// block-aligned, and exactly the final morsel carries last=true.

import "testing"

func TestMorselize(t *testing.T) {
	cases := []struct {
		lo, hi  uint64
		unit    int
		workers int
	}{
		{0, 100_000, 4096, 4},
		{0, 100_000, 4096, 1},
		{0, 1, 4096, 8},
		{8192, 50_000, 4096, 3},
		{0, 4096, 4096, 4},
		{0, 65536, 16, 8},
		{0, 10, 0, 2}, // unit <= 0 falls back to 1
	}
	for _, c := range cases {
		ms := morselize(c.lo, c.hi, c.unit, c.workers, nil)
		if len(ms) == 0 {
			t.Fatalf("morselize(%d,%d,%d,%d): no morsels", c.lo, c.hi, c.unit, c.workers)
		}
		unit := c.unit
		if unit <= 0 {
			unit = 1
		}
		at := c.lo
		for i, m := range ms {
			if m.lo != at {
				t.Fatalf("morselize(%+v): morsel %d starts at %d, want %d", c, i, m.lo, at)
			}
			if m.hi < m.lo || m.hi > c.hi {
				t.Fatalf("morselize(%+v): morsel %d = [%d,%d) out of range", c, i, m.lo, m.hi)
			}
			if i < len(ms)-1 && m.hi%uint64(unit) != 0 {
				t.Fatalf("morselize(%+v): interior boundary %d not a multiple of %d", c, m.hi, unit)
			}
			if m.last != (i == len(ms)-1) {
				t.Fatalf("morselize(%+v): morsel %d last=%v", c, i, m.last)
			}
			at = m.hi
		}
		if at != c.hi {
			t.Fatalf("morselize(%+v): morsels end at %d, want %d", c, at, c.hi)
		}
		if len(ms) > c.workers*morselsPerWorker+1 {
			t.Fatalf("morselize(%+v): %d morsels for %d workers", c, len(ms), c.workers)
		}
	}
}

func TestMorselizeEmptyRange(t *testing.T) {
	// An empty stable range still yields one (empty) last morsel: a delta
	// layer can hold inserts against an empty table, and some morsel must
	// own them.
	ms := morselize(0, 0, 4096, 4, nil)
	if len(ms) != 1 || ms[0].lo != 0 || ms[0].hi != 0 || !ms[0].last {
		t.Fatalf("empty range: %+v", ms)
	}
}
