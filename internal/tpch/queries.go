package tpch

// Column-accurate implementations of the 22 TPC-H queries. Every query builds
// its scan as an engine plan — source, typed filter kernels, projection
// pushdown — so I/O and merge cost land exactly where the paper measures
// them, and computes its result over (batch, selection) pairs with the exec
// toolkit plus plain Go. Simplifications relative to the SQL are semantic
// no-ops for the benchmark's purpose (e.g. correlated subqueries become
// two-pass maps) and are noted per query. Each query returns a deterministic
// fingerprint: sorted, formatted result rows.

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"pdtstore/internal/engine"
	"pdtstore/internal/exec"
	"pdtstore/internal/table"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

// Query is a named TPC-H query kernel.
type Query struct {
	ID   int
	Name string
	Run  func(db *DB) (string, error)
}

// Queries lists all 22 kernels in order.
var Queries = []Query{
	{1, "pricing summary report", Q1}, {2, "minimum cost supplier", Q2},
	{3, "shipping priority", Q3}, {4, "order priority checking", Q4},
	{5, "local supplier volume", Q5}, {6, "forecasting revenue change", Q6},
	{7, "volume shipping", Q7}, {8, "national market share", Q8},
	{9, "product type profit", Q9}, {10, "returned item reporting", Q10},
	{11, "important stock identification", Q11}, {12, "shipping modes priority", Q12},
	{13, "customer distribution", Q13}, {14, "promotion effect", Q14},
	{15, "top supplier", Q15}, {16, "parts/supplier relationship", Q16},
	{17, "small-quantity-order revenue", Q17}, {18, "large volume customer", Q18},
	{19, "discounted revenue", Q19}, {20, "potential part promotion", Q20},
	{21, "suppliers who kept orders waiting", Q21}, {22, "global sales opportunity", Q22},
}

// collect drains a projection of t into one dense batch via the engine.
func collect(t *table.Table, cols ...int) (*vector.Batch, error) {
	return engine.Scan(t, cols...).Collect()
}

// nationNames returns nationkey -> name and name -> regionkey lookups.
func (db *DB) nationMaps() (map[int64]string, map[int64]int64, error) {
	b, err := collect(db.Nation, NNationkey, NName, NRegionkey)
	if err != nil {
		return nil, nil, err
	}
	names := map[int64]string{}
	regions := map[int64]int64{}
	for i := 0; i < b.Len(); i++ {
		names[b.Vecs[0].I[i]] = b.Vecs[1].S[i]
		regions[b.Vecs[0].I[i]] = b.Vecs[2].I[i]
	}
	return names, regions, nil
}

func (db *DB) regionKey(name string) (int64, error) {
	b, err := engine.Scan(db.Region, RRegionkey).FilterStrEq(RName, name).Collect()
	if err != nil {
		return 0, err
	}
	if b.Len() == 0 {
		return 0, fmt.Errorf("tpch: region %q missing", name)
	}
	return b.Vecs[0].I[0], nil
}

func yearOf(days int64) int {
	return time.Unix(days*86400, 0).UTC().Year()
}

func lines(rows []string) string { return strings.Join(rows, "\n") }

// Q1 — Pricing Summary Report: one pass over lineitem, grouped by
// (returnflag, linestatus). The shipdate cutoff runs as a typed kernel on an
// unprojected column; group keys build in a reused scratch buffer so the
// per-row aggregation path allocates nothing. The aggregation runs
// partitioned: each scan partition folds into its own GroupAgg, and the
// partials merge in partition order afterwards — parallel end to end, with a
// result independent of how partitions landed on workers.
func Q1(db *DB) (string, error) {
	cutoff := Days(1998, 12, 1) - 90
	type q1part struct {
		agg *exec.GroupAgg // qty, extprice, discprice, charge
		kb  []byte
	}
	var parts []q1part
	err := engine.Scan(db.Lineitem,
		LQuantity, LExtendedprice, LDiscount, LTax, LReturnflag, LLinestatus).
		FilterInt64Le(LShipdate, cutoff).
		RunPartitioned(
			func(n int) error { parts = make([]q1part, n); return nil },
			func(part int, b *vector.Batch, sel []uint32) error {
				pt := &parts[part]
				if pt.agg == nil {
					pt.agg = exec.NewGroupAgg(4)
				}
				qtyC, priceC, discC, taxC := b.Vecs[0].F, b.Vecs[1].F, b.Vecs[2].F, b.Vecs[3].F
				rfC, lsC := b.Vecs[4].S, b.Vecs[5].S
				for _, i := range sel {
					rf, ls := rfC[i], lsC[i]
					pt.kb = append(append(append(pt.kb[:0], rf...), 0), ls...)
					cells := pt.agg.TouchKey(pt.kb, func() types.Row {
						return types.Row{types.Str(rf), types.Str(ls)}
					})
					qty, price, disc, tax := qtyC[i], priceC[i], discC[i], taxC[i]
					cells[0].Add(qty)
					cells[1].Add(price)
					cells[2].Add(price * (1 - disc))
					cells[3].Add(price * (1 - disc) * (1 + tax))
				}
				return nil
			})
	if err != nil {
		return "", err
	}
	agg := exec.NewGroupAgg(4)
	for i := range parts {
		if parts[i].agg != nil {
			agg.Merge(parts[i].agg)
		}
	}
	var out []string
	for _, r := range agg.Results() {
		out = append(out, exec.FormatRow(r.Key[0].S, r.Key[1].S,
			r.Aggs[0].Sum, r.Aggs[1].Sum, r.Aggs[2].Sum, r.Aggs[3].Sum,
			r.Aggs[0].Avg(), r.Aggs[1].Avg(), r.Aggs[0].Count))
	}
	return lines(out), nil
}

// Q2 — Minimum Cost Supplier in EUROPE for size-15 %BRASS parts.
func Q2(db *DB) (string, error) {
	names, regionOf, err := db.nationMaps()
	if err != nil {
		return "", err
	}
	europe, err := db.regionKey("EUROPE")
	if err != nil {
		return "", err
	}
	wanted := map[int64]string{} // partkey -> mfgr
	err = engine.Scan(db.Part, PPartkey, PMfgr, PType).
		FilterInt64Eq(PSize, 15).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				if strings.HasSuffix(b.Vecs[2].S[i], "BRASS") {
					wanted[b.Vecs[0].I[i]] = b.Vecs[1].S[i]
				}
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	supp, err := collect(db.Supplier, SSuppkey, SName, SNationkey, SAcctbal)
	if err != nil {
		return "", err
	}
	suppInfo := map[int64]int{} // suppkey -> row index (European only)
	for i := 0; i < supp.Len(); i++ {
		if regionOf[supp.Vecs[2].I[i]] == europe {
			suppInfo[supp.Vecs[0].I[i]] = i
		}
	}
	type best struct {
		cost float64
		row  int
	}
	mins := map[int64]best{}
	err = engine.Scan(db.PartSupp, PSPartkey, PSSuppkey, PSSupplycost).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				pk := b.Vecs[0].I[i]
				if _, ok := wanted[pk]; !ok {
					continue
				}
				si, ok := suppInfo[b.Vecs[1].I[i]]
				if !ok {
					continue
				}
				c := b.Vecs[2].F[i]
				if cur, ok := mins[pk]; !ok || c < cur.cost {
					mins[pk] = best{c, si}
				}
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	var out []string
	for pk, m := range mins {
		out = append(out, exec.FormatRow(supp.Vecs[3].F[m.row], supp.Vecs[1].S[m.row],
			names[supp.Vecs[2].I[m.row]], pk, wanted[pk]))
	}
	sort.Sort(sort.Reverse(sort.StringSlice(out)))
	if len(out) > 100 {
		out = out[:100]
	}
	return lines(out), nil
}

// Q3 — Shipping Priority: top 10 unshipped BUILDING orders by revenue.
func Q3(db *DB) (string, error) {
	date := Days(1995, 3, 15)
	building := map[int64]bool{}
	err := engine.Scan(db.Customer, CCustkey).
		FilterStrEq(CMktsegment, "BUILDING").
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				building[b.Vecs[0].I[i]] = true
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	type ordInfo struct {
		date int64
		prio int64
	}
	ords := map[int64]ordInfo{}
	err = engine.Scan(db.Orders, OOrderdate, OOrderkey, OCustkey, OShippriority).
		Range(nil, types.Row{types.DateVal(date - 1)}).
		FilterInt64Le(OOrderdate, date-1).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				if building[b.Vecs[2].I[i]] {
					ords[b.Vecs[1].I[i]] = ordInfo{b.Vecs[0].I[i], b.Vecs[3].I[i]}
				}
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	rev := map[int64]float64{}
	err = engine.Scan(db.Lineitem, LOrderkey, LExtendedprice, LDiscount).
		FilterInt64Ge(LShipdate, date+1).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				ok := b.Vecs[0].I[i]
				if _, hit := ords[ok]; hit {
					rev[ok] += b.Vecs[1].F[i] * (1 - b.Vecs[2].F[i])
				}
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	var out []string
	for ok, r := range rev {
		out = append(out, exec.FormatRow(r, ok, ords[ok].date, ords[ok].prio))
	}
	sort.Sort(sort.Reverse(sort.StringSlice(out)))
	if len(out) > 10 {
		out = out[:10]
	}
	return lines(out), nil
}

// Q4 — Order Priority Checking in 1993Q3.
func Q4(db *DB) (string, error) {
	lo, hi := Days(1993, 7, 1), Days(1993, 10, 1)
	late := map[int64]bool{}
	err := engine.Scan(db.Lineitem, LOrderkey, LCommitdate, LReceiptdate).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				if b.Vecs[1].I[i] < b.Vecs[2].I[i] {
					late[b.Vecs[0].I[i]] = true
				}
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	counts := map[string]int{}
	err = engine.Scan(db.Orders, OOrderkey, OOrderpriority).
		Range(types.Row{types.DateVal(lo)}, types.Row{types.DateVal(hi - 1)}).
		FilterInt64Range(OOrderdate, lo, hi-1).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				if late[b.Vecs[0].I[i]] {
					counts[b.Vecs[1].S[i]]++
				}
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	var out []string
	for p, c := range counts {
		out = append(out, exec.FormatRow(p, c))
	}
	sort.Strings(out)
	return lines(out), nil
}

// Q5 — Local Supplier Volume in ASIA during 1994.
func Q5(db *DB) (string, error) {
	names, regionOf, err := db.nationMaps()
	if err != nil {
		return "", err
	}
	asia, err := db.regionKey("ASIA")
	if err != nil {
		return "", err
	}
	cust, err := collect(db.Customer, CCustkey, CNationkey)
	if err != nil {
		return "", err
	}
	custNation := map[int64]int64{}
	for i := 0; i < cust.Len(); i++ {
		if regionOf[cust.Vecs[1].I[i]] == asia {
			custNation[cust.Vecs[0].I[i]] = cust.Vecs[1].I[i]
		}
	}
	supp, err := collect(db.Supplier, SSuppkey, SNationkey)
	if err != nil {
		return "", err
	}
	suppNation := map[int64]int64{}
	for i := 0; i < supp.Len(); i++ {
		suppNation[supp.Vecs[0].I[i]] = supp.Vecs[1].I[i]
	}
	lo, hi := Days(1994, 1, 1), Days(1995, 1, 1)
	ordNation := map[int64]int64{} // orderkey -> customer nation
	err = engine.Scan(db.Orders, OOrderkey, OCustkey).
		Range(types.Row{types.DateVal(lo)}, types.Row{types.DateVal(hi - 1)}).
		FilterInt64Range(OOrderdate, lo, hi-1).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				if n, ok := custNation[b.Vecs[1].I[i]]; ok {
					ordNation[b.Vecs[0].I[i]] = n
				}
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	revByNation := map[int64]float64{}
	err = engine.Scan(db.Lineitem, LOrderkey, LSuppkey, LExtendedprice, LDiscount).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				n, ok := ordNation[b.Vecs[0].I[i]]
				if ok && suppNation[b.Vecs[1].I[i]] == n {
					revByNation[n] += b.Vecs[2].F[i] * (1 - b.Vecs[3].F[i])
				}
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	var out []string
	for n, r := range revByNation {
		out = append(out, exec.FormatRow(names[n], r))
	}
	sort.Strings(out)
	return lines(out), nil
}

// Q6 — Forecasting Revenue Change: the canonical selection-vector pipeline —
// three typed kernels narrow the selection, the sink sums two projected
// columns, and the shipdate/quantity filter columns never reach the sink's
// arithmetic.
func Q6(db *DB) (string, error) {
	lo, hi := Days(1994, 1, 1), Days(1995, 1, 1)
	// Partitioned sum: per-partition partial totals folded in partition
	// order, so the float result is the same whatever the worker schedule.
	var partials []float64
	err := engine.Scan(db.Lineitem, LExtendedprice, LDiscount).
		FilterInt64Range(LShipdate, lo, hi-1).
		FilterFloat64Range(LDiscount, 0.05, 0.07).
		FilterFloat64Lt(LQuantity, 24).
		RunPartitioned(
			func(n int) error { partials = make([]float64, n); return nil },
			func(part int, b *vector.Batch, sel []uint32) error {
				price, disc := b.Vecs[0].F, b.Vecs[1].F
				for _, i := range sel {
					partials[part] += price[i] * disc[i]
				}
				return nil
			})
	if err != nil {
		return "", err
	}
	total := 0.0
	for _, s := range partials {
		total += s
	}
	return exec.FormatRow(total), nil
}

// Q7 — Volume Shipping between FRANCE and GERMANY, 1995–1996.
func Q7(db *DB) (string, error) {
	names, _, err := db.nationMaps()
	if err != nil {
		return "", err
	}
	var fr, de int64 = -1, -1
	for k, n := range names {
		if n == "FRANCE" {
			fr = k
		}
		if n == "GERMANY" {
			de = k
		}
	}
	supp, err := collect(db.Supplier, SSuppkey, SNationkey)
	if err != nil {
		return "", err
	}
	suppNation := map[int64]int64{}
	for i := 0; i < supp.Len(); i++ {
		suppNation[supp.Vecs[0].I[i]] = supp.Vecs[1].I[i]
	}
	cust, err := collect(db.Customer, CCustkey, CNationkey)
	if err != nil {
		return "", err
	}
	custNation := map[int64]int64{}
	for i := 0; i < cust.Len(); i++ {
		custNation[cust.Vecs[0].I[i]] = cust.Vecs[1].I[i]
	}
	ordCustNation := map[int64]int64{}
	err = engine.Scan(db.Orders, OOrderkey, OCustkey).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				ordCustNation[b.Vecs[0].I[i]] = custNation[b.Vecs[1].I[i]]
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	lo, hi := Days(1995, 1, 1), Days(1996, 12, 31)
	vol := map[string]float64{}
	err = engine.Scan(db.Lineitem, LOrderkey, LSuppkey, LExtendedprice, LDiscount, LShipdate).
		FilterInt64Range(LShipdate, lo, hi).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				sn := suppNation[b.Vecs[1].I[i]]
				cn := ordCustNation[b.Vecs[0].I[i]]
				if (sn == fr && cn == de) || (sn == de && cn == fr) {
					key := fmt.Sprintf("%s|%s|%d", names[sn], names[cn], yearOf(b.Vecs[4].I[i]))
					vol[key] += b.Vecs[2].F[i] * (1 - b.Vecs[3].F[i])
				}
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	var out []string
	for k, v := range vol {
		out = append(out, exec.FormatRow(k, v))
	}
	sort.Strings(out)
	return lines(out), nil
}

// Q8 — National Market Share of BRAZIL in AMERICA for one part type.
func Q8(db *DB) (string, error) {
	names, regionOf, err := db.nationMaps()
	if err != nil {
		return "", err
	}
	america, err := db.regionKey("AMERICA")
	if err != nil {
		return "", err
	}
	wanted := map[int64]bool{}
	err = engine.Scan(db.Part, PPartkey).
		FilterStrEq(PType, "ECONOMY ANODIZED STEEL").
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				wanted[b.Vecs[0].I[i]] = true
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	cust, err := collect(db.Customer, CCustkey, CNationkey)
	if err != nil {
		return "", err
	}
	amCust := map[int64]bool{}
	for i := 0; i < cust.Len(); i++ {
		if regionOf[cust.Vecs[1].I[i]] == america {
			amCust[cust.Vecs[0].I[i]] = true
		}
	}
	supp, err := collect(db.Supplier, SSuppkey, SNationkey)
	if err != nil {
		return "", err
	}
	suppNation := map[int64]int64{}
	for i := 0; i < supp.Len(); i++ {
		suppNation[supp.Vecs[0].I[i]] = supp.Vecs[1].I[i]
	}
	lo, hi := Days(1995, 1, 1), Days(1996, 12, 31)
	ordYear := map[int64]int{}
	err = engine.Scan(db.Orders, OOrderdate, OOrderkey, OCustkey).
		Range(types.Row{types.DateVal(lo)}, types.Row{types.DateVal(hi)}).
		FilterInt64Range(OOrderdate, lo, hi).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				if amCust[b.Vecs[2].I[i]] {
					ordYear[b.Vecs[1].I[i]] = yearOf(b.Vecs[0].I[i])
				}
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	totals := map[int]float64{}
	brazil := map[int]float64{}
	err = engine.Scan(db.Lineitem, LOrderkey, LPartkey, LSuppkey, LExtendedprice, LDiscount).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				if !wanted[b.Vecs[1].I[i]] {
					continue
				}
				y, ok := ordYear[b.Vecs[0].I[i]]
				if !ok {
					continue
				}
				v := b.Vecs[3].F[i] * (1 - b.Vecs[4].F[i])
				totals[y] += v
				if names[suppNation[b.Vecs[2].I[i]]] == "BRAZIL" {
					brazil[y] += v
				}
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	var out []string
	for y, tot := range totals {
		share := 0.0
		if tot > 0 {
			share = brazil[y] / tot
		}
		out = append(out, exec.FormatRow(y, share))
	}
	sort.Strings(out)
	return lines(out), nil
}

// Q9 — Product Type Profit Measure for %green% parts.
func Q9(db *DB) (string, error) {
	names, _, err := db.nationMaps()
	if err != nil {
		return "", err
	}
	wanted := map[int64]bool{}
	err = engine.Scan(db.Part, PPartkey).
		FilterStrContains(PName, "green").
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				wanted[b.Vecs[0].I[i]] = true
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	supp, err := collect(db.Supplier, SSuppkey, SNationkey)
	if err != nil {
		return "", err
	}
	suppNation := map[int64]int64{}
	for i := 0; i < supp.Len(); i++ {
		suppNation[supp.Vecs[0].I[i]] = supp.Vecs[1].I[i]
	}
	cost := map[[2]int64]float64{}
	err = engine.Scan(db.PartSupp, PSPartkey, PSSuppkey, PSSupplycost).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				if wanted[b.Vecs[0].I[i]] {
					cost[[2]int64{b.Vecs[0].I[i], b.Vecs[1].I[i]}] = b.Vecs[2].F[i]
				}
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	ordYear := map[int64]int{}
	err = engine.Scan(db.Orders, OOrderdate, OOrderkey).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				ordYear[b.Vecs[1].I[i]] = yearOf(b.Vecs[0].I[i])
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	profit := map[string]float64{}
	err = engine.Scan(db.Lineitem,
		LOrderkey, LPartkey, LSuppkey, LQuantity, LExtendedprice, LDiscount).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				pk := b.Vecs[1].I[i]
				if !wanted[pk] {
					continue
				}
				sk := b.Vecs[2].I[i]
				c, ok := cost[[2]int64{pk, sk}]
				if !ok {
					continue
				}
				amount := b.Vecs[4].F[i]*(1-b.Vecs[5].F[i]) - c*b.Vecs[3].F[i]
				key := fmt.Sprintf("%s|%d", names[suppNation[sk]], ordYear[b.Vecs[0].I[i]])
				profit[key] += amount
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	var out []string
	for k, v := range profit {
		out = append(out, exec.FormatRow(k, v))
	}
	sort.Strings(out)
	return lines(out), nil
}

// Q10 — Returned Item Reporting, 1993Q4 customers, top 20 by lost revenue.
func Q10(db *DB) (string, error) {
	lo, hi := Days(1993, 10, 1), Days(1994, 1, 1)
	ordCust := map[int64]int64{}
	err := engine.Scan(db.Orders, OOrderkey, OCustkey).
		Range(types.Row{types.DateVal(lo)}, types.Row{types.DateVal(hi - 1)}).
		FilterInt64Range(OOrderdate, lo, hi-1).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				ordCust[b.Vecs[0].I[i]] = b.Vecs[1].I[i]
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	rev := map[int64]float64{}
	err = engine.Scan(db.Lineitem, LOrderkey, LExtendedprice, LDiscount).
		FilterStrEq(LReturnflag, "R").
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				if ck, ok := ordCust[b.Vecs[0].I[i]]; ok {
					rev[ck] += b.Vecs[1].F[i] * (1 - b.Vecs[2].F[i])
				}
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	names, _, err := db.nationMaps()
	if err != nil {
		return "", err
	}
	cust, err := collect(db.Customer, CCustkey, CName, CAcctbal, CNationkey, CPhone)
	if err != nil {
		return "", err
	}
	var out []string
	for i := 0; i < cust.Len(); i++ {
		ck := cust.Vecs[0].I[i]
		if r, ok := rev[ck]; ok {
			out = append(out, exec.FormatRow(r, ck, cust.Vecs[1].S[i],
				cust.Vecs[2].F[i], names[cust.Vecs[3].I[i]], cust.Vecs[4].S[i]))
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(out)))
	if len(out) > 20 {
		out = out[:20]
	}
	return lines(out), nil
}

// Q11 — Important Stock Identification in GERMANY. The value threshold is a
// fixed fraction (0.001) of the national total; dbgen scales it by 1/SF,
// which at bench scale would select almost nothing.
func Q11(db *DB) (string, error) {
	names, _, err := db.nationMaps()
	if err != nil {
		return "", err
	}
	supp, err := collect(db.Supplier, SSuppkey, SNationkey)
	if err != nil {
		return "", err
	}
	german := map[int64]bool{}
	for i := 0; i < supp.Len(); i++ {
		if names[supp.Vecs[1].I[i]] == "GERMANY" {
			german[supp.Vecs[0].I[i]] = true
		}
	}
	value := map[int64]float64{}
	total := 0.0
	err = engine.Scan(db.PartSupp, PSPartkey, PSSuppkey, PSAvailqty, PSSupplycost).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				if german[b.Vecs[1].I[i]] {
					v := b.Vecs[3].F[i] * float64(b.Vecs[2].I[i])
					value[b.Vecs[0].I[i]] += v
					total += v
				}
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	var out []string
	for pk, v := range value {
		if v > total*0.001 {
			out = append(out, exec.FormatRow(pk, v))
		}
	}
	sort.Strings(out)
	return lines(out), nil
}

// Q12 — Shipping Modes and Order Priority, MAIL/SHIP in 1994. The mode
// IN-list and receipt-date window run as kernels; the commit-vs-receipt and
// ship-vs-commit column comparisons stay in the sink.
func Q12(db *DB) (string, error) {
	lo, hi := Days(1994, 1, 1), Days(1995, 1, 1)
	ordPrio := map[int64]string{}
	err := engine.Scan(db.Orders, OOrderkey, OOrderpriority).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				ordPrio[b.Vecs[0].I[i]] = b.Vecs[1].S[i]
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	high := map[string]int{}
	low := map[string]int{}
	err = engine.Scan(db.Lineitem, LOrderkey, LShipdate, LCommitdate, LReceiptdate, LShipmode).
		FilterStrIn(LShipmode, "MAIL", "SHIP").
		FilterInt64Range(LReceiptdate, lo, hi-1).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				r := b.Vecs[3].I[i]
				if b.Vecs[2].I[i] >= r || b.Vecs[1].I[i] >= b.Vecs[2].I[i] {
					continue
				}
				mode := b.Vecs[4].S[i]
				p := ordPrio[b.Vecs[0].I[i]]
				if p == "1-URGENT" || p == "2-HIGH" {
					high[mode]++
				} else {
					low[mode]++
				}
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	var out []string
	for _, mode := range []string{"MAIL", "SHIP"} {
		out = append(out, exec.FormatRow(mode, high[mode], low[mode]))
	}
	return lines(out), nil
}

// Q13 — Customer Distribution: orders per customer, excluding
// "special…requests" comments, histogrammed.
func Q13(db *DB) (string, error) {
	perCust := map[int64]int{}
	err := engine.Scan(db.Orders, OCustkey, OComment).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				c := b.Vecs[1].S[i]
				if si := strings.Index(c, "special"); si >= 0 && strings.Contains(c[si:], "requests") {
					continue
				}
				perCust[b.Vecs[0].I[i]]++
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	hist := map[int]int{}
	cust, err := collect(db.Customer, CCustkey)
	if err != nil {
		return "", err
	}
	for i := 0; i < cust.Len(); i++ {
		hist[perCust[cust.Vecs[0].I[i]]]++
	}
	var out []string
	for c, n := range hist {
		out = append(out, fmt.Sprintf("%04d|%d", c, n))
	}
	sort.Sort(sort.Reverse(sort.StringSlice(out)))
	return lines(out), nil
}

// Q14 — Promotion Effect, September 1995.
func Q14(db *DB) (string, error) {
	promo := map[int64]bool{}
	err := engine.Scan(db.Part, PPartkey).
		FilterStrPrefix(PType, "PROMO").
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				promo[b.Vecs[0].I[i]] = true
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	lo, hi := Days(1995, 9, 1), Days(1995, 10, 1)
	promoRev, totalRev := 0.0, 0.0
	err = engine.Scan(db.Lineitem, LPartkey, LExtendedprice, LDiscount).
		FilterInt64Range(LShipdate, lo, hi-1).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				v := b.Vecs[1].F[i] * (1 - b.Vecs[2].F[i])
				totalRev += v
				if promo[b.Vecs[0].I[i]] {
					promoRev += v
				}
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	pct := 0.0
	if totalRev > 0 {
		pct = 100 * promoRev / totalRev
	}
	return exec.FormatRow(pct), nil
}

// Q15 — Top Supplier by 1996Q1 revenue.
func Q15(db *DB) (string, error) {
	lo, hi := Days(1996, 1, 1), Days(1996, 4, 1)
	rev := map[int64]float64{}
	err := engine.Scan(db.Lineitem, LSuppkey, LExtendedprice, LDiscount).
		FilterInt64Range(LShipdate, lo, hi-1).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				rev[b.Vecs[0].I[i]] += b.Vecs[1].F[i] * (1 - b.Vecs[2].F[i])
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	best := 0.0
	for _, r := range rev {
		if r > best {
			best = r
		}
	}
	supp, err := collect(db.Supplier, SSuppkey, SName, SAddress, SPhone)
	if err != nil {
		return "", err
	}
	var out []string
	for i := 0; i < supp.Len(); i++ {
		if r, ok := rev[supp.Vecs[0].I[i]]; ok && r == best && best > 0 {
			out = append(out, exec.FormatRow(supp.Vecs[0].I[i], supp.Vecs[1].S[i],
				supp.Vecs[2].S[i], supp.Vecs[3].S[i], r))
		}
	}
	sort.Strings(out)
	return lines(out), nil
}

// Q16 — Parts/Supplier Relationship: distinct non-complaint suppliers per
// (brand, type, size) bucket.
func Q16(db *DB) (string, error) {
	supp, err := collect(db.Supplier, SSuppkey, SComment)
	if err != nil {
		return "", err
	}
	complaints := map[int64]bool{}
	for i := 0; i < supp.Len(); i++ {
		c := supp.Vecs[1].S[i]
		if si := strings.Index(c, "Customer"); si >= 0 && strings.Contains(c[si:], "Complaints") {
			complaints[supp.Vecs[0].I[i]] = true
		}
	}
	sizes := map[int64]bool{49: true, 14: true, 23: true, 45: true, 19: true, 3: true, 36: true, 9: true}
	parts, err := collect(db.Part, PPartkey, PBrand, PType, PSize)
	if err != nil {
		return "", err
	}
	bucket := map[int64]string{}
	for i := 0; i < parts.Len(); i++ {
		brand, ptype, size := parts.Vecs[1].S[i], parts.Vecs[2].S[i], parts.Vecs[3].I[i]
		if brand == "Brand#45" || strings.HasPrefix(ptype, "MEDIUM POLISHED") || !sizes[size] {
			continue
		}
		bucket[parts.Vecs[0].I[i]] = fmt.Sprintf("%s|%s|%d", brand, ptype, size)
	}
	supSets := map[string]map[int64]bool{}
	err = engine.Scan(db.PartSupp, PSPartkey, PSSuppkey).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				key, ok := bucket[b.Vecs[0].I[i]]
				if !ok || complaints[b.Vecs[1].I[i]] {
					continue
				}
				if supSets[key] == nil {
					supSets[key] = map[int64]bool{}
				}
				supSets[key][b.Vecs[1].I[i]] = true
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	var out []string
	for key, set := range supSets {
		out = append(out, fmt.Sprintf("%04d|%s", len(set), key))
	}
	sort.Sort(sort.Reverse(sort.StringSlice(out)))
	if len(out) > 40 {
		out = out[:40]
	}
	return lines(out), nil
}

// Q17 — Small-Quantity-Order Revenue for Brand#23 MED BOX parts.
func Q17(db *DB) (string, error) {
	wanted := map[int64]bool{}
	err := engine.Scan(db.Part, PPartkey).
		FilterStrEq(PBrand, "Brand#23").
		FilterStrEq(PContainer, "MED BOX").
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				wanted[b.Vecs[0].I[i]] = true
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	sums := map[int64]*exec.Agg{}
	err = engine.Scan(db.Lineitem, LPartkey, LQuantity).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				pk := b.Vecs[0].I[i]
				if wanted[pk] {
					if sums[pk] == nil {
						sums[pk] = &exec.Agg{}
					}
					sums[pk].Add(b.Vecs[1].F[i])
				}
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	total := 0.0
	err = engine.Scan(db.Lineitem, LPartkey, LQuantity, LExtendedprice).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				pk := b.Vecs[0].I[i]
				if a := sums[pk]; a != nil && b.Vecs[1].F[i] < 0.2*a.Avg() {
					total += b.Vecs[2].F[i]
				}
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	return exec.FormatRow(total / 7), nil
}

// Q18 — Large Volume Customers: orders with more than 300 total quantity.
// (dbgen's threshold; at small scale the result may legitimately be empty.)
func Q18(db *DB) (string, error) {
	qty := map[int64]float64{}
	err := engine.Scan(db.Lineitem, LOrderkey, LQuantity).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				qty[b.Vecs[0].I[i]] += b.Vecs[1].F[i]
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	big := map[int64]float64{}
	for ok, q := range qty {
		if q > 300 {
			big[ok] = q
		}
	}
	var out []string
	err = engine.Scan(db.Orders, OOrderdate, OOrderkey, OCustkey, OTotalprice).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				okey := b.Vecs[1].I[i]
				if q, hit := big[okey]; hit {
					out = append(out, exec.FormatRow(b.Vecs[3].F[i], b.Vecs[0].I[i],
						okey, b.Vecs[2].I[i], q))
				}
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	sort.Sort(sort.Reverse(sort.StringSlice(out)))
	if len(out) > 100 {
		out = out[:100]
	}
	return lines(out), nil
}

// Q19 — Discounted Revenue: three OR-ed (brand, container, quantity) cases.
// The shared shipmode/shipinstruct conjuncts run as kernels; the OR of part
// attributes stays in the sink.
func Q19(db *DB) (string, error) {
	parts, err := collect(db.Part, PPartkey, PBrand, PContainer, PSize)
	if err != nil {
		return "", err
	}
	type pinfo struct {
		brand, container string
		size             int64
	}
	info := map[int64]pinfo{}
	for i := 0; i < parts.Len(); i++ {
		info[parts.Vecs[0].I[i]] = pinfo{parts.Vecs[1].S[i], parts.Vecs[2].S[i], parts.Vecs[3].I[i]}
	}
	total := 0.0
	err = engine.Scan(db.Lineitem, LPartkey, LQuantity, LExtendedprice, LDiscount).
		FilterStrIn(LShipmode, "AIR", "REG AIR").
		FilterStrEq(LShipinstruct, "DELIVER IN PERSON").
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				p, ok := info[b.Vecs[0].I[i]]
				if !ok {
					continue
				}
				q := b.Vecs[1].F[i]
				match := (p.brand == "Brand#12" && strings.HasPrefix(p.container, "SM") && q >= 1 && q <= 11 && p.size <= 5) ||
					(p.brand == "Brand#23" && strings.HasPrefix(p.container, "MED") && q >= 10 && q <= 20 && p.size <= 10) ||
					(p.brand == "Brand#34" && strings.HasPrefix(p.container, "LG") && q >= 20 && q <= 30 && p.size <= 15)
				if match {
					total += b.Vecs[2].F[i] * (1 - b.Vecs[3].F[i])
				}
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	return exec.FormatRow(total), nil
}

// Q20 — Potential Part Promotion: CANADA suppliers with surplus stock of
// forest% parts.
func Q20(db *DB) (string, error) {
	names, _, err := db.nationMaps()
	if err != nil {
		return "", err
	}
	forest := map[int64]bool{}
	err = engine.Scan(db.Part, PPartkey).
		FilterStrPrefix(PName, "forest").
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				forest[b.Vecs[0].I[i]] = true
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	lo, hi := Days(1994, 1, 1), Days(1995, 1, 1)
	shipped := map[[2]int64]float64{}
	err = engine.Scan(db.Lineitem, LPartkey, LSuppkey, LQuantity).
		FilterInt64Range(LShipdate, lo, hi-1).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				pk := b.Vecs[0].I[i]
				if forest[pk] {
					shipped[[2]int64{pk, b.Vecs[1].I[i]}] += b.Vecs[2].F[i]
				}
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	qualifying := map[int64]bool{}
	err = engine.Scan(db.PartSupp, PSPartkey, PSSuppkey, PSAvailqty).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				pk, sk := b.Vecs[0].I[i], b.Vecs[1].I[i]
				if !forest[pk] {
					continue
				}
				if float64(b.Vecs[2].I[i]) > 0.5*shipped[[2]int64{pk, sk}] && shipped[[2]int64{pk, sk}] > 0 {
					qualifying[sk] = true
				}
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	supp, err := collect(db.Supplier, SSuppkey, SName, SAddress, SNationkey)
	if err != nil {
		return "", err
	}
	var out []string
	for i := 0; i < supp.Len(); i++ {
		if qualifying[supp.Vecs[0].I[i]] && names[supp.Vecs[3].I[i]] == "CANADA" {
			out = append(out, exec.FormatRow(supp.Vecs[1].S[i], supp.Vecs[2].S[i]))
		}
	}
	sort.Strings(out)
	return lines(out), nil
}

// Q21 — Suppliers Who Kept Orders Waiting: SAUDI ARABIA suppliers solely
// responsible for late multi-supplier F-orders.
func Q21(db *DB) (string, error) {
	names, _, err := db.nationMaps()
	if err != nil {
		return "", err
	}
	supp, err := collect(db.Supplier, SSuppkey, SName, SNationkey)
	if err != nil {
		return "", err
	}
	saudi := map[int64]string{}
	for i := 0; i < supp.Len(); i++ {
		if names[supp.Vecs[2].I[i]] == "SAUDI ARABIA" {
			saudi[supp.Vecs[0].I[i]] = supp.Vecs[1].S[i]
		}
	}
	fOrders := map[int64]bool{}
	err = engine.Scan(db.Orders, OOrderkey).
		FilterStrEq(OOrderstatus, "F").
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				fOrders[b.Vecs[0].I[i]] = true
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	type ordState struct {
		supps map[int64]bool
		late  map[int64]bool
	}
	states := map[int64]*ordState{}
	err = engine.Scan(db.Lineitem, LOrderkey, LSuppkey, LCommitdate, LReceiptdate).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				okey := b.Vecs[0].I[i]
				if !fOrders[okey] {
					continue
				}
				st := states[okey]
				if st == nil {
					st = &ordState{supps: map[int64]bool{}, late: map[int64]bool{}}
					states[okey] = st
				}
				sk := b.Vecs[1].I[i]
				st.supps[sk] = true
				if b.Vecs[3].I[i] > b.Vecs[2].I[i] {
					st.late[sk] = true
				}
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	numwait := map[int64]int{}
	for _, st := range states {
		if len(st.late) != 1 || len(st.supps) < 2 {
			continue
		}
		for sk := range st.late {
			if _, ok := saudi[sk]; ok {
				numwait[sk]++
			}
		}
	}
	var out []string
	for sk, n := range numwait {
		out = append(out, fmt.Sprintf("%06d|%s", n, saudi[sk]))
	}
	sort.Sort(sort.Reverse(sort.StringSlice(out)))
	if len(out) > 100 {
		out = out[:100]
	}
	return lines(out), nil
}

// Q22 — Global Sales Opportunity: well-funded customers with no orders,
// grouped by phone prefix.
func Q22(db *DB) (string, error) {
	prefixes := map[string]bool{"13": true, "31": true, "23": true, "29": true, "30": true, "18": true, "17": true}
	cust, err := collect(db.Customer, CCustkey, CPhone, CAcctbal)
	if err != nil {
		return "", err
	}
	sum, n := 0.0, 0
	for i := 0; i < cust.Len(); i++ {
		if cust.Vecs[2].F[i] > 0 && prefixes[cust.Vecs[1].S[i][:2]] {
			sum += cust.Vecs[2].F[i]
			n++
		}
	}
	if n == 0 {
		return "", nil
	}
	avg := sum / float64(n)
	hasOrder := map[int64]bool{}
	err = engine.Scan(db.Orders, OCustkey).
		Run(func(b *vector.Batch, sel []uint32) error {
			for _, i := range sel {
				hasOrder[b.Vecs[0].I[i]] = true
			}
			return nil
		})
	if err != nil {
		return "", err
	}
	counts := map[string]*exec.Agg{}
	for i := 0; i < cust.Len(); i++ {
		pre := cust.Vecs[1].S[i][:2]
		bal := cust.Vecs[2].F[i]
		if !prefixes[pre] || bal <= avg || hasOrder[cust.Vecs[0].I[i]] {
			continue
		}
		if counts[pre] == nil {
			counts[pre] = &exec.Agg{}
		}
		counts[pre].Add(bal)
	}
	var out []string
	for pre, a := range counts {
		out = append(out, exec.FormatRow(pre, a.Count, a.Sum))
	}
	sort.Strings(out)
	return lines(out), nil
}
