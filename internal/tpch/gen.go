package tpch

// The deterministic data generator. Sizes follow dbgen's scaling rules
// (suppliers 10k·SF, customers 150k·SF, parts 200k·SF, partsupp 4 per part,
// orders 10 per customer, 1–7 lineitems per order), and order keys are
// sparse — 8 used slots per 32-key block — so the refresh streams can insert
// new orders *between* existing keys, scattering updates across the
// date-ordered orders table and the key-ordered lineitem table exactly as
// the paper's update workload requires.

import (
	"fmt"
	"math/rand"

	"pdtstore/internal/types"
)

// OrderMeta records what the refresh streams need to know about an order.
type OrderMeta struct {
	Key   int64
	Date  int64
	Lines int
}

// Gen holds generator state for one scale factor.
type Gen struct {
	SF        float64
	rng       *rand.Rand
	Suppliers int
	Customers int
	Parts     int
	NOrders   int

	Orders      []OrderMeta // generation-order metadata, indexed densely
	usedRefresh map[int64]bool
}

// NewGen creates a generator. Scale factors below ~0.0005 are clamped so
// every table has at least a handful of rows.
func NewGen(sf float64, seed int64) *Gen {
	atLeast := func(n int) int {
		if n < 3 {
			return 3
		}
		return n
	}
	g := &Gen{
		SF:          sf,
		rng:         rand.New(rand.NewSource(seed)),
		Suppliers:   atLeast(int(10000 * sf)),
		Customers:   atLeast(int(150000 * sf)),
		Parts:       atLeast(int(200000 * sf)),
		usedRefresh: map[int64]bool{},
	}
	g.NOrders = 10 * g.Customers
	return g
}

func (g *Gen) text(words int) string {
	out := ""
	for i := 0; i < words; i++ {
		if i > 0 {
			out += " "
		}
		switch g.rng.Intn(3) {
		case 0:
			out += colors[g.rng.Intn(len(colors))]
		case 1:
			out += nouns[g.rng.Intn(len(nouns))]
		default:
			out += verbs[g.rng.Intn(len(verbs))]
		}
	}
	return out
}

func (g *Gen) phone(nation int64) string {
	return fmt.Sprintf("%02d-%03d-%03d-%04d", 10+nation, g.rng.Intn(900)+100, g.rng.Intn(900)+100, g.rng.Intn(9000)+1000)
}

func (g *Gen) money(lo, hi float64) float64 {
	cents := g.rng.Int63n(int64((hi-lo)*100) + 1)
	return lo + float64(cents)/100
}

// orderKeyAt maps a dense order index to its sparse key (8 used per 32).
func orderKeyAt(i int) int64 {
	return int64(i/8)*32 + int64(i%8) + 1
}

// pickCustkey draws an ordering customer. Following dbgen, customers whose
// key is divisible by three never place orders (Q13/Q22 depend on this).
func (g *Gen) pickCustkey() int64 {
	for {
		k := int64(g.rng.Intn(g.Customers) + 1)
		if k%3 != 0 {
			return k
		}
	}
}

// RegionRows generates the region table.
func (g *Gen) RegionRows() []types.Row {
	rows := make([]types.Row, len(regionNames))
	for i, name := range regionNames {
		rows[i] = types.Row{types.Int(int64(i)), types.Str(name), types.Str(g.text(4))}
	}
	return rows
}

// NationRows generates the nation table.
func (g *Gen) NationRows() []types.Row {
	rows := make([]types.Row, len(nationDefs))
	for i, n := range nationDefs {
		rows[i] = types.Row{types.Int(int64(i)), types.Str(n.name), types.Int(n.region), types.Str(g.text(5))}
	}
	return rows
}

// SupplierRows generates the supplier table.
func (g *Gen) SupplierRows() []types.Row {
	rows := make([]types.Row, g.Suppliers)
	for i := range rows {
		key := int64(i + 1)
		nation := int64(g.rng.Intn(25))
		comment := g.text(6)
		// a deterministic sprinkling of the Q16 complaint marker
		if i%113 == 7 {
			comment += " Customer Complaints " + g.text(2)
		}
		rows[i] = types.Row{
			types.Int(key),
			types.Str(fmt.Sprintf("Supplier#%09d", key)),
			types.Str(g.text(3)),
			types.Int(nation),
			types.Str(g.phone(nation)),
			types.Float(g.money(-999.99, 9999.99)),
			types.Str(comment),
		}
	}
	return rows
}

// CustomerRows generates the customer table.
func (g *Gen) CustomerRows() []types.Row {
	rows := make([]types.Row, g.Customers)
	for i := range rows {
		key := int64(i + 1)
		nation := int64(g.rng.Intn(25))
		comment := g.text(8)
		if i%97 == 13 {
			comment += " special requests " + g.text(2)
		}
		rows[i] = types.Row{
			types.Int(key),
			types.Str(fmt.Sprintf("Customer#%09d", key)),
			types.Str(g.text(3)),
			types.Int(nation),
			types.Str(g.phone(nation)),
			types.Float(g.money(-999.99, 9999.99)),
			types.Str(segments[g.rng.Intn(len(segments))]),
			types.Str(comment),
		}
	}
	return rows
}

// PartRows generates the part table.
func (g *Gen) PartRows() []types.Row {
	rows := make([]types.Row, g.Parts)
	for i := range rows {
		key := int64(i + 1)
		mfgr := g.rng.Intn(5) + 1
		brand := mfgr*10 + g.rng.Intn(5) + 1
		ptype := typeSyl1[g.rng.Intn(len(typeSyl1))] + " " +
			typeSyl2[g.rng.Intn(len(typeSyl2))] + " " +
			typeSyl3[g.rng.Intn(len(typeSyl3))]
		rows[i] = types.Row{
			types.Int(key),
			types.Str(colors[g.rng.Intn(len(colors))] + " " + colors[g.rng.Intn(len(colors))]),
			types.Str(fmt.Sprintf("Manufacturer#%d", mfgr)),
			types.Str(fmt.Sprintf("Brand#%d", brand)),
			types.Str(ptype),
			types.Int(int64(g.rng.Intn(50) + 1)),
			types.Str(containers[g.rng.Intn(len(containers))]),
			types.Float(900 + float64(key%1000)/10),
			types.Str(g.text(4)),
		}
	}
	return rows
}

// PartSuppRows generates partsupp: up to four distinct suppliers per part.
func (g *Gen) PartSuppRows() []types.Row {
	perPart := 4
	if perPart > g.Suppliers {
		perPart = g.Suppliers
	}
	rows := make([]types.Row, 0, g.Parts*perPart)
	for p := 1; p <= g.Parts; p++ {
		seen := map[int64]bool{}
		for j := 0; len(seen) < perPart; j++ {
			s := int64((p+j*(g.Suppliers/4+1))%g.Suppliers + 1)
			if seen[s] {
				s = s%int64(g.Suppliers) + 1
				for seen[s] {
					s = s%int64(g.Suppliers) + 1
				}
			}
			seen[s] = true
			rows = append(rows, types.Row{
				types.Int(int64(p)),
				types.Int(s),
				types.Int(int64(g.rng.Intn(9999) + 1)),
				types.Float(g.money(1, 1000)),
				types.Str(g.text(6)),
			})
		}
	}
	// fix per-part supplier ordering (the formula emits out-of-order keys)
	sortRowsByKey(rows, PartSuppSchema)
	return rows
}

// orderRow materializes the orders tuple for meta (minus totalprice, which
// callers derive from the lineitems).
func (g *Gen) orderRow(meta OrderMeta, custkey int64, totalprice float64, anyOpen, allClosed bool) types.Row {
	status := "P"
	if allClosed {
		status = "F"
	} else if anyOpen {
		status = "O"
	}
	return types.Row{
		types.DateVal(meta.Date),
		types.Int(meta.Key),
		types.Int(custkey),
		types.Str(status),
		types.Float(totalprice),
		types.Str(priorities[g.rng.Intn(len(priorities))]),
		types.Str(fmt.Sprintf("Clerk#%09d", g.rng.Intn(1000)+1)),
		types.Int(0),
		types.Str(g.text(5)),
	}
}

// lineitemRows generates the lineitems of one order.
func (g *Gen) lineitemRows(meta OrderMeta) ([]types.Row, bool, bool) {
	rows := make([]types.Row, meta.Lines)
	anyOpen, allClosed := false, true
	for ln := 0; ln < meta.Lines; ln++ {
		qty := float64(g.rng.Intn(50) + 1)
		partkey := int64(g.rng.Intn(g.Parts) + 1)
		price := (900 + float64(partkey%1000)/10) * qty / 10
		shipdate := meta.Date + int64(g.rng.Intn(121)+1)
		commitdate := meta.Date + int64(g.rng.Intn(91)+30)
		receiptdate := shipdate + int64(g.rng.Intn(30)+1)
		returnflag := "N"
		if receiptdate <= Days(1995, 6, 17) {
			if g.rng.Intn(2) == 0 {
				returnflag = "R"
			} else {
				returnflag = "A"
			}
		}
		linestatus := "O"
		if shipdate <= Days(1995, 6, 17) {
			linestatus = "F"
		} else {
			anyOpen = true
		}
		if linestatus == "O" {
			allClosed = false
		}
		rows[ln] = types.Row{
			types.Int(meta.Key),
			types.Int(int64(ln + 1)),
			types.Int(partkey),
			types.Int(int64((partkey+int64(ln))%int64(g.Suppliers) + 1)),
			types.Float(qty),
			types.Float(price),
			types.Float(float64(g.rng.Intn(11)) / 100),
			types.Float(float64(g.rng.Intn(9)) / 100),
			types.Str(returnflag),
			types.Str(linestatus),
			types.DateVal(shipdate),
			types.DateVal(commitdate),
			types.DateVal(receiptdate),
			types.Str(instructs[g.rng.Intn(len(instructs))]),
			types.Str(shipmodes[g.rng.Intn(len(shipmodes))]),
			types.Str(g.text(4)),
		}
	}
	return rows, anyOpen, allClosed
}

// OrdersAndLineitems generates both big tables, each sorted by its sort key.
func (g *Gen) OrdersAndLineitems() (orders, lineitems []types.Row) {
	g.Orders = make([]OrderMeta, g.NOrders)
	lineitems = make([]types.Row, 0, g.NOrders*4)
	orders = make([]types.Row, 0, g.NOrders)
	for i := 0; i < g.NOrders; i++ {
		meta := OrderMeta{
			Key:   orderKeyAt(i),
			Date:  startDate + g.rng.Int63n(endDate-151-startDate+1),
			Lines: g.rng.Intn(7) + 1,
		}
		g.Orders[i] = meta
		lrows, anyOpen, allClosed := g.lineitemRows(meta)
		total := 0.0
		for _, lr := range lrows {
			total += lr[LExtendedprice].F * (1 + lr[LTax].F) * (1 - lr[LDiscount].F)
		}
		custkey := g.pickCustkey()
		orders = append(orders, g.orderRow(meta, custkey, total, anyOpen, allClosed))
		lineitems = append(lineitems, lrows...)
	}
	sortRowsByKey(orders, OrdersSchema) // (o_orderdate, o_orderkey) order
	return orders, lineitems            // lineitems are already key-ordered
}

// sortRowsByKey sorts rows by a schema's sort key.
func sortRowsByKey(rows []types.Row, schema *types.Schema) {
	sortSlice(rows, func(a, b types.Row) bool {
		return schema.CompareKeyRows(a, b) < 0
	})
}

func sortSlice(rows []types.Row, less func(a, b types.Row) bool) {
	// insertion-free: delegate to sort.Slice via a tiny wrapper to keep the
	// generator dependency-light
	quickSortRows(rows, less)
}

func quickSortRows(rows []types.Row, less func(a, b types.Row) bool) {
	if len(rows) < 2 {
		return
	}
	pivot := rows[len(rows)/2]
	left, right := 0, len(rows)-1
	for left <= right {
		for less(rows[left], pivot) {
			left++
		}
		for less(pivot, rows[right]) {
			right--
		}
		if left <= right {
			rows[left], rows[right] = rows[right], rows[left]
			left++
			right--
		}
	}
	quickSortRows(rows[:right+1], less)
	quickSortRows(rows[left:], less)
}

// RefreshOrder is one new order produced by RF1.
type RefreshOrder struct {
	Order     types.Row
	Lineitems []types.Row
}

// RF1 generates n new orders with keys drawn from the unused gap slots of
// existing 32-key blocks, so inserts scatter positionally across both big
// tables (the worst case §2 motivates).
func (g *Gen) RF1(n int) []RefreshOrder {
	out := make([]RefreshOrder, 0, n)
	for i := 0; i < n; i++ {
		var key int64
		for {
			block := g.rng.Intn((g.NOrders + 7) / 8)
			slot := 8 + g.rng.Intn(8) // gap slots 8..15 of the block
			key = int64(block)*32 + int64(slot) + 1
			if !g.usedRefresh[key] {
				g.usedRefresh[key] = true
				break
			}
		}
		meta := OrderMeta{
			Key:   key,
			Date:  startDate + g.rng.Int63n(endDate-151-startDate+1),
			Lines: g.rng.Intn(7) + 1,
		}
		lrows, anyOpen, allClosed := g.lineitemRows(meta)
		total := 0.0
		for _, lr := range lrows {
			total += lr[LExtendedprice].F * (1 + lr[LTax].F) * (1 - lr[LDiscount].F)
		}
		custkey := g.pickCustkey()
		out = append(out, RefreshOrder{
			Order:     g.orderRow(meta, custkey, total, anyOpen, allClosed),
			Lineitems: lrows,
		})
	}
	return out
}

// RF2 picks n distinct existing orders to delete.
func (g *Gen) RF2(n int) []OrderMeta {
	picked := map[int]bool{}
	out := make([]OrderMeta, 0, n)
	for len(out) < n && len(picked) < g.NOrders {
		i := g.rng.Intn(g.NOrders)
		if picked[i] {
			continue
		}
		picked[i] = true
		if g.Orders[i].Lines < 0 {
			continue // already deleted by an earlier stream
		}
		out = append(out, g.Orders[i])
		g.Orders[i].Lines = -1
	}
	return out
}
