package tpch

// Parallel differential over the whole workload: every TPC-H query must give
// byte-identical answers when every engine scan is forced onto the parallel
// path (threshold zero, several workers). Q1 and Q6 take the partitioned
// aggregation path — per-morsel partials merged in morsel order — so this
// also pins down that the combine step is scheduling-independent.

import (
	"testing"

	"pdtstore/internal/engine"
	"pdtstore/internal/table"
)

func TestQueriesParallelAgree(t *testing.T) {
	for _, mode := range []table.DeltaMode{table.ModeNone, table.ModePDT} {
		db := loadTest(t, mode)
		if mode == table.ModePDT {
			if err := db.ApplyRefresh(2, 0.005); err != nil {
				t.Fatal(err)
			}
		}
		serial := make([]string, len(Queries))
		for qi, q := range Queries {
			got, err := q.Run(db)
			if err != nil {
				t.Fatalf("Q%d (%v, serial): %v", q.ID, mode, err)
			}
			serial[qi] = got
		}

		func() {
			defer func(th, dw int) { engine.ParallelThreshold = th; engine.DefaultWorkers = dw }(
				engine.ParallelThreshold, engine.DefaultWorkers)
			engine.ParallelThreshold = 0
			engine.DefaultWorkers = 4
			for qi, q := range Queries {
				got, err := q.Run(db)
				if err != nil {
					t.Fatalf("Q%d (%v, parallel): %v", q.ID, mode, err)
				}
				if got != serial[qi] {
					t.Errorf("Q%d (%v) differs under forced parallelism:\nserial:\n%s\nparallel:\n%s",
						q.ID, mode, serial[qi], got)
				}
			}
		}()
	}
}
