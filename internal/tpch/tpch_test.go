package tpch

import (
	"testing"

	"pdtstore/internal/table"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

const testSF = 0.002 // ~30 customers, 300 orders, ~1200 lineitems

func loadTest(t *testing.T, mode table.DeltaMode) *DB {
	t.Helper()
	db, err := Load(testSF, mode, false, 256)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestGeneratorShapes(t *testing.T) {
	g := NewGen(testSF, 1)
	if g.Customers < 3 || g.Suppliers < 3 || g.Parts < 3 {
		t.Fatal("clamping failed")
	}
	orders, lineitems := g.OrdersAndLineitems()
	if len(orders) != g.NOrders {
		t.Fatalf("orders = %d, want %d", len(orders), g.NOrders)
	}
	if len(lineitems) < len(orders) {
		t.Fatal("fewer lineitems than orders")
	}
	// orders sorted by (date, key); keys sparse with gaps
	for i := 1; i < len(orders); i++ {
		if OrdersSchema.CompareKeyRows(orders[i-1], orders[i]) >= 0 {
			t.Fatalf("orders unsorted at %d", i)
		}
	}
	seen := map[int64]bool{}
	for _, o := range orders {
		k := o[OOrderkey].I
		if seen[k] {
			t.Fatalf("duplicate orderkey %d", k)
		}
		seen[k] = true
		if (k-1)%32 >= 8 {
			t.Fatalf("orderkey %d not in the 8-per-32 base range", k)
		}
	}
	// lineitems sorted by (orderkey, linenumber)
	for i := 1; i < len(lineitems); i++ {
		if LineitemSchema.CompareKeyRows(lineitems[i-1], lineitems[i]) >= 0 {
			t.Fatalf("lineitems unsorted at %d", i)
		}
	}
	// RF1 keys land in gaps and never duplicate
	rf := g.RF1(20)
	for _, ro := range rf {
		k := ro.Order[OOrderkey].I
		if (k-1)%32 < 8 {
			t.Fatalf("refresh key %d collides with base range", k)
		}
		if seen[k] {
			t.Fatalf("refresh key %d duplicated", k)
		}
		seen[k] = true
		if len(ro.Lineitems) < 1 {
			t.Fatal("refresh order without lineitems")
		}
	}
	// RF2 picks distinct existing orders
	dels := g.RF2(10)
	seenDel := map[int64]bool{}
	for _, m := range dels {
		if seenDel[m.Key] {
			t.Fatalf("RF2 picked order %d twice", m.Key)
		}
		seenDel[m.Key] = true
	}
}

func TestLoadAndRowCounts(t *testing.T) {
	db := loadTest(t, table.ModePDT)
	if db.Region.NRows() != 5 || db.Nation.NRows() != 25 {
		t.Fatal("dimension tables wrong size")
	}
	if db.Orders.NRows() == 0 || db.Lineitem.NRows() == 0 {
		t.Fatal("big tables empty")
	}
	for name, tbl := range db.Tables() {
		if tbl == nil {
			t.Fatalf("table %s nil", name)
		}
	}
}

func TestRefreshStreamsChangeData(t *testing.T) {
	db := loadTest(t, table.ModePDT)
	if err := db.ApplyRefresh(2, 0.01); err != nil {
		t.Fatal(err)
	}
	// RF1 and RF2 roughly balance, so check the delta structures directly.
	oi, od, _ := db.Orders.PDT().Counts()
	if oi == 0 || od == 0 {
		t.Fatalf("orders PDT after refresh: ins=%d del=%d", oi, od)
	}
	li, ld, _ := db.Lineitem.PDT().Counts()
	if li == 0 || ld == 0 {
		t.Fatalf("lineitem PDT after refresh: ins=%d del=%d", li, ld)
	}
	if db.Orders.DeltaMemBytes() == 0 || db.Lineitem.DeltaMemBytes() == 0 {
		t.Fatal("deltas empty after refresh")
	}
	if err := db.Orders.PDT().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := db.Lineitem.PDT().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestQueriesAgreeAcrossModes(t *testing.T) {
	// The decisive correctness test: after identical refresh streams, every
	// query must give identical answers under PDT, VDT, and under PDT after
	// a checkpoint (clean stable image).
	pdtDB := loadTest(t, table.ModePDT)
	vdtDB := loadTest(t, table.ModeVDT)
	if err := pdtDB.ApplyRefresh(2, 0.005); err != nil {
		t.Fatal(err)
	}
	if err := vdtDB.ApplyRefresh(2, 0.005); err != nil {
		t.Fatal(err)
	}

	pdtResults := make([]string, len(Queries))
	for qi, q := range Queries {
		got, err := q.Run(pdtDB)
		if err != nil {
			t.Fatalf("Q%d (PDT): %v", q.ID, err)
		}
		pdtResults[qi] = got
	}
	for qi, q := range Queries {
		got, err := q.Run(vdtDB)
		if err != nil {
			t.Fatalf("Q%d (VDT): %v", q.ID, err)
		}
		if got != pdtResults[qi] {
			t.Errorf("Q%d differs between PDT and VDT:\nPDT:\n%s\nVDT:\n%s", q.ID, pdtResults[qi], got)
		}
	}
	// checkpoint the PDT database and re-ask
	if err := pdtDB.Orders.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := pdtDB.Lineitem.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for qi, q := range Queries {
		got, err := q.Run(pdtDB)
		if err != nil {
			t.Fatalf("Q%d (checkpointed): %v", q.ID, err)
		}
		if got != pdtResults[qi] {
			t.Errorf("Q%d changed across checkpoint:\nbefore:\n%s\nafter:\n%s", q.ID, pdtResults[qi], got)
		}
	}
}

func TestQueriesNonTrivial(t *testing.T) {
	// Guard against queries silently selecting nothing: the broad-filter
	// queries must produce output at test scale.
	db := loadTest(t, table.ModePDT)
	mustProduce := []int{1, 4, 5, 6, 7, 9, 10, 12, 13, 22}
	byID := map[int]Query{}
	for _, q := range Queries {
		byID[q.ID] = q
	}
	for _, id := range mustProduce {
		got, err := byID[id].Run(db)
		if err != nil {
			t.Fatalf("Q%d: %v", id, err)
		}
		if got == "" {
			t.Errorf("Q%d produced no rows at SF %v", id, testSF)
		}
	}
}

func TestScanIOAsymmetryOnLineitem(t *testing.T) {
	// Q6-style projection (4 non-key columns): VDT must read the key
	// columns, PDT must not.
	pdtDB := loadTest(t, table.ModePDT)
	vdtDB := loadTest(t, table.ModeVDT)
	if err := pdtDB.ApplyRefresh(1, 0.005); err != nil {
		t.Fatal(err)
	}
	if err := vdtDB.ApplyRefresh(1, 0.005); err != nil {
		t.Fatal(err)
	}
	cols := []int{LQuantity, LExtendedprice, LDiscount, LShipdate}
	measure := func(db *DB) uint64 {
		db.Device.DropCaches()
		db.Device.ResetStats()
		src, err := db.Lineitem.Scan(cols, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		out := vector.NewBatch(db.Lineitem.Kinds(cols), 1024)
		for {
			n, err := src.Next(out, 1024)
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				break
			}
			out.Reset()
		}
		b, _ := db.Device.Stats()
		return b
	}
	p, v := measure(pdtDB), measure(vdtDB)
	if v <= p {
		t.Fatalf("VDT I/O (%d) must exceed PDT I/O (%d)", v, p)
	}
}

func TestDatesHelper(t *testing.T) {
	if Days(1970, 1, 1) != 0 {
		t.Fatal("epoch wrong")
	}
	if Days(1992, 1, 1) <= 0 || yearOf(Days(1992, 1, 1)) != 1992 {
		t.Fatal("date math wrong")
	}
	if yearOf(Days(1998, 12, 31)) != 1998 {
		t.Fatal("year extraction wrong")
	}
}

func TestOrderKeySparsity(t *testing.T) {
	for i := 0; i < 64; i++ {
		k := orderKeyAt(i)
		if (k-1)/32 != int64(i/8) {
			t.Fatalf("orderKeyAt(%d) = %d in wrong block", i, k)
		}
	}
	g := NewGen(0.002, 3)
	_, _ = g.OrdersAndLineitems()
	_ = types.Row{} // keep types import for helpers above
}
