// Package tpch is the benchmark substrate for the paper's §4 evaluation: a
// deterministic dbgen-style data generator for the eight TPC-H tables, the
// RF1/RF2 refresh (update) streams, and column-accurate implementations of
// the 22 read queries. Table sort orders follow the paper's setup: lineitem
// on (l_orderkey, l_linenumber) and orders on (o_orderdate, o_orderkey), so
// refresh-stream inserts scatter across both tables.
package tpch

import (
	"time"

	"pdtstore/internal/types"
)

// Days converts a calendar date to the day-number representation stored in
// Date columns (days since the Unix epoch).
func Days(y int, m time.Month, d int) int64 {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC).Unix() / 86400
}

// Column index constants, one block per table, in schema order.
const (
	RRegionkey = iota
	RName
	RComment
)

const (
	NNationkey = iota
	NName
	NRegionkey
	NComment
)

const (
	SSuppkey = iota
	SName
	SAddress
	SNationkey
	SPhone
	SAcctbal
	SComment
)

const (
	CCustkey = iota
	CName
	CAddress
	CNationkey
	CPhone
	CAcctbal
	CMktsegment
	CComment
)

const (
	PPartkey = iota
	PName
	PMfgr
	PBrand
	PType
	PSize
	PContainer
	PRetailprice
	PComment
)

const (
	PSPartkey = iota
	PSSuppkey
	PSAvailqty
	PSSupplycost
	PSComment
)

const (
	OOrderdate = iota // leading sort column, per the paper's clustering
	OOrderkey
	OCustkey
	OOrderstatus
	OTotalprice
	OOrderpriority
	OClerk
	OShippriority
	OComment
)

const (
	LOrderkey = iota
	LLinenumber
	LPartkey
	LSuppkey
	LQuantity
	LExtendedprice
	LDiscount
	LTax
	LReturnflag
	LLinestatus
	LShipdate
	LCommitdate
	LReceiptdate
	LShipinstruct
	LShipmode
	LComment
)

// Schemas for the eight tables.
var (
	RegionSchema = types.MustSchema([]types.Column{
		{Name: "r_regionkey", Kind: types.Int64},
		{Name: "r_name", Kind: types.String},
		{Name: "r_comment", Kind: types.String},
	}, []int{RRegionkey})

	NationSchema = types.MustSchema([]types.Column{
		{Name: "n_nationkey", Kind: types.Int64},
		{Name: "n_name", Kind: types.String},
		{Name: "n_regionkey", Kind: types.Int64},
		{Name: "n_comment", Kind: types.String},
	}, []int{NNationkey})

	SupplierSchema = types.MustSchema([]types.Column{
		{Name: "s_suppkey", Kind: types.Int64},
		{Name: "s_name", Kind: types.String},
		{Name: "s_address", Kind: types.String},
		{Name: "s_nationkey", Kind: types.Int64},
		{Name: "s_phone", Kind: types.String},
		{Name: "s_acctbal", Kind: types.Float64},
		{Name: "s_comment", Kind: types.String},
	}, []int{SSuppkey})

	CustomerSchema = types.MustSchema([]types.Column{
		{Name: "c_custkey", Kind: types.Int64},
		{Name: "c_name", Kind: types.String},
		{Name: "c_address", Kind: types.String},
		{Name: "c_nationkey", Kind: types.Int64},
		{Name: "c_phone", Kind: types.String},
		{Name: "c_acctbal", Kind: types.Float64},
		{Name: "c_mktsegment", Kind: types.String},
		{Name: "c_comment", Kind: types.String},
	}, []int{CCustkey})

	PartSchema = types.MustSchema([]types.Column{
		{Name: "p_partkey", Kind: types.Int64},
		{Name: "p_name", Kind: types.String},
		{Name: "p_mfgr", Kind: types.String},
		{Name: "p_brand", Kind: types.String},
		{Name: "p_type", Kind: types.String},
		{Name: "p_size", Kind: types.Int64},
		{Name: "p_container", Kind: types.String},
		{Name: "p_retailprice", Kind: types.Float64},
		{Name: "p_comment", Kind: types.String},
	}, []int{PPartkey})

	PartSuppSchema = types.MustSchema([]types.Column{
		{Name: "ps_partkey", Kind: types.Int64},
		{Name: "ps_suppkey", Kind: types.Int64},
		{Name: "ps_availqty", Kind: types.Int64},
		{Name: "ps_supplycost", Kind: types.Float64},
		{Name: "ps_comment", Kind: types.String},
	}, []int{PSPartkey, PSSuppkey})

	OrdersSchema = types.MustSchema([]types.Column{
		{Name: "o_orderdate", Kind: types.Date},
		{Name: "o_orderkey", Kind: types.Int64},
		{Name: "o_custkey", Kind: types.Int64},
		{Name: "o_orderstatus", Kind: types.String},
		{Name: "o_totalprice", Kind: types.Float64},
		{Name: "o_orderpriority", Kind: types.String},
		{Name: "o_clerk", Kind: types.String},
		{Name: "o_shippriority", Kind: types.Int64},
		{Name: "o_comment", Kind: types.String},
	}, []int{OOrderdate, OOrderkey})

	LineitemSchema = types.MustSchema([]types.Column{
		{Name: "l_orderkey", Kind: types.Int64},
		{Name: "l_linenumber", Kind: types.Int64},
		{Name: "l_partkey", Kind: types.Int64},
		{Name: "l_suppkey", Kind: types.Int64},
		{Name: "l_quantity", Kind: types.Float64},
		{Name: "l_extendedprice", Kind: types.Float64},
		{Name: "l_discount", Kind: types.Float64},
		{Name: "l_tax", Kind: types.Float64},
		{Name: "l_returnflag", Kind: types.String},
		{Name: "l_linestatus", Kind: types.String},
		{Name: "l_shipdate", Kind: types.Date},
		{Name: "l_commitdate", Kind: types.Date},
		{Name: "l_receiptdate", Kind: types.Date},
		{Name: "l_shipinstruct", Kind: types.String},
		{Name: "l_shipmode", Kind: types.String},
		{Name: "l_comment", Kind: types.String},
	}, []int{LOrderkey, LLinenumber})
)

// Fixed dimension vocabularies (the official lists).
var (
	regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationDefs  = []struct {
		name   string
		region int64
	}{
		{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
		{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
		{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
		{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
		{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
		{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
		{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
	}
	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	instructs  = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	shipmodes  = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	containers = []string{"SM CASE", "SM BOX", "SM PACK", "SM PKG", "MED BAG", "MED BOX",
		"MED PKG", "MED PACK", "LG CASE", "LG BOX", "LG PACK", "LG PKG",
		"JUMBO BAG", "JUMBO BOX", "JUMBO CASE", "JUMBO PKG", "WRAP BAG", "WRAP CASE"}
	typeSyl1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyl2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyl3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	colors   = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque",
		"black", "blanched", "blue", "blush", "brown", "burlywood", "burnished",
		"chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cornsilk",
		"cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick",
		"floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod", "green",
		"grey", "honeydew", "hot", "hazel", "indian", "ivory", "khaki", "lace",
		"lavender", "lawn", "lemon", "light", "lime", "linen", "magenta", "maroon",
		"medium", "metallic", "midnight", "mint", "misty", "moccasin", "navajo",
		"navy", "olive", "orange", "orchid", "pale", "papaya", "peach", "peru",
		"pink", "plum", "powder", "puff", "purple", "red", "rose", "rosy",
		"royal", "saddle", "salmon", "sandy", "seashell", "sienna", "sky",
		"slate", "smoke", "snow", "spring", "steel", "tan", "thistle", "tomato",
		"turquoise", "violet", "wheat", "white", "yellow"}
	nouns = []string{"packages", "requests", "accounts", "deposits", "foxes",
		"ideas", "theodolites", "instructions", "dependencies", "excuses",
		"platelets", "asymptotes", "courts", "dolphins", "multipliers"}
	verbs = []string{"sleep", "wake", "are", "cajole", "haggle", "nag", "use",
		"boost", "affix", "detect", "integrate", "maintain", "nod", "was", "lose"}
)

// Benchmark period boundaries.
var (
	startDate = Days(1992, time.January, 1)
	endDate   = Days(1998, time.December, 31)
)
