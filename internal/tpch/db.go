package tpch

// DB bundles the eight TPC-H tables over one simulated device, loads them at
// a scale factor, and applies the RF1/RF2 refresh streams through the
// table-layer update API (so the updates land in whichever differential
// structure the delta mode selects).

import (
	"fmt"

	"pdtstore/internal/colstore"
	"pdtstore/internal/table"
	"pdtstore/internal/types"
)

// DB is one loaded TPC-H database instance.
type DB struct {
	Device *colstore.Device
	Mode   table.DeltaMode

	Region   *table.Table
	Nation   *table.Table
	Supplier *table.Table
	Customer *table.Table
	Part     *table.Table
	PartSupp *table.Table
	Orders   *table.Table
	Lineitem *table.Table

	Gen *Gen
}

// Load generates and bulk-loads a database at the given scale factor.
func Load(sf float64, mode table.DeltaMode, compressed bool, blockRows int) (*DB, error) {
	dev := colstore.NewDevice()
	g := NewGen(sf, 19920601) // fixed seed: identical data across modes
	opts := func() table.Options {
		return table.Options{Mode: mode, BlockRows: blockRows, Compressed: compressed, Device: dev}
	}
	db := &DB{Device: dev, Mode: mode, Gen: g}
	var err error
	load := func(name string, schema *types.Schema, rows []types.Row) *table.Table {
		if err != nil {
			return nil
		}
		var t *table.Table
		t, err = table.Load(schema, rows, opts())
		if err != nil {
			err = fmt.Errorf("tpch: loading %s: %w", name, err)
		}
		return t
	}
	db.Region = load("region", RegionSchema, g.RegionRows())
	db.Nation = load("nation", NationSchema, g.NationRows())
	db.Supplier = load("supplier", SupplierSchema, g.SupplierRows())
	db.Customer = load("customer", CustomerSchema, g.CustomerRows())
	db.Part = load("part", PartSchema, g.PartRows())
	db.PartSupp = load("partsupp", PartSuppSchema, g.PartSuppRows())
	orders, lineitems := g.OrdersAndLineitems()
	db.Orders = load("orders", OrdersSchema, orders)
	db.Lineitem = load("lineitem", LineitemSchema, lineitems)
	if err != nil {
		return nil, err
	}
	return db, nil
}

// ApplyRefresh runs the paper's update workload: streams pairs of RF1
// (insert) and RF2 (delete) batches, each touching fraction×|orders| orders
// (TPC-H specifies 0.1%). Each stream's refresh sets are identical across
// modes because the generator is deterministic and shared via the seed.
func (db *DB) ApplyRefresh(streams int, fraction float64) error {
	if db.Mode == table.ModeNone {
		return nil // reference runs stay clean
	}
	n := int(float64(db.Gen.NOrders) * fraction)
	if n < 1 {
		n = 1
	}
	for s := 0; s < streams; s++ {
		// RF1: scattered inserts into both big tables.
		for _, ro := range db.Gen.RF1(n) {
			if err := db.Orders.Insert(ro.Order); err != nil {
				return fmt.Errorf("tpch: RF1 order insert: %w", err)
			}
			for _, lr := range ro.Lineitems {
				if err := db.Lineitem.Insert(lr); err != nil {
					return fmt.Errorf("tpch: RF1 lineitem insert: %w", err)
				}
			}
		}
		// RF2: scattered deletes of existing orders and their lineitems.
		for _, meta := range db.Gen.RF2(n) {
			key := types.Row{types.DateVal(meta.Date), types.Int(meta.Key)}
			if _, err := db.Orders.DeleteByKey(key); err != nil {
				return fmt.Errorf("tpch: RF2 order delete: %w", err)
			}
			for ln := 1; ln <= meta.Lines; ln++ {
				lkey := types.Row{types.Int(meta.Key), types.Int(int64(ln))}
				if _, err := db.Lineitem.DeleteByKey(lkey); err != nil {
					return fmt.Errorf("tpch: RF2 lineitem delete: %w", err)
				}
			}
		}
	}
	return nil
}

// Tables returns the big and dimension tables with their names.
func (db *DB) Tables() map[string]*table.Table {
	return map[string]*table.Table{
		"region": db.Region, "nation": db.Nation, "supplier": db.Supplier,
		"customer": db.Customer, "part": db.Part, "partsupp": db.PartSupp,
		"orders": db.Orders, "lineitem": db.Lineitem,
	}
}
