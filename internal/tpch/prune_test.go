package tpch

// Pruning differential over the whole workload: every TPC-H query must give
// byte-identical answers with pre-scan block pruning on (zone maps plus
// secondary indexes over every non-float column of every table) as with
// pruning globally off — across refresh-stream update histories, and on both
// the serial and the forced-parallel access path. This is the suite that
// keeps "skip this block" honest: any zone or summary that lies about its
// block's contents changes a query fingerprint here.

import (
	"testing"

	"pdtstore/internal/engine"
	"pdtstore/internal/index"
	"pdtstore/internal/table"
	"pdtstore/internal/types"
)

// attachIndexes builds a secondary-index set over every non-Float64 column of
// every table's stable image and attaches it as the store sidecar.
func attachIndexes(t *testing.T, db *DB) {
	t.Helper()
	for name, tbl := range db.Tables() {
		st := tbl.Store()
		var cols []int
		for c, col := range st.Schema().Cols {
			if col.Kind != types.Float64 {
				cols = append(cols, c)
			}
		}
		idx, err := index.Build(st, cols)
		if err != nil {
			t.Fatalf("indexing %s: %v", name, err)
		}
		st.SetAux(idx)
	}
}

func TestQueriesPruneAgree(t *testing.T) {
	defer engine.SetPruning(true)
	db := loadTest(t, table.ModePDT)
	attachIndexes(t, db)

	run := func(label string) []string {
		t.Helper()
		out := make([]string, len(Queries))
		for qi, q := range Queries {
			got, err := q.Run(db)
			if err != nil {
				t.Fatalf("Q%d (%s): %v", q.ID, label, err)
			}
			out[qi] = got
		}
		return out
	}
	compare := func(label string, got, want []string) {
		t.Helper()
		for qi, q := range Queries {
			if got[qi] != want[qi] {
				t.Errorf("Q%d differs %s:\npruned:\n%s\nunpruned:\n%s", q.ID, label, got[qi], want[qi])
			}
		}
	}

	// Two rounds: clean stable image first, then with two refresh streams of
	// unfolded PDT deltas over it (the indexes still describe the pre-refresh
	// image — the dirty-block gate is what must keep the answers right).
	for round, prep := range []func(){
		func() {},
		func() {
			if err := db.ApplyRefresh(2, 0.005); err != nil {
				t.Fatal(err)
			}
		},
	} {
		prep()
		engine.SetPruning(false)
		baseline := run("unpruned")
		engine.SetPruning(true)
		pruned := run("pruned")
		compare("with pruning enabled", pruned, baseline)

		zone, idx := db.Device.SkipStats()
		if round == 0 && zone+idx == 0 {
			t.Error("no blocks were ever skipped: the pruned pass never pruned")
		}

		func() {
			defer func(th, dw int) { engine.ParallelThreshold = th; engine.DefaultWorkers = dw }(
				engine.ParallelThreshold, engine.DefaultWorkers)
			engine.ParallelThreshold = 0
			engine.DefaultWorkers = 4
			compare("under pruning plus forced parallelism", run("pruned parallel"), baseline)
		}()
	}
}
