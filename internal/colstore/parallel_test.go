package colstore

// Device accounting under concurrent scanners: the parallel scan engine runs
// many Scanner instances against one device at once, so the pool and the
// byte/read counters must stay exact — every cold block charged exactly once
// however many workers race to fetch it.

import (
	"sync"
	"testing"
	"time"

	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

func parallelTestStore(t *testing.T, n int) (*Store, *Device) {
	t.Helper()
	schema := types.MustSchema([]types.Column{
		{Name: "k", Kind: types.Int64},
		{Name: "a", Kind: types.Int64},
		{Name: "b", Kind: types.Float64},
	}, []int{0})
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{types.Int(int64(i)), types.Int(int64(i) % 13), types.Float(float64(i))}
	}
	dev := NewDevice()
	s, err := BulkLoad(schema, dev, 64, false, rows)
	if err != nil {
		t.Fatal(err)
	}
	return s, dev
}

func drainStore(t *testing.T, s *Store, cols []int) {
	t.Helper()
	kinds := make([]types.Kind, len(cols))
	for i, c := range cols {
		kinds[i] = s.Schema().Cols[c].Kind
	}
	sc := s.NewScanner(cols, 0, s.NRows())
	b := vector.NewBatch(kinds, 256)
	for {
		b.Reset()
		n, err := sc.Next(b, 256)
		if err != nil {
			t.Error(err)
			return
		}
		if n == 0 {
			return
		}
	}
}

func TestDeviceStatsConcurrentScanners(t *testing.T) {
	s, dev := parallelTestStore(t, 5000)
	cols := []int{0, 1, 2}
	wantBytes := s.EncodedSize(-1)
	wantReads := uint64(s.NumBlocks() * len(cols))

	for round := 0; round < 3; round++ {
		dev.DropCaches()
		dev.ResetStats()
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				drainStore(t, s, cols)
			}()
		}
		wg.Wait()
		gotBytes, gotReads := dev.Stats()
		if gotBytes != wantBytes || gotReads != wantReads {
			t.Fatalf("round %d: 8 concurrent cold scans charged %d bytes / %d reads, want %d / %d (charge-once)",
				round, gotBytes, gotReads, wantBytes, wantReads)
		}
		if got := dev.PoolBlocks(); got != int(wantReads) {
			t.Fatalf("round %d: pool holds %d blocks, want %d", round, got, wantReads)
		}
		// Warm rescans charge nothing.
		var wg2 sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg2.Add(1)
			go func() {
				defer wg2.Done()
				drainStore(t, s, cols)
			}()
		}
		wg2.Wait()
		if gotBytes2, gotReads2 := dev.Stats(); gotBytes2 != wantBytes || gotReads2 != wantReads {
			t.Fatalf("round %d: warm rescans charged extra: %d bytes / %d reads", round, gotBytes2, gotReads2)
		}
	}
}

func TestDeviceReadLatencyOverlapsAndStops(t *testing.T) {
	// Functional contract of the modeled latency: cold fetches are delayed,
	// pool hits never are, and Prefetch charges a range exactly once.
	s, dev := parallelTestStore(t, 1000)
	dev.SetReadLatency(time.Millisecond)
	defer dev.SetReadLatency(0)

	dev.DropCaches()
	dev.ResetStats()
	if err := s.Prefetch([]int{0, 1}, 0, s.NRows()); err != nil {
		t.Fatal(err)
	}
	bytes1, reads1 := dev.Stats()
	if reads1 != uint64(2*s.NumBlocks()) {
		t.Fatalf("prefetch charged %d reads, want %d", reads1, 2*s.NumBlocks())
	}
	// Hot: a scan after prefetch charges nothing more and is not delayed.
	start := time.Now()
	drainStore(t, s, []int{0, 1})
	hot := time.Since(start)
	if bytes2, reads2 := dev.Stats(); bytes2 != bytes1 || reads2 != reads1 {
		t.Fatalf("post-prefetch scan recharged: %d/%d -> %d/%d", bytes1, reads1, bytes2, reads2)
	}
	if lat := time.Duration(s.NumBlocks()) * time.Millisecond; hot > lat {
		t.Fatalf("warm scan took %v — pool hits appear to pay the %v cold latency", hot, lat)
	}
	// Prefetch of an empty or inverted range is a no-op.
	if err := s.Prefetch([]int{0}, 5, 5); err != nil {
		t.Fatal(err)
	}
	if err := s.Prefetch([]int{0}, s.NRows(), s.NRows()+10); err != nil {
		t.Fatal(err)
	}
	if _, reads3 := dev.Stats(); reads3 != reads1 {
		t.Fatal("empty prefetch charged reads")
	}
}
