// Package colstore implements the read-optimized stable table image: each
// column is stored as a sequence of independently encoded blocks (compressed
// or plain), all columns block-aligned by row position, together with a
// sparse min-key index on the sort key (the paper's "Sparse Index") and a
// block device fronting every fetch with a buffer pool that accounts every
// byte read.
//
// A store is either RAM-resident (built by NewBuilder/BulkLoad — the paper's
// simulated-I/O benchmark configuration, where the device only accounts
// bytes) or file-backed (built by NewFileBuilder or opened via FromSegment):
// its blocks live in an on-disk segment file and are pread lazily through the
// device's buffer pool, so cold scans do real I/O, Device.Stats reports real
// bytes, and DropCaches makes the next scan hit the disk again. Stable IDs
// (SIDs) are implicit: the value at position i of every column belongs to the
// tuple with SID i.
package colstore

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pdtstore/internal/compress"
	"pdtstore/internal/storage"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

// DefaultBlockRows is the default number of values per column block.
const DefaultBlockRows = 8192

// Device is the disk + buffer pool boundary. The first fetch of any block is
// a cold read and is charged to the byte counter; subsequent fetches hit the
// (unbounded) buffer pool and are free, so a benchmark can measure a query's
// cold I/O volume by calling DropCaches and ResetStats first, and its hot
// time by re-running with the pool warm. For a RAM-resident store the pool
// entry is presence-only (the bytes live in the store); for a file-backed
// store the pool owns the bytes read from disk, so evicting them really does
// make the next fetch a pread.
//
// A device is safe for concurrent scanners — the parallel scan engine's
// workers all charge fetches through one device. Pool hits take only a read
// lock, so warm scans scale; cold charges take the write lock once per block
// and stay charge-once under races (two workers fetching the same block cold
// charge one read). SetReadLatency models a disk's per-block access time:
// the sleep happens outside every lock, so concurrent cold reads overlap the
// way queued reads on a real device do.
type Device struct {
	mu        sync.RWMutex
	bytesRead uint64
	reads     uint64
	cached    map[devKey][]byte
	nextStore uint64
	segIDs    map[*storage.Segment]uint64 // pool identity per segment file
	latencyNS atomic.Int64                // modeled cold-read latency (0 = none)

	// Block-skip accounting: blocks a scan proved irrelevant without
	// fetching, split by which structure proved it. Atomic (not under mu)
	// because pruning happens on the plan's hot setup path.
	zoneSkips  atomic.Uint64
	indexSkips atomic.Uint64
}

type blockKey struct{ col, blk int }

// devKey identifies a block globally: RAM-resident stores key on their store
// id, file-backed stores on the owning segment file's id — so a block
// inherited across checkpoint generations keeps one pool entry and stays warm
// after the generation swap.
type devKey struct {
	store    uint64
	col, blk int
}

// NewDevice returns a device with an empty buffer pool.
func NewDevice() *Device {
	return &Device{
		cached: make(map[devKey][]byte),
		segIDs: make(map[*storage.Segment]uint64),
	}
}

func (d *Device) register() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextStore++
	return d.nextStore
}

// segmentID returns the pool identity of a segment file, assigning one on
// first sight. Stores sharing a segment (checkpoint generations chained by
// incremental checkpoints) share its id, so inherited blocks never go cold.
func (d *Device) segmentID(seg *storage.Segment) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.segIDs == nil {
		d.segIDs = make(map[*storage.Segment]uint64)
	}
	if id, ok := d.segIDs[seg]; ok {
		return id
	}
	d.nextStore++
	d.segIDs[seg] = d.nextStore
	return d.nextStore
}

// evictSegment drops every pool entry of one segment file, keeping its pool
// identity (the next read is cold but lands under the same key).
func (d *Device) evictSegment(seg *storage.Segment) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id, ok := d.segIDs[seg]
	if !ok {
		return
	}
	d.evictLocked(id)
}

// dropSegment forgets a segment entirely: pool entries and identity. Called
// when the last store referencing the segment releases it.
func (d *Device) dropSegment(seg *storage.Segment) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id, ok := d.segIDs[seg]
	if !ok {
		return
	}
	delete(d.segIDs, seg)
	d.evictLocked(id)
}

func (d *Device) evictLocked(id uint64) {
	for k := range d.cached {
		if k.store == id {
			delete(d.cached, k)
		}
	}
}

// SetReadLatency models a per-block cold-read access time: every charged
// cold fetch sleeps for lat before returning, outside the pool lock, so N
// workers' cold reads overlap instead of serializing — the modeled-I/O knob
// the parallel scan benchmark uses to show scan scaling on real disks (like
// the group-commit benchmark's modeled fsync barrier). Zero disables it.
// Pool hits are never delayed.
func (d *Device) SetReadLatency(lat time.Duration) {
	d.latencyNS.Store(int64(lat))
}

// coldDelay sleeps the modeled read latency, if configured. Must be called
// with no lock held.
func (d *Device) coldDelay() {
	if ns := d.latencyNS.Load(); ns > 0 {
		time.Sleep(time.Duration(ns))
	}
}

// fetch charges a RAM-resident block's first read (presence-only pool entry).
func (d *Device) fetch(store uint64, col, blk, size int) {
	k := devKey{store, col, blk}
	d.mu.RLock()
	_, ok := d.cached[k]
	d.mu.RUnlock()
	if ok {
		return
	}
	d.mu.Lock()
	if _, ok := d.cached[k]; ok {
		d.mu.Unlock()
		return
	}
	d.cached[k] = nil
	d.bytesRead += uint64(size)
	d.reads++
	d.mu.Unlock()
	d.coldDelay()
}

// poolGet returns a file-backed block's bytes if resident in the pool.
func (d *Device) poolGet(k devKey) ([]byte, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	b, ok := d.cached[k]
	return b, ok
}

// poolFill inserts bytes just pread from disk, charging the cold read. A
// concurrent fill of the same block charges only once; both copies are valid.
func (d *Device) poolFill(k devKey, b []byte) {
	d.mu.Lock()
	if _, ok := d.cached[k]; ok {
		d.mu.Unlock()
		return
	}
	d.cached[k] = b
	d.bytesRead += uint64(len(b))
	d.reads++
	d.mu.Unlock()
	d.coldDelay()
}

// DropCaches empties the simulated buffer pool, so the next fetch of every
// block is cold again.
func (d *Device) DropCaches() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cached = make(map[devKey][]byte)
}

// evictStore drops every buffer-pool entry belonging to one store.
func (d *Device) evictStore(id uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.evictLocked(id)
}

// PoolBlocks returns the number of blocks currently resident in the buffer
// pool (for tests and stats: a long-running process that checkpoints should
// see retired images leave the pool, not accumulate one entry per block per
// checkpoint forever).
func (d *Device) PoolBlocks() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.cached)
}

// ResetStats zeroes the byte/read and block-skip counters without touching
// the pool.
func (d *Device) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.bytesRead, d.reads = 0, 0
	d.zoneSkips.Store(0)
	d.indexSkips.Store(0)
}

// CountSkips adds to the block-skip counters: blocks a scan's pre-scan
// pruning pass excluded via zone maps and via secondary indexes. The engine
// calls this once per pruned plan.
func (d *Device) CountSkips(zone, index uint64) {
	d.zoneSkips.Add(zone)
	d.indexSkips.Add(index)
}

// SkipStats returns the block-skip counters accumulated since the last
// ResetStats: how many block fetches scans avoided via zone maps and via
// secondary indexes.
func (d *Device) SkipStats() (zone, index uint64) {
	return d.zoneSkips.Load(), d.indexSkips.Load()
}

// Stats returns the bytes and block reads charged since the last ResetStats.
func (d *Device) Stats() (bytesRead, reads uint64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.bytesRead, d.reads
}

// Store is one table's immutable stable image. It is RAM-resident (blocks
// held in memory) or file-backed (blocks pread from a segment file through
// the device's buffer pool); readers cannot tell the difference except
// through the device's byte accounting.
//
// A file-backed store reads through a segment chain: a full checkpoint
// produces a single self-contained segment, an incremental checkpoint
// produces a new segment holding only the blocks that changed plus a
// logical→physical block map resolving every unchanged block into an earlier
// chain member. Readers are oblivious — encodedBlock resolves the map — and
// chain members are refcounted, shared between consecutive generations.
type Store struct {
	schema     *types.Schema
	id         uint64 // pool identity of a RAM-resident store
	blockRows  int
	compressed bool
	nrows      uint64
	blocks     [][][]byte             // blocks[col][blk] = encoded bytes (RAM-resident)
	zones      [][]storage.Zone       // zones[col][blk] (RAM-resident; file-backed reads footers)
	segs       []*storage.Segment     // on-disk segment chain, oldest first (file-backed)
	segIDs     []uint64               // pool identity of each chain member
	places     [][]storage.BlockPlace // block map; nil = identity on the single chain member
	sparse     []types.Row
	dev        *Device
	closed     atomic.Bool
	aux        any // opaque per-image sidecar (the secondary-index set); set before sharing

	cacheMu sync.Mutex
	decoded map[blockKey]*vector.Vector // small point-read decode cache
}

// Builder accumulates rows in sort-key order and produces a Store — in RAM,
// or streamed block by block into an on-disk segment file (NewFileBuilder).
type Builder struct {
	store   *Store
	segw    *storage.SegmentWriter // nil for RAM-resident builds
	pending *vector.Batch
	lastKey types.Row
	err     error
}

// NewBuilder starts building a store. blockRows <= 0 selects
// DefaultBlockRows. The device may be shared across stores (one device per
// benchmark "machine").
func NewBuilder(schema *types.Schema, dev *Device, blockRows int, compressed bool) *Builder {
	if blockRows <= 0 {
		blockRows = DefaultBlockRows
	}
	if dev == nil {
		dev = NewDevice()
	}
	kinds := make([]types.Kind, schema.NumCols())
	for i, c := range schema.Cols {
		kinds[i] = c.Kind
	}
	return &Builder{
		store: &Store{
			schema:     schema,
			id:         dev.register(),
			blockRows:  blockRows,
			compressed: compressed,
			blocks:     make([][][]byte, schema.NumCols()),
			zones:      make([][]storage.Zone, schema.NumCols()),
			dev:        dev,
			decoded:    make(map[blockKey]*vector.Vector),
		},
		pending: vector.NewBatch(kinds, blockRows),
	}
}

// NewFileBuilder is NewBuilder with a durable destination: every flushed
// block streams to a segment file at path, and Finish seals the footer,
// fsyncs, and returns a file-backed store reading lazily through the device.
func NewFileBuilder(schema *types.Schema, dev *Device, blockRows int, compressed bool, path string) (*Builder, error) {
	b := NewBuilder(schema, dev, blockRows, compressed)
	segw, err := storage.CreateSegment(path, schema, b.store.blockRows, compressed)
	if err != nil {
		return nil, err
	}
	b.segw = segw
	b.store.blocks = nil
	return b, nil
}

// Abort discards a file-backed build, removing the partial segment file. It
// is a no-op for RAM builds and after Finish.
func (b *Builder) Abort() {
	if b.segw != nil {
		b.segw.Abort()
		b.segw = nil
	}
	if b.err == nil {
		b.err = fmt.Errorf("colstore: builder aborted")
	}
}

// Add appends one row; rows must arrive in strictly ascending sort-key order
// (the sort key is a key, so duplicates are rejected too).
func (b *Builder) Add(row types.Row) error {
	if b.err != nil {
		return b.err
	}
	s := b.store
	if err := s.schema.ValidateRow(row); err != nil {
		b.err = err
		return err
	}
	key := s.schema.KeyOf(row)
	if b.lastKey != nil && types.CompareRows(b.lastKey, key) >= 0 {
		b.err = fmt.Errorf("colstore: rows not in strict sort-key order (%v then %v)", b.lastKey, key)
		return b.err
	}
	b.lastKey = key
	if b.pending.Len() == 0 {
		s.sparse = append(s.sparse, key)
	}
	b.pending.AppendRow(row)
	if b.pending.Len() == s.blockRows {
		b.flush()
	}
	return b.err
}

// AddBatch appends all rows of a schema-aligned batch (the checkpoint fast
// path): whole vector ranges are copied up to each block boundary instead of
// switching per value. Ordering is validated on block boundaries only, plus
// the first row of every batch, which suffices because batch producers are
// merge scans that emit in order.
func (b *Builder) AddBatch(batch *vector.Batch) error {
	if b.err != nil {
		return b.err
	}
	s := b.store
	n := batch.Len()
	for i := 0; i < n; {
		if b.pending.Len() == 0 || i == 0 {
			key := s.schema.KeyOf(batch.Row(i))
			if b.lastKey != nil && types.CompareRows(b.lastKey, key) >= 0 {
				b.err = fmt.Errorf("colstore: batch rows not in sort-key order")
				return b.err
			}
			if b.pending.Len() == 0 {
				s.sparse = append(s.sparse, key)
			}
		}
		take := s.blockRows - b.pending.Len()
		if rest := n - i; take > rest {
			take = rest
		}
		for c, v := range b.pending.Vecs {
			v.AppendRange(batch.Vecs[c], i, i+take)
		}
		i += take
		if b.pending.Len() == s.blockRows {
			b.lastKey = s.schema.KeyOf(b.pending.Row(s.blockRows - 1))
			b.flush()
		}
	}
	if b.pending.Len() > 0 {
		b.lastKey = s.schema.KeyOf(b.pending.Row(b.pending.Len() - 1))
	}
	return nil
}

// encodeVec encodes one column vector as a block in the store's on-disk
// format (shared by the full builder and the incremental DeltaBuilder).
func encodeVec(v *vector.Vector, compressed bool) []byte {
	switch v.Kind {
	case types.Float64:
		return compress.EncodeFloat64s(v.F)
	case types.String:
		return compress.EncodeStrings(v.S, compressed)
	case types.Bool:
		return compress.EncodeBools(v.I)
	default:
		return compress.EncodeInt64s(v.I, compressed)
	}
}

// zoneMaxStr caps the string min/max stored in a zone: long strings keep the
// footer small by storing a prefix. A truncated minimum is still a valid
// lower bound outright; a truncated maximum is flagged (MaxSTrunc) so readers
// compare conservatively.
const zoneMaxStr = 64

// zoneOf computes a block's zone-map statistics from its decoded vector —
// the stats ride next to the encoded bytes wherever the block lands (RAM
// store, segment file, delta segment). Bool and Date columns share the int
// arm (bools as 0/1).
func zoneOf(v *vector.Vector) storage.Zone {
	if v.Len() == 0 {
		return storage.Zone{}
	}
	switch v.Kind {
	case types.Float64:
		mn, mx := v.F[0], v.F[0]
		for _, f := range v.F[1:] {
			if f < mn {
				mn = f
			}
			if f > mx {
				mx = f
			}
		}
		return storage.Zone{Kind: storage.ZoneFloat, MinF: mn, MaxF: mx}
	case types.String:
		mn, mx := v.S[0], v.S[0]
		for _, s := range v.S[1:] {
			if s < mn {
				mn = s
			} else if s > mx {
				mx = s
			}
		}
		z := storage.Zone{Kind: storage.ZoneString, MinS: mn, MaxS: mx}
		if len(z.MinS) > zoneMaxStr {
			z.MinS = z.MinS[:zoneMaxStr]
		}
		if len(z.MaxS) > zoneMaxStr {
			z.MaxS = z.MaxS[:zoneMaxStr]
			z.MaxSTrunc = true
		}
		return z
	default:
		mn, mx := v.I[0], v.I[0]
		for _, i := range v.I[1:] {
			if i < mn {
				mn = i
			}
			if i > mx {
				mx = i
			}
		}
		return storage.Zone{Kind: storage.ZoneInt, MinI: mn, MaxI: mx}
	}
}

func (b *Builder) flush() {
	s := b.store
	n := b.pending.Len()
	for c, v := range b.pending.Vecs {
		enc := encodeVec(v, s.compressed)
		z := zoneOf(v)
		if b.segw != nil {
			if err := b.segw.AppendBlock(c, enc, z); err != nil {
				b.err = err
				return
			}
		} else {
			s.blocks[c] = append(s.blocks[c], enc)
			s.zones[c] = append(s.zones[c], z)
		}
	}
	s.nrows += uint64(n)
	b.pending.Reset()
}

// Finish seals the store. The builder must not be used afterwards. For a
// file-backed build this writes the segment footer and fsyncs: when Finish
// returns, the image is durable.
func (b *Builder) Finish() (*Store, error) {
	if b.pending.Len() > 0 && b.err == nil {
		b.flush()
	}
	if b.err != nil {
		if b.segw != nil {
			b.segw.Abort()
			b.segw = nil
		}
		return nil, b.err
	}
	if b.segw != nil {
		seg, err := b.segw.Finish(b.store.nrows, b.store.sparse)
		if err != nil {
			b.segw.Abort()
			b.segw = nil
			return nil, err
		}
		b.store.segs = []*storage.Segment{seg}
		b.store.segIDs = []uint64{b.store.dev.segmentID(seg)}
		b.segw = nil
	}
	return b.store, nil
}

// BulkLoad builds a store from pre-sorted rows in one call.
func BulkLoad(schema *types.Schema, dev *Device, blockRows int, compressed bool, rows []types.Row) (*Store, error) {
	b := NewBuilder(schema, dev, blockRows, compressed)
	for _, r := range rows {
		if err := b.Add(r); err != nil {
			return nil, err
		}
	}
	return b.Finish()
}

// FromSegment wraps an opened segment file in a file-backed store: blocks are
// pread on demand through the device's buffer pool, with cold bytes charged
// to its counters. The store owns the segment and releases it via Close.
func FromSegment(seg *storage.Segment, dev *Device) *Store {
	s, err := FromSegmentChain([]*storage.Segment{seg}, dev)
	if err != nil {
		// A single-segment chain only fails when the segment's own block map
		// is self-inconsistent, which OpenSegment's CRC already rules out for
		// files we wrote; treat it like the pre-incremental constructor did.
		panic(err)
	}
	return s
}

// FromSegmentChain wraps an opened segment chain (oldest first) in a
// file-backed store. The newest segment's block map resolves every logical
// block to its owning chain member; a missing map is only legal for a
// single-segment (self-contained) chain. The store owns one reference to
// each member and releases them via Close.
func FromSegmentChain(segs []*storage.Segment, dev *Device) (*Store, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("colstore: empty segment chain")
	}
	if dev == nil {
		dev = NewDevice()
	}
	newest := segs[len(segs)-1]
	places := newest.Placements()
	if places == nil && len(segs) > 1 {
		return nil, fmt.Errorf("colstore: %d-segment chain but newest segment has no block map", len(segs))
	}
	for c, col := range places {
		for b, p := range col {
			if int(p.Seg) >= len(segs) {
				return nil, fmt.Errorf("colstore: block map (col %d, blk %d) points at chain member %d of %d", c, b, p.Seg, len(segs))
			}
			if int(p.Blk) >= segs[p.Seg].ColBlocks(c) {
				return nil, fmt.Errorf("colstore: block map (col %d, blk %d) points past member %d's column", c, b, p.Seg)
			}
		}
	}
	ids := make([]uint64, len(segs))
	for i, seg := range segs {
		ids[i] = dev.segmentID(seg)
	}
	return &Store{
		schema:     newest.Schema(),
		id:         dev.register(),
		blockRows:  newest.BlockRows(),
		compressed: newest.Compressed(),
		nrows:      newest.NRows(),
		segs:       append([]*storage.Segment(nil), segs...),
		segIDs:     ids,
		places:     places,
		sparse:     newest.Sparse(),
		dev:        dev,
		decoded:    make(map[blockKey]*vector.Vector),
	}, nil
}

// Segment returns the newest on-disk segment backing this store (the one
// carrying the generation's footer and block map), or nil for a RAM-resident
// store.
func (s *Store) Segment() *storage.Segment {
	if len(s.segs) == 0 {
		return nil
	}
	return s.segs[len(s.segs)-1]
}

// Segments returns the on-disk segment chain backing this store, oldest
// first, or nil for a RAM-resident store. The returned slice is the store's
// own — callers must not mutate it.
func (s *Store) Segments() []*storage.Segment { return s.segs }

// CloneShared returns a new store over the same segment chain, retaining one
// extra reference on every chain member. An empty-delta checkpoint installs
// a clone instead of writing any file: the old and new generation share every
// block, and each store releases its references independently on Close.
func (s *Store) CloneShared() *Store {
	for _, seg := range s.segs {
		seg.Retain()
	}
	return &Store{
		schema:     s.schema,
		id:         s.dev.register(),
		blockRows:  s.blockRows,
		compressed: s.compressed,
		nrows:      s.nrows,
		blocks:     s.blocks,
		zones:      s.zones,
		segs:       s.segs,
		segIDs:     s.segIDs,
		places:     s.places,
		sparse:     s.sparse,
		dev:        s.dev,
		aux:        s.aux,
		decoded:    make(map[blockKey]*vector.Vector),
	}
}

// place resolves a logical (column, block) coordinate to (chain member,
// physical block).
func (s *Store) place(col, blk int) (si, pb int) {
	if s.places == nil {
		return 0, blk
	}
	p := s.places[col][blk]
	return int(p.Seg), int(p.Blk)
}

// Zone returns the zone-map statistics of one logical column block, and
// whether usable stats exist for it. File-backed stores resolve the logical
// coordinate through the block map first, so a block inherited across
// incremental checkpoints keeps the stats of the chain member holding its
// bytes. A pre-zone-map segment (or a ZoneNone block) reports ok=false; such
// blocks are never skipped.
func (s *Store) Zone(col, blk int) (storage.Zone, bool) {
	if s.segs == nil {
		if col >= len(s.zones) || blk >= len(s.zones[col]) {
			return storage.Zone{}, false
		}
		z := s.zones[col][blk]
		return z, z.Kind != storage.ZoneNone
	}
	si, pb := s.place(col, blk)
	return s.segs[si].Zone(col, pb)
}

// EncodedBlock returns one logical column block's encoded bytes, charging the
// device like any other fetch. The secondary-index builder reads blocks in
// their encoded form so dictionary and RLE blocks index without a full
// decode.
func (s *Store) EncodedBlock(col, blk int) ([]byte, error) {
	return s.encodedBlock(col, blk)
}

// SetAux attaches an opaque per-image sidecar to the store — the secondary
// index set rides here, built by the layers above (colstore cannot import
// them). It must be called before the store is shared between goroutines;
// CloneShared carries the sidecar to the clone.
func (s *Store) SetAux(aux any) { s.aux = aux }

// Aux returns the sidecar attached by SetAux, or nil.
func (s *Store) Aux() any { return s.aux }

// Close releases the store's reference on every chain member of a
// file-backed store (idempotent; a RAM-resident store has no descriptor to
// free). The member that hits refcount zero is closed and its buffer-pool
// entries evicted — members still shared with a newer generation stay open
// and warm. The store must not be read afterwards.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	if s.segs == nil {
		s.Evict()
		return nil
	}
	s.cacheMu.Lock()
	s.decoded = make(map[blockKey]*vector.Vector)
	s.cacheMu.Unlock()
	var err error
	for _, seg := range s.segs {
		if seg.Release() {
			s.dev.dropSegment(seg)
			if e := seg.Close(); e != nil && err == nil {
				err = e
			}
		}
	}
	return err
}

// BlockRefCounts returns, per chain member (oldest first), how many logical
// (column, block) cells of this generation's image resolve into that file —
// the member's live-block count. A member's dead blocks are its
// TotalBlocks() minus this. Nil for RAM-resident stores.
func (s *Store) BlockRefCounts() []int {
	if s.segs == nil {
		return nil
	}
	counts := make([]int, len(s.segs))
	if s.places == nil {
		counts[0] = s.schema.NumCols() * s.NumBlocks()
		return counts
	}
	for _, col := range s.places {
		for _, p := range col {
			counts[p.Seg]++
		}
	}
	return counts
}

// Schema returns the store's schema.
func (s *Store) Schema() *types.Schema { return s.schema }

// NRows returns the number of stable tuples.
func (s *Store) NRows() uint64 { return s.nrows }

// BlockRows returns the number of rows per block.
func (s *Store) BlockRows() int { return s.blockRows }

// Compressed reports whether blocks were compressed at load time.
func (s *Store) Compressed() bool { return s.compressed }

// Device returns the block device this store charges reads to.
func (s *Store) Device() *Device { return s.dev }

// Evict removes the store's blocks from its device's buffer pool, releasing
// the per-block map entries a retired image would otherwise leak across
// checkpoints. The store stays fully readable — its next fetches are simply
// cold again — so evicting is always safe; it is called when a checkpoint
// retires an image and its last reader finishes. The small point-read decode
// cache is dropped too.
func (s *Store) Evict() {
	if s.segs == nil {
		s.dev.evictStore(s.id)
	} else {
		for _, seg := range s.segs {
			s.dev.evictSegment(seg)
		}
	}
	s.cacheMu.Lock()
	s.decoded = make(map[blockKey]*vector.Vector)
	s.cacheMu.Unlock()
}

// NumBlocks returns the per-column logical block count.
func (s *Store) NumBlocks() int {
	if s.places != nil {
		if len(s.places) == 0 {
			return 0
		}
		return len(s.places[0])
	}
	if s.segs != nil {
		return s.segs[len(s.segs)-1].NumBlocks()
	}
	if len(s.blocks) == 0 {
		return 0
	}
	return len(s.blocks[0])
}

// EncodedSize returns the on-disk size in bytes of the given column, or of
// the whole table when col is negative.
func (s *Store) EncodedSize(col int) uint64 {
	var total uint64
	nb := s.NumBlocks()
	for c := 0; c < s.schema.NumCols(); c++ {
		if col >= 0 && c != col {
			continue
		}
		for blk := 0; blk < nb; blk++ {
			if s.segs != nil {
				si, pb := s.place(c, blk)
				total += uint64(s.segs[si].BlockLen(c, pb))
			} else {
				total += uint64(len(s.blocks[c][blk]))
			}
		}
	}
	return total
}

// encodedBlock returns one column block's encoded bytes, charging the device
// for a cold fetch: a RAM-resident block is charged on first touch; a
// file-backed block resolves the logical coordinate through the block map,
// then preads from the owning chain member unless the buffer pool already
// holds it. Pool keys are per segment file, so blocks inherited across
// checkpoint generations stay warm through the swap.
func (s *Store) encodedBlock(col, blk int) ([]byte, error) {
	if s.segs == nil {
		enc := s.blocks[col][blk]
		s.dev.fetch(s.id, col, blk, len(enc))
		return enc, nil
	}
	si, pb := s.place(col, blk)
	k := devKey{s.segIDs[si], col, pb}
	if b, ok := s.dev.poolGet(k); ok {
		return b, nil
	}
	b, err := s.segs[si].ReadBlock(col, pb)
	if err != nil {
		return nil, err
	}
	s.dev.poolFill(k, b)
	return b, nil
}

// Prefetch charges the cold read of every block of the given columns
// overlapping SIDs [from, to) — the sequential readahead of a scan about to
// visit that range. Blocks already resident are untouched; cold ones are
// fetched (and, for file-backed stores, loaded into the buffer pool), each
// paying the device's modeled read latency. A parallel scan worker prefetches
// its morsel on open, so the modeled I/O of concurrent morsels overlaps like
// queued readahead on a real disk instead of serializing behind ordered
// batch delivery.
func (s *Store) Prefetch(cols []int, from, to uint64) error {
	if from >= to || s.nrows == 0 {
		return nil
	}
	if to > s.nrows {
		to = s.nrows
	}
	b0 := int(from) / s.blockRows
	b1 := int(to-1) / s.blockRows
	for _, c := range cols {
		for blk := b0; blk <= b1; blk++ {
			if _, err := s.encodedBlock(c, blk); err != nil {
				return err
			}
		}
	}
	return nil
}

// decodeBlock fetches (charging the device) and decodes one column block
// into a freshly allocated vector.
func (s *Store) decodeBlock(col, blk int) (*vector.Vector, error) {
	v := vector.New(s.schema.Cols[col].Kind, s.blockRows)
	if err := s.decodeBlockInto(col, blk, v); err != nil {
		return nil, err
	}
	return v, nil
}

// decodeBlockInto fetches (charging the device) and decodes one column block
// into v, reusing v's backing arrays. Sequential scanners pass the same
// vector for every block of a column, so steady-state scans decode without
// per-block allocation.
func (s *Store) decodeBlockInto(col, blk int, v *vector.Vector) error {
	return s.decodeBlockTailInto(col, blk, 0, v)
}

// decodeBlockTailInto is decodeBlockInto starting at value index skip: v
// receives only the block's values from skip on. The whole encoded block is
// still fetched — the device's byte accounting is unchanged — but a point
// probe entering mid-block materializes just the tail it will read.
func (s *Store) decodeBlockTailInto(col, blk, skip int, v *vector.Vector) error {
	enc, err := s.encodedBlock(col, blk)
	if err != nil {
		return err
	}
	v.Reset()
	switch v.Kind {
	case types.Float64:
		v.F, err = compress.DecodeFloat64sFrom(enc, skip, v.F)
	case types.String:
		v.S, err = compress.DecodeStringsFrom(enc, skip, v.S)
	case types.Bool:
		v.I, err = compress.DecodeBoolsFrom(enc, skip, v.I)
	default:
		v.I, err = compress.DecodeInt64sFrom(enc, skip, v.I)
	}
	if err != nil {
		return fmt.Errorf("colstore: column %d block %d: %w", col, blk, err)
	}
	return nil
}

const pointCacheCap = 64

// cachedBlock is decodeBlock with a small shared cache, used by point reads.
func (s *Store) cachedBlock(col, blk int) (*vector.Vector, error) {
	k := blockKey{col, blk}
	s.cacheMu.Lock()
	if v, ok := s.decoded[k]; ok {
		s.cacheMu.Unlock()
		return v, nil
	}
	s.cacheMu.Unlock()
	v, err := s.decodeBlock(col, blk)
	if err != nil {
		return nil, err
	}
	s.cacheMu.Lock()
	if len(s.decoded) >= pointCacheCap {
		for victim := range s.decoded {
			delete(s.decoded, victim)
			break
		}
	}
	s.decoded[k] = v
	s.cacheMu.Unlock()
	return v, nil
}

// RowAt returns the values of the given columns for the tuple at sid.
func (s *Store) RowAt(sid uint64, cols []int) (types.Row, error) {
	if sid >= s.nrows {
		return nil, fmt.Errorf("colstore: SID %d out of range (nrows=%d)", sid, s.nrows)
	}
	blk := int(sid) / s.blockRows
	off := int(sid) % s.blockRows
	out := make(types.Row, len(cols))
	for i, c := range cols {
		v, err := s.cachedBlock(c, blk)
		if err != nil {
			return nil, err
		}
		out[i] = v.Get(off)
	}
	return out, nil
}

// KeyAt returns the sort-key values of the tuple at sid.
func (s *Store) KeyAt(sid uint64) (types.Row, error) {
	return s.RowAt(sid, s.schema.SortKey)
}

// comparePrefix orders a (possibly partial, prefix-of-sort-key) key against
// a block's first-row key, comparing only the columns present in key.
func comparePrefix(key, blockKey types.Row) int {
	n := len(key)
	if len(blockKey) < n {
		n = len(blockKey)
	}
	for i := 0; i < n; i++ {
		if c := types.Compare(key[i], blockKey[i]); c != 0 {
			return c
		}
	}
	return 0
}

// SIDRange returns the half-open stable-ID range [from, to) of blocks whose
// keys may fall within [loKey, hiKey]. Either bound may be nil (unbounded)
// or a prefix of the sort key. The range is conservative: it may include a
// leading/trailing partial block, never excludes a qualifying tuple.
func (s *Store) SIDRange(loKey, hiKey types.Row) (from, to uint64) {
	nb := s.NumBlocks()
	if nb == 0 {
		return 0, 0
	}
	first, last := 0, nb-1
	if loKey != nil {
		// First block that could contain loKey: the last block whose first
		// key is strictly below loKey. A block whose first key prefix-equals
		// loKey does not exclude its predecessor — with a prefix bound, the
		// predecessor's tail can still hold prefix-equal keys.
		lo, hi := 0, nb-1
		first = 0
		for lo <= hi {
			mid := (lo + hi) / 2
			if comparePrefix(loKey, s.sparse[mid]) > 0 {
				first = mid
				lo = mid + 1
			} else {
				hi = mid - 1
			}
		}
	}
	if hiKey != nil {
		// Last block that could contain hiKey: the last block whose first
		// key is <= hiKey.
		lo, hi := 0, nb-1
		last = 0
		found := false
		for lo <= hi {
			mid := (lo + hi) / 2
			if comparePrefix(hiKey, s.sparse[mid]) >= 0 {
				last = mid
				found = true
				lo = mid + 1
			} else {
				hi = mid - 1
			}
		}
		if !found {
			// hiKey sorts before the first block's first key: only inserts
			// in front of the table can match; empty stable range.
			return 0, 0
		}
	}
	if last < first {
		return 0, 0
	}
	from = uint64(first) * uint64(s.blockRows)
	to = uint64(last+1) * uint64(s.blockRows)
	if to > s.nrows {
		to = s.nrows
	}
	return from, to
}

// Scanner iterates a SID range of the store, producing schema-typed batches
// for a column subset.
type Scanner struct {
	store *Store
	cols  []int
	sid   uint64 // next SID to produce
	end   uint64
	// decoded block (tail) per requested column
	bufs    []*vector.Vector
	blkIdx  int // which block the bufs hold, -1 if none
	blkSkip int // value index the bufs start at within that block
}

// NewScanner returns a scanner over SIDs [from, to) producing the given
// columns. to is clamped to the table size.
func (s *Store) NewScanner(cols []int, from, to uint64) *Scanner {
	if to > s.nrows {
		to = s.nrows
	}
	if from > to {
		from = to
	}
	return &Scanner{
		store:  s,
		cols:   append([]int(nil), cols...),
		sid:    from,
		end:    to,
		bufs:   make([]*vector.Vector, len(cols)),
		blkIdx: -1,
	}
}

// NextSID returns the SID the next produced row will have.
func (sc *Scanner) NextSID() uint64 { return sc.sid }

// SizeHint returns exactly how many rows remain in the scanner's SID range.
func (sc *Scanner) SizeHint() int { return int(sc.end - sc.sid) }

// Next appends up to max rows to out (one vector per requested column, plus
// nothing else) and returns the number appended; 0 means the range is done.
// out's vectors must match the requested columns' kinds.
func (sc *Scanner) Next(out *vector.Batch, max int) (int, error) {
	if sc.sid >= sc.end || max <= 0 {
		return 0, nil
	}
	s := sc.store
	blk := int(sc.sid) / s.blockRows
	if blk != sc.blkIdx {
		// Entering a block mid-way (only ever the scan's first block) decodes
		// just the tail from the entry offset: a point probe at the end of a
		// big block skips the bulk of its decode work.
		skip := int(sc.sid) % s.blockRows
		for i, c := range sc.cols {
			if sc.bufs[i] == nil {
				sc.bufs[i] = vector.New(s.schema.Cols[c].Kind, s.blockRows-skip)
			}
			if err := s.decodeBlockTailInto(c, blk, skip, sc.bufs[i]); err != nil {
				return 0, err
			}
		}
		sc.blkIdx = blk
		sc.blkSkip = skip
	}
	off := int(sc.sid)%s.blockRows - sc.blkSkip
	blockEnd := uint64(blk+1) * uint64(s.blockRows)
	if blockEnd > sc.end {
		blockEnd = sc.end
	}
	n := int(blockEnd - sc.sid)
	if n > max {
		n = max
	}
	for i := range sc.cols {
		out.Vecs[i].AppendRange(sc.bufs[i], off, off+n)
	}
	sc.sid += uint64(n)
	return n, nil
}
