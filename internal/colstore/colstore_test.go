package colstore

import (
	"fmt"
	"testing"

	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

func testSchema() *types.Schema {
	return types.MustSchema([]types.Column{
		{Name: "k", Kind: types.Int64},
		{Name: "s", Kind: types.String},
		{Name: "f", Kind: types.Float64},
		{Name: "b", Kind: types.Bool},
	}, []int{0})
}

func buildStore(t testing.TB, n, blockRows int, compressed bool) *Store {
	t.Helper()
	b := NewBuilder(testSchema(), nil, blockRows, compressed)
	for i := 0; i < n; i++ {
		row := types.Row{
			types.Int(int64(i * 2)), // even keys so gaps exist
			types.Str(fmt.Sprintf("s%04d", i)),
			types.Float(float64(i) / 2),
			types.BoolVal(i%3 == 0),
		}
		if err := b.Add(row); err != nil {
			t.Fatal(err)
		}
	}
	s, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildAndMeta(t *testing.T) {
	s := buildStore(t, 100, 16, false)
	if s.NRows() != 100 {
		t.Errorf("NRows = %d", s.NRows())
	}
	if s.NumBlocks() != 7 { // ceil(100/16)
		t.Errorf("NumBlocks = %d", s.NumBlocks())
	}
	if s.BlockRows() != 16 || s.Compressed() {
		t.Error("meta broken")
	}
	if s.EncodedSize(-1) == 0 || s.EncodedSize(0) == 0 {
		t.Error("EncodedSize zero")
	}
	if s.EncodedSize(0) >= s.EncodedSize(-1) {
		t.Error("single column should be smaller than whole table")
	}
}

func TestBuilderRejectsOutOfOrder(t *testing.T) {
	b := NewBuilder(testSchema(), nil, 4, false)
	row := func(k int64) types.Row {
		return types.Row{types.Int(k), types.Str("x"), types.Float(0), types.BoolVal(false)}
	}
	if err := b.Add(row(5)); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(row(5)); err == nil {
		t.Error("duplicate key accepted")
	}
	b2 := NewBuilder(testSchema(), nil, 4, false)
	if err := b2.Add(row(5)); err != nil {
		t.Fatal(err)
	}
	if err := b2.Add(row(3)); err == nil {
		t.Error("descending key accepted")
	}
}

func TestBuilderRejectsBadRow(t *testing.T) {
	b := NewBuilder(testSchema(), nil, 4, false)
	if err := b.Add(types.Row{types.Int(1)}); err == nil {
		t.Error("short row accepted")
	}
	if _, err := b.Finish(); err == nil {
		t.Error("Finish should propagate builder error")
	}
}

func TestRowAtAndKeyAt(t *testing.T) {
	for _, compressed := range []bool{false, true} {
		s := buildStore(t, 100, 16, compressed)
		for _, sid := range []uint64{0, 15, 16, 99} {
			row, err := s.RowAt(sid, []int{0, 1, 2, 3})
			if err != nil {
				t.Fatal(err)
			}
			i := int64(sid)
			if row[0].I != i*2 || row[1].S != fmt.Sprintf("s%04d", i) {
				t.Errorf("compressed=%v RowAt(%d) = %v", compressed, sid, row)
			}
			key, err := s.KeyAt(sid)
			if err != nil {
				t.Fatal(err)
			}
			if len(key) != 1 || key[0].I != i*2 {
				t.Errorf("KeyAt(%d) = %v", sid, key)
			}
		}
		if _, err := s.RowAt(100, []int{0}); err == nil {
			t.Error("out-of-range SID accepted")
		}
	}
}

func scanAll(t *testing.T, s *Store, cols []int, from, to uint64, batchSize int) *vector.Batch {
	t.Helper()
	kinds := make([]types.Kind, len(cols))
	for i, c := range cols {
		kinds[i] = s.Schema().Cols[c].Kind
	}
	out := vector.NewBatch(kinds, 64)
	sc := s.NewScanner(cols, from, to)
	for {
		n, err := sc.Next(out, batchSize)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	return out
}

func TestScannerFullAndRange(t *testing.T) {
	for _, compressed := range []bool{false, true} {
		s := buildStore(t, 100, 16, compressed)
		full := scanAll(t, s, []int{0, 2}, 0, s.NRows(), 7)
		if full.Len() != 100 {
			t.Fatalf("full scan returned %d rows", full.Len())
		}
		for i := 0; i < 100; i++ {
			if full.Vecs[0].I[i] != int64(i*2) || full.Vecs[1].F[i] != float64(i)/2 {
				t.Fatalf("row %d wrong: %d %f", i, full.Vecs[0].I[i], full.Vecs[1].F[i])
			}
		}
		// mid-block to mid-block range
		part := scanAll(t, s, []int{1}, 10, 35, 4)
		if part.Len() != 25 {
			t.Fatalf("range scan returned %d rows", part.Len())
		}
		if part.Vecs[0].S[0] != "s0010" || part.Vecs[0].S[24] != "s0034" {
			t.Errorf("range scan content wrong: %q %q", part.Vecs[0].S[0], part.Vecs[0].S[24])
		}
	}
}

func TestScannerClampsRange(t *testing.T) {
	s := buildStore(t, 10, 4, false)
	got := scanAll(t, s, []int{0}, 5, 999, 100)
	if got.Len() != 5 {
		t.Errorf("clamped scan returned %d rows", got.Len())
	}
	empty := scanAll(t, s, []int{0}, 8, 3, 100)
	if empty.Len() != 0 {
		t.Error("inverted range should be empty")
	}
}

func TestDeviceAccounting(t *testing.T) {
	s := buildStore(t, 100, 16, false)
	dev := s.Device()
	dev.DropCaches()
	dev.ResetStats()
	scanAll(t, s, []int{0}, 0, s.NRows(), 50)
	coldBytes, coldReads := dev.Stats()
	if coldBytes != s.EncodedSize(0) {
		t.Errorf("cold scan read %d bytes, column is %d", coldBytes, s.EncodedSize(0))
	}
	if coldReads != uint64(s.NumBlocks()) {
		t.Errorf("cold scan did %d reads, want %d", coldReads, s.NumBlocks())
	}
	// hot rerun: no new bytes
	dev.ResetStats()
	scanAll(t, s, []int{0}, 0, s.NRows(), 50)
	hotBytes, _ := dev.Stats()
	if hotBytes != 0 {
		t.Errorf("hot scan read %d bytes, want 0", hotBytes)
	}
	// cold again after DropCaches
	dev.DropCaches()
	dev.ResetStats()
	scanAll(t, s, []int{0}, 0, s.NRows(), 50)
	again, _ := dev.Stats()
	if again != coldBytes {
		t.Errorf("re-cold scan read %d bytes, want %d", again, coldBytes)
	}
}

func TestEvictReleasesPoolEntries(t *testing.T) {
	dev := NewDevice()
	build := func(n int) *Store {
		b := NewBuilder(testSchema(), dev, 16, false)
		for i := 0; i < n; i++ {
			if err := b.Add(types.Row{types.Int(int64(i)), types.Str("s"), types.Float(0), types.BoolVal(false)}); err != nil {
				t.Fatal(err)
			}
		}
		s, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	old, fresh := build(100), build(100)
	scanAll(t, old, []int{0, 1}, 0, old.NRows(), 50)
	scanAll(t, fresh, []int{0, 1}, 0, fresh.NRows(), 50)
	both := dev.PoolBlocks()
	old.Evict()
	if got := dev.PoolBlocks(); got != both/2 {
		t.Fatalf("pool holds %d blocks after evicting one of two stores, want %d", got, both/2)
	}
	// The evicted store stays readable; its fetches are cold again, and the
	// surviving store's blocks stay hot.
	dev.ResetStats()
	scanAll(t, old, []int{0, 1}, 0, old.NRows(), 50)
	if bytes, _ := dev.Stats(); bytes == 0 {
		t.Fatal("re-scan of evicted store charged no cold reads")
	}
	dev.ResetStats()
	scanAll(t, fresh, []int{0, 1}, 0, fresh.NRows(), 50)
	if bytes, _ := dev.Stats(); bytes != 0 {
		t.Fatalf("eviction of a sibling store cooled %d bytes of the survivor", bytes)
	}
}

func TestIOVolumeScalesWithColumns(t *testing.T) {
	s := buildStore(t, 1000, 64, false)
	dev := s.Device()
	dev.DropCaches()
	dev.ResetStats()
	scanAll(t, s, []int{0}, 0, s.NRows(), 128)
	one, _ := dev.Stats()
	dev.DropCaches()
	dev.ResetStats()
	scanAll(t, s, []int{0, 1, 2}, 0, s.NRows(), 128)
	three, _ := dev.Stats()
	if three <= one {
		t.Errorf("3-column scan (%d B) not larger than 1-column (%d B)", three, one)
	}
}

func TestCompressionShrinksSortedKeys(t *testing.T) {
	raw := buildStore(t, 5000, 256, false)
	comp := buildStore(t, 5000, 256, true)
	if comp.EncodedSize(0) >= raw.EncodedSize(0) {
		t.Errorf("compressed key column %d B >= raw %d B", comp.EncodedSize(0), raw.EncodedSize(0))
	}
}

func TestSIDRange(t *testing.T) {
	s := buildStore(t, 100, 16, false) // keys 0,2,...,198; blocks of 16 rows
	// unbounded
	from, to := s.SIDRange(nil, nil)
	if from != 0 || to != 100 {
		t.Errorf("unbounded = [%d,%d)", from, to)
	}
	// key 40 is row 20, in block 1 (rows 16..31)
	from, to = s.SIDRange(types.Row{types.Int(40)}, types.Row{types.Int(40)})
	if from != 16 || to != 32 {
		t.Errorf("point range = [%d,%d), want [16,32)", from, to)
	}
	// range spanning blocks: keys 40..100 → rows 20..50 → blocks 1..3
	from, to = s.SIDRange(types.Row{types.Int(40)}, types.Row{types.Int(100)})
	if from != 16 || to != 64 {
		t.Errorf("span range = [%d,%d), want [16,64)", from, to)
	}
	// below all keys
	from, to = s.SIDRange(nil, types.Row{types.Int(-5)})
	if from != 0 || to != 0 {
		t.Errorf("below-all = [%d,%d), want empty", from, to)
	}
	// above all keys: lo greater than everything still lands in last block
	from, to = s.SIDRange(types.Row{types.Int(9999)}, nil)
	if from != 96 || to != 100 {
		t.Errorf("above-all lo = [%d,%d), want [96,100)", from, to)
	}
	// range must contain every matching row even between block boundaries
	for key := int64(0); key < 200; key += 2 {
		f, tt := s.SIDRange(types.Row{types.Int(key)}, types.Row{types.Int(key)})
		sid := uint64(key / 2)
		if sid < f || sid >= tt {
			t.Fatalf("key %d at sid %d outside range [%d,%d)", key, sid, f, tt)
		}
	}
}

func TestSIDRangeEmptyStore(t *testing.T) {
	b := NewBuilder(testSchema(), nil, 4, false)
	s, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if from, to := s.SIDRange(nil, nil); from != 0 || to != 0 {
		t.Error("empty store should give empty range")
	}
}

func TestAddBatch(t *testing.T) {
	src := buildStore(t, 50, 8, false)
	all := scanAll(t, src, []int{0, 1, 2, 3}, 0, 50, 50)
	all.Rids = nil

	b := NewBuilder(testSchema(), nil, 8, true)
	if err := b.AddBatch(all); err != nil {
		t.Fatal(err)
	}
	s2, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if s2.NRows() != 50 {
		t.Fatalf("AddBatch store has %d rows", s2.NRows())
	}
	for sid := uint64(0); sid < 50; sid++ {
		a, _ := src.RowAt(sid, []int{0, 1, 2, 3})
		c, _ := s2.RowAt(sid, []int{0, 1, 2, 3})
		if types.CompareRows(a, c) != 0 {
			t.Fatalf("row %d differs: %v vs %v", sid, a, c)
		}
	}
}

func TestAddBatchRejectsOutOfOrder(t *testing.T) {
	kinds := []types.Kind{types.Int64, types.String, types.Float64, types.Bool}
	bad := vector.NewBatch(kinds, 2)
	bad.AppendRow(types.Row{types.Int(10), types.Str("a"), types.Float(0), types.BoolVal(false)})
	b := NewBuilder(testSchema(), nil, 8, false)
	if err := b.AddBatch(bad); err != nil {
		t.Fatal(err)
	}
	bad2 := vector.NewBatch(kinds, 2)
	bad2.AppendRow(types.Row{types.Int(5), types.Str("b"), types.Float(0), types.BoolVal(false)})
	if err := b.AddBatch(bad2); err == nil {
		t.Error("out-of-order batch accepted")
	}
}

func TestPointCacheEviction(t *testing.T) {
	s := buildStore(t, 100*pointCacheCap, 16, false)
	// touch more blocks than the cache holds; correctness must be unaffected
	for i := 0; i < 100*pointCacheCap; i += 16 {
		row, err := s.RowAt(uint64(i), []int{0})
		if err != nil {
			t.Fatal(err)
		}
		if row[0].I != int64(i*2) {
			t.Fatalf("RowAt(%d) = %v", i, row)
		}
	}
}

// TestScannerMidBlockStart checks the partial first-block decode: a scanner
// entering at every offset of a block must produce exactly the suffix a
// full-range scan produces, for all column kinds, compressed or not.
func TestScannerMidBlockStart(t *testing.T) {
	const n, blockRows = 100, 16
	for _, compressed := range []bool{false, true} {
		s := buildStore(t, n, blockRows, compressed)
		cols := []int{0, 1, 2, 3}
		full := scanAll(t, s, cols, 0, uint64(n), 7)
		for from := uint64(0); from < uint64(n); from += 3 {
			got := scanAll(t, s, cols, from, uint64(n), 7)
			if got.Len() != n-int(from) {
				t.Fatalf("compressed=%v from=%d: got %d rows, want %d", compressed, from, got.Len(), n-int(from))
			}
			for i := 0; i < got.Len(); i++ {
				for c := range cols {
					a, b := got.Vecs[c].Get(i), full.Vecs[c].Get(i+int(from))
					if types.Compare(a, b) != 0 {
						t.Fatalf("compressed=%v from=%d row %d col %d: %v != %v", compressed, from, i, c, a, b)
					}
				}
			}
		}
	}
}

// TestScannerMidBlockByteAccounting checks that tail decode does not change
// what the device charges: the whole encoded block is still a single cold
// fetch of its full size.
func TestScannerMidBlockByteAccounting(t *testing.T) {
	const n, blockRows = 64, 16
	s := buildStore(t, n, blockRows, true)
	dev := s.Device()

	dev.DropCaches()
	dev.ResetStats()
	scanAll(t, s, []int{0}, 3, 8, 4) // mid-block probe within block 0
	partialBytes, partialReads := dev.Stats()

	dev.DropCaches()
	dev.ResetStats()
	scanAll(t, s, []int{0}, 0, 16, 4) // whole block 0
	fullBytes, fullReads := dev.Stats()

	if partialBytes != fullBytes || partialReads != fullReads {
		t.Errorf("tail decode changed accounting: partial %d/%d, full %d/%d",
			partialBytes, partialReads, fullBytes, fullReads)
	}
}
