package colstore

// Benchmark and regression guard for the point-probe tail decode: a scanner
// entering a block mid-way materializes only the tail from its entry offset,
// so a probe near the end of a big block does a fraction of the decode work a
// full-block decode does. The device still fetches (and charges) the whole
// encoded block — partial decode changes CPU and allocation, not I/O.

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"testing"

	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

// BenchmarkPositionProbe measures a 16-row probe landing near the tail of a
// late block — the shape the transaction layer's insert-position and
// find-by-key probes produce.
func BenchmarkPositionProbe(b *testing.B) {
	const blockRows = 8192
	const n = blockRows * 8
	for _, compressed := range []bool{false, true} {
		b.Run(fmt.Sprintf("compressed=%v", compressed), func(b *testing.B) {
			s := buildStore(b, n, blockRows, compressed)
			cols := []int{0, 1}
			kinds := []types.Kind{types.Int64, types.String}
			out := vector.NewBatch(kinds, 16)
			probe := uint64(n - 17) // 16 rows from the end of the last block
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc := s.NewScanner(cols, probe, uint64(n))
				out.Reset()
				if _, err := sc.Next(out, 16); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// allocBytes reports the heap bytes fn allocates per call, averaged over
// rounds, with the collector paused so TotalAlloc deltas are exact.
func allocBytes(fn func(), rounds int) uint64 {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var before, after runtime.MemStats
	fn() // warm caches and one-time setup
	runtime.ReadMemStats(&before)
	for i := 0; i < rounds; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return (after.TotalAlloc - before.TotalAlloc) / uint64(rounds)
}

// TestPositionProbeDecodesTail is the alloc guard: a probe entering a block
// 16 rows from its end must allocate far less than one entering at the block
// start, which decodes all blockRows values.
func TestPositionProbeDecodesTail(t *testing.T) {
	const blockRows = 8192
	const n = blockRows * 2
	s := buildStore(t, n, blockRows, false)
	cols := []int{0, 1} // int64 + string: both decode paths
	kinds := []types.Kind{types.Int64, types.String}
	out := vector.NewBatch(kinds, 16)

	probeAt := func(sid uint64) func() {
		return func() {
			sc := s.NewScanner(cols, sid, uint64(n))
			out.Reset()
			if _, err := sc.Next(out, 16); err != nil {
				t.Fatal(err)
			}
		}
	}
	head := allocBytes(probeAt(blockRows), 50)      // block start: full decode
	tail := allocBytes(probeAt(2*blockRows-17), 50) // 16 rows before the end
	if tail*8 > head {
		t.Errorf("tail probe allocates %d bytes, head probe %d: partial decode regressed", tail, head)
	}
}
