package colstore

import (
	"fmt"
	"path/filepath"
	"testing"

	"pdtstore/internal/storage"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

func buildFileStore(t *testing.T, dev *Device, n, blockRows int, compressed bool, path string) *Store {
	t.Helper()
	b, err := NewFileBuilder(testSchema(), dev, blockRows, compressed, path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		row := types.Row{
			types.Int(int64(i * 2)),
			types.Str(fmt.Sprintf("s%04d", i)),
			types.Float(float64(i) / 2),
			types.BoolVal(i%3 == 0),
		}
		if err := b.Add(row); err != nil {
			t.Fatal(err)
		}
	}
	s, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func scanAllRows(t *testing.T, s *Store) []types.Row {
	t.Helper()
	cols := []int{0, 1, 2, 3}
	sc := s.NewScanner(cols, 0, s.NRows())
	out := vector.NewBatch([]types.Kind{types.Int64, types.String, types.Float64, types.Bool}, 64)
	var rows []types.Row
	for {
		out.Reset()
		n, err := sc.Next(out, 64)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			return rows
		}
		for i := 0; i < n; i++ {
			rows = append(rows, out.Row(i).Clone())
		}
	}
}

// TestFileStoreMatchesRAMStore: the same rows through the file-backed path
// must scan identically to the RAM-resident path, both hot and after the
// buffer pool is dropped (forcing real preads).
func TestFileStoreMatchesRAMStore(t *testing.T) {
	for _, compressed := range []bool{false, true} {
		path := filepath.Join(t.TempDir(), "t.seg")
		dev := NewDevice()
		fs := buildFileStore(t, dev, 100, 16, compressed, path)
		defer fs.Close()
		ram := buildStore(t, 100, 16, compressed)

		want := scanAllRows(t, ram)
		got := scanAllRows(t, fs)
		if len(got) != len(want) {
			t.Fatalf("compressed=%v: %d rows, want %d", compressed, len(got), len(want))
		}
		for i := range want {
			if types.CompareRows(got[i], want[i]) != 0 || got[i][1].S != want[i][1].S {
				t.Fatalf("compressed=%v row %d: %v != %v", compressed, i, got[i], want[i])
			}
		}
		dev.DropCaches()
		dev.ResetStats()
		cold := scanAllRows(t, fs)
		if len(cold) != len(want) {
			t.Fatalf("cold rescan lost rows")
		}
		bytes, reads := dev.Stats()
		if bytes == 0 || reads == 0 {
			t.Fatalf("cold file scan charged no I/O (bytes=%d reads=%d)", bytes, reads)
		}
		if bytes != fs.EncodedSize(-1) {
			t.Fatalf("cold full scan read %d bytes, EncodedSize says %d", bytes, fs.EncodedSize(-1))
		}
	}
}

// TestFileStoreReopen: a finished segment reopened through OpenSegment +
// FromSegment must serve the same data and metadata.
func TestFileStoreReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.seg")
	dev := NewDevice()
	fs := buildFileStore(t, dev, 75, 16, true, path)
	want := scanAllRows(t, fs)
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	seg, err := storage.OpenSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	re := FromSegment(seg, NewDevice())
	defer re.Close()
	if re.NRows() != 75 || re.BlockRows() != 16 || !re.Compressed() {
		t.Fatalf("reopened meta: nrows=%d blockRows=%d compressed=%v", re.NRows(), re.BlockRows(), re.Compressed())
	}
	got := scanAllRows(t, re)
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if types.CompareRows(got[i], want[i]) != 0 {
			t.Fatalf("row %d: %v != %v", i, got[i], want[i])
		}
	}
	// Point reads and the sparse index survive the round trip too.
	if row, err := re.RowAt(10, []int{0, 1}); err != nil || row[0].I != 20 {
		t.Fatalf("RowAt(10) = %v, %v", row, err)
	}
	from, to := re.SIDRange(types.Row{types.Int(40)}, types.Row{types.Int(60)})
	if from >= to || to > re.NRows() {
		t.Fatalf("SIDRange = [%d, %d)", from, to)
	}
}

// TestFileStoreEvictRechargesIO: evicting a file-backed store drops its pool
// bytes, so the next read really hits the disk again.
func TestFileStoreEvictRechargesIO(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.seg")
	dev := NewDevice()
	fs := buildFileStore(t, dev, 64, 16, false, path)
	defer fs.Close()

	scanAllRows(t, fs)
	if dev.PoolBlocks() == 0 {
		t.Fatal("scan left nothing in the pool")
	}
	dev.ResetStats()
	scanAllRows(t, fs)
	if bytes, _ := dev.Stats(); bytes != 0 {
		t.Fatalf("warm scan charged %d bytes", bytes)
	}
	fs.Evict()
	if dev.PoolBlocks() != 0 {
		t.Fatalf("%d pool blocks survived Evict", dev.PoolBlocks())
	}
	dev.ResetStats()
	scanAllRows(t, fs)
	if bytes, _ := dev.Stats(); bytes == 0 {
		t.Fatal("post-evict scan charged no bytes")
	}
}

// TestFileBuilderAbortRemovesPartialFile: the orderly error path leaves no
// stray segment behind.
func TestFileBuilderAbortRemovesPartialFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.seg")
	b, err := NewFileBuilder(testSchema(), nil, 4, false, path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		row := types.Row{types.Int(int64(i)), types.Str("x"), types.Float(0), types.BoolVal(false)}
		if err := b.Add(row); err != nil {
			t.Fatal(err)
		}
	}
	b.Abort()
	if _, err := storage.OpenSegment(path); err == nil {
		t.Fatal("aborted segment still opens")
	}
	if _, err := b.Finish(); err == nil {
		t.Fatal("Finish after Abort must fail")
	}
}
