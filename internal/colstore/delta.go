package colstore

// Incremental checkpoints: a DeltaBuilder writes generation N+1 as a segment
// holding only the blocks the frozen PDT dirtied, plus a block map resolving
// every unchanged block into the prior generation's chain. The table layer
// drives it in two regions, matching the positional structure of a PDT:
//
//   - Region A (blocks before the first insert/delete): tuple positions are
//     stable, so only columns with in-place modifies change. Each dirty
//     (column, block) is re-encoded via WriteBlock; every clean cell inherits
//     its placement — and its sparse-index key — from the base verbatim.
//   - Region B (from the first insert/delete on): positions shift, so every
//     column's tail streams through AppendTail like a full checkpoint,
//     recomputing the sparse index as blocks fill.
//
// Finish renumbers the chain: base members that no new placement references
// fall out (fully superseded — the caller unlinks them after the manifest
// swap), survivors are retained, and the new segment joins as the last
// member carrying the footer and block map for the whole generation.

import (
	"fmt"

	"pdtstore/internal/storage"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

// newSegMark marks a placement that points into the segment being written;
// Finish rewrites it to the new segment's final chain position.
const newSegMark = ^uint32(0)

// DeltaBuilder streams an incremental checkpoint into a new segment file.
type DeltaBuilder struct {
	base      *Store
	segw      *storage.SegmentWriter
	newRows   uint64
	newBlocks int
	shiftBlk  int
	places    [][]storage.BlockPlace // Seg: base chain index, or newSegMark
	sparse    []types.Row
	physBlk   []int // blocks appended to the new segment, per column
	pending   *vector.Batch
	tailBlk   int    // next logical block the region-B stream fills
	tailRows  uint64 // region-B rows appended so far
	err       error
}

// NewDeltaBuilder starts an incremental checkpoint of base into a new
// segment at path. newRows is the merged image's row count and shiftBlk the
// first block whose tuple positions shift (== the base's block count when no
// insert/delete occurred): placements and sparse keys of all earlier blocks
// are inherited from base, to be selectively overwritten via WriteBlock.
func NewDeltaBuilder(base *Store, path string, newRows uint64, shiftBlk int) (*DeltaBuilder, error) {
	if base.segs == nil {
		return nil, fmt.Errorf("colstore: incremental checkpoint needs a file-backed base")
	}
	segw, err := storage.CreateSegment(path, base.schema, base.blockRows, base.compressed)
	if err != nil {
		return nil, err
	}
	nb := 0
	if newRows > 0 {
		nb = int((newRows-1)/uint64(base.blockRows)) + 1
	}
	if shiftBlk > nb {
		shiftBlk = nb
	}
	ncols := base.schema.NumCols()
	places := make([][]storage.BlockPlace, ncols)
	for c := range places {
		col := make([]storage.BlockPlace, nb)
		for b := 0; b < shiftBlk; b++ {
			si, pb := base.place(c, b)
			col[b] = storage.BlockPlace{Seg: uint32(si), Blk: uint32(pb)}
		}
		places[c] = col
	}
	inherit := shiftBlk
	if inherit > len(base.sparse) {
		inherit = len(base.sparse)
	}
	kinds := make([]types.Kind, ncols)
	for i, c := range base.schema.Cols {
		kinds[i] = c.Kind
	}
	return &DeltaBuilder{
		base:      base,
		segw:      segw,
		newRows:   newRows,
		newBlocks: nb,
		shiftBlk:  shiftBlk,
		places:    places,
		sparse:    append([]types.Row(nil), base.sparse[:inherit]...),
		physBlk:   make([]int, ncols),
		pending:   vector.NewBatch(kinds, base.blockRows),
		tailBlk:   shiftBlk,
	}, nil
}

// WriteBlock re-encodes one dirty region-A block of one column into the new
// segment, replacing its inherited placement. Positions are stable in region
// A, so v holds exactly the block's row count and the block's sparse key is
// unchanged (in-place modifies never touch sort-key columns — a sort-key
// update is a delete+insert, which shifts positions and lands in region B).
func (d *DeltaBuilder) WriteBlock(col, blk int, v *vector.Vector) error {
	if d.err != nil {
		return d.err
	}
	if blk >= d.shiftBlk {
		d.err = fmt.Errorf("colstore: WriteBlock(%d) in shifted region (shift block %d)", blk, d.shiftBlk)
		return d.err
	}
	return d.writeBlock(col, blk, v)
}

func (d *DeltaBuilder) writeBlock(col, blk int, v *vector.Vector) error {
	enc := encodeVec(v, d.base.compressed)
	if err := d.segw.AppendBlock(col, enc, zoneOf(v)); err != nil {
		d.err = err
		return err
	}
	d.places[col][blk] = storage.BlockPlace{Seg: newSegMark, Blk: uint32(d.physBlk[col])}
	d.physBlk[col]++
	return nil
}

// AppendTail streams region-B rows — every column, in final position order
// starting at block shiftBlk — re-blocking and re-encoding them and
// recomputing the sparse index, like a full checkpoint would from that point.
func (d *DeltaBuilder) AppendTail(batch *vector.Batch) error {
	if d.err != nil {
		return d.err
	}
	n := batch.Len()
	for i := 0; i < n; {
		if d.pending.Len() == 0 {
			key := d.base.schema.KeyOf(batch.Row(i))
			if ns := len(d.sparse); ns > 0 && types.CompareRows(d.sparse[ns-1], key) >= 0 {
				d.err = fmt.Errorf("colstore: tail rows not in sort-key order")
				return d.err
			}
			d.sparse = append(d.sparse, key)
		}
		take := d.base.blockRows - d.pending.Len()
		if rest := n - i; take > rest {
			take = rest
		}
		for c, v := range d.pending.Vecs {
			v.AppendRange(batch.Vecs[c], i, i+take)
		}
		i += take
		if d.pending.Len() == d.base.blockRows {
			d.flushTail()
		}
	}
	d.tailRows += uint64(n)
	return d.err
}

func (d *DeltaBuilder) flushTail() {
	for c, v := range d.pending.Vecs {
		if d.writeBlock(c, d.tailBlk, v) != nil {
			return
		}
	}
	d.tailBlk++
	d.pending.Reset()
}

// Abort discards the build, removing the partial segment file.
func (d *DeltaBuilder) Abort() {
	if d.segw != nil {
		d.segw.Abort()
		d.segw = nil
	}
	if d.err == nil {
		d.err = fmt.Errorf("colstore: delta builder aborted")
	}
}

// Finish seals the incremental checkpoint: flushes the tail, renumbers the
// chain (dropping base members no placement references any more), writes the
// block map into the footer, fsyncs, and returns the new generation's store.
// Surviving base members are retained — the base store keeps its own
// references and releases them independently on Close.
func (d *DeltaBuilder) Finish() (*Store, error) {
	if d.err == nil && d.pending.Len() > 0 {
		d.flushTail()
	}
	if d.err == nil && len(d.sparse) != d.newBlocks {
		d.err = fmt.Errorf("colstore: delta builder filled %d of %d blocks", len(d.sparse), d.newBlocks)
	}
	if d.err == nil && d.shiftBlk < d.newBlocks && uint64(d.shiftBlk)*uint64(d.base.blockRows)+d.tailRows != d.newRows {
		d.err = fmt.Errorf("colstore: delta tail holds %d rows, image needs %d", d.tailRows, d.newRows-uint64(d.shiftBlk)*uint64(d.base.blockRows))
	}
	if d.err != nil {
		d.Abort()
		return nil, d.err
	}
	// Renumber: keep only base chain members some placement still references,
	// preserving their relative order; the new segment becomes the last member.
	used := make([]bool, len(d.base.segs))
	for _, col := range d.places {
		for _, p := range col {
			if p.Seg != newSegMark {
				used[p.Seg] = true
			}
		}
	}
	remap := make([]uint32, len(d.base.segs))
	var chain []*storage.Segment
	for i, u := range used {
		if u {
			remap[i] = uint32(len(chain))
			chain = append(chain, d.base.segs[i])
		}
	}
	newIdx := uint32(len(chain))
	for _, col := range d.places {
		for j, p := range col {
			if p.Seg == newSegMark {
				col[j].Seg = newIdx
			} else {
				col[j].Seg = remap[p.Seg]
			}
		}
	}
	d.segw.SetPlacements(d.places)
	seg, err := d.segw.Finish(d.newRows, d.sparse)
	if err != nil {
		d.segw.Abort()
		d.segw = nil
		d.err = err
		return nil, err
	}
	d.segw = nil
	for _, s := range chain {
		s.Retain()
	}
	chain = append(chain, seg)
	dev := d.base.dev
	ids := make([]uint64, len(chain))
	for i, s := range chain {
		ids[i] = dev.segmentID(s)
	}
	return &Store{
		schema:     d.base.schema,
		id:         dev.register(),
		blockRows:  d.base.blockRows,
		compressed: d.base.compressed,
		nrows:      d.newRows,
		segs:       chain,
		segIDs:     ids,
		places:     d.places,
		sparse:     d.sparse,
		dev:        dev,
		decoded:    make(map[blockKey]*vector.Vector),
	}, nil
}
