package bench

// Point/selective-predicate lookup latency: the access-path figure. Two
// selective predicates over a 1M-row table — a key-clustered range that zone
// maps answer, and an equality probe on a scattered high-cardinality column
// that only the secondary index can answer — each measured cold (dropped
// caches, modeled per-block read latency) on the full-scan path and on the
// pruned path. The speedup is block arithmetic made visible: a full cold
// scan pays one modeled read per (column, block); the pruned path pays only
// for kept blocks.

import (
	"fmt"
	"time"

	"pdtstore/internal/engine"
	"pdtstore/internal/index"
	"pdtstore/internal/table"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

// LookupConfig sizes the lookup figure.
type LookupConfig struct {
	Tuples      int           // table size (default 1M)
	BlockRows   int           // colstore block size (default 4096)
	ReadLatency time.Duration // modeled per-block cold-read latency (default 200µs)
	Selectivity float64       // zone-range case selectivity (default 0.001)
	Seed        int64
}

// LookupRow is one measured cell: one (case, access path) pair.
type LookupRow struct {
	Case          string  `json:"case"` // "zone-range" or "index-eq"
	Path          string  `json:"path"` // "full" or "pruned"
	Rows          int     `json:"rows"`
	ColdNS        float64 `json:"cold_ns"`
	BlocksTotal   int     `json:"blocks_total"`
	ZoneSkips     uint64  `json:"zone_skips"`
	IndexSkips    uint64  `json:"index_skips"`
	SpeedupVsFull float64 `json:"speedup_vs_full"` // pruned rows only
}

// lookupSchema: clustered sort key, scattered high-cardinality id.
var lookupSchema = types.MustSchema([]types.Column{
	{Name: "k", Kind: types.Int64},
	{Name: "id", Kind: types.Int64},
}, []int{0})

// scatter is a bijection on [0, n) for power-of-two-free n via multiply+mod;
// it decorrelates id values from key order so id zones are useless and only
// the per-block index summaries can answer an equality probe.
func scatter(x, n int64) int64 {
	return (x*2654435761 + 12345) % n
}

// LookupProfile measures both cases on both access paths and returns the
// four rows, pruned rows carrying their speedup over the matching full scan.
func LookupProfile(cfg LookupConfig) ([]LookupRow, error) {
	if cfg.Tuples == 0 {
		cfg.Tuples = 1_000_000
	}
	if cfg.BlockRows == 0 {
		cfg.BlockRows = 4096
	}
	if cfg.ReadLatency == 0 {
		cfg.ReadLatency = 200 * time.Microsecond
	}
	if cfg.Selectivity == 0 {
		cfg.Selectivity = 0.001
	}
	n := int64(cfg.Tuples)
	rows := make([]types.Row, n)
	for i := int64(0); i < n; i++ {
		rows[i] = types.Row{types.Int(i), types.Int(scatter(i, n))}
	}
	tbl, err := table.Load(lookupSchema, rows, table.Options{
		Mode: table.ModePDT, BlockRows: cfg.BlockRows, Compressed: true,
	})
	if err != nil {
		return nil, err
	}
	idx, err := index.Build(tbl.Store(), []int{1})
	if err != nil {
		return nil, err
	}
	tbl.Store().SetAux(idx)
	dev := tbl.Store().Device()
	nblocks := tbl.Store().NumBlocks()

	span := int64(float64(cfg.Tuples) * cfg.Selectivity)
	if span < 1 {
		span = 1
	}
	lo := n / 2
	probeID := scatter(n/3, n)
	cases := []struct {
		name string
		plan func() *engine.Plan
	}{
		{"zone-range", func() *engine.Plan {
			return engine.Scan(tbl, 0, 1).FilterInt64Range(0, lo, lo+span-1)
		}},
		{"index-eq", func() *engine.Plan {
			return engine.Scan(tbl, 0, 1).FilterInt64Eq(1, probeID)
		}},
	}

	var out []LookupRow
	for _, c := range cases {
		var fullNS float64
		for _, path := range []string{"full", "pruned"} {
			p := c.plan()
			if path == "full" {
				p.NoPrune()
			}
			z0, i0 := dev.SkipStats()
			dev.SetReadLatency(cfg.ReadLatency)
			dev.DropCaches()
			got := 0
			start := time.Now()
			err := p.Run(func(b *vector.Batch, sel []uint32) error {
				if sel != nil {
					got += len(sel)
				} else {
					got += b.Len()
				}
				return nil
			})
			elapsed := float64(time.Since(start).Nanoseconds())
			dev.SetReadLatency(0)
			if err != nil {
				return nil, err
			}
			z1, i1 := dev.SkipStats()
			row := LookupRow{
				Case: c.name, Path: path, Rows: got, ColdNS: elapsed,
				BlocksTotal: nblocks, ZoneSkips: z1 - z0, IndexSkips: i1 - i0,
			}
			if path == "full" {
				fullNS = elapsed
				if row.ZoneSkips+row.IndexSkips != 0 {
					return nil, fmt.Errorf("bench: full-scan baseline skipped %d blocks", row.ZoneSkips+row.IndexSkips)
				}
			} else {
				if row.ColdNS > 0 {
					row.SpeedupVsFull = fullNS / row.ColdNS
				}
				if row.ZoneSkips+row.IndexSkips == 0 {
					return nil, fmt.Errorf("bench: pruned %s scan skipped nothing", c.name)
				}
			}
			out = append(out, row)
		}
		// Both paths must agree on the answer, or the figure is fiction.
		if out[len(out)-1].Rows != out[len(out)-2].Rows {
			return nil, fmt.Errorf("bench: %s pruned scan returned %d rows, full scan %d",
				c.name, out[len(out)-1].Rows, out[len(out)-2].Rows)
		}
	}
	return out, nil
}
