package bench

// Write-path benchmarks: the paper's actual headline experiments are update
// throughput and merge (propagate/checkpoint) cost, not scans. This file
// measures them along the axes of §4's update study:
//
//   - Propagate: folding a 10k-entry layer into a 50k-entry PDT, bulk merge
//     vs the per-entry reference (PropagateEntrywise).
//   - Commit+propagate: the tail of Txn.Commit — WAL append of the
//     serialized Trans-PDT plus its propagation into the Write-PDT.
//   - Txn end-to-end: begin, apply a mixed op set (row-at-a-time vs
//     ApplyBatch), commit.
//   - Checkpoint: folding buffered deltas into a fresh stable image through
//     the streaming builder.
//   - Update throughput vs update fraction and table size, PDT (batched and
//     per-op) vs VDT vs "in-place" (every batch immediately merged into the
//     stable image — the no-differential-structure strawman the paper
//     argues against).
//
// cmd/pdtbench's -fig update mode renders these rows and records them in
// BENCH_update.json next to the pre-change seed baseline.

import (
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"

	"pdtstore/internal/pdt"
	"pdtstore/internal/table"
	"pdtstore/internal/txn"
	"pdtstore/internal/types"
	"pdtstore/internal/wal"
)

// UpdateRow is one measured write-path case.
type UpdateRow struct {
	Name          string  `json:"name"`
	Mode          string  `json:"mode,omitempty"`
	TableRows     int     `json:"table_rows,omitempty"`
	Updates       int     `json:"updates,omitempty"`
	NsPerOp       float64 `json:"ns_per_op,omitempty"`
	BytesPerOp    int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp   int64   `json:"allocs_per_op,omitempty"`
	UpdatesPerSec float64 `json:"updates_per_sec,omitempty"`
}

// UpdateConfig sizes the profile. Zero fields select the defaults used by
// the recorded baseline (and by BENCH_update.json).
type UpdateConfig struct {
	PropagateBase  int       `json:"propagate_base"`  // base PDT entries (default 50k)
	PropagateDelta int       `json:"propagate_delta"` // folded layer entries (default 10k)
	CommitWrite    int       `json:"commit_write"`    // Write-PDT entries (default 2k)
	CommitTrans    int       `json:"commit_trans"`    // Trans-PDT entries (default 200)
	TxnTableRows   int       `json:"txn_table_rows"`  // table size for txn end-to-end (default 20k)
	TxnOps         int       `json:"txn_ops"`         // ops per transaction (default 64)
	CheckpointRows int       `json:"checkpoint_rows"` // table size for checkpoint (default 50k)
	CheckpointUpds int       `json:"checkpoint_upds"` // buffered deltas (default 2k)
	ThroughputRows []int     `json:"throughput_rows"` // table sizes (default 20k, 100k)
	UpdateFracs    []float64 `json:"update_fracs"`    // update fractions (default .001, .01, .05)
	BatchSize      int       `json:"batch_size"`      // ops per throughput batch (default 512)
}

func (c *UpdateConfig) fill() {
	if c.PropagateBase == 0 {
		c.PropagateBase = 50_000
	}
	if c.PropagateDelta == 0 {
		c.PropagateDelta = 10_000
	}
	if c.CommitWrite == 0 {
		c.CommitWrite = 2_000
	}
	if c.CommitTrans == 0 {
		c.CommitTrans = 200
	}
	if c.TxnTableRows == 0 {
		c.TxnTableRows = 20_000
	}
	if c.TxnOps == 0 {
		c.TxnOps = 64
	}
	if c.CheckpointRows == 0 {
		c.CheckpointRows = 50_000
	}
	if c.CheckpointUpds == 0 {
		c.CheckpointUpds = 2_000
	}
	if len(c.ThroughputRows) == 0 {
		c.ThroughputRows = []int{20_000, 100_000}
	}
	if len(c.UpdateFracs) == 0 {
		c.UpdateFracs = []float64{0.001, 0.01, 0.05}
	}
	if c.BatchSize == 0 {
		c.BatchSize = 512
	}
}

// ----- workload generator ----------------------------------------------------

func updSchema() *types.Schema {
	return types.MustSchema([]types.Column{
		{Name: "k", Kind: types.Int64},
		{Name: "v", Kind: types.Int64},
		{Name: "w", Kind: types.Int64},
	}, []int{0})
}

// updStride spaces the stable keys so gaps always admit fresh insert keys.
const updStride = 1 << 20

func updStableKeys(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i+1) * updStride
	}
	return out
}

func updRow(key, tag int64) types.Row {
	return types.Row{types.Int(key), types.Int(key + tag), types.Int(tag)}
}

// genLayer applies nOps scattered updates (~40% modify, 30% insert, 30%
// delete) to p in one left-to-right pass over the visible image given by
// keys, returning the updated image. Insert keys bisect the surrounding key
// gap, so ghost ordering stays coherent with real sort keys.
func genLayer(p *pdt.PDT, keys []int64, nOps int, seed int64) ([]int64, error) {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, 0, len(keys)+nOps)
	q := float64(nOps) / float64(len(keys)+1)
	ops := 0
	prev := int64(0)
	for i := 0; i < len(keys); {
		k := keys[i]
		if ops < nOps && rng.Float64() < q {
			r := rng.Float64()
			switch {
			case r < 0.3 && k-prev > 1: // insert into the gap before keys[i]
				nk := prev + (k-prev)/2
				if err := p.Insert(uint64(len(out)), updRow(nk, 1)); err != nil {
					return nil, err
				}
				out = append(out, nk)
				prev = nk
				ops++
				continue // revisit keys[i]
			case r < 0.6: // delete keys[i]
				if err := p.Delete(uint64(len(out)), types.Row{types.Int(k)}); err != nil {
					return nil, err
				}
				prev = k
				i++
				ops++
				continue
			default: // modify a data column of keys[i]
				if err := p.Modify(uint64(len(out)), 1+rng.Intn(2), types.Int(int64(ops))); err != nil {
					return nil, err
				}
				ops++
			}
		}
		out = append(out, k)
		prev = k
		i++
	}
	for ops < nOps { // leftover budget: append inserts past the end
		prev += updStride
		if err := p.Insert(uint64(len(out)), updRow(prev, 1)); err != nil {
			return nil, err
		}
		out = append(out, prev)
		ops++
	}
	return out, nil
}

// LoadUpdateTable loads an n-row table with the write-path benchmark schema
// (stable keys are multiples of updStride). Exported for the root
// write-path benchmarks, so they share one workload generator with the
// -fig update profile.
func LoadUpdateTable(n, blockRows int, mode table.DeltaMode) (*table.Table, error) {
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = updRow(int64(i+1)*updStride, 0)
	}
	return table.Load(updSchema(), rows, table.Options{Mode: mode, BlockRows: blockRows})
}

func measureUpdate(name, mode string, fn func(b *testing.B)) UpdateRow {
	r := testing.Benchmark(fn)
	return UpdateRow{
		Name:        name,
		Mode:        mode,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// ----- propagate and commit micro-benchmarks ---------------------------------

// BuildPropagatePair returns a base PDT of baseN mixed entries over a
// virtual stable table, plus a consecutive delta layer of deltaN entries
// over the base's output image — the input shape of every Propagate call.
// Exported for the root write-path benchmarks.
func BuildPropagatePair(baseN, deltaN int) (base, delta *pdt.PDT, err error) {
	schema := updSchema()
	keys := updStableKeys(4 * baseN)
	base = pdt.New(schema, 0)
	img, err := genLayer(base, keys, baseN, 1)
	if err != nil {
		return nil, nil, err
	}
	delta = pdt.New(schema, 0)
	if _, err := genLayer(delta, img, deltaN, 2); err != nil {
		return nil, nil, err
	}
	return base, delta, nil
}

// propagateRows measures folding a delta layer into a base PDT, bulk vs the
// per-entry reference.
func propagateRows(cfg UpdateConfig) ([]UpdateRow, error) {
	base, delta, err := BuildPropagatePair(cfg.PropagateBase, cfg.PropagateDelta)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("propagate/%dk-into-%dk", cfg.PropagateDelta/1000, cfg.PropagateBase/1000)
	variants := []struct {
		mode string
		fold func(dst *pdt.PDT) error
	}{
		{"bulk", func(dst *pdt.PDT) error { return dst.Propagate(delta) }},
		{"entrywise", func(dst *pdt.PDT) error { return dst.PropagateEntrywise(delta) }},
	}
	var out []UpdateRow
	for _, v := range variants {
		v := v
		out = append(out, measureUpdate(name, v.mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dst := base.Copy()
				b.StartTimer()
				if err := v.fold(dst); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}
	return out, nil
}

// commitRows measures the tail of Txn.Commit: WAL append of the serialized
// Trans-PDT plus its propagation into the master Write-PDT.
func commitRows(cfg UpdateConfig) ([]UpdateRow, error) {
	schema := updSchema()
	keys := updStableKeys(10 * cfg.CommitWrite)
	w0 := pdt.New(schema, 0)
	img, err := genLayer(w0, keys, cfg.CommitWrite, 3)
	if err != nil {
		return nil, err
	}
	t0 := pdt.New(schema, 0)
	if _, err := genLayer(t0, img, cfg.CommitTrans, 4); err != nil {
		return nil, err
	}
	name := fmt.Sprintf("commit+propagate/%d-into-%dk", cfg.CommitTrans, cfg.CommitWrite/1000)
	variants := []struct {
		mode string
		fold func(dst *pdt.PDT) error
	}{
		{"bulk", func(dst *pdt.PDT) error { return dst.Propagate(t0) }},
		{"entrywise", func(dst *pdt.PDT) error { return dst.PropagateEntrywise(t0) }},
	}
	var out []UpdateRow
	for _, v := range variants {
		v := v
		log := wal.NewWriter(io.Discard)
		out = append(out, measureUpdate(name, v.mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dst := w0.Copy()
				b.StartTimer()
				if _, err := log.Append("t", t0.Dump()); err != nil {
					b.Fatal(err)
				}
				if err := v.fold(dst); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}
	return out, nil
}

// ----- transaction end-to-end ------------------------------------------------

// MixedOps builds one mixed op set over distinct keys of a LoadUpdateTable
// table: inserts of fresh odd keys, deletes and updates of random stable
// keys (misses possible once keys have been deleted). nextOdd carries the
// insert-key sequence across calls.
func MixedOps(rng *rand.Rand, tableRows, n int, nextOdd *int64) []table.Op {
	used := map[int64]bool{}
	ops := make([]table.Op, 0, n)
	for len(ops) < n {
		switch rng.Intn(3) {
		case 0:
			*nextOdd += 2
			ops = append(ops, table.Op{Kind: table.OpInsert, Row: updRow(*nextOdd, 5)})
		case 1:
			k := int64(1+rng.Intn(tableRows)) * updStride
			if used[k] {
				continue
			}
			used[k] = true
			ops = append(ops, table.Op{Kind: table.OpDelete, Key: types.Row{types.Int(k)}})
		default:
			k := int64(1+rng.Intn(tableRows)) * updStride
			if used[k] {
				continue
			}
			used[k] = true
			ops = append(ops, table.Op{Kind: table.OpUpdate, Key: types.Row{types.Int(k)}, Col: 1, Val: types.Int(int64(len(ops)))})
		}
	}
	return ops
}

// txnRows measures begin + apply + commit, row-at-a-time vs ApplyBatch. The
// manager is re-created every 50 transactions so the Write-PDT stays at a
// steady size.
func txnRows(cfg UpdateConfig) ([]UpdateRow, error) {
	tbl, err := LoadUpdateTable(cfg.TxnTableRows, 8192, table.ModePDT)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("txn/%%s/%d", cfg.TxnOps)
	variants := []struct {
		mode  string
		apply func(tx *txn.Txn, ops []table.Op) error
	}{
		{"per-op", func(tx *txn.Txn, ops []table.Op) error {
			for _, op := range ops {
				switch op.Kind {
				case table.OpInsert:
					if err := tx.Insert(op.Row); err != nil {
						return err
					}
				case table.OpDelete:
					if _, err := tx.DeleteByKey(op.Key); err != nil {
						return err
					}
				case table.OpUpdate:
					if _, err := tx.UpdateByKey(op.Key, op.Col, op.Val); err != nil {
						return err
					}
				}
			}
			return nil
		}},
		{"batch", func(tx *txn.Txn, ops []table.Op) error {
			_, err := tx.ApplyBatch(ops)
			return err
		}},
	}
	var out []UpdateRow
	for _, v := range variants {
		v := v
		out = append(out, measureUpdate(fmt.Sprintf(name, v.mode), "bulk", func(b *testing.B) {
			b.ReportAllocs()
			var mgr *txn.Manager
			rng := rand.New(rand.NewSource(9))
			nextOdd := int64(1)
			for i := 0; i < b.N; i++ {
				if i%50 == 0 {
					b.StopTimer()
					var err error
					mgr, err = txn.NewManager(tbl, txn.Options{WriteBudget: 64 << 20, Log: wal.NewWriter(io.Discard)})
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				tx := mgr.Begin()
				if err := v.apply(tx, MixedOps(rng, cfg.TxnTableRows, cfg.TxnOps, &nextOdd)); err != nil {
					b.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}
	return out, nil
}

// ----- checkpoint ------------------------------------------------------------

func checkpointRows(cfg UpdateConfig) ([]UpdateRow, error) {
	name := fmt.Sprintf("checkpoint/%dk+%dk", cfg.CheckpointRows/1000, cfg.CheckpointUpds/1000)
	row := measureUpdate(name, "streaming", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			tbl, err := LoadUpdateTable(cfg.CheckpointRows, 8192, table.ModePDT)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := genLayer(tbl.PDT(), updStableKeys(cfg.CheckpointRows), cfg.CheckpointUpds, 7); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := tbl.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
	})
	return []UpdateRow{row}, nil
}

// ----- update throughput -----------------------------------------------------

// throughputCell applies U = frac·N mixed updates to an N-row table and
// reports sustained updates/sec. Modes: PDT via ApplyBatch, PDT and VDT
// row-at-a-time, and "inplace" — PDT batches each immediately folded into
// the stable image by a checkpoint, modeling a store that merges on every
// write batch instead of buffering a differential.
func throughputCell(mode string, tableRows int, frac float64, batchSize int) (UpdateRow, error) {
	nUpd := int(float64(tableRows) * frac)
	if nUpd < batchSize {
		batchSize = nUpd
	}
	if nUpd == 0 {
		return UpdateRow{}, fmt.Errorf("bench: zero updates for frac %g", frac)
	}
	dmode := table.ModePDT
	if mode == "VDT/per-op" {
		dmode = table.ModeVDT
	}
	tbl, err := LoadUpdateTable(tableRows, 4096, dmode)
	if err != nil {
		return UpdateRow{}, err
	}
	rng := rand.New(rand.NewSource(11))
	nextOdd := int64(1)
	start := time.Now()
	for done := 0; done < nUpd; {
		n := batchSize
		if rest := nUpd - done; n > rest {
			n = rest
		}
		ops := MixedOps(rng, tableRows, n, &nextOdd)
		switch mode {
		case "PDT/batch", "inplace":
			if _, err := tbl.ApplyBatch(ops); err != nil {
				return UpdateRow{}, err
			}
			if mode == "inplace" {
				if err := tbl.Checkpoint(); err != nil {
					return UpdateRow{}, err
				}
			}
		case "PDT/per-op", "VDT/per-op":
			for _, op := range ops {
				switch op.Kind {
				case table.OpInsert:
					if err := tbl.Insert(op.Row); err != nil {
						return UpdateRow{}, err
					}
				case table.OpDelete:
					if _, err := tbl.DeleteByKey(op.Key); err != nil {
						return UpdateRow{}, err
					}
				case table.OpUpdate:
					if _, err := tbl.UpdateByKey(op.Key, op.Col, op.Val); err != nil {
						return UpdateRow{}, err
					}
				}
			}
		default:
			return UpdateRow{}, fmt.Errorf("bench: unknown throughput mode %q", mode)
		}
		done += n
	}
	elapsed := time.Since(start)
	return UpdateRow{
		Name:          fmt.Sprintf("throughput/rows=%d/frac=%g", tableRows, frac),
		Mode:          mode,
		TableRows:     tableRows,
		Updates:       nUpd,
		NsPerOp:       float64(elapsed.Nanoseconds()) / float64(nUpd),
		UpdatesPerSec: float64(nUpd) / elapsed.Seconds(),
	}, nil
}

// ThroughputModes lists the throughput series, PDT vs VDT vs in-place.
var ThroughputModes = []string{"PDT/batch", "PDT/per-op", "VDT/per-op", "inplace"}

// ----- full profile ----------------------------------------------------------

// UpdateProfile runs the complete write-path profile.
func UpdateProfile(cfg UpdateConfig) ([]UpdateRow, error) {
	cfg.fill()
	var out []UpdateRow
	for _, section := range []func(UpdateConfig) ([]UpdateRow, error){
		propagateRows, commitRows, txnRows, checkpointRows,
	} {
		rows, err := section(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	for _, n := range cfg.ThroughputRows {
		for _, frac := range cfg.UpdateFracs {
			for _, mode := range ThroughputModes {
				row, err := throughputCell(mode, n, frac, cfg.BatchSize)
				if err != nil {
					return nil, err
				}
				out = append(out, row)
			}
		}
	}
	return out, nil
}
