package bench

// Online-maintenance benchmark: the figure behind the online checkpoint work.
// One committer drives a steady stream of batched transactions; a quarter of
// the way in, a checkpoint rebuilds the stable image either concurrently
// ("online", the PDT manager's behavior) or inline between commits
// ("stop-world", modeling the pre-online design that required quiescence and
// merged under the manager lock). The headline metric is the maximum
// inter-commit gap: stop-world absorbs the whole checkpoint build into one
// commit's latency, online keeps commits flowing while the image streams out
// in the background.

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"pdtstore/internal/table"
	"pdtstore/internal/txn"
	"pdtstore/internal/wal"
)

// OnlineRow is one measured commit-stream-vs-checkpoint series.
type OnlineRow struct {
	Name          string  `json:"name"`
	Mode          string  `json:"mode"` // "online" or "stop-world"
	Commits       int     `json:"commits"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	MeanCommitUs  float64 `json:"mean_commit_us"`
	MaxStallMs    float64 `json:"max_stall_ms"` // max inter-commit gap
	CheckpointMs  float64 `json:"checkpoint_ms"`
}

// OnlineConfig sizes the profile; zero fields select the recorded defaults.
// Commits touch only the first HotRows stable keys (plus fresh front-of-table
// inserts), so per-commit cost stays independent of the table size while the
// checkpoint still streams the whole image — the regime where the old
// stop-the-world design hurt.
type OnlineConfig struct {
	TableRows int `json:"table_rows"`  // default 1M
	HotRows   int `json:"hot_rows"`    // key range commits touch (default 2k)
	Commits   int `json:"commits"`     // default 800
	OpsPerTxn int `json:"ops_per_txn"` // default 32
}

func (c *OnlineConfig) fill() {
	if c.TableRows == 0 {
		c.TableRows = 1_000_000
	}
	if c.HotRows == 0 {
		c.HotRows = 2_000
	}
	if c.Commits == 0 {
		c.Commits = 800
	}
	if c.OpsPerTxn == 0 {
		c.OpsPerTxn = 32
	}
}

// OnlineModes lists the two series of the online figure.
var OnlineModes = []string{"online", "stop-world"}

func onlineCell(mode string, cfg OnlineConfig) (OnlineRow, error) {
	tbl, err := LoadUpdateTable(cfg.TableRows, 8192, table.ModePDT)
	if err != nil {
		return OnlineRow{}, err
	}
	mgr, err := txn.NewManager(tbl, txn.Options{Log: wal.NewWriter(io.Discard)})
	if err != nil {
		return OnlineRow{}, err
	}
	rng := rand.New(rand.NewSource(17))
	nextOdd := int64(1)
	commit := func() error {
		tx := mgr.Begin()
		if _, err := tx.ApplyBatch(MixedOps(rng, cfg.HotRows, cfg.OpsPerTxn, &nextOdd)); err != nil {
			return err
		}
		return tx.Commit()
	}
	// Warm up the hot range's blocks and the commit path so the measured
	// stalls are maintenance stalls, not cold-start decodes.
	for i := 0; i < 20; i++ {
		if err := commit(); err != nil {
			return OnlineRow{}, err
		}
	}

	var ckptDur time.Duration
	var ckptErr error
	ckptStarted := false
	ckptDone := make(chan struct{})
	runCkpt := func() {
		t0 := time.Now()
		ckptErr = mgr.Checkpoint()
		ckptDur = time.Since(t0)
		close(ckptDone)
	}
	// A commit failure must not leave the checkpoint goroutine running into
	// the next cell's table load, nor mask its error.
	fail := func(err error) (OnlineRow, error) {
		if ckptStarted {
			<-ckptDone
			if ckptErr != nil {
				return OnlineRow{}, ckptErr
			}
		}
		return OnlineRow{}, err
	}

	var maxGap, commitSum time.Duration
	start := time.Now()
	last := start
	for i := 0; i < cfg.Commits; i++ {
		if i == cfg.Commits/4 {
			ckptStarted = true
			if mode == "online" {
				go runCkpt()
			} else {
				runCkpt()
			}
		}
		c0 := time.Now()
		if err := commit(); err != nil {
			return fail(err)
		}
		now := time.Now()
		commitSum += now.Sub(c0)
		if gap := now.Sub(last); gap > maxGap {
			maxGap = gap
		}
		last = now
	}
	<-ckptDone
	if ckptErr != nil {
		return OnlineRow{}, ckptErr
	}
	if err := mgr.WaitMaintenance(); err != nil {
		return OnlineRow{}, err
	}
	elapsed := time.Since(start)

	return OnlineRow{
		Name:          fmt.Sprintf("online/rows=%d/commits=%d", cfg.TableRows, cfg.Commits),
		Mode:          mode,
		Commits:       cfg.Commits,
		CommitsPerSec: float64(cfg.Commits) / elapsed.Seconds(),
		MeanCommitUs:  float64(commitSum.Microseconds()) / float64(cfg.Commits),
		MaxStallMs:    float64(maxGap.Nanoseconds()) / 1e6,
		CheckpointMs:  float64(ckptDur.Nanoseconds()) / 1e6,
	}, nil
}

// OnlineProfile measures the commit stream against a concurrent checkpoint
// (online) and against the stop-the-world baseline.
func OnlineProfile(cfg OnlineConfig) ([]OnlineRow, error) {
	cfg.fill()
	var out []OnlineRow
	for _, mode := range OnlineModes {
		row, err := onlineCell(mode, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}
