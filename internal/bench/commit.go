package bench

// Group-commit benchmark: the figure behind the commit sequencer. N writer
// goroutines drive single-transaction inserts against a durable log (a
// wal.NewSyncedWriter over a real file — the same synced writer FileLog
// drives — fsyncing every flushed batch); the "group" series runs the
// sequencer's batching, the "per-commit" series caps the batch at one commit
// so every transaction pays its own durability barrier — the pre-sequencer
// write path, whose throughput is pinned near 1/barrier-latency no matter
// how many writers pile up.
//
// The barrier axis is what makes the figure honest across hardware: a cloud
// VM's virtio fsync can be ~100µs (CPU-bound regime, batching buys little),
// a real disk's barrier is 1–10ms (barrier-bound regime, batching is the
// whole ballgame). Each barrier cell fsyncs the file and then, for non-zero
// values, models the rest of a slower device's latency with a sleep, so one
// run shows both regimes. Reported per cell: sustained commits/s,
// commit-latency percentiles, and how many barriers the log actually paid
// (the batching ratio).

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pdtstore/internal/table"
	"pdtstore/internal/txn"
	"pdtstore/internal/wal"
)

// CommitBenchRow is one measured (writers, mode, shards, barrier) cell.
type CommitBenchRow struct {
	Name          string  `json:"name"`
	Mode          string  `json:"mode"` // "group" or "per-commit"
	Writers       int     `json:"writers"`
	Shards        int     `json:"shards,omitempty"` // 0/1 = unsharded
	BarrierUs     float64 `json:"barrier_us"`       // modeled extra barrier latency (0 = raw fsync)
	Commits       int     `json:"commits"`
	Fsyncs        uint64  `json:"fsyncs"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	P50Us         float64 `json:"p50_us"`
	P95Us         float64 `json:"p95_us"`
	P99Us         float64 `json:"p99_us"`
	MaxUs         float64 `json:"max_us"`
}

// CommitBenchConfig sizes the profile; zero fields select the recorded
// defaults.
type CommitBenchConfig struct {
	TableRows        int             `json:"table_rows"`         // base table rows (default 2k)
	Writers          []int           `json:"writers"`            // goroutine counts (default 1..64)
	CommitsPerWriter int             `json:"commits_per_writer"` // default 50
	OpsPerTxn        int             `json:"ops_per_txn"`        // inserts per transaction (default 1)
	BlockRows        int             `json:"block_rows"`         // stable-image block size (default 256)
	Barriers         []time.Duration `json:"-"`                  // barrier latencies (default 0 and 2ms)
	Shards           []int           `json:"shards,omitempty"`   // shard counts per cell (default 1 = unsharded only)
}

func (c *CommitBenchConfig) fill() {
	if c.TableRows == 0 {
		c.TableRows = 2_000
	}
	if len(c.Writers) == 0 {
		c.Writers = []int{1, 2, 4, 8, 16, 32, 64}
	}
	if c.CommitsPerWriter == 0 {
		c.CommitsPerWriter = 50
	}
	if c.OpsPerTxn == 0 {
		c.OpsPerTxn = 1
	}
	if c.BlockRows == 0 {
		// Small blocks keep the per-insert position probe (one block decode)
		// cheap, so the measured commit path is the sequencer, not the scan.
		c.BlockRows = 256
	}
	if len(c.Barriers) == 0 {
		c.Barriers = []time.Duration{0, 2 * time.Millisecond}
	}
	if len(c.Shards) == 0 {
		c.Shards = []int{1}
	}
}

// CommitModes lists the two series of the commit figure.
var CommitModes = []string{"group", "per-commit"}

func pctlUs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i].Nanoseconds()) / 1e3
}

// commitCell runs one (mode, writers, barrier) cell over a fresh table and a
// fresh durable log in dir. Every transaction inserts opsPerTxn distinct
// keys into the gap below the table's smallest stable key, so commits never
// conflict and the measured path is exactly validate → park → flush.
func commitCell(mode string, writers int, barrier time.Duration, cfg CommitBenchConfig, dir string) (CommitBenchRow, error) {
	tbl, err := LoadUpdateTable(cfg.TableRows, cfg.BlockRows, table.ModePDT)
	if err != nil {
		return CommitBenchRow{}, err
	}
	f, err := os.Create(filepath.Join(dir, fmt.Sprintf("%s-%d-%d.wal", mode, writers, barrier.Microseconds())))
	if err != nil {
		return CommitBenchRow{}, err
	}
	defer f.Close()
	var syncs atomic.Uint64
	log := wal.NewSyncedWriter(f, func() error {
		if err := f.Sync(); err != nil {
			return err
		}
		if barrier > 0 {
			time.Sleep(barrier) // model the rest of a slower device's barrier
		}
		syncs.Add(1)
		return nil
	})
	// A tight write budget keeps the Write-PDT small under the sustained
	// insert stream (background folds absorb it), so Begin's snapshot copy
	// stays cheap and the measured path is the sequencer, not O(Write-PDT).
	opts := txn.Options{WriteBudget: 16 << 10, Log: log}
	if mode == "per-commit" {
		opts.MaxCommitBatch = 1 // every commit pays its own barrier
	}
	mgr, err := txn.NewManager(tbl, opts)
	if err != nil {
		return CommitBenchRow{}, err
	}

	commits := writers * cfg.CommitsPerWriter
	lats := make([][]time.Duration, writers)
	errs := make(chan error, writers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := int64(w*cfg.CommitsPerWriter*cfg.OpsPerTxn) + 1
			for i := 0; i < cfg.CommitsPerWriter; i++ {
				tx := mgr.Begin()
				for j := 0; j < cfg.OpsPerTxn; j++ {
					key := base + int64(i*cfg.OpsPerTxn+j)
					if err := tx.Insert(updRow(key, 9)); err != nil {
						errs <- err
						return
					}
				}
				c0 := time.Now()
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
				lats[w] = append(lats[w], time.Since(c0))
			}
			errs <- nil
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		if err != nil {
			return CommitBenchRow{}, err
		}
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	name := fmt.Sprintf("commit/writers=%d", writers)
	if barrier > 0 {
		name = fmt.Sprintf("%s/barrier=%s", name, barrier)
	}
	return CommitBenchRow{
		Name:          name,
		Mode:          mode,
		Writers:       writers,
		BarrierUs:     float64(barrier.Microseconds()),
		Commits:       commits,
		Fsyncs:        syncs.Load(),
		CommitsPerSec: float64(commits) / elapsed.Seconds(),
		P50Us:         pctlUs(all, 0.50),
		P95Us:         pctlUs(all, 0.95),
		P99Us:         pctlUs(all, 0.99),
		MaxUs:         pctlUs(all, 1.0),
	}, nil
}

// commitShardedCell runs one (mode, writers, shards, barrier) cell with the
// stable image physically split shards ways, each shard under its own
// manager, sequencer and fsynced WAL stream on one global commit clock. Every
// writer pins to a home shard (writer w → shard w % shards) and commits
// single-shard inserts into its key range, so the cell measures the
// shard-per-core claim directly: independent sequencers paying their
// durability barriers in parallel instead of queueing on one.
func commitShardedCell(mode string, writers, shards int, barrier time.Duration, cfg CommitBenchConfig, dir string) (CommitBenchRow, error) {
	tbl, err := LoadUpdateTable(cfg.TableRows, cfg.BlockRows, table.ModePDT)
	if err != nil {
		return CommitBenchRow{}, err
	}
	stores, keys, err := table.ShardSplit(tbl.Store(), shards, nil, cfg.BlockRows, false)
	if err != nil {
		return CommitBenchRow{}, err
	}
	var syncs atomic.Uint64
	mgrs := make([]*txn.Manager, shards)
	for i := range stores {
		stbl, err := table.FromStore(stores[i], table.Options{Mode: table.ModePDT, BlockRows: cfg.BlockRows})
		if err != nil {
			return CommitBenchRow{}, err
		}
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("%s-%d-%d-s%d.wal", mode, writers, barrier.Microseconds(), i)))
		if err != nil {
			return CommitBenchRow{}, err
		}
		defer f.Close()
		log := wal.NewSyncedWriter(f, func() error {
			if err := f.Sync(); err != nil {
				return err
			}
			if barrier > 0 {
				time.Sleep(barrier)
			}
			syncs.Add(1)
			return nil
		})
		opts := txn.Options{WriteBudget: 16 << 10, Log: log}
		if mode == "per-commit" {
			opts.MaxCommitBatch = 1
		}
		if mgrs[i], err = txn.NewManager(stbl, opts); err != nil {
			return CommitBenchRow{}, err
		}
	}
	sh, err := txn.NewSharded(mgrs, keys)
	if err != nil {
		return CommitBenchRow{}, err
	}

	commits := writers * cfg.CommitsPerWriter
	lats := make([][]time.Duration, writers)
	errs := make(chan error, writers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			home := w % shards
			// Fresh keys inside the home shard's range: the gap just above
			// the shard's first stable key (a multiple of updStride), offset
			// by the writer's rank among the shard's writers so keys never
			// collide (the gap holds updStride-1 ≫ rank·commits·ops slots).
			rowBase := int64(home) * int64(cfg.TableRows) / int64(shards)
			base := (rowBase+1)*updStride + 1 +
				int64(w/shards)*int64(cfg.CommitsPerWriter*cfg.OpsPerTxn)
			for i := 0; i < cfg.CommitsPerWriter; i++ {
				tx := sh.Shard(home).Begin()
				for j := 0; j < cfg.OpsPerTxn; j++ {
					key := base + int64(i*cfg.OpsPerTxn+j)
					if err := tx.Insert(updRow(key, 9)); err != nil {
						errs <- err
						return
					}
				}
				c0 := time.Now()
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
				lats[w] = append(lats[w], time.Since(c0))
			}
			errs <- nil
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		if err != nil {
			return CommitBenchRow{}, err
		}
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	name := fmt.Sprintf("commit/writers=%d/shards=%d", writers, shards)
	if barrier > 0 {
		name = fmt.Sprintf("%s/barrier=%s", name, barrier)
	}
	return CommitBenchRow{
		Name:          name,
		Mode:          mode,
		Writers:       writers,
		Shards:        shards,
		BarrierUs:     float64(barrier.Microseconds()),
		Commits:       commits,
		Fsyncs:        syncs.Load(),
		CommitsPerSec: float64(commits) / elapsed.Seconds(),
		P50Us:         pctlUs(all, 0.50),
		P95Us:         pctlUs(all, 0.95),
		P99Us:         pctlUs(all, 0.99),
		MaxUs:         pctlUs(all, 1.0),
	}, nil
}

// CommitProfile measures commit throughput and latency vs writer count,
// barrier latency and shard count, group commit against the per-commit-fsync
// baseline, on real fsynced log files in a temporary directory.
func CommitProfile(cfg CommitBenchConfig) ([]CommitBenchRow, error) {
	cfg.fill()
	dir, err := os.MkdirTemp("", "pdtstore-commit-bench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	var out []CommitBenchRow
	for _, barrier := range cfg.Barriers {
		for _, writers := range cfg.Writers {
			for _, shards := range cfg.Shards {
				for _, mode := range CommitModes {
					var row CommitBenchRow
					var err error
					if shards > 1 {
						row, err = commitShardedCell(mode, writers, shards, barrier, cfg, dir)
					} else {
						row, err = commitCell(mode, writers, barrier, cfg, dir)
					}
					if err != nil {
						return nil, err
					}
					out = append(out, row)
				}
			}
		}
	}
	return out, nil
}
