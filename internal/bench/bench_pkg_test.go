package bench

import (
	"testing"
	"time"

	"pdtstore/internal/table"
)

func TestFig16SmallRun(t *testing.T) {
	pts := Fig16(Fig16Config{MaxEntries: 5000, Samples: 4, StableRows: 5000})
	if len(pts) < 3 {
		t.Fatalf("only %d sample points", len(pts))
	}
	for _, p := range pts {
		if p.InsertNS <= 0 || p.ModifyNS <= 0 || p.DeleteNS <= 0 {
			t.Fatalf("non-positive timing: %+v", p)
		}
	}
	last := pts[len(pts)-1]
	if last.Size < 4000 {
		t.Fatalf("PDT did not grow: %d", last.Size)
	}
}

func TestScanHarnessPDTvsVDT(t *testing.T) {
	base := ScanConfig{
		Tuples: 20000, DataCols: 4, KeyCols: 1, StringKeys: false,
		UpdatesPer100: 1.0, BlockRows: 1024,
	}
	var results []ScanResult
	for _, mode := range []table.DeltaMode{table.ModePDT, table.ModeVDT} {
		c := base
		c.Mode = mode
		tbl, err := BuildScanTable(c)
		if err != nil {
			t.Fatal(err)
		}
		r, err := MeasureScan(tbl, c)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	p, v := results[0], results[1]
	if p.Rows != v.Rows {
		t.Fatalf("row counts differ: PDT %d, VDT %d", p.Rows, v.Rows)
	}
	// The headline result: VDT scans must read more (the key column).
	if v.IOBytes <= p.IOBytes {
		t.Fatalf("VDT I/O (%d) must exceed PDT I/O (%d)", v.IOBytes, p.IOBytes)
	}
}

func TestScanHarnessMultiKeyString(t *testing.T) {
	c := ScanConfig{
		Tuples: 5000, DataCols: 3, KeyCols: 3, StringKeys: true,
		UpdatesPer100: 2.0, Mode: table.ModePDT, BlockRows: 512,
	}
	tbl, err := BuildScanTable(c)
	if err != nil {
		t.Fatal(err)
	}
	r, err := MeasureScan(tbl, c)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows == 0 || r.HotNS <= 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	if err := tbl.PDT().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTPCHHarnessSmall(t *testing.T) {
	rows, err := TPCH(TPCHConfig{SF: 0.001, Compressed: true, BlockRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 22*3 {
		t.Fatalf("expected 66 measurements, got %d", len(rows))
	}
	for _, r := range rows {
		if r.ColdMS < r.HotMS {
			t.Fatalf("cold < hot for Q%d %v", r.Query, r.Mode)
		}
	}
	// Aggregate I/O: VDT must exceed PDT (it always also reads key columns).
	var pdtIO, vdtIO, noneIO uint64
	for _, r := range rows {
		switch r.Mode {
		case table.ModePDT:
			pdtIO += r.IOBytes
		case table.ModeVDT:
			vdtIO += r.IOBytes
		case table.ModeNone:
			noneIO += r.IOBytes
		}
	}
	if vdtIO <= pdtIO {
		t.Fatalf("total VDT I/O (%d) must exceed PDT (%d)", vdtIO, pdtIO)
	}
	if pdtIO < noneIO {
		t.Fatalf("PDT I/O (%d) below clean runs (%d)?", pdtIO, noneIO)
	}
}

// TestUpdateHarness checks the write-path workload generator: the two-layer
// pair must be Validate()-clean, consecutive (propagatable both ways to the
// same result), and the throughput cells must run for every mode.
func TestUpdateHarness(t *testing.T) {
	base, delta, err := BuildPropagatePair(2000, 400)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base: %v", err)
	}
	if err := delta.Validate(); err != nil {
		t.Fatalf("delta: %v", err)
	}
	if base.Count() < 1900 || delta.Count() < 350 {
		t.Fatalf("undersized layers: base %d, delta %d", base.Count(), delta.Count())
	}
	bulk, ent := base.Copy(), base.Copy()
	if err := bulk.Propagate(delta); err != nil {
		t.Fatal(err)
	}
	if err := ent.PropagateEntrywise(delta); err != nil {
		t.Fatal(err)
	}
	if err := bulk.Validate(); err != nil {
		t.Fatalf("bulk result: %v", err)
	}
	if bulk.Count() != ent.Count() || bulk.Delta() != ent.Delta() {
		t.Fatalf("paths disagree: bulk (%d,%+d), entrywise (%d,%+d)",
			bulk.Count(), bulk.Delta(), ent.Count(), ent.Delta())
	}

	for _, mode := range ThroughputModes {
		r, err := throughputCell(mode, 4000, 0.01, 16)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if r.Updates == 0 || r.UpdatesPerSec <= 0 {
			t.Fatalf("%s: degenerate cell %+v", mode, r)
		}
	}
}

// TestOnlineHarness runs a miniature online-maintenance profile: both modes
// must complete, the checkpoint must actually overlap (or interleave with)
// the commit stream, and the metrics must be sane.
func TestOnlineHarness(t *testing.T) {
	rows, err := OnlineProfile(OnlineConfig{TableRows: 20_000, HotRows: 500, Commits: 60, OpsPerTxn: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(OnlineModes) {
		t.Fatalf("got %d rows, want %d", len(rows), len(OnlineModes))
	}
	for _, r := range rows {
		if r.Commits != 60 || r.CommitsPerSec <= 0 || r.CheckpointMs <= 0 {
			t.Fatalf("degenerate cell %+v", r)
		}
		if r.MaxStallMs <= 0 || r.MeanCommitUs <= 0 {
			t.Fatalf("missing latency metrics %+v", r)
		}
	}
}

// TestRecoveryHarness runs a miniature durability profile: open time must be
// measured for every tail, the WAL must grow with the tail, and the
// checkpoint that absorbs it must complete.
func TestRecoveryHarness(t *testing.T) {
	pts, err := RecoveryProfile(RecoveryConfig{Rows: 1500, OpsPerCommit: 8, Tails: []int{0, 12}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	if pts[0].TailCommits != 0 || pts[0].WALBytes != 0 {
		t.Fatalf("tail-0 point not clean: %+v", pts[0])
	}
	if pts[1].WALBytes == 0 || pts[1].CommitUs <= 0 {
		t.Fatalf("tail-12 point missing WAL growth: %+v", pts[1])
	}
	for _, p := range pts {
		if p.OpenMs <= 0 || p.CheckpointMs <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
}

// TestCommitHarness runs a miniature group-commit profile: both modes must
// complete for every (writers, barrier) cell, the per-commit series must pay
// one barrier per commit, and the group series must never pay more.
func TestCommitHarness(t *testing.T) {
	rows, err := CommitProfile(CommitBenchConfig{
		Writers:          []int{1, 4},
		CommitsPerWriter: 6,
		Barriers:         []time.Duration{0, 500 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 2 barriers x 2 writer counts x 2 modes
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if r.CommitsPerSec <= 0 || r.P50Us <= 0 || r.Commits != r.Writers*6 {
			t.Fatalf("degenerate row %+v", r)
		}
		switch r.Mode {
		case "per-commit":
			if r.Fsyncs != uint64(r.Commits) {
				t.Fatalf("per-commit mode paid %d barriers for %d commits: %+v", r.Fsyncs, r.Commits, r)
			}
		case "group":
			if r.Fsyncs > uint64(r.Commits) {
				t.Fatalf("group mode paid %d barriers for %d commits: %+v", r.Fsyncs, r.Commits, r)
			}
		}
	}
}

func TestLookupHarness(t *testing.T) {
	rows, err := LookupProfile(LookupConfig{Tuples: 40_000, BlockRows: 1024, ReadLatency: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 (2 cases x 2 paths)", len(rows))
	}
	for _, r := range rows {
		if r.Rows <= 0 || r.ColdNS <= 0 || r.BlocksTotal <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		if r.Path == "pruned" {
			if r.ZoneSkips+r.IndexSkips == 0 {
				t.Fatalf("pruned path skipped nothing: %+v", r)
			}
			if r.SpeedupVsFull < 5 {
				t.Fatalf("pruned %s speedup %.1fx, want >= 5x", r.Case, r.SpeedupVsFull)
			}
		}
	}
}
