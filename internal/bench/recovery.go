package bench

// Recovery profile: what durability costs. For a fixed checkpointed base
// image, the WAL tail grows commit by commit; each point measures how long a
// cold Open(dir) takes (manifest load + segment open + WAL replay), and how
// long the durable checkpoint that absorbs the tail takes (stream + fsync +
// manifest swap + truncation). The paper's argument for checkpointing the
// Read-PDT is exactly this trade: replay time grows with the tail, and the
// checkpoint resets it.

import (
	"fmt"
	"os"
	"time"

	"pdtstore"
	"pdtstore/internal/table"
	"pdtstore/internal/types"
)

// RecoveryConfig sizes the recovery profile.
type RecoveryConfig struct {
	Rows         int   `json:"rows"`           // checkpointed base rows (default 20k)
	OpsPerCommit int   `json:"ops_per_commit"` // updates per WAL record (default 32)
	Tails        []int `json:"tails"`          // WAL tail lengths, in commits
}

// RecoveryPoint is one measured tail length.
type RecoveryPoint struct {
	TailCommits  int     `json:"tail_commits"`
	WALBytes     int64   `json:"wal_bytes"`
	WALFiles     int     `json:"wal_files"`
	OpenMs       float64 `json:"open_ms"`       // cold Open: manifest + segment + replay
	CheckpointMs float64 `json:"checkpoint_ms"` // durable checkpoint absorbing the tail
	CommitUs     float64 `json:"commit_us"`     // mean fsynced commit latency while growing the tail
}

var recoverySchema = types.MustSchema([]types.Column{
	{Name: "k", Kind: types.Int64},
	{Name: "a", Kind: types.Int64},
	{Name: "s", Kind: types.String},
}, []int{0})

// RecoveryProfile measures cold-open/replay time and durable-checkpoint cost
// as a function of WAL tail length.
func RecoveryProfile(cfg RecoveryConfig) ([]RecoveryPoint, error) {
	if cfg.Rows == 0 {
		cfg.Rows = 20_000
	}
	if cfg.OpsPerCommit == 0 {
		cfg.OpsPerCommit = 32
	}
	if len(cfg.Tails) == 0 {
		cfg.Tails = []int{0, 16, 64, 256, 1024}
	}
	var out []RecoveryPoint
	for _, tail := range cfg.Tails {
		p, err := recoveryPoint(cfg, tail)
		if err != nil {
			return nil, fmt.Errorf("bench: recovery tail=%d: %w", tail, err)
		}
		out = append(out, p)
	}
	return out, nil
}

func recoveryPoint(cfg RecoveryConfig, tail int) (RecoveryPoint, error) {
	dir, err := os.MkdirTemp("", "pdtbench-recovery-")
	if err != nil {
		return RecoveryPoint{}, err
	}
	defer os.RemoveAll(dir)

	db, err := pdtstore.Open(dir, pdtstore.Options{Schema: recoverySchema, Compressed: true, WriteBudget: 1 << 30})
	if err != nil {
		return RecoveryPoint{}, err
	}
	// Base image: one bulk insert commit, checkpointed into generation 2 so
	// the WAL starts empty.
	ops := make([]table.Op, cfg.Rows)
	for i := range ops {
		ops[i] = table.Op{Kind: table.OpInsert,
			Row: types.Row{types.Int(int64(i)), types.Int(int64(i % 97)), types.Str(fmt.Sprintf("row-%08d", i))}}
	}
	tx := db.Begin()
	if _, err := tx.ApplyBatch(ops); err != nil {
		return RecoveryPoint{}, err
	}
	if err := tx.Commit(); err != nil {
		return RecoveryPoint{}, err
	}
	if err := db.Checkpoint(); err != nil {
		return RecoveryPoint{}, err
	}

	// Grow the WAL tail: `tail` fsynced commits of OpsPerCommit modifies each.
	commitStart := time.Now()
	for c := 0; c < tail; c++ {
		batch := make([]table.Op, cfg.OpsPerCommit)
		for i := range batch {
			k := int64((c*cfg.OpsPerCommit + i*131) % cfg.Rows)
			batch[i] = table.Op{Kind: table.OpUpdate, Key: types.Row{types.Int(k)}, Col: 1, Val: types.Int(int64(c))}
		}
		tx := db.Begin()
		if _, err := tx.ApplyBatch(batch); err != nil {
			return RecoveryPoint{}, err
		}
		if err := tx.Commit(); err != nil {
			return RecoveryPoint{}, err
		}
	}
	var commitUs float64
	if tail > 0 {
		commitUs = float64(time.Since(commitStart).Microseconds()) / float64(tail)
	}
	pt := RecoveryPoint{
		TailCommits: tail,
		WALBytes:    db.Log().SizeBytes(),
		WALFiles:    db.Log().Files(),
		CommitUs:    commitUs,
	}
	if err := db.Close(); err != nil {
		return RecoveryPoint{}, err
	}

	// Cold open: manifest + segment footer + full tail replay.
	openStart := time.Now()
	db2, err := pdtstore.Open(dir, pdtstore.Options{Compressed: true, WriteBudget: 1 << 30})
	if err != nil {
		return RecoveryPoint{}, err
	}
	pt.OpenMs = float64(time.Since(openStart).Nanoseconds()) / 1e6
	if got := db2.Manager().LSN(); got != uint64(tail)+1 {
		db2.Close()
		return RecoveryPoint{}, fmt.Errorf("clock after reopen = %d, want %d", got, tail+1)
	}

	// The checkpoint that absorbs the tail: stream + fsync + swap + truncate.
	ckptStart := time.Now()
	if err := db2.Checkpoint(); err != nil {
		db2.Close()
		return RecoveryPoint{}, err
	}
	pt.CheckpointMs = float64(time.Since(ckptStart).Nanoseconds()) / 1e6
	return pt, db2.Close()
}
