package bench

// Recovery profile: what durability costs. For a fixed checkpointed base
// image, the WAL tail grows commit by commit; each point measures how long a
// cold Open(dir) takes (manifest load + segment open + WAL replay), and how
// long the durable checkpoint that absorbs the tail takes (stream + fsync +
// manifest swap + truncation). The paper's argument for checkpointing the
// Read-PDT is exactly this trade: replay time grows with the tail, and the
// checkpoint resets it.
//
// Each tail length is measured three ways: a full-rewrite checkpoint (the
// pre-incremental behavior, comparable to the recorded baseline), an
// incremental checkpoint of the same tail (only the PDT's dirty blocks are
// written), and a run where the background cost-model scheduler checkpointed
// continuously while the tail was being written — the cold open after that
// run is what continuous checkpointing buys.
//
// RecoveryIncrementalProfile isolates the O(delta) claim: at a fixed large
// image, how does checkpoint cost scale with the fraction of the table a
// single update batch dirtied?

import (
	"fmt"
	"os"
	"time"

	"pdtstore"
	"pdtstore/internal/table"
	"pdtstore/internal/types"
)

// RecoveryConfig sizes the recovery profile.
type RecoveryConfig struct {
	Rows         int   `json:"rows"`           // checkpointed base rows (default 20k)
	OpsPerCommit int   `json:"ops_per_commit"` // updates per WAL record (default 32)
	Tails        []int `json:"tails"`          // WAL tail lengths, in commits
}

// RecoveryPoint is one measured tail length.
type RecoveryPoint struct {
	TailCommits  int     `json:"tail_commits"`
	WALBytes     int64   `json:"wal_bytes"`
	WALFiles     int     `json:"wal_files"`
	OpenMs       float64 `json:"open_ms"`       // cold Open: manifest + segment + replay
	CheckpointMs float64 `json:"checkpoint_ms"` // full-rewrite checkpoint absorbing the tail
	CommitUs     float64 `json:"commit_us"`     // mean fsynced commit latency while growing the tail
	// IncCheckpointMs absorbs the same tail with an incremental checkpoint
	// (dirty blocks only); AutoOpenMs is the cold open after the same write
	// history ran with the background scheduler checkpointing continuously.
	IncCheckpointMs float64 `json:"inc_checkpoint_ms"`
	AutoOpenMs      float64 `json:"auto_open_ms"`
}

var recoverySchema = types.MustSchema([]types.Column{
	{Name: "k", Kind: types.Int64},
	{Name: "a", Kind: types.Int64},
	{Name: "s", Kind: types.String},
}, []int{0})

// RecoveryProfile measures cold-open/replay time and durable-checkpoint cost
// as a function of WAL tail length.
func RecoveryProfile(cfg RecoveryConfig) ([]RecoveryPoint, error) {
	if cfg.Rows == 0 {
		cfg.Rows = 20_000
	}
	if cfg.OpsPerCommit == 0 {
		cfg.OpsPerCommit = 32
	}
	if len(cfg.Tails) == 0 {
		cfg.Tails = []int{0, 16, 64, 256, 1024}
	}
	var out []RecoveryPoint
	for _, tail := range cfg.Tails {
		p, err := recoveryPoint(cfg, tail)
		if err != nil {
			return nil, fmt.Errorf("bench: recovery tail=%d: %w", tail, err)
		}
		out = append(out, p)
	}
	return out, nil
}

func recoveryOptions(ckpt pdtstore.CheckpointOptions) pdtstore.Options {
	return pdtstore.Options{
		Schema: recoverySchema, Compressed: true, WriteBudget: 1 << 30,
		Checkpoint: ckpt,
	}
}

// buildHistory opens a fresh store in dir, checkpoints a Rows-row base image,
// then applies `tail` fsynced update commits of OpsPerCommit modifies each.
// It returns the still-open DB and the mean commit latency.
func buildHistory(dir string, opts pdtstore.Options, cfg RecoveryConfig, tail int) (*pdtstore.DB, float64, error) {
	db, err := pdtstore.Open(dir, opts)
	if err != nil {
		return nil, 0, err
	}
	fail := func(err error) (*pdtstore.DB, float64, error) {
		db.Close()
		return nil, 0, err
	}
	// Base image: one bulk insert commit, checkpointed into generation 2 so
	// the WAL starts empty.
	ops := make([]table.Op, cfg.Rows)
	for i := range ops {
		ops[i] = table.Op{Kind: table.OpInsert,
			Row: types.Row{types.Int(int64(i)), types.Int(int64(i % 97)), types.Str(fmt.Sprintf("row-%08d", i))}}
	}
	tx := db.Begin()
	if _, err := tx.ApplyBatch(ops); err != nil {
		return fail(err)
	}
	if err := tx.Commit(); err != nil {
		return fail(err)
	}
	if err := db.Checkpoint(); err != nil {
		return fail(err)
	}

	commitStart := time.Now()
	for c := 0; c < tail; c++ {
		batch := make([]table.Op, cfg.OpsPerCommit)
		for i := range batch {
			k := int64((c*cfg.OpsPerCommit + i*131) % cfg.Rows)
			batch[i] = table.Op{Kind: table.OpUpdate, Key: types.Row{types.Int(k)}, Col: 1, Val: types.Int(int64(c))}
		}
		tx := db.Begin()
		if _, err := tx.ApplyBatch(batch); err != nil {
			return fail(err)
		}
		if err := tx.Commit(); err != nil {
			return fail(err)
		}
	}
	var commitUs float64
	if tail > 0 {
		commitUs = float64(time.Since(commitStart).Microseconds()) / float64(tail)
	}
	return db, commitUs, nil
}

func recoveryPoint(cfg RecoveryConfig, tail int) (RecoveryPoint, error) {
	fullOpts := recoveryOptions(pdtstore.CheckpointOptions{FullOnly: true})
	incOpts := recoveryOptions(pdtstore.CheckpointOptions{})
	autoOpts := recoveryOptions(pdtstore.CheckpointOptions{Auto: true, Interval: 2 * time.Millisecond})

	// Full-rewrite pass: cold open, replay and O(table) checkpoint — the
	// pre-incremental behavior the recorded baseline measured.
	dir, err := os.MkdirTemp("", "pdtbench-recovery-")
	if err != nil {
		return RecoveryPoint{}, err
	}
	defer os.RemoveAll(dir)
	db, commitUs, err := buildHistory(dir, fullOpts, cfg, tail)
	if err != nil {
		return RecoveryPoint{}, err
	}
	st := db.Stats()
	pt := RecoveryPoint{
		TailCommits: tail,
		WALBytes:    st.Shard[0].WALBytes,
		WALFiles:    st.Shard[0].WALFiles,
		CommitUs:    commitUs,
	}
	if err := db.Close(); err != nil {
		return RecoveryPoint{}, err
	}

	// Cold open: manifest + segment footer + full tail replay.
	openStart := time.Now()
	db2, err := pdtstore.Open(dir, fullOpts)
	if err != nil {
		return RecoveryPoint{}, err
	}
	pt.OpenMs = float64(time.Since(openStart).Nanoseconds()) / 1e6
	if got := db2.Stats().Shard[0].LSN; got != uint64(tail)+1 {
		db2.Close()
		return RecoveryPoint{}, fmt.Errorf("clock after reopen = %d, want %d", got, tail+1)
	}
	ckptStart := time.Now()
	if err := db2.Checkpoint(); err != nil {
		db2.Close()
		return RecoveryPoint{}, err
	}
	pt.CheckpointMs = float64(time.Since(ckptStart).Nanoseconds()) / 1e6
	if err := db2.Close(); err != nil {
		return RecoveryPoint{}, err
	}

	// Incremental pass: the same tail absorbed by a dirty-blocks-only
	// checkpoint.
	incDir, err := os.MkdirTemp("", "pdtbench-recovery-inc-")
	if err != nil {
		return RecoveryPoint{}, err
	}
	defer os.RemoveAll(incDir)
	db3, _, err := buildHistory(incDir, incOpts, cfg, tail)
	if err != nil {
		return RecoveryPoint{}, err
	}
	ckptStart = time.Now()
	if err := db3.Checkpoint(); err != nil {
		db3.Close()
		return RecoveryPoint{}, err
	}
	pt.IncCheckpointMs = float64(time.Since(ckptStart).Nanoseconds()) / 1e6
	if err := db3.Close(); err != nil {
		return RecoveryPoint{}, err
	}

	// Continuous pass: the scheduler checkpoints while the history is being
	// written, so the cold open afterwards replays only the last sliver.
	autoDir, err := os.MkdirTemp("", "pdtbench-recovery-auto-")
	if err != nil {
		return RecoveryPoint{}, err
	}
	defer os.RemoveAll(autoDir)
	db4, _, err := buildHistory(autoDir, autoOpts, cfg, tail)
	if err != nil {
		return RecoveryPoint{}, err
	}
	if err := db4.Close(); err != nil {
		return RecoveryPoint{}, err
	}
	openStart = time.Now()
	db5, err := pdtstore.Open(autoDir, recoveryOptions(pdtstore.CheckpointOptions{}))
	if err != nil {
		return RecoveryPoint{}, err
	}
	pt.AutoOpenMs = float64(time.Since(openStart).Nanoseconds()) / 1e6
	return pt, db5.Close()
}

// RecoveryIncConfig sizes the delta-scaling profile.
type RecoveryIncConfig struct {
	Rows      int       `json:"rows"`       // base image rows (default 200k)
	BlockRows int       `json:"block_rows"` // stable block size (default 512)
	Fracs     []float64 `json:"fracs"`      // fraction of rows one commit updates
}

// RecoveryIncPoint compares a full-rewrite checkpoint against an incremental
// one absorbing an identical update batch that dirtied DirtyFrac of the rows.
type RecoveryIncPoint struct {
	DirtyFrac   float64 `json:"dirty_frac"`
	UpdatedRows int     `json:"updated_rows"`
	DirtyBlocks int     `json:"dirty_blocks"` // (column, block) cells the incremental checkpoint wrote
	TotalBlocks int     `json:"total_blocks"` // cells a full rewrite writes
	Mode        string  `json:"mode"`         // what the cost rules picked
	FullMs      float64 `json:"full_ms"`
	IncMs       float64 `json:"inc_ms"`
	Speedup     float64 `json:"speedup"`
}

// RecoveryIncrementalProfile measures checkpoint cost as a function of the
// dirtied fraction: the same base image and the same single update commit,
// checkpointed once with FullOnly and once with incremental checkpoints on.
func RecoveryIncrementalProfile(cfg RecoveryIncConfig) ([]RecoveryIncPoint, error) {
	if cfg.Rows == 0 {
		cfg.Rows = 200_000
	}
	if cfg.BlockRows == 0 {
		cfg.BlockRows = 512
	}
	if len(cfg.Fracs) == 0 {
		cfg.Fracs = []float64{0.001, 0.01, 0.1}
	}
	var out []RecoveryIncPoint
	for _, frac := range cfg.Fracs {
		p, err := recoveryIncPoint(cfg, frac)
		if err != nil {
			return nil, fmt.Errorf("bench: recovery_incremental frac=%g: %w", frac, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// dirtyCheckpointMs builds the base image, applies one commit updating
// `updates` pseudo-random keys in place, and times the checkpoint that
// absorbs it; the returned decision carries the cost-model measurements.
func dirtyCheckpointMs(cfg RecoveryIncConfig, updates int, ckpt pdtstore.CheckpointOptions) (float64, pdtstore.CheckpointDecision, error) {
	var dec pdtstore.CheckpointDecision
	dir, err := os.MkdirTemp("", "pdtbench-recovery-frac-")
	if err != nil {
		return 0, dec, err
	}
	defer os.RemoveAll(dir)
	opts := recoveryOptions(ckpt)
	opts.BlockRows = cfg.BlockRows
	db, _, err := buildHistory(dir, opts, RecoveryConfig{Rows: cfg.Rows}, 0)
	if err != nil {
		return 0, dec, err
	}
	// Uniform in-place updates on column 1: a multiplicative-hash walk visits
	// `updates` distinct keys spread over the whole key range.
	batch := make([]table.Op, updates)
	for i := range batch {
		k := int64(uint64(i) * 2654435761 % uint64(cfg.Rows))
		batch[i] = table.Op{Kind: table.OpUpdate, Key: types.Row{types.Int(k)}, Col: 1, Val: types.Int(int64(i))}
	}
	tx := db.Begin()
	if _, err := tx.ApplyBatch(batch); err != nil {
		db.Close()
		return 0, dec, err
	}
	if err := tx.Commit(); err != nil {
		db.Close()
		return 0, dec, err
	}
	start := time.Now()
	if err := db.Checkpoint(); err != nil {
		db.Close()
		return 0, dec, err
	}
	ms := float64(time.Since(start).Nanoseconds()) / 1e6
	dec = db.Stats().Shard[0].LastDecision
	return ms, dec, db.Close()
}

func recoveryIncPoint(cfg RecoveryIncConfig, frac float64) (RecoveryIncPoint, error) {
	updates := int(float64(cfg.Rows) * frac)
	if updates < 1 {
		updates = 1
	}
	fullMs, _, err := dirtyCheckpointMs(cfg, updates, pdtstore.CheckpointOptions{FullOnly: true})
	if err != nil {
		return RecoveryIncPoint{}, err
	}
	incMs, dec, err := dirtyCheckpointMs(cfg, updates, pdtstore.CheckpointOptions{})
	if err != nil {
		return RecoveryIncPoint{}, err
	}
	pt := RecoveryIncPoint{
		DirtyFrac:   frac,
		UpdatedRows: updates,
		DirtyBlocks: dec.DirtyBlocks,
		TotalBlocks: dec.TotalBlocks,
		Mode:        dec.Mode,
		FullMs:      fullMs,
		IncMs:       incMs,
	}
	if incMs > 0 {
		pt.Speedup = fullMs / incMs
	}
	return pt, nil
}
