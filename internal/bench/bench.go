// Package bench is the measurement harness behind every figure of the
// paper's evaluation (§4). It builds the microbenchmark workloads (Figures
// 16–18) and the TPC-H comparison (Figure 19), shared by the go-test
// benchmarks in the repository root and the cmd/pdtbench and cmd/tpchbench
// drivers.
package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"pdtstore/internal/colstore"
	"pdtstore/internal/engine"
	"pdtstore/internal/pdt"
	"pdtstore/internal/table"
	"pdtstore/internal/tpch"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

// ----- Figure 16: PDT maintenance cost vs PDT size ---------------------------

// Fig16Point is one sample: per-operation cost at a given PDT size.
type Fig16Point struct {
	Size     int // entries in the PDT when sampled
	InsertNS float64
	ModifyNS float64
	DeleteNS float64
}

// Fig16Config sizes the run.
type Fig16Config struct {
	MaxEntries int // grow the PDT to this many entries (paper: 1e6)
	Samples    int // number of sample points along the way
	Fanout     int // PDT fanout (paper default 8)
	StableRows int // size of the virtual underlying table
	Seed       int64
}

// Fig16 grows a PDT with scattered inserts and samples the cost of each
// update kind at increasing sizes, reproducing the logarithmic curves of
// Figure 16.
func Fig16(cfg Fig16Config) []Fig16Point {
	if cfg.MaxEntries == 0 {
		cfg.MaxEntries = 1_000_000
	}
	if cfg.Samples == 0 {
		cfg.Samples = 20
	}
	if cfg.StableRows == 0 {
		cfg.StableRows = cfg.MaxEntries
	}
	schema := types.MustSchema([]types.Column{
		{Name: "k", Kind: types.Int64},
		{Name: "v", Kind: types.Int64},
	}, []int{0})
	rng := rand.New(rand.NewSource(cfg.Seed + 16))
	p := pdt.New(schema, cfg.Fanout)
	visible := int64(cfg.StableRows)
	nextKey := int64(1 << 40) // synthetic keys for inserted tuples

	out := make([]Fig16Point, 0, cfg.Samples)
	step := cfg.MaxEntries / cfg.Samples
	if step == 0 {
		step = 1
	}
	const probe = 200 // operations timed per sample
	for p.Count() < cfg.MaxEntries {
		// grow with scattered inserts
		target := p.Count() + step - probe*3
		for p.Count() < target {
			rid := uint64(rng.Int63n(visible + 1))
			nextKey++
			if err := p.Insert(rid, types.Row{types.Int(nextKey), types.Int(0)}); err != nil {
				panic(err)
			}
			visible++
		}
		pt := Fig16Point{}
		// timed inserts
		start := time.Now()
		for i := 0; i < probe; i++ {
			rid := uint64(rng.Int63n(visible + 1))
			nextKey++
			if err := p.Insert(rid, types.Row{types.Int(nextKey), types.Int(0)}); err != nil {
				panic(err)
			}
			visible++
		}
		pt.InsertNS = float64(time.Since(start).Nanoseconds()) / probe
		// timed modifies
		start = time.Now()
		for i := 0; i < probe; i++ {
			rid := uint64(rng.Int63n(visible))
			if err := p.Modify(rid, 1, types.Int(int64(i))); err != nil {
				panic(err)
			}
		}
		pt.ModifyNS = float64(time.Since(start).Nanoseconds()) / probe
		// timed deletes
		start = time.Now()
		for i := 0; i < probe; i++ {
			rid := uint64(rng.Int63n(visible))
			nextKey++
			if err := p.Delete(rid, types.Row{types.Int(nextKey)}); err != nil {
				panic(err)
			}
			visible--
		}
		pt.DeleteNS = float64(time.Since(start).Nanoseconds()) / probe
		pt.Size = p.Count()
		out = append(out, pt)
	}
	return out
}

// ----- Figures 17 & 18: MergeScan microbenchmarks ----------------------------

// ScanConfig describes one MergeScan experiment cell.
type ScanConfig struct {
	Tuples        int     // table size (paper: 1M/10M/100M)
	DataCols      int     // non-key columns (Fig 17: 4; Fig 18: 6-KeyCols)
	KeyCols       int     // sort-key columns (Fig 17: 1; Fig 18: 1..4)
	StringKeys    bool    // integer or string keys
	UpdatesPer100 float64 // update ratio (0..2.5 per 100 tuples)
	Mode          table.DeltaMode
	BlockRows     int
	Seed          int64
}

// ScanResult is the measured cell.
type ScanResult struct {
	ScanConfig
	HotNS   float64 // wall time of one in-memory merged scan
	IOBytes uint64  // cold I/O volume of the scan
	Rows    int
}

// keyDigits decomposes x into KeyCols digits, most significant first, so the
// lexicographic composite order equals numeric order. The most significant
// digit absorbs the remainder rather than wrapping modulo the base — a
// single-column key of a large table must stay monotone past 2^20 tuples.
func keyDigits(x int64, keyCols int) []int64 {
	const base = 1 << 20
	out := make([]int64, keyCols)
	for i := keyCols - 1; i >= 1; i-- {
		out[i] = x % base
		x /= base
	}
	out[0] = x
	return out
}

func (c ScanConfig) schema() *types.Schema {
	cols := make([]types.Column, 0, c.KeyCols+c.DataCols)
	kind := types.Int64
	if c.StringKeys {
		kind = types.String
	}
	for i := 0; i < c.KeyCols; i++ {
		cols = append(cols, types.Column{Name: fmt.Sprintf("k%d", i), Kind: kind})
	}
	for i := 0; i < c.DataCols; i++ {
		cols = append(cols, types.Column{Name: fmt.Sprintf("d%d", i), Kind: types.Int64})
	}
	sk := make([]int, c.KeyCols)
	for i := range sk {
		sk[i] = i
	}
	return types.MustSchema(cols, sk)
}

func (c ScanConfig) keyRow(x int64) types.Row {
	digits := keyDigits(x, c.KeyCols)
	key := make(types.Row, c.KeyCols)
	for i, d := range digits {
		if c.StringKeys {
			key[i] = types.Str(fmt.Sprintf("key%012d", d))
		} else {
			key[i] = types.Int(d)
		}
	}
	return key
}

func (c ScanConfig) rowFor(x int64, tag int64) types.Row {
	row := c.keyRow(x)
	for i := 0; i < c.DataCols; i++ {
		row = append(row, types.Int(x+tag+int64(i)))
	}
	return row
}

// rowSource feeds the bulk loader without materializing all rows.
type rowSource struct {
	c ScanConfig
	i int
	n int
}

func (s *rowSource) Next(out *vector.Batch, max int) (int, error) {
	n := 0
	for s.i < s.n && n < max {
		out.AppendRow(s.c.rowFor(int64(s.i)*2, 0)) // even keys; odd = insert space
		s.i++
		n++
	}
	return n, nil
}

// BuildScanTable loads the table and applies the configured update ratio
// (40% modifies, 30% inserts, 30% deletes, scattered uniformly, applied
// through the table layer so they land in the mode's delta structure).
func BuildScanTable(c ScanConfig) (*table.Table, error) {
	dev := colstore.NewDevice()
	tbl, err := table.LoadBatches(c.schema(), &rowSource{c: c, n: c.Tuples},
		table.Options{Mode: c.Mode, BlockRows: c.BlockRows, Device: dev})
	if err != nil {
		return nil, err
	}
	if c.Mode == table.ModeNone || c.UpdatesPer100 == 0 {
		return tbl, nil
	}
	rng := rand.New(rand.NewSource(c.Seed + 17))
	nUpd := int(float64(c.Tuples) * c.UpdatesPer100 / 100)
	for u := 0; u < nUpd; u++ {
		r := rng.Float64()
		switch {
		case r < 0.4: // modify a random data column of a random base tuple
			key := c.keyRow(int64(rng.Intn(c.Tuples)) * 2)
			col := c.KeyCols + rng.Intn(c.DataCols)
			if _, err := tbl.UpdateByKey(key, col, types.Int(int64(u))); err != nil {
				return nil, err
			}
		case r < 0.7: // insert at an odd key (scattered position)
			x := int64(rng.Intn(c.Tuples))*2 + 1
			if err := tbl.Insert(c.rowFor(x, 7)); err != nil &&
				!strings.Contains(err.Error(), "duplicate") {
				return nil, err
			}
		default: // delete a random base tuple
			key := c.keyRow(int64(rng.Intn(c.Tuples)) * 2)
			if _, err := tbl.DeleteByKey(key); err != nil {
				return nil, err
			}
		}
	}
	return tbl, nil
}

// MeasureScan runs the experiment's query — project all data columns (never
// the keys) through the merging scan — and reports hot time and cold I/O.
func MeasureScan(tbl *table.Table, c ScanConfig) (ScanResult, error) {
	res := ScanResult{ScanConfig: c}
	cols := make([]int, c.DataCols)
	for i := range cols {
		cols[i] = c.KeyCols + i
	}
	runScan := func() (int, error) {
		src, err := tbl.Scan(cols, nil, nil)
		if err != nil {
			return 0, err
		}
		out := vector.NewBatch(tbl.Kinds(cols), 1024)
		rows := 0
		for {
			n, err := src.Next(out, 1024)
			if err != nil {
				return rows, err
			}
			if n == 0 {
				return rows, nil
			}
			rows += n
			out.Reset()
		}
	}
	// cold pass: count I/O (and warm the buffer pool)
	tbl.Store().Device().DropCaches()
	tbl.Store().Device().ResetStats()
	rows, err := runScan()
	if err != nil {
		return res, err
	}
	res.Rows = rows
	res.IOBytes, _ = tbl.Store().Device().Stats()
	// hot pass: measure wall time
	start := time.Now()
	if _, err := runScan(); err != nil {
		return res, err
	}
	res.HotNS = float64(time.Since(start).Nanoseconds())
	return res, nil
}

// ----- Engine scan pipeline: throughput and allocation profile ---------------

// ScanAllocRow is one measured scan-pipeline case: hot throughput plus the
// allocation profile of the whole pipeline (source, filter kernels, sink).
type ScanAllocRow struct {
	Name        string  `json:"name"`
	Mode        string  `json:"mode"`
	Cols        int     `json:"cols_projected"`
	Rows        int     `json:"rows_per_op"`
	NsPerOp     float64 `json:"ns_per_op"`
	MRowsPerSec float64 `json:"mrows_per_sec"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func measureScanCase(name, mode string, cols, rows int, fn func() error) (ScanAllocRow, error) {
	var innerErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := fn(); err != nil {
				innerErr = err
				b.FailNow()
			}
		}
	})
	if innerErr != nil {
		return ScanAllocRow{}, innerErr
	}
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	row := ScanAllocRow{
		Name: name, Mode: mode, Cols: cols, Rows: rows,
		NsPerOp:     ns,
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if ns > 0 {
		row.MRowsPerSec = float64(rows) / ns * 1e3
	}
	return row, nil
}

// ScanAllocConfig sizes the scan-pipeline profile.
type ScanAllocConfig struct {
	SF         float64 // TPC-H scale factor for the Q1 rows (default 0.01)
	BlockRows  int     // default 4096
	Streams    int     // refresh streams before measuring (default 2)
	UpdateFrac float64 // fraction of orders per stream (default 0.001)
}

// ScanAllocProfile measures the engine read pipeline on lineitem under the
// no-updates and PDT modes: a 2-column projected scan, a full-width scan
// (every lineitem column), and the TPC-H Q1 scan path — the "projected vs
// full-width" contrast that shows projection pushdown at work, with
// allocs/op proving the selection-vector pipeline stays allocation-free per
// batch.
func ScanAllocProfile(cfg ScanAllocConfig) ([]ScanAllocRow, error) {
	if cfg.SF == 0 {
		cfg.SF = 0.01
	}
	if cfg.BlockRows == 0 {
		cfg.BlockRows = 4096
	}
	if cfg.Streams == 0 {
		cfg.Streams = 2
	}
	if cfg.UpdateFrac == 0 {
		cfg.UpdateFrac = 0.001
	}
	var out []ScanAllocRow
	for _, mode := range []table.DeltaMode{table.ModeNone, table.ModePDT} {
		db, err := tpch.Load(cfg.SF, mode, true, cfg.BlockRows)
		if err != nil {
			return nil, err
		}
		if err := db.ApplyRefresh(cfg.Streams, cfg.UpdateFrac); err != nil {
			return nil, err
		}
		li := db.Lineitem
		nrows := int(li.NRows())
		allCols := make([]int, li.Schema().NumCols())
		for i := range allCols {
			allCols[i] = i
		}
		drain := func(cols []int) func() error {
			return func() error {
				return engine.Scan(li, cols...).Run(func(*vector.Batch, []uint32) error { return nil })
			}
		}
		cases := []struct {
			name string
			cols []int
			rows int
			fn   func() error
		}{
			{"lineitem/projected-2col", []int{tpch.LExtendedprice, tpch.LDiscount}, nrows, nil},
			{"lineitem/full-width", allCols, nrows, nil},
			{"tpch/Q1", nil, nrows, func() error { _, err := tpch.Q1(db); return err }},
		}
		for _, c := range cases {
			fn := c.fn
			ncols := len(c.cols)
			if fn == nil {
				fn = drain(c.cols)
			}
			// warm the buffer pool so the profile measures the hot pipeline
			if err := fn(); err != nil {
				return nil, err
			}
			row, err := measureScanCase(c.name, mode.String(), ncols, c.rows, fn)
			if err != nil {
				return nil, err
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// FillThroughput computes MRowsPerSec for every row where it is missing
// (zero) but NsPerOp and Rows are known — repairing seed baselines recorded
// before the throughput column existed. Rows already carrying a value are
// left untouched.
func FillThroughput(rows []ScanAllocRow) []ScanAllocRow {
	for i := range rows {
		if rows[i].MRowsPerSec == 0 && rows[i].NsPerOp > 0 && rows[i].Rows > 0 {
			rows[i].MRowsPerSec = float64(rows[i].Rows) / rows[i].NsPerOp * 1e3
		}
	}
	return rows
}

// ----- Parallel scan sweep ---------------------------------------------------

// ParallelScanConfig sizes the worker sweep.
type ParallelScanConfig struct {
	Tuples        int           // table size (default 1M)
	Workers       []int         // worker counts to sweep (default 1,2,4,8)
	BlockRows     int           // colstore block size (default 4096)
	UpdatesPer100 float64       // update ratio for the PDT cell (default 1.0)
	ReadLatency   time.Duration // modeled per-block cold-read latency (default 200µs)
	Seed          int64
}

// ParallelScanRow is one cell of the sweep: one (mode, workers) pair.
type ParallelScanRow struct {
	Mode        string  `json:"mode"`
	Workers     int     `json:"workers"`
	Rows        int     `json:"rows"`
	ColdNS      float64 `json:"cold_ns"`
	ColdGBs     float64 `json:"cold_gb_per_sec"`
	ColdSpeedup float64 `json:"cold_speedup"`
	HotNS       float64 `json:"hot_ns"`
	HotGBs      float64 `json:"hot_gb_per_sec"`
	HotSpeedup  float64 `json:"hot_speedup"`
}

// ParallelScanProfile sweeps the morsel-parallel scan over worker counts, for
// a plain table and a PDT-carrying one. Cold passes run against dropped
// caches with the configured per-block device latency modeling a real disk's
// read cost (the modeled sleeps overlap across workers, exactly as concurrent
// reads overlap on hardware); hot passes run from the warm buffer pool with
// latency off. GB/s is computed over the encoded size of the scanned data
// columns; speedups are relative to the 1-worker row of the same mode.
func ParallelScanProfile(cfg ParallelScanConfig) ([]ParallelScanRow, error) {
	if cfg.Tuples == 0 {
		cfg.Tuples = 1_000_000
	}
	if len(cfg.Workers) == 0 {
		cfg.Workers = []int{1, 2, 4, 8}
	}
	if cfg.BlockRows == 0 {
		cfg.BlockRows = 4096
	}
	if cfg.UpdatesPer100 == 0 {
		cfg.UpdatesPer100 = 1.0
	}
	if cfg.ReadLatency == 0 {
		cfg.ReadLatency = 200 * time.Microsecond
	}
	var out []ParallelScanRow
	for _, mode := range []table.DeltaMode{table.ModeNone, table.ModePDT} {
		sc := ScanConfig{
			Tuples: cfg.Tuples, DataCols: 4, KeyCols: 1,
			UpdatesPer100: cfg.UpdatesPer100, Mode: mode,
			BlockRows: cfg.BlockRows, Seed: cfg.Seed,
		}
		if mode == table.ModeNone {
			sc.UpdatesPer100 = 0
		}
		tbl, err := BuildScanTable(sc)
		if err != nil {
			return nil, err
		}
		cols := make([]int, sc.DataCols)
		for i := range cols {
			cols[i] = sc.KeyCols + i
		}
		var scanBytes uint64
		for _, c := range cols {
			scanBytes += tbl.Store().EncodedSize(c)
		}
		dev := tbl.Store().Device()
		drain := func(w int) (int, error) {
			rows := 0
			err := engine.Scan(tbl, cols...).Parallel(w).
				Run(func(b *vector.Batch, sel []uint32) error {
					if sel != nil {
						rows += len(sel)
					} else {
						rows += b.Len()
					}
					return nil
				})
			return rows, err
		}
		var base ParallelScanRow
		for _, w := range cfg.Workers {
			row := ParallelScanRow{Mode: mode.String(), Workers: w}
			// cold: dropped caches, modeled per-block read latency
			dev.SetReadLatency(cfg.ReadLatency)
			dev.DropCaches()
			start := time.Now()
			rows, err := drain(w)
			if err != nil {
				dev.SetReadLatency(0)
				return nil, err
			}
			row.ColdNS = float64(time.Since(start).Nanoseconds())
			row.Rows = rows
			// hot: warm pool, no modeled latency
			dev.SetReadLatency(0)
			if _, err := drain(w); err != nil {
				return nil, err
			}
			start = time.Now()
			if _, err := drain(w); err != nil {
				return nil, err
			}
			row.HotNS = float64(time.Since(start).Nanoseconds())
			if row.ColdNS > 0 {
				row.ColdGBs = float64(scanBytes) / row.ColdNS
			}
			if row.HotNS > 0 {
				row.HotGBs = float64(scanBytes) / row.HotNS
			}
			if w == 1 || base.Workers == 0 {
				base = row
			}
			row.ColdSpeedup = base.ColdNS / row.ColdNS
			row.HotSpeedup = base.HotNS / row.HotNS
			out = append(out, row)
		}
	}
	return out, nil
}

// ----- Figure 19: TPC-H ------------------------------------------------------

// TPCHConfig describes one platform profile of Figure 19.
type TPCHConfig struct {
	SF          float64
	Compressed  bool
	BlockRows   int
	Streams     int     // update streams (paper: 2)
	UpdateFrac  float64 // fraction of orders touched per stream (paper: 0.001)
	BandwidthMB float64 // modeled disk bandwidth for cold times
}

// TPCHRow is the measurement of one query under one mode.
type TPCHRow struct {
	Query   int
	Mode    table.DeltaMode
	HotMS   float64
	ColdMS  float64 // modeled: hot + IO/bandwidth
	IOBytes uint64
}

// TPCH loads one database per mode, applies the update streams, runs all 22
// queries and reports per-query hot time, I/O volume and modeled cold time —
// the three panels of Figure 19.
func TPCH(cfg TPCHConfig) ([]TPCHRow, error) {
	if cfg.Streams == 0 {
		cfg.Streams = 2
	}
	if cfg.UpdateFrac == 0 {
		cfg.UpdateFrac = 0.001
	}
	if cfg.BandwidthMB == 0 {
		cfg.BandwidthMB = 150 // the paper's workstation disk
	}
	var out []TPCHRow
	for _, mode := range []table.DeltaMode{table.ModeNone, table.ModeVDT, table.ModePDT} {
		db, err := tpch.Load(cfg.SF, mode, cfg.Compressed, cfg.BlockRows)
		if err != nil {
			return nil, err
		}
		if err := db.ApplyRefresh(cfg.Streams, cfg.UpdateFrac); err != nil {
			return nil, err
		}
		for _, q := range tpch.Queries {
			// cold pass: I/O volume (+ warms pool)
			db.Device.DropCaches()
			db.Device.ResetStats()
			if _, err := q.Run(db); err != nil {
				return nil, fmt.Errorf("Q%d (%v): %w", q.ID, mode, err)
			}
			io, _ := db.Device.Stats()
			// hot pass: wall time
			start := time.Now()
			if _, err := q.Run(db); err != nil {
				return nil, err
			}
			hot := float64(time.Since(start).Nanoseconds()) / 1e6
			out = append(out, TPCHRow{
				Query:   q.ID,
				Mode:    mode,
				HotMS:   hot,
				ColdMS:  hot + float64(io)/(cfg.BandwidthMB*1e6)*1e3,
				IOBytes: io,
			})
		}
	}
	return out, nil
}
