// Package types defines the value model shared by every layer of the store:
// column kinds, single values, rows, schemas and sort-key comparison.
//
// The store is column-oriented, so most hot paths operate on typed vectors
// (package vector) rather than on Value; Value and Row exist for the
// row-shaped edges of the system (updates entering the store, results leaving
// it, and the value spaces of differential structures).
package types

import (
	"fmt"
	"strings"
)

// Kind enumerates the column types supported by the store.
type Kind uint8

const (
	// Int64 is a 64-bit signed integer column.
	Int64 Kind = iota
	// Float64 is a 64-bit IEEE-754 column.
	Float64
	// String is a variable-length UTF-8 column.
	String
	// Bool is a boolean column (stored as one byte).
	Bool
	// Date is a day-precision date stored as days since 1970-01-01.
	Date
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	case Bool:
		return "bool"
	case Date:
		return "date"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// FixedWidth reports the physical width in bytes of one value of kind k in
// uncompressed columnar storage. Strings are variable-width and return
// (0, false); their width is len(data) plus a 4-byte offset entry.
func (k Kind) FixedWidth() (int, bool) {
	switch k {
	case Int64, Float64, Date:
		return 8, true
	case Bool:
		return 1, true
	}
	return 0, false
}

// Value is a tagged union holding a single column value.
// The zero Value is the Int64 value 0.
type Value struct {
	K Kind
	I int64 // Int64, Date (days), Bool (0 or 1)
	F float64
	S string
}

// Int returns an Int64 value.
func Int(v int64) Value { return Value{K: Int64, I: v} }

// Float returns a Float64 value.
func Float(v float64) Value { return Value{K: Float64, F: v} }

// Str returns a String value.
func Str(v string) Value { return Value{K: String, S: v} }

// BoolVal returns a Bool value.
func BoolVal(v bool) Value {
	if v {
		return Value{K: Bool, I: 1}
	}
	return Value{K: Bool, I: 0}
}

// DateVal returns a Date value holding days since the Unix epoch.
func DateVal(days int64) Value { return Value{K: Date, I: days} }

// Bool reports the boolean interpretation of v.
func (v Value) Bool() bool { return v.I != 0 }

// String renders the value for debugging and example output.
func (v Value) String() string {
	switch v.K {
	case Int64, Date:
		return fmt.Sprintf("%d", v.I)
	case Float64:
		return fmt.Sprintf("%g", v.F)
	case String:
		return v.S
	case Bool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	}
	return "?"
}

// Compare orders two values of the same kind: -1, 0, or +1.
// Comparing values of different kinds panics; schemas guarantee
// homogeneous columns, so a mixed comparison is a programming error.
func Compare(a, b Value) int {
	if a.K != b.K {
		panic(fmt.Sprintf("types: comparing %v with %v", a.K, b.K))
	}
	switch a.K {
	case Int64, Date, Bool:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	case Float64:
		switch {
		case a.F < b.F:
			return -1
		case a.F > b.F:
			return 1
		}
		return 0
	case String:
		return strings.Compare(a.S, b.S)
	}
	panic("types: unknown kind")
}

// Equal reports whether a and b are the same value of the same kind.
func Equal(a, b Value) bool { return a.K == b.K && Compare(a, b) == 0 }

// Row is a full tuple: one Value per schema column, in schema order.
type Row []Value

// Clone returns a deep-enough copy of r (Values are immutable, so a shallow
// slice copy suffices).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Project returns the values of r at the given column indexes.
func (r Row) Project(cols []int) Row {
	out := make(Row, len(cols))
	for i, c := range cols {
		out[i] = r[c]
	}
	return out
}

// String renders the row as a parenthesized tuple.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// CompareRows orders two equal-length rows lexicographically.
func CompareRows(a, b Row) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// CompareRowsAt orders rows a and b on the given column indexes.
func CompareRowsAt(a, b Row, cols []int) int {
	for _, c := range cols {
		if cmp := Compare(a[c], b[c]); cmp != 0 {
			return cmp
		}
	}
	return 0
}

// Column describes one column of a schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema describes an ordered table: its columns and the sort key.
//
// SortKey lists column indexes; the table is physically ordered by the
// concatenation of those columns, and that concatenation is a key of the
// table (as the paper's SK requires).
type Schema struct {
	Cols    []Column
	SortKey []int
}

// NewSchema builds a schema and validates the sort-key indexes.
func NewSchema(cols []Column, sortKey []int) (*Schema, error) {
	seen := map[string]bool{}
	for _, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("types: empty column name")
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("types: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
	}
	if len(sortKey) == 0 {
		return nil, fmt.Errorf("types: schema requires a sort key")
	}
	used := map[int]bool{}
	for _, k := range sortKey {
		if k < 0 || k >= len(cols) {
			return nil, fmt.Errorf("types: sort key index %d out of range", k)
		}
		if used[k] {
			return nil, fmt.Errorf("types: duplicate sort key index %d", k)
		}
		used[k] = true
	}
	return &Schema{Cols: cols, SortKey: sortKey}, nil
}

// MustSchema is NewSchema for static schemas; it panics on error.
func MustSchema(cols []Column, sortKey []int) *Schema {
	s, err := NewSchema(cols, sortKey)
	if err != nil {
		panic(err)
	}
	return s
}

// NumCols returns the number of columns.
func (s *Schema) NumCols() int { return len(s.Cols) }

// ColIndex returns the index of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// ColNames returns the column names in schema order.
func (s *Schema) ColNames() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// IsSortKeyCol reports whether column index c participates in the sort key.
func (s *Schema) IsSortKeyCol(c int) bool {
	for _, k := range s.SortKey {
		if k == c {
			return true
		}
	}
	return false
}

// KeyOf projects the sort-key columns out of a full row.
func (s *Schema) KeyOf(r Row) Row { return r.Project(s.SortKey) }

// CompareKeyRows orders two full rows by the schema's sort key.
func (s *Schema) CompareKeyRows(a, b Row) int { return CompareRowsAt(a, b, s.SortKey) }

// CompareKeyToRow orders a projected key (len == len(SortKey)) against the
// sort key of a full row.
func (s *Schema) CompareKeyToRow(key Row, row Row) int {
	for i, c := range s.SortKey {
		if cmp := Compare(key[i], row[c]); cmp != 0 {
			return cmp
		}
	}
	return 0
}

// ValidateRow checks that r matches the schema's arity and column kinds.
func (s *Schema) ValidateRow(r Row) error {
	if len(r) != len(s.Cols) {
		return fmt.Errorf("types: row has %d values, schema %q-style has %d columns", len(r), s.Cols[0].Name, len(s.Cols))
	}
	for i, v := range r {
		if v.K != s.Cols[i].Kind {
			return fmt.Errorf("types: column %q expects %v, got %v", s.Cols[i].Name, s.Cols[i].Kind, v.K)
		}
	}
	return nil
}

// String renders the schema as "name kind, ... ORDER BY (cols)".
func (s *Schema) String() string {
	cols := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		cols[i] = c.Name + " " + c.Kind.String()
	}
	keys := make([]string, len(s.SortKey))
	for i, k := range s.SortKey {
		keys[i] = s.Cols[k].Name
	}
	return strings.Join(cols, ", ") + " ORDER BY (" + strings.Join(keys, ",") + ")"
}
