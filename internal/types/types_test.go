package types

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Int64: "int64", Float64: "float64", String: "string", Bool: "bool", Date: "date",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestFixedWidth(t *testing.T) {
	for _, k := range []Kind{Int64, Float64, Date} {
		w, ok := k.FixedWidth()
		if !ok || w != 8 {
			t.Errorf("%v.FixedWidth() = %d,%v want 8,true", k, w, ok)
		}
	}
	if w, ok := Bool.FixedWidth(); !ok || w != 1 {
		t.Errorf("Bool.FixedWidth() = %d,%v want 1,true", w, ok)
	}
	if _, ok := String.FixedWidth(); ok {
		t.Error("String.FixedWidth() reported fixed")
	}
}

func TestValueConstructorsAndString(t *testing.T) {
	if v := Int(7); v.K != Int64 || v.I != 7 || v.String() != "7" {
		t.Errorf("Int(7) = %#v", v)
	}
	if v := Float(2.5); v.K != Float64 || v.F != 2.5 || v.String() != "2.5" {
		t.Errorf("Float(2.5) = %#v", v)
	}
	if v := Str("x"); v.K != String || v.S != "x" || v.String() != "x" {
		t.Errorf("Str = %#v", v)
	}
	if v := BoolVal(true); !v.Bool() || v.String() != "true" {
		t.Errorf("BoolVal(true) = %#v", v)
	}
	if v := BoolVal(false); v.Bool() || v.String() != "false" {
		t.Errorf("BoolVal(false) = %#v", v)
	}
	if v := DateVal(100); v.K != Date || v.I != 100 || v.String() != "100" {
		t.Errorf("DateVal = %#v", v)
	}
}

func TestCompareInt(t *testing.T) {
	if Compare(Int(1), Int(2)) != -1 || Compare(Int(2), Int(1)) != 1 || Compare(Int(3), Int(3)) != 0 {
		t.Error("int comparison broken")
	}
}

func TestCompareFloat(t *testing.T) {
	if Compare(Float(1.5), Float(2.5)) != -1 || Compare(Float(2.5), Float(1.5)) != 1 || Compare(Float(1.5), Float(1.5)) != 0 {
		t.Error("float comparison broken")
	}
}

func TestCompareString(t *testing.T) {
	if Compare(Str("a"), Str("b")) != -1 || Compare(Str("b"), Str("a")) != 1 || Compare(Str("a"), Str("a")) != 0 {
		t.Error("string comparison broken")
	}
}

func TestCompareBoolDate(t *testing.T) {
	if Compare(BoolVal(false), BoolVal(true)) != -1 {
		t.Error("bool comparison broken")
	}
	if Compare(DateVal(1), DateVal(2)) != -1 {
		t.Error("date comparison broken")
	}
}

func TestCompareMixedKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic comparing mixed kinds")
		}
	}()
	Compare(Int(1), Str("1"))
}

func TestCompareAntisymmetry(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int(a), Int(b)) == -Compare(Int(b), Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareStringTotalOrder(t *testing.T) {
	f := func(a, b, c string) bool {
		// transitivity spot check: a<=b && b<=c => a<=c
		if Compare(Str(a), Str(b)) <= 0 && Compare(Str(b), Str(c)) <= 0 {
			return Compare(Str(a), Str(c)) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqual(t *testing.T) {
	if !Equal(Int(5), Int(5)) || Equal(Int(5), Int(6)) {
		t.Error("Equal on ints broken")
	}
	if Equal(Int(5), Str("5")) {
		t.Error("Equal across kinds must be false")
	}
}

func TestRowCloneProjectString(t *testing.T) {
	r := Row{Int(1), Str("x"), Float(2.0)}
	c := r.Clone()
	c[0] = Int(9)
	if r[0].I != 1 {
		t.Error("Clone aliases original")
	}
	p := r.Project([]int{2, 0})
	if len(p) != 2 || p[0].F != 2.0 || p[1].I != 1 {
		t.Errorf("Project = %v", p)
	}
	if got := r.String(); got != "(1,x,2)" {
		t.Errorf("Row.String() = %q", got)
	}
}

func TestCompareRows(t *testing.T) {
	a := Row{Int(1), Str("b")}
	b := Row{Int(1), Str("c")}
	if CompareRows(a, b) != -1 || CompareRows(b, a) != 1 || CompareRows(a, a) != 0 {
		t.Error("CompareRows broken")
	}
	// prefix ordering
	if CompareRows(Row{Int(1)}, a) != -1 {
		t.Error("shorter row should sort first on equal prefix")
	}
	if CompareRows(a, Row{Int(1)}) != 1 {
		t.Error("longer row should sort last on equal prefix")
	}
}

func TestCompareRowsAt(t *testing.T) {
	a := Row{Int(9), Str("a"), Int(1)}
	b := Row{Int(0), Str("a"), Int(2)}
	if CompareRowsAt(a, b, []int{1}) != 0 {
		t.Error("equal on col 1")
	}
	if CompareRowsAt(a, b, []int{1, 2}) != -1 {
		t.Error("tie-break on col 2")
	}
}

func inventorySchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema([]Column{
		{"store", String}, {"prod", String}, {"new", Bool}, {"qty", Int64},
	}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaBasics(t *testing.T) {
	s := inventorySchema(t)
	if s.NumCols() != 4 {
		t.Errorf("NumCols = %d", s.NumCols())
	}
	if s.ColIndex("qty") != 3 || s.ColIndex("nope") != -1 {
		t.Error("ColIndex broken")
	}
	if !s.IsSortKeyCol(0) || !s.IsSortKeyCol(1) || s.IsSortKeyCol(3) {
		t.Error("IsSortKeyCol broken")
	}
	names := s.ColNames()
	if len(names) != 4 || names[0] != "store" || names[3] != "qty" {
		t.Errorf("ColNames = %v", names)
	}
	want := "store string, prod string, new bool, qty int64 ORDER BY (store,prod)"
	if got := s.String(); got != want {
		t.Errorf("String() = %q want %q", got, want)
	}
}

func TestSchemaKeyOps(t *testing.T) {
	s := inventorySchema(t)
	row := Row{Str("Paris"), Str("rug"), BoolVal(false), Int(1)}
	key := s.KeyOf(row)
	if len(key) != 2 || key[0].S != "Paris" || key[1].S != "rug" {
		t.Errorf("KeyOf = %v", key)
	}
	other := Row{Str("Paris"), Str("stool"), BoolVal(false), Int(5)}
	if s.CompareKeyRows(row, other) != -1 {
		t.Error("CompareKeyRows broken")
	}
	if s.CompareKeyToRow(key, other) != -1 || s.CompareKeyToRow(key, row) != 0 {
		t.Error("CompareKeyToRow broken")
	}
}

func TestSchemaValidateRow(t *testing.T) {
	s := inventorySchema(t)
	good := Row{Str("a"), Str("b"), BoolVal(true), Int(1)}
	if err := s.ValidateRow(good); err != nil {
		t.Errorf("good row rejected: %v", err)
	}
	if err := s.ValidateRow(good[:3]); err == nil {
		t.Error("short row accepted")
	}
	bad := Row{Str("a"), Str("b"), BoolVal(true), Str("1")}
	if err := s.ValidateRow(bad); err == nil {
		t.Error("wrong-kind row accepted")
	}
}

func TestNewSchemaErrors(t *testing.T) {
	if _, err := NewSchema([]Column{{"a", Int64}, {"a", Int64}}, []int{0}); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := NewSchema([]Column{{"", Int64}}, []int{0}); err == nil {
		t.Error("empty column name accepted")
	}
	if _, err := NewSchema([]Column{{"a", Int64}}, nil); err == nil {
		t.Error("missing sort key accepted")
	}
	if _, err := NewSchema([]Column{{"a", Int64}}, []int{1}); err == nil {
		t.Error("out-of-range sort key accepted")
	}
	if _, err := NewSchema([]Column{{"a", Int64}}, []int{0, 0}); err == nil {
		t.Error("duplicate sort key accepted")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchema should panic on bad schema")
		}
	}()
	MustSchema([]Column{{"a", Int64}}, nil)
}
