package storage

// Compact little-endian codec for the metadata that rides in segment footers:
// values, rows and schemas. The WAL has its own record codec; this one is
// deliberately independent so the two formats can evolve separately (a WAL
// format bump must not invalidate every segment on disk, and vice versa).

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"pdtstore/internal/types"
)

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

func appendValue(buf []byte, v types.Value) []byte {
	buf = append(buf, byte(v.K))
	switch v.K {
	case types.Float64:
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
	case types.String:
		return appendString(buf, v.S)
	default:
		return binary.LittleEndian.AppendUint64(buf, uint64(v.I))
	}
}

func appendRow(buf []byte, r types.Row) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r)))
	for _, v := range r {
		buf = appendValue(buf, v)
	}
	return buf
}

func appendSchema(buf []byte, s *types.Schema) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Cols)))
	for _, c := range s.Cols {
		buf = appendString(buf, c.Name)
		buf = append(buf, byte(c.Kind))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.SortKey)))
	for _, k := range s.SortKey {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(k))
	}
	return buf
}

type reader struct {
	buf []byte
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil || len(r.buf) < n {
		r.err = io.ErrUnexpectedEOF
		return make([]byte, n)
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out
}

func (r *reader) u64() uint64 { return binary.LittleEndian.Uint64(r.take(8)) }
func (r *reader) u32() uint32 { return binary.LittleEndian.Uint32(r.take(4)) }
func (r *reader) u8() byte    { return r.take(1)[0] }

func (r *reader) str() string {
	n := int(r.u32())
	if r.err != nil || len(r.buf) < n {
		r.err = io.ErrUnexpectedEOF
		return ""
	}
	return string(r.take(n))
}

func (r *reader) value() types.Value {
	k := types.Kind(r.u8())
	switch k {
	case types.Float64:
		return types.Value{K: k, F: math.Float64frombits(r.u64())}
	case types.String:
		return types.Value{K: k, S: r.str()}
	default:
		return types.Value{K: k, I: int64(r.u64())}
	}
}

func (r *reader) row() types.Row {
	n := int(r.u32())
	if r.err != nil || n > len(r.buf) {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	row := make(types.Row, n)
	for i := range row {
		row[i] = r.value()
	}
	return row
}

func (r *reader) schema() (*types.Schema, error) {
	ncols := int(r.u32())
	if r.err != nil || ncols > len(r.buf) {
		return nil, io.ErrUnexpectedEOF
	}
	cols := make([]types.Column, ncols)
	for i := range cols {
		cols[i].Name = r.str()
		cols[i].Kind = types.Kind(r.u8())
	}
	nsort := int(r.u32())
	if r.err != nil || nsort > len(r.buf) {
		return nil, io.ErrUnexpectedEOF
	}
	sortKey := make([]int, nsort)
	for i := range sortKey {
		sortKey[i] = int(r.u32())
	}
	if r.err != nil {
		return nil, r.err
	}
	s, err := types.NewSchema(cols, sortKey)
	if err != nil {
		return nil, fmt.Errorf("storage: footer schema: %w", err)
	}
	return s, nil
}
