package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"pdtstore/internal/types"
)

// ManifestName is the pointer file naming the current segment generation.
const ManifestName = "MANIFEST"

// Manifest is the durable root of a store directory. Swapping it (an atomic
// rename) is the commit point of a checkpoint: after the swap, recovery loads
// Segment and replays only WAL records with LSN > LSN; before it, recovery
// loads the previous generation and replays the full log. Either way the
// reconstructed state is exactly the committed state.
type Manifest struct {
	// Generation counts checkpoints; segment files are named after it.
	Generation uint64 `json:"generation"`
	// Segment is the file name (within the store directory) of the stable
	// image this generation checkpointed (unsharded stores only; a sharded
	// store leaves it empty and lists one entry per shard in Shards).
	Segment string `json:"segment,omitempty"`
	// Segments, when non-empty, is the generation's full segment chain,
	// oldest first: an incremental checkpoint writes only dirty blocks into a
	// new segment (always the last chain member, equal to Segment) and its
	// block map resolves inherited blocks into the earlier members. A
	// single-element chain — or an absent one, the pre-incremental format —
	// is a self-contained image.
	Segments []string `json:"segments,omitempty"`
	// LSN is the commit clock at the checkpoint's freeze point: every commit
	// with LSN <= this is contained in Segment, every later commit is only in
	// the WAL.
	LSN uint64 `json:"lsn,omitempty"`
	// Shards, when non-empty, marks the store as sharded: entry i names
	// shard i's stable image and its own freeze LSN (shards checkpoint
	// independently, so the bars differ). All LSNs live on one global commit
	// clock shared by every shard's WAL stream.
	Shards []ShardEntry `json:"shards,omitempty"`
	// Splits are the len(Shards)-1 ascending full-sort-key cuts routing keys
	// to shards: shard 0 owns keys below Splits[0], shard i owns
	// [Splits[i-1], Splits[i]), the last shard owns the rest. Fixed at the
	// split forever — shard boundaries never move at checkpoint.
	Splits []types.Row `json:"splits,omitempty"`
}

// ShardEntry is one shard's slot in a sharded manifest.
type ShardEntry struct {
	// Segment is the file name of the shard's stable image.
	Segment string `json:"segment"`
	// Segments is the shard's segment chain, oldest first (see
	// Manifest.Segments). Empty means the single self-contained Segment.
	Segments []string `json:"segments,omitempty"`
	// LSN is the shard's checkpoint freeze bar: every commit touching this
	// shard with LSN <= this is contained in Segment.
	LSN uint64 `json:"lsn"`
}

// Chain returns the unsharded generation's segment chain, oldest first,
// normalizing the pre-incremental single-segment form.
func (m Manifest) Chain() []string {
	if len(m.Segments) > 0 {
		return m.Segments
	}
	if m.Segment != "" {
		return []string{m.Segment}
	}
	return nil
}

// Chain returns the shard's segment chain, oldest first, normalizing the
// pre-incremental single-segment form.
func (e ShardEntry) Chain() []string {
	if len(e.Segments) > 0 {
		return e.Segments
	}
	return []string{e.Segment}
}

// WriteManifest durably installs m as dir's manifest: write to a temp file,
// fsync, rename over ManifestName, fsync the directory.
func WriteManifest(dir string, m Manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, ManifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: write manifest: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: fsync manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: swap manifest: %w", err)
	}
	syncDir(dir)
	return nil
}

// LoadManifest reads dir's manifest. ok is false when none exists (a fresh
// directory); any other failure is an error — a store with an unreadable
// manifest must not be silently re-initialized over live data.
func LoadManifest(dir string) (m Manifest, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, false, fmt.Errorf("storage: corrupt manifest: %w", err)
	}
	if m.Segment == "" && len(m.Shards) == 0 {
		return Manifest{}, false, fmt.Errorf("storage: manifest names no segment")
	}
	if err := validateChain(m.Segment, m.Segments); err != nil {
		return Manifest{}, false, err
	}
	for i, sh := range m.Shards {
		if sh.Segment == "" {
			return Manifest{}, false, fmt.Errorf("storage: manifest shard %d names no segment", i)
		}
		if err := validateChain(sh.Segment, sh.Segments); err != nil {
			return Manifest{}, false, fmt.Errorf("storage: manifest shard %d: %w", i, err)
		}
	}
	if len(m.Shards) > 0 && len(m.Splits) != len(m.Shards)-1 {
		return Manifest{}, false, fmt.Errorf("storage: manifest has %d shards but %d split keys", len(m.Shards), len(m.Splits))
	}
	return m, true, nil
}

// validateChain checks a segment chain against the entry's newest-segment
// name: every member must be named and the newest chain member must be the
// segment the entry points at (readers resolve the block map out of it).
func validateChain(segment string, chain []string) error {
	if len(chain) == 0 {
		return nil
	}
	for i, nm := range chain {
		if nm == "" {
			return fmt.Errorf("storage: manifest chain member %d is unnamed", i)
		}
	}
	if segment != "" && chain[len(chain)-1] != segment {
		return fmt.Errorf("storage: manifest chain ends at %q, segment is %q", chain[len(chain)-1], segment)
	}
	return nil
}
