package storage

// Per-block zone maps: min/max/null-count statistics for every encoded column
// block, written into the segment footer's sectioned tail. A scan consults the
// zone before fetching the block, so a selective predicate skips whole blocks
// without a pread. Stats are computed by the block builder (the storage layer
// never decodes vectors); a delta checkpoint recomputes stats only for the
// blocks it rewrites — inherited blocks keep the stats of the chain member
// that holds their bytes, resolved through the block-placement map.

import (
	"encoding/binary"
	"math"
)

// ZoneKind says which min/max arm of a Zone is populated.
type ZoneKind uint8

const (
	// ZoneNone marks a block with no usable statistics; it is never skipped.
	ZoneNone ZoneKind = iota
	// ZoneInt covers Int64, Bool and Date blocks (bools as 0/1).
	ZoneInt
	// ZoneFloat covers Float64 blocks.
	ZoneFloat
	// ZoneString covers String blocks; MaxS may be a truncated prefix.
	ZoneString
)

// Zone holds the per-block statistics recorded in the segment footer: the
// min/max of the block's values in the arm named by Kind, plus a null count
// (always zero today — the value model has no NULL — kept so the format does
// not need a bump when nullability lands).
type Zone struct {
	Kind       ZoneKind
	MinI, MaxI int64
	MinF, MaxF float64
	MinS, MaxS string
	// MaxSTrunc marks MaxS as a length-capped prefix of the true maximum
	// (long strings are not stored whole in the footer). A truncated max only
	// supports conservative comparisons: values greater than the stored
	// prefix may still exist in the block.
	MaxSTrunc bool
	Nulls     uint32
}

const zoneFlagMaxTrunc = 1

func appendZone(buf []byte, z Zone) []byte {
	buf = append(buf, byte(z.Kind))
	buf = binary.LittleEndian.AppendUint32(buf, z.Nulls)
	switch z.Kind {
	case ZoneInt:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(z.MinI))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(z.MaxI))
	case ZoneFloat:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(z.MinF))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(z.MaxF))
	case ZoneString:
		buf = appendString(buf, z.MinS)
		buf = appendString(buf, z.MaxS)
		var flags byte
		if z.MaxSTrunc {
			flags |= zoneFlagMaxTrunc
		}
		buf = append(buf, flags)
	}
	return buf
}

func (r *reader) zone() Zone {
	z := Zone{Kind: ZoneKind(r.u8())}
	z.Nulls = r.u32()
	switch z.Kind {
	case ZoneInt:
		z.MinI = int64(r.u64())
		z.MaxI = int64(r.u64())
	case ZoneFloat:
		z.MinF = math.Float64frombits(r.u64())
		z.MaxF = math.Float64frombits(r.u64())
	case ZoneString:
		z.MinS = r.str()
		z.MaxS = r.str()
		z.MaxSTrunc = r.u8()&zoneFlagMaxTrunc != 0
	}
	return z
}
