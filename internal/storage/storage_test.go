package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pdtstore/internal/types"
)

func testSchema(t *testing.T) *types.Schema {
	t.Helper()
	return types.MustSchema([]types.Column{
		{Name: "k", Kind: types.Int64},
		{Name: "name", Kind: types.String},
		{Name: "price", Kind: types.Float64},
	}, []int{0})
}

func buildSegment(t *testing.T, path string) (*Segment, [][]byte) {
	t.Helper()
	schema := testSchema(t)
	w, err := CreateSegment(path, schema, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	blocks := [][]byte{
		[]byte("col0-blk0-xxxxxxxx"), []byte("col1-blk0"), []byte("col2-blk0-yy"),
		[]byte("col0-blk1"), []byte("col1-blk1-zzzz"), []byte("col2-blk1"),
	}
	for blk := 0; blk < 2; blk++ {
		for col := 0; col < 3; col++ {
			z := Zone{Kind: ZoneInt, MinI: int64(blk * 10), MaxI: int64(blk*10 + 9)}
			if err := w.AppendBlock(col, blocks[blk*3+col], z); err != nil {
				t.Fatal(err)
			}
		}
	}
	sparse := []types.Row{
		{types.Int(1)},
		{types.Int(5)},
	}
	seg, err := w.Finish(7, sparse)
	if err != nil {
		t.Fatal(err)
	}
	return seg, blocks
}

func TestSegmentRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg-1.seg")
	seg, blocks := buildSegment(t, path)
	seg.Close()

	seg, err := OpenSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	if seg.NRows() != 7 || seg.BlockRows() != 4 || !seg.Compressed() {
		t.Fatalf("meta mismatch: nrows=%d blockRows=%d compressed=%v", seg.NRows(), seg.BlockRows(), seg.Compressed())
	}
	if seg.NumBlocks() != 2 {
		t.Fatalf("NumBlocks = %d, want 2", seg.NumBlocks())
	}
	if got := seg.Schema(); got.NumCols() != 3 || got.Cols[1].Name != "name" || got.Cols[2].Kind != types.Float64 {
		t.Fatalf("schema mismatch: %v", got)
	}
	if sp := seg.Sparse(); len(sp) != 2 || types.CompareRows(sp[1], types.Row{types.Int(5)}) != 0 {
		t.Fatalf("sparse mismatch: %v", sp)
	}
	if z, ok := seg.Zone(2, 1); !ok || z.Kind != ZoneInt || z.MinI != 10 || z.MaxI != 19 {
		t.Fatalf("zone mismatch: %+v ok=%v", z, ok)
	}
	for blk := 0; blk < 2; blk++ {
		for col := 0; col < 3; col++ {
			want := blocks[blk*3+col]
			got, err := seg.ReadBlock(col, blk)
			if err != nil {
				t.Fatalf("ReadBlock(%d,%d): %v", col, blk, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("ReadBlock(%d,%d) = %q, want %q", col, blk, got, want)
			}
			if seg.BlockLen(col, blk) != len(want) {
				t.Fatalf("BlockLen(%d,%d) = %d, want %d", col, blk, seg.BlockLen(col, blk), len(want))
			}
		}
	}
}

func TestSegmentEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg-empty.seg")
	schema := testSchema(t)
	w, err := CreateSegment(path, schema, 8192, false)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := w.Finish(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	seg.Close()
	seg, err = OpenSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	if seg.NRows() != 0 || seg.NumBlocks() != 0 {
		t.Fatalf("empty segment: nrows=%d blocks=%d", seg.NRows(), seg.NumBlocks())
	}
}

// TestSegmentDetectsBlockCorruption flips one byte inside a block: the read
// of that block must fail its checksum while the footer still opens fine.
func TestSegmentDetectsBlockCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg-corrupt.seg")
	seg, _ := buildSegment(t, path)
	off := seg.index[1][0].Off
	seg.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[off] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	seg, err = OpenSegment(path)
	if err != nil {
		t.Fatalf("footer should still open: %v", err)
	}
	defer seg.Close()
	if _, err := seg.ReadBlock(1, 0); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt block read: err = %v, want checksum mismatch", err)
	}
	if _, err := seg.ReadBlock(0, 0); err != nil {
		t.Fatalf("untouched block must read fine: %v", err)
	}
}

// TestSegmentRejectsPartialFile truncates the file at every suffix boundary
// that removes part of the trailer or footer: OpenSegment must refuse all of
// them (a crashed checkpoint leaves exactly such a file behind).
func TestSegmentRejectsPartialFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg-torn.seg")
	seg, _ := buildSegment(t, path)
	seg.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(data) - 1; cut >= 0; cut -= 7 {
		torn := filepath.Join(dir, "torn.seg")
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if s, err := OpenSegment(torn); err == nil {
			s.Close()
			t.Fatalf("OpenSegment accepted a file truncated to %d/%d bytes", cut, len(data))
		}
	}
}

func TestManifestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := LoadManifest(dir); err != nil || ok {
		t.Fatalf("fresh dir: ok=%v err=%v, want absent", ok, err)
	}
	m := Manifest{Generation: 3, Segment: "seg-0000000000000003.seg", LSN: 42}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadManifest(dir)
	if err != nil || !ok {
		t.Fatalf("LoadManifest: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("manifest = %+v, want %+v", got, m)
	}
	// Overwrite with the next generation: the swap replaces, never appends.
	m2 := Manifest{Generation: 4, Segment: "seg-0000000000000004.seg", LSN: 99}
	if err := WriteManifest(dir, m2); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := LoadManifest(dir); !reflect.DeepEqual(got, m2) {
		t.Fatalf("manifest after swap = %+v, want %+v", got, m2)
	}
}

func TestManifestCorruptIsError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadManifest(dir); err == nil {
		t.Fatal("corrupt manifest must be an error, not a fresh-store signal")
	}
}
