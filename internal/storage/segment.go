// Package storage implements the durable on-disk layer under the store: the
// segment file format holding one checkpointed stable table image (per-column
// encoded blocks plus a self-describing footer), and the MANIFEST pointer
// that names the current segment generation and the WAL position it contains.
//
// A segment is immutable once written. Blocks are laid out in write order and
// located through the footer's block index, so readers fetch any (column,
// block) pair with a single pread; every block carries a CRC32 verified on
// each cold read, and the footer itself is CRC-framed behind a fixed-size
// trailer at the end of the file. A partially written segment (crash before
// Finish) has no trailer and is simply unreadable — recovery never trusts a
// segment that the MANIFEST does not name.
package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"

	"pdtstore/internal/types"
)

var segMagic = [8]byte{'P', 'D', 'T', 'S', 'E', 'G', '0', '1'}

// trailerSize is the fixed tail of a finished segment:
// u64 footer offset, u32 footer length, u32 footer CRC, 8-byte magic.
const trailerSize = 8 + 4 + 4 + 8

// BlockEntry locates one encoded column block inside a segment file.
type BlockEntry struct {
	Off int64
	Len uint32
	CRC uint32
}

// BlockPlace resolves one logical (column, block) coordinate of a table image
// to the physical block that holds its bytes: Seg indexes the generation's
// segment chain (oldest first, the segment carrying the map is always last)
// and Blk is the block's position within that segment's own per-column index.
// An incremental checkpoint writes only dirty blocks into its new segment and
// inherits every other placement from the previous generation verbatim.
type BlockPlace struct {
	Seg uint32
	Blk uint32
}

// SegmentWriter streams encoded blocks into a new segment file. Blocks may
// arrive in any column interleaving (the builder emits one row group at a
// time); the footer index records where each landed.
type SegmentWriter struct {
	f          *os.File
	path       string
	w          *bufio.Writer
	off        int64
	schema     *types.Schema
	blockRows  int
	compressed bool
	index      [][]BlockEntry
	zones      [][]Zone
	places     [][]BlockPlace
	err        error
}

// CreateSegment starts writing a segment file at path (truncating any
// previous file there — stray partial segments from a crashed checkpoint are
// overwritten, never appended to).
func CreateSegment(path string, schema *types.Schema, blockRows int, compressed bool) (*SegmentWriter, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: create segment: %w", err)
	}
	w := &SegmentWriter{
		f:          f,
		path:       path,
		w:          bufio.NewWriterSize(f, 1<<20),
		schema:     schema,
		blockRows:  blockRows,
		compressed: compressed,
		index:      make([][]BlockEntry, schema.NumCols()),
		zones:      make([][]Zone, schema.NumCols()),
	}
	if _, err := w.w.Write(segMagic[:]); err != nil {
		f.Close()
		return nil, err
	}
	w.off = int64(len(segMagic))
	return w, nil
}

// AppendBlock writes one encoded column block and records it in the index
// along with its zone-map statistics (pass a zero Zone — Kind ZoneNone — when
// the caller has none; such blocks are never skipped).
func (w *SegmentWriter) AppendBlock(col int, enc []byte, z Zone) error {
	if w.err != nil {
		return w.err
	}
	if _, err := w.w.Write(enc); err != nil {
		w.err = fmt.Errorf("storage: write block: %w", err)
		return w.err
	}
	w.index[col] = append(w.index[col], BlockEntry{
		Off: w.off,
		Len: uint32(len(enc)),
		CRC: crc32.ChecksumIEEE(enc),
	})
	w.zones[col] = append(w.zones[col], z)
	w.off += int64(len(enc))
	return nil
}

// SetPlacements attaches the logical→physical block map that Finish writes
// into the footer. places[col][blk] locates logical block blk of column col
// within the generation's segment chain; a nil map means the segment is
// self-contained (every logical block lives in this file, in order). Must be
// called before Finish.
func (w *SegmentWriter) SetPlacements(places [][]BlockPlace) {
	w.places = places
}

// Finish writes the footer and trailer, fsyncs the file and its directory,
// and returns the finished segment opened for reading (the same descriptor;
// pread works regardless of the write-mode open).
func (w *SegmentWriter) Finish(nrows uint64, sparse []types.Row) (*Segment, error) {
	if w.err != nil {
		return nil, w.err
	}
	footer := encodeFooter(w.schema, nrows, w.blockRows, w.compressed, w.index, sparse, w.places, w.zones)
	footerOff := w.off
	var trailer [trailerSize]byte
	binary.LittleEndian.PutUint64(trailer[0:8], uint64(footerOff))
	binary.LittleEndian.PutUint32(trailer[8:12], uint32(len(footer)))
	binary.LittleEndian.PutUint32(trailer[12:16], crc32.ChecksumIEEE(footer))
	copy(trailer[16:], segMagic[:])
	if _, err := w.w.Write(footer); err != nil {
		return nil, err
	}
	if _, err := w.w.Write(trailer[:]); err != nil {
		return nil, err
	}
	if err := w.w.Flush(); err != nil {
		return nil, err
	}
	if err := w.f.Sync(); err != nil {
		return nil, fmt.Errorf("storage: fsync segment: %w", err)
	}
	syncDir(filepath.Dir(w.path))
	s := &Segment{
		f:          w.f,
		path:       w.path,
		schema:     w.schema,
		nrows:      nrows,
		blockRows:  w.blockRows,
		compressed: w.compressed,
		sparse:     sparse,
		index:      w.index,
		zones:      w.zones,
		places:     w.places,
	}
	s.refs.Store(1)
	return s, nil
}

// Abort closes and removes the partial file (the orderly error path; a crash
// leaves the partial file behind, which Open-side GC removes).
func (w *SegmentWriter) Abort() {
	if w.f != nil {
		w.f.Close()
		os.Remove(w.path)
		w.f = nil
	}
	w.err = fmt.Errorf("storage: segment writer aborted")
}

// Segment is a finished, immutable segment file open for block reads.
//
// Segments are shared between store generations by incremental checkpoints:
// generation N+1's image can resolve unchanged blocks straight into
// generation N's file. Each sharing store holds one reference (Retain /
// Release); the store that sees the count hit zero closes the descriptor and
// evicts the segment's buffer-pool entries.
type Segment struct {
	f          *os.File
	path       string
	closed     atomic.Bool
	refs       atomic.Int64
	schema     *types.Schema
	nrows      uint64
	blockRows  int
	compressed bool
	sparse     []types.Row
	index      [][]BlockEntry
	zones      [][]Zone
	places     [][]BlockPlace
}

// OpenSegment opens and validates an existing segment file.
func OpenSegment(path string) (*Segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := readSegmentMeta(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func readSegmentMeta(f *os.File, path string) (*Segment, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if fi.Size() < int64(len(segMagic))+trailerSize {
		return nil, fmt.Errorf("storage: %s: too short to be a segment (%d bytes)", path, fi.Size())
	}
	var trailer [trailerSize]byte
	if _, err := f.ReadAt(trailer[:], fi.Size()-trailerSize); err != nil {
		return nil, err
	}
	if [8]byte(trailer[16:24]) != segMagic {
		return nil, fmt.Errorf("storage: %s: bad segment magic (torn or foreign file)", path)
	}
	footerOff := int64(binary.LittleEndian.Uint64(trailer[0:8]))
	footerLen := int64(binary.LittleEndian.Uint32(trailer[8:12]))
	footerCRC := binary.LittleEndian.Uint32(trailer[12:16])
	if footerOff < int64(len(segMagic)) || footerOff+footerLen+trailerSize != fi.Size() {
		return nil, fmt.Errorf("storage: %s: inconsistent footer bounds", path)
	}
	footer := make([]byte, footerLen)
	if _, err := f.ReadAt(footer, footerOff); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(footer) != footerCRC {
		return nil, fmt.Errorf("storage: %s: footer checksum mismatch", path)
	}
	s, err := decodeFooter(footer)
	if err != nil {
		return nil, fmt.Errorf("storage: %s: %w", path, err)
	}
	s.f, s.path = f, path
	s.refs.Store(1)
	return s, nil
}

// Schema returns the schema stored in the footer.
func (s *Segment) Schema() *types.Schema { return s.schema }

// NRows returns the row count stored in the footer.
func (s *Segment) NRows() uint64 { return s.nrows }

// BlockRows returns the rows-per-block geometry.
func (s *Segment) BlockRows() int { return s.blockRows }

// Compressed reports whether blocks were written compressed.
func (s *Segment) Compressed() bool { return s.compressed }

// Sparse returns the sparse index: the sort key of each block's first row.
func (s *Segment) Sparse() []types.Row { return s.sparse }

// NumBlocks returns the per-column block count.
func (s *Segment) NumBlocks() int {
	if len(s.index) == 0 {
		return 0
	}
	return len(s.index[0])
}

// BlockLen returns the encoded size of one block.
func (s *Segment) BlockLen(col, blk int) int { return int(s.index[col][blk].Len) }

// ColBlocks returns the number of physical blocks this file stores for one
// column (incremental segments hold a different count per column).
func (s *Segment) ColBlocks(col int) int { return len(s.index[col]) }

// TotalBlocks returns the number of physical blocks stored in this file,
// summed over all columns. For a chain member this counts what the file
// holds, not what the generation's logical image references from it.
func (s *Segment) TotalBlocks() int {
	n := 0
	for _, col := range s.index {
		n += len(col)
	}
	return n
}

// Placements returns the logical→physical block map written by an
// incremental checkpoint, or nil when the segment is self-contained.
func (s *Segment) Placements() [][]BlockPlace { return s.places }

// Zone returns the zone-map statistics of one physical block of this file,
// and whether usable stats were recorded for it. Segments written before the
// zone-map format (and blocks written with ZoneNone) report ok=false and must
// not be skipped.
func (s *Segment) Zone(col, blk int) (Zone, bool) {
	if col >= len(s.zones) || blk >= len(s.zones[col]) {
		return Zone{}, false
	}
	z := s.zones[col][blk]
	return z, z.Kind != ZoneNone
}

// Retain adds one reference to the segment. A newer generation that inherits
// blocks from this file retains it so the descriptor outlives the older
// store's release.
func (s *Segment) Retain() { s.refs.Add(1) }

// Release drops one reference and reports whether that was the last: the
// caller owning the final reference must close the segment and evict its
// buffer-pool entries.
func (s *Segment) Release() bool { return s.refs.Add(-1) <= 0 }

// Path returns the segment's file path.
func (s *Segment) Path() string { return s.path }

// ReadBlock preads one encoded block and verifies its checksum.
func (s *Segment) ReadBlock(col, blk int) ([]byte, error) {
	e := s.index[col][blk]
	buf := make([]byte, e.Len)
	if _, err := s.f.ReadAt(buf, e.Off); err != nil {
		return nil, fmt.Errorf("storage: %s: read col %d blk %d: %w", s.path, col, blk, err)
	}
	if crc32.ChecksumIEEE(buf) != e.CRC {
		return nil, fmt.Errorf("storage: %s: col %d blk %d checksum mismatch", s.path, col, blk)
	}
	return buf, nil
}

// Close closes the underlying file. Reads after Close fail. It is
// idempotent — a retired image may be closed both by the version release
// that saw its last pinned reader finish and by DB.Close's sweep — and safe
// for those two callers to race.
func (s *Segment) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	return s.f.Close()
}

// Closed reports whether Close has run, i.e. the segment's descriptor has
// been released. The retired-image tests assert on it.
func (s *Segment) Closed() bool { return s.closed.Load() }

// --- footer encoding ---------------------------------------------------------

// Section tags of the footer's extensible tail. The tail starts with a
// sentinel u32 that no legacy trailing-placements footer can produce (a
// column count), then a section count, then [tag][len][payload] sections.
// Unknown tags are skipped, so older readers of a newer footer degrade
// gracefully instead of failing.
const (
	sectionSentinel = 0xFFFFFFFE
	sectionPlaces   = 1
	sectionZones    = 2
)

func encodeFooter(schema *types.Schema, nrows uint64, blockRows int, compressed bool, index [][]BlockEntry, sparse []types.Row, places [][]BlockPlace, zones [][]Zone) []byte {
	var buf []byte
	buf = appendSchema(buf, schema)
	buf = binary.LittleEndian.AppendUint64(buf, nrows)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(blockRows))
	if compressed {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(index)))
	for _, col := range index {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(col)))
		for _, e := range col {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Off))
			buf = binary.LittleEndian.AppendUint32(buf, e.Len)
			buf = binary.LittleEndian.AppendUint32(buf, e.CRC)
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sparse)))
	for _, row := range sparse {
		buf = appendRow(buf, row)
	}
	// The tail after the sparse rows is the extensible part of the footer.
	// Two earlier formats end here: the pre-incremental format stops outright
	// and the pre-zone-map format appends a bare placements map (decoded by
	// the legacy branch below). New segments always write the sectioned tail.
	var sections []struct {
		tag     byte
		payload []byte
	}
	if places != nil {
		var p []byte
		p = binary.LittleEndian.AppendUint32(p, uint32(len(places)))
		for _, col := range places {
			p = binary.LittleEndian.AppendUint32(p, uint32(len(col)))
			for _, pl := range col {
				p = binary.LittleEndian.AppendUint32(p, pl.Seg)
				p = binary.LittleEndian.AppendUint32(p, pl.Blk)
			}
		}
		sections = append(sections, struct {
			tag     byte
			payload []byte
		}{sectionPlaces, p})
	}
	if zones != nil {
		var p []byte
		p = binary.LittleEndian.AppendUint32(p, uint32(len(zones)))
		for _, col := range zones {
			p = binary.LittleEndian.AppendUint32(p, uint32(len(col)))
			for _, z := range col {
				p = appendZone(p, z)
			}
		}
		sections = append(sections, struct {
			tag     byte
			payload []byte
		}{sectionZones, p})
	}
	buf = binary.LittleEndian.AppendUint32(buf, sectionSentinel)
	buf = append(buf, byte(len(sections)))
	for _, sec := range sections {
		buf = append(buf, sec.tag)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sec.payload)))
		buf = append(buf, sec.payload...)
	}
	return buf
}

func decodeFooter(buf []byte) (*Segment, error) {
	r := &reader{buf: buf}
	schema, err := r.schema()
	if err != nil {
		return nil, fmt.Errorf("corrupt footer: %w", err)
	}
	s := &Segment{schema: schema}
	s.nrows = r.u64()
	s.blockRows = int(r.u32())
	s.compressed = r.u8() != 0
	ncols := int(r.u32())
	if r.err != nil || ncols != schema.NumCols() {
		return nil, fmt.Errorf("corrupt footer: index covers %d columns, schema has %d", ncols, schema.NumCols())
	}
	s.index = make([][]BlockEntry, ncols)
	for c := range s.index {
		nblk := int(r.u32())
		if r.err != nil || nblk > len(r.buf) {
			return nil, fmt.Errorf("corrupt footer: bad block count %d", nblk)
		}
		col := make([]BlockEntry, nblk)
		for b := range col {
			col[b] = BlockEntry{Off: int64(r.u64()), Len: r.u32(), CRC: r.u32()}
		}
		s.index[c] = col
	}
	nsparse := int(r.u32())
	if r.err != nil || nsparse > len(r.buf) {
		return nil, fmt.Errorf("corrupt footer: bad sparse count %d", nsparse)
	}
	s.sparse = make([]types.Row, nsparse)
	for i := range s.sparse {
		s.sparse[i] = r.row()
	}
	if r.err != nil {
		return nil, fmt.Errorf("corrupt footer: %w", r.err)
	}
	if len(r.buf) > 0 {
		marker := r.u32()
		if r.err != nil {
			return nil, fmt.Errorf("corrupt footer: %w", r.err)
		}
		if marker == sectionSentinel {
			nsec := int(r.u8())
			for i := 0; i < nsec; i++ {
				tag := r.u8()
				plen := int(r.u32())
				if r.err != nil || plen > len(r.buf) {
					return nil, fmt.Errorf("corrupt footer: bad section length %d", plen)
				}
				sr := &reader{buf: r.take(plen)}
				switch tag {
				case sectionPlaces:
					places, err := decodePlaces(sr, ncols)
					if err != nil {
						return nil, err
					}
					s.places = places
				case sectionZones:
					zones, err := decodeZones(sr, ncols)
					if err != nil {
						return nil, err
					}
					s.zones = zones
				default:
					// Unknown section written by a newer format: skip it.
				}
			}
			if r.err != nil {
				return nil, fmt.Errorf("corrupt footer: %w", r.err)
			}
		} else {
			// Legacy trailing placements: the marker was the map's column
			// count.
			places, err := decodePlaceCols(r, int(marker), ncols)
			if err != nil {
				return nil, err
			}
			s.places = places
			if r.err != nil {
				return nil, fmt.Errorf("corrupt footer: %w", r.err)
			}
		}
	}
	return s, nil
}

func decodePlaces(r *reader, ncols int) ([][]BlockPlace, error) {
	return decodePlaceCols(r, int(r.u32()), ncols)
}

func decodePlaceCols(r *reader, npcols, ncols int) ([][]BlockPlace, error) {
	if r.err != nil || npcols != ncols {
		return nil, fmt.Errorf("corrupt footer: block map covers %d columns, schema has %d", npcols, ncols)
	}
	places := make([][]BlockPlace, npcols)
	for c := range places {
		nblk := int(r.u32())
		if r.err != nil || nblk > len(r.buf) {
			return nil, fmt.Errorf("corrupt footer: bad block map count %d", nblk)
		}
		col := make([]BlockPlace, nblk)
		for b := range col {
			col[b] = BlockPlace{Seg: r.u32(), Blk: r.u32()}
		}
		places[c] = col
	}
	if r.err != nil {
		return nil, fmt.Errorf("corrupt footer: %w", r.err)
	}
	return places, nil
}

func decodeZones(r *reader, ncols int) ([][]Zone, error) {
	nzcols := int(r.u32())
	if r.err != nil || nzcols != ncols {
		return nil, fmt.Errorf("corrupt footer: zone map covers %d columns, schema has %d", nzcols, ncols)
	}
	zones := make([][]Zone, nzcols)
	for c := range zones {
		nblk := int(r.u32())
		if r.err != nil || nblk > len(r.buf) {
			return nil, fmt.Errorf("corrupt footer: bad zone count %d", nblk)
		}
		col := make([]Zone, nblk)
		for b := range col {
			col[b] = r.zone()
		}
		zones[c] = col
	}
	if r.err != nil {
		return nil, fmt.Errorf("corrupt footer: %w", r.err)
	}
	return zones, nil
}

// syncDir fsyncs a directory so a just-created/renamed/removed entry is
// durable. Errors are ignored: some filesystems reject directory fsync, and
// the worst case is the pre-rename state after a crash, which recovery
// already handles.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
