package vector

import (
	"testing"

	"pdtstore/internal/types"
)

func TestNewAndLen(t *testing.T) {
	for _, k := range []types.Kind{types.Int64, types.Float64, types.String, types.Bool, types.Date} {
		v := New(k, 4)
		if v.Len() != 0 {
			t.Errorf("new %v vector has len %d", k, v.Len())
		}
	}
}

func TestAppendGetSet(t *testing.T) {
	vi := New(types.Int64, 0)
	vi.Append(types.Int(7))
	if vi.Len() != 1 || vi.Get(0).I != 7 {
		t.Error("int append/get broken")
	}
	vi.Set(0, types.Int(9))
	if vi.I[0] != 9 {
		t.Error("int set broken")
	}

	vf := New(types.Float64, 0)
	vf.Append(types.Float(1.5))
	if vf.Get(0).F != 1.5 {
		t.Error("float append/get broken")
	}
	vf.Set(0, types.Float(2.5))
	if vf.F[0] != 2.5 {
		t.Error("float set broken")
	}

	vs := New(types.String, 0)
	vs.Append(types.Str("a"))
	if vs.Get(0).S != "a" {
		t.Error("string append/get broken")
	}
	vs.Set(0, types.Str("b"))
	if vs.S[0] != "b" {
		t.Error("string set broken")
	}

	vb := New(types.Bool, 0)
	vb.Append(types.BoolVal(true))
	if !vb.Get(0).Bool() {
		t.Error("bool append/get broken")
	}
}

func TestAppendKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	New(types.Int64, 0).Append(types.Str("x"))
}

func TestSetKindMismatchPanics(t *testing.T) {
	v := New(types.Int64, 0)
	v.Append(types.Int(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	v.Set(0, types.Float(1))
}

func TestReset(t *testing.T) {
	v := New(types.Int64, 0)
	v.Append(types.Int(1))
	v.Reset()
	if v.Len() != 0 {
		t.Error("Reset did not truncate")
	}
}

func TestAppendRange(t *testing.T) {
	src := New(types.Int64, 0)
	for i := 0; i < 10; i++ {
		src.Append(types.Int(int64(i)))
	}
	dst := New(types.Int64, 0)
	dst.AppendRange(src, 3, 7)
	if dst.Len() != 4 || dst.I[0] != 3 || dst.I[3] != 6 {
		t.Errorf("AppendRange got %v", dst.I)
	}

	ss := New(types.String, 0)
	ss.Append(types.Str("a"))
	ss.Append(types.Str("b"))
	ds := New(types.String, 0)
	ds.AppendRange(ss, 0, 2)
	if ds.Len() != 2 || ds.S[1] != "b" {
		t.Error("string AppendRange broken")
	}

	sf := New(types.Float64, 0)
	sf.Append(types.Float(1))
	df := New(types.Float64, 0)
	df.AppendRange(sf, 0, 1)
	if df.Len() != 1 || df.F[0] != 1 {
		t.Error("float AppendRange broken")
	}
}

func TestAppendRangeKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(types.Int64, 0).AppendRange(New(types.String, 0), 0, 0)
}

func TestBatchBasics(t *testing.T) {
	kinds := []types.Kind{types.Int64, types.String}
	b := NewBatch(kinds, 8)
	if b.Len() != 0 {
		t.Error("new batch not empty")
	}
	b.AppendRow(types.Row{types.Int(1), types.Str("x")})
	b.AppendRow(types.Row{types.Int(2), types.Str("y")})
	b.Rids = append(b.Rids, 10, 11)
	if b.Len() != 2 {
		t.Errorf("Len = %d", b.Len())
	}
	r := b.Row(1)
	if r[0].I != 2 || r[1].S != "y" {
		t.Errorf("Row(1) = %v", r)
	}
	got := b.Kinds()
	if len(got) != 2 || got[0] != types.Int64 || got[1] != types.String {
		t.Errorf("Kinds = %v", got)
	}
	b.Reset()
	if b.Len() != 0 || len(b.Rids) != 0 {
		t.Error("Reset incomplete")
	}
}

func TestBatchLenNoVecs(t *testing.T) {
	b := &Batch{}
	b.Rids = append(b.Rids, 1, 2, 3)
	if b.Len() != 3 {
		t.Error("Len should fall back to Rids")
	}
}

func TestBatchAppendRowArityPanics(t *testing.T) {
	b := NewBatch([]types.Kind{types.Int64}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.AppendRow(types.Row{types.Int(1), types.Int(2)})
}
