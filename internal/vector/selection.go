package vector

import (
	"strings"
	"sync"
)

// Selection is a reusable selection vector: the row indexes within a batch
// that survive filtering, in ascending order. Operators pass (batch, sel)
// pairs instead of materializing filtered copies — the MonetDB/X100 idiom the
// engine package is built around. Selections are pooled; hot paths obtain one
// with GetSelection and return it with PutSelection.
type Selection struct {
	idx []uint32
}

var selPool = sync.Pool{New: func() interface{} {
	return &Selection{idx: make([]uint32, 0, 1024)}
}}

// GetSelection fetches a cleared selection from the pool.
func GetSelection() *Selection {
	s := selPool.Get().(*Selection)
	s.idx = s.idx[:0]
	return s
}

// PutSelection returns a selection to the pool. The caller must not use it
// afterwards.
func PutSelection(s *Selection) { selPool.Put(s) }

// NewSelection returns an unpooled selection with the given capacity hint.
func NewSelection(capHint int) *Selection {
	return &Selection{idx: make([]uint32, 0, capHint)}
}

// Len returns the number of selected rows.
func (s *Selection) Len() int { return len(s.idx) }

// Indexes exposes the selected row indexes (valid until the next mutation).
func (s *Selection) Indexes() []uint32 { return s.idx }

// Reset empties the selection, keeping capacity.
func (s *Selection) Reset() { s.idx = s.idx[:0] }

// Append adds one row index (must keep ascending order).
func (s *Selection) Append(i uint32) { s.idx = append(s.idx, i) }

// All resets the selection to the identity over n rows: 0..n-1.
func (s *Selection) All(n int) {
	if cap(s.idx) < n {
		s.idx = make([]uint32, n)
	} else {
		s.idx = s.idx[:n]
	}
	for i := range s.idx {
		s.idx[i] = uint32(i)
	}
}

// The Filter* kernels narrow the selection in place: each keeps only the
// selected rows whose value in v satisfies the predicate. They loop over the
// typed payload slices directly — no per-row closures, no boxing — and are
// the only filtering primitives the engine's hot paths use.

// FilterInt64Range keeps rows with lo <= v.I[i] <= hi (Int64/Date/Bool).
func (s *Selection) FilterInt64Range(v *Vector, lo, hi int64) {
	kept := s.idx[:0]
	col := v.I
	for _, i := range s.idx {
		if x := col[i]; x >= lo && x <= hi {
			kept = append(kept, i)
		}
	}
	s.idx = kept
}

// FilterInt64Le keeps rows with v.I[i] <= hi.
func (s *Selection) FilterInt64Le(v *Vector, hi int64) {
	kept := s.idx[:0]
	col := v.I
	for _, i := range s.idx {
		if col[i] <= hi {
			kept = append(kept, i)
		}
	}
	s.idx = kept
}

// FilterInt64Ge keeps rows with v.I[i] >= lo.
func (s *Selection) FilterInt64Ge(v *Vector, lo int64) {
	kept := s.idx[:0]
	col := v.I
	for _, i := range s.idx {
		if col[i] >= lo {
			kept = append(kept, i)
		}
	}
	s.idx = kept
}

// FilterInt64Eq keeps rows with v.I[i] == x.
func (s *Selection) FilterInt64Eq(v *Vector, x int64) {
	kept := s.idx[:0]
	col := v.I
	for _, i := range s.idx {
		if col[i] == x {
			kept = append(kept, i)
		}
	}
	s.idx = kept
}

// FilterFloat64Range keeps rows with lo <= v.F[i] <= hi.
func (s *Selection) FilterFloat64Range(v *Vector, lo, hi float64) {
	kept := s.idx[:0]
	col := v.F
	for _, i := range s.idx {
		if x := col[i]; x >= lo && x <= hi {
			kept = append(kept, i)
		}
	}
	s.idx = kept
}

// FilterFloat64Lt keeps rows with v.F[i] < hi.
func (s *Selection) FilterFloat64Lt(v *Vector, hi float64) {
	kept := s.idx[:0]
	col := v.F
	for _, i := range s.idx {
		if col[i] < hi {
			kept = append(kept, i)
		}
	}
	s.idx = kept
}

// FilterStrEq keeps rows with v.S[i] == x.
func (s *Selection) FilterStrEq(v *Vector, x string) {
	kept := s.idx[:0]
	col := v.S
	for _, i := range s.idx {
		if col[i] == x {
			kept = append(kept, i)
		}
	}
	s.idx = kept
}

// FilterStrIn keeps rows whose v.S[i] equals one of the given strings
// (linear membership test; intended for the small IN-lists of TPC-H).
func (s *Selection) FilterStrIn(v *Vector, set ...string) {
	kept := s.idx[:0]
	col := v.S
	for _, i := range s.idx {
		for _, w := range set {
			if col[i] == w {
				kept = append(kept, i)
				break
			}
		}
	}
	s.idx = kept
}

// FilterStrContains keeps rows whose v.S[i] contains sub.
func (s *Selection) FilterStrContains(v *Vector, sub string) {
	kept := s.idx[:0]
	col := v.S
	for _, i := range s.idx {
		if strings.Contains(col[i], sub) {
			kept = append(kept, i)
		}
	}
	s.idx = kept
}

// FilterStrPrefix keeps rows whose v.S[i] starts with prefix.
func (s *Selection) FilterStrPrefix(v *Vector, prefix string) {
	kept := s.idx[:0]
	col := v.S
	for _, i := range s.idx {
		x := col[i]
		if len(x) >= len(prefix) && x[:len(prefix)] == prefix {
			kept = append(kept, i)
		}
	}
	s.idx = kept
}
