// Package vector provides typed column vectors and row batches, the unit of
// block-at-a-time query processing used throughout the store (in the spirit
// of MonetDB/X100 vectorized execution, which the paper's MergeScan operator
// is built on).
package vector

import (
	"fmt"
	"sync"

	"pdtstore/internal/types"
)

// Vector is a typed column of values. Exactly one of the payload slices is
// in use, selected by Kind: I for Int64/Date/Bool, F for Float64, S for
// String. The payload fields are exported so hot loops can iterate natively
// typed data without interface boxing.
type Vector struct {
	Kind types.Kind
	I    []int64
	F    []float64
	S    []string
}

// New returns an empty vector of the given kind with room for capHint values.
func New(kind types.Kind, capHint int) *Vector {
	v := &Vector{Kind: kind}
	switch kind {
	case types.Int64, types.Date, types.Bool:
		v.I = make([]int64, 0, capHint)
	case types.Float64:
		v.F = make([]float64, 0, capHint)
	case types.String:
		v.S = make([]string, 0, capHint)
	default:
		panic(fmt.Sprintf("vector: unknown kind %v", kind))
	}
	return v
}

// Len returns the number of values in the vector.
func (v *Vector) Len() int {
	switch v.Kind {
	case types.Float64:
		return len(v.F)
	case types.String:
		return len(v.S)
	default:
		return len(v.I)
	}
}

// Reset truncates the vector to zero length, keeping capacity.
func (v *Vector) Reset() {
	v.I = v.I[:0]
	v.F = v.F[:0]
	v.S = v.S[:0]
}

// Append adds a single Value, which must match the vector's kind.
func (v *Vector) Append(val types.Value) {
	if val.K != v.Kind {
		panic(fmt.Sprintf("vector: appending %v to %v vector", val.K, v.Kind))
	}
	switch v.Kind {
	case types.Float64:
		v.F = append(v.F, val.F)
	case types.String:
		v.S = append(v.S, val.S)
	default:
		v.I = append(v.I, val.I)
	}
}

// Get returns the value at index i as a types.Value.
func (v *Vector) Get(i int) types.Value {
	switch v.Kind {
	case types.Float64:
		return types.Value{K: v.Kind, F: v.F[i]}
	case types.String:
		return types.Value{K: v.Kind, S: v.S[i]}
	default:
		return types.Value{K: v.Kind, I: v.I[i]}
	}
}

// Set overwrites the value at index i, which must match the vector's kind.
func (v *Vector) Set(i int, val types.Value) {
	if val.K != v.Kind {
		panic(fmt.Sprintf("vector: setting %v into %v vector", val.K, v.Kind))
	}
	switch v.Kind {
	case types.Float64:
		v.F[i] = val.F
	case types.String:
		v.S[i] = val.S
	default:
		v.I[i] = val.I
	}
}

// AppendRange appends src[from:to] to v. Both vectors must share a kind.
func (v *Vector) AppendRange(src *Vector, from, to int) {
	if src.Kind != v.Kind {
		panic("vector: AppendRange kind mismatch")
	}
	switch v.Kind {
	case types.Float64:
		v.F = append(v.F, src.F[from:to]...)
	case types.String:
		v.S = append(v.S, src.S[from:to]...)
	default:
		v.I = append(v.I, src.I[from:to]...)
	}
}

// AppendSelected appends src's values at the selected row indexes (a gather:
// the compaction step of selection-vector pipelines). Both vectors must share
// a kind.
func (v *Vector) AppendSelected(src *Vector, sel []uint32) {
	if src.Kind != v.Kind {
		panic("vector: AppendSelected kind mismatch")
	}
	switch v.Kind {
	case types.Float64:
		for _, i := range sel {
			v.F = append(v.F, src.F[i])
		}
	case types.String:
		for _, i := range sel {
			v.S = append(v.S, src.S[i])
		}
	default:
		for _, i := range sel {
			v.I = append(v.I, src.I[i])
		}
	}
}

// Batch is a set of equal-length column vectors plus an optional RID column.
// It is the unit that flows between scan, merge, and query operators.
type Batch struct {
	Vecs []*Vector
	Rids []uint64
}

// NewBatch allocates a batch with one vector per kind and the given capacity
// hint per vector.
func NewBatch(kinds []types.Kind, capHint int) *Batch {
	b := &Batch{Vecs: make([]*Vector, len(kinds)), Rids: make([]uint64, 0, capHint)}
	for i, k := range kinds {
		b.Vecs[i] = New(k, capHint)
	}
	return b
}

// Len returns the number of rows in the batch.
func (b *Batch) Len() int {
	if len(b.Vecs) == 0 {
		return len(b.Rids)
	}
	return b.Vecs[0].Len()
}

// Reset truncates all vectors (and RIDs) to zero length.
func (b *Batch) Reset() {
	for _, v := range b.Vecs {
		v.Reset()
	}
	b.Rids = b.Rids[:0]
}

// AppendRow appends one row; r must have one value per vector, kind-aligned.
func (b *Batch) AppendRow(r types.Row) {
	if len(r) != len(b.Vecs) {
		panic(fmt.Sprintf("vector: row arity %d, batch arity %d", len(r), len(b.Vecs)))
	}
	for i, v := range b.Vecs {
		v.Append(r[i])
	}
}

// Row materializes row i as a types.Row (allocates; use typed access in hot
// paths).
func (b *Batch) Row(i int) types.Row {
	r := make(types.Row, len(b.Vecs))
	for c, v := range b.Vecs {
		r[c] = v.Get(i)
	}
	return r
}

// CompareKey orders key against row i of the batch, reading key[j] from
// column cols[j] (nil means key[j] from column j). Unlike Row+CompareRows it
// materializes nothing — the comparison point probes run per visited row.
func (b *Batch) CompareKey(key types.Row, cols []int, i int) int {
	for j := range key {
		c := j
		if cols != nil {
			c = cols[j]
		}
		if cmp := types.Compare(key[j], b.Vecs[c].Get(i)); cmp != 0 {
			return cmp
		}
	}
	return 0
}

// Kinds returns the kind of each column vector.
func (b *Batch) Kinds() []types.Kind {
	out := make([]types.Kind, len(b.Vecs))
	for i, v := range b.Vecs {
		out[i] = v.Kind
	}
	return out
}

// BatchPool recycles equally-shaped batches. It wraps a sync.Pool, whose
// free lists are sharded per P, so the parallel scan engine's workers get
// and put scratch batches concurrently without sharing a lock — and batches
// (with their grown vector capacities) survive across plan executions.
type BatchPool struct {
	kinds   []types.Kind
	capHint int
	pool    sync.Pool
}

// NewBatchPool returns a pool producing batches of the given kinds with the
// given initial capacity per vector.
func NewBatchPool(kinds []types.Kind, capHint int) *BatchPool {
	p := &BatchPool{kinds: append([]types.Kind(nil), kinds...), capHint: capHint}
	p.pool.New = func() interface{} { return NewBatch(p.kinds, p.capHint) }
	return p
}

// Get fetches an empty batch from the pool.
func (p *BatchPool) Get() *Batch {
	b := p.pool.Get().(*Batch)
	b.Reset()
	return b
}

// Put returns a batch to the pool. The caller must not use it afterwards.
func (p *BatchPool) Put(b *Batch) { p.pool.Put(b) }
