package vector

import (
	"testing"

	"pdtstore/internal/types"
)

func intVec(vals ...int64) *Vector {
	v := New(types.Int64, len(vals))
	v.I = append(v.I, vals...)
	return v
}

func TestSelectionAllAndReset(t *testing.T) {
	s := NewSelection(4)
	s.All(5)
	if s.Len() != 5 || s.Indexes()[0] != 0 || s.Indexes()[4] != 4 {
		t.Fatalf("All(5) = %v", s.Indexes())
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	s.All(0)
	if s.Len() != 0 {
		t.Fatal("All(0) must select nothing")
	}
}

func TestSelectionPoolReuse(t *testing.T) {
	s := GetSelection()
	s.Append(7)
	PutSelection(s)
	s2 := GetSelection()
	if s2.Len() != 0 {
		t.Fatal("pooled selection not cleared")
	}
	PutSelection(s2)
}

func TestFilterInt64Kernels(t *testing.T) {
	v := intVec(5, 1, 9, 3, 7)
	s := NewSelection(8)

	s.All(v.Len())
	s.FilterInt64Range(v, 3, 7)
	if got := s.Indexes(); len(got) != 3 || got[0] != 0 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("range = %v", got)
	}
	// narrowing composes: a second kernel sees only survivors
	s.FilterInt64Le(v, 5)
	if got := s.Indexes(); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("range∘le = %v", got)
	}
	s.FilterInt64Eq(v, 3)
	if got := s.Indexes(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("eq = %v", got)
	}
	// all rows filtered out
	s.FilterInt64Ge(v, 100)
	if s.Len() != 0 {
		t.Fatal("expected empty selection")
	}
	// kernels on an empty selection stay empty (and must not panic)
	s.FilterInt64Range(v, 0, 100)
	if s.Len() != 0 {
		t.Fatal("empty selection grew")
	}
}

func TestFilterFloat64Kernels(t *testing.T) {
	v := New(types.Float64, 4)
	v.F = append(v.F, 0.04, 0.05, 0.07, 0.08)
	s := NewSelection(4)
	s.All(4)
	s.FilterFloat64Range(v, 0.05, 0.07)
	if got := s.Indexes(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("frange = %v", got)
	}
	s.All(4)
	s.FilterFloat64Lt(v, 0.05)
	if got := s.Indexes(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("flt = %v", got)
	}
}

func TestFilterStringKernels(t *testing.T) {
	v := New(types.String, 5)
	v.S = append(v.S, "MAIL", "SHIP", "AIR", "MAILBOX", "REG AIR")
	s := NewSelection(5)

	s.All(5)
	s.FilterStrEq(v, "MAIL")
	if got := s.Indexes(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("streq = %v", got)
	}
	s.All(5)
	s.FilterStrIn(v, "MAIL", "SHIP")
	if got := s.Indexes(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("strin = %v", got)
	}
	s.All(5)
	s.FilterStrPrefix(v, "MAIL")
	if got := s.Indexes(); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("strprefix = %v", got)
	}
	s.All(5)
	s.FilterStrContains(v, "AIR")
	if got := s.Indexes(); len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("strcontains = %v", got)
	}
}

func TestAppendSelected(t *testing.T) {
	src := intVec(10, 20, 30, 40)
	dst := New(types.Int64, 4)
	dst.AppendSelected(src, []uint32{1, 3})
	if dst.Len() != 2 || dst.I[0] != 20 || dst.I[1] != 40 {
		t.Fatalf("gather = %v", dst.I)
	}
	dst.AppendSelected(src, nil) // empty selection appends nothing
	if dst.Len() != 2 {
		t.Fatal("empty gather changed length")
	}
	strSrc := New(types.String, 2)
	strSrc.S = append(strSrc.S, "a", "b")
	strDst := New(types.String, 2)
	strDst.AppendSelected(strSrc, []uint32{1})
	if strDst.Len() != 1 || strDst.S[0] != "b" {
		t.Fatalf("string gather = %v", strDst.S)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	dst.AppendSelected(strSrc, []uint32{0})
}
