// Package index implements PDT-maintained secondary indexes over the stable
// image: per-(column, block) value summaries that answer "can this block hold
// a row satisfying this predicate?" without touching the block. Two summary
// shapes cover the selectivity spectrum:
//
//   - An exact sorted distinct set when the block holds at most maxExact
//     distinct values (categorical and low-cardinality columns — built
//     straight from the dictionary of a DictString block or the run values
//     of an RLEInt block, never materializing rows). Exact sets answer
//     equality, membership, range and prefix probes.
//   - A Bloom filter (about bloomBitsPerRow bits per row, bloomHashes probe
//     positions) otherwise. Blooms answer equality and membership only, with
//     one-sided error: a negative is certain, so a "skip" is always sound.
//
// Summaries describe the stable image only. Consistency under unfolded PDT
// deltas is the scan's job, and it is positional: the engine's prune pass
// never skips a block the pinned layer stack touches (see engine.PruneBlocks),
// so a probe answer is only ever applied to blocks whose stable content IS
// the snapshot's content. That split is what lets the index be maintained
// lazily — rebuilt only at fold/checkpoint time, from exactly the dirty-block
// map the incremental checkpoint already computes — while reads stay
// snapshot-consistent at every moment in between.
//
// A Set is immutable once built and rides a store's Aux sidecar: shared
// ("no-write") checkpoints reuse it via CloneShared verbatim, incremental
// checkpoints Rebuild it reusing every clean region-A summary, and full
// rewrites Build afresh.
package index

import (
	"fmt"
	"sort"

	"pdtstore/internal/colstore"
	"pdtstore/internal/compress"
	"pdtstore/internal/engine"
	"pdtstore/internal/types"
)

const (
	// maxExact is the distinct-value ceiling for the exact summary arm.
	maxExact = 256
	// bloomBitsPerRow sizes the Bloom arm (~1% false positives at 4 hashes).
	bloomBitsPerRow = 10
	// bloomHashes is the number of probe positions per value.
	bloomHashes = 4
)

// summary is one block's value digest: exactly one arm is populated.
type summary struct {
	kind types.Kind
	ints []int64  // exact arm, sorted distinct (Int64/Date/Bool)
	strs []string // exact arm, sorted distinct (String)
	bits []uint64 // Bloom arm
}

// Set is an immutable secondary-index set over one stable image: per-block
// summaries for each indexed column. It implements engine.IndexProber and is
// attached to the image via colstore's Aux sidecar.
type Set struct {
	cols map[int][]summary // schema column -> per-block summaries
}

// Cols returns the indexed schema columns, ascending.
func (s *Set) Cols() []int {
	cols := make([]int, 0, len(s.cols))
	for c := range s.cols {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	return cols
}

// Build constructs summaries for cols over every block of st, reading
// encoded blocks (dictionary and RLE digests come straight from the
// encoding). Float64 columns cannot be indexed: equality on measures is not
// a meaningful probe and exact float sets are trap-prone.
func Build(st *colstore.Store, cols []int) (*Set, error) {
	s := &Set{cols: make(map[int][]summary, len(cols))}
	nb := st.NumBlocks()
	schema := st.Schema()
	for _, c := range cols {
		if c < 0 || c >= schema.NumCols() {
			return nil, fmt.Errorf("index: column %d out of range", c)
		}
		kind := schema.Cols[c].Kind
		if kind == types.Float64 {
			return nil, fmt.Errorf("index: column %d (%s) is Float64; float columns cannot be indexed", c, schema.Cols[c].Name)
		}
		sums := make([]summary, nb)
		for b := 0; b < nb; b++ {
			enc, err := st.EncodedBlock(c, b)
			if err != nil {
				return nil, err
			}
			sum, err := buildSummary(kind, enc)
			if err != nil {
				return nil, err
			}
			sums[b] = sum
		}
		s.cols[c] = sums
	}
	return s, nil
}

// Rebuild constructs the next generation's Set over st, reusing every summary
// of the previous set whose block dirty reports clean — the incremental
// maintenance path, driven by the same per-(column, block) dirty map the
// incremental checkpoint computes from the frozen PDT (blocks at or past the
// first position shift are always dirty there). nblocks is st's block count.
func (s *Set) Rebuild(st *colstore.Store, nblocks int, dirty func(col, blk int) bool) (*Set, error) {
	out := &Set{cols: make(map[int][]summary, len(s.cols))}
	schema := st.Schema()
	for c, old := range s.cols {
		kind := schema.Cols[c].Kind
		sums := make([]summary, nblocks)
		for b := 0; b < nblocks; b++ {
			if b < len(old) && !dirty(c, b) {
				sums[b] = old[b]
				continue
			}
			enc, err := st.EncodedBlock(c, b)
			if err != nil {
				return nil, err
			}
			sum, err := buildSummary(kind, enc)
			if err != nil {
				return nil, err
			}
			sums[b] = sum
		}
		out.cols[c] = sums
	}
	return out, nil
}

// CanSkip implements engine.IndexProber: it reports whether block blk of
// pred.Col provably holds no value satisfying pred. indexed is false when the
// column has no index or the summary cannot answer the predicate's shape (a
// Bloom arm asked a range question), in which case the engine falls through
// to its other access checks.
func (s *Set) CanSkip(pred engine.Pred, blk int) (skip, indexed bool) {
	sums, ok := s.cols[pred.Col]
	if !ok || blk < 0 || blk >= len(sums) {
		return false, false
	}
	sum := &sums[blk]
	switch pred.Op {
	case engine.PredInt64Range:
		if sum.ints != nil {
			i := sort.Search(len(sum.ints), func(i int) bool { return sum.ints[i] >= pred.ILo })
			return i == len(sum.ints) || sum.ints[i] > pred.IHi, true
		}
		if sum.bits != nil && pred.Eq {
			return !bloomHas(sum.bits, hashInt(pred.ILo)), true
		}
	case engine.PredStrEq:
		return sum.strSkipEq(pred.Strs[0])
	case engine.PredStrIn:
		for _, x := range pred.Strs {
			sk, idx := sum.strSkipEq(x)
			if !idx {
				return false, false
			}
			if !sk {
				return false, true
			}
		}
		return true, true
	case engine.PredStrPrefix:
		if sum.strs != nil {
			pre := pred.Strs[0]
			i := sort.Search(len(sum.strs), func(i int) bool { return sum.strs[i] >= pre })
			return i == len(sum.strs) || len(sum.strs[i]) < len(pre) || sum.strs[i][:len(pre)] != pre, true
		}
	}
	return false, false
}

// strSkipEq answers an equality probe for one string against either arm.
func (sum *summary) strSkipEq(x string) (skip, indexed bool) {
	if sum.strs != nil {
		i := sort.Search(len(sum.strs), func(i int) bool { return sum.strs[i] >= x })
		return i == len(sum.strs) || sum.strs[i] != x, true
	}
	if sum.bits != nil {
		return !bloomHas(sum.bits, hashStr(x)), true
	}
	return false, false
}

// buildSummary digests one encoded block. Dictionary and RLE encodings hand
// over their exact value sets directly; other encodings decode and dedup,
// overflowing into a Bloom filter past maxExact distinct values.
func buildSummary(kind types.Kind, enc []byte) (summary, error) {
	sum := summary{kind: kind}
	switch kind {
	case types.String:
		vals, ok, err := compress.DictValues(enc)
		if err != nil {
			return sum, err
		}
		if !ok {
			if vals, err = compress.DecodeStrings(enc, vals[:0]); err != nil {
				return sum, err
			}
		}
		distinct := dedupStrings(vals)
		if len(distinct) <= maxExact {
			sum.strs = distinct
			return sum, nil
		}
		sum.bits = newBloom(len(vals))
		for _, v := range vals {
			bloomAdd(sum.bits, hashStr(v))
		}
	case types.Bool:
		vals, err := compress.DecodeBools(enc, nil)
		if err != nil {
			return sum, err
		}
		sum.ints = dedupInt64s(vals)
	default: // Int64, Date
		vals, ok, err := compress.RLEValues(enc)
		if err != nil {
			return sum, err
		}
		if !ok {
			if vals, err = compress.DecodeInt64s(enc, vals[:0]); err != nil {
				return sum, err
			}
		}
		distinct := dedupInt64s(vals)
		if len(distinct) <= maxExact {
			sum.ints = distinct
			return sum, nil
		}
		sum.bits = newBloom(len(vals))
		for _, v := range vals {
			bloomAdd(sum.bits, hashInt(v))
		}
	}
	return sum, nil
}

func dedupInt64s(vals []int64) []int64 {
	out := append([]int64(nil), vals...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	n := 0
	for i, v := range out {
		if i == 0 || v != out[n-1] {
			out[n] = v
			n++
		}
	}
	return out[:n]
}

func dedupStrings(vals []string) []string {
	out := append([]string(nil), vals...)
	sort.Strings(out)
	n := 0
	for i, v := range out {
		if i == 0 || v != out[n-1] {
			out[n] = v
			n++
		}
	}
	return out[:n]
}

// newBloom sizes a bit set for n values at bloomBitsPerRow bits each.
func newBloom(n int) []uint64 {
	if n < 1 {
		n = 1
	}
	return make([]uint64, (n*bloomBitsPerRow+63)/64)
}

// bloomAdd sets bloomHashes positions derived from h by double hashing.
func bloomAdd(bits []uint64, h uint64) {
	h1, h2 := uint32(h), uint32(h>>32)|1
	n := uint32(len(bits) * 64)
	for i := uint32(0); i < bloomHashes; i++ {
		p := (h1 + i*h2) % n
		bits[p/64] |= 1 << (p % 64)
	}
}

// bloomHas reports whether every probe position of h is set; false means the
// value is certainly absent.
func bloomHas(bits []uint64, h uint64) bool {
	h1, h2 := uint32(h), uint32(h>>32)|1
	n := uint32(len(bits) * 64)
	for i := uint32(0); i < bloomHashes; i++ {
		p := (h1 + i*h2) % n
		if bits[p/64]&(1<<(p%64)) == 0 {
			return false
		}
	}
	return true
}

// hashInt is FNV-1a over the value's little-endian bytes.
func hashInt(v int64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(v >> (8 * i)))
		h *= 1099511628211
	}
	return h
}

// hashStr is FNV-1a over the string's bytes.
func hashStr(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
