package index

// Unit tests for the secondary-index summaries: exact-set and Bloom arm
// selection, the decode-free dictionary/RLE fast paths, probe semantics
// (one-sided error only), incremental Rebuild reuse, and the Float64
// rejection.

import (
	"fmt"
	"testing"

	"pdtstore/internal/colstore"
	"pdtstore/internal/engine"
	"pdtstore/internal/table"
	"pdtstore/internal/types"
)

var idxSchema = types.MustSchema([]types.Column{
	{Name: "k", Kind: types.Int64},
	{Name: "cat", Kind: types.String}, // low cardinality → dictionary + exact arm
	{Name: "id", Kind: types.Int64},   // high cardinality → Bloom arm
	{Name: "run", Kind: types.Int64},  // long runs → RLE fast path
	{Name: "f", Kind: types.Bool},
}, []int{0})

// buildStore loads n rows compressed (so dictionary and RLE encodings kick
// in) and returns the stable store.
func buildStore(t *testing.T, n, blockRows int) *colstore.Store {
	t.Helper()
	rows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = types.Row{
			types.Int(int64(i)),
			types.Str(fmt.Sprintf("cat%d", i%4)),
			types.Int(int64(i)*7919 + 13), // scattered, all distinct
			types.Int(int64(i / blockRows)),
			types.BoolVal(i%2 == 0),
		}
	}
	tbl, err := table.Load(idxSchema, rows, table.Options{Mode: table.ModeNone, BlockRows: blockRows, Compressed: true})
	if err != nil {
		t.Fatal(err)
	}
	return tbl.Store()
}

func TestBuildArmsAndProbes(t *testing.T) {
	st := buildStore(t, 2048, 512) // 4 blocks; 512 distinct ids per block > maxExact
	s, err := Build(st, []int{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Cols(); len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Fatalf("Cols() = %v", got)
	}
	// cat: 4 distinct strings per block → exact arm, answers everything.
	if sk, ix := s.CanSkip(engine.Pred{Col: 1, Op: engine.PredStrEq, Strs: []string{"cat2"}}, 0); sk || !ix {
		t.Fatalf("cat2 probe on block 0 = (%v,%v), want present", sk, ix)
	}
	if sk, ix := s.CanSkip(engine.Pred{Col: 1, Op: engine.PredStrEq, Strs: []string{"cat9"}}, 0); !sk || !ix {
		t.Fatalf("cat9 probe = (%v,%v), want certain skip", sk, ix)
	}
	if sk, ix := s.CanSkip(engine.Pred{Col: 1, Op: engine.PredStrPrefix, Strs: []string{"ca"}}, 0); sk || !ix {
		t.Fatalf("prefix ca = (%v,%v), want present", sk, ix)
	}
	if sk, ix := s.CanSkip(engine.Pred{Col: 1, Op: engine.PredStrPrefix, Strs: []string{"dog"}}, 0); !sk || !ix {
		t.Fatalf("prefix dog = (%v,%v), want skip", sk, ix)
	}
	if sk, ix := s.CanSkip(engine.Pred{Col: 1, Op: engine.PredStrIn, Strs: []string{"cat9", "cat1"}}, 0); sk || !ix {
		t.Fatalf("in {cat9,cat1} = (%v,%v), want present", sk, ix)
	}
	if sk, ix := s.CanSkip(engine.Pred{Col: 1, Op: engine.PredStrIn, Strs: []string{"x", "y"}}, 0); !sk || !ix {
		t.Fatalf("in {x,y} = (%v,%v), want skip", sk, ix)
	}

	// id: > maxExact distinct per block → Bloom arm. Every present value must
	// answer "maybe" (no false negatives, ever); ranges are unanswerable.
	for i := 0; i < 2048; i += 97 {
		v := int64(i)*7919 + 13
		blk := i / 512
		if sk, ix := s.CanSkip(engine.Pred{Col: 2, Op: engine.PredInt64Range, ILo: v, IHi: v, Eq: true}, blk); sk || !ix {
			t.Fatalf("bloom false negative for id %d in block %d", v, blk)
		}
	}
	if _, ix := s.CanSkip(engine.Pred{Col: 2, Op: engine.PredInt64Range, ILo: 0, IHi: 1 << 40}, 0); ix {
		t.Fatal("bloom arm claimed to answer a non-equality range")
	}
	// Absent probes must skip most blocks (~1% false positives).
	skips := 0
	for i := 0; i < 400; i++ {
		if sk, _ := s.CanSkip(engine.Pred{Col: 2, Op: engine.PredInt64Range, ILo: int64(-9000 - i), IHi: int64(-9000 - i), Eq: true}, i%4); sk {
			skips++
		}
	}
	if skips < 360 {
		t.Fatalf("bloom skipped only %d/400 absent probes", skips)
	}

	// run: RLE fast path yields exact run values; block b holds only value b.
	for b := 0; b < 4; b++ {
		if sk, ix := s.CanSkip(engine.Pred{Col: 3, Op: engine.PredInt64Range, ILo: int64(b), IHi: int64(b), Eq: true}, b); sk || !ix {
			t.Fatalf("run value %d missing from its own block", b)
		}
		if sk, ix := s.CanSkip(engine.Pred{Col: 3, Op: engine.PredInt64Range, ILo: 99, IHi: 200}, b); !sk || !ix {
			t.Fatalf("run range [99,200] not skipped in block %d: (%v,%v)", b, sk, ix)
		}
		// Exact arms answer true ranges, not just equality.
		if sk, ix := s.CanSkip(engine.Pred{Col: 3, Op: engine.PredInt64Range, ILo: int64(b) - 1, IHi: int64(b)}, b); sk || !ix {
			t.Fatalf("overlapping range skipped in block %d", b)
		}
	}

	// Unindexed column and out-of-range block: decline, never skip.
	if sk, ix := s.CanSkip(engine.Pred{Col: 0, Op: engine.PredInt64Range, ILo: 1, IHi: 1}, 0); sk || ix {
		t.Fatal("probe on an unindexed column did not decline")
	}
	if sk, ix := s.CanSkip(engine.Pred{Col: 1, Op: engine.PredStrEq, Strs: []string{"cat0"}}, 99); sk || ix {
		t.Fatal("probe on an out-of-range block did not decline")
	}
}

func TestBuildRejectsFloat(t *testing.T) {
	schema := types.MustSchema([]types.Column{
		{Name: "k", Kind: types.Int64},
		{Name: "x", Kind: types.Float64},
	}, []int{0})
	tbl, err := table.Load(schema, []types.Row{{types.Int(1), types.Float(1.5)}}, table.Options{Mode: table.ModeNone})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(tbl.Store(), []int{1}); err == nil {
		t.Fatal("Build accepted a Float64 column")
	}
	if _, err := Build(tbl.Store(), []int{5}); err == nil {
		t.Fatal("Build accepted an out-of-range column")
	}
}

func TestRebuildReusesCleanSummaries(t *testing.T) {
	st := buildStore(t, 1024, 256) // 4 blocks
	s, err := Build(st, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild over the same store with only block 2 dirty: clean summaries
	// must be reused by reference, the dirty one rebuilt.
	var asked []string
	next, err := s.Rebuild(st, st.NumBlocks(), func(col, blk int) bool {
		asked = append(asked, fmt.Sprintf("%d/%d", col, blk))
		return blk == 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(asked) == 0 {
		t.Fatal("dirty callback never consulted")
	}
	for _, c := range []int{1, 2} {
		for b := 0; b < 4; b++ {
			oldSum, newSum := &s.cols[c][b], &next.cols[c][b]
			shared := len(oldSum.ints) > 0 && len(newSum.ints) > 0 && &oldSum.ints[0] == &newSum.ints[0] ||
				len(oldSum.strs) > 0 && len(newSum.strs) > 0 && &oldSum.strs[0] == &newSum.strs[0] ||
				len(oldSum.bits) > 0 && len(newSum.bits) > 0 && &oldSum.bits[0] == &newSum.bits[0]
			if b != 2 && !shared {
				t.Errorf("clean summary %d/%d was rebuilt, not reused", c, b)
			}
		}
	}
	// A grown image (more blocks than the old set) must fill the tail.
	grown := buildStore(t, 1280, 256) // 5 blocks
	next, err = s.Rebuild(grown, grown.NumBlocks(), func(col, blk int) bool { return blk >= 4 })
	if err != nil {
		t.Fatal(err)
	}
	if sk, ix := next.CanSkip(engine.Pred{Col: 1, Op: engine.PredStrEq, Strs: []string{"cat1"}}, 4); sk || !ix {
		t.Fatalf("grown-tail block summary missing: (%v,%v)", sk, ix)
	}
}
