// Command lint checks that every exported identifier of the packages named
// on the command line carries a doc comment: package-level types, functions,
// methods with exported receivers, consts, vars, and the exported fields of
// exported structs. It is the documentation gate of the CI docs lane —
// godoc-visible surface must explain itself.
//
// Usage: go run ./internal/lint <pkg-dir> [<pkg-dir>...]
//
// A const or var inside a parenthesized group is covered by the group's doc
// comment; a struct field list sharing one comment covers all its names.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: lint <pkg-dir> [<pkg-dir>...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		missing, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lint: %v\n", err)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Println(m)
		}
		bad += len(missing)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d exported identifiers lack doc comments\n", bad)
		os.Exit(1)
	}
}

func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s %s has no doc comment",
			filepath.ToSlash(p.Filename), p.Line, what, name))
	}
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") || pkg.Name == "main" {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedRecv(d) {
						continue
					}
					if d.Doc == nil {
						report(d.Pos(), kindOf(d), declName(d))
					}
				case *ast.GenDecl:
					checkGen(fset, d, report)
				}
			}
		}
	}
	return missing, nil
}

// exportedRecv reports whether a method's receiver type is exported (plain
// functions count as exported receivers).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

func kindOf(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "func"
}

func declName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	var b strings.Builder
	b.WriteByte('(')
	t := d.Recv.List[0].Type
	if se, ok := t.(*ast.StarExpr); ok {
		b.WriteByte('*')
		t = se.X
	}
	if id, ok := t.(*ast.Ident); ok {
		b.WriteString(id.Name)
	}
	b.WriteString(").")
	b.WriteString(d.Name.Name)
	return b.String()
}

// checkGen walks a type/const/var declaration. A group doc comment covers
// every spec in the group; a spec-level doc or trailing line comment covers
// that spec.
func checkGen(fset *token.FileSet, d *ast.GenDecl, report func(pos token.Pos, what, name string)) {
	what := map[token.Token]string{token.TYPE: "type", token.CONST: "const", token.VAR: "var"}[d.Tok]
	if what == "" {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if d.Doc == nil && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), what, s.Name.Name)
			}
			if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
				checkFields(fset, s.Name.Name, st, report)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				if d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(name.Pos(), what, name.Name)
				}
				break // one report per spec line is enough
			}
		}
	}
}

// checkFields requires each exported field to be documented, directly or as
// part of a run: one doc comment may cover the documented field plus the
// fields on the immediately following lines, until a blank line or the next
// comment starts a new run (the package's established multi-field idiom,
// e.g. "LSN is ...; FreezeLSN is its ...").
func checkFields(fset *token.FileSet, owner string, st *ast.StructType, report func(pos token.Pos, what, name string)) {
	prevLine, covered := -2, false
	for _, f := range st.Fields.List {
		line := fset.Position(f.Pos()).Line
		if f.Doc != nil || f.Comment != nil {
			covered = true
		} else if line != prevLine+1 {
			covered = false // blank line (or first field): the run ended
		}
		prevLine = fset.Position(f.End()).Line
		if covered {
			continue
		}
		for _, name := range f.Names {
			if name.IsExported() {
				report(name.Pos(), "field", owner+"."+name.Name)
				break
			}
		}
	}
}
