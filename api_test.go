package pdtstore

// Golden snapshot of the package's public API. The store's surface was
// redesigned deliberately (Tx, Stats, CheckpointOptions); this test renders
// every exported declaration of the root package and compares it against
// testdata/api.golden, so any future drift — an accidental export, a changed
// signature, a silently dropped deprecation — shows up in review as a diff of
// that file. Regenerate after an intentional change with:
//
//	UPDATE_API=1 go test -run TestPublicAPISnapshot .

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

const apiGolden = "testdata/api.golden"

func TestPublicAPISnapshot(t *testing.T) {
	got := renderPublicAPI(t)
	if os.Getenv("UPDATE_API") != "" {
		if err := os.MkdirAll(filepath.Dir(apiGolden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(apiGolden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", apiGolden)
		return
	}
	want, err := os.ReadFile(apiGolden)
	if err != nil {
		t.Fatalf("missing API golden (run UPDATE_API=1 go test -run TestPublicAPISnapshot .): %v", err)
	}
	if got != string(want) {
		t.Errorf("public API drifted from %s.\nIf the change is intentional, regenerate with UPDATE_API=1 and review the diff.\n--- got ---\n%s", apiGolden, diffLines(string(want), got))
	}
}

func renderPublicAPI(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["pdtstore"]
	if !ok {
		t.Fatalf("package pdtstore not found (got %v)", pkgs)
	}
	var lines []string
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedRecv(d) {
					continue
				}
				lines = append(lines, renderFunc(fset, d))
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() {
							lines = append(lines, renderType(fset, s)...)
						}
					case *ast.ValueSpec:
						for i, name := range s.Names {
							if !name.IsExported() {
								continue
							}
							kind := "var"
							if d.Tok == token.CONST {
								kind = "const"
							}
							line := fmt.Sprintf("%s %s", kind, name.Name)
							if i < len(s.Values) {
								line += " = " + exprString(fset, s.Values[i])
							}
							lines = append(lines, line)
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// exportedRecv reports whether a method's receiver type is exported (plain
// functions count as exported receivers).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if id, ok := typ.(*ast.Ident); ok {
		return id.IsExported()
	}
	return false
}

func renderFunc(fset *token.FileSet, d *ast.FuncDecl) string {
	clone := *d
	clone.Body = nil
	clone.Doc = nil
	line := "func "
	if d.Recv != nil && len(d.Recv.List) > 0 {
		line += "(" + exprString(fset, d.Recv.List[0].Type) + ") "
	}
	line += d.Name.Name + strings.TrimPrefix(exprString(fset, clone.Type), "func")
	if isDeprecated(d.Doc) {
		line += "  // Deprecated"
	}
	return line
}

func renderType(fset *token.FileSet, s *ast.TypeSpec) []string {
	switch typ := s.Type.(type) {
	case *ast.StructType:
		lines := []string{fmt.Sprintf("type %s struct", s.Name.Name)}
		for _, f := range typ.Fields.List {
			for _, name := range f.Names {
				if name.IsExported() {
					lines = append(lines, fmt.Sprintf("type %s struct: %s %s", s.Name.Name, name.Name, exprString(fset, f.Type)))
				}
			}
		}
		return lines
	case *ast.InterfaceType:
		lines := []string{fmt.Sprintf("type %s interface", s.Name.Name)}
		for _, m := range typ.Methods.List {
			for _, name := range m.Names {
				lines = append(lines, fmt.Sprintf("type %s interface: %s%s", s.Name.Name, name.Name,
					strings.TrimPrefix(exprString(fset, m.Type), "func")))
			}
		}
		return lines
	default:
		return []string{fmt.Sprintf("type %s %s", s.Name.Name, exprString(fset, s.Type))}
	}
}

func isDeprecated(doc *ast.CommentGroup) bool {
	return doc != nil && strings.Contains(doc.Text(), "Deprecated:")
}

func exprString(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%v>", err)
	}
	return buf.String()
}

// diffLines is a minimal line diff: good enough to spot which declaration
// moved without pulling in a diff dependency.
func diffLines(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(want, "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(got, "\n") {
		gotSet[l] = true
	}
	var out []string
	for _, l := range strings.Split(want, "\n") {
		if l != "" && !gotSet[l] {
			out = append(out, "- "+l)
		}
	}
	for _, l := range strings.Split(got, "\n") {
		if l != "" && !wantSet[l] {
			out = append(out, "+ "+l)
		}
	}
	return strings.Join(out, "\n")
}
