package pdtstore

// Durable store lifecycle: Open(dir) either bootstraps a fresh store
// directory or recovers one — load the MANIFEST's segment generation as the
// stable image, replay the WAL tail past the manifest's LSN, and resume the
// commit clock — and DB.Checkpoint makes the online checkpoint durable:
//
//	stream image  →  fsync segment  →  swap MANIFEST  →  truncate WAL
//
// The manifest swap (an atomic rename) is the commit point. A crash anywhere
// in that sequence recovers exactly the committed state: before the swap the
// old manifest still pairs the old segment with the full log; after it the
// new manifest's LSN tells recovery which log records the new image already
// contains, so the untruncated tail cannot double-apply.
//
// Sharded stores (Options.Shards > 1) generalize every piece per shard: the
// manifest lists one segment and freeze LSN per shard plus the permanent
// split keys, each shard owns a WAL stream directory, and recovery replays
// the streams independently before reconciling them to one global commit
// clock — wal.CompleteGroups drops cross-shard commits that only some
// streams got (a crash between two shards' batch fsyncs), so reopen is
// all-or-nothing per clock entry. Checkpoint streams the shards' images one
// at a time and commits them with a single manifest swap: a crash between
// two shards' builds loses nothing, because the old manifest still pairs the
// old images with the full streams.
//
// Directory layout:
//
//	dir/
//	  MANIFEST                     current generation + segment(s) + freeze LSN(s)
//	  seg-<generation>.seg         stable image segments (one live, rest GC'd)
//	  seg-<generation>-s<i>.seg    per-shard stable images (sharded stores)
//	  wal/<seq>.wal                rotated commit log files (shard 0 when sharded)
//	  wal-s<i>/<seq>.wal           shard i's commit log stream, i >= 1

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"pdtstore/internal/colstore"
	"pdtstore/internal/engine"
	"pdtstore/internal/index"
	"pdtstore/internal/pdt"
	"pdtstore/internal/storage"
	"pdtstore/internal/table"
	"pdtstore/internal/txn"
	"pdtstore/internal/types"
	"pdtstore/internal/wal"
)

// Options configures Open.
type Options struct {
	// Schema is required when creating a new store directory; for an existing
	// one it is optional and validated against the segment's schema.
	Schema *types.Schema
	// BlockRows is the per-column block size of checkpointed images (0 =
	// colstore default).
	BlockRows int
	// Compressed selects compressed stable blocks.
	Compressed bool
	// Fanout is the PDT fanout (0 = paper default).
	Fanout int
	// WriteBudget caps the Write-PDT before background Write→Read folds
	// (0 = transaction-manager default).
	WriteBudget uint64
	// MaxCommitBatch caps how many concurrent commits one group-commit
	// flush folds into a single WAL append and fsync (0 = transaction-
	// manager default of 128; 1 makes every commit pay its own fsync).
	MaxCommitBatch int
	// MaxCommitDelay, when positive, lets the group-commit leader wait that
	// long for more commits to join a non-full batch. Zero (the default)
	// relies on natural batching: whatever arrives during the previous
	// fsync flushes together.
	MaxCommitDelay time.Duration
	// Device shares a buffer pool across stores; nil creates a private one.
	Device *colstore.Device
	// Shards splits the table into this many key-range shards, each with its
	// own Write-PDT, group-commit sequencer and WAL stream sharing one global
	// commit clock (0 or 1 = unsharded). Opening an existing unsharded store
	// with Shards > 1 adopts it — the image is cut into per-shard segments —
	// provided its WAL tail is empty (checkpoint first); changing the shard
	// count of an already-sharded store is not supported.
	Shards int
	// ShardKeys are the Shards-1 ascending full-sort-key cuts. Required when
	// bootstrapping a fresh sharded store (an empty image has no quantiles to
	// cut at); optional when adopting an existing image, where nil selects
	// row-count quantile cuts read off the image. Ignored for stores that are
	// already sharded — the manifest's recorded splits are permanent.
	ShardKeys []types.Row
	// Checkpoint tunes incremental checkpoints and the background cost-model
	// scheduler. The zero value selects the defaults (incremental allowed,
	// scheduler off); nonsense combinations are rejected at Open.
	Checkpoint CheckpointOptions
	// IndexColumns opts listed schema columns into secondary block indexes:
	// per-(column, block) value summaries over the stable image (exact
	// distinct sets for low-cardinality blocks, Bloom filters otherwise) that
	// let selective scans skip whole blocks before reading them. Indexes are
	// maintained at checkpoint time from the same dirty-block map incremental
	// checkpoints compute, and consulted automatically by Plan filters —
	// DB.Stats reports how many block reads they eliminated. Float64 columns
	// are rejected at Open. The set is not persisted; each Open rebuilds it
	// from the image (a fast, decode-free pass for dictionary and RLE blocks).
	IndexColumns []int
}

// Tx is the store's unified transaction interface, returned by DB.Begin for
// sharded and unsharded stores alike: *txn.Txn implements it over a single
// manager, *txn.STxn over the shard coordinator (pinning a consistent
// per-shard snapshot vector and routing each operation to the owning shard).
// Callers never branch on the store's shard layout.
type Tx interface {
	// Schema returns the table schema.
	Schema() *types.Schema
	// Scan returns a batch source producing the projected columns of all
	// rows visible to the transaction whose sort key lies in [loKey, hiKey]
	// (nil bounds are open; bounds may be prefixes of the sort key).
	Scan(cols []int, loKey, hiKey types.Row) (pdt.BatchSource, error)
	// PartitionScan exposes the snapshot to the parallel scan engine
	// (engine.PartRelation); Tx values plug directly into engine.Scan plans.
	PartitionScan(loKey, hiKey types.Row) (*engine.PartScan, error)
	// FindByKey locates the visible tuple with the given (full) sort key.
	FindByKey(key types.Row) (rid uint64, row types.Row, found bool, err error)
	// Insert adds a new tuple; its sort key must not be visible.
	Insert(row types.Row) error
	// DeleteByKey removes the visible tuple with the given sort key.
	DeleteByKey(key types.Row) (bool, error)
	// UpdateByKey sets one column of the visible tuple with the given key.
	UpdateByKey(key types.Row, col int, val types.Value) (bool, error)
	// ApplyBatch resolves and applies a batch of key-level operations.
	ApplyBatch(ops []table.Op) (int, error)
	// Commit validates against concurrent commits and makes the
	// transaction's updates durable; CommitLSN reports its position in the
	// global commit order afterwards.
	Commit() error
	CommitLSN() uint64
	// Abort discards the transaction.
	Abort() error
}

// DB is a durable, transactional PDT store rooted at a directory.
type DB struct {
	mu     sync.Mutex // serializes Checkpoint and Close
	dir    string
	lock   *os.File // exclusive flock on dir/LOCK for the DB's lifetime
	opts   Options
	schema *types.Schema
	dev    *colstore.Device
	// One entry per shard; unsharded stores are the one-element case with
	// sharded == nil (no coordinator, manifest keeps the flat form).
	tbls    []*table.Table
	mgrs    []*txn.Manager
	logs    []*wal.FileLog
	sharded *txn.Sharded
	man     storage.Manifest
	// nextGen is the highest generation number ever handed to a checkpoint,
	// advanced even when the checkpoint fails: a failed attempt may have
	// installed its segment as the manager's live store (only the manifest
	// write failed), so a retry must never reuse — and O_TRUNC — that name.
	nextGen uint64
	// retired tracks superseded file-backed images. The transaction manager
	// closes each one as soon as its last pinned reader finishes
	// (txn.releaseVersionLocked); this list is the backstop that closes
	// whatever is still pinned when the DB itself closes (Close is
	// idempotent, so the two paths may both run). Chain segments shared with
	// the live image survive these closes — they are refcounted and only the
	// last referencing store releases the descriptor.
	retired []*colstore.Store
	closed  bool

	// ckpt is Options.Checkpoint with defaults resolved and validated.
	ckpt CheckpointOptions
	// lastCost records, per shard, the cost-model inputs and outcome of the
	// most recent checkpoint decision (scheduler skip included). Guarded by mu.
	lastCost []CheckpointDecision
	// Background checkpoint scheduler lifecycle (ckpt.Auto only).
	schedStop chan struct{}
	schedDone chan struct{}
	schedOnce sync.Once
	schedErr  error // first scheduler checkpoint failure, sticky; guarded by mu

	// fault, when set (crash tests only), is invoked at named points of the
	// checkpoint sequence; a non-nil return simulates the process dying there
	// (the step and everything after it never run).
	fault func(point string) error
}

// Checkpoint fault-injection points, in execution order.
const (
	faultMidSegmentWrite = "mid-segment-write"
	// faultMidBlockMapWrite fires on the incremental path after the dirty
	// blocks streamed but before Finish writes the block map + footer: the
	// new segment has data blocks and no trailer, and the manifest still
	// names the previous generation's chain.
	faultMidBlockMapWrite = "mid-block-map-write"
	// faultBetweenShardCheckpoints fires before each shard's image build
	// except the first (sharded stores only): some shards have already
	// streamed and installed their new images, the rest have not, and the
	// manifest still pairs the old images with the full WAL streams.
	faultBetweenShardCheckpoints = "between-shard-checkpoints"
	faultPreManifestSwap         = "pre-manifest-swap"
	// faultPreSwapMixedGen fires just before the manifest swap when the new
	// manifest would reference blocks across generations (any shard's chain
	// has more than one segment): the fsynced incremental segment exists but
	// nothing names it, and its inherited references point at files the old
	// manifest still pins.
	faultPreSwapMixedGen = "pre-swap-mixed-generations"
	// faultPostSwapPreGC fires after the manifest swap but before the
	// superseded chain members' directory entries are unlinked: recovery must
	// ignore the stale files the new manifest no longer pins.
	faultPostSwapPreGC       = "gc-after-swap"
	faultPostSwapPreTruncate = "post-swap-pre-truncate"
)

func segmentName(gen uint64) string { return fmt.Sprintf("seg-%016x.seg", gen) }

func shardSegmentName(gen uint64, shard int) string {
	return fmt.Sprintf("seg-%016x-s%d.seg", gen, shard)
}

// shardWalDir keeps shard 0 on the unsharded stream name so adopting a
// sharded layout inherits the existing log untouched.
func shardWalDir(shard int) string {
	if shard == 0 {
		return "wal"
	}
	return fmt.Sprintf("wal-s%d", shard)
}

// Open opens or creates a durable store at dir and recovers its committed
// state: the manifest's segment generation becomes the stable image (blocks
// pread lazily through the buffer pool), the WAL tail beyond the manifest's
// LSN is replayed into the Write-PDT, and the commit clock resumes the
// pre-crash sequence. A torn final WAL record (crash mid-append) is truncated
// away; every earlier record is applied exactly once. For a sharded store the
// same contract holds per shard, plus cross-shard atomicity: a commit clock
// entry whose record is missing from any participant stream is dropped from
// all of them.
func Open(dir string, opts Options) (*DB, error) {
	ckpt, err := opts.Checkpoint.normalize()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	opened := false
	defer func() {
		if !opened {
			unlockDir(lock)
		}
	}()
	dev := opts.Device
	if dev == nil {
		dev = colstore.NewDevice()
	}
	man, found, err := storage.LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	n := opts.Shards
	if n < 1 {
		n = 1
	}
	var stores []*colstore.Store
	var splits []types.Row
	closeStores := func() {
		for _, s := range stores {
			if s != nil {
				s.Close()
			}
		}
	}
	switch {
	case found && len(man.Shards) > 0:
		// Already sharded: the manifest's layout wins; Options.Shards may
		// only agree with it.
		if opts.Shards > 1 && opts.Shards != len(man.Shards) {
			return nil, fmt.Errorf("pdtstore: store at %s has %d shards; re-sharding to %d is not supported", dir, len(man.Shards), opts.Shards)
		}
		n = len(man.Shards)
		splits = man.Splits
		stores = make([]*colstore.Store, n)
		for i, sh := range man.Shards {
			stores[i], err = openChain(dir, sh.Chain(), dev, opts.Schema)
			if err != nil {
				closeStores()
				return nil, fmt.Errorf("pdtstore: open shard %d segment generation %d: %w", i, man.Generation, err)
			}
		}
	case found:
		store, err := openChain(dir, man.Chain(), dev, opts.Schema)
		if err != nil {
			return nil, fmt.Errorf("pdtstore: open segment generation %d: %w", man.Generation, err)
		}
		if n > 1 {
			stores, splits, man, err = adoptShards(dir, man, opts, dev, store, n)
			store.Close()
			if err != nil {
				return nil, err
			}
		} else {
			stores = []*colstore.Store{store}
		}
	case n > 1:
		// Fresh sharded bootstrap: n empty per-shard images at generation 1.
		if opts.Schema == nil {
			return nil, fmt.Errorf("pdtstore: creating a new store at %s requires Options.Schema", dir)
		}
		if len(opts.ShardKeys) != n-1 {
			return nil, fmt.Errorf("pdtstore: bootstrapping %d shards requires %d Options.ShardKeys cuts, got %d", n, n-1, len(opts.ShardKeys))
		}
		splits = opts.ShardKeys
		stores = make([]*colstore.Store, n)
		entries := make([]storage.ShardEntry, n)
		for i := range stores {
			name := shardSegmentName(1, i)
			b, err := colstore.NewFileBuilder(opts.Schema, dev, opts.BlockRows, opts.Compressed, filepath.Join(dir, name))
			if err != nil {
				closeStores()
				return nil, err
			}
			stores[i], err = b.Finish()
			if err != nil {
				closeStores()
				return nil, err
			}
			entries[i] = storage.ShardEntry{Segment: name}
		}
		man = storage.Manifest{Generation: 1, Shards: entries, Splits: splits}
		if err := storage.WriteManifest(dir, man); err != nil {
			closeStores()
			return nil, err
		}
	default:
		if opts.Schema == nil {
			return nil, fmt.Errorf("pdtstore: creating a new store at %s requires Options.Schema", dir)
		}
		// Bootstrap: generation 1 is an empty, durable image. If the process
		// dies between segment and manifest, the next Open simply bootstraps
		// again over the stray file.
		name := segmentName(1)
		b, err := colstore.NewFileBuilder(opts.Schema, dev, opts.BlockRows, opts.Compressed, filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		store, err := b.Finish()
		if err != nil {
			return nil, err
		}
		man = storage.Manifest{Generation: 1, Segment: name, LSN: 0}
		if err := storage.WriteManifest(dir, man); err != nil {
			store.Close()
			return nil, err
		}
		stores = []*colstore.Store{store}
	}
	gcStraySegments(dir, manifestSegments(man))

	// Secondary indexes ride each shard image's aux sidecar; checkpoints
	// carry them forward (shared), Rebuild them (incremental) or Build them
	// afresh (full). Built here last so every Open branch is covered.
	if len(opts.IndexColumns) > 0 {
		for i := range stores {
			idx, err := index.Build(stores[i], opts.IndexColumns)
			if err != nil {
				closeStores()
				return nil, fmt.Errorf("pdtstore: build secondary index: %w", err)
			}
			stores[i].SetAux(idx)
		}
	}

	// Per-shard base LSNs: records at or below a shard's bar were
	// materialized into its image before the manifest swapped.
	bases := make([]uint64, n)
	if len(man.Shards) > 0 {
		for i, sh := range man.Shards {
			bases[i] = sh.LSN
		}
	} else {
		bases[0] = man.LSN
	}

	tbls := make([]*table.Table, n)
	logs := make([]*wal.FileLog, n)
	streams := make([][]wal.Record, n)
	closeLogs := func() {
		for _, l := range logs {
			if l != nil {
				l.Close()
			}
		}
	}
	for i := range stores {
		tbl, err := table.FromStore(stores[i], table.Options{
			Mode:       table.ModePDT,
			BlockRows:  opts.BlockRows,
			Compressed: opts.Compressed,
			Fanout:     opts.Fanout,
			Device:     dev,
		})
		if err != nil {
			closeLogs()
			closeStores()
			return nil, err
		}
		tbls[i] = tbl
		flog, records, err := wal.OpenFileLog(filepath.Join(dir, shardWalDir(i)))
		if err != nil {
			closeLogs()
			closeStores()
			return nil, err
		}
		// The clock must sit at the max of the manifest's freeze LSN and the
		// last log record: a fully truncated log must not rewind it below the
		// checkpoint, or post-recovery commits would reuse spent LSNs.
		if bases[i] > flog.LSN() {
			flog.SetLSN(bases[i])
		}
		logs[i] = flog
		streams[i] = records
	}
	if n > 1 {
		// Cross-shard atomicity: a commit clock entry missing from any
		// participant stream (crash between two shards' batch fsyncs, or
		// a torn tail on one stream) never installed anywhere — drop it
		// from every stream.
		streams = wal.CompleteGroups(streams, bases)
	}
	mgrs := make([]*txn.Manager, n)
	for i := range stores {
		mgr, err := txn.NewManager(tbls[i], txn.Options{
			WriteBudget:    opts.WriteBudget,
			Log:            logs[i],
			MaxCommitBatch: opts.MaxCommitBatch,
			MaxCommitDelay: opts.MaxCommitDelay,
		})
		if err != nil {
			closeLogs()
			closeStores()
			return nil, err
		}
		// Replay only the records the checkpointed image does not already
		// contain: everything at or below the shard's manifest LSN was
		// materialized into its segment before the manifest swapped (the
		// post-swap-pre-truncate crash leaves exactly such records behind).
		tail := streams[i][:0]
		for _, rec := range streams[i] {
			if rec.LSN > bases[i] {
				tail = append(tail, rec)
			}
		}
		if err := mgr.Recover(tail); err != nil {
			closeLogs()
			closeStores()
			return nil, fmt.Errorf("pdtstore: WAL replay shard %d: %w", i, err)
		}
		mgrs[i] = mgr
	}
	var sharded *txn.Sharded
	if n > 1 {
		sharded, err = txn.NewSharded(mgrs, splits)
		if err != nil {
			closeLogs()
			closeStores()
			return nil, err
		}
		// Reconcile to the global clock: every shard's freeze bar is a spent
		// LSN even when its stream was fully truncated.
		for _, b := range bases {
			sharded.RaiseClock(b)
		}
	}
	db := &DB{
		dir:      dir,
		lock:     lock,
		opts:     opts,
		schema:   stores[0].Schema(),
		dev:      dev,
		tbls:     tbls,
		mgrs:     mgrs,
		logs:     logs,
		sharded:  sharded,
		man:      man,
		nextGen:  man.Generation,
		ckpt:     ckpt,
		lastCost: make([]CheckpointDecision, n),
	}
	if ckpt.Auto {
		db.schedStop = make(chan struct{})
		db.schedDone = make(chan struct{})
		go db.schedulerLoop()
	}
	opened = true
	return db, nil
}

// adoptShards converts an existing unsharded image to a sharded layout:
// stream the image into per-shard segments cut at the split keys, then swap a
// sharded manifest naming them (the adopt commit point). The WAL tail past the
// manifest's freeze LSN must be empty — tail records live on one stream and
// cannot be re-routed — so callers checkpoint first. A crash before the swap
// leaves the unsharded manifest intact and the partial shard segments as
// strays for GC.
func adoptShards(dir string, man storage.Manifest, opts Options, dev *colstore.Device, store *colstore.Store, n int) ([]*colstore.Store, []types.Row, storage.Manifest, error) {
	flog, records, err := wal.OpenFileLog(filepath.Join(dir, "wal"))
	if err != nil {
		return nil, nil, man, err
	}
	flog.Close()
	for _, rec := range records {
		if rec.LSN > man.LSN {
			return nil, nil, man, fmt.Errorf("pdtstore: adopting a %d-shard layout requires an empty WAL tail (LSN %d past freeze %d): checkpoint before re-opening with Shards", n, rec.LSN, man.LSN)
		}
	}
	keys := opts.ShardKeys
	if keys == nil {
		if keys, err = table.ShardCuts(store, n); err != nil {
			return nil, nil, man, err
		}
	} else if len(keys) != n-1 {
		return nil, nil, man, fmt.Errorf("pdtstore: %d shards need %d Options.ShardKeys cuts, got %d", n, n-1, len(keys))
	}
	gen := man.Generation + 1
	names := make([]string, n)
	for i := range names {
		names[i] = shardSegmentName(gen, i)
	}
	stores, err := table.SplitStore(store, keys, func(i int) (*colstore.Builder, error) {
		return colstore.NewFileBuilder(store.Schema(), dev, opts.BlockRows, opts.Compressed, filepath.Join(dir, names[i]))
	})
	if err != nil {
		return nil, nil, man, err
	}
	entries := make([]storage.ShardEntry, n)
	for i := range entries {
		entries[i] = storage.ShardEntry{Segment: names[i], LSN: man.LSN}
	}
	newMan := storage.Manifest{Generation: gen, Shards: entries, Splits: keys}
	if err := storage.WriteManifest(dir, newMan); err != nil {
		for _, s := range stores {
			s.Close()
		}
		return nil, nil, man, err
	}
	for _, nm := range man.Chain() {
		os.Remove(filepath.Join(dir, nm))
	}
	return stores, keys, newMan, nil
}

// openChain opens a manifest segment chain (oldest generation first) into one
// file-backed store: the last member carries the block map and geometry, the
// earlier members only serve the blocks the map still references.
func openChain(dir string, chain []string, dev *colstore.Device, want *types.Schema) (*colstore.Store, error) {
	segs := make([]*storage.Segment, len(chain))
	fail := func() {
		for _, s := range segs {
			if s != nil {
				s.Close()
			}
		}
	}
	for j, nm := range chain {
		seg, err := storage.OpenSegment(filepath.Join(dir, nm))
		if err != nil {
			fail()
			return nil, err
		}
		segs[j] = seg
	}
	newest := segs[len(segs)-1]
	if want != nil && !schemaEqual(want, newest.Schema()) {
		fail()
		return nil, fmt.Errorf("pdtstore: schema mismatch: store holds %v", newest.Schema())
	}
	st, err := colstore.FromSegmentChain(segs, dev)
	if err != nil {
		fail()
		return nil, err
	}
	return st, nil
}

// Schema returns the store's schema.
func (db *DB) Schema() *types.Schema { return db.schema }

// Dir returns the store directory.
func (db *DB) Dir() string { return db.dir }

// Shards returns the shard count (1 for an unsharded store).
func (db *DB) Shards() int { return len(db.mgrs) }

// Sharded returns the shard coordinator, or nil for an unsharded store.
// Sharded DBs begin transactions through it: Sharded().Begin() pins a
// consistent vector of per-shard snapshots.
func (db *DB) Sharded() *txn.Sharded { return db.sharded }

// Table returns the underlying table (reads and plans build over it); nil for
// a sharded store, whose per-shard tables are Sharded().Shard(i) territory.
// Direct table reads always track the newest installed version and are not
// pinned: once a checkpoint supersedes a stable image, its descriptor is
// closed as soon as the last pinned *transaction* releases it, so a direct
// scan that must survive concurrent maintenance should run through Begin
// (which pins the version for the transaction's lifetime) instead.
func (db *DB) Table() *table.Table {
	if db.sharded != nil {
		return nil
	}
	return db.tbls[0]
}

// Manager returns the transaction manager; nil for a sharded store.
//
// Deprecated: Manager leaks the internal txn layer and forces callers to
// branch on the shard layout. Use Begin for transactions and Stats for
// observability.
func (db *DB) Manager() *txn.Manager {
	if db.sharded != nil {
		return nil
	}
	return db.mgrs[0]
}

// Begin starts a snapshot-isolated transaction on any store: a sharded DB
// pins a consistent vector of per-shard snapshots through the coordinator, an
// unsharded one pins its single manager's snapshot. Both satisfy Tx.
func (db *DB) Begin() Tx {
	if db.sharded != nil {
		return db.sharded.Begin()
	}
	return db.mgrs[0].Begin()
}

// Log returns the durable commit log; shard 0's stream on a sharded store.
//
// Deprecated: Log leaks the internal wal layer. Use Stats, which reports the
// tail length, byte size and file count of every shard's stream.
func (db *DB) Log() *wal.FileLog { return db.logs[0] }

// ShardLog returns shard i's commit log stream.
//
// Deprecated: see Log; use Stats.
func (db *DB) ShardLog(i int) *wal.FileLog { return db.logs[i] }

// Manifest returns the current durable manifest.
//
// Deprecated: Manifest leaks the internal storage layer. Use Stats, which
// reports the generation and the live segment chains.
func (db *DB) Manifest() storage.Manifest {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.man
}

// Close stops the background checkpoint scheduler and waits for background
// maintenance, then releases the log and every file-backed image. It reports
// a sticky maintenance or scheduler failure, if any.
func (db *DB) Close() error {
	db.stopScheduler()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	var maintErr error
	for _, m := range db.mgrs {
		if err := m.WaitMaintenance(); maintErr == nil {
			maintErr = err
		}
	}
	var err error
	for _, l := range db.logs {
		if cerr := l.Close(); err == nil {
			err = cerr
		}
	}
	for _, t := range db.tbls {
		if cerr := t.Store().Close(); err == nil {
			err = cerr
		}
	}
	for _, s := range db.retired {
		s.Close()
	}
	unlockDir(db.lock)
	if maintErr != nil {
		return maintErr
	}
	if db.schedErr != nil && err == nil {
		err = db.schedErr
	}
	return err
}

// crash simulates process death in the kill-and-reopen tests: every
// descriptor is released with no orderly shutdown — no maintenance wait, no
// log flush, no manifest work. On-disk state stays exactly as the last fsync
// left it (closing a descriptor never undoes durable writes), and the
// advisory LOCK is released just as a dying process would release it.
func (db *DB) crash() {
	db.stopScheduler()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return
	}
	db.closed = true
	for _, l := range db.logs {
		l.Close()
	}
	for _, t := range db.tbls {
		t.Store().Close()
	}
	for _, s := range db.retired {
		s.Close()
	}
	unlockDir(db.lock)
}

func (db *DB) injectFault(point string) error {
	if db.fault == nil {
		return nil
	}
	return db.fault(point)
}

// manifestSegments is the set of segment file names a manifest pins — every
// member of every shard's generation chain, not just the newest.
func manifestSegments(m storage.Manifest) map[string]bool {
	keep := make(map[string]bool, len(m.Shards)+1)
	for _, nm := range m.Chain() {
		keep[nm] = true
	}
	for _, sh := range m.Shards {
		for _, nm := range sh.Chain() {
			keep[nm] = true
		}
	}
	return keep
}

// gcStraySegments removes segment files the manifest does not pin: partial
// images from crashed checkpoints and fully superseded generations.
func gcStraySegments(dir string, keep map[string]bool) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if keep[name] || e.IsDir() {
			continue
		}
		if strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".seg") {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

func schemaEqual(a, b *types.Schema) bool {
	if a.NumCols() != b.NumCols() || len(a.SortKey) != len(b.SortKey) {
		return false
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			return false
		}
	}
	for i := range a.SortKey {
		if a.SortKey[i] != b.SortKey[i] {
			return false
		}
	}
	return true
}
